// True negative for wall-clock-and-env: the same calls as
// src/sim/wallclock_bad.cpp, but tools/ is not a deterministic layer
// (CLIs may time themselves and read the environment). Zero findings.

namespace fix
{

unsigned long
wallElapsed()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

const char *
threadOverride()
{
    return std::getenv("FIX_THREADS");
}

} // namespace fix
