// True positives for wall-clock-and-env: this file sits in the
// deterministic 'sim' layer, so every clock or environment read below
// must fire.

namespace fix
{

unsigned long
stampEpoch()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

const char *
scaleOverride()
{
    return std::getenv("FIX_SCALE");
}

long
seedFromClock()
{
    return time(nullptr);
}

} // namespace fix
