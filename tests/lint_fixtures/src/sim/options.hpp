#ifndef FIXTURE_OPTIONS_HPP
#define FIXTURE_OPTIONS_HPP

// serialize-coverage and jobid-plumbing fixtures. The record names
// (RunOptions, RunMetrics) and serializer names (writeJson,
// metricsFromJson, makeJobId) match the binding table in
// semantic_rules.cpp, so the rules treat this mini-tree exactly like
// the real one.

namespace fix
{

struct RunOptions
{
    unsigned long accesses = 0; // serialized and in the job id
    unsigned int threads = 1;   // serialized but missing from makeJobId
    bool debug_dump = false;    // never serialized: serialize-coverage
};

struct RunMetrics
{
    unsigned long instructions = 0; // round-trips: no finding
    unsigned long cycles = 0;       // written but never restored
};

// Nested config records bound through the same writeJson(RunOptions)
// overload, the way the real tree serializes the OS and tenant
// blocks: emitted only when enabled, which must still count as
// coverage for every field the block mentions.

struct OsConfig
{
    bool enabled = false;       // referenced by the guard: covered
    unsigned long frames = 0;   // emitted inside the block: covered
    unsigned long debug_pokes = 0; // never emitted: serialize-coverage
};

struct TenantMixConfig
{
    bool enabled = false;      // fully covered: no finding
    unsigned int slots = 0;
};

inline void
writeJson(JsonWriter &json, const RunOptions &options)
{
    json.field("accesses", options.accesses);
    json.field("threads", options.threads);
    if (options.os.enabled)
        json.field("frames", options.os.frames);
    if (options.tenants.enabled)
        json.field("slots", options.tenants.slots);
}

inline void
writeJson(JsonWriter &json, const RunMetrics &metrics)
{
    json.field("instructions", metrics.instructions);
    json.field("cycles", metrics.cycles);
}

inline RunMetrics
metricsFromJson(const JsonValue &value)
{
    RunMetrics metrics;
    metrics.instructions = value.u64("instructions");
    return metrics;
}

inline unsigned long
makeJobId(const RunOptions &options)
{
    return mixHash(options.accesses);
}

} // namespace fix

#endif // FIXTURE_OPTIONS_HPP
