// Flow-aware unordered-iteration fixtures. dumpTable() must fire: its
// iteration feeds printRow(), which writes to stdout, so hash-map
// order leaks into user-visible output. sumTable() must NOT fire: the
// same iteration only accumulates, and addition is order-insensitive.

namespace fix
{

void
printRow(const Row &row)
{
    std::cout << row.name << " " << row.weight << "\n";
}

void
dumpTable(const std::unordered_map<unsigned long, Row> &rows)
{
    for (const auto &entry : rows)
        printRow(entry.second);
}

unsigned long
sumTable(const std::unordered_map<unsigned long, Row> &rows)
{
    unsigned long total = 0;
    for (const auto &entry : rows)
        total += entry.second.weight;
    return total;
}

} // namespace fix
