#ifndef FIXTURE_SNAPSHOT_GOOD_HPP
#define FIXTURE_SNAPSHOT_GOOD_HPP

// True negatives for snapshot-field-coverage: every dynamic member is
// snapshotted (directly or through a private helper), every exemption
// class is represented, and the empty-body pair opts out explicitly.
// This file must produce zero findings.

namespace fix
{

class CoveredCounter : public Snapshottable
{
  public:
    void
    saveState(SnapshotWriter &w) const override
    {
        w.u64(ticks_);
        saveTable(w);
    }

    void
    loadState(SnapshotReader &r) override
    {
        ticks_ = r.u64();
        loadTable(r);
    }

  private:
    void
    saveTable(SnapshotWriter &w) const
    {
        w.u64(table_);
    }

    void
    loadTable(SnapshotReader &r)
    {
        table_ = r.u64();
    }

    unsigned long ticks_ = 0;
    unsigned long table_ = 0; //!< covered transitively via helpers
    static int live_counters;    // exempt: static
    const int limit_ = 8;        // exempt: const
    FixConfig config_;           // exempt: *Config*-typed
    Sink *sink_ = nullptr;       // exempt: raw pointer (wiring)
    Sink &owner_;                // exempt: reference (wiring)
    // asdlint:allow(snapshot-field-coverage): derived from config_ when the counter is rebuilt
    unsigned long derived_ = 0;
};

/**
 * Composite snapshottable delegating to a nested snapshottable
 * member — the OS kernel idiom (pool_.saveState(w)). The member name
 * appearing in both bodies is full coverage; no findings.
 */
class NestedOwner : public Snapshottable
{
  public:
    void
    saveState(SnapshotWriter &w) const override
    {
        pool_.saveState(w);
        w.u64(hand_);
    }

    void
    loadState(SnapshotReader &r) override
    {
        pool_.loadState(r);
        hand_ = r.u64();
    }

  private:
    CoveredCounter pool_;
    unsigned long hand_ = 0;
    // asdlint:allow(snapshot-field-coverage): hand-out permutation derived from the seed at construction
    unsigned long free_order_ = 0;
};

/** Empty save/load pair = explicit never-checkpointed opt-out. */
class BenchTap : public Snapshottable
{
  public:
    void saveState(SnapshotWriter &) const override {}
    void loadState(SnapshotReader &) override {}

  private:
    unsigned long reads_ = 0;
    unsigned long epochs_ = 0;
};

} // namespace fix

#endif // FIXTURE_SNAPSHOT_GOOD_HPP
