#ifndef FIXTURE_SNAPSHOT_BAD_HPP
#define FIXTURE_SNAPSHOT_BAD_HPP

// True positives for snapshot-field-coverage: one member per
// asymmetry message, plus a reason-less allow that must stay inert
// (the member still fires) and raise allow-missing-reason.

namespace fix
{

class LeakyDetector : public Snapshottable
{
  public:
    void
    saveState(SnapshotWriter &w) const override
    {
        w.u64(hits_);
        w.u64(stale_);
    }

    void
    loadState(SnapshotReader &r) override
    {
        hits_ = r.u64();
        misses_ = r.u64();
    }

  private:
    unsigned long hits_ = 0;   // covered: no finding
    unsigned long misses_ = 0; // restored but never saved
    unsigned long stale_ = 0;  // saved but never restored
    unsigned long window_ = 0; // neither saved nor restored
    // asdlint:allow(snapshot-field-coverage)
    unsigned long scratch_ = 0; // reason-less allow: inert + flagged
};

} // namespace fix

#endif // FIXTURE_SNAPSHOT_BAD_HPP
