/**
 * @file
 * Tests for the extended substrate features: multi-channel DRAM,
 * closed-page policy, the write-drain watermark machinery, and the
 * drain-aware scheduler behaviors.
 */

#include <set>

#include <gtest/gtest.h>

#include "dram/dram.hpp"
#include "mc/memory_controller.hpp"
#include "mc/scheduler.hpp"

namespace asd
{
namespace
{

DramConfig
quiet(std::uint32_t channels = 1,
      PagePolicy policy = PagePolicy::Open)
{
    DramConfig config;
    config.refresh_enabled = false;
    config.channels = channels;
    config.page_policy = policy;
    return config;
}

TEST(DramChannels, DecodeSpreadsChannels)
{
    Dram dram(quiet(2));
    std::set<std::uint32_t> channels;
    for (LineAddr line = 0; line < 64ULL * 64; line += 64)
        channels.insert(dram.decode(line).channel);
    EXPECT_EQ(channels.size(), 2u);
    // Banks are globally unique across channels.
    EXPECT_LT(dram.decode(0).bank, 32u);
}

TEST(DramChannels, IndependentDataBuses)
{
    // Two same-cycle reads to different channels must not serialize
    // on a shared bus; to the same channel they must.
    // Page-interleaved, 2 channels: line 0 -> bank 0 (ch 0),
    // line 64 -> bank 1 (ch 1), line 128 -> bank 2 (ch 0).
    Dram two(quiet(2));
    const LineAddr ch0_a = 0;
    const LineAddr ch1 = 64;
    const LineAddr ch0_b = 128;
    ASSERT_EQ(two.decode(ch0_a).channel, 0u);
    ASSERT_EQ(two.decode(ch1).channel, 1u);
    ASSERT_EQ(two.decode(ch0_b).channel, 0u);
    ASSERT_NE(two.decode(ch0_a).bank, two.decode(ch0_b).bank);

    const Cycle same_a = two.issue(ch0_a, false, false, 0);
    const Cycle same_b = two.issue(ch0_b, false, false, 0);
    EXPECT_GT(same_b, same_a); // shared bus serializes

    Dram fresh(quiet(2));
    const Cycle cross_a = fresh.issue(ch0_a, false, false, 0);
    const Cycle cross_b = fresh.issue(ch1, false, false, 0);
    EXPECT_EQ(cross_a, cross_b); // independent buses overlap fully
}

TEST(DramClosedPage, NoRowHits)
{
    Dram dram(quiet(1, PagePolicy::Closed));
    Cycle now = 0;
    for (LineAddr line = 0; line < 8; ++line)
        now = dram.issue(line, false, false, now);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_EQ(dram.rowMisses(), 8u);
    EXPECT_FALSE(dram.rowOpen(0));
}

TEST(DramClosedPage, AvoidsConflictPrecharge)
{
    // Under closed page, a same-bank different-row sequence never
    // pays the conflict (precharge-then-activate) path: each access
    // costs the same.
    DramConfig config = quiet(1, PagePolicy::Closed);
    Dram dram(config);
    const LineAddr conflict = static_cast<LineAddr>(
        config.linesPerRow()) * config.totalBanks();
    const Cycle first = dram.issue(0, false, false, 0);
    const Cycle ready = dram.bankReadyAt(0);
    const Cycle second = dram.issue(conflict, false, false, ready);
    EXPECT_EQ(second - ready, first - 0);
}

TEST(McWriteDrain, WatermarkHysteresis)
{
    DramConfig dram_config = quiet();
    Dram dram(dram_config);
    McConfig config;
    config.write_drain_high = 4;
    config.write_drain_low = 1;
    MemoryController mc(config, dram, [](std::uint64_t, Cycle) {});

    for (std::uint64_t i = 0; i < 4; ++i)
        mc.enqueueWrite(i * 64, 0);
    EXPECT_FALSE(mc.drainingWrites());
    mc.tick(0); // sees 4 >= high -> drain mode
    EXPECT_TRUE(mc.drainingWrites());
    // Ticks move writes out; once <= low the mode clears.
    Cycle now = 1;
    while (mc.drainingWrites() && now < 10000)
        mc.tick(now++);
    EXPECT_FALSE(mc.drainingWrites());
    EXPECT_LT(now, 10000u);
}

TEST(McWriteDrain, DrainPrioritizesWritesOverYoungerReads)
{
    DramConfig dram_config = quiet();
    Dram dram(dram_config);
    AhbScheduler sched;
    std::deque<McCommand> reads;
    std::deque<McCommand> writes;
    McCommand read;
    read.line = 64;
    read.enqueued_at = 1;
    reads.push_back(read);
    McCommand write;
    write.line = 128;
    write.is_write = true;
    write.enqueued_at = 5;
    writes.push_back(write);

    const auto normal = sched.pick(reads, writes, dram, 10, false);
    ASSERT_TRUE(normal.has_value());
    EXPECT_FALSE(normal->from_write_queue);

    const auto draining = sched.pick(reads, writes, dram, 10, true);
    ASSERT_TRUE(draining.has_value());
    // With the write penalty lifted, the bank-idle write competes
    // evenly; AHB picks by cost then age, so the read (older) can
    // still win — but memoryless must take the write first.
    MemorylessScheduler memoryless;
    const auto m = memoryless.pick(reads, writes, dram, 10, true);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->from_write_queue);
}

TEST(McWriteDrain, FrFcfsBoostsWritesWhileDraining)
{
    DramConfig dram_config = quiet();
    Dram dram(dram_config);
    FrFcfsScheduler sched;
    std::deque<McCommand> reads;
    std::deque<McCommand> writes;
    McCommand read;
    read.line = 64;
    read.enqueued_at = 1;
    reads.push_back(read);
    McCommand write;
    write.line = 128;
    write.is_write = true;
    write.enqueued_at = 5;
    writes.push_back(write);

    const auto normal = sched.pick(reads, writes, dram, 10, false);
    ASSERT_TRUE(normal.has_value());
    EXPECT_FALSE(normal->from_write_queue); // both ready: oldest wins

    const auto draining = sched.pick(reads, writes, dram, 10, true);
    ASSERT_TRUE(draining.has_value());
    EXPECT_TRUE(draining->from_write_queue); // drain bonus wins
}

} // namespace
} // namespace asd
