/**
 * @file
 * Tests for the trace substrate: the synthetic generator's statistical
 * properties (stream-length distribution, intensity, write mix,
 * working-set confinement, phases, determinism) and the binary trace
 * file round trip.
 */

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "trace/synthetic.hpp"
#include "trace/trace_file.hpp"

namespace asd
{
namespace
{

SyntheticConfig
baseConfig()
{
    SyntheticConfig config;
    config.seed = 42;
    config.total_accesses = 50000;
    config.working_set_bytes = 64ULL << 20;
    config.mean_gap = 4.0;
    config.write_frac = 0.25;
    config.reuse_frac = 0.0;
    config.dependent_frac = 0.1;
    config.negative_dir_frac = 0.0;
    config.concurrent_streams = 1;
    config.phases = {PhaseProfile{{0.0, 1.0}, 0}}; // all length 2
    return config;
}

TEST(Synthetic, DeterministicAcrossInstances)
{
    SyntheticTraceGenerator a(baseConfig());
    SyntheticTraceGenerator b(baseConfig());
    MemAccess x;
    MemAccess y;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.gap, y.gap);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.dependent, y.dependent);
    }
}

TEST(Synthetic, ResetReplaysIdentically)
{
    SyntheticTraceGenerator gen(baseConfig());
    std::vector<Addr> first;
    MemAccess access;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(gen.next(access));
        first.push_back(access.addr);
    }
    gen.reset();
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(gen.next(access));
        EXPECT_EQ(access.addr, first[static_cast<std::size_t>(i)]);
    }
}

TEST(Synthetic, EmitsExactlyTotalAccesses)
{
    SyntheticConfig config = baseConfig();
    config.total_accesses = 1234;
    SyntheticTraceGenerator gen(config);
    MemAccess access;
    std::uint64_t count = 0;
    while (gen.next(access))
        ++count;
    EXPECT_EQ(count, 1234u);
    EXPECT_FALSE(gen.next(access));
}

TEST(Synthetic, AddressesStayInWorkingSet)
{
    SyntheticConfig config = baseConfig();
    config.working_set_bytes = 1ULL << 20;
    config.negative_dir_frac = 0.5;
    SyntheticTraceGenerator gen(config);
    MemAccess access;
    while (gen.next(access))
        EXPECT_LT(access.addr, config.working_set_bytes);
}

TEST(Synthetic, WriteFractionRespected)
{
    SyntheticTraceGenerator gen(baseConfig());
    MemAccess access;
    std::uint64_t writes = 0;
    std::uint64_t total = 0;
    while (gen.next(access)) {
        ++total;
        writes += access.op == MemOp::Write;
    }
    EXPECT_NEAR(static_cast<double>(writes) /
                    static_cast<double>(total),
                0.25, 0.02);
}

TEST(Synthetic, MeanGapApproximatelyRespected)
{
    SyntheticTraceGenerator gen(baseConfig());
    MemAccess access;
    double gap_sum = 0.0;
    std::uint64_t total = 0;
    while (gen.next(access)) {
        gap_sum += access.gap;
        ++total;
    }
    EXPECT_NEAR(gap_sum / static_cast<double>(total), 4.0, 0.4);
}

TEST(Synthetic, DependentOnlyOnReads)
{
    SyntheticConfig config = baseConfig();
    config.dependent_frac = 0.5;
    SyntheticTraceGenerator gen(config);
    MemAccess access;
    std::uint64_t dependent = 0;
    while (gen.next(access)) {
        if (access.dependent) {
            EXPECT_EQ(access.op, MemOp::Read);
        }
        dependent += access.dependent;
    }
    EXPECT_GT(dependent, 0u);
}

/**
 * Property: with a single stream, no reuse and no direction noise,
 * the emitted line sequence decomposes into runs whose length
 * distribution matches the configured PMF.
 */
TEST(Synthetic, StreamLengthsFollowPmf)
{
    SyntheticConfig config = baseConfig();
    config.total_accesses = 120000;
    config.write_frac = 0.0;
    config.phases = {PhaseProfile{{0.3, 0.5, 0.0, 0.2}, 0}};
    SyntheticTraceGenerator gen(config);

    std::map<std::uint64_t, std::uint64_t> runs;
    MemAccess access;
    LineAddr prev_line = ~LineAddr{0};
    std::uint64_t run = 0;
    while (gen.next(access)) {
        const LineAddr line = access.addr / config.line_bytes;
        if (line == prev_line)
            continue; // same-line touch
        if (line == prev_line + 1) {
            ++run;
        } else {
            if (run > 0)
                ++runs[run];
            run = 1;
        }
        prev_line = line;
    }
    if (run > 0)
        ++runs[run];

    std::uint64_t total = 0;
    for (const auto &[len, count] : runs)
        total += count;
    const double f1 =
        static_cast<double>(runs[1]) / static_cast<double>(total);
    const double f2 =
        static_cast<double>(runs[2]) / static_cast<double>(total);
    const double f4 =
        static_cast<double>(runs[4]) / static_cast<double>(total);
    EXPECT_NEAR(f1, 0.3, 0.03);
    EXPECT_NEAR(f2, 0.5, 0.03);
    EXPECT_NEAR(f4, 0.2, 0.03);
    // Length-3 runs can only arise from accidental adjacency of
    // independent streams; they must be rare.
    EXPECT_LE(runs[3], 8u);
}

TEST(Synthetic, TouchesPerLineRepeatLines)
{
    SyntheticConfig config = baseConfig();
    config.mean_touches_per_line = 4.0;
    config.total_accesses = 40000;
    SyntheticTraceGenerator gen(config);
    MemAccess access;
    LineAddr prev = ~LineAddr{0};
    std::uint64_t same = 0;
    std::uint64_t total = 0;
    while (gen.next(access)) {
        const LineAddr line = access.addr / config.line_bytes;
        same += line == prev;
        prev = line;
        ++total;
    }
    // With a mean of 4 touches, ~3/4 of consecutive accesses repeat
    // the line.
    EXPECT_NEAR(static_cast<double>(same) / static_cast<double>(total),
                0.75, 0.05);
}

TEST(Synthetic, PhasesSwitchDistributions)
{
    SyntheticConfig config = baseConfig();
    config.total_accesses = 40000;
    config.phases = {PhaseProfile{{1.0}, 20000},
                     PhaseProfile{{0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                                   1.0},
                                  20000}};
    SyntheticTraceGenerator gen(config);
    MemAccess access;
    LineAddr prev = ~LineAddr{0};
    std::uint64_t runs_first = 0;
    std::uint64_t longest_second = 0;
    std::uint64_t run = 0;
    for (std::uint64_t i = 0; i < 40000 && gen.next(access); ++i) {
        const LineAddr line = access.addr / config.line_bytes;
        if (line == prev + 1) {
            ++run;
        } else if (line != prev) {
            run = 1;
        }
        prev = line;
        if (i < 20000) {
            runs_first = std::max(runs_first, run);
        } else {
            longest_second = std::max(longest_second, run);
        }
    }
    EXPECT_LE(runs_first, 2u); // all-length-1 phase (noise-free)
    EXPECT_GE(longest_second, 6u);
}

TEST(Synthetic, RejectsBadConfigs)
{
    SyntheticConfig config = baseConfig();
    config.phases.clear();
    EXPECT_EXIT(SyntheticTraceGenerator{config},
                testing::ExitedWithCode(1), "phase");
}

TEST(TraceFile, RoundTrip)
{
    std::vector<MemAccess> accesses;
    for (std::uint64_t i = 0; i < 257; ++i) {
        MemAccess access;
        access.addr = i * 977 + 13;
        access.gap = static_cast<std::uint32_t>(i % 19);
        access.op = i % 3 == 0 ? MemOp::Write : MemOp::Read;
        access.dependent = i % 5 == 0 && access.op == MemOp::Read;
        accesses.push_back(access);
    }
    const std::string path = "/tmp/asd_trace_test.bin";
    writeTraceFile(path, accesses);
    const std::vector<MemAccess> loaded = readTraceFile(path);
    ASSERT_EQ(loaded.size(), accesses.size());
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, accesses[i].addr);
        EXPECT_EQ(loaded[i].gap, accesses[i].gap);
        EXPECT_EQ(loaded[i].op, accesses[i].op);
        EXPECT_EQ(loaded[i].dependent, accesses[i].dependent);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, FileSourceStreams)
{
    std::vector<MemAccess> accesses(3);
    accesses[0].addr = 1;
    accesses[1].addr = 2;
    accesses[2].addr = 3;
    const std::string path = "/tmp/asd_trace_test2.bin";
    writeTraceFile(path, accesses);
    FileTraceSource source(path);
    EXPECT_EQ(source.size(), 3u);
    MemAccess access;
    EXPECT_TRUE(source.next(access));
    EXPECT_EQ(access.addr, 1u);
    source.reset();
    EXPECT_TRUE(source.next(access));
    EXPECT_EQ(access.addr, 1u);
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFileFailsClearly)
{
    std::vector<MemAccess> accesses(100);
    for (std::size_t i = 0; i < accesses.size(); ++i)
        accesses[i].addr = i;
    const std::string path = "/tmp/asd_trace_trunc.bin";
    writeTraceFile(path, accesses);
    // Chop off the last few bytes: header still claims 100 records.
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 7);
    EXPECT_EXIT(readTraceFile(path), testing::ExitedWithCode(1),
                "truncated or corrupt");
    EXPECT_EXIT(FileTraceSource(path, TraceReadMode::Streamed),
                testing::ExitedWithCode(1), "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(TraceFile, StreamedMatchesEager)
{
    // More records than one streamed chunk (4096) so refill() runs
    // several times, with a non-chunk-aligned tail.
    std::vector<MemAccess> accesses;
    for (std::uint64_t i = 0; i < 10007; ++i) {
        MemAccess access;
        access.addr = i * 64 + (i % 7) * 1024;
        access.gap = static_cast<std::uint32_t>(i % 11);
        access.op = i % 4 == 0 ? MemOp::Write : MemOp::Read;
        access.dependent = i % 6 == 0 && access.op == MemOp::Read;
        accesses.push_back(access);
    }
    const std::string path = "/tmp/asd_trace_streamed.bin";
    writeTraceFile(path, accesses);

    FileTraceSource eager(path, TraceReadMode::Eager);
    FileTraceSource streamed(path, TraceReadMode::Streamed);
    EXPECT_EQ(eager.size(), accesses.size());
    EXPECT_EQ(streamed.size(), accesses.size());

    MemAccess a;
    MemAccess b;
    std::uint64_t count = 0;
    while (eager.next(a)) {
        ASSERT_TRUE(streamed.next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.gap, b.gap);
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.dependent, b.dependent);
        ++count;
    }
    EXPECT_FALSE(streamed.next(b));
    EXPECT_EQ(count, accesses.size());

    // reset() must rewind the streamed source to the first record.
    streamed.reset();
    ASSERT_TRUE(streamed.next(b));
    EXPECT_EQ(b.addr, accesses[0].addr);
    std::remove(path.c_str());
}

TEST(VectorSource, IterationAndReset)
{
    std::vector<MemAccess> accesses(2);
    accesses[1].addr = 128;
    VectorTraceSource source(accesses);
    MemAccess access;
    EXPECT_TRUE(source.next(access));
    EXPECT_TRUE(source.next(access));
    EXPECT_EQ(access.addr, 128u);
    EXPECT_FALSE(source.next(access));
    source.reset();
    EXPECT_TRUE(source.next(access));
}

} // namespace
} // namespace asd
