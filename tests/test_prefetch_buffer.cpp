/**
 * @file
 * Tests for the Prefetch Buffer (paper section 3.3): consume-on-read,
 * invalidate-on-write, LRU within sets, unused-eviction accounting,
 * and capacity.
 */

#include <gtest/gtest.h>

#include "core/prefetch_buffer.hpp"

namespace asd
{
namespace
{

TEST(PrefetchBuffer, InsertThenContains)
{
    PrefetchBuffer buffer(16, 4);
    EXPECT_FALSE(buffer.contains(7));
    buffer.insert(7);
    EXPECT_TRUE(buffer.contains(7));
    EXPECT_EQ(buffer.inserted(), 1u);
}

TEST(PrefetchBuffer, ConsumeInvalidatesAndCounts)
{
    PrefetchBuffer buffer(16, 4);
    buffer.insert(7);
    EXPECT_TRUE(buffer.consume(7));
    EXPECT_FALSE(buffer.contains(7)); // paper: read hit invalidates
    EXPECT_FALSE(buffer.consume(7));  // only once
    EXPECT_EQ(buffer.consumed(), 1u);
}

TEST(PrefetchBuffer, WriteInvalidates)
{
    PrefetchBuffer buffer(16, 4);
    buffer.insert(9);
    buffer.invalidateOnWrite(9);
    EXPECT_FALSE(buffer.contains(9));
    EXPECT_EQ(buffer.writeInvalidations(), 1u);
    buffer.invalidateOnWrite(9); // miss: no count
    EXPECT_EQ(buffer.writeInvalidations(), 1u);
}

TEST(PrefetchBuffer, EvictedUnusedCounted)
{
    PrefetchBuffer buffer(4, 4); // one set
    for (LineAddr line = 0; line < 5; ++line)
        buffer.insert(line);
    EXPECT_EQ(buffer.evictedUnused(), 1u);
    EXPECT_FALSE(buffer.contains(0)); // LRU victim
    EXPECT_TRUE(buffer.contains(4));
}

TEST(PrefetchBuffer, CapacityIsConfigured)
{
    PrefetchBuffer buffer(16, 4);
    EXPECT_EQ(buffer.capacityLines(), 16u);
    for (LineAddr line = 0; line < 16; ++line)
        buffer.insert(line);
    for (LineAddr line = 0; line < 16; ++line)
        EXPECT_TRUE(buffer.contains(line)) << line;
    buffer.insert(16);
    EXPECT_EQ(buffer.evictedUnused(), 1u);
}

TEST(PrefetchBuffer, WaysCappedAtLines)
{
    PrefetchBuffer tiny(2, 8); // ways capped to 2
    tiny.insert(0);
    tiny.insert(1);
    EXPECT_TRUE(tiny.contains(0));
    EXPECT_TRUE(tiny.contains(1));
}

TEST(PrefetchBuffer, ReinsertionIsNotAnEviction)
{
    PrefetchBuffer buffer(4, 4);
    buffer.insert(3);
    buffer.insert(3);
    EXPECT_EQ(buffer.inserted(), 2u);
    EXPECT_EQ(buffer.evictedUnused(), 0u);
}

} // namespace
} // namespace asd
