/**
 * @file
 * Tests for the DDR2 model: address decode, bank timing, row-buffer
 * behavior, data-bus serialization, refresh accounting and the power
 * model.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "dram/dram.hpp"
#include "dram/power.hpp"

namespace asd
{
namespace
{

DramConfig
quietConfig()
{
    DramConfig config;
    config.refresh_enabled = false;
    return config;
}

TEST(DramDecode, CoversAllBanks)
{
    Dram dram(quietConfig());
    std::set<std::uint32_t> banks;
    for (LineAddr line = 0; line < 64ULL * 16 * 4; line += 64)
        banks.insert(dram.decode(line).bank);
    EXPECT_EQ(banks.size(), dram.config().totalBanks());
}

TEST(DramDecode, ConsecutiveLinesShareARow)
{
    Dram dram(quietConfig());
    const DramCoord a = dram.decode(0);
    const DramCoord b = dram.decode(1);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.col + 1, b.col);
}

/** Property: decode is injective over a large address window. */
TEST(DramDecode, InjectiveProperty)
{
    Dram dram(quietConfig());
    std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>>
        seen;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const LineAddr line = rng.nextBelow(1ULL << 30);
        const DramCoord coord = dram.decode(line);
        EXPECT_LT(coord.rank, dram.config().ranks);
        EXPECT_LT(coord.bank, dram.config().totalBanks());
        EXPECT_LT(coord.col, dram.config().linesPerRow());
        seen.insert({coord.bank, coord.row, coord.col});
    }
    // Random 30-bit lines rarely collide; injectivity implies nearly
    // as many coordinates as draws.
    EXPECT_GT(seen.size(), 19900u);
}

TEST(DramDecode, LineInterleavedStripesBanks)
{
    DramConfig config;
    config.refresh_enabled = false;
    config.addr_map = AddrMap::LineInterleaved;
    Dram dram(config);
    for (LineAddr line = 0; line + 1 < dram.config().totalBanks();
         ++line) {
        EXPECT_NE(dram.decode(line).bank, dram.decode(line + 1).bank);
    }
}

TEST(DramDecode, XorPageStillCoversAllBanks)
{
    DramConfig config;
    config.refresh_enabled = false;
    config.addr_map = AddrMap::XorPage;
    Dram dram(config);
    std::set<std::uint32_t> banks;
    for (LineAddr line = 0; line < 64ULL * 16 * 32; line += 64)
        banks.insert(dram.decode(line).bank);
    EXPECT_EQ(banks.size(), dram.config().totalBanks());
}

TEST(DramDecode, RowOpenTracksIssuedRow)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    EXPECT_FALSE(dram.rowOpen(0));
    dram.issue(0, false, false, 0);
    EXPECT_TRUE(dram.rowOpen(1));  // same row
    EXPECT_FALSE(dram.rowOpen(64)); // other bank, closed
}

TEST(DramTiming, RowHitFasterThanRowMiss)
{
    Dram dram(quietConfig());
    const Cycle first = dram.issue(0, false, false, 0);
    // Same row: hit.
    const Cycle hit = dram.issue(1, false, false, first);
    // Same bank, different row: miss with precharge.
    const LineAddr other_row =
        static_cast<LineAddr>(dram.config().linesPerRow()) *
        dram.config().banks_per_rank * dram.config().ranks;
    ASSERT_EQ(dram.decode(other_row).bank, dram.decode(0).bank);
    ASSERT_NE(dram.decode(other_row).row, dram.decode(0).row);
    const Cycle miss = dram.issue(other_row, false, false, hit);
    EXPECT_LT(hit - first, miss - hit);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowMisses(), 2u);
}

TEST(DramTiming, BackToBackRowHitsPipeline)
{
    Dram dram(quietConfig());
    dram.issue(0, false, false, 0);
    Cycle prev = dram.issue(1, false, false, 0);
    for (LineAddr line = 2; line < 8; ++line) {
        const Cycle done = dram.issue(line, false, false, 0);
        // Data-bus limited: one burst apart.
        EXPECT_EQ(done - prev,
                  static_cast<Cycles>(dram.config().t_burst) *
                      dram.config().cpu_per_dram_clk);
        prev = done;
    }
}

TEST(DramTiming, CompletionNeverBeforeMinimumLatency)
{
    Dram dram(quietConfig());
    const DramConfig &config = dram.config();
    const Cycle done = dram.issue(12345, false, false, 1000);
    const Cycles minimum =
        static_cast<Cycles>(config.t_rcd + config.t_cl +
                            config.t_burst) *
        config.cpu_per_dram_clk;
    EXPECT_GE(done - 1000, minimum);
}

TEST(DramTiming, CanIssueReflectsBankBusy)
{
    Dram dram(quietConfig());
    EXPECT_TRUE(dram.canIssue(0, 0));
    dram.issue(0, false, false, 0);
    EXPECT_FALSE(dram.canIssue(1, 0)); // same bank, still busy
    EXPECT_TRUE(dram.canIssue(64, 0)); // different bank
    EXPECT_TRUE(dram.canIssue(1, dram.bankReadyAt(1)));
}

TEST(DramTiming, WritesAddRecovery)
{
    Dram dram(quietConfig());
    const Cycle write_done = dram.issue(0, true, false, 0);
    EXPECT_GT(dram.bankReadyAt(0), write_done);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(DramTiming, OccupantTracksPrefetchVsRegular)
{
    Dram dram(quietConfig());
    dram.issue(0, false, true, 0);
    EXPECT_EQ(dram.occupant(1, 0), BankOccupant::Prefetch);
    EXPECT_EQ(dram.occupant(64, 0), BankOccupant::None);
    const Cycle ready = dram.bankReadyAt(0);
    dram.issue(0, false, false, ready);
    EXPECT_EQ(dram.occupant(1, ready), BankOccupant::Regular);
}

TEST(DramTiming, BankConflictDetection)
{
    Dram dram(quietConfig());
    const LineAddr same_bank_other_row =
        static_cast<LineAddr>(dram.config().linesPerRow()) *
        dram.config().banks_per_rank * dram.config().ranks;
    EXPECT_TRUE(dram.bankConflict(0, same_bank_other_row));
    EXPECT_FALSE(dram.bankConflict(0, 1));  // same row
    EXPECT_FALSE(dram.bankConflict(0, 64)); // other bank
}

TEST(DramRefresh, ChargesRefreshesOverTime)
{
    DramConfig config;
    config.refresh_enabled = true;
    Dram dram(config);
    const Cycles refi =
        static_cast<Cycles>(config.t_refi) * config.cpu_per_dram_clk;
    // Issue a command long after several refresh deadlines passed.
    dram.issue(0, false, false, 10 * refi);
    EXPECT_GE(dram.refreshes(), 10u);
}

TEST(DramRefresh, DisabledModelNeverRefreshes)
{
    Dram dram(quietConfig());
    dram.issue(0, false, false, 100000000);
    EXPECT_EQ(dram.refreshes(), 0u);
}

TEST(DramPower, EnergyScalesWithActivity)
{
    const DramConfig config = quietConfig();
    Dram idle(config);
    Dram busy(config);
    Cycle now = 0;
    for (int i = 0; i < 100; ++i)
        now = busy.issue(static_cast<LineAddr>(i) * 64, i % 2 == 0,
                         false, now);
    const PowerModel model(config);
    const PowerReport idle_report = model.report(idle, now);
    const PowerReport busy_report = model.report(busy, now);
    EXPECT_GT(busy_report.totalPj(), idle_report.totalPj());
    EXPECT_DOUBLE_EQ(idle_report.activate_pj, 0.0);
    EXPECT_GT(busy_report.read_pj, 0.0);
    EXPECT_GT(busy_report.write_pj, 0.0);
}

TEST(DramPower, AveragePowerConsistentWithEnergy)
{
    const DramConfig config = quietConfig();
    Dram dram(config);
    const Cycle elapsed = 1000000;
    const PowerModel model(config);
    const PowerReport report = model.report(dram, elapsed);
    const double seconds = static_cast<double>(elapsed) / 2.132e9;
    EXPECT_NEAR(report.averageWatts(elapsed, 2.132e9),
                report.totalPj() * 1e-12 / seconds, 1e-9);
}

TEST(DramPower, ZeroElapsedIsZeroWatts)
{
    const DramConfig config = quietConfig();
    Dram dram(config);
    const PowerModel model(config);
    EXPECT_DOUBLE_EQ(model.report(dram, 0).averageWatts(0, 2.132e9),
                     0.0);
}

TEST(DramStats, CountsMatchIssuedCommands)
{
    Dram dram(quietConfig());
    Cycle now = 0;
    for (int i = 0; i < 10; ++i)
        now = dram.issue(static_cast<LineAddr>(i), false, false, now);
    for (int i = 0; i < 5; ++i)
        now = dram.issue(static_cast<LineAddr>(i) + 1000, true, false,
                         now);
    EXPECT_EQ(dram.reads(), 10u);
    EXPECT_EQ(dram.writes(), 5u);
    EXPECT_EQ(dram.rowHits() + dram.rowMisses(), 15u);
}

} // namespace
} // namespace asd
