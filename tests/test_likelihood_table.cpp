/**
 * @file
 * Tests for the LHTcurr/LHTnext machinery (paper section 3.4):
 * stream recording, mid-epoch depletion, zero clamping, the epoch
 * swap protocol, and equivalence of the hardware comparator decision
 * with the paper's inequality (5) evaluated on raw counts.
 */

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/random.hpp"
#include "core/likelihood_table.hpp"
#include "core/slh_math.hpp"

namespace asd
{
namespace
{

TEST(Lht, RecordStreamIncrementsPrefix)
{
    LikelihoodTable table(8);
    table.recordStream(3);
    EXPECT_EQ(table.at(1), 1u);
    EXPECT_EQ(table.at(2), 1u);
    EXPECT_EQ(table.at(3), 1u);
    EXPECT_EQ(table.at(4), 0u);
}

TEST(Lht, LongStreamsSaturateAtTableSize)
{
    LikelihoodTable table(4);
    table.recordStream(100);
    EXPECT_EQ(table.at(4), 1u);
    EXPECT_EQ(table.at(5), 0u); // beyond the table
}

TEST(Lht, RemoveStreamDecrementsWithClamp)
{
    // removeStream treats an underflow as an add/remove mismatch and
    // panics under ASD_CHECK; checks off restores the silent clamp.
    ScopedChecks off(false);
    LikelihoodTable table(8);
    table.recordStream(2);
    table.removeStream(5); // longer than anything recorded
    EXPECT_EQ(table.at(1), 0u);
    EXPECT_EQ(table.at(2), 0u);
    EXPECT_EQ(table.at(3), 0u); // clamped, no underflow
}

TEST(LhtDeathTest, RemoveStreamUnderflowPanicsUnderChecks)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    LikelihoodTable table(8);
    table.recordStream(2);
    EXPECT_DEATH(
        {
            ScopedChecks on(true);
            table.removeStream(5);
        },
        "LHT underflow");
}

TEST(Lht, RemoveStreamSaturatingCountsClamps)
{
    LikelihoodTable table(8);
    table.recordStream(2);
    EXPECT_EQ(table.underflowClamps(), 0u);
    table.removeStreamSaturating(5); // entries 3..5 were already 0
    EXPECT_EQ(table.at(1), 0u);
    EXPECT_EQ(table.at(3), 0u);
    EXPECT_EQ(table.underflowClamps(), 3u);
    table.removeStreamSaturating(1);
    EXPECT_EQ(table.underflowClamps(), 4u);
}

TEST(Lht, PairStreamDiedSaturatesEvenUnderChecks)
{
    // Epoch-boundary depletion is *normal* (LHTcurr starts as a copy
    // of the previous epoch's population, all-zero in epoch 1), so
    // the pair's removal path must clamp-and-count, never panic.
    ScopedChecks on(true);
    LikelihoodTablePair pair(8);
    pair.streamDied(3);
    EXPECT_EQ(pair.underflowClamps(), 3u);
    EXPECT_EQ(pair.next().at(3), 1u); // still recorded for next epoch
}

TEST(Lht, CountsAreMonotoneNonIncreasing)
{
    LikelihoodTable table(16);
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        table.recordStream(rng.nextInRange(1, 20));
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_GE(table.at(i), table.at(i + 1));
}

TEST(Lht, HardwareDecisionMatchesInequalityFive)
{
    LikelihoodTable table(16);
    Rng rng(11);
    for (int i = 0; i < 300; ++i)
        table.recordStream(rng.nextInRange(1, 18));
    for (std::size_t k = 1; k <= 16; ++k) {
        EXPECT_EQ(table.shouldPrefetch(k),
                  table.at(k) < 2 * table.at(k + 1))
            << "k=" << k;
        EXPECT_EQ(table.shouldPrefetch(k),
                  shouldPrefetchNext(table.counts(), k));
    }
}

TEST(Lht, PairStreamDiedUpdatesBothTables)
{
    LikelihoodTablePair pair(8);
    // Seed curr via an epoch swap.
    pair.epochEnd(std::vector<std::uint64_t>{3, 3});
    EXPECT_EQ(pair.curr().at(2), 2u);
    EXPECT_EQ(pair.next().at(1), 0u);

    pair.streamDied(2);
    EXPECT_EQ(pair.next().at(1), 1u); // accumulated for next epoch
    EXPECT_EQ(pair.next().at(2), 1u);
    EXPECT_EQ(pair.curr().at(1), 1u); // depleted from current
    EXPECT_EQ(pair.curr().at(2), 1u);
    EXPECT_EQ(pair.curr().at(3), 2u); // length-3 entries untouched
}

TEST(Lht, EpochEndFoldsLeftoversAndSwaps)
{
    LikelihoodTablePair pair(8);
    pair.streamDied(4);
    pair.streamDied(1);
    pair.epochEnd(std::vector<std::uint64_t>{2});
    // curr = {len4, len1, len2 leftover}.
    EXPECT_EQ(pair.curr().at(1), 3u);
    EXPECT_EQ(pair.curr().at(2), 2u);
    EXPECT_EQ(pair.curr().at(4), 1u);
    // next is cleared.
    EXPECT_EQ(pair.next().at(1), 0u);
}

TEST(Lht, SteadyStateDepletionPreservesDecisions)
{
    // Identical epochs: halfway through an epoch the depleted curr
    // table must make the same prefetch decisions as the fresh one.
    LikelihoodTablePair pair(16);
    auto feed_epoch_half = [&pair]() {
        for (int i = 0; i < 50; ++i) {
            pair.streamDied(1);
            pair.streamDied(2);
            pair.streamDied(2);
            pair.streamDied(6);
        }
    };
    feed_epoch_half();
    feed_epoch_half();
    pair.epochEnd(std::vector<std::uint64_t>{});
    std::vector<bool> fresh;
    for (std::size_t k = 1; k <= 8; ++k)
        fresh.push_back(pair.curr().shouldPrefetch(k));
    feed_epoch_half(); // deplete half of curr
    for (std::size_t k = 1; k <= 8; ++k) {
        EXPECT_EQ(pair.curr().shouldPrefetch(k), fresh[k - 1])
            << "k=" << k;
    }
}

TEST(Lht, ClearZeroes)
{
    LikelihoodTable table(4);
    table.recordStream(4);
    table.clear();
    for (std::size_t i = 1; i <= 4; ++i)
        EXPECT_EQ(table.at(i), 0u);
}

TEST(Lht, LoadFromCopies)
{
    LikelihoodTable a(4);
    LikelihoodTable b(4);
    a.recordStream(3);
    b.loadFrom(a);
    EXPECT_EQ(b.at(3), 1u);
    a.recordStream(3);
    EXPECT_EQ(b.at(3), 1u); // deep copy
}

} // namespace
} // namespace asd
