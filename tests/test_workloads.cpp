/**
 * @file
 * Tests for the workload profiles and PMF helpers: suite membership,
 * lookup, profile sanity (every benchmark runs), and the PMF builder
 * functions.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/slh_math.hpp"
#include "workloads/pmf.hpp"
#include "workloads/profiles.hpp"

namespace asd
{
namespace
{

TEST(Workloads, SuiteSizesMatchPaper)
{
    EXPECT_EQ(suiteBenchmarks(Suite::Spec2006fp).size(), 17u);
    EXPECT_EQ(suiteBenchmarks(Suite::Nas).size(), 8u);
    EXPECT_EQ(suiteBenchmarks(Suite::Commercial).size(), 5u);
}

TEST(Workloads, SuiteNames)
{
    EXPECT_EQ(suiteName(Suite::Spec2006fp), "SPEC2006fp");
    EXPECT_EQ(suiteName(Suite::Nas), "NAS");
    EXPECT_EQ(suiteName(Suite::Commercial), "Commercial");
}

TEST(Workloads, FindBenchmarkAcrossSuites)
{
    EXPECT_EQ(findBenchmark("lbm").name, "lbm");
    EXPECT_EQ(findBenchmark("cg").name, "cg");
    EXPECT_EQ(findBenchmark("notesbench").name, "notesbench");
}

TEST(Workloads, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(findBenchmark("nosuchthing"),
                testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Workloads, DetailedStudySetMatchesPaper)
{
    const auto benches = detailedStudyBenchmarks();
    ASSERT_EQ(benches.size(), 8u);
    EXPECT_EQ(benches[0].name, "bwaves");
    EXPECT_EQ(benches[2].name, "GemsFDTD");
    EXPECT_EQ(benches[4].name, "tpcc");
    EXPECT_EQ(benches[7].name, "notesbench");
}

TEST(Workloads, AllProfilesHaveDistinctSeeds)
{
    std::set<std::uint64_t> seeds;
    for (const Suite suite :
         {Suite::Spec2006fp, Suite::Nas, Suite::Commercial}) {
        for (const Benchmark &bench : suiteBenchmarks(suite))
            EXPECT_TRUE(seeds.insert(bench.trace.seed).second)
                << bench.name;
    }
}

TEST(Workloads, AllProfilesConstructGenerators)
{
    for (const Suite suite :
         {Suite::Spec2006fp, Suite::Nas, Suite::Commercial}) {
        for (const Benchmark &bench : suiteBenchmarks(suite)) {
            SyntheticConfig config = bench.trace;
            config.total_accesses = 100;
            SyntheticTraceGenerator gen(config);
            MemAccess access;
            std::uint64_t count = 0;
            while (gen.next(access))
                ++count;
            EXPECT_EQ(count, 100u) << bench.name;
        }
    }
}

TEST(Workloads, CommercialProfilesAreShortStreamHeavy)
{
    for (const Benchmark &bench : suiteBenchmarks(Suite::Commercial)) {
        const auto &weights =
            bench.trace.phases.front().stream_len_weights;
        double total = 0.0;
        double short_mass = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            total += weights[i];
            if (i < 5)
                short_mass += weights[i];
        }
        EXPECT_GT(short_mass / total, 0.75) << bench.name;
    }
}

/**
 * Paper fidelity (section 3.1): GemsFDTD's Fig. 2 histogram must
 * drive exactly the narrated decisions — prefetch when the current
 * stream length is 1, 3, or greater than 6 (up to the table edge),
 * and not when it is 2, 4, 5 or 6.
 */
TEST(Workloads, GemsPhaseAMatchesPaperDecisions)
{
    std::vector<double> bars = {21.8, 43.7, 11.13, 10.12, 5.75, 3.14,
                                0.70, 0.62, 0.54,  0.46,  0.39, 0.32,
                                0.27, 0.22, 0.18,  0.66};
    const auto weights = readWeightedToStreamCounts(bars);
    // Build an integer lht() table from the stream-count weights.
    std::vector<std::uint64_t> lht(16, 0);
    for (std::size_t i = 0; i < 16; ++i) {
        double suffix = 0.0;
        for (std::size_t j = i; j < 16; ++j)
            suffix += weights[j];
        lht[i] = static_cast<std::uint64_t>(suffix * 100000.0);
    }
    const std::map<std::size_t, bool> expected = {
        {1, true},  {2, false}, {3, true},  {4, false},
        {5, false}, {6, false}, {7, true},  {8, true},
        {9, true},  {10, true}, {11, true}, {12, true},
        {13, true}, {14, true}, {15, true}, {16, false}};
    for (const auto &[k, want] : expected)
        EXPECT_EQ(shouldPrefetchNext(lht, k), want) << "k=" << k;
}

TEST(Pmf, GeometricShape)
{
    const auto weights = geometricPmf(0.5, 4);
    ASSERT_EQ(weights.size(), 4u);
    EXPECT_DOUBLE_EQ(weights[0], 1.0);
    EXPECT_DOUBLE_EQ(weights[1], 0.5);
    EXPECT_DOUBLE_EQ(weights[3], 0.125);
}

TEST(Pmf, PeakedShape)
{
    const auto weights = peakedPmf(3, 1, 5);
    EXPECT_DOUBLE_EQ(weights[2], 1.0); // peak at length 3
    EXPECT_GT(weights[1], 0.0);
    EXPECT_DOUBLE_EQ(weights[0], 0.0); // outside the width
    EXPECT_DOUBLE_EQ(weights[4], 0.0);
}

TEST(Pmf, ReadWeightedConversion)
{
    const auto weights = readWeightedToStreamCounts({10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(weights[0], 10.0);
    EXPECT_DOUBLE_EQ(weights[1], 10.0);
    EXPECT_DOUBLE_EQ(weights[2], 10.0);
}

TEST(Pmf, BlendInterpolates)
{
    const auto blended = blendPmf({1.0, 0.0}, {0.0, 1.0}, 0.25);
    EXPECT_DOUBLE_EQ(blended[0], 0.25);
    EXPECT_DOUBLE_EQ(blended[1], 0.75);
}

} // namespace
} // namespace asd
