/**
 * @file
 * Tests for the phase-adaptive tuner (src/tuner/): change-point
 * detection over epoch telemetry, the shadow candidate neighborhood,
 * the per-decision recorder and its sinks, live applyTuning
 * semantics, and checkpoint/restore of a whole tuned run.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "core/asd_prefetcher.hpp"
#include "sim/experiment.hpp"
#include "snapshot/snapshot.hpp"
#include "tuner/phase_detector.hpp"
#include "tuner/shadow_tuner.hpp"
#include "tuner/tuned_run.hpp"
#include "tuner/tuner_recorder.hpp"

namespace asd
{
namespace
{

// --- PhaseDetector --------------------------------------------------

TunerConfig
detectorConfig(std::uint32_t window = 3,
               std::uint32_t threshold = 40000)
{
    TunerConfig config;
    config.phase_window = window;
    config.phase_threshold_milli_pct = threshold;
    return config;
}

/** An epoch with a "suggestion rate" signature of @p suggested/1000. */
EpochRecord
epochWith(std::uint64_t suggested)
{
    EpochRecord rec;
    rec.reads = 1000;
    rec.suggested = suggested;
    rec.prefetches_issued = suggested;
    rec.buffer_consumed = suggested / 2;
    rec.buffer_hits = suggested / 2;
    rec.dram_row_hits = 600;
    rec.dram_row_misses = 400;
    return rec;
}

TEST(PhaseDetector, SeedWindowNeverFires)
{
    PhaseDetector det(detectorConfig());
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(det.observe(epochWith(100))) << i;
    EXPECT_EQ(det.phase(), 0u);
    EXPECT_EQ(det.epochsObserved(), 3u);
}

TEST(PhaseDetector, StableTelemetryKeepsOnePhase)
{
    PhaseDetector det(detectorConfig());
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(det.observe(epochWith(100))) << i;
    EXPECT_EQ(det.phase(), 0u);
}

TEST(PhaseDetector, FiresOnSustainedShift)
{
    PhaseDetector det(detectorConfig());
    for (int i = 0; i < 3; ++i)
        det.observe(epochWith(100));
    // 100 -> 900 suggestions per 1000 reads: an 800% feature shift,
    // far beyond the 40% threshold.
    EXPECT_TRUE(det.observe(epochWith(900)));
    EXPECT_EQ(det.phase(), 1u);
}

TEST(PhaseDetector, WindowRestartEnforcesMinimumSpacing)
{
    PhaseDetector det(detectorConfig());
    for (int i = 0; i < 3; ++i)
        det.observe(epochWith(100));
    ASSERT_TRUE(det.observe(epochWith(900)));
    // The reference window restarted from the new regime, so even an
    // immediate flip back cannot fire until it refills: consecutive
    // boundaries are >= phase_window + 1 epochs apart.
    EXPECT_FALSE(det.observe(epochWith(100)));
    EXPECT_FALSE(det.observe(epochWith(100)));
    EXPECT_EQ(det.phase(), 1u);
}

TEST(PhaseDetector, SmallWiggleStaysBelowThreshold)
{
    PhaseDetector det(detectorConfig(3, 40000));
    for (int i = 0; i < 3; ++i)
        det.observe(epochWith(100));
    // A 10% wiggle against a 40% threshold.
    EXPECT_FALSE(det.observe(epochWith(110)));
    EXPECT_EQ(det.phase(), 0u);
}

TEST(PhaseDetector, FeaturesAreIntegerMilliRates)
{
    EpochRecord rec;
    rec.reads = 2000;
    rec.suggested = 500;
    rec.suppressed = 100;
    rec.prefetches_issued = 400;
    rec.buffer_consumed = 300;
    rec.buffer_hits = 200;
    rec.dram_row_hits = 750;
    rec.dram_row_misses = 250;
    rec.read_q_hwm = 3;
    rec.write_q_hwm = 2;
    rec.caq_hwm = 1;
    rec.lpq_hwm = 1;
    const std::vector<std::int64_t> feats =
        PhaseDetector::features(rec);
    ASSERT_EQ(feats.size(), 6u);
    EXPECT_EQ(feats[0], 75000); // consumed/issued
    EXPECT_EQ(feats[1], 10000); // buffer hits/reads
    EXPECT_EQ(feats[2], 25000); // suggested/reads
    EXPECT_EQ(feats[3], 5000);  // suppressed/reads
    EXPECT_EQ(feats[4], 75000); // row-hit ratio
    EXPECT_EQ(feats[5], 7000);  // queue pressure
}

TEST(PhaseDetector, SnapshotRoundTripContinuesExactly)
{
    PhaseDetector a(detectorConfig());
    for (int i = 0; i < 2; ++i)
        a.observe(epochWith(100));

    SnapshotWriter w;
    w.beginSection("det");
    a.saveState(w);
    w.endSection();
    const std::vector<std::uint8_t> bytes = w.finish(0);

    PhaseDetector b(detectorConfig());
    SnapshotReader r(bytes);
    r.openSection("det");
    b.loadState(r);
    r.endSection();

    // Both see the same future: one more seed epoch, then a shift.
    EXPECT_EQ(a.observe(epochWith(100)), b.observe(epochWith(100)));
    EXPECT_EQ(a.observe(epochWith(900)), b.observe(epochWith(900)));
    EXPECT_EQ(a.phase(), b.phase());
    EXPECT_EQ(a.epochsObserved(), b.epochsObserved());
}

// --- ShadowTuner candidate neighborhood -----------------------------

ShadowTuner
makeShadowTuner(const TunerConfig &config)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.mc_prefetcher = McPrefetcherKind::Asd;
    return ShadowTuner(config, makeSystemConfig(options),
                       []() {
                           return std::vector<
                               std::unique_ptr<TraceSource>>{};
                       });
}

TEST(ShadowTuner, CandidatesAreDedupedOneKnobNeighbors)
{
    TunerConfig config;
    config.shadow_threads = 1;
    config.space.degrees = {1, 2, 4};
    config.space.filter_slots = {8};
    config.space.buffer_lines = {16};
    config.space.epoch_reads = {2000};
    config.space.policies = {0, 2};
    const ShadowTuner tuner = makeShadowTuner(config);

    AsdTuning current; // defaults: d1, 2000 reads, 8 slots, 16 lines
    const std::vector<AsdTuning> out = tuner.candidates(current);

    // Incumbent, degree 2, degree 4, pinned policy 2 — every value
    // equal to the incumbent's own coordinate deduplicates away
    // (degree 1, slots 8, lines 16, epoch 2000, policy 0 = the
    // incumbent's adaptive walk).
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], current);
    AsdTuning d2 = current;
    d2.max_degree = 2;
    EXPECT_EQ(out[1], d2);
    AsdTuning d4 = current;
    d4.max_degree = 4;
    EXPECT_EQ(out[2], d4);
    EXPECT_FALSE(out[3].sched.adaptive);
    EXPECT_EQ(out[3].sched.fixed_policy, 2);
    EXPECT_EQ(out[3].max_degree, current.max_degree);
}

TEST(ShadowTuner, PolicyZeroReenablesAdaptiveWalk)
{
    TunerConfig config;
    config.shadow_threads = 1;
    config.space.degrees = {};
    config.space.filter_slots = {};
    config.space.buffer_lines = {};
    config.space.epoch_reads = {};
    config.space.policies = {0};
    const ShadowTuner tuner = makeShadowTuner(config);

    AsdTuning pinned;
    pinned.sched.adaptive = false;
    pinned.sched.fixed_policy = 4;
    const std::vector<AsdTuning> out = tuner.candidates(pinned);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], pinned);
    EXPECT_TRUE(out[1].sched.adaptive);
}

// --- TunerRecorder and sinks ----------------------------------------

TunerDecision
sampleDecision(std::uint64_t index)
{
    TunerDecision d;
    d.decision = index;
    d.cycle = 1000 * (index + 1);
    d.epoch = 10 + index;
    d.phase = index;
    d.candidates = 4;
    d.shadow_cycles = 240000;
    d.adopted_change = index % 2 == 0;
    d.adopted.max_degree = 2;
    d.adopted.sched.adaptive = false;
    d.adopted.sched.fixed_policy = 3;
    d.incumbent_shadow_accesses = 500;
    d.winner_shadow_accesses = 520;
    d.accesses_at_decision = 9000 + index;
    return d;
}

TEST(TunerRecorder, RealizeFillsTheRightDecision)
{
    TunerRecorder rec;
    rec.append(sampleDecision(0));
    rec.append(sampleDecision(1));
    rec.realize(1, 12345);
    ASSERT_EQ(rec.decisions().size(), 2u);
    EXPECT_FALSE(rec.decisions()[0].realized_valid);
    EXPECT_TRUE(rec.decisions()[1].realized_valid);
    EXPECT_EQ(rec.decisions()[1].realized_accesses, 12345u);
    // Out-of-range realize warns and is otherwise a no-op.
    rec.realize(7, 1);
    EXPECT_EQ(rec.decisions().size(), 2u);
}

TEST(TunerRecorder, CsvHasHeaderAndOneRowPerDecision)
{
    TunerRecorder rec;
    rec.append(sampleDecision(0));
    rec.append(sampleDecision(1));
    std::ostringstream out;
    writeTunerCsv(rec.decisions(), out);
    const std::string csv = out.str();
    EXPECT_EQ(csv.find("decision,cycle,epoch,phase"), 0u);
    std::size_t lines = 0;
    for (const char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3u); // header + 2 rows
    // The policy column carries the TuneSpace encoding (pinned 3).
    EXPECT_NE(csv.find(",3,500,520,"), std::string::npos);
}

TEST(TunerRecorder, JsonParsesAndRoundsTrip)
{
    TunerRecorder rec;
    rec.append(sampleDecision(0));
    rec.realize(0, 9999);
    const auto doc = jsonParse(tunerJson(rec.decisions()));
    ASSERT_TRUE(doc.has_value());
    const JsonValue *format = doc->find("format");
    ASSERT_NE(format, nullptr);
    ASSERT_NE(format->asString(), nullptr);
    EXPECT_EQ(*format->asString(), "asdsim/tuner/v1");
    const JsonValue *decisions = doc->find("decisions");
    ASSERT_NE(decisions, nullptr);
    ASSERT_EQ(decisions->items().size(), 1u);
    const JsonValue &d = decisions->items()[0];
    EXPECT_EQ(d.find("realized_accesses")->asU64(), 9999u);
    EXPECT_EQ(d.find("adopted")->find("policy")->asU64(), 3u);
}

TEST(TunerRecorder, SnapshotRoundTripPreservesEveryField)
{
    TunerRecorder a;
    a.append(sampleDecision(0));
    a.append(sampleDecision(1));
    a.realize(0, 777);

    SnapshotWriter w;
    w.beginSection("rec");
    a.saveState(w);
    w.endSection();
    const std::vector<std::uint8_t> bytes = w.finish(0);

    TunerRecorder b;
    SnapshotReader r(bytes);
    r.openSection("rec");
    b.loadState(r);
    r.endSection();

    // Byte-stable sinks make field-exhaustive comparison one line.
    std::ostringstream csv_a;
    std::ostringstream csv_b;
    writeTunerCsv(a.decisions(), csv_a);
    writeTunerCsv(b.decisions(), csv_b);
    EXPECT_EQ(csv_a.str(), csv_b.str());
    EXPECT_EQ(tunerJson(a.decisions()), tunerJson(b.decisions()));
}

// --- Live applyTuning semantics -------------------------------------

TEST(ApplyTuning, DegreeAndEpochChangeConfigOnly)
{
    AsdPrefetcher pf{AsdConfig{}};
    AsdTuning t = tuningOf(AsdConfig{});
    t.max_degree = 4;
    t.epoch_reads = 4000;
    pf.applyTuning(t);
    EXPECT_EQ(pf.config().max_degree, 4u);
    EXPECT_EQ(pf.config().epoch_reads, 4000u);
    EXPECT_EQ(pf.config().filter_slots, 8u);
}

TEST(ApplyTuning, BufferResizePreservesResidentLines)
{
    AsdPrefetcher pf{AsdConfig{}};
    pf.fillBuffer(42, 0);
    AsdTuning t = tuningOf(AsdConfig{});
    t.buffer_lines = 32;
    pf.applyTuning(t);
    EXPECT_EQ(pf.buffer().capacityLines(), 32u);
    EXPECT_TRUE(pf.bufferContains(42));
}

TEST(ApplyTuning, PinnedPolicyTakesEffectImmediately)
{
    AsdPrefetcher pf{AsdConfig{}};
    AsdTuning t = tuningOf(AsdConfig{});
    t.sched.adaptive = false;
    t.sched.fixed_policy = 5;
    pf.applyTuning(t);
    EXPECT_EQ(pf.schedulingPolicy(), 5);
}

// --- TunedRun checkpoint/restore ------------------------------------

TEST(TunedRun, SnapshotSplitMatchesStraightRun)
{
    const Benchmark bench = findBenchmark("GemsFDTD");
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.mc_prefetcher = McPrefetcherKind::Asd;
    options.tuner.enabled = true;
    options.tuner.shadow_horizon = 20000;
    options.tuner.phase_threshold_milli_pct = 15000;
    options.tuner.shadow_threads = 2;
    options.tuner.space.degrees = {1, 2};
    options.tuner.space.filter_slots = {};
    options.tuner.space.buffer_lines = {};
    options.tuner.space.epoch_reads = {};
    options.tuner.space.policies = {};
    const std::uint64_t accesses = 150000;

    TunedRun straight(bench, options, accesses);
    const TunedRunResult want = straight.run();
    // The split must land mid-run with the tuner already active,
    // otherwise this test degenerates to the plain snapshot test.
    ASSERT_GE(want.decisions.size(), 1u);

    TunedRun first(bench, options, accesses);
    first.runUntil(want.metrics.cycles / 2);
    SnapshotWriter w;
    first.saveSnapshot(w);
    const std::vector<std::uint8_t> bytes = w.finish(0);

    TunedRun second(bench, options, accesses);
    SnapshotReader r(bytes);
    second.loadSnapshot(r);
    second.runUntil(kNoCycle);
    const TunedRunResult got = second.result();

    EXPECT_EQ(got.metrics.cycles, want.metrics.cycles);
    EXPECT_EQ(got.metrics.accesses, want.metrics.accesses);
    EXPECT_EQ(got.metrics.mc_reads, want.metrics.mc_reads);
    EXPECT_EQ(got.metrics.ms_prefetches_issued,
              want.metrics.ms_prefetches_issued);
    EXPECT_EQ(got.epochs.size(), want.epochs.size());
    // The sinks serialize every TunerDecision field, so equal output
    // means the full decision logs (including realized measurements
    // queued across the split) are identical.
    EXPECT_EQ(tunerJson(got.decisions), tunerJson(want.decisions));
}

} // namespace
} // namespace asd
