/**
 * @file
 * Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
 * invariants that must hold across configuration spaces — every
 * reorder scheduler, every LPQ policy, a range of filter/buffer
 * geometries, and randomized traffic seeds.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/asd_prefetcher.hpp"
#include "core/prefetch_buffer.hpp"
#include "core/stream_filter.hpp"
#include "dram/dram.hpp"
#include "mc/memory_controller.hpp"
#include "mc/scheduler.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

namespace asd
{
namespace
{

// ---- every scheduler drains every command exactly once ----

class SchedulerSweep
    : public testing::TestWithParam<std::tuple<SchedulerKind, int>>
{
};

TEST_P(SchedulerSweep, AllCommandsCompleteExactlyOnce)
{
    const auto [kind, seed] = GetParam();
    DramConfig dram_config;
    dram_config.refresh_enabled = false;
    Dram dram(dram_config);
    McConfig mc_config;
    mc_config.scheduler = kind;

    std::vector<std::uint64_t> completed;
    MemoryController mc(mc_config, dram,
                        [&completed](std::uint64_t id, Cycle) {
                            completed.push_back(id);
                        });

    Rng rng(static_cast<std::uint64_t>(seed));
    std::uint64_t next_id = 1;
    std::uint64_t reads_sent = 0;
    std::uint64_t writes_sent = 0;
    Cycle now = 0;
    while (reads_sent + writes_sent < 200 && now < 100000) {
        if (rng.chance(0.3) && mc.canAcceptRead()) {
            mc.enqueueRead(rng.nextBelow(1 << 20), next_id++, 0, now);
            ++reads_sent;
        }
        if (rng.chance(0.1) && mc.canAcceptWrite()) {
            mc.enqueueWrite(rng.nextBelow(1 << 20), now);
            ++writes_sent;
        }
        mc.tick(now++);
    }
    while (!mc.idle() && now < 200000)
        mc.tick(now++);

    ASSERT_TRUE(mc.idle());
    EXPECT_EQ(completed.size(), reads_sent);
    std::sort(completed.begin(), completed.end());
    EXPECT_EQ(std::unique(completed.begin(), completed.end()),
              completed.end());
    EXPECT_EQ(dram.writes(), writes_sent);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerSweep,
    testing::Combine(testing::Values(SchedulerKind::InOrder,
                                     SchedulerKind::Memoryless,
                                     SchedulerKind::Ahb),
                     testing::Values(1, 2, 3)));

// ---- every LPQ policy eventually issues prefetches when idle, and
// ---- the controller still completes all demand traffic ----

class PolicyPrefetcher : public MemSidePrefetcher
{
  public:
    explicit PolicyPrefetcher(int policy) : policy_(policy) {}

    std::vector<LineAddr>
    observeRead(LineAddr line, std::uint32_t, Cycle) override
    {
        return {line + 1};
    }
    void observeWrite(LineAddr, Cycle) override {}
    bool
    lookupBuffer(LineAddr line) override
    {
        const auto it = buffer_.find(line);
        if (it == buffer_.end())
            return false;
        buffer_.erase(it);
        return true;
    }
    bool bufferContains(LineAddr line) const override
    {
        return buffer_.count(line) > 0;
    }
    void fillBuffer(LineAddr line, Cycle) override
    {
        buffer_.insert({line, true});
    }
    int schedulingPolicy() const override { return policy_; }
    void notifyPrefetchConflict(Cycle) override {}
    void tick(Cycle) override {}
    // Test double; never checkpointed.
    void saveState(SnapshotWriter &) const override {}
    void loadState(SnapshotReader &) override {}

  private:
    int policy_;
    std::map<LineAddr, bool> buffer_;
};

class LpqPolicySweep : public testing::TestWithParam<int>
{
};

TEST_P(LpqPolicySweep, PrefetchesIssueAndDemandsComplete)
{
    DramConfig dram_config;
    dram_config.refresh_enabled = false;
    Dram dram(dram_config);
    std::size_t completions = 0;
    MemoryController mc(McConfig{}, dram,
                        [&completions](std::uint64_t, Cycle) {
                            ++completions;
                        });
    PolicyPrefetcher pf(GetParam());
    mc.attachPrefetcher(&pf);

    Cycle now = 0;
    for (std::uint64_t i = 0; i < 50; ++i) {
        while (!mc.canAcceptRead())
            mc.tick(now++);
        mc.enqueueRead(i * 1000, i, 0, now);
        mc.tick(now++);
    }
    while (mc.hasWork() && now < 100000)
        mc.tick(now++);

    EXPECT_EQ(completions, 50u);
    // Every policy lets prefetches through once the controller
    // quiesces between demands.
    EXPECT_GT(mc.prefetchesIssued(), 0u)
        << "policy " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LpqPolicySweep,
                         testing::Values(1, 2, 3, 4, 5));

// ---- Stream Filter geometry sweep: conservation of reads ----

class FilterSweep : public testing::TestWithParam<std::uint32_t>
{
};

/**
 * Property: every observed read is accounted for exactly once across
 * stream-length records — sum(length x count) of all dead streams +
 * overflow singles == reads observed — for any slot count.
 */
TEST_P(FilterSweep, ReadConservation)
{
    const std::uint32_t slots = GetParam();
    StreamFilter filter(slots, 400, 400);
    Rng rng(slots + 7);

    std::uint64_t reads = 0;
    std::uint64_t accounted = 0;
    std::vector<LineAddr> cursors(6);
    for (auto &cursor : cursors)
        cursor = rng.nextBelow(1 << 20);

    for (Cycle now = 0; now < 30000; now += 10) {
        for (const DeadStream &dead : filter.expireLifetimes(now))
            accounted += dead.length;
        auto &cursor = cursors[rng.nextBelow(cursors.size())];
        if (rng.chance(0.3))
            cursor = rng.nextBelow(1 << 20); // new stream
        const StreamObservation obs = filter.observe(cursor, now);
        // Same-line repeats (cursor collisions) refresh a lifetime
        // without contributing length; exclude them from the count.
        if (obs.kind != StreamObservation::Kind::SameLine)
            ++reads;
        if (obs.kind == StreamObservation::Kind::Overflow)
            accounted += 1;
        ++cursor;
    }
    for (const DeadStream &dead : filter.flushAll())
        accounted += dead.length;
    EXPECT_EQ(accounted, reads);
}

INSTANTIATE_TEST_SUITE_P(Geometries, FilterSweep,
                         testing::Values(1u, 2u, 4u, 8u, 16u, 64u,
                                         0u /* oracle */));

// ---- Prefetch Buffer geometry sweep: capacity invariant ----

class BufferSweep
    : public testing::TestWithParam<std::pair<std::uint32_t,
                                              std::uint32_t>>
{
};

TEST_P(BufferSweep, NeverExceedsCapacity)
{
    const auto [lines, ways] = GetParam();
    PrefetchBuffer buffer(lines, ways);
    Rng rng(lines * 31 + ways);
    // Distinct lines per insert so re-insertion merging (counted as
    // an insert without a victim) does not enter the identity.
    for (std::uint64_t i = 0; i < 2000; ++i) {
        buffer.insert(i);
        if (rng.chance(0.3))
            buffer.consume(rng.nextBelow(i + 1));
        if (rng.chance(0.1))
            buffer.invalidateOnWrite(rng.nextBelow(i + 1));
    }
    // Residency never exceeds capacity: inserted == consumed +
    // write-invalidated + evicted + still-resident, and resident
    // lines number at most `lines`.
    std::uint64_t resident = 0;
    for (LineAddr line = 0; line < 4096; ++line)
        resident += buffer.contains(line);
    EXPECT_LE(resident, lines);
    EXPECT_EQ(buffer.inserted(),
              buffer.consumed() + buffer.writeInvalidations() +
                  buffer.evictedUnused() + resident);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BufferSweep,
    testing::Values(std::pair<std::uint32_t, std::uint32_t>{8, 4},
                    std::pair<std::uint32_t, std::uint32_t>{16, 4},
                    std::pair<std::uint32_t, std::uint32_t>{32, 8},
                    std::pair<std::uint32_t, std::uint32_t>{1024, 16},
                    std::pair<std::uint32_t, std::uint32_t>{4, 1}));

// ---- ASD decision invariance across random training histories ----

class AsdDecisionSweep : public testing::TestWithParam<int>
{
};

/**
 * Property: after any training history, the facade's emitted
 * candidates for the k-th element of a fresh stream equal the raw
 * inequality (5)/(6) evaluated on its live LHTcurr.
 */
TEST_P(AsdDecisionSweep, FacadeMatchesRawInequality)
{
    AsdConfig config;
    config.epoch_reads = 100;
    config.lifetime_init = 200;
    config.lifetime_extend = 200;
    AsdPrefetcher pf(config);
    Rng rng(static_cast<std::uint64_t>(GetParam()));

    // Random training: two epochs of random-length streams.
    Cycle now = 0;
    for (int s = 0; s < 60; ++s) {
        now += 1000;
        pf.tick(now);
        const auto len = rng.nextInRange(1, 10);
        const LineAddr base = 1'000'000 + static_cast<LineAddr>(s) *
                                              10'000;
        for (LineAddr i = 0; i < len; ++i)
            pf.observeRead(base + i, 0, now);
    }
    now += 1000;
    pf.tick(now);

    // Probe a fresh stream and check each step against the table.
    const LineAddr probe = 500;
    for (LineAddr i = 0; i < 6; ++i) {
        const bool expect_prefetch =
            pf.lhtCurr(0, StreamDir::Positive)
                .shouldPrefetch(static_cast<std::size_t>(i) + 1);
        const auto out = pf.observeRead(probe + i, 0, now);
        EXPECT_EQ(!out.empty(), expect_prefetch) << "k=" << i + 1;
        if (!out.empty()) {
            EXPECT_EQ(out[0], probe + i + 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsdDecisionSweep,
                         testing::Range(1, 9));

// ---- DRAM timing monotonicity across speed grades ----

class DramTimingSweep : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DramTimingSweep, SlowerTimingsNeverFinishEarlier)
{
    const std::uint32_t extra = GetParam();
    DramConfig fast;
    fast.refresh_enabled = false;
    DramConfig slow = fast;
    slow.t_rcd += extra;
    slow.t_cl += extra;
    slow.t_rp += extra;

    Dram dram_fast(fast);
    Dram dram_slow(slow);
    Rng rng(extra);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        const LineAddr line = rng.nextBelow(1 << 18);
        const bool is_write = rng.chance(0.2);
        const Cycle done_fast =
            dram_fast.issue(line, is_write, false, now);
        const Cycle done_slow =
            dram_slow.issue(line, is_write, false, now);
        EXPECT_GE(done_slow, done_fast);
        now += 30;
    }
}

INSTANTIATE_TEST_SUITE_P(SpeedGrades, DramTimingSweep,
                         testing::Values(1u, 2u, 4u, 8u));

// ---- whole-system configuration matrix ----

class SystemMatrix
    : public testing::TestWithParam<
          std::tuple<PrefetchMode, McPrefetcherKind, SchedulerKind>>
{
};

/**
 * Smoke + invariants across the full configuration matrix: every
 * combination must retire the whole trace deterministically with
 * physically sensible metrics.
 */
TEST_P(SystemMatrix, RunsToCompletionWithSaneMetrics)
{
    const auto [mode, mc_kind, sched] = GetParam();

    SyntheticConfig trace_config;
    trace_config.seed = 99;
    trace_config.total_accesses = 12000;
    trace_config.working_set_bytes = 128ULL << 20;
    trace_config.mean_gap = 5.0;
    trace_config.mean_touches_per_line = 6.0;
    trace_config.dependent_frac = 0.1;
    trace_config.concurrent_streams = 4;
    trace_config.phases = {
        PhaseProfile{{0.4, 0.3, 0.2, 0.3, 0.4, 0.5}, 0}};

    auto run = [&]() {
        SyntheticTraceGenerator trace(trace_config);
        SystemConfig config;
        config.mode = mode;
        config.mc_prefetcher = mc_kind;
        config.mc.scheduler = sched;
        System system(config, {&trace});
        return system.run();
    };
    const RunMetrics a = run();
    const RunMetrics b = run();

    EXPECT_EQ(a.accesses, 12000u);
    EXPECT_EQ(a.cycles, b.cycles); // determinism
    EXPECT_GT(a.cycles, 0u);
    EXPECT_GE(a.useful_prefetch_pct, 0.0);
    EXPECT_LE(a.useful_prefetch_pct, 100.0);
    EXPECT_LE(a.coverage_pct, 100.0);
    if (mode == PrefetchMode::NP || mode == PrefetchMode::PS) {
        EXPECT_EQ(a.ms_prefetches_issued, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemMatrix,
    testing::Combine(
        testing::Values(PrefetchMode::NP, PrefetchMode::PS,
                        PrefetchMode::MS, PrefetchMode::PMS),
        testing::Values(McPrefetcherKind::Asd,
                        McPrefetcherKind::NextLine,
                        McPrefetcherKind::P5Style,
                        McPrefetcherKind::Ghb,
                        McPrefetcherKind::Stride),
        testing::Values(SchedulerKind::Ahb, SchedulerKind::FrFcfs,
                        SchedulerKind::InOrder)));

} // namespace
} // namespace asd
