/**
 * @file
 * Tests for the cache substrate: set-associative tag store (LRU,
 * dirty bits, prefetch flags, non-power-of-two sets), the MSHR file,
 * and the victim-L3 three-level hierarchy (inclusion of L1 in L2,
 * victim promotion, writeback generation).
 */

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/mshr.hpp"

namespace asd
{
namespace
{

CacheConfig
tinyCache(std::uint32_t ways = 2, std::uint64_t sets = 2)
{
    CacheConfig config;
    config.ways = ways;
    config.line_bytes = 128;
    config.size_bytes = sets * ways * config.line_bytes;
    return config;
}

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.access(1, false));
    cache.insert(1, false);
    EXPECT_TRUE(cache.access(1, false));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    SetAssocCache cache(tinyCache(2, 2));
    // Same set: lines 0, 2, 4 (set = line % 2 == 0).
    cache.insert(0, false);
    cache.insert(2, false);
    cache.access(0, false); // 0 becomes MRU; 2 is LRU
    const auto victim = cache.insert(4, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 2u);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(2));
}

TEST(Cache, DirtyBitTracksStores)
{
    SetAssocCache cache(tinyCache());
    cache.insert(3, false);
    cache.access(3, true);
    const auto victim = cache.invalidate(3);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, InsertMergesDirtyOnReinsertion)
{
    SetAssocCache cache(tinyCache());
    cache.insert(3, true);
    cache.insert(3, false); // refresh, must keep dirty
    const auto victim = cache.invalidate(3);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
}

TEST(Cache, PrefetchFlagClearsOnUse)
{
    SetAssocCache cache(tinyCache());
    cache.insert(5, false, true);
    EXPECT_TRUE(cache.access(5, false));
    EXPECT_EQ(cache.prefetchHits(), 1u);
    const auto victim = cache.invalidate(5);
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(victim->was_prefetch); // used, flag cleared
}

TEST(Cache, UnusedPrefetchReportedOnEviction)
{
    SetAssocCache cache(tinyCache());
    cache.insert(5, false, true);
    const auto victim = cache.invalidate(5);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->was_prefetch);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    SetAssocCache cache(tinyCache());
    cache.insert(1, false);
    cache.probe(1);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(Cache, NonPowerOfTwoSets)
{
    // 3 sets x 2 ways (Power5 L2 geometry is 1536 sets).
    SetAssocCache cache(tinyCache(2, 3));
    for (LineAddr line = 0; line < 6; ++line)
        cache.insert(line, false);
    for (LineAddr line = 0; line < 6; ++line)
        EXPECT_TRUE(cache.probe(line)) << line;
}

TEST(Cache, InvalidateMissReturnsNothing)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.invalidate(9).has_value());
}

TEST(Mshr, MergeAndRelease)
{
    MshrFile mshr(2);
    EXPECT_FALSE(mshr.allocate(10)); // new entry
    EXPECT_TRUE(mshr.allocate(10));  // merged
    EXPECT_TRUE(mshr.has(10));
    EXPECT_EQ(mshr.inUse(), 1u);
    EXPECT_EQ(mshr.release(10), 2u);
    EXPECT_EQ(mshr.inUse(), 0u);
    EXPECT_EQ(mshr.release(10), 0u);
}

TEST(Mshr, CapacityIsEntries)
{
    MshrFile mshr(2);
    mshr.allocate(1);
    mshr.allocate(2);
    EXPECT_TRUE(mshr.full());
    mshr.allocate(1); // merge still fine when full
    EXPECT_EQ(mshr.inUse(), 2u);
}

// ---- hierarchy ----

HierarchyConfig
tinyHierarchy()
{
    HierarchyConfig config;
    config.l1 = {2 * 128, 2, 128};  // 1 set x 2 ways
    config.l2 = {8 * 128, 2, 128};  // 4 sets x 2 ways
    config.l3 = {16 * 128, 2, 128}; // 8 sets x 2 ways
    return config;
}

TEST(Hierarchy, MissGoesToMemoryWithoutAllocating)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    const AccessResult result = hierarchy.access(100, false);
    EXPECT_TRUE(result.needs_memory);
    EXPECT_EQ(result.level, HitLevel::Memory);
    EXPECT_FALSE(hierarchy.probe(HitLevel::L2, 100));
}

TEST(Hierarchy, FillInstallsInL1AndL2NotL3)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fill(100, false);
    EXPECT_TRUE(hierarchy.probe(HitLevel::L1, 100));
    EXPECT_TRUE(hierarchy.probe(HitLevel::L2, 100));
    EXPECT_FALSE(hierarchy.probe(HitLevel::L3, 100)); // victim cache
}

TEST(Hierarchy, HitLatenciesOrdered)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fill(100, false);
    const AccessResult l1 = hierarchy.access(100, false);
    EXPECT_EQ(l1.level, HitLevel::L1);
    // Push 100 out of L1 only (L1 has 1 set x 2 ways).
    hierarchy.fill(101, false);
    hierarchy.fill(102, false);
    const AccessResult l2 = hierarchy.access(100, false);
    EXPECT_EQ(l2.level, HitLevel::L2);
    EXPECT_GT(l2.latency, l1.latency);
}

TEST(Hierarchy, L2VictimFallsIntoL3AndPromotesBack)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    // L2 set of line 0 holds lines {0, 4}; filling 8 evicts one.
    hierarchy.fill(0, false);
    hierarchy.fill(4, false);
    hierarchy.fill(8, false);
    // The victim (line 0, LRU) must now be in L3 only.
    EXPECT_FALSE(hierarchy.probe(HitLevel::L2, 0));
    EXPECT_TRUE(hierarchy.probe(HitLevel::L3, 0));
    // Accessing it promotes it back to L2 and removes the L3 copy.
    const AccessResult result = hierarchy.access(0, false);
    EXPECT_EQ(result.level, HitLevel::L3);
    EXPECT_TRUE(hierarchy.probe(HitLevel::L2, 0));
    EXPECT_FALSE(hierarchy.probe(HitLevel::L3, 0));
}

TEST(Hierarchy, DirtyDataSurvivesVictimRoundTrip)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fill(0, true); // dirty (RFO fill)
    hierarchy.fill(4, false);
    hierarchy.fill(8, false); // evicts dirty 0 into L3
    EXPECT_TRUE(hierarchy.probe(HitLevel::L3, 0));
    hierarchy.access(0, false); // promote back (still dirty)
    // Evict it again; it must stay dirty through both trips.
    hierarchy.fill(4, false);
    hierarchy.fill(8, false);
    // Now force the L3 copy out: its L3 set cycles with +16 strides.
    hierarchy.fill(16, false);
    hierarchy.fill(20, false);
    hierarchy.fill(24, false);
    // (exact eviction pattern varies; just drain and look for line 0)
    bool wrote_zero = false;
    for (const LineAddr line : hierarchy.drainWritebacks())
        wrote_zero = wrote_zero || line == 0;
    // Either still cached somewhere, or it was written back dirty.
    const bool still_cached = hierarchy.probe(HitLevel::L2, 0) ||
                              hierarchy.probe(HitLevel::L3, 0);
    EXPECT_TRUE(wrote_zero || still_cached);
}

TEST(Hierarchy, StoreHitMarksL2Dirty)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fill(0, false);
    const AccessResult result = hierarchy.access(0, true);
    EXPECT_EQ(result.level, HitLevel::L2);
    // Evict through L2 and L3; the dirty line must eventually be
    // written back.
    hierarchy.fill(4, false);
    hierarchy.fill(8, false);
    for (LineAddr line = 16; line <= 128; line += 4)
        hierarchy.fill(line, false);
    bool wrote_zero = false;
    for (const LineAddr line : hierarchy.drainWritebacks())
        wrote_zero = wrote_zero || line == 0;
    EXPECT_TRUE(wrote_zero ||
                hierarchy.probe(HitLevel::L2, 0) ||
                hierarchy.probe(HitLevel::L3, 0));
}

TEST(Hierarchy, StoreMissNeedsMemory)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    const AccessResult result = hierarchy.access(0, true);
    EXPECT_TRUE(result.needs_memory);
}

TEST(Hierarchy, L1StaysSubsetOfL2)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fill(0, false);
    hierarchy.fill(4, false);
    hierarchy.fill(8, false); // evicts 0 from L2
    EXPECT_FALSE(hierarchy.probe(HitLevel::L1, 0));
}

TEST(Hierarchy, PrefetchFillLevels)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fillPrefetchL1(0);
    EXPECT_TRUE(hierarchy.probe(HitLevel::L1, 0));
    EXPECT_TRUE(hierarchy.probe(HitLevel::L2, 0));
    hierarchy.fillPrefetchL2(4);
    EXPECT_FALSE(hierarchy.probe(HitLevel::L1, 4));
    EXPECT_TRUE(hierarchy.probe(HitLevel::L2, 4));
}

TEST(Hierarchy, PrefetchedLineCountsAsPrefetchHitOnUse)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.fillPrefetchL1(0);
    hierarchy.access(0, false);
    EXPECT_EQ(hierarchy.l1().prefetchHits(), 1u);
}

TEST(Hierarchy, CleanEvictionsProduceNoWritebacks)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    for (LineAddr line = 0; line < 64; line += 4)
        hierarchy.fill(line, false);
    EXPECT_TRUE(hierarchy.drainWritebacks().empty());
}

} // namespace
} // namespace asd
