/**
 * @file
 * Sweep-runner subsystem tests: parallel-vs-serial determinism,
 * structured failure capture, edge cases (empty job list, one
 * thread, more threads than jobs), the soft timeout, the JSON/CSV
 * result sinks (records must be parseable), the JSON serialization
 * helpers, and the hardened ASD_BENCH_SCALE parser.
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "runner/result_sink.hpp"
#include "runner/sweep_runner.hpp"
#include "runner/thread_pool.hpp"
#include "runner/warm_start.hpp"
#include "sim/serialize.hpp"
#include "snapshot/snapshot.hpp"

namespace
{

using namespace asd;

/** Trace length that keeps one job in the low milliseconds. */
constexpr std::uint64_t kShortTrace = 2000;

/** The acceptance sweep: 4 benchmarks x the four paper modes. */
std::vector<JobSpec>
fourWaySweepJobs()
{
    std::vector<JobSpec> jobs;
    const std::vector<Benchmark> benches = detailedStudyBenchmarks();
    for (std::size_t b = 0; b < 4; ++b) {
        for (const PrefetchMode mode :
             {PrefetchMode::NP, PrefetchMode::PS, PrefetchMode::MS,
              PrefetchMode::PMS}) {
            RunOptions options;
            options.mode = mode;
            options.accesses = kShortTrace;
            jobs.push_back(makeJob(benches[b], options));
        }
    }
    return jobs;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count](unsigned) { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // no tasks: must not hang
    EXPECT_EQ(pool.threadCount(), 2u);
}

TEST(JobId, EncodesVariedFields)
{
    const Benchmark &bench = findBenchmark("bwaves");
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.buffer_lines = 32;
    const std::string id = makeJobId(bench, options, 7);
    EXPECT_NE(id.find("bwaves"), std::string::npos);
    EXPECT_NE(id.find("MS"), std::string::npos);
    EXPECT_NE(id.find("pb32"), std::string::npos);
    EXPECT_NE(id.find("seed7"), std::string::npos);

    RunOptions other = options;
    other.filter_slots = 16;
    EXPECT_NE(makeJobId(bench, options), makeJobId(bench, other));
}

TEST(SweepRunner, ParallelMatchesSerialAndWritesJson)
{
    const std::vector<JobSpec> jobs = fourWaySweepJobs();
    ASSERT_EQ(jobs.size(), 16u);

    SweepOptions serial_options;
    serial_options.threads = 1;
    const std::vector<JobResult> serial =
        SweepRunner(serial_options).run(jobs);

    const std::filesystem::path dir = "results/test_runner_sweep";
    std::filesystem::remove_all(dir);
    JsonDirSink sink(dir.string());
    SweepOptions parallel_options;
    parallel_options.threads = 4;
    parallel_options.sink = &sink;
    const std::vector<JobResult> parallel =
        SweepRunner(parallel_options).run(jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(serial[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_EQ(parallel[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_EQ(serial[i].spec.id, parallel[i].spec.id);
        // Bit-identical metrics regardless of thread count.
        EXPECT_TRUE(serial[i].metrics == parallel[i].metrics)
            << jobs[i].id;
    }

    // Every record plus the manifest must be valid JSON.
    const std::string manifest = readFile(dir / "manifest.json");
    ASSERT_FALSE(manifest.empty());
    EXPECT_TRUE(jsonParseCheck(manifest));
    EXPECT_NE(manifest.find("\"jobs\":16"), std::string::npos);
    EXPECT_NE(manifest.find("\"ok\":16"), std::string::npos);
    std::size_t records = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename() == "manifest.json")
            continue;
        const std::string record = readFile(entry.path());
        EXPECT_TRUE(jsonParseCheck(record)) << entry.path();
        EXPECT_NE(record.find("\"cycles\""), std::string::npos);
        EXPECT_NE(record.find("\"options\""), std::string::npos);
        ++records;
    }
    EXPECT_EQ(records, jobs.size());
}

TEST(SweepRunner, FailingJobYieldsFailureRecordOthersComplete)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(4);
    jobs[1].id = "boomjob";
    jobs[1].body = [](const JobSpec &) -> RunMetrics {
        throw std::runtime_error("boom");
    };

    SweepOptions options;
    options.threads = 2;
    const std::vector<JobResult> results =
        SweepRunner(options).run(jobs);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[1].status, JobStatus::Failed);
    EXPECT_NE(results[1].error.find("boom"), std::string::npos);
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_EQ(results[i].status, JobStatus::Ok);
        EXPECT_GT(results[i].metrics.cycles, 0u);
    }

    // Failure records serialize with null metrics, still parseable.
    const std::string record =
        JsonDirSink::recordJson(results[1]);
    EXPECT_TRUE(jsonParseCheck(record));
    EXPECT_NE(record.find("\"status\":\"failed\""),
              std::string::npos);
    EXPECT_NE(record.find("\"metrics\":null"), std::string::npos);
}

TEST(SweepRunner, EmptyJobListFinishesImmediately)
{
    SweepOptions options;
    options.threads = 4;
    SweepRunner runner(options);
    const std::vector<JobResult> results = runner.run({});
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(runner.lastSummary().jobs, 0u);
    EXPECT_EQ(runner.lastSummary().failed, 0u);
}

TEST(SweepRunner, MoreThreadsThanJobs)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(2);
    SweepOptions options;
    options.threads = 16;
    SweepRunner runner(options);
    const std::vector<JobResult> results = runner.run(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    // The pool is clamped to the job count.
    EXPECT_EQ(runner.lastSummary().threads, 2u);
}

TEST(SweepRunner, SoftTimeoutDowngradesResult)
{
    JobSpec job;
    job.id = "sleeper";
    job.bench = findBenchmark("bwaves");
    job.timeout_ms = 1.0;
    job.body = [](const JobSpec &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return RunMetrics{};
    };
    const JobResult result = runJob(job);
    EXPECT_EQ(result.status, JobStatus::TimedOut);
    EXPECT_NE(result.error.find("timeout"), std::string::npos);
    EXPECT_GE(result.wall_ms, 1.0);
}

TEST(SweepRunner, ProgressHookSeesEveryJob)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(6);
    std::vector<SweepProgress> snapshots;
    SweepOptions options;
    options.threads = 3;
    options.on_progress = [&snapshots](const SweepProgress &p) {
        snapshots.push_back(p);
    };
    SweepRunner(options).run(jobs);
    ASSERT_EQ(snapshots.size(), jobs.size());
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        EXPECT_EQ(snapshots[i].done, i + 1);
        EXPECT_EQ(snapshots[i].total, jobs.size());
        EXPECT_GE(snapshots[i].eta_ms, 0.0);
    }
    EXPECT_EQ(snapshots.back().ok, jobs.size());
}

TEST(ResultSink, CsvHasOneRowPerJobPlusHeader)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(3);
    const std::filesystem::path path =
        "results/test_runner_sweep.csv";
    std::filesystem::remove(path);
    {
        CsvSink sink(path.string());
        SweepOptions options;
        options.threads = 2;
        options.sink = &sink;
        SweepRunner(options).run(jobs);
    }
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, jobs.size() + 1);
}

TEST(Serialize, JsonHelpersEmitParseableDocuments)
{
    RunOptions options;
    options.fixed_policy = 3;
    options.accesses = 12345;
    const std::string options_json = toJson(options);
    EXPECT_TRUE(jsonParseCheck(options_json));
    EXPECT_NE(options_json.find("\"mode\":\"PMS\""),
              std::string::npos);
    EXPECT_NE(options_json.find("\"fixed_policy\":3"),
              std::string::npos);

    RunMetrics metrics;
    metrics.cycles = 42;
    metrics.dram_watts = 1.25;
    const std::string metrics_json = toJson(metrics);
    EXPECT_TRUE(jsonParseCheck(metrics_json));
    EXPECT_NE(metrics_json.find("\"cycles\":42"), std::string::npos);
    EXPECT_NE(metrics_json.find("\"dram_watts\":1.25"),
              std::string::npos);
}

TEST(Serialize, EnumRoundTrips)
{
    for (const PrefetchMode mode :
         {PrefetchMode::NP, PrefetchMode::PS, PrefetchMode::MS,
          PrefetchMode::PMS})
        EXPECT_EQ(parsePrefetchMode(toString(mode)), mode);
    for (const McPrefetcherKind kind :
         {McPrefetcherKind::Asd, McPrefetcherKind::NextLine,
          McPrefetcherKind::P5Style, McPrefetcherKind::Ghb,
          McPrefetcherKind::Stride})
        EXPECT_EQ(parseMcPrefetcherKind(toString(kind)), kind);
    EXPECT_EQ(parsePrefetchMode("np"), std::nullopt);
    EXPECT_EQ(parseMcPrefetcherKind("bogus"), std::nullopt);
}

TEST(Json, WriterAndChecker)
{
    JsonWriter writer;
    writer.beginObject()
        .key("a")
        .value(std::uint64_t{1})
        .key("b")
        .beginArray()
        .value("x\"y")
        .value(true)
        .null()
        .value(-2.5)
        .endArray()
        .endObject();
    EXPECT_EQ(writer.str(),
              "{\"a\":1,\"b\":[\"x\\\"y\",true,null,-2.5]}");
    EXPECT_TRUE(jsonParseCheck(writer.str()));

    EXPECT_TRUE(jsonParseCheck("[]"));
    EXPECT_TRUE(jsonParseCheck("  {\"k\": [1, 2.0e-3, \"s\"]} "));
    EXPECT_FALSE(jsonParseCheck(""));
    EXPECT_FALSE(jsonParseCheck("{"));
    EXPECT_FALSE(jsonParseCheck("{\"a\":}"));
    EXPECT_FALSE(jsonParseCheck("{} trailing"));
    EXPECT_FALSE(jsonParseCheck("[1,]"));
    EXPECT_FALSE(jsonParseCheck("nan"));
}

// --- warm-start reuse ----------------------------------------------

/** A small grid whose jobs share warm-ups across MS knobs. */
std::vector<JobSpec>
warmStartGridJobs(Cycle warmup)
{
    std::vector<JobSpec> jobs;
    const std::vector<Benchmark> benches = detailedStudyBenchmarks();
    for (std::size_t b = 0; b < 2; ++b) {
        for (const PrefetchMode mode :
             {PrefetchMode::MS, PrefetchMode::PMS}) {
            for (const std::uint32_t lines : {8u, 32u}) {
                RunOptions options;
                options.mode = mode;
                options.buffer_lines = lines;
                options.accesses = kShortTrace;
                options.warmup_cycles = warmup;
                jobs.push_back(makeJob(benches[b], options));
            }
        }
    }
    return jobs;
}

TEST(WarmStart, KeyIgnoresMemorySideKnobsOnly)
{
    std::vector<JobSpec> jobs = warmStartGridJobs(3000);
    // Same benchmark, same PS presence, different Prefetch Buffer
    // size: one warm-up.
    EXPECT_EQ(warmupKey(jobs[0]), warmupKey(jobs[1]));
    // PMS has a processor side, MS does not: different warm-ups.
    EXPECT_NE(warmupKey(jobs[0]), warmupKey(jobs[2]));
    // Different benchmark: different warm-up.
    EXPECT_NE(warmupKey(jobs[0]), warmupKey(jobs[8]));
    // Different warm-up length: different warm-up.
    JobSpec longer = jobs[0];
    longer.options.warmup_cycles = 4000;
    EXPECT_NE(warmupKey(jobs[0]), warmupKey(longer));

    EXPECT_TRUE(warmStartEligible(jobs[0]));
    JobSpec cold = jobs[0];
    cold.options.warmup_cycles = 0;
    EXPECT_FALSE(warmStartEligible(cold));
    JobSpec custom = jobs[0];
    custom.body = [](const JobSpec &) { return RunMetrics{}; };
    EXPECT_FALSE(warmStartEligible(custom));
}

TEST(WarmStart, SweepMatchesColdStartBitForBit)
{
    const std::vector<JobSpec> jobs = warmStartGridJobs(3000);

    SweepOptions cold_options;
    cold_options.threads = 2;
    const std::vector<JobResult> cold =
        SweepRunner(cold_options).run(jobs);

    SweepOptions warm_options;
    warm_options.threads = 2;
    warm_options.warm_start = true;
    SweepRunner warm_runner(warm_options);
    const std::vector<JobResult> warm = warm_runner.run(jobs);

    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(cold[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_EQ(warm[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_TRUE(cold[i].metrics == warm[i].metrics)
            << jobs[i].id;
    }
    EXPECT_EQ(warm_runner.lastSummary().warm_started, jobs.size());
}

TEST(WarmStart, CacheComputesEachKeyOnce)
{
    WarmupCache cache;
    std::atomic<int> made{0};
    const auto make = [&made] {
        ++made;
        SnapshotWriter writer;
        writer.beginSection("x");
        writer.u64(1);
        writer.endSection();
        return writer.finish(fnv1a64("k1"));
    };
    const auto a = cache.obtain("k1", make);
    const auto b = cache.obtain("k1", make);
    EXPECT_EQ(made.load(), 1);
    EXPECT_EQ(a.get(), b.get());
}

TEST(WarmStart, DiskCachePersistsAndRejectsDamage)
{
    const std::filesystem::path dir = "results/test_warm_cache";
    std::filesystem::remove_all(dir);

    std::atomic<int> made{0};
    const auto make = [&made] {
        ++made;
        SnapshotWriter writer;
        writer.beginSection("x");
        writer.u64(1);
        writer.endSection();
        return writer.finish(fnv1a64("k1"));
    };
    {
        WarmupCache cache(dir.string());
        cache.obtain("k1", make);
    }
    EXPECT_EQ(made.load(), 1);
    // A second cache (fresh memory) must hit the disk file instead.
    {
        WarmupCache cache(dir.string());
        cache.obtain("k1", make);
    }
    EXPECT_EQ(made.load(), 1);

    // Corrupt every cached file: the cache must fall back to a
    // fresh warm-up rather than serve damaged state.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        std::fstream file(entry.path(), std::ios::in | std::ios::out |
                                            std::ios::binary);
        file.seekp(-1, std::ios::end);
        file.put('\x7f');
    }
    {
        WarmupCache cache(dir.string());
        cache.obtain("k1", make);
    }
    EXPECT_EQ(made.load(), 2);
}

TEST(WarmStart, SweepWithDiskCacheMatchesColdStart)
{
    const std::filesystem::path dir = "results/test_warm_sweep_cache";
    std::filesystem::remove_all(dir);
    const std::vector<JobSpec> jobs = warmStartGridJobs(3000);

    const std::vector<JobResult> cold = SweepRunner().run(jobs);

    SweepOptions warm_options;
    warm_options.warm_start = true;
    warm_options.snapshot_dir = dir.string();
    // Two runs: the first populates the disk cache, the second
    // restores from it. Both must equal the cold sweep.
    for (int round = 0; round < 2; ++round) {
        const std::vector<JobResult> warm =
            SweepRunner(warm_options).run(jobs);
        ASSERT_EQ(cold.size(), warm.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(warm[i].status, JobStatus::Ok) << jobs[i].id;
            EXPECT_TRUE(cold[i].metrics == warm[i].metrics)
                << jobs[i].id << " round " << round;
        }
    }
    // The grid shares warm-ups: fewer snapshot files than jobs.
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_GT(files, 0u);
    EXPECT_LT(files, jobs.size());
}

// --- resume ---------------------------------------------------------

TEST(Resume, AdoptsOnlyValidOkRecords)
{
    const std::filesystem::path dir = "results/test_resume";
    std::filesystem::remove_all(dir);
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(4);

    {
        JsonDirSink sink(dir.string());
        SweepOptions options;
        options.sink = &sink;
        SweepRunner(options).run(jobs);
    }

    // Damage the records: delete one, corrupt one, fail one.
    const auto record = [&](const JobSpec &job) {
        return dir / (sanitizeFileStem(job.id) + ".json");
    };
    std::filesystem::remove(record(jobs[1]));
    {
        std::ofstream out(record(jobs[2]));
        out << "{\"truncated\"";
    }
    {
        std::string failed = readFile(record(jobs[3]));
        const std::size_t at = failed.find("\"status\":\"ok\"");
        ASSERT_NE(at, std::string::npos);
        failed.replace(at, 14, "\"status\":\"failed\"");
        std::ofstream out(record(jobs[3]));
        out << failed;
    }

    JsonDirSink sink(dir.string());
    EXPECT_TRUE(sink.adoptExisting(jobs[0]));
    EXPECT_FALSE(sink.adoptExisting(jobs[1]));
    EXPECT_FALSE(sink.adoptExisting(jobs[2]));
    EXPECT_FALSE(sink.adoptExisting(jobs[3]));
    EXPECT_EQ(sink.skipped(), 1u);

    // A record written under the right stem but for a different job
    // id must not be adopted.
    JobSpec imposter = jobs[0];
    imposter.id = jobs[0].id + "X";
    std::filesystem::copy_file(
        record(jobs[0]), record(imposter),
        std::filesystem::copy_options::overwrite_existing);
    EXPECT_FALSE(sink.adoptExisting(imposter));

    // Finishing after adoption keeps the record in the manifest and
    // reports the skip count.
    SweepSummary summary;
    summary.jobs = 0;
    sink.finish(summary);
    const std::string manifest = readFile(dir / "manifest.json");
    EXPECT_TRUE(jsonParseCheck(manifest));
    EXPECT_NE(manifest.find("\"skipped\":1"), std::string::npos);
    EXPECT_NE(manifest.find(jobs[0].id), std::string::npos);
}

TEST(BenchScale, RejectsGarbageAndKeepsValidValues)
{
    EXPECT_DOUBLE_EQ(parseBenchScale(nullptr), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale(""), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseBenchScale("2"), 2.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("0"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("-3"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("abc"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("1.5x"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("inf"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("nan"), 1.0);
}

} // namespace
