/**
 * @file
 * Sweep-runner subsystem tests: parallel-vs-serial determinism,
 * structured failure capture, edge cases (empty job list, one
 * thread, more threads than jobs), the soft timeout, the JSON/CSV
 * result sinks (records must be parseable), the JSON serialization
 * helpers, and the hardened ASD_BENCH_SCALE parser.
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "runner/result_sink.hpp"
#include "runner/sweep_runner.hpp"
#include "runner/thread_pool.hpp"
#include "sim/serialize.hpp"

namespace
{

using namespace asd;

/** Trace length that keeps one job in the low milliseconds. */
constexpr std::uint64_t kShortTrace = 2000;

/** The acceptance sweep: 4 benchmarks x the four paper modes. */
std::vector<JobSpec>
fourWaySweepJobs()
{
    std::vector<JobSpec> jobs;
    const std::vector<Benchmark> benches = detailedStudyBenchmarks();
    for (std::size_t b = 0; b < 4; ++b) {
        for (const PrefetchMode mode :
             {PrefetchMode::NP, PrefetchMode::PS, PrefetchMode::MS,
              PrefetchMode::PMS}) {
            RunOptions options;
            options.mode = mode;
            options.accesses = kShortTrace;
            jobs.push_back(makeJob(benches[b], options));
        }
    }
    return jobs;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count](unsigned) { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // no tasks: must not hang
    EXPECT_EQ(pool.threadCount(), 2u);
}

TEST(JobId, EncodesVariedFields)
{
    const Benchmark &bench = findBenchmark("bwaves");
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.buffer_lines = 32;
    const std::string id = makeJobId(bench, options, 7);
    EXPECT_NE(id.find("bwaves"), std::string::npos);
    EXPECT_NE(id.find("MS"), std::string::npos);
    EXPECT_NE(id.find("pb32"), std::string::npos);
    EXPECT_NE(id.find("seed7"), std::string::npos);

    RunOptions other = options;
    other.filter_slots = 16;
    EXPECT_NE(makeJobId(bench, options), makeJobId(bench, other));
}

TEST(SweepRunner, ParallelMatchesSerialAndWritesJson)
{
    const std::vector<JobSpec> jobs = fourWaySweepJobs();
    ASSERT_EQ(jobs.size(), 16u);

    SweepOptions serial_options;
    serial_options.threads = 1;
    const std::vector<JobResult> serial =
        SweepRunner(serial_options).run(jobs);

    const std::filesystem::path dir = "results/test_runner_sweep";
    std::filesystem::remove_all(dir);
    JsonDirSink sink(dir.string());
    SweepOptions parallel_options;
    parallel_options.threads = 4;
    parallel_options.sink = &sink;
    const std::vector<JobResult> parallel =
        SweepRunner(parallel_options).run(jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(serial[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_EQ(parallel[i].status, JobStatus::Ok) << jobs[i].id;
        EXPECT_EQ(serial[i].spec.id, parallel[i].spec.id);
        // Bit-identical metrics regardless of thread count.
        EXPECT_TRUE(serial[i].metrics == parallel[i].metrics)
            << jobs[i].id;
    }

    // Every record plus the manifest must be valid JSON.
    const std::string manifest = readFile(dir / "manifest.json");
    ASSERT_FALSE(manifest.empty());
    EXPECT_TRUE(jsonParseCheck(manifest));
    EXPECT_NE(manifest.find("\"jobs\":16"), std::string::npos);
    EXPECT_NE(manifest.find("\"ok\":16"), std::string::npos);
    std::size_t records = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename() == "manifest.json")
            continue;
        const std::string record = readFile(entry.path());
        EXPECT_TRUE(jsonParseCheck(record)) << entry.path();
        EXPECT_NE(record.find("\"cycles\""), std::string::npos);
        EXPECT_NE(record.find("\"options\""), std::string::npos);
        ++records;
    }
    EXPECT_EQ(records, jobs.size());
}

TEST(SweepRunner, FailingJobYieldsFailureRecordOthersComplete)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(4);
    jobs[1].id = "boomjob";
    jobs[1].body = [](const JobSpec &) -> RunMetrics {
        throw std::runtime_error("boom");
    };

    SweepOptions options;
    options.threads = 2;
    const std::vector<JobResult> results =
        SweepRunner(options).run(jobs);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[1].status, JobStatus::Failed);
    EXPECT_NE(results[1].error.find("boom"), std::string::npos);
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_EQ(results[i].status, JobStatus::Ok);
        EXPECT_GT(results[i].metrics.cycles, 0u);
    }

    // Failure records serialize with null metrics, still parseable.
    const std::string record =
        JsonDirSink::recordJson(results[1]);
    EXPECT_TRUE(jsonParseCheck(record));
    EXPECT_NE(record.find("\"status\":\"failed\""),
              std::string::npos);
    EXPECT_NE(record.find("\"metrics\":null"), std::string::npos);
}

TEST(SweepRunner, EmptyJobListFinishesImmediately)
{
    SweepOptions options;
    options.threads = 4;
    SweepRunner runner(options);
    const std::vector<JobResult> results = runner.run({});
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(runner.lastSummary().jobs, 0u);
    EXPECT_EQ(runner.lastSummary().failed, 0u);
}

TEST(SweepRunner, MoreThreadsThanJobs)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(2);
    SweepOptions options;
    options.threads = 16;
    SweepRunner runner(options);
    const std::vector<JobResult> results = runner.run(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Ok);
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    // The pool is clamped to the job count.
    EXPECT_EQ(runner.lastSummary().threads, 2u);
}

TEST(SweepRunner, SoftTimeoutDowngradesResult)
{
    JobSpec job;
    job.id = "sleeper";
    job.bench = findBenchmark("bwaves");
    job.timeout_ms = 1.0;
    job.body = [](const JobSpec &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return RunMetrics{};
    };
    const JobResult result = runJob(job);
    EXPECT_EQ(result.status, JobStatus::TimedOut);
    EXPECT_NE(result.error.find("timeout"), std::string::npos);
    EXPECT_GE(result.wall_ms, 1.0);
}

TEST(SweepRunner, ProgressHookSeesEveryJob)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(6);
    std::vector<SweepProgress> snapshots;
    SweepOptions options;
    options.threads = 3;
    options.on_progress = [&snapshots](const SweepProgress &p) {
        snapshots.push_back(p);
    };
    SweepRunner(options).run(jobs);
    ASSERT_EQ(snapshots.size(), jobs.size());
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        EXPECT_EQ(snapshots[i].done, i + 1);
        EXPECT_EQ(snapshots[i].total, jobs.size());
        EXPECT_GE(snapshots[i].eta_ms, 0.0);
    }
    EXPECT_EQ(snapshots.back().ok, jobs.size());
}

TEST(ResultSink, CsvHasOneRowPerJobPlusHeader)
{
    std::vector<JobSpec> jobs = fourWaySweepJobs();
    jobs.resize(3);
    const std::filesystem::path path =
        "results/test_runner_sweep.csv";
    std::filesystem::remove(path);
    {
        CsvSink sink(path.string());
        SweepOptions options;
        options.threads = 2;
        options.sink = &sink;
        SweepRunner(options).run(jobs);
    }
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        if (!line.empty())
            ++lines;
    EXPECT_EQ(lines, jobs.size() + 1);
}

TEST(Serialize, JsonHelpersEmitParseableDocuments)
{
    RunOptions options;
    options.fixed_policy = 3;
    options.accesses = 12345;
    const std::string options_json = toJson(options);
    EXPECT_TRUE(jsonParseCheck(options_json));
    EXPECT_NE(options_json.find("\"mode\":\"PMS\""),
              std::string::npos);
    EXPECT_NE(options_json.find("\"fixed_policy\":3"),
              std::string::npos);

    RunMetrics metrics;
    metrics.cycles = 42;
    metrics.dram_watts = 1.25;
    const std::string metrics_json = toJson(metrics);
    EXPECT_TRUE(jsonParseCheck(metrics_json));
    EXPECT_NE(metrics_json.find("\"cycles\":42"), std::string::npos);
    EXPECT_NE(metrics_json.find("\"dram_watts\":1.25"),
              std::string::npos);
}

TEST(Serialize, EnumRoundTrips)
{
    for (const PrefetchMode mode :
         {PrefetchMode::NP, PrefetchMode::PS, PrefetchMode::MS,
          PrefetchMode::PMS})
        EXPECT_EQ(parsePrefetchMode(toString(mode)), mode);
    for (const McPrefetcherKind kind :
         {McPrefetcherKind::Asd, McPrefetcherKind::NextLine,
          McPrefetcherKind::P5Style, McPrefetcherKind::Ghb,
          McPrefetcherKind::Stride})
        EXPECT_EQ(parseMcPrefetcherKind(toString(kind)), kind);
    EXPECT_EQ(parsePrefetchMode("np"), std::nullopt);
    EXPECT_EQ(parseMcPrefetcherKind("bogus"), std::nullopt);
}

TEST(Json, WriterAndChecker)
{
    JsonWriter writer;
    writer.beginObject()
        .key("a")
        .value(std::uint64_t{1})
        .key("b")
        .beginArray()
        .value("x\"y")
        .value(true)
        .null()
        .value(-2.5)
        .endArray()
        .endObject();
    EXPECT_EQ(writer.str(),
              "{\"a\":1,\"b\":[\"x\\\"y\",true,null,-2.5]}");
    EXPECT_TRUE(jsonParseCheck(writer.str()));

    EXPECT_TRUE(jsonParseCheck("[]"));
    EXPECT_TRUE(jsonParseCheck("  {\"k\": [1, 2.0e-3, \"s\"]} "));
    EXPECT_FALSE(jsonParseCheck(""));
    EXPECT_FALSE(jsonParseCheck("{"));
    EXPECT_FALSE(jsonParseCheck("{\"a\":}"));
    EXPECT_FALSE(jsonParseCheck("{} trailing"));
    EXPECT_FALSE(jsonParseCheck("[1,]"));
    EXPECT_FALSE(jsonParseCheck("nan"));
}

TEST(BenchScale, RejectsGarbageAndKeepsValidValues)
{
    EXPECT_DOUBLE_EQ(parseBenchScale(nullptr), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale(""), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseBenchScale("2"), 2.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("0"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("-3"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("abc"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("1.5x"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("inf"), 1.0);
    EXPECT_DOUBLE_EQ(parseBenchScale("nan"), 1.0);
}

} // namespace
