/**
 * @file
 * Unit and property tests for the section 3.2 math: P(i,j), the
 * prefetch inequalities (5)/(6), and the read-weighted SLH bars.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/likelihood_table.hpp"
#include "core/slh_math.hpp"

namespace asd
{
namespace
{

TEST(SlhMath, LhtAtReturnsZeroBeyondTable)
{
    const std::vector<std::uint64_t> lht = {10, 6, 2};
    EXPECT_EQ(lhtAt(lht, 1), 10u);
    EXPECT_EQ(lhtAt(lht, 3), 2u);
    EXPECT_EQ(lhtAt(lht, 4), 0u);
    EXPECT_EQ(lhtAt(lht, 100), 0u);
}

TEST(SlhMath, ProbabilityMatchesPaperExample)
{
    // Fig. 2 narrative: 21.8% of reads in streams of length 1, 43.7%
    // of length 2. Construct a table in those proportions (stream
    // counts; probability here is stream-weighted but the identity
    // P(i,i) = (lht(i)-lht(i+1))/lht(1) is what equation (1) states).
    const std::vector<std::uint64_t> lht = {1000, 782, 345, 0};
    EXPECT_NEAR(slhProbability(lht, 1, 1), 0.218, 1e-9);
    EXPECT_NEAR(slhProbability(lht, 2, 2), 0.437, 1e-9);
    EXPECT_NEAR(slhProbability(lht, 2, 100), 0.782, 1e-9);
}

TEST(SlhMath, ProbabilityOfFullRangeIsOne)
{
    const std::vector<std::uint64_t> lht = {50, 30, 12, 5, 1};
    EXPECT_DOUBLE_EQ(slhProbability(lht, 1, 5), 1.0);
}

TEST(SlhMath, EmptyTableNeverPrefetches)
{
    const std::vector<std::uint64_t> lht(16, 0);
    for (std::size_t k = 1; k <= 16; ++k)
        EXPECT_FALSE(shouldPrefetchNext(lht, k));
}

TEST(SlhMath, DecisionMatchesPaperGemsExample)
{
    // Section 3.1's worked example: prefetch after the 1st element
    // (78.2% of reads continue), not after the 2nd (43.7% end there
    // vs 34.5% continuing).
    const std::vector<std::uint64_t> lht = {1000, 782, 345, 250, 20};
    EXPECT_TRUE(shouldPrefetchNext(lht, 1));
    EXPECT_FALSE(shouldPrefetchNext(lht, 2));
    EXPECT_TRUE(shouldPrefetchNext(lht, 3));
}

TEST(SlhMath, GroundTruthTableForOneBasedIndexing)
{
    // The classic off-by-one here is evaluating inequality (5)/(6) on
    // the 0-based counts vector with the paper's 1-based k: lht(k) is
    // counts[k-1]. Pin every decision of a hand-evaluated table,
    // including both boundaries (k = 1 and k past the table edge).
    const std::vector<std::uint64_t> lht = {10, 8, 6, 1, 1};
    struct Case
    {
        std::size_t k;
        std::size_t d;
        bool expect;
    };
    const Case cases[] = {
        // d = 1: lht(k) < 2 * lht(k+1)
        {1, 1, true},  // 10 < 16
        {2, 1, true},  //  8 < 12
        {3, 1, false}, //  6 < 2
        {4, 1, true},  //  1 < 2
        {5, 1, false}, //  1 < 0 (beyond the table)
        {6, 1, false}, //  0 < 0
        // d = 2: lht(k) < 2 * lht(k+2)
        {1, 2, true},  // 10 < 12
        {2, 2, false}, //  8 < 2
        {3, 2, false}, //  6 < 2
        {4, 2, false}, //  1 < 0
    };
    for (const Case &c : cases) {
        EXPECT_EQ(shouldPrefetchDegree(lht, c.k, c.d), c.expect)
            << "k=" << c.k << " d=" << c.d;
        if (c.d == 1) {
            EXPECT_EQ(shouldPrefetchNext(lht, c.k), c.expect)
                << "k=" << c.k;
        }
    }
}

TEST(SlhMath, HardwareTableMatchesGroundTruthDecisions)
{
    // Build the same lht = {10, 8, 6, 1, 1} through the hardware
    // table's stream-count updates: 2 streams of length 1, 2 of
    // length 2, 5 of length 3, 1 of length 5.
    LikelihoodTable table(5);
    for (int i = 0; i < 2; ++i)
        table.recordStream(1);
    for (int i = 0; i < 2; ++i)
        table.recordStream(2);
    for (int i = 0; i < 5; ++i)
        table.recordStream(3);
    table.recordStream(5);
    ASSERT_EQ(table.counts(),
              (std::vector<std::uint64_t>{10, 8, 6, 1, 1}));
    for (std::size_t k = 1; k <= 6; ++k) {
        EXPECT_EQ(table.shouldPrefetch(k),
                  shouldPrefetchNext(table.counts(), k))
            << "k=" << k;
        EXPECT_EQ(table.shouldPrefetch(k, 2),
                  shouldPrefetchDegree(table.counts(), k, 2))
            << "k=" << k;
    }
}

TEST(SlhMath, InequalityFiveEquivalentToProbabilityComparison)
{
    // Property: lht(k) < 2*lht(k+1) iff P(k,k) < P(k+1, Lm) over the
    // full (untruncated) range, for random tables.
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint64_t> lht(16);
        std::uint64_t v = 500 + rng.nextBelow(500);
        for (auto &entry : lht) {
            entry = v;
            v -= rng.nextBelow(v / 2 + 1);
        }
        for (std::size_t k = 1; k < 16; ++k) {
            const double p_end = slhProbability(lht, k, k);
            const double p_more = slhProbability(lht, k + 1, 16);
            EXPECT_EQ(shouldPrefetchNext(lht, k), p_end < p_more)
                << "trial " << trial << " k " << k;
        }
    }
}

TEST(SlhMath, DegreeGeneralization)
{
    const std::vector<std::uint64_t> lht = {100, 90, 80, 10};
    // d=1 from k=1: 100 < 180 -> yes. d=3 from k=1: 100 < 20 -> no.
    EXPECT_TRUE(shouldPrefetchDegree(lht, 1, 1));
    EXPECT_TRUE(shouldPrefetchDegree(lht, 1, 2));
    EXPECT_FALSE(shouldPrefetchDegree(lht, 1, 3));
}

TEST(SlhMath, DegreeDecisionsAreMonotoneForConcaveTables)
{
    // For monotone non-increasing lht, once (6) fails for some d it
    // fails for all larger d (lht(k+d) only shrinks).
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<std::uint64_t> lht(16);
        std::uint64_t v = 1000;
        for (auto &entry : lht) {
            entry = v;
            v -= rng.nextBelow(v / 3 + 1);
        }
        for (std::size_t k = 1; k <= 8; ++k) {
            bool failed = false;
            for (std::size_t d = 1; d <= 8; ++d) {
                const bool yes = shouldPrefetchDegree(lht, k, d);
                if (failed) {
                    EXPECT_FALSE(yes);
                }
                failed = failed || !yes;
            }
        }
    }
}

TEST(SlhMath, ReadWeightedBarsSumToOne)
{
    const std::vector<std::uint64_t> lht = {100, 60, 25, 10, 2};
    const std::vector<double> bars = readWeightedSlh(lht);
    double sum = 0.0;
    for (const double bar : bars)
        sum += bar;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SlhMath, ReadWeightedBarsWeightLongStreams)
{
    // 10 streams of length 1 and 10 streams of length 4: reads split
    // 10 vs 40.
    const std::vector<std::uint64_t> lht = {20, 10, 10, 10};
    const std::vector<double> bars = readWeightedSlh(lht);
    EXPECT_NEAR(bars[0], 10.0 / 50.0, 1e-12);
    EXPECT_NEAR(bars[3], 40.0 / 50.0, 1e-12);
}

TEST(SlhMath, ReadWeightedEmptyTableIsZero)
{
    const std::vector<std::uint64_t> lht(16, 0);
    for (const double bar : readWeightedSlh(lht))
        EXPECT_EQ(bar, 0.0);
}

} // namespace
} // namespace asd
