/**
 * @file
 * Tests for the virtual-memory layer: frame-allocation policies and
 * their determinism, page-table first-touch behavior, TLB hit/miss/
 * eviction accounting, huge-page coalescing, and the two system-level
 * properties the subsystem exists for — VM off is bit-identical to
 * the untranslated simulator, and random 4 KB placement measurably
 * shortens the physical streams ASD observes.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "core/asd_prefetcher.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "vm/frame_allocator.hpp"
#include "vm/mmu.hpp"
#include "vm/page_table.hpp"
#include "vm/tlb.hpp"

namespace asd
{
namespace
{

VmConfig
baseVm()
{
    VmConfig vm;
    vm.enabled = true;
    vm.policy = FrameAllocPolicy::Identity;
    vm.page_bytes = 4096;
    vm.phys_bytes = 1ULL << 32;
    return vm;
}

TEST(FrameAllocator, IdentityMapsPageToSameFrame)
{
    FrameAllocator alloc(baseVm());
    EXPECT_EQ(alloc.allocate(0, 0), 0u);
    EXPECT_EQ(alloc.allocate(1234, 0), 1234u);
    // Identity wraps at the physical frame count.
    const std::uint64_t frames = baseVm().frames();
    EXPECT_EQ(alloc.allocate(frames + 7, 0), 7u);
    EXPECT_EQ(alloc.allocated(), 3u);
}

TEST(FrameAllocator, SequentialBumpsFrames)
{
    VmConfig vm = baseVm();
    vm.policy = FrameAllocPolicy::Sequential;
    FrameAllocator alloc(vm);
    EXPECT_EQ(alloc.allocate(900, 0), 0u);
    EXPECT_EQ(alloc.allocate(17, 1), 1u);
    EXPECT_EQ(alloc.allocate(900, 1), 2u);
}

TEST(FrameAllocator, RandomShuffleIsDeterministicForSeed)
{
    VmConfig vm = baseVm();
    vm.policy = FrameAllocPolicy::RandomShuffle;
    vm.seed = 99;
    FrameAllocator a(vm);
    FrameAllocator b(vm);
    std::vector<std::uint64_t> first;
    bool any_different_seed_diff = false;
    vm.seed = 100;
    FrameAllocator c(vm);
    for (std::uint64_t vpn = 0; vpn < 2000; ++vpn) {
        const std::uint64_t fa = a.allocate(vpn, 0);
        EXPECT_EQ(fa, b.allocate(vpn, 0));
        any_different_seed_diff |= fa != c.allocate(vpn, 0);
        first.push_back(fa);
    }
    EXPECT_TRUE(any_different_seed_diff);
    // Frames are handed out without duplicates.
    std::sort(first.begin(), first.end());
    EXPECT_EQ(std::adjacent_find(first.begin(), first.end()),
              first.end());
}

TEST(FrameAllocator, ExhaustionIsFatal)
{
    VmConfig vm = baseVm();
    vm.policy = FrameAllocPolicy::Sequential;
    vm.phys_bytes = 4 * vm.page_bytes; // 4 frames
    FrameAllocator alloc(vm);
    for (std::uint64_t vpn = 0; vpn < 4; ++vpn)
        alloc.allocate(vpn, 0);
    EXPECT_EXIT(alloc.allocate(4, 0), testing::ExitedWithCode(1),
                "out of physical frames");
}

TEST(PageTable, FirstTouchAllocatesThenStable)
{
    VmConfig vm = baseVm();
    vm.policy = FrameAllocPolicy::Sequential;
    FrameAllocator alloc(vm);
    PageTable table(alloc, 0);
    const std::uint64_t f0 = table.translate(42);
    const std::uint64_t f1 = table.translate(7);
    EXPECT_NE(f0, f1);
    // Repeats hit the existing mapping: no new frames.
    EXPECT_EQ(table.translate(42), f0);
    EXPECT_EQ(table.translate(7), f1);
    EXPECT_EQ(table.pagesMapped(), 2u);
    EXPECT_EQ(alloc.allocated(), 2u);
}

TEST(PageTable, ThreadsGetPrivateMappings)
{
    VmConfig vm = baseVm();
    vm.policy = FrameAllocPolicy::Sequential;
    FrameAllocator alloc(vm);
    PageTable t0(alloc, 0);
    PageTable t1(alloc, 1);
    // Same vpn, different address spaces -> different frames.
    EXPECT_NE(t0.translate(5), t1.translate(5));
}

TEST(Tlb, CountsHitsMissesAndEvictions)
{
    TlbConfig config;
    config.entries = 4;
    config.ways = 2; // 2 sets; even vpns all land in set 0
    Tlb tlb(config);

    EXPECT_FALSE(tlb.lookup(0).has_value());
    tlb.insert(0, 100);
    EXPECT_FALSE(tlb.lookup(2).has_value());
    tlb.insert(2, 102);
    ASSERT_TRUE(tlb.lookup(0).has_value());
    EXPECT_EQ(*tlb.lookup(0), 100u);

    // Set 0 is full; vpn 2 is now LRU and must be the victim.
    tlb.insert(4, 104);
    EXPECT_EQ(tlb.evictions(), 1u);
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_FALSE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(4));

    EXPECT_EQ(tlb.hits(), 2u);   // the two lookups of vpn 0
    EXPECT_EQ(tlb.misses(), 2u); // vpn 0 and vpn 2 cold misses
}

TEST(Tlb, RejectsNonDividingWays)
{
    TlbConfig config;
    config.entries = 8;
    config.ways = 3;
    EXPECT_EXIT(Tlb{config}, testing::ExitedWithCode(1),
                "ways must divide");
}

TEST(Mmu, ChargesWalkOnMissOnly)
{
    VmConfig vm = baseVm();
    vm.tlb.walk_cycles = 25;
    FrameAllocator alloc(vm);
    Mmu mmu(vm, alloc, 0);

    Cycles walk = 0;
    const Addr paddr = mmu.translate(4096 + 123, walk);
    EXPECT_EQ(walk, 25u);
    EXPECT_EQ(paddr, 4096u + 123u); // identity keeps the address

    walk = 99;
    EXPECT_EQ(mmu.translate(4096 + 200, walk), 4096u + 200u);
    EXPECT_EQ(walk, 0u); // same page -> TLB hit
    EXPECT_EQ(mmu.walkCycles(), 25u);
    EXPECT_EQ(mmu.tlb().hits(), 1u);
    EXPECT_EQ(mmu.tlb().misses(), 1u);
}

TEST(Mmu, HugePagesCoalesceTranslations)
{
    VmConfig small = baseVm();
    small.policy = FrameAllocPolicy::RandomShuffle;
    VmConfig huge = baseVm();
    huge.policy = FrameAllocPolicy::HugePage;

    FrameAllocator small_alloc(small);
    FrameAllocator huge_alloc(huge);
    Mmu small_mmu(small, small_alloc, 0);
    Mmu huge_mmu(huge, huge_alloc, 0);

    // Touch one 4 KB page in each of 64 consecutive 32 KB strides:
    // all inside a single 2 MB region.
    for (Addr addr = 0; addr < (2ULL << 20); addr += 32 * 1024) {
        Cycles walk = 0;
        small_mmu.translate(addr, walk);
        huge_mmu.translate(addr, walk);
    }
    EXPECT_EQ(huge_mmu.pageTable().pagesMapped(), 1u);
    EXPECT_EQ(small_mmu.pageTable().pagesMapped(), 64u);
    EXPECT_EQ(huge_mmu.tlb().misses(), 1u);
    EXPECT_EQ(small_mmu.tlb().misses(), 64u);

    // Contiguity inside the huge page is preserved even though the
    // huge frame itself is placed randomly.
    Cycles walk = 0;
    const Addr base = huge_mmu.translate(0, walk);
    EXPECT_EQ(huge_mmu.translate(4096, walk), base + 4096);
}

/**
 * The seed-compatibility contract: a disabled VM layer must leave
 * every metric bit-identical to the pre-VM simulator, and an identity
 * mapping with free page walks only adds the (then all-hit-free) TLB
 * accounting without perturbing timing or traffic.
 */
TEST(VmSystem, DisabledAndFreeIdentityMatchBaseline)
{
    RunOptions off;
    off.accesses = 20000;

    RunOptions identity = off;
    identity.vm = baseVm();
    identity.vm.tlb.walk_cycles = 0;

    const Benchmark bench = findBenchmark("bwaves");
    const RunMetrics m_off = runBenchmark(bench, off);
    RunMetrics m_vm = runBenchmark(bench, identity);

    EXPECT_FALSE(m_off.vm_enabled);
    EXPECT_TRUE(m_vm.vm_enabled);
    EXPECT_GT(m_vm.pages_mapped, 0u);
    EXPECT_GT(m_vm.tlb_hits, 0u);

    // Blank out the VM-only counters; everything else must agree
    // exactly (cycles, power doubles, all traffic counters).
    m_vm.vm_enabled = false;
    m_vm.tlb_hits = 0;
    m_vm.tlb_misses = 0;
    m_vm.tlb_evictions = 0;
    m_vm.page_walk_cycles = 0;
    m_vm.pages_mapped = 0;
    EXPECT_EQ(m_vm, m_off);
}

TEST(VmSystem, RunsAreDeterministic)
{
    RunOptions options;
    options.accesses = 10000;
    options.vm = baseVm();
    options.vm.policy = FrameAllocPolicy::RandomShuffle;
    const Benchmark bench = findBenchmark("tpcc");
    EXPECT_EQ(runBenchmark(bench, options),
              runBenchmark(bench, options));
}

double
histMean(const Histogram &hist)
{
    double sum = 0.0;
    for (std::uint64_t len = 1; len <= hist.buckets(); ++len)
        sum += static_cast<double>(len) *
               static_cast<double>(hist.count(len));
    return sum / static_cast<double>(hist.total());
}

double
meanStreamLength(const VmConfig &vm)
{
    SyntheticConfig trace_config;
    trace_config.seed = 7;
    trace_config.total_accesses = 40000;
    trace_config.working_set_bytes = 512ULL << 20;
    trace_config.mean_gap = 4.0;
    trace_config.write_frac = 0.1;
    trace_config.concurrent_streams = 4;
    std::vector<double> weights(16, 0.0);
    weights[15] = 1.0; // all streams 16 lines = 2 KB
    trace_config.phases = {PhaseProfile{weights, 0}};

    RunOptions options;
    options.vm = vm;
    SyntheticTraceGenerator trace(trace_config);
    System system(makeSystemConfig(options), {&trace});
    system.run();
    return histMean(system.asd()->streamLengthHist());
}

/**
 * The paper-level point of the subsystem: ASD sees physical streams,
 * and random 4 KB frame placement breaks a 2 KB virtual stream at
 * roughly every other page boundary, while identity placement keeps
 * it intact. The gap must be clearly measurable.
 */
TEST(VmSystem, Random4kShortensPhysicalStreams)
{
    const double identity = meanStreamLength(baseVm());
    VmConfig random = baseVm();
    random.policy = FrameAllocPolicy::RandomShuffle;
    const double shuffled = meanStreamLength(random);

    // Interleaving of the 4 concurrent streams already fragments a
    // little, so identity lands around ~9 rather than a full 16.
    EXPECT_GT(identity, 8.0);
    EXPECT_LT(shuffled, 0.75 * identity);
}

} // namespace
} // namespace asd
