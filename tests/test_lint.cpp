/**
 * @file
 * Unit tests for the asdlint static-analysis pass: every rule in the
 * pack gets a true-positive and a true-negative fixture, plus
 * coverage for the lexer, suppression comments, the baseline
 * machinery, and the JSON report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/json.hpp"
#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/rules.hpp"

using namespace asd;
using namespace asd::lint;

namespace
{

/** Shorthand: lint @p source as @p path with the full rule pack. */
std::vector<Diagnostic>
run(const std::string &path, std::string_view source)
{
    return lintSource(path, source);
}

/** Count diagnostics attributed to @p rule. */
std::size_t
countRule(const std::vector<Diagnostic> &diags,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.rule == rule ? 1u : 0u;
    return n;
}

} // namespace

// --- lexer ---------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersNumbersAndPuncts)
{
    const auto lexed = lex("foo += bar42 << 3;");
    ASSERT_EQ(lexed.tokens.size(), 6u);
    EXPECT_EQ(lexed.tokens[0].text, "foo");
    EXPECT_EQ(lexed.tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(lexed.tokens[1].text, "+=");
    EXPECT_EQ(lexed.tokens[1].kind, TokenKind::Punct);
    EXPECT_EQ(lexed.tokens[2].text, "bar42");
    EXPECT_EQ(lexed.tokens[3].text, "<<");
    EXPECT_EQ(lexed.tokens[4].text, "3");
    EXPECT_EQ(lexed.tokens[4].kind, TokenKind::Number);
}

TEST(LintLexer, CommentsAndStringsHideTheirContents)
{
    const auto lexed = lex("int a; // double trouble\n"
                           "const char *s = \"double\";\n"
                           "/* double */ int b;");
    for (const Token &tok : lexed.tokens)
        EXPECT_FALSE(tok.kind == TokenKind::Identifier &&
                     tok.text == "double")
            << "line " << tok.line;
}

TEST(LintLexer, RawStringsAreOneToken)
{
    const auto lexed = lex("auto s = R\"(for (x : m) rand();)\";");
    std::size_t strings = 0;
    for (const Token &tok : lexed.tokens)
        strings += tok.kind == TokenKind::String ? 1u : 0u;
    EXPECT_EQ(strings, 1u);
    for (const Token &tok : lexed.tokens)
        EXPECT_NE(tok.text, "rand");
}

TEST(LintLexer, TracksLineNumbers)
{
    const auto lexed = lex("a\n\nb\nc");
    ASSERT_EQ(lexed.tokens.size(), 3u);
    EXPECT_EQ(lexed.tokens[0].line, 1u);
    EXPECT_EQ(lexed.tokens[1].line, 3u);
    EXPECT_EQ(lexed.tokens[2].line, 4u);
}

TEST(LintLexer, CollectsSuppressionMarkers)
{
    const auto lexed =
        lex("x; // asdlint:allow(raw-random, narrowing-cast)\n"
            "y; /* asdlint:allow(*) */\n");
    ASSERT_EQ(lexed.suppressions.size(), 2u);
    EXPECT_EQ(lexed.suppressions[0].line, 1u);
    ASSERT_EQ(lexed.suppressions[0].rules.size(), 2u);
    EXPECT_EQ(lexed.suppressions[0].rules[0], "raw-random");
    EXPECT_EQ(lexed.suppressions[0].rules[1], "narrowing-cast");
    EXPECT_EQ(lexed.suppressions[1].rules[0], "*");
}

TEST(LintLexer, SplicesPreprocessorContinuations)
{
    const auto lexed = lex("#include \\\n\"core/foo.hpp\"\nint x;");
    ASSERT_FALSE(lexed.tokens.empty());
    EXPECT_EQ(lexed.tokens[0].kind, TokenKind::Directive);
    EXPECT_NE(lexed.tokens[0].text.find("core/foo.hpp"),
              std::string::npos);
}

TEST(LintLexer, SplicesInsideTokens)
{
    // A backslash-newline may fall anywhere — even mid-identifier or
    // between an encoding prefix and its quote (phase 2 runs before
    // tokenization).
    const auto lexed = lex("int ra\\\nnd_state;\nconst char *s = "
                           "u8\\\n\"x\";");
    ASSERT_GE(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[1].text, "rand_state");
    bool found_string = false;
    for (const Token &tok : lexed.tokens)
        found_string |= tok.kind == TokenKind::String && tok.text == "x";
    EXPECT_TRUE(found_string);
}

TEST(LintLexer, RawStringsKeepTheirSplices)
{
    // Phase 2 is reverted inside raw string literals: the backslash
    // and newline survive as content.
    const auto lexed = lex("auto s = R\"(a\\\nb)\";");
    ASSERT_FALSE(lexed.tokens.empty());
    const Token &str = lexed.tokens.back() /* ; before EOF */;
    bool found = false;
    for (const Token &tok : lexed.tokens)
        if (tok.kind == TokenKind::String) {
            EXPECT_NE(tok.text.find('\\'), std::string::npos);
            found = true;
        }
    EXPECT_TRUE(found) << str.text;
}

TEST(LintLexer, EncodingPrefixedRawStringIsOneToken)
{
    const auto lexed = lex("auto s = u8R\"x(rand(); \"quoted\")x\";");
    std::size_t strings = 0;
    for (const Token &tok : lexed.tokens)
        strings += tok.kind == TokenKind::String ? 1u : 0u;
    EXPECT_EQ(strings, 1u);
    for (const Token &tok : lexed.tokens)
        EXPECT_NE(tok.text, "rand");
}

TEST(LintLexer, DigraphsMapToTheirPrimaryForms)
{
    const auto lexed = lex("int a<:3:>; x = y <% z = 1; %>");
    std::vector<std::string> puncts;
    for (const Token &tok : lexed.tokens)
        if (tok.kind == TokenKind::Punct)
            puncts.push_back(tok.text);
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "["),
              puncts.end());
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "]"),
              puncts.end());
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "{"),
              puncts.end());
    EXPECT_NE(std::find(puncts.begin(), puncts.end(), "}"),
              puncts.end());
    // <:: followed by a non-colon stays '<' then '::' (the standard's
    // template-bracket carve-out).
    const auto carve = lex("foo<::bar>()");
    ASSERT_GE(carve.tokens.size(), 3u);
    EXPECT_EQ(carve.tokens[1].text, "<");
    EXPECT_EQ(carve.tokens[2].text, "::");
}

TEST(LintLexer, CapturesSuppressionReasons)
{
    const auto lexed =
        lex("int x; // asdlint:allow(snapshot-field-coverage): derived "
            "from config\n"
            "int y; // asdlint:allow(raw-random)\n");
    ASSERT_EQ(lexed.suppressions.size(), 2u);
    EXPECT_EQ(lexed.suppressions[0].reason, "derived from config");
    EXPECT_TRUE(lexed.suppressions[1].reason.empty());
}

// --- rule: float-in-cost-path --------------------------------------

TEST(LintRules, FloatInCostPathPositive)
{
    const auto diags = run("src/mc/scheduler.cpp",
                           "double cost(int x) { return x * 0.5; }");
    EXPECT_EQ(countRule(diags, "float-in-cost-path"), 1u);
}

TEST(LintRules, FloatInCostPathNegative)
{
    // Fixed-point arithmetic in a covered file: clean.
    EXPECT_EQ(countRule(run("src/mc/scheduler.cpp",
                            "std::int64_t cost() { return 8; }"),
                        "float-in-cost-path"),
              0u);
    // double outside the covered cost paths (energy model): clean.
    EXPECT_EQ(countRule(run("src/dram/power.cpp",
                            "double watts() { return 1.5; }"),
                        "float-in-cost-path"),
              0u);
    // Mention in a comment: clean.
    EXPECT_EQ(countRule(run("src/mc/scheduler.cpp",
                            "// the old double form was fragile\n"
                            "std::int64_t cost();"),
                        "float-in-cost-path"),
              0u);
}

// --- rule: unordered-iteration -------------------------------------

TEST(LintRules, UnorderedIterationPositive)
{
    const char *source =
        "#include <iostream>\n"
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> counts;\n"
        "void dump() {\n"
        "    for (const auto &kv : counts)\n"
        "        std::cout << kv.first;\n"
        "}\n";
    const auto diags = run("src/telemetry/dump.cpp", source);
    ASSERT_EQ(countRule(diags, "unordered-iteration"), 1u);
    EXPECT_EQ(diags[0].line, 5u);
}

TEST(LintRules, UnorderedIterationBeginPositive)
{
    const char *source =
        "#include <cstdio>\n"
        "std::unordered_set<int> seen;\n"
        "void dump() {\n"
        "    for (auto it = seen.begin(); it != seen.end(); ++it)\n"
        "        printf(\"%d\", *it);\n"
        "}\n";
    EXPECT_EQ(countRule(run("src/sim/dump.cpp", source),
                        "unordered-iteration"),
              1u);
}

TEST(LintRules, UnorderedIterationNegative)
{
    // Ordered map in an emitting TU: clean.
    EXPECT_EQ(countRule(run("src/sim/dump.cpp",
                            "#include <iostream>\n"
                            "std::map<int, int> counts;\n"
                            "void dump() {\n"
                            "    for (const auto &kv : counts)\n"
                            "        std::cout << kv.first;\n"
                            "}\n"),
                        "unordered-iteration"),
              0u);
    // Unordered lookup (no iteration) in an emitting TU: clean.
    EXPECT_EQ(countRule(run("src/sim/dump.cpp",
                            "#include <iostream>\n"
                            "std::unordered_map<int, int> counts;\n"
                            "bool has(int k) {\n"
                            "    return counts.find(k) != "
                            "counts.end();\n"
                            "}\n"),
                        "unordered-iteration"),
              0u);
    // Iteration in a TU that emits nothing: out of scope.
    EXPECT_EQ(countRule(run("src/core/scan.cpp",
                            "std::unordered_map<int, int> counts;\n"
                            "int total() {\n"
                            "    int t = 0;\n"
                            "    for (const auto &kv : counts)\n"
                            "        t += kv.second;\n"
                            "    return t;\n"
                            "}\n"),
                        "unordered-iteration"),
              0u);
}

// --- rule: raw-random ----------------------------------------------

TEST(LintRules, RawRandomPositive)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "int pick() { return rand() % 6; }\n"
            "std::uint64_t seed() { return std::random_device{}(); }");
    EXPECT_EQ(countRule(diags, "raw-random"), 2u);
}

TEST(LintRules, RawRandomNegative)
{
    // The blessed PRNG wrapper: clean.
    EXPECT_EQ(countRule(run("src/workloads/gen.cpp",
                            "#include \"common/random.hpp\"\n"
                            "std::uint64_t pick(asd::Rng &rng) {\n"
                            "    return rng.nextBelow(6);\n"
                            "}\n"),
                        "raw-random"),
              0u);
    // common/random itself may name the primitives it wraps.
    EXPECT_EQ(countRule(run("src/common/random.cpp",
                            "// like mt19937 but portable\n"
                            "std::uint64_t x = rand();"),
                        "raw-random"),
              0u);
}

// --- rule: narrowing-cast ------------------------------------------

TEST(LintRules, NarrowingCastPositive)
{
    const auto diags = run(
        "src/cache/index.cpp",
        "std::uint32_t set(std::uint64_t line_addr) {\n"
        "    return static_cast<std::uint32_t>(line_addr % sets);\n"
        "}\n");
    ASSERT_EQ(countRule(diags, "narrowing-cast"), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Warning);
}

TEST(LintRules, NarrowingCastNegative)
{
    // Widening a cycle value: clean.
    EXPECT_EQ(countRule(run("src/cache/index.cpp",
                            "std::uint64_t w(std::uint32_t cycle) {\n"
                            "    return "
                            "static_cast<std::uint64_t>(cycle);\n"
                            "}\n"),
                        "narrowing-cast"),
              0u);
    // Narrowing something that is not cycle/address-like: clean.
    EXPECT_EQ(countRule(run("src/cache/index.cpp",
                            "int n(std::size_t total) {\n"
                            "    return static_cast<int>(total);\n"
                            "}\n"),
                        "narrowing-cast"),
              0u);
    // The checked helper: clean.
    EXPECT_EQ(countRule(run("src/cache/index.cpp",
                            "std::uint32_t set(std::uint64_t line) {\n"
                            "    return "
                            "asd::narrow<std::uint32_t>(line);\n"
                            "}\n"),
                        "narrowing-cast"),
              0u);
}

// --- rule: layer-include -------------------------------------------

TEST(LintRules, LayerIncludePositive)
{
    const auto diags = run("src/core/helper.hpp",
                           "#include \"sim/system.hpp\"\n");
    ASSERT_EQ(countRule(diags, "layer-include"), 1u);
    EXPECT_EQ(diags[0].severity, Severity::Error);
}

TEST(LintRules, LayerIncludeNegative)
{
    // Downward and same-layer includes: clean.
    EXPECT_EQ(countRule(run("src/sim/system.cpp",
                            "#include \"core/asd_prefetcher.hpp\"\n"
                            "#include \"sim/system.hpp\"\n"
                            "#include \"common/types.hpp\"\n"),
                        "layer-include"),
              0u);
    // Tests and benches may include anything.
    EXPECT_EQ(countRule(run("tests/test_system.cpp",
                            "#include \"sim/system.hpp\"\n"),
                        "layer-include"),
              0u);
    // System headers are out of scope.
    EXPECT_EQ(countRule(run("src/core/helper.hpp",
                            "#include <vector>\n"),
                        "layer-include"),
              0u);
}

// --- rule: check-side-effect ---------------------------------------

TEST(LintRules, CheckSideEffectPositive)
{
    const auto diags =
        run("src/mc/memory_controller.cpp",
            "void audit() { checkThat(count++ == limit, \"x\"); }");
    EXPECT_EQ(countRule(diags, "check-side-effect"), 1u);
    EXPECT_EQ(countRule(run("src/core/scan.cpp",
                            "void f() { panicIfNot(total = 3, "
                            "\"oops\"); }"),
                        "check-side-effect"),
              1u);
}

TEST(LintRules, CheckSideEffectNegative)
{
    // Comparisons and a message string containing '=': clean.
    EXPECT_EQ(countRule(run("src/mc/memory_controller.cpp",
                            "void audit() {\n"
                            "    checkThat(count == limit, "
                            "\"count = limit\");\n"
                            "    checkThat(count <= limit, \"x\");\n"
                            "}\n"),
                        "check-side-effect"),
              0u);
    // Mutation outside the check call: clean.
    EXPECT_EQ(countRule(run("src/core/scan.cpp",
                            "void f() { ++count; checkThat(count > 0, "
                            "\"x\"); }"),
                        "check-side-effect"),
              0u);
}

// --- suppressions --------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheRule)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "int x = rand(); // asdlint:allow(raw-random)\n");
    EXPECT_EQ(countRule(diags, "raw-random"), 0u);
}

TEST(LintSuppression, PreviousLineAllowSilencesTheRule)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "// asdlint:allow(raw-random)\n"
            "int x = rand();\n");
    EXPECT_EQ(countRule(diags, "raw-random"), 0u);
}

TEST(LintSuppression, WildcardSilencesEveryRule)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "int x = rand(); // asdlint:allow(*)\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, WrongRuleNameDoesNotSilence)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "int x = rand(); // asdlint:allow(narrowing-cast)\n");
    EXPECT_EQ(countRule(diags, "raw-random"), 1u);
}

// --- rule selection ------------------------------------------------

TEST(LintOptionsTest, OnlyRulesRestrictsTheRun)
{
    LintOptions options;
    options.only_rules = {"raw-random"};
    const auto diags = lintSource(
        "src/mc/scheduler.cpp",
        "double cost() { return rand() * 0.5; }", options);
    EXPECT_EQ(countRule(diags, "raw-random"), 1u);
    EXPECT_EQ(countRule(diags, "float-in-cost-path"), 0u);
}

TEST(LintRegistry, NamesAreUniqueAndResolvable)
{
    // unordered-iteration graduated to the semantic registry in v2;
    // five per-file token rules remain here.
    const auto &rules = ruleRegistry();
    EXPECT_GE(rules.size(), 5u);
    for (const Rule &rule : rules) {
        const Rule *found = findRule(rule.name);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->name, rule.name);
        EXPECT_FALSE(found->summary.empty());
    }
    EXPECT_EQ(findRule("no-such-rule"), nullptr);
}

// --- baseline ------------------------------------------------------

TEST(LintBaseline, AboveBaselineReportsOnlyNewFindings)
{
    const auto diags =
        run("src/workloads/gen.cpp",
            "int a = rand();\nint b = rand();\nint c = rand();\n");
    ASSERT_EQ(diags.size(), 3u);

    BaselineCounts baseline;
    baseline[{"src/workloads/gen.cpp", "raw-random"}] = 2;
    const auto fresh = aboveBaseline(diags, baseline);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].line, 3u);

    baseline[{"src/workloads/gen.cpp", "raw-random"}] = 3;
    EXPECT_TRUE(aboveBaseline(diags, baseline).empty());
}

TEST(LintBaseline, FormatAndLoadRoundTrip)
{
    const auto diags = run("src/workloads/gen.cpp",
                           "int a = rand();\nint b = rand();\n");
    const BaselineCounts counts = countByFileRule(diags);
    ASSERT_EQ(counts.size(), 1u);

    const auto path = std::filesystem::temp_directory_path() /
                      "asdlint_baseline_test.txt";
    {
        std::ofstream out(path);
        out << formatBaseline(counts);
    }
    const BaselineCounts loaded = loadBaseline(path.string());
    std::filesystem::remove(path);
    EXPECT_EQ(loaded, counts);
}

// --- JSON report ---------------------------------------------------

TEST(LintReport, JsonIsWellFormedAndComplete)
{
    const auto diags = run(
        "src/mc/scheduler.cpp",
        "double cost(std::uint64_t cycle) {\n"
        "    return static_cast<std::uint32_t>(cycle) * 0.5;\n"
        "}\n");
    ASSERT_FALSE(diags.empty());
    const std::string json = reportJson(diags, 1);
    EXPECT_TRUE(jsonParseCheck(json)) << json;
    EXPECT_NE(json.find("\"schema\":\"asdlint/v2\""),
              std::string::npos);
    EXPECT_NE(json.find("float-in-cost-path"), std::string::npos);
    EXPECT_NE(json.find("narrowing-cast"), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
}

TEST(LintReport, EmptyRunStillParses)
{
    const std::string json = reportJson({}, 0);
    EXPECT_TRUE(jsonParseCheck(json));
    EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
}

// --- the repo itself is clean --------------------------------------

TEST(LintSelfCheck, LintSourcesHaveNoViolations)
{
    // The lint_smoke ctest entry scans the whole tree; here we at
    // least pin the lint module's own sources as permanently clean.
    for (const char *file :
         {"lexer.hpp", "lexer.cpp", "linter.hpp", "linter.cpp",
          "rules.hpp", "rules.cpp", "diagnostic.hpp",
          "decl_index.hpp", "decl_index.cpp", "semantic_rules.hpp",
          "semantic_rules.cpp", "token_util.hpp", "token_util.cpp"}) {
        const std::string fs_path =
            std::string(ASD_SOURCE_DIR) + "/src/lint/" + file;
        const auto diags =
            lintFile("src/lint/" + std::string(file), fs_path);
        EXPECT_TRUE(diags.empty())
            << file << ": " << diags.size() << " violations";
    }
}
