/**
 * @file
 * Tests for the GHB memory-side baseline: history recording,
 * correlation-based prediction, degree, window expiry, and hash-tag
 * protection against aliasing — in both correlation modes. The G/AC
 * vs G/DC pair of tests at the bottom pins the BENCH_bakeoff finding
 * that address correlation is structurally blind to streaming (its
 * speedup_milli_pct -492 / accuracy_milli_pct 96 row) while delta
 * correlation recovers real accuracy on strided workloads.
 */

#include <gtest/gtest.h>

#include "prefetch/ghb_prefetcher.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

namespace asd
{
namespace
{

AsdConfig
shared()
{
    AsdConfig config;
    config.epoch_reads = 1000;
    return config;
}

GhbConfig
small(std::uint32_t degree = 2)
{
    GhbConfig config;
    config.ghb_entries = 16;
    config.index_entries = 64;
    config.degree = degree;
    return config;
}

TEST(Ghb, ColdHistoryPredictsNothing)
{
    GhbMcPrefetcher pf(shared(), small());
    for (LineAddr line = 0; line < 10; ++line)
        EXPECT_TRUE(pf.observeRead(line * 97, 0, 0).empty());
    EXPECT_EQ(pf.historySize(), 10u);
}

TEST(Ghb, RepeatedSequencePredictsFollowers)
{
    GhbMcPrefetcher pf(shared(), small());
    // First pass: A B C — no predictions.
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    pf.observeRead(300, 0, 0);
    // Second pass: A predicts B, C (degree 2).
    const auto out = pf.observeRead(100, 0, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 200u);
    EXPECT_EQ(out[1], 300u);
}

TEST(Ghb, DegreeLimitsPredictions)
{
    GhbMcPrefetcher pf(shared(), small(1));
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    pf.observeRead(300, 0, 0);
    const auto out = pf.observeRead(100, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 200u);
}

TEST(Ghb, NonSequentialCorrelationWorks)
{
    // This is what ASD cannot do: a pointer-chase pattern
    // A -> X -> Y with arbitrary addresses replays after one pass.
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(5000, 0, 0);
    pf.observeRead(17, 0, 0);
    pf.observeRead(91234, 0, 0);
    const auto out = pf.observeRead(5000, 0, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 17u);
    EXPECT_EQ(out[1], 91234u);
}

TEST(Ghb, OldOccurrencesAgeOutOfTheWindow)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    // Push 16+ other reads through; line 100's occurrence leaves the
    // 16-entry history window.
    for (LineAddr line = 0; line < 20; ++line)
        pf.observeRead(1000 + line * 7919, 0, 0);
    EXPECT_TRUE(pf.observeRead(100, 0, 0).empty());
}

TEST(Ghb, PredictionStopsAtPresent)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(100, 0, 0);
    // Immediate repeat: the previous occurrence has no followers yet.
    const auto out = pf.observeRead(100, 0, 0);
    EXPECT_TRUE(out.empty());
}

TEST(Ghb, SharesBufferPlumbing)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.fillBuffer(7, 0);
    EXPECT_TRUE(pf.bufferContains(7));
    EXPECT_TRUE(pf.lookupBuffer(7));
    EXPECT_FALSE(pf.bufferContains(7));
}

// --- G/AC vs G/DC on strided access (the -492 finding) --------------

GhbConfig
deltaMode(std::uint32_t degree = 2)
{
    GhbConfig config = small(degree);
    config.delta_correlate = true;
    return config;
}

/**
 * The lines of a repeating delta cycle 1,2,3: 0 1 3 6 7 9 12 13 15 …
 * Every address is fresh (visited exactly once), as in a streaming
 * sweep at the memory controller.
 */
std::vector<LineAddr>
deltaCycleLines(std::size_t count)
{
    std::vector<LineAddr> lines;
    LineAddr line = 0;
    std::int64_t delta = 0;
    for (std::size_t i = 0; i < count; ++i) {
        lines.push_back(line);
        delta = delta % 3 + 1;
        line += static_cast<LineAddr>(delta);
    }
    return lines;
}

TEST(Ghb, AddressCorrelationBlindToFreshLines)
{
    // The mechanism behind the bake-off's G/AC collapse: lines swept
    // once never repeat, so the address index never hits and the
    // prefetcher predicts nothing no matter how regular the strides.
    GhbMcPrefetcher pf(shared(), small());
    for (const LineAddr line : deltaCycleLines(64))
        EXPECT_TRUE(pf.observeRead(line, 0, 0).empty());
}

TEST(Ghb, DeltaCorrelationPredictsFreshStridedLines)
{
    // Same fresh-address sequence, G/DC mode: once the delta pair
    // (1,2) recurs (at line 9), the followers of its last occurrence
    // replay as predictions — the exact next lines of the walk.
    GhbMcPrefetcher pf(shared(), deltaMode());
    const std::vector<LineAddr> lines = deltaCycleLines(6);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i)
        EXPECT_TRUE(pf.observeRead(lines[i], 0, 0).empty()) << i;
    const auto out = pf.observeRead(lines.back(), 0, 0); // line 9
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 12u);
    EXPECT_EQ(out[1], 13u);
}

TEST(Ghb, DeltaCorrelationAccuracyFloorOnStrideWorkload)
{
    // End-to-end regression pin: on a stride-heavy workload the G/DC
    // configuration (the ghb-dc arena contender) must keep issuing
    // prefetches at a sane accuracy, and G/AC on the identical trace
    // must stay in the near-zero regime the bake-off documented.
    // bench/ext_stride_workloads' unit-stride shape, narrowed to two
    // concurrent streams so the global delta sequence stays regular
    // enough for delta pairs to recur.
    SyntheticConfig workload;
    workload.seed = 4242;
    workload.total_accesses = 60000;
    workload.working_set_bytes = 512ULL << 20;
    workload.mean_gap = 6.0;
    workload.mean_touches_per_line = 10.0;
    workload.write_frac = 0.2;
    workload.reuse_frac = 0.2;
    workload.dependent_frac = 0.12;
    workload.negative_dir_frac = 0.05;
    workload.concurrent_streams = 2;
    workload.stride_weights = {1.0, 0.0, 0.0, 0.0};
    workload.phases = {PhaseProfile{{0.1, 0.15, 0.2, 0.3, 0.5, 0.7,
                                     1.0, 0.9, 0.6, 0.4},
                                    0}};

    const auto run = [&](bool delta_correlate) {
        SyntheticTraceGenerator trace(workload);
        RunOptions options;
        options.mode = PrefetchMode::MS;
        options.mc_prefetcher = McPrefetcherKind::Ghb;
        options.ghb_delta_correlate = delta_correlate;
        SystemConfig config = makeSystemConfig(options);
        System system(config, {&trace});
        return system.run();
    };

    const RunMetrics dc = run(true);
    EXPECT_GT(dc.ms_prefetches_issued, 500u);
    EXPECT_GE(dc.useful_prefetch_pct, 15.0);

    const RunMetrics ac = run(false);
    EXPECT_LT(ac.useful_prefetch_pct, 2.0);
    EXPECT_GT(dc.useful_prefetch_pct, ac.useful_prefetch_pct);
}

} // namespace
} // namespace asd
