/**
 * @file
 * Tests for the GHB (G/AC) memory-side baseline: history recording,
 * correlation-based prediction, degree, window expiry, and hash-tag
 * protection against aliasing.
 */

#include <gtest/gtest.h>

#include "prefetch/ghb_prefetcher.hpp"

namespace asd
{
namespace
{

AsdConfig
shared()
{
    AsdConfig config;
    config.epoch_reads = 1000;
    return config;
}

GhbConfig
small(std::uint32_t degree = 2)
{
    GhbConfig config;
    config.ghb_entries = 16;
    config.index_entries = 64;
    config.degree = degree;
    return config;
}

TEST(Ghb, ColdHistoryPredictsNothing)
{
    GhbMcPrefetcher pf(shared(), small());
    for (LineAddr line = 0; line < 10; ++line)
        EXPECT_TRUE(pf.observeRead(line * 97, 0, 0).empty());
    EXPECT_EQ(pf.historySize(), 10u);
}

TEST(Ghb, RepeatedSequencePredictsFollowers)
{
    GhbMcPrefetcher pf(shared(), small());
    // First pass: A B C — no predictions.
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    pf.observeRead(300, 0, 0);
    // Second pass: A predicts B, C (degree 2).
    const auto out = pf.observeRead(100, 0, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 200u);
    EXPECT_EQ(out[1], 300u);
}

TEST(Ghb, DegreeLimitsPredictions)
{
    GhbMcPrefetcher pf(shared(), small(1));
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    pf.observeRead(300, 0, 0);
    const auto out = pf.observeRead(100, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 200u);
}

TEST(Ghb, NonSequentialCorrelationWorks)
{
    // This is what ASD cannot do: a pointer-chase pattern
    // A -> X -> Y with arbitrary addresses replays after one pass.
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(5000, 0, 0);
    pf.observeRead(17, 0, 0);
    pf.observeRead(91234, 0, 0);
    const auto out = pf.observeRead(5000, 0, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 17u);
    EXPECT_EQ(out[1], 91234u);
}

TEST(Ghb, OldOccurrencesAgeOutOfTheWindow)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0);
    // Push 16+ other reads through; line 100's occurrence leaves the
    // 16-entry history window.
    for (LineAddr line = 0; line < 20; ++line)
        pf.observeRead(1000 + line * 7919, 0, 0);
    EXPECT_TRUE(pf.observeRead(100, 0, 0).empty());
}

TEST(Ghb, PredictionStopsAtPresent)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.observeRead(100, 0, 0);
    // Immediate repeat: the previous occurrence has no followers yet.
    const auto out = pf.observeRead(100, 0, 0);
    EXPECT_TRUE(out.empty());
}

TEST(Ghb, SharesBufferPlumbing)
{
    GhbMcPrefetcher pf(shared(), small());
    pf.fillBuffer(7, 0);
    EXPECT_TRUE(pf.bufferContains(7));
    EXPECT_TRUE(pf.lookupBuffer(7));
    EXPECT_FALSE(pf.bufferContains(7));
}

} // namespace
} // namespace asd
