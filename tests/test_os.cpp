/**
 * @file
 * Tests for the OS memory model and the multi-tenant scenario
 * engine: FramePool CLOCK second-chance mechanics and dirty-victim
 * reporting, walker cost models (fixed radix walk vs chain-length
 * hashed probes), kernel fault/reclaim/shootdown accounting, tenant
 * mix determinism (two instances, and resume-from-snapshot), and the
 * system-level properties the subsystem must keep: OS off stays
 * bit-identical to the seed simulator, and OS-on runs are
 * deterministic and snapshot-splittable.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "os/frame_pool.hpp"
#include "os/kernel.hpp"
#include "os/page_walker.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/synthetic.hpp"
#include "vm/tlb.hpp"
#include "workloads/profiles.hpp"
#include "workloads/tenant_mix.hpp"

namespace asd
{
namespace
{

constexpr std::uint64_t kHash = 0x05edULL;

// --- frame pool ----------------------------------------------------

TEST(FramePool, HandsOutFreeFramesBeforeReclaiming)
{
    FramePool pool(4, 1);
    bool evicted = true;
    OsVictim victim;
    std::vector<std::uint64_t> pfns;
    for (std::uint64_t vpn = 0; vpn < 4; ++vpn) {
        pfns.push_back(pool.acquire(0, vpn, false, evicted, victim));
        EXPECT_FALSE(evicted);
    }
    EXPECT_EQ(pool.resident(), 4u);
    // All four frames were used, each exactly once.
    std::uint64_t mask = 0;
    for (const std::uint64_t pfn : pfns)
        mask |= 1ULL << pfn;
    EXPECT_EQ(mask, 0xFu);

    pool.acquire(0, 99, false, evicted, victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(pool.resident(), 4u);
}

TEST(FramePool, ClockGivesReferencedFramesASecondChance)
{
    FramePool pool(3, 7);
    bool evicted = false;
    OsVictim victim;
    std::vector<std::uint64_t> owner(3); // pfn -> vpn mapped there
    for (std::uint64_t vpn = 10; vpn < 13; ++vpn)
        owner[pool.acquire(0, vpn, false, evicted, victim)] = vpn;

    // Every frame is referenced, so the first reclaim sweeps the full
    // clock (clearing R everywhere) and evicts frame 0.
    const std::uint64_t pfn = pool.acquire(0, 20, false, evicted,
                                           victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(pfn, 0u);
    EXPECT_EQ(victim.vpn, owner[0]);

    // Re-referencing frame 1 buys it a second chance: the hand (now
    // at 1) clears its R bit and takes frame 2 instead.
    pool.markAccess(1, false);
    const std::uint64_t next = pool.acquire(0, 21, false, evicted,
                                            victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(next, 2u);
    EXPECT_EQ(victim.vpn, owner[2]);
}

TEST(FramePool, ReportsDirtyVictimsForWriteback)
{
    FramePool pool(1, 3);
    bool evicted = false;
    OsVictim victim;
    pool.acquire(0, 1, true, evicted, victim); // dirtied at claim
    pool.acquire(0, 2, false, evicted, victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(victim.vpn, 1u);
    EXPECT_TRUE(victim.dirty);

    pool.acquire(0, 3, false, evicted, victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(victim.vpn, 2u);
    EXPECT_FALSE(victim.dirty);

    // A write touch after claim also dirties the page.
    pool.markAccess(0, true);
    pool.acquire(0, 4, false, evicted, victim);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(victim.vpn, 3u);
    EXPECT_TRUE(victim.dirty);
}

TEST(FramePool, SnapshotRoundTripsByteIdentically)
{
    FramePool pool(8, 5);
    bool evicted = false;
    OsVictim victim;
    for (std::uint64_t vpn = 0; vpn < 11; ++vpn)
        pool.acquire(0, vpn, vpn % 3 == 0, evicted, victim);

    SnapshotWriter first;
    first.beginSection("pool");
    pool.saveState(first);
    first.endSection();
    const std::vector<std::uint8_t> bytes = first.finish(kHash);

    FramePool restored(8, 5);
    SnapshotReader reader(bytes);
    reader.openSection("pool");
    restored.loadState(reader);
    reader.endSection();

    SnapshotWriter second;
    second.beginSection("pool");
    restored.saveState(second);
    second.endSection();
    EXPECT_EQ(second.finish(kHash), bytes);

    // The restored pool evicts the same victim as the original.
    OsVictim a;
    OsVictim b;
    EXPECT_EQ(pool.acquire(1, 50, false, evicted, a),
              restored.acquire(1, 50, false, evicted, b));
    EXPECT_EQ(a.vpn, b.vpn);
}

// --- page walkers --------------------------------------------------

TEST(RadixWalker, ChargesFixedWalkOnHitAndMiss)
{
    RadixWalker walker(55);
    walker.map(osPageKey(0, 9), 4);
    std::uint64_t pfn = 0;
    Cycles cost = 0;
    EXPECT_TRUE(walker.lookup(osPageKey(0, 9), pfn, cost));
    EXPECT_EQ(pfn, 4u);
    EXPECT_EQ(cost, 55u);
    EXPECT_FALSE(walker.lookup(osPageKey(0, 10), pfn, cost));
    EXPECT_EQ(cost, 55u);
    // Tenants with the same vpn do not alias.
    EXPECT_FALSE(walker.lookup(osPageKey(1, 9), pfn, cost));
}

TEST(HashedWalker, ProbeCostGrowsWithChainDepth)
{
    // One bucket: every key collides, making chain depth explicit.
    HashedWalker walker(1, 10);
    walker.map(osPageKey(0, 1), 100);
    walker.map(osPageKey(0, 2), 200);
    walker.map(osPageKey(0, 3), 300);
    ASSERT_EQ(walker.mapped(), 3u);

    std::uint64_t pfn = 0;
    Cycles cost = 0;
    EXPECT_TRUE(walker.lookup(osPageKey(0, 1), pfn, cost));
    EXPECT_EQ(cost, 10u); // first chain entry
    EXPECT_TRUE(walker.lookup(osPageKey(0, 3), pfn, cost));
    EXPECT_EQ(pfn, 300u);
    EXPECT_EQ(cost, 30u); // third chain entry
    EXPECT_FALSE(walker.lookup(osPageKey(0, 4), pfn, cost));
    EXPECT_EQ(cost, 40u); // whole chain plus the anchor

    walker.unmap(osPageKey(0, 2));
    EXPECT_EQ(walker.mapped(), 2u);
    EXPECT_TRUE(walker.lookup(osPageKey(0, 3), pfn, cost));
    EXPECT_EQ(cost, 20u); // chain compacted behind the unmap
}

// --- kernel --------------------------------------------------------

OsConfig
testOs(std::uint64_t frames)
{
    OsConfig os;
    os.enabled = true;
    os.frames = frames;
    os.major_fault_frac = 0.0; // deterministic minor faults
    return os;
}

TEST(OsKernel, ChargesWalkPlusFaultThenWalkOnly)
{
    const OsConfig os = testOs(8);
    VmConfig vm;
    OsKernel kernel(os, vm);

    const OsTouchResult fault = kernel.touch(0, 5, false);
    EXPECT_TRUE(fault.minor_fault);
    EXPECT_FALSE(fault.major_fault);
    EXPECT_EQ(fault.stall_cycles,
              vm.tlb.walk_cycles + os.minor_fault_cycles);

    const OsTouchResult hit = kernel.touch(0, 5, false);
    EXPECT_FALSE(hit.minor_fault);
    EXPECT_EQ(hit.pfn, fault.pfn);
    EXPECT_EQ(hit.stall_cycles, vm.tlb.walk_cycles);
    EXPECT_EQ(kernel.minorFaults(), 1u);
    EXPECT_EQ(kernel.majorFaults(), 0u);
    EXPECT_EQ(kernel.pagesMapped(), 1u);
}

TEST(OsKernel, ReclaimShootsDownTlbAndForcesRefault)
{
    const OsConfig os = testOs(1); // every new page reclaims
    VmConfig vm;
    OsKernel kernel(os, vm);
    Tlb tlb(vm.tlb);
    kernel.registerTlb(&tlb);

    const OsTouchResult first = kernel.touch(0, 1, true);
    tlb.insert(osPageKey(0, 1), first.pfn);

    // Faulting in a second page evicts the dirty first one: reclaim +
    // writeback are charged and the stale TLB entry is shot down.
    const OsTouchResult second = kernel.touch(0, 2, false);
    EXPECT_TRUE(second.reclaimed);
    EXPECT_TRUE(second.wrote_back);
    EXPECT_EQ(second.stall_cycles,
              vm.tlb.walk_cycles + os.minor_fault_cycles +
                  os.reclaim_cycles + os.writeback_cycles);
    EXPECT_EQ(kernel.shootdowns(), 1u);
    EXPECT_FALSE(tlb.lookup(osPageKey(0, 1)).has_value());

    // The evicted page is gone from the table: touching it refaults.
    const OsTouchResult refault = kernel.touch(0, 1, false);
    EXPECT_TRUE(refault.minor_fault);
    EXPECT_TRUE(refault.reclaimed);
    EXPECT_FALSE(refault.wrote_back); // victim page 2 was clean
    EXPECT_EQ(kernel.minorFaults(), 3u);
    EXPECT_EQ(kernel.reclaims(), 2u);
    EXPECT_EQ(kernel.writebacks(), 1u);
}

TEST(OsKernel, SnapshotRestoreContinuesIdentically)
{
    OsConfig os = testOs(16);
    os.major_fault_frac = 0.3; // exercise the fault-kind RNG
    VmConfig vm;
    vm.walker = PageWalkerKind::Hashed;

    OsKernel kernel(os, vm);
    for (std::uint64_t vpn = 0; vpn < 64; ++vpn)
        kernel.touch(static_cast<std::uint32_t>(vpn % 3), vpn / 3,
                     vpn % 5 == 0);

    SnapshotWriter writer;
    writer.beginSection("os");
    kernel.saveState(writer);
    writer.endSection();
    const std::vector<std::uint8_t> bytes = writer.finish(kHash);

    OsKernel restored(os, vm);
    SnapshotReader reader(bytes);
    reader.openSection("os");
    restored.loadState(reader);
    reader.endSection();

    for (std::uint64_t vpn = 64; vpn < 160; ++vpn) {
        const OsTouchResult a = kernel.touch(
            static_cast<std::uint32_t>(vpn % 3), vpn, false);
        const OsTouchResult b = restored.touch(
            static_cast<std::uint32_t>(vpn % 3), vpn, false);
        EXPECT_EQ(a.pfn, b.pfn);
        EXPECT_EQ(a.stall_cycles, b.stall_cycles);
        EXPECT_EQ(a.major_fault, b.major_fault);
    }
    EXPECT_EQ(kernel.stallCycles(), restored.stallCycles());
    EXPECT_EQ(kernel.majorFaults(), restored.majorFaults());
    EXPECT_EQ(kernel.reclaims(), restored.reclaims());
}

// --- tenant mix ----------------------------------------------------

SyntheticConfig
mixBase(std::uint64_t accesses)
{
    SyntheticConfig config;
    config.seed = 11;
    config.total_accesses = accesses;
    config.working_set_bytes = 16ULL << 20;
    config.mean_gap = 5.0;
    config.mean_touches_per_line = 6.0;
    config.write_frac = 0.25;
    config.concurrent_streams = 4;
    config.phases = {
        PhaseProfile{{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, 0}};
    return config;
}

TenantMixConfig
mixConfig(std::uint64_t lifetime = 2000)
{
    TenantMixConfig config;
    config.enabled = true;
    config.slots = 4;
    config.zipf_s = 1.0;
    config.mean_lifetime = lifetime;
    return config;
}

TEST(TenantMix, TwoInstancesEmitByteIdenticalStreams)
{
    const std::uint64_t total = 20000;
    TenantMixSource a(mixConfig(), mixBase(total), total);
    TenantMixSource b(mixConfig(), mixBase(total), total);
    MemAccess x;
    MemAccess y;
    std::uint64_t emitted = 0;
    bool multiple_spaces = false;
    while (a.next(x)) {
        ASSERT_TRUE(b.next(y));
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.gap, y.gap);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.space, y.space);
        multiple_spaces |= x.space != 0;
        ++emitted;
    }
    EXPECT_FALSE(b.next(y));
    EXPECT_EQ(emitted, total);
    EXPECT_TRUE(multiple_spaces);
    EXPECT_EQ(a.arrivals(), b.arrivals());
}

TEST(TenantMix, ChurnRefillsDepartedSlots)
{
    const std::uint64_t total = 40000;
    TenantMixSource mix(mixConfig(2000), mixBase(total), total);
    MemAccess access;
    while (mix.next(access))
        ;
    EXPECT_GT(mix.departures(), 0u);
    // Every departure was refilled by a fresh arrival on top of the
    // initial slot fill.
    EXPECT_EQ(mix.arrivals(), mix.activeTenants() + mix.departures());
}

TEST(TenantMix, SnapshotRestoreResumesMidMix)
{
    const std::uint64_t total = 30000;
    TenantMixSource straight(mixConfig(), mixBase(total), total);
    TenantMixSource source(mixConfig(), mixBase(total), total);
    MemAccess access;
    for (std::uint64_t i = 0; i < 9000; ++i) {
        ASSERT_TRUE(source.next(access));
        ASSERT_TRUE(straight.next(access));
    }

    SnapshotWriter writer;
    writer.beginSection("mix");
    source.saveState(writer);
    writer.endSection();
    const std::vector<std::uint8_t> bytes = writer.finish(kHash);

    TenantMixSource restored(mixConfig(), mixBase(total), total);
    SnapshotReader reader(bytes);
    reader.openSection("mix");
    restored.loadState(reader);
    reader.endSection();

    MemAccess a;
    MemAccess b;
    std::uint64_t remaining = 0;
    while (straight.next(a)) {
        ASSERT_TRUE(restored.next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.gap, b.gap);
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.space, b.space);
        ++remaining;
    }
    EXPECT_FALSE(restored.next(b));
    EXPECT_EQ(remaining, total - 9000);
    EXPECT_EQ(straight.departures(), restored.departures());
}

// --- system level --------------------------------------------------

/**
 * OS off must stay bit-identical to the seed simulator. The golden
 * cycle count is pinned from the seed's milc @ 5000 accesses run; a
 * change here means the OS subsystem leaked into the default path.
 */
TEST(OsSystem, OffIsBitIdenticalToSeedGolden)
{
    RunOptions options;
    options.accesses = 5000;
    const RunMetrics metrics =
        runBenchmark(findBenchmark("milc"), options);
    EXPECT_EQ(metrics.cycles, 51085u);
    EXPECT_FALSE(metrics.os_enabled);
    EXPECT_EQ(metrics.os_minor_faults, 0u);
    EXPECT_FALSE(metrics.tenants_enabled);
}

SystemConfig
osSystemConfig()
{
    SystemConfig config;
    config.mode = PrefetchMode::PMS;
    config.os.enabled = true;
    config.os.frames = 128;
    return config;
}

TEST(OsSystem, RunsAreDeterministic)
{
    const SystemConfig config = osSystemConfig();
    const std::uint64_t total = 20000;
    RunMetrics first;
    RunMetrics second;
    for (RunMetrics *out : {&first, &second}) {
        TenantMixSource mix(mixConfig(), mixBase(total), total);
        System system(config, {&mix});
        *out = system.run();
        EXPECT_GT(system.osKernel()->minorFaults(), 0u);
        EXPECT_GT(system.osKernel()->reclaims(), 0u);
    }
    EXPECT_EQ(first, second);
}

TEST(OsSystem, RestoreThenRunMatchesStraightRun)
{
    SystemConfig config = osSystemConfig();
    config.vm.walker = PageWalkerKind::Hashed;
    const std::uint64_t total = 20000;

    TenantMixSource straight_mix(mixConfig(), mixBase(total), total);
    System straight(config, {&straight_mix});
    const RunMetrics expected = straight.run();

    TenantMixSource save_mix(mixConfig(), mixBase(total), total);
    System saver(config, {&save_mix});
    saver.runUntil(30000);
    SnapshotWriter writer;
    saver.saveSnapshot(writer);
    const std::vector<std::uint8_t> bytes = writer.finish(kHash);

    TenantMixSource load_mix(mixConfig(), mixBase(total), total);
    System loader(config, {&load_mix});
    SnapshotReader reader(bytes);
    reader.requireConfigHash(kHash);
    loader.loadSnapshot(reader);
    loader.runUntil(kNoCycle);

    EXPECT_EQ(loader.collectMetrics(), expected);
    EXPECT_EQ(loader.osKernel()->stallCycles(),
              straight.osKernel()->stallCycles());
    EXPECT_EQ(loader.osKernel()->shootdowns(),
              straight.osKernel()->shootdowns());
}

} // namespace
} // namespace asd
