/**
 * @file
 * Tests for the ASD_CHECK invariant layer: the runtime toggle, the
 * checkThat failure mode, and — most importantly — that whole
 * simulations run clean with every cross-component invariant armed
 * (LHT monotonicity, Stream Filter slot uniqueness, Prefetch Buffer
 * occupancy, and the memory controller's queue-conservation laws).
 */

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "workloads/profiles.hpp"

namespace asd
{
namespace
{

TEST(Checks, ScopedChecksRestoresPreviousState)
{
    const bool initial = checksEnabled();
    {
        ScopedChecks on(true);
        EXPECT_TRUE(checksEnabled());
        {
            ScopedChecks off(false);
            EXPECT_FALSE(checksEnabled());
        }
        EXPECT_TRUE(checksEnabled());
    }
    EXPECT_EQ(checksEnabled(), initial);
}

TEST(Checks, SetChecksEnabledReturnsPrevious)
{
    ScopedChecks guard(false);
    EXPECT_FALSE(setChecksEnabled(true));
    EXPECT_TRUE(setChecksEnabled(true));
    EXPECT_TRUE(setChecksEnabled(false));
}

TEST(ChecksDeathTest, CheckThatPanicsOnFailure)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    checkThat(true, "never fires");
    EXPECT_DEATH(checkThat(false, "broken invariant"),
                 "ASD_CHECK: broken invariant");
}

/**
 * Full-system soak with every invariant armed: a PMS run on a real
 * benchmark exercises the Stream Filter, both LHT directions across
 * epoch swaps, the Prefetch Buffer, and the controller conservation
 * laws every cycle. Any violation panics and fails the test.
 */
TEST(Checks, FullSystemRunsCleanWithChecksArmed)
{
    ScopedChecks on(true);
    RunOptions options;
    options.mode = PrefetchMode::PMS;
    options.accesses = 30000;
    const RunMetrics m =
        runBenchmark(findBenchmark("bwaves"), options);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.mc_reads, 0u);
}

TEST(Checks, SmtRunWithSchedulerSweepStaysClean)
{
    ScopedChecks on(true);
    for (const SchedulerKind kind :
         {SchedulerKind::Ahb, SchedulerKind::Memoryless,
          SchedulerKind::InOrder, SchedulerKind::FrFcfs}) {
        RunOptions options;
        options.mode = PrefetchMode::MS;
        options.scheduler = kind;
        options.accesses = 12000;
        const RunMetrics m =
            runSmtPair(findBenchmark("milc"), findBenchmark("lbm"),
                       options);
        EXPECT_GT(m.cycles, 0u);
    }
}

TEST(Checks, ResultsIdenticalWithChecksOnAndOff)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.accesses = 20000;
    const Benchmark &bench = findBenchmark("leslie3d");

    RunMetrics with_checks;
    RunMetrics without_checks;
    {
        ScopedChecks on(true);
        with_checks = runBenchmark(bench, options);
    }
    {
        ScopedChecks off(false);
        without_checks = runBenchmark(bench, options);
    }
    EXPECT_EQ(with_checks.cycles, without_checks.cycles);
    EXPECT_EQ(with_checks.mc_reads, without_checks.mc_reads);
    EXPECT_EQ(with_checks.ms_prefetches_issued,
              without_checks.ms_prefetches_issued);
    EXPECT_EQ(with_checks.coverage_pct, without_checks.coverage_pct);
}

} // namespace
} // namespace asd
