/**
 * @file
 * Full-system integration tests: determinism, the paper's headline
 * behaviors (ASD eliminates the useless prefetches a next-line
 * prefetcher makes on length-1/2 streams; PMS never loses badly to
 * NP on streaming traces), writeback flow, SMT wiring, and metric
 * sanity.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "workloads/profiles.hpp"

namespace asd
{
namespace
{

SyntheticConfig
streamyTrace(std::uint64_t accesses = 60000)
{
    SyntheticConfig config;
    config.seed = 7;
    config.total_accesses = accesses;
    config.working_set_bytes = 256ULL << 20;
    config.mean_gap = 6.0;
    config.mean_touches_per_line = 8.0;
    config.write_frac = 0.2;
    config.reuse_frac = 0.2;
    config.dependent_frac = 0.1;
    config.negative_dir_frac = 0.0;
    config.concurrent_streams = 4;
    config.phases = {PhaseProfile{{0.1, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0,
                                   1.0, 0.8, 0.5},
                                  0}};
    return config;
}

SyntheticConfig
allLengthTwoTrace()
{
    SyntheticConfig config = streamyTrace(60000);
    config.phases = {PhaseProfile{{0.0, 1.0}, 0}};
    config.dependent_frac = 0.0;
    return config;
}

RunMetrics
runMode(const SyntheticConfig &trace_config, PrefetchMode mode,
        McPrefetcherKind kind = McPrefetcherKind::Asd)
{
    SyntheticTraceGenerator trace(trace_config);
    SystemConfig config;
    config.mode = mode;
    config.mc_prefetcher = kind;
    System system(config, {&trace});
    return system.run();
}

TEST(SystemIntegration, DeterministicRuns)
{
    const RunMetrics a = runMode(streamyTrace(20000),
                                 PrefetchMode::PMS);
    const RunMetrics b = runMode(streamyTrace(20000),
                                 PrefetchMode::PMS);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mc_reads, b.mc_reads);
    EXPECT_EQ(a.ms_prefetches_issued, b.ms_prefetches_issued);
}

TEST(SystemIntegration, AllAccessesRetire)
{
    const RunMetrics m = runMode(streamyTrace(20000),
                                 PrefetchMode::NP);
    EXPECT_EQ(m.accesses, 20000u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.mc_reads, 0u);
}

TEST(SystemIntegration, PrefetchingHelpsStreamingWorkload)
{
    const SyntheticConfig trace = streamyTrace();
    const RunMetrics np = runMode(trace, PrefetchMode::NP);
    const RunMetrics ms = runMode(trace, PrefetchMode::MS);
    const RunMetrics pms = runMode(trace, PrefetchMode::PMS);
    EXPECT_LT(ms.cycles, np.cycles);
    EXPECT_LT(pms.cycles, np.cycles);
    EXPECT_GT(ms.coverage_pct, 5.0);
    EXPECT_GT(ms.useful_prefetch_pct, 50.0);
}

/**
 * The paper's core claim (section 1): on a workload of pure length-2
 * streams, a next-line prefetcher wastes ~half its prefetches, while
 * ASD learns to prefetch only the second line.
 */
TEST(SystemIntegration, AsdBeatsNextLineOnLengthTwoStreams)
{
    const SyntheticConfig trace = allLengthTwoTrace();
    const RunMetrics asd =
        runMode(trace, PrefetchMode::MS, McPrefetcherKind::Asd);
    const RunMetrics nextline =
        runMode(trace, PrefetchMode::MS, McPrefetcherKind::NextLine);
    // ASD's prefetches are far more likely to be used.
    EXPECT_GT(asd.useful_prefetch_pct,
              nextline.useful_prefetch_pct + 15.0);
    // And the next-line baseline issues many more prefetches for the
    // same coverage opportunity.
    EXPECT_LT(asd.ms_prefetches_issued, nextline.ms_prefetches_issued);
}

TEST(SystemIntegration, WritebacksReachDram)
{
    // Touch enough distinct lines to overflow the victim L3 so dirty
    // castouts reach memory.
    SyntheticConfig trace = streamyTrace();
    trace.write_frac = 0.4;
    trace.mean_touches_per_line = 1.0;
    trace.reuse_frac = 0.0;
    const RunMetrics m = runMode(trace, PrefetchMode::NP);
    EXPECT_GT(m.mc_writes, 0u);
}

TEST(SystemIntegration, SmtTwoThreadsRun)
{
    SyntheticConfig trace_a = streamyTrace(15000);
    SyntheticConfig trace_b = streamyTrace(15000);
    trace_b.seed = 99;
    SyntheticTraceGenerator a(trace_a);
    SyntheticTraceGenerator b(trace_b);
    SystemConfig config;
    config.mode = PrefetchMode::PMS;
    System system(config, {&a, &b});
    const RunMetrics m = system.run();
    EXPECT_EQ(m.accesses, 30000u);
    EXPECT_GT(m.cycles, 0u);
}

TEST(SystemIntegration, SmtSlowerThanSingleThreadButRuns)
{
    // Two threads share L2/L3/MC: combined runtime exceeds one
    // thread's, but is far below 2x serial (they overlap).
    SyntheticConfig trace = streamyTrace(15000);
    const RunMetrics solo = runMode(trace, PrefetchMode::PMS);
    SyntheticConfig trace_b = trace;
    trace_b.seed = 99;
    SyntheticTraceGenerator a(trace);
    SyntheticTraceGenerator b(trace_b);
    SystemConfig config;
    config.mode = PrefetchMode::PMS;
    System system(config, {&a, &b});
    const RunMetrics smt = system.run();
    EXPECT_GT(smt.cycles, solo.cycles);
    EXPECT_LT(smt.cycles, solo.cycles * 3);
}

TEST(SystemIntegration, FastForwardDoesNotChangeResults)
{
    SyntheticConfig trace_config = streamyTrace(8000);
    RunMetrics with_ff;
    RunMetrics without_ff;
    {
        SyntheticTraceGenerator trace(trace_config);
        SystemConfig config;
        config.mode = PrefetchMode::PMS;
        System system(config, {&trace});
        with_ff = system.run();
    }
    {
        SyntheticTraceGenerator trace(trace_config);
        SystemConfig config;
        config.mode = PrefetchMode::PMS;
        config.fast_forward = false;
        System system(config, {&trace});
        without_ff = system.run();
    }
    EXPECT_EQ(with_ff.cycles, without_ff.cycles);
    EXPECT_EQ(with_ff.mc_reads, without_ff.mc_reads);
    EXPECT_EQ(with_ff.ms_prefetches_issued,
              without_ff.ms_prefetches_issued);
    EXPECT_EQ(with_ff.buffer_hits, without_ff.buffer_hits);
}

TEST(SystemIntegration, PsOracleIsAnUpperBound)
{
    SyntheticConfig trace_config = streamyTrace(20000);
    RunMetrics real;
    RunMetrics oracle;
    {
        SyntheticTraceGenerator trace(trace_config);
        SystemConfig config;
        config.mode = PrefetchMode::PS;
        System system(config, {&trace});
        real = system.run();
    }
    {
        SyntheticTraceGenerator trace(trace_config);
        SystemConfig config;
        config.mode = PrefetchMode::PS;
        config.ps_oracle = true;
        System system(config, {&trace});
        oracle = system.run();
    }
    EXPECT_LE(oracle.cycles, real.cycles);
}

TEST(SystemIntegration, AsdProcessorSideRuns)
{
    SyntheticTraceGenerator trace(streamyTrace(20000));
    SystemConfig config;
    config.mode = PrefetchMode::PS;
    config.ps_kind = PsKind::Asd;
    System system(config, {&trace});
    const RunMetrics m = system.run();
    EXPECT_EQ(m.accesses, 20000u);
    EXPECT_GT(system.stats().value("ps.t0.requests"), 0u);
}

TEST(SystemIntegration, MetricsWithinPhysicalBounds)
{
    const RunMetrics m = runMode(streamyTrace(), PrefetchMode::PMS);
    EXPECT_GE(m.useful_prefetch_pct, 0.0);
    EXPECT_LE(m.useful_prefetch_pct, 100.0);
    EXPECT_GE(m.coverage_pct, 0.0);
    EXPECT_LE(m.coverage_pct, 100.0);
    EXPECT_GE(m.delayed_regular_pct, 0.0);
    EXPECT_LE(m.delayed_regular_pct, 100.0);
    EXPECT_GT(m.dram_watts, 0.1);
    EXPECT_LT(m.dram_watts, 20.0);
}

TEST(SystemIntegration, NpHasNoPrefetchActivity)
{
    const RunMetrics m = runMode(streamyTrace(20000),
                                 PrefetchMode::NP);
    EXPECT_EQ(m.ms_prefetches_issued, 0u);
    EXPECT_EQ(m.buffer_hits, 0u);
}

TEST(SystemIntegration, P5StyleBaselineRuns)
{
    const RunMetrics m = runMode(streamyTrace(20000), PrefetchMode::MS,
                                 McPrefetcherKind::P5Style);
    EXPECT_GT(m.ms_prefetches_issued, 0u);
}

TEST(Experiment, RunOptionsProduceConfiguredSystem)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.buffer_lines = 32;
    options.filter_slots = 16;
    options.fixed_policy = 2;
    options.scheduler = SchedulerKind::InOrder;
    const SystemConfig config = makeSystemConfig(options);
    EXPECT_EQ(config.mode, PrefetchMode::MS);
    EXPECT_EQ(config.asd.buffer_lines, 32u);
    EXPECT_EQ(config.asd.filter_slots, 16u);
    EXPECT_FALSE(config.asd.sched.adaptive);
    EXPECT_EQ(config.asd.sched.fixed_policy, 2);
    EXPECT_EQ(config.mc.scheduler, SchedulerKind::InOrder);
}

TEST(Experiment, RunBenchmarkSmoke)
{
    Benchmark bench = findBenchmark("tpcc");
    RunOptions options;
    options.mode = PrefetchMode::PMS;
    options.accesses = 20000;
    const RunMetrics m = runBenchmark(bench, options);
    EXPECT_EQ(m.accesses, 20000u);
}

TEST(Experiment, SmtPairUsesDistinctSeeds)
{
    Benchmark bench = findBenchmark("tpcc");
    RunOptions options;
    options.mode = PrefetchMode::NP;
    options.accesses = 10000;
    const RunMetrics m = runSmtPair(bench, bench, options);
    EXPECT_EQ(m.accesses, 20000u);
}

} // namespace
} // namespace asd
