/**
 * @file
 * Tests for the per-epoch telemetry layer: recorder wiring through
 * sim::System, delta/consistency properties of the epoch records, the
 * off-by-default guarantee, and the three sinks (CSV, JSON
 * time-series, Chrome trace-event JSON).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sinks.hpp"
#include "trace/synthetic.hpp"
#include "workloads/profiles.hpp"

namespace asd
{
namespace
{

std::vector<EpochRecord>
recordedRun(RunOptions options, const char *bench = "bwaves",
            std::uint64_t accesses = 90000)
{
    options.telemetry.enabled = true;
    options.accesses = accesses;
    std::vector<EpochRecord> epochs;
    runBenchmark(findBenchmark(bench), options, &epochs);
    return epochs;
}

TEST(Telemetry, OffByDefaultRecordsNothing)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.accesses = 30000;
    std::vector<EpochRecord> epochs = {EpochRecord{}}; // stale junk
    runBenchmark(findBenchmark("bwaves"), options, &epochs);
    EXPECT_TRUE(epochs.empty()); // cleared, nothing recorded
}

TEST(Telemetry, DisabledSystemHasNoRecorder)
{
    SystemConfig config = makeSystemConfig(RunOptions{});
    SyntheticConfig trace_config =
        findBenchmark("bwaves").trace;
    trace_config.total_accesses = 5000;
    SyntheticTraceGenerator trace(trace_config);
    System system(config, {&trace});
    EXPECT_EQ(system.telemetry(), nullptr);
}

TEST(Telemetry, RecordsOneRecordPerEpoch)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    const auto epochs = recordedRun(options);
    ASSERT_GE(epochs.size(), 2u);
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        const EpochRecord &rec = epochs[i];
        EXPECT_EQ(rec.epoch, i + 1);
        EXPECT_LT(rec.start_cycle, rec.end_cycle);
        if (i > 0) {
            EXPECT_EQ(rec.start_cycle, epochs[i - 1].end_cycle);
        }
        // Epochs are 2000 MC reads by construction.
        EXPECT_EQ(rec.reads, 2000u);
        EXPECT_GE(rec.policy, 1);
        EXPECT_LE(rec.policy, 5);
        EXPECT_GE(rec.accuracy_pct, 0.0);
        EXPECT_LE(rec.accuracy_pct, 100.0);
        EXPECT_GE(rec.coverage_pct, 0.0);
        EXPECT_LE(rec.coverage_pct, 100.0);
        // Suggested splits into issued-or-dropped and suppressed
        // upstream of the LPQ; each piece is bounded by the total
        // decision count.
        EXPECT_LE(rec.suppressed, rec.reads + rec.overflow_reads);
    }
}

TEST(Telemetry, CapturesSlhSnapshotsPerThread)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());
    for (const EpochRecord &rec : epochs) {
        ASSERT_EQ(rec.slh.size(), 1u); // single-threaded run
        EXPECT_EQ(rec.slh[0].thread, 0u);
        EXPECT_FALSE(rec.slh[0].positive.empty());
        EXPECT_EQ(rec.slh[0].positive.size(),
                  rec.slh[0].negative.size());
    }
}

TEST(Telemetry, NoSlhOptionOmitsSnapshots)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.telemetry.capture_slh = false;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());
    for (const EpochRecord &rec : epochs)
        EXPECT_TRUE(rec.slh.empty());
}

TEST(Telemetry, MaxEpochsCapsTheSeries)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.telemetry.max_epochs = 1;
    const auto epochs = recordedRun(options);
    EXPECT_EQ(epochs.size(), 1u);
}

TEST(Telemetry, NonAsdPrefetcherRecordsNothing)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.mc_prefetcher = McPrefetcherKind::NextLine;
    const auto epochs = recordedRun(options);
    EXPECT_TRUE(epochs.empty());
}

TEST(Telemetry, RecordingDoesNotPerturbTheRun)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.accesses = 30000;
    const Benchmark &bench = findBenchmark("milc");
    const RunMetrics plain = runBenchmark(bench, options);

    options.telemetry.enabled = true;
    std::vector<EpochRecord> epochs;
    const RunMetrics recorded =
        runBenchmark(bench, options, &epochs);

    EXPECT_EQ(plain.cycles, recorded.cycles);
    EXPECT_EQ(plain.mc_reads, recorded.mc_reads);
    EXPECT_EQ(plain.ms_prefetches_issued,
              recorded.ms_prefetches_issued);
    EXPECT_EQ(plain.coverage_pct, recorded.coverage_pct);
}

TEST(Telemetry, EpochDeltasSumBelowRunTotals)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.telemetry.enabled = true;
    options.accesses = 40000;
    std::vector<EpochRecord> epochs;
    const RunMetrics m =
        runBenchmark(findBenchmark("bwaves"), options, &epochs);
    ASSERT_FALSE(epochs.empty());
    std::uint64_t reads = 0;
    std::uint64_t issued = 0;
    for (const EpochRecord &rec : epochs) {
        reads += rec.reads;
        issued += rec.prefetches_issued;
    }
    // The tail after the last epoch boundary is not recorded, so the
    // per-epoch sums are bounded by the run totals.
    EXPECT_LE(reads, m.mc_reads);
    EXPECT_LE(issued, m.ms_prefetches_issued);
    EXPECT_GE(reads, 2000u);
}

// --- epoch-boundary edge cases --------------------------------------

TEST(Telemetry, ZeroLengthEpochYieldsCleanZeroRecord)
{
    // A boundary that re-fires with no simulation progress (the
    // degenerate zero-length final epoch) must record all-zero deltas
    // and keep the 0/0 ratios at 0.0 rather than NaN.
    DramConfig dram_config;
    dram_config.refresh_enabled = false;
    Dram dram(dram_config);
    MemoryController mc(McConfig{}, dram, [](std::uint64_t, Cycle) {});
    AsdPrefetcher asd{AsdConfig{}};
    TelemetryConfig config;
    config.enabled = true;
    TelemetryRecorder recorder(config, asd, mc, dram);

    recorder.onEpochEnd(1000);
    recorder.onEpochEnd(1000);
    ASSERT_EQ(recorder.records().size(), 2u);
    const EpochRecord &rec = recorder.records().back();
    EXPECT_EQ(rec.start_cycle, 1000u);
    EXPECT_EQ(rec.end_cycle, 1000u);
    EXPECT_EQ(rec.reads, 0u);
    EXPECT_EQ(rec.prefetches_issued, 0u);
    EXPECT_EQ(rec.buffer_hits, 0u);
    EXPECT_EQ(rec.accuracy_pct, 0.0);
    EXPECT_EQ(rec.coverage_pct, 0.0);
}

TEST(Telemetry, WarmupRebaselineExcludesWarmupActivity)
{
    // The recorder rebaselines when the prefetcher arms at the
    // warm-up boundary: epoch 1 starts at or after warmup_cycles,
    // still spans exactly epoch_reads MC reads (warm-up reads do not
    // leak into its deltas), and the series stays gapless.
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.warmup_cycles = 20000;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());
    EXPECT_GE(epochs.front().start_cycle, 20000u);
    EXPECT_EQ(epochs.front().epoch, 1u);
    EXPECT_EQ(epochs.front().reads, 2000u);
    for (std::size_t i = 1; i < epochs.size(); ++i)
        EXPECT_EQ(epochs[i].start_cycle, epochs[i - 1].end_cycle);
}

TEST(Telemetry, HookReArmsAfterSnapshotRestore)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    options.telemetry.enabled = true;
    const SystemConfig config = makeSystemConfig(options);
    SyntheticConfig trace_config = findBenchmark("bwaves").trace;
    trace_config.total_accesses = 60000;

    SyntheticTraceGenerator straight_trace(trace_config);
    System straight(config, {&straight_trace});
    const RunMetrics metrics = straight.run();
    ASSERT_NE(straight.telemetry(), nullptr);
    const std::vector<EpochRecord> want =
        straight.telemetry()->records();
    ASSERT_GE(want.size(), 2u);

    SyntheticTraceGenerator first_trace(trace_config);
    System first(config, {&first_trace});
    first.runUntil(metrics.cycles / 2);
    SnapshotWriter writer;
    first.saveSnapshot(writer);
    const std::vector<std::uint8_t> bytes = writer.finish(0);
    const std::size_t prefix = first.telemetry()->records().size();
    ASSERT_LT(prefix, want.size());

    SyntheticTraceGenerator resumed_trace(trace_config);
    System resumed(config, {&resumed_trace});
    SnapshotReader reader(bytes);
    resumed.loadSnapshot(reader);
    resumed.runUntil(kNoCycle);

    // New records accumulated after the restore: the epoch-end hook
    // was re-armed, and the combined series matches the
    // uninterrupted run exactly.
    const std::vector<EpochRecord> &got =
        resumed.telemetry()->records();
    ASSERT_GT(got.size(), prefix);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].epoch, want[i].epoch);
        EXPECT_EQ(got[i].start_cycle, want[i].start_cycle);
        EXPECT_EQ(got[i].end_cycle, want[i].end_cycle);
        EXPECT_EQ(got[i].reads, want[i].reads);
        EXPECT_EQ(got[i].suggested, want[i].suggested);
        EXPECT_EQ(got[i].prefetches_issued,
                  want[i].prefetches_issued);
        EXPECT_EQ(got[i].policy, want[i].policy);
    }
}

TEST(TelemetrySinks, CsvHasHeaderAndOneRowPerEpoch)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());

    std::ostringstream out;
    writeTelemetryCsv(epochs, out);
    const std::string text = out.str();
    EXPECT_EQ(text.rfind("epoch,start_cycle,end_cycle,", 0), 0u);
    std::size_t lines = 0;
    for (const char c : text)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, epochs.size() + 1);
}

TEST(TelemetrySinks, JsonIsParseableAndComplete)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());

    const std::string json = telemetryJson(epochs);
    EXPECT_TRUE(jsonParseCheck(json));
    EXPECT_NE(json.find("\"schema\":\"asdsim/telemetry/v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"slh\""), std::string::npos);
}

TEST(TelemetrySinks, ChromeTraceIsParseable)
{
    RunOptions options;
    options.mode = PrefetchMode::MS;
    const auto epochs = recordedRun(options);
    ASSERT_FALSE(epochs.empty());

    const std::string trace = telemetryChromeTrace(epochs);
    EXPECT_TRUE(jsonParseCheck(trace));
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TelemetrySinks, EmptySeriesStillWellFormed)
{
    const std::vector<EpochRecord> none;
    std::ostringstream out;
    writeTelemetryCsv(none, out);
    EXPECT_EQ(out.str().rfind("epoch,", 0), 0u);
    EXPECT_TRUE(jsonParseCheck(telemetryJson(none)));
    EXPECT_TRUE(jsonParseCheck(telemetryChromeTrace(none)));
}

} // namespace
} // namespace asd
