/**
 * @file
 * Tests for Adaptive Scheduling (paper section 3.5): the hysteresis
 * policy walk driven by prefetch-conflict feedback, the policy
 * bounds, and the pinned-policy mode used by the Fig. 11 ablation.
 */

#include <gtest/gtest.h>

#include "core/adaptive_scheduler.hpp"

namespace asd
{
namespace
{

AdaptiveSchedConfig
config(bool adaptive = true)
{
    AdaptiveSchedConfig cfg;
    cfg.adaptive = adaptive;
    cfg.start_policy = 3;
    cfg.fixed_policy = 2;
    cfg.high_watermark = 10;
    cfg.low_watermark = 3;
    return cfg;
}

TEST(AdaptiveSched, StartsAtStartPolicy)
{
    AdaptiveScheduler sched(config());
    EXPECT_EQ(sched.policy(), 3);
}

TEST(AdaptiveSched, QuietEpochsStepTowardAggressive)
{
    AdaptiveScheduler sched(config());
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 4);
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 5);
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 5); // clamped at 5
}

TEST(AdaptiveSched, ConflictHeavyEpochsStepTowardConservative)
{
    AdaptiveScheduler sched(config());
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (int i = 0; i < 20; ++i)
            sched.notifyConflict();
        sched.epochEnd();
    }
    EXPECT_EQ(sched.policy(), 1); // walked 3 -> 2 -> 1, clamped
}

TEST(AdaptiveSched, MidBandHoldsPolicy)
{
    AdaptiveScheduler sched(config());
    for (int i = 0; i < 5; ++i) // between low (3) and high (10)
        sched.notifyConflict();
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 3);
}

TEST(AdaptiveSched, ConflictCountResetsEachEpoch)
{
    AdaptiveScheduler sched(config());
    for (int i = 0; i < 8; ++i)
        sched.notifyConflict();
    EXPECT_EQ(sched.epochConflicts(), 8u);
    sched.epochEnd();
    EXPECT_EQ(sched.epochConflicts(), 0u);
}

TEST(AdaptiveSched, PinnedModeIgnoresFeedback)
{
    AdaptiveScheduler sched(config(false));
    EXPECT_EQ(sched.policy(), 2);
    for (int epoch = 0; epoch < 4; ++epoch)
        sched.epochEnd();
    EXPECT_EQ(sched.policy(), 2);
    for (int i = 0; i < 100; ++i)
        sched.notifyConflict();
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 2);
}

TEST(AdaptiveSched, ExactWatermarksAreInclusiveBand)
{
    AdaptiveScheduler sched(config());
    // Exactly high_watermark conflicts: not "greater", so hold.
    for (int i = 0; i < 10; ++i)
        sched.notifyConflict();
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 3);
    // Exactly low_watermark: not "less", so hold.
    for (int i = 0; i < 3; ++i)
        sched.notifyConflict();
    sched.epochEnd();
    EXPECT_EQ(sched.policy(), 3);
}

TEST(AdaptiveSched, RejectsBadPolicy)
{
    AdaptiveSchedConfig bad = config(false);
    bad.fixed_policy = 6;
    EXPECT_EXIT(AdaptiveScheduler{bad}, testing::ExitedWithCode(1),
                "policy");
}

} // namespace
} // namespace asd
