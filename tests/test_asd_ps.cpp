/**
 * @file
 * Tests for the processor-side ASD prefetcher (the paper's section 6
 * future work): decision behavior mirrors the memory-side unit,
 * access-count epochs, degree handling, and the Fig.-11-style
 * contrast with the sequential Power5 prefetcher on short streams.
 */

#include <gtest/gtest.h>

#include "prefetch/asd_ps_prefetcher.hpp"
#include "prefetch/ps_prefetcher.hpp"

namespace asd
{
namespace
{

AsdPsConfig
testConfig(std::uint32_t epoch = 60)
{
    AsdPsConfig config;
    config.epoch_accesses = epoch;
    config.lifetime_init = 8;
    config.lifetime_extend = 8;
    config.degree = 1;
    return config;
}

/** Feed @p count upward streams of @p len lines, far apart. */
void
train(AsdPsPrefetcher &pf, std::uint32_t count, std::uint32_t len)
{
    for (std::uint32_t s = 0; s < count; ++s) {
        const LineAddr base = 1'000'000 + s * 10'000;
        for (std::uint32_t i = 0; i < len; ++i)
            pf.observe(base + i, true);
        // Idle accesses age out the stream between bursts.
        for (int idle = 0; idle < 10; ++idle)
            pf.observe(77, false);
    }
}

TEST(AsdPs, ColdStartSilent)
{
    AsdPsPrefetcher pf(testConfig());
    for (LineAddr line = 0; line < 20; ++line)
        EXPECT_TRUE(pf.observe(line * 500, true).empty());
}

TEST(AsdPs, LearnsLengthTwoStreams)
{
    AsdPsPrefetcher pf(testConfig(66));
    train(pf, 6, 2); // 6 x (2 + 10 idle) = 72 accesses -> 1+ epoch
    ASSERT_GE(pf.epochsCompleted(), 1u);
    const auto first = pf.observe(500, true);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].line, 501u);
    EXPECT_TRUE(first[0].to_l1);
    EXPECT_TRUE(pf.observe(501, true).empty()); // 2nd element: stop
}

TEST(AsdPs, DegreeTwoTargetsL2)
{
    AsdPsConfig config = testConfig(80);
    config.degree = 2;
    AsdPsPrefetcher pf(config);
    train(pf, 6, 4); // length-4 streams: k=1 passes degree 1 and 2
    ASSERT_GE(pf.epochsCompleted(), 1u);
    const auto reqs = pf.observe(500, true);
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_TRUE(reqs[0].to_l1);
    EXPECT_EQ(reqs[1].line, 502u);
    EXPECT_FALSE(reqs[1].to_l1);
}

TEST(AsdPs, ObservesHitsAndMissesAlike)
{
    // Unlike the Power5 unit, ASD learns from the whole access
    // stream; hits extend streams too.
    AsdPsPrefetcher pf(testConfig(66));
    train(pf, 6, 2);
    pf.observe(900, false);
    const auto reqs = pf.observe(901, false);
    // Extension on hits: stream length 2 reached; no prefetch for
    // length-2-trained workload, but the stream was tracked (no
    // allocation failure) — verify by walking one more line.
    EXPECT_TRUE(reqs.empty());
}

TEST(AsdPs, ShortStreamAdvantageOverSequentialPs)
{
    // On an all-length-2 workload, the sequential prefetcher issues
    // one useless prefetch per stream (the 3rd line); ASD-PS issues
    // none.
    AsdPsPrefetcher asd_ps(testConfig(66));
    PsPrefetcher p5({});
    train(asd_ps, 6, 2);

    std::uint64_t asd_wasted = 0;
    std::uint64_t p5_wasted = 0;
    for (std::uint32_t s = 0; s < 20; ++s) {
        const LineAddr base = 5'000'000 + s * 1'000;
        for (LineAddr i = 0; i < 2; ++i) {
            for (const auto &req : asd_ps.observe(base + i, true))
                asd_wasted += req.line > base + 1; // beyond the stream
            for (const auto &req : p5.observe(base + i, true))
                p5_wasted += req.line > base + 1;
        }
    }
    EXPECT_EQ(asd_wasted, 0u);
    EXPECT_GT(p5_wasted, 10u);
}

TEST(AsdPs, EpochsCountAccesses)
{
    AsdPsPrefetcher pf(testConfig(10));
    for (int i = 0; i < 25; ++i)
        pf.observe(static_cast<LineAddr>(i) * 100, true);
    EXPECT_EQ(pf.epochsCompleted(), 2u);
}

TEST(AsdPs, RejectsBadDegree)
{
    AsdPsConfig config = testConfig();
    config.degree = 3;
    EXPECT_EXIT(AsdPsPrefetcher{config}, testing::ExitedWithCode(1),
                "degree");
}

} // namespace
} // namespace asd
