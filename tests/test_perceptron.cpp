/**
 * @file
 * Tests for the perceptron-filtered stream prefetcher: issue/suppress
 * decisions, positive and negative outcome training, recovery of
 * falsely suppressed candidates, and snapshot round-trips.
 */

#include <gtest/gtest.h>

#include "core/asd_config.hpp"
#include "prefetch/perceptron_prefetcher.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{
namespace
{

AsdConfig
shared()
{
    AsdConfig config;
    config.epoch_reads = 1000;
    return config;
}

PerceptronConfig
tiny()
{
    PerceptronConfig config;
    config.table_size = 32;
    config.pending_entries = 8;
    config.pending_window_reads = 16;
    config.degree = 1;
    return config;
}

/** Extend a unit stream until the filter confirms it (length 2). */
std::vector<LineAddr>
confirmStream(PerceptronMcPrefetcher &pf, LineAddr start)
{
    pf.observeRead(start, 0, 0);
    return pf.observeRead(start + 1, 0, 0);
}

TEST(Perceptron, ZeroWeightsIssueAtDefaultThreshold)
{
    PerceptronMcPrefetcher pf(shared(), tiny());
    // Fresh tables sum to 0, which meets threshold 0: the filter
    // starts permissive and learns to say no.
    const auto out = confirmStream(pf, 100);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 102u);
    EXPECT_EQ(pf.pendingCount(), 1u);
}

TEST(Perceptron, PositiveThresholdStartsSuppressed)
{
    PerceptronConfig config = tiny();
    config.threshold = 1;
    PerceptronMcPrefetcher pf(shared(), config);
    EXPECT_TRUE(confirmStream(pf, 100).empty());
    // The rejection is still tracked for outcome training.
    EXPECT_EQ(pf.pendingCount(), 1u);
}

TEST(Perceptron, ConsumptionTrainsPositive)
{
    PerceptronMcPrefetcher pf(shared(), tiny());
    const auto out = confirmStream(pf, 100);
    ASSERT_EQ(out.size(), 1u);
    const std::int32_t before = pf.score(102, 2, StreamDir::Positive, 1);
    // The prefetch completes and a demand read consumes it.
    pf.fillBuffer(102, 0);
    EXPECT_TRUE(pf.lookupBuffer(102));
    EXPECT_EQ(pf.pendingCount(), 0u);
    EXPECT_GT(pf.score(102, 2, StreamDir::Positive, 1), before);
}

TEST(Perceptron, ExpiryTrainsNegative)
{
    PerceptronMcPrefetcher pf(shared(), tiny());
    confirmStream(pf, 100);
    const std::int32_t before = pf.score(102, 2, StreamDir::Positive, 1);
    // Nothing consumes the prefetch; unrelated reads age it out
    // (more than pending_window_reads of them).
    for (LineAddr line = 1000; line < 1040; line += 2)
        pf.observeRead(line, 0, 0);
    EXPECT_EQ(pf.pendingCount(), 0u);
    EXPECT_LT(pf.score(102, 2, StreamDir::Positive, 1), before);
}

TEST(Perceptron, SuppressedCandidateDemandedTrainsPositive)
{
    PerceptronConfig config = tiny();
    config.threshold = 1; // start suppressing everything
    PerceptronMcPrefetcher pf(shared(), config);
    EXPECT_TRUE(confirmStream(pf, 100).empty());
    const std::int32_t before = pf.score(102, 2, StreamDir::Positive, 1);
    // The suppressed line is demanded: a false rejection. It misses
    // the buffer, so the demand arrives through observeRead.
    pf.observeRead(102, 0, 0);
    EXPECT_GT(pf.score(102, 2, StreamDir::Positive, 1), before);
}

TEST(Perceptron, RepeatedUselessStreamsLearnSuppression)
{
    PerceptronConfig config = tiny();
    config.train_margin = 0;
    PerceptronMcPrefetcher pf(shared(), config);
    // Confirm many two-line streams whose prefetches are never
    // consumed; negative training accumulates until candidates from
    // that regime score below threshold.
    bool suppressed = false;
    LineAddr base = 0;
    for (int round = 0; round < 64 && !suppressed; ++round) {
        const auto out = confirmStream(pf, base);
        suppressed = out.empty();
        base += 4096; // fresh region every round
        for (LineAddr line = base + 2000; line < base + 2040;
             line += 2)
            pf.observeRead(line, 0, 0); // age the record out
    }
    EXPECT_TRUE(suppressed);
}

TEST(Perceptron, WeightsSaturateAtConfiguredMax)
{
    PerceptronConfig config = tiny();
    config.weight_max = 2;
    config.train_margin = 1000; // margin never stops training
    PerceptronMcPrefetcher pf(shared(), config);
    for (int round = 0; round < 16; ++round) {
        const auto out = confirmStream(
            pf, 100 + static_cast<LineAddr>(round) * 4096);
        for (const LineAddr line : out) {
            pf.fillBuffer(line, 0);
            pf.lookupBuffer(line);
        }
    }
    // Four features, each weight capped at 2.
    EXPECT_LE(pf.score(102, 2, StreamDir::Positive, 1), 8);
}

TEST(Perceptron, SnapshotRoundTripPreservesBehaviour)
{
    PerceptronMcPrefetcher pf(shared(), tiny());
    const auto out = confirmStream(pf, 100);
    for (const LineAddr line : out) {
        pf.fillBuffer(line, 0);
        pf.lookupBuffer(line);
    }
    confirmStream(pf, 5000); // leave a pending record live

    SnapshotWriter w;
    w.beginSection("perceptron");
    pf.saveState(w);
    w.endSection();
    SnapshotReader r(w.finish(0));
    r.openSection("perceptron");
    PerceptronMcPrefetcher restored(shared(), tiny());
    restored.loadState(r);
    r.endSection();

    EXPECT_EQ(restored.pendingCount(), pf.pendingCount());
    EXPECT_EQ(restored.score(102, 2, StreamDir::Positive, 1),
              pf.score(102, 2, StreamDir::Positive, 1));
    // Identical decisions from here on.
    EXPECT_EQ(restored.observeRead(5002, 0, 0),
              pf.observeRead(5002, 0, 0));
}

TEST(Perceptron, SnapshotRejectsOutOfRangeWeight)
{
    PerceptronConfig big = tiny();
    PerceptronMcPrefetcher pf(shared(), big);
    pf.fillBuffer(102, 0); // give the buffer some state too
    SnapshotWriter w;
    w.beginSection("perceptron");
    pf.saveState(w);
    w.endSection();
    SnapshotReader r(w.finish(0));
    r.openSection("perceptron");
    PerceptronConfig small = tiny();
    small.table_size = 16; // weight table shrinks: count mismatch
    PerceptronMcPrefetcher mismatched(shared(), small);
    EXPECT_THROW(mismatched.loadState(r), SnapshotError);
}

} // namespace
} // namespace asd
