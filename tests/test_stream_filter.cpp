/**
 * @file
 * Tests for the Stream Filter (paper section 3.3): allocation,
 * extension, direction flipping, same-line refresh, overflow,
 * lifetime expiry, epoch flush, and the unbounded oracle mode.
 */

#include <gtest/gtest.h>

#include "core/stream_filter.hpp"

namespace asd
{
namespace
{

using Kind = StreamObservation::Kind;

TEST(StreamFilter, AllocatesNewStream)
{
    StreamFilter filter(4, 100, 100);
    const StreamObservation obs = filter.observe(10, 0);
    EXPECT_EQ(obs.kind, Kind::Allocated);
    EXPECT_EQ(obs.length, 1u);
    EXPECT_EQ(obs.dir, StreamDir::Positive);
    EXPECT_EQ(filter.liveStreams(), 1u);
}

TEST(StreamFilter, ExtendsPositiveStream)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);
    const StreamObservation obs = filter.observe(11, 1);
    EXPECT_EQ(obs.kind, Kind::Extended);
    EXPECT_EQ(obs.length, 2u);
    EXPECT_EQ(obs.dir, StreamDir::Positive);
    EXPECT_EQ(filter.observe(12, 2).length, 3u);
    EXPECT_EQ(filter.liveStreams(), 1u);
}

TEST(StreamFilter, FlipsToNegativeOnSecondElement)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);
    const StreamObservation obs = filter.observe(9, 1);
    EXPECT_EQ(obs.kind, Kind::Extended);
    EXPECT_EQ(obs.dir, StreamDir::Negative);
    EXPECT_EQ(obs.length, 2u);
    // Continues downward.
    EXPECT_EQ(filter.observe(8, 2).length, 3u);
    // An upward read no longer extends it.
    EXPECT_EQ(filter.observe(9, 3).kind, Kind::Allocated);
}

TEST(StreamFilter, NoFlipAfterDirectionCommitted)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);
    filter.observe(11, 1); // committed positive
    const StreamObservation obs = filter.observe(10, 2);
    // 10 == last - 1 but the stream has length 2: allocate new.
    EXPECT_EQ(obs.kind, Kind::Allocated);
}

TEST(StreamFilter, AmbiguityExtensionBeatsSameLine)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0); // slot B allocated at 10
    filter.observe(11, 1); // extends B: last 11, length 2
    filter.observe(10, 2); // slot A allocated: last 10, length 1
    // 11 is both A's extension (10 + 1) and B's last line. Extension
    // must win over the same-line refresh regardless of slot order,
    // and A's new last landing on B's retires B as a length-2 dead
    // stream.
    const StreamObservation obs = filter.observe(11, 3);
    EXPECT_EQ(obs.kind, Kind::Extended);
    EXPECT_EQ(obs.length, 2u);
    EXPECT_EQ(obs.dir, StreamDir::Positive);
    EXPECT_TRUE(obs.converged);
    EXPECT_EQ(obs.converged_stream.length, 2u);
    EXPECT_EQ(filter.liveStreams(), 1u);
}

TEST(StreamFilter, AmbiguityFlipBeatsSameLine)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(12, 0); // slot B allocated at 12
    filter.observe(11, 1); // flips B negative: last 11, length 2
    filter.observe(10, 2); // extends B: last 10, length 3
    filter.observe(11, 3); // slot A allocated: last 11, length 1
    // 10 is both A's direction-flip (11 - 1, length 1) and B's last
    // line. The flip must win over the same-line refresh, and A's new
    // last landing on B's retires B as a length-3 dead stream.
    const StreamObservation obs = filter.observe(10, 4);
    EXPECT_EQ(obs.kind, Kind::Extended);
    EXPECT_EQ(obs.length, 2u);
    EXPECT_EQ(obs.dir, StreamDir::Negative);
    EXPECT_TRUE(obs.converged);
    EXPECT_EQ(obs.converged_stream.length, 3u);
    EXPECT_EQ(obs.converged_stream.dir, StreamDir::Negative);
    EXPECT_EQ(filter.liveStreams(), 1u);
}

TEST(StreamFilter, ExtensionConvergesOntoOtherSlotsLastLine)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(29, 0); // slot C allocated at 29
    filter.observe(28, 1); // flips C negative: last 28, length 2
    filter.observe(30, 2); // slot B allocated: last 30, length 1
    // 29 flips B (30 - 1) and touches no other slot's last line.
    const StreamObservation flip = filter.observe(29, 3);
    EXPECT_EQ(flip.kind, Kind::Extended);
    EXPECT_EQ(flip.dir, StreamDir::Negative);
    EXPECT_FALSE(flip.converged);
    // 28 extends B downward and lands on C's last line: converge,
    // retiring C so slot-last uniqueness stays a true invariant.
    const StreamObservation obs = filter.observe(28, 4);
    EXPECT_EQ(obs.kind, Kind::Extended);
    EXPECT_EQ(obs.length, 3u);
    EXPECT_EQ(obs.dir, StreamDir::Negative);
    EXPECT_TRUE(obs.converged);
    EXPECT_EQ(obs.converged_stream.length, 2u);
    EXPECT_EQ(obs.converged_stream.dir, StreamDir::Negative);
    EXPECT_EQ(filter.liveStreams(), 1u);
}

TEST(StreamFilter, SameLineRefreshesLifetime)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0); // expires at 100
    const StreamObservation obs = filter.observe(10, 90);
    EXPECT_EQ(obs.kind, Kind::SameLine);
    // Refreshed to 90 + 100; no expiry at 150.
    EXPECT_TRUE(filter.expireLifetimes(150).empty());
    EXPECT_EQ(filter.expireLifetimes(190).size(), 1u);
}

TEST(StreamFilter, OverflowWhenFull)
{
    StreamFilter filter(2, 100, 100);
    filter.observe(10, 0);
    filter.observe(20, 0);
    const StreamObservation obs = filter.observe(30, 0);
    EXPECT_EQ(obs.kind, Kind::Overflow);
    EXPECT_EQ(filter.liveStreams(), 2u);
}

TEST(StreamFilter, OverflowReadCanStillExtend)
{
    StreamFilter filter(2, 100, 100);
    filter.observe(10, 0);
    filter.observe(20, 0);
    // 11 extends the first stream even though the filter is full.
    EXPECT_EQ(filter.observe(11, 0).kind, Kind::Extended);
}

TEST(StreamFilter, LifetimeExpiryReportsLength)
{
    StreamFilter filter(4, 100, 50);
    filter.observe(10, 0);
    filter.observe(11, 10); // expires at 100 + 50 = 150
    EXPECT_TRUE(filter.expireLifetimes(149).empty());
    const auto dead = filter.expireLifetimes(150);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].length, 2u);
    EXPECT_EQ(dead[0].dir, StreamDir::Positive);
    EXPECT_EQ(filter.liveStreams(), 0u);
}

TEST(StreamFilter, ExtensionAddsLifetimeWithSaturation)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);
    for (LineAddr line = 11; line < 15; ++line)
        filter.observe(line, 0);
    // The lifetime counter saturates at init + extend from the last
    // extension (all at t=0): expires at 200, not 500 — a finite
    // counter cannot bank unbounded lifetime.
    EXPECT_TRUE(filter.expireLifetimes(199).empty());
    EXPECT_EQ(filter.expireLifetimes(200).size(), 1u);
}

TEST(StreamFilter, ExtensionRefreshesFromNow)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);   // expires at 100
    filter.observe(11, 90);  // extend: min(100+100, 90+200) = 200
    EXPECT_TRUE(filter.expireLifetimes(199).empty());
    filter.observe(12, 199); // extend: min(200+100, 199+200) = 300
    EXPECT_TRUE(filter.expireLifetimes(299).empty());
    EXPECT_EQ(filter.expireLifetimes(300).size(), 1u);
}

TEST(StreamFilter, FlushReturnsEverything)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(10, 0);
    filter.observe(11, 0);
    filter.observe(50, 0);
    const auto dead = filter.flushAll();
    ASSERT_EQ(dead.size(), 2u);
    EXPECT_EQ(filter.liveStreams(), 0u);
    std::uint64_t total_len = 0;
    for (const auto &stream : dead)
        total_len += stream.length;
    EXPECT_EQ(total_len, 3u);
}

TEST(StreamFilter, SlotReusableAfterExpiry)
{
    StreamFilter filter(1, 100, 100);
    filter.observe(10, 0);
    EXPECT_EQ(filter.observe(20, 1).kind, Kind::Overflow);
    filter.expireLifetimes(200);
    EXPECT_EQ(filter.observe(20, 200).kind, Kind::Allocated);
}

TEST(StreamFilter, OracleModeNeverOverflows)
{
    StreamFilter filter(0, kNoCycle / 2, 0);
    for (LineAddr base = 0; base < 1000; ++base)
        EXPECT_NE(filter.observe(base * 100, 0).kind, Kind::Overflow);
    EXPECT_EQ(filter.liveStreams(), 1000u);
    EXPECT_EQ(filter.flushAll().size(), 1000u);
    EXPECT_EQ(filter.liveStreams(), 0u);
}

TEST(StreamFilter, OracleTracksInterleavedStreamsExactly)
{
    StreamFilter filter(0, kNoCycle / 2, 0);
    // Interleave 10 streams of length 7.
    for (std::uint64_t element = 0; element < 7; ++element)
        for (LineAddr stream = 0; stream < 10; ++stream)
            filter.observe(stream * 1000 + element, 0);
    const auto dead = filter.flushAll();
    ASSERT_EQ(dead.size(), 10u);
    for (const auto &stream : dead)
        EXPECT_EQ(stream.length, 7u);
}

TEST(StreamFilter, ZeroAddressNegativeGuard)
{
    StreamFilter filter(4, 100, 100);
    filter.observe(0, 0);
    // No line below 0 exists; a read of huge address allocates.
    EXPECT_EQ(filter.observe(~LineAddr{0} / 2, 0).kind,
              Kind::Allocated);
}

} // namespace
} // namespace asd
