/**
 * @file
 * Unit and property tests for the common substrate: RNG, alias-method
 * sampler, histogram, stat registry, table printer, JSON edge cases,
 * and the checked narrow() conversion.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace asd
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(99);
    std::vector<int> buckets(8, 0);
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++buckets[rng.nextBelow(8)];
    for (const int count : buckets) {
        EXPECT_NEAR(count, draws / 8, draws / 8 / 5)
            << "bucket far from uniform";
    }
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextInRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(21);
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(DiscreteSampler, MatchesWeights)
{
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    DiscreteSampler sampler(weights);
    Rng rng(17);
    std::vector<int> counts(3, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.015);
}

TEST(DiscreteSampler, SingleOutcome)
{
    DiscreteSampler sampler({42.0});
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightOutcomeNeverDrawn)
{
    DiscreteSampler sampler({1.0, 0.0, 1.0});
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, NormalizedProbabilities)
{
    DiscreteSampler sampler({2.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(sampler.probability(2), 0.5);
}

TEST(Histogram, AddAndCount)
{
    Histogram hist(4);
    hist.add(1);
    hist.add(2, 5);
    hist.add(4);
    EXPECT_EQ(hist.count(1), 1u);
    EXPECT_EQ(hist.count(2), 5u);
    EXPECT_EQ(hist.count(3), 0u);
    EXPECT_EQ(hist.count(4), 1u);
    EXPECT_EQ(hist.total(), 7u);
}

TEST(Histogram, SaturatesIntoLastBucket)
{
    Histogram hist(3);
    hist.add(3);
    hist.add(7);
    hist.add(100);
    EXPECT_EQ(hist.count(3), 3u);
}

TEST(Histogram, Fractions)
{
    Histogram hist(2);
    hist.add(1, 3);
    hist.add(2, 1);
    EXPECT_DOUBLE_EQ(hist.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(hist.fraction(2), 0.25);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram hist(4);
    EXPECT_DOUBLE_EQ(hist.fraction(1), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram hist(4);
    hist.add(2, 10);
    hist.clear();
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_EQ(hist.count(2), 0u);
}

TEST(Histogram, L1DistanceIdenticalIsZero)
{
    Histogram a(4);
    Histogram b(4);
    a.add(1, 2);
    a.add(3, 2);
    b.add(1, 4);
    b.add(3, 4); // same shape, different scale
    EXPECT_NEAR(a.l1Distance(b), 0.0, 1e-12);
}

TEST(Histogram, L1DistanceDisjointIsTwo)
{
    Histogram a(4);
    Histogram b(4);
    a.add(1, 10);
    b.add(4, 10);
    EXPECT_NEAR(a.l1Distance(b), 2.0, 1e-12);
}

TEST(StatRegistry, RegisterAndRead)
{
    Counter counter;
    StatRegistry registry;
    registry.add("x.y", counter);
    counter.inc(3);
    EXPECT_EQ(registry.value("x.y"), 3u);
    EXPECT_TRUE(registry.has("x.y"));
    EXPECT_FALSE(registry.has("x.z"));
}

TEST(StatRegistry, DumpIsSorted)
{
    Counter a;
    Counter b;
    StatRegistry registry;
    registry.add("b", b);
    registry.add("a", a);
    const auto dump = registry.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
}

TEST(Table, AlignedOutputContainsCells)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0), "2.0");
}

// Edge cases surfaced while building the asdlint JSON sink: escaping
// of backslash and control characters, 64-bit extremes, and deep
// nesting against the checker's recursion cap.

TEST(Json, EscapesBackslashQuoteAndControlChars)
{
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape("nl\nend"), "nl\\nend");
    EXPECT_EQ(jsonEscape(std::string("nul\0!", 5)), "nul\\u0000!");
    EXPECT_EQ(jsonEscape("\x01\x1f"), "\\u0001\\u001f");
    // A Windows-style path survives a writer -> checker round trip.
    JsonWriter w;
    w.beginObject().key("path").value("C:\\tmp\\x.json").endObject();
    EXPECT_EQ(w.str(), "{\"path\":\"C:\\\\tmp\\\\x.json\"}");
    EXPECT_TRUE(jsonParseCheck(w.str()));
}

TEST(Json, Uint64MaxRoundTrips)
{
    JsonWriter w;
    w.beginObject()
        .key("max")
        .value(std::numeric_limits<std::uint64_t>::max())
        .key("min")
        .value(std::numeric_limits<std::int64_t>::min())
        .endObject();
    EXPECT_EQ(w.str(), "{\"max\":18446744073709551615,"
                       "\"min\":-9223372036854775808}");
    EXPECT_TRUE(jsonParseCheck(w.str()));
}

TEST(Json, DeeplyNestedArraysWithinCheckerCap)
{
    std::string doc;
    for (int i = 0; i < 100; ++i)
        doc += '[';
    doc += '1';
    for (int i = 0; i < 100; ++i)
        doc += ']';
    EXPECT_TRUE(jsonParseCheck(doc));
}

TEST(Json, AbsurdNestingIsRejectedNotOverflowed)
{
    std::string doc;
    for (int i = 0; i < 100000; ++i)
        doc += '[';
    doc += '1';
    for (int i = 0; i < 100000; ++i)
        doc += ']';
    // The checker bounds recursion depth instead of crashing; a
    // 100k-deep document is rejected as unparseable.
    EXPECT_FALSE(jsonParseCheck(doc));
}

TEST(Json, WriterHandlesDeepNestingAndEmptyContainers)
{
    JsonWriter w;
    for (int i = 0; i < 64; ++i)
        w.beginArray();
    w.beginObject().endObject();
    for (int i = 0; i < 64; ++i)
        w.endArray();
    EXPECT_TRUE(jsonParseCheck(w.str()));
    EXPECT_EQ(w.str().substr(0, 10), "[[[[[[[[[[");
}

// --- narrow() ------------------------------------------------------

TEST(Narrow, RoundTripsInRangeValues)
{
    EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{0}), 0u);
    EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{0xffffffffULL}),
              0xffffffffu);
    EXPECT_EQ(narrow<std::int32_t>(std::int64_t{-5}), -5);
    EXPECT_EQ(narrow<std::uint8_t>(255u), 255u);
    // Widening and identity conversions are fine too.
    EXPECT_EQ(narrow<std::uint64_t>(std::uint32_t{7}), 7u);
}

TEST(NarrowDeathTest, PanicsOnTruncation)
{
    EXPECT_DEATH(narrow<std::uint32_t>(std::uint64_t{1} << 32),
                 "narrow");
    EXPECT_DEATH(narrow<std::uint8_t>(256u), "narrow");
}

TEST(NarrowDeathTest, PanicsOnSignMismatch)
{
    EXPECT_DEATH(narrow<std::uint32_t>(std::int64_t{-1}), "narrow");
    EXPECT_DEATH(
        narrow<std::int32_t>(std::uint64_t{0xffffffff80000000ULL}),
        "narrow");
}

} // namespace
} // namespace asd
