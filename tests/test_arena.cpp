/**
 * @file
 * Tests for the bake-off arena: registry completeness against the
 * enums it mirrors, scoring math and deterministic tie-breaks, report
 * formatting, the JSON DOM / metrics round-trip that powers resume,
 * and the BakeoffRunner end to end (grid resolution, thread-count
 * determinism, record adoption).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "arena/bakeoff.hpp"
#include "arena/registry.hpp"
#include "arena/report.hpp"
#include "arena/scoring.hpp"
#include "common/json.hpp"
#include "sim/serialize.hpp"

namespace asd
{
namespace
{

// --- registry -------------------------------------------------------

TEST(Registry, CoversEveryMemSidePrefetcherKind)
{
    const PrefetcherRegistry &reg = PrefetcherRegistry::instance();
    const auto last =
        static_cast<std::uint8_t>(McPrefetcherKind::Perceptron);
    for (std::uint8_t k = 0; k <= last; ++k) {
        const auto kind = static_cast<McPrefetcherKind>(k);
        const PrefetcherInfo *info = reg.find(toString(kind));
        ASSERT_NE(info, nullptr) << toString(kind);
        EXPECT_EQ(info->side, PrefetcherSide::MemSide);
        EXPECT_EQ(info->defaults.mc_prefetcher, kind);
        EXPECT_EQ(info->defaults.mode, PrefetchMode::MS);
        EXPECT_FALSE(info->description.empty());
    }
    // One entry per enum value plus the two variant contenders
    // (ghb-dc and asd+tuner): extending McPrefetcherKind without
    // registering the newcomer fails here.
    EXPECT_EQ(reg.names(PrefetcherSide::MemSide).size(),
              static_cast<std::size_t>(last) + 3);

    const PrefetcherInfo *ghb_dc = reg.find("ghb-dc");
    ASSERT_NE(ghb_dc, nullptr);
    EXPECT_EQ(ghb_dc->defaults.mc_prefetcher, McPrefetcherKind::Ghb);
    EXPECT_TRUE(ghb_dc->defaults.ghb_delta_correlate);

    const PrefetcherInfo *tuned = reg.find("asd+tuner");
    ASSERT_NE(tuned, nullptr);
    EXPECT_EQ(tuned->defaults.mc_prefetcher, McPrefetcherKind::Asd);
    EXPECT_TRUE(tuned->defaults.tuner.enabled);
}

TEST(Registry, CoversEveryCpuSidePrefetcher)
{
    const PrefetcherRegistry &reg = PrefetcherRegistry::instance();
    const PrefetcherInfo *power5 = reg.find("ps-power5");
    ASSERT_NE(power5, nullptr);
    EXPECT_EQ(power5->side, PrefetcherSide::CpuSide);
    EXPECT_EQ(power5->defaults.mode, PrefetchMode::PS);
    EXPECT_EQ(power5->defaults.ps_kind, PsKind::Power5);

    const PrefetcherInfo *ps_asd = reg.find("ps-asd");
    ASSERT_NE(ps_asd, nullptr);
    EXPECT_EQ(ps_asd->defaults.ps_kind, PsKind::Asd);
    EXPECT_EQ(reg.names(PrefetcherSide::CpuSide).size(), 2u);
}

TEST(Registry, LookupAndOrdering)
{
    const PrefetcherRegistry &reg = PrefetcherRegistry::instance();
    EXPECT_EQ(reg.find("no-such-prefetcher"), nullptr);
    const std::vector<std::string> names = reg.names();
    EXPECT_EQ(names.size(), reg.all().size());
    // Memory-side entries first, in registration order.
    EXPECT_EQ(names.front(), "asd");
    EXPECT_EQ(names.back(), "ps-asd");
}

// --- scoring --------------------------------------------------------

BakeoffCell
cell(std::string prefetcher, std::string workload, Cycle baseline,
     Cycle cycles, double useful_pct, std::uint64_t issued,
     std::uint64_t reads)
{
    BakeoffCell c;
    c.prefetcher = std::move(prefetcher);
    c.workload = std::move(workload);
    c.baseline_cycles = baseline;
    c.metrics.cycles = cycles;
    c.metrics.useful_prefetch_pct = useful_pct;
    c.metrics.ms_prefetches_issued = issued;
    c.metrics.mc_reads = reads;
    return c;
}

TEST(Scoring, SpeedupMilliPctExact)
{
    EXPECT_EQ(speedupMilliPct(200000, 100000), 100000); // 2x = +100%
    EXPECT_EQ(speedupMilliPct(100000, 200000), -50000);
    EXPECT_EQ(speedupMilliPct(100000, 100000), 0);
    EXPECT_EQ(speedupMilliPct(100001, 100000), 1); // milli-pct floor
    EXPECT_EQ(speedupMilliPct(0, 100), 0);
    EXPECT_EQ(speedupMilliPct(100, 0), 0);
}

TEST(Scoring, AggregatesMeansAcrossWorkloads)
{
    std::vector<BakeoffCell> cells;
    BakeoffCell a1 = cell("alpha", "w1", 200000, 100000, 80.0, 10, 100);
    a1.metrics.coverage_pct = 50.0;
    a1.metrics.delayed_regular_pct = 10.0;
    BakeoffCell a2 = cell("alpha", "w2", 150000, 100000, 60.0, 20, 100);
    a2.metrics.coverage_pct = 30.0;
    a2.metrics.delayed_regular_pct = 6.0;
    cells.push_back(a1);
    cells.push_back(cell("beta", "w1", 200000, 200000, 0.0, 0, 100));
    cells.push_back(a2);
    cells.push_back(cell("beta", "w2", 150000, 150000, 0.0, 0, 100));

    const std::vector<PrefetcherScore> scores = scoreBakeoff(cells);
    ASSERT_EQ(scores.size(), 2u);
    const PrefetcherScore &alpha = scores[0];
    EXPECT_EQ(alpha.name, "alpha");
    EXPECT_EQ(alpha.rank, 1u);
    EXPECT_EQ(alpha.jobs_ok, 2u);
    EXPECT_EQ(alpha.speedup_milli_pct, 75000); // (100% + 50%) / 2
    EXPECT_EQ(alpha.accuracy_milli_pct, 70000);
    EXPECT_EQ(alpha.coverage_milli_pct, 40000);
    EXPECT_EQ(alpha.timeliness_milli_pct, 92000); // 100% - 8% delayed
    EXPECT_EQ(alpha.traffic_overhead_milli_pct, 15000); // 30 / 200
    EXPECT_EQ(alpha.cycles_total, 200000u);
    EXPECT_EQ(scores[1].name, "beta");
    EXPECT_EQ(scores[1].rank, 2u);
    EXPECT_EQ(scores[1].speedup_milli_pct, 0);
}

TEST(Scoring, TieBreaksAreDeterministic)
{
    // All speedups equal (cycles == baseline). Input order is
    // scrambled to prove the ranking is not input order.
    std::vector<BakeoffCell> cells;
    cells.push_back(cell("dd", "w", 100000, 100000, 50.0, 20, 100));
    cells.push_back(cell("cc", "w", 100000, 100000, 50.0, 10, 100));
    cells.push_back(cell("bb", "w", 100000, 100000, 70.0, 30, 100));
    cells.push_back(cell("aa", "w", 100000, 100000, 50.0, 20, 100));

    const std::vector<PrefetcherScore> scores = scoreBakeoff(cells);
    ASSERT_EQ(scores.size(), 4u);
    EXPECT_EQ(scores[0].name, "bb"); // accuracy desc wins first
    EXPECT_EQ(scores[1].name, "cc"); // then traffic asc
    EXPECT_EQ(scores[2].name, "aa"); // then name asc
    EXPECT_EQ(scores[3].name, "dd");
    EXPECT_EQ(scores[3].rank, 4u);
}

TEST(Scoring, FailedCellsCountButDoNotSkewMeans)
{
    std::vector<BakeoffCell> cells;
    BakeoffCell bad = cell("gamma", "w1", 100000, 0, 0.0, 0, 0);
    bad.status = JobStatus::Failed;
    cells.push_back(bad);
    cells.push_back(cell("gamma", "w2", 100000, 50000, 90.0, 5, 100));

    const std::vector<PrefetcherScore> scores = scoreBakeoff(cells);
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].jobs_ok, 1u);
    EXPECT_EQ(scores[0].jobs_failed, 1u);
    // Means over the one ok cell only.
    EXPECT_EQ(scores[0].speedup_milli_pct, 100000);
    EXPECT_EQ(scores[0].accuracy_milli_pct, 90000);
}

// --- report formatting ---------------------------------------------

TEST(Report, FormatMilliPct)
{
    EXPECT_EQ(formatMilliPct(0), "0.000");
    EXPECT_EQ(formatMilliPct(7), "0.007");
    EXPECT_EQ(formatMilliPct(12345), "12.345");
    EXPECT_EQ(formatMilliPct(-500), "-0.500");
    EXPECT_EQ(formatMilliPct(100000), "100.000");
    EXPECT_EQ(formatMilliPct(-123456), "-123.456");
}

// --- JSON DOM -------------------------------------------------------

TEST(JsonDom, ParsesAndNavigates)
{
    const auto doc = jsonParse(
        R"({"a":1,"b":[true,null,"xA"],"c":-2.5,"a":99})");
    ASSERT_TRUE(doc.has_value());
    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->asU64(), 1u); // first occurrence wins
    const JsonValue *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->items().size(), 3u);
    EXPECT_EQ(b->items()[0].asBool(), true);
    EXPECT_TRUE(b->items()[1].isNull());
    ASSERT_NE(b->items()[2].asString(), nullptr);
    EXPECT_EQ(*b->items()[2].asString(), "xA");
    const JsonValue *c = doc->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->asDouble(), -2.5);
    EXPECT_FALSE(c->asU64().has_value()); // not a non-negative int
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonDom, RejectsMalformedInput)
{
    EXPECT_FALSE(jsonParse("{").has_value());
    EXPECT_FALSE(jsonParse("[1,]").has_value());
    EXPECT_FALSE(jsonParse("{} trailing").has_value());
    EXPECT_FALSE(jsonParse("").has_value());
}

TEST(JsonDom, MetricsRoundTripIsExact)
{
    RunMetrics m;
    m.cycles = 123456;
    m.accesses = 789;
    m.power.background_pj = 1.25;
    m.power.activate_pj = 2.5;
    m.power.read_pj = 3.75;
    m.power.write_pj = 4.5;
    m.power.refresh_pj = 5.125;
    m.dram_watts = 1.375;
    m.dram_energy_mj = 0.0625;
    m.useful_prefetch_pct = 33.25;
    m.coverage_pct = 12.5;
    m.delayed_regular_pct = 1.75;
    m.mc_reads = 1000;
    m.mc_writes = 200;
    m.ms_prefetches_issued = 333;
    m.buffer_hits = 111;
    m.lpq_drops = 7;
    m.vm_enabled = true;
    m.tlb_hits = 900;
    m.tlb_misses = 100;
    m.tlb_evictions = 50;
    m.page_walk_cycles = 4000;
    m.pages_mapped = 64;

    const auto doc = jsonParse(toJson(m));
    ASSERT_TRUE(doc.has_value());
    const auto back = metricsFromJson(*doc);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
}

TEST(JsonDom, MetricsRejectPartialRecords)
{
    const auto doc = jsonParse(R"({"cycles":1})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(metricsFromJson(*doc).has_value());
    EXPECT_FALSE(
        metricsFromJson(JsonValue::makeNull()).has_value());
}

// --- BakeoffRunner end to end --------------------------------------

BakeoffOptions
tinyBakeoff()
{
    BakeoffOptions options;
    options.suites = {};
    options.benchmarks = {"bwaves"};
    options.prefetchers = {"stride", "nextline"};
    options.accesses = 1500;
    options.warmup_cycles = 500;
    options.threads = 1;
    return options;
}

TEST(Bakeoff, ResolvesGridBeforeRunning)
{
    BakeoffRunner runner(tinyBakeoff());
    ASSERT_EQ(runner.workloads().size(), 1u);
    EXPECT_EQ(runner.workloads()[0].label, "extra/bwaves");
    EXPECT_FALSE(runner.workloads()[0].vm);
    ASSERT_EQ(runner.contenders().size(), 2u);
    EXPECT_EQ(runner.contenders()[0]->name, "stride");
    EXPECT_EQ(runner.contenders()[1]->name, "nextline");
}

TEST(Bakeoff, RunsGridAndReportsAreValid)
{
    BakeoffResult result = BakeoffRunner(tinyBakeoff()).run();
    EXPECT_EQ(result.total_jobs, 3u); // NP baseline + 2 contenders
    ASSERT_EQ(result.cells.size(), 2u);
    for (const BakeoffCell &c : result.cells) {
        EXPECT_EQ(c.status, JobStatus::Ok);
        EXPECT_GT(c.metrics.cycles, 0u);
        EXPECT_GT(c.baseline_cycles, 0u);
        EXPECT_EQ(c.workload, "extra/bwaves");
    }
    ASSERT_EQ(result.scores.size(), 2u);
    EXPECT_EQ(result.scores[0].rank, 1u);
    EXPECT_EQ(result.scores[1].rank, 2u);

    const std::string json = bakeoffJson(result);
    EXPECT_TRUE(jsonParseCheck(json));
    EXPECT_NE(json.find("asdbakeoff/v1"), std::string::npos);
    const std::string md = bakeoffMarkdown(result);
    EXPECT_NE(md.find("stride"), std::string::npos);
    EXPECT_NE(md.find("nextline"), std::string::npos);
}

TEST(Bakeoff, ReportIsIdenticalAcrossThreadCounts)
{
    BakeoffOptions serial = tinyBakeoff();
    BakeoffOptions parallel = tinyBakeoff();
    parallel.threads = 4;
    const std::string a = bakeoffJson(BakeoffRunner(serial).run());
    const std::string b = bakeoffJson(BakeoffRunner(parallel).run());
    EXPECT_EQ(a, b);
}

TEST(Bakeoff, ResumeAdoptsPersistedRecords)
{
    const std::string dir =
        testing::TempDir() + "asd_test_arena_resume";
    std::filesystem::remove_all(dir);

    BakeoffOptions options = tinyBakeoff();
    options.out_dir = dir;
    const BakeoffResult fresh = BakeoffRunner(options).run();
    EXPECT_EQ(fresh.adopted, 0u);

    options.resume = true;
    const BakeoffResult resumed = BakeoffRunner(options).run();
    EXPECT_EQ(resumed.adopted, resumed.total_jobs);
    ASSERT_EQ(resumed.cells.size(), fresh.cells.size());
    for (std::size_t i = 0; i < fresh.cells.size(); ++i) {
        EXPECT_EQ(resumed.cells[i].status, JobStatus::Ok);
        // Adoption recovers the exact metrics, not approximations.
        EXPECT_EQ(resumed.cells[i].metrics, fresh.cells[i].metrics);
        EXPECT_EQ(resumed.cells[i].baseline_cycles,
                  fresh.cells[i].baseline_cycles);
    }
    ASSERT_EQ(resumed.scores.size(), fresh.scores.size());
    for (std::size_t i = 0; i < fresh.scores.size(); ++i) {
        EXPECT_EQ(resumed.scores[i].name, fresh.scores[i].name);
        EXPECT_EQ(resumed.scores[i].speedup_milli_pct,
                  fresh.scores[i].speedup_milli_pct);
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace asd
