/**
 * @file
 * Checkpoint/restore subsystem tests: primitive round trips through
 * SnapshotWriter/SnapshotReader, rejection of damaged or mismatched
 * images (magic, version, CRC, truncation, config hash), whole-system
 * save -> load -> save byte identity, restore-then-run equality with
 * an uninterrupted run (VM off and on, telemetry on, splits before
 * and after the warm-up boundary), and the component-presence rules
 * that warm-start forking relies on.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/synthetic.hpp"

namespace asd
{
namespace
{

constexpr std::uint64_t kHash = 0x1234abcd5678ef00ULL;

SyntheticConfig
testTrace(std::uint64_t accesses = 20000)
{
    SyntheticConfig config;
    config.seed = 11;
    config.total_accesses = accesses;
    config.working_set_bytes = 64ULL << 20;
    config.mean_gap = 5.0;
    config.mean_touches_per_line = 6.0;
    config.write_frac = 0.25;
    config.reuse_frac = 0.15;
    config.dependent_frac = 0.1;
    config.concurrent_streams = 4;
    config.phases = {
        PhaseProfile{{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, 0}};
    return config;
}

SystemConfig
testConfig(PrefetchMode mode)
{
    SystemConfig config;
    config.mode = mode;
    return config;
}

std::vector<std::uint8_t>
snapshotOf(const System &system)
{
    SnapshotWriter writer;
    system.saveSnapshot(writer);
    return writer.finish(kHash);
}

/** Run to @p split, snapshot, restore into a fresh machine. */
std::vector<std::uint8_t>
splitSnapshot(const SystemConfig &config, Cycle split)
{
    SyntheticTraceGenerator trace(testTrace());
    System system(config, {&trace});
    system.runUntil(split);
    return snapshotOf(system);
}

// --- primitives ----------------------------------------------------

TEST(SnapshotFormat, PrimitivesRoundTrip)
{
    SnapshotWriter writer;
    writer.beginSection("prims");
    writer.u8(0xA5);
    writer.u32(0xDEADBEEFu);
    writer.u64(0x0123456789abcdefULL);
    writer.i64(-42);
    writer.f64(3.5);
    writer.b(true);
    writer.b(false);
    writer.str("hello snapshot");
    writer.vecU64({1, 2, 3, 0xffffffffffffffffULL});
    writer.endSection();
    const std::vector<std::uint8_t> bytes = writer.finish(kHash);

    SnapshotReader reader(bytes);
    reader.requireConfigHash(kHash);
    EXPECT_TRUE(reader.hasSection("prims"));
    EXPECT_FALSE(reader.hasSection("absent"));
    reader.openSection("prims");
    EXPECT_EQ(reader.u8(), 0xA5);
    EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(reader.i64(), -42);
    EXPECT_EQ(reader.f64(), 3.5);
    EXPECT_TRUE(reader.b());
    EXPECT_FALSE(reader.b());
    EXPECT_EQ(reader.str(), "hello snapshot");
    EXPECT_EQ(reader.vecU64(),
              (std::vector<std::uint64_t>{
                  1, 2, 3, 0xffffffffffffffffULL}));
    reader.endSection();
}

TEST(SnapshotFormat, RejectsDamage)
{
    SnapshotWriter writer;
    writer.beginSection("s");
    writer.u64(7);
    writer.endSection();
    const std::vector<std::uint8_t> good = writer.finish(kHash);

    // Bad magic.
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    EXPECT_THROW(SnapshotReader{bad}, SnapshotError);

    // Unsupported format version (u32 after the 8-byte magic).
    bad = good;
    bad[8] ^= 0xff;
    EXPECT_THROW(SnapshotReader{bad}, SnapshotError);

    // Payload corruption -> CRC mismatch.
    bad = good;
    bad[bad.size() - 1] ^= 0xff;
    EXPECT_THROW(SnapshotReader{bad}, SnapshotError);

    // Truncation.
    bad = good;
    bad.resize(bad.size() - 4);
    EXPECT_THROW(SnapshotReader{bad}, SnapshotError);

    // Wrong config hash.
    SnapshotReader reader(good);
    EXPECT_THROW(reader.requireConfigHash(kHash + 1), SnapshotError);

    // Missing section.
    SnapshotReader reader2(good);
    EXPECT_THROW(reader2.openSection("absent"), SnapshotError);
}

// --- whole-system round trips --------------------------------------

class SnapshotSystem
    : public ::testing::TestWithParam<PrefetchMode>
{
};

/**
 * save -> load -> save must reproduce the image byte for byte; any
 * field a component forgets to restore (or restores differently)
 * shows up here without needing a per-component test.
 */
TEST_P(SnapshotSystem, SaveLoadSaveByteIdentical)
{
    const SystemConfig config = testConfig(GetParam());
    const std::vector<std::uint8_t> first =
        splitSnapshot(config, 40000);

    SyntheticTraceGenerator trace(testTrace());
    System system(config, {&trace});
    SnapshotReader reader(first);
    reader.requireConfigHash(kHash);
    system.loadSnapshot(reader);
    EXPECT_EQ(snapshotOf(system), first);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SnapshotSystem,
                         ::testing::Values(PrefetchMode::NP,
                                           PrefetchMode::PS,
                                           PrefetchMode::MS,
                                           PrefetchMode::PMS));

TEST(SnapshotSystem, SaveLoadSaveByteIdenticalWithVmAndTelemetry)
{
    SystemConfig config = testConfig(PrefetchMode::PMS);
    config.vm.enabled = true;
    config.vm.policy = FrameAllocPolicy::RandomShuffle;
    config.telemetry.enabled = true;
    config.warmup_cycles = 10000;
    const std::vector<std::uint8_t> first =
        splitSnapshot(config, 40000);

    SyntheticTraceGenerator trace(testTrace());
    System system(config, {&trace});
    SnapshotReader reader(first);
    system.loadSnapshot(reader);
    EXPECT_EQ(snapshotOf(system), first);
}

/** Metrics of an uninterrupted run of @p config over testTrace(). */
RunMetrics
straightRun(const SystemConfig &config,
            std::vector<EpochRecord> *epochs = nullptr)
{
    SyntheticTraceGenerator trace(testTrace());
    System system(config, {&trace});
    const RunMetrics metrics = system.run();
    if (epochs && system.telemetry())
        *epochs = system.telemetry()->records();
    return metrics;
}

/** The same run split at @p split via snapshot save + restore. */
RunMetrics
splitRun(const SystemConfig &config, Cycle split,
         std::vector<EpochRecord> *epochs = nullptr)
{
    const std::vector<std::uint8_t> bytes =
        splitSnapshot(config, split);

    SyntheticTraceGenerator trace(testTrace());
    System system(config, {&trace});
    SnapshotReader reader(bytes);
    reader.requireConfigHash(kHash);
    system.loadSnapshot(reader);
    system.runUntil(kNoCycle);
    if (epochs && system.telemetry())
        *epochs = system.telemetry()->records();
    return system.collectMetrics();
}

void
expectEpochsEqual(const std::vector<EpochRecord> &a,
                  const std::vector<EpochRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].epoch, b[i].epoch);
        EXPECT_EQ(a[i].start_cycle, b[i].start_cycle);
        EXPECT_EQ(a[i].end_cycle, b[i].end_cycle);
        EXPECT_EQ(a[i].reads, b[i].reads);
        EXPECT_EQ(a[i].suggested, b[i].suggested);
        EXPECT_EQ(a[i].suppressed, b[i].suppressed);
        EXPECT_EQ(a[i].prefetches_issued, b[i].prefetches_issued);
        EXPECT_EQ(a[i].buffer_hits, b[i].buffer_hits);
        EXPECT_EQ(a[i].buffer_consumed, b[i].buffer_consumed);
        EXPECT_EQ(a[i].lpq_dropped, b[i].lpq_dropped);
        EXPECT_EQ(a[i].policy, b[i].policy);
        EXPECT_EQ(a[i].conflicts, b[i].conflicts);
        EXPECT_EQ(a[i].regulars_delayed, b[i].regulars_delayed);
        EXPECT_EQ(a[i].dram_row_hits, b[i].dram_row_hits);
        EXPECT_EQ(a[i].dram_row_misses, b[i].dram_row_misses);
        EXPECT_EQ(a[i].read_q_hwm, b[i].read_q_hwm);
        EXPECT_EQ(a[i].write_q_hwm, b[i].write_q_hwm);
        EXPECT_EQ(a[i].caq_hwm, b[i].caq_hwm);
        EXPECT_EQ(a[i].lpq_hwm, b[i].lpq_hwm);
    }
}

TEST(SnapshotRestore, RestoreThenRunMatchesStraightRun)
{
    const SystemConfig config = testConfig(PrefetchMode::PMS);
    EXPECT_EQ(splitRun(config, 30000), straightRun(config));
}

TEST(SnapshotRestore, RestoreThenRunMatchesWithVm)
{
    SystemConfig config = testConfig(PrefetchMode::PMS);
    config.vm.enabled = true;
    config.vm.policy = FrameAllocPolicy::RandomShuffle;
    EXPECT_EQ(splitRun(config, 30000), straightRun(config));
}

TEST(SnapshotRestore, RestoreThenRunMatchesWithTelemetry)
{
    SystemConfig config = testConfig(PrefetchMode::MS);
    config.telemetry.enabled = true;
    std::vector<EpochRecord> straight_epochs;
    std::vector<EpochRecord> split_epochs;
    const RunMetrics straight = straightRun(config, &straight_epochs);
    const RunMetrics split = splitRun(config, 30000, &split_epochs);
    EXPECT_EQ(split, straight);
    expectEpochsEqual(split_epochs, straight_epochs);
}

/**
 * A snapshot taken before the warm-up boundary resumes disarmed and
 * arms at the same cycle as the uninterrupted run.
 */
TEST(SnapshotRestore, SplitBeforeWarmupBoundaryMatches)
{
    SystemConfig config = testConfig(PrefetchMode::PMS);
    config.warmup_cycles = 20000;
    EXPECT_EQ(splitRun(config, 5000), straightRun(config));
    EXPECT_EQ(splitRun(config, 20000), straightRun(config));
    EXPECT_EQ(splitRun(config, 35000), straightRun(config));
}

// --- component-presence rules --------------------------------------

TEST(SnapshotPresence, PsAndVmMustMatch)
{
    // PS snapshot into an NP machine: processor-side prefetchers
    // shaped the saved state; silently dropping them would diverge.
    const std::vector<std::uint8_t> ps_snap =
        splitSnapshot(testConfig(PrefetchMode::PS), 20000);
    SyntheticTraceGenerator trace(testTrace());
    System np_system(testConfig(PrefetchMode::NP), {&trace});
    SnapshotReader reader(ps_snap);
    EXPECT_THROW(np_system.loadSnapshot(reader), SnapshotError);

    SystemConfig vm_config = testConfig(PrefetchMode::NP);
    vm_config.vm.enabled = true;
    const std::vector<std::uint8_t> vm_snap =
        splitSnapshot(vm_config, 20000);
    SyntheticTraceGenerator trace2(testTrace());
    System plain(testConfig(PrefetchMode::NP), {&trace2});
    SnapshotReader reader2(vm_snap);
    EXPECT_THROW(plain.loadSnapshot(reader2), SnapshotError);
}

TEST(SnapshotPresence, MemorySideForkAllowedOneWay)
{
    // No-MS snapshot into an MS machine is the warm-start fork: the
    // freshly built prefetcher state stands in for the (identical)
    // untouched state of a cold disarmed machine.
    SystemConfig np_config = testConfig(PrefetchMode::NP);
    np_config.warmup_cycles = 20000;
    const std::vector<std::uint8_t> np_snap =
        splitSnapshot(np_config, 20000);
    SystemConfig ms_config = testConfig(PrefetchMode::MS);
    ms_config.warmup_cycles = 20000;
    SyntheticTraceGenerator trace(testTrace());
    System ms_system(ms_config, {&trace});
    SnapshotReader reader(np_snap);
    reader.requireConfigHash(kHash);
    ms_system.loadSnapshot(reader);
    ms_system.runUntil(kNoCycle);
    const RunMetrics forked = ms_system.collectMetrics();
    EXPECT_GT(forked.ms_prefetches_issued, 0u);
    // The forked run must equal a cold start of the full MS machine.
    EXPECT_EQ(forked, straightRun(ms_config));

    // The reverse — dropping recorded MS state — is rejected.
    const std::vector<std::uint8_t> ms_snap =
        splitSnapshot(testConfig(PrefetchMode::MS), 20000);
    SyntheticTraceGenerator trace2(testTrace());
    System np_system(testConfig(PrefetchMode::NP), {&trace2});
    SnapshotReader reader2(ms_snap);
    EXPECT_THROW(np_system.loadSnapshot(reader2), SnapshotError);
}

} // namespace
} // namespace asd
