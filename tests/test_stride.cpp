/**
 * @file
 * Tests for the stride prefetcher and strided synthetic streams: the
 * dimension ASD's unit-stride Stream Filter cannot cover.
 */

#include <gtest/gtest.h>

#include "core/asd_prefetcher.hpp"
#include "prefetch/stride_prefetcher.hpp"
#include "trace/synthetic.hpp"

namespace asd
{
namespace
{

AsdConfig
shared()
{
    AsdConfig config;
    config.epoch_reads = 1000;
    return config;
}

TEST(Stride, LearnsUnitStride)
{
    StrideMcPrefetcher pf(shared(), StrideConfig{});
    EXPECT_TRUE(pf.observeRead(100, 0, 0).empty()); // allocate
    EXPECT_TRUE(pf.observeRead(101, 0, 0).empty()); // learn stride 1
    const auto out = pf.observeRead(102, 0, 0);     // confirm
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 103u);
}

TEST(Stride, LearnsNonUnitStride)
{
    StrideMcPrefetcher pf(shared(), StrideConfig{});
    pf.observeRead(100, 0, 0);
    pf.observeRead(103, 0, 0); // stride 3
    const auto out = pf.observeRead(106, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 109u);
}

TEST(Stride, LearnsNegativeStride)
{
    StrideMcPrefetcher pf(shared(), StrideConfig{});
    pf.observeRead(100, 0, 0);
    pf.observeRead(98, 0, 0);
    const auto out = pf.observeRead(96, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 94u);
}

TEST(Stride, IgnoresDeltasBeyondMaxStride)
{
    StrideConfig config;
    config.max_stride = 4;
    StrideMcPrefetcher pf(shared(), config);
    pf.observeRead(100, 0, 0);
    pf.observeRead(200, 0, 0); // delta 100: a new stream, not a stride
    EXPECT_EQ(pf.liveSlots(), 2u);
}

TEST(Stride, BrokenStrideRelearns)
{
    // A break in the pattern re-learns the new stride and needs a
    // fresh confirmation before prefetching resumes.
    StrideMcPrefetcher fresh(shared(), StrideConfig{});
    fresh.observeRead(100, 0, 0);
    fresh.observeRead(102, 0, 0);
    fresh.observeRead(105, 0, 0); // breaks the 2-stride: re-learn 3
    const auto out = fresh.observeRead(108, 0, 0); // confirm 3
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 111u);
}

TEST(Stride, DegreeEmitsMultipleTargets)
{
    StrideConfig config;
    config.degree = 3;
    StrideMcPrefetcher pf(shared(), config);
    pf.observeRead(100, 0, 0);
    pf.observeRead(102, 0, 0);
    const auto out = pf.observeRead(104, 0, 0);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 106u);
    EXPECT_EQ(out[1], 108u);
    EXPECT_EQ(out[2], 110u);
}

TEST(Stride, StaleSlotsRecycle)
{
    StrideConfig config;
    config.slots = 2;
    config.lifetime_reads = 4;
    StrideMcPrefetcher pf(shared(), config);
    pf.observeRead(1000, 0, 0);
    pf.observeRead(2000, 0, 0);
    EXPECT_EQ(pf.liveSlots(), 2u);
    // Push enough unrelated reads that the early slots expire and
    // recycle (slots stays at capacity, but new lines get tracked).
    for (LineAddr line = 0; line < 8; ++line)
        pf.observeRead(100000 + line * 5000, 0, 0);
    // 1000's slot is long gone: a read at 1001 cannot extend it.
    pf.observeRead(1001, 0, 0);
    EXPECT_TRUE(pf.observeRead(1002, 0, 0).empty());
}

/** Generator property: strided streams advance by the drawn stride. */
TEST(StrideTrace, GeneratorEmitsStridedRuns)
{
    SyntheticConfig config;
    config.seed = 5;
    config.total_accesses = 20000;
    config.working_set_bytes = 64ULL << 20;
    config.reuse_frac = 0.0;
    config.write_frac = 0.0;
    config.negative_dir_frac = 0.0;
    config.concurrent_streams = 1;
    config.phases = {PhaseProfile{{0, 0, 0, 0, 0, 0, 0, 1.0}, 0}};
    config.stride_weights = {0.0, 0.0, 1.0}; // stride 3 only
    SyntheticTraceGenerator gen(config);

    MemAccess access;
    LineAddr prev = ~LineAddr{0};
    std::uint64_t stride3 = 0;
    std::uint64_t other = 0;
    while (gen.next(access)) {
        const LineAddr line = access.addr / config.line_bytes;
        if (prev != ~LineAddr{0} && line != prev) {
            if (line == prev + 3)
                ++stride3;
            else
                ++other; // stream boundaries
        }
        prev = line;
    }
    EXPECT_GT(stride3, other * 5);
}

/**
 * The headline contrast: on a stride-2 workload the stride prefetcher
 * predicts and ASD (unit-stride streams only) stays silent.
 */
TEST(Stride, CoversWhatAsdCannot)
{
    AsdConfig asd_config = shared();
    asd_config.epoch_reads = 20;
    AsdPrefetcher asd(asd_config);
    StrideMcPrefetcher stride(shared(), StrideConfig{});

    std::uint64_t asd_suggestions = 0;
    std::uint64_t stride_suggestions = 0;
    for (std::uint32_t s = 0; s < 10; ++s) {
        const LineAddr base = 1'000'000 + s * 10'000;
        for (LineAddr i = 0; i < 6; ++i) {
            asd_suggestions +=
                asd.observeRead(base + i * 2, 0, s * 100).size();
            stride_suggestions +=
                stride.observeRead(base + i * 2, 0, s * 100).size();
        }
    }
    EXPECT_EQ(asd_suggestions, 0u);
    EXPECT_GT(stride_suggestions, 25u);
}

} // namespace
} // namespace asd
