/**
 * @file
 * Tests for asdlint v2's cross-TU machinery: the pass-1 declaration
 * index (nested classes, out-of-line method binding, raw-string and
 * macro-heavy bodies, the self-index over src/), the pass-2 semantic
 * rules (snapshot/serialize/job-id coverage, wall-clock bans,
 * flow-aware unordered iteration), reasoned suppressions, the
 * baseline diff/expect gates, and the incremental cache.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "lint/decl_index.hpp"
#include "lint/lexer.hpp"
#include "lint/linter.hpp"
#include "lint/semantic_rules.hpp"

using namespace asd::lint;

namespace
{

/** Lex @p source into an IndexedFile for buildDeclIndex(). */
IndexedFile
indexed(const std::string &path, std::string_view source)
{
    LexResult lexed = lex(source);
    IndexedFile file;
    file.path = path;
    file.tokens = std::move(lexed.tokens);
    file.suppressions = std::move(lexed.suppressions);
    return file;
}

/** Build a DeclIndex over (path, source) pairs. */
DeclIndex
indexOf(std::vector<std::pair<std::string, std::string>> sources)
{
    std::vector<IndexedFile> files;
    for (auto &[path, source] : sources)
        files.push_back(indexed(path, source));
    return buildDeclIndex(std::move(files));
}

/** Lint (path, source) pairs as one tree with the full rule pack. */
std::vector<Diagnostic>
runAll(std::vector<std::pair<std::string, std::string>> sources)
{
    std::vector<SourceInput> inputs;
    for (auto &[path, source] : sources)
        inputs.push_back({path, source});
    return lintSources(inputs);
}

/** Count diagnostics attributed to @p rule. */
std::size_t
countRule(const std::vector<Diagnostic> &diags,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags)
        n += d.rule == rule ? 1u : 0u;
    return n;
}

/** First diagnostic for @p rule, or nullptr. */
const Diagnostic *
firstOf(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    for (const Diagnostic &d : diags)
        if (d.rule == rule)
            return &d;
    return nullptr;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

// --- declaration index: members and flags --------------------------

TEST(DeclIndex, MemberInventoryAndFlags)
{
    const auto index = indexOf(
        {{"src/core/widget.hpp",
          "class Widget {\n"
          "  public:\n"
          "    int api();\n"
          "  private:\n"
          "    unsigned long ticks_ = 0;\n"
          "    static int live_;\n"
          "    const int limit_ = 4;\n"
          "    Sink *sink_ = nullptr;\n"
          "    Sink &owner_;\n"
          "    WidgetConfig config_;\n"
          "    std::vector<int> history_;\n"
          "};\n"}});
    const ClassDecl *cls = index.findClass("Widget");
    ASSERT_NE(cls, nullptr);
    ASSERT_EQ(cls->members.size(), 7u);

    const MemberDecl &ticks = cls->members[0];
    EXPECT_EQ(ticks.name, "ticks_");
    EXPECT_EQ(ticks.line, 5u);
    EXPECT_FALSE(ticks.is_static);

    EXPECT_TRUE(cls->members[1].is_static);
    EXPECT_TRUE(cls->members[2].is_const);
    EXPECT_TRUE(cls->members[3].is_pointer);
    EXPECT_TRUE(cls->members[4].is_reference);
    EXPECT_TRUE(cls->members[5].typeMentions("Config"));
    EXPECT_TRUE(cls->members[6].typeMentions("vector"));
    EXPECT_FALSE(cls->members[6].typeMentions("unordered"));
}

TEST(DeclIndex, NestedClassesInsideNamespaces)
{
    const auto index = indexOf(
        {{"src/core/nested.hpp",
          "namespace asd {\n"
          "namespace detail {\n"
          "struct Outer {\n"
          "    struct Inner {\n"
          "        int x_ = 0;\n"
          "    };\n"
          "    Inner slot_;\n"
          "    int y_ = 0;\n"
          "};\n"
          "} // namespace detail\n"
          "} // namespace asd\n"}});

    const ClassDecl *outer = index.findClass("Outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->qualified, "Outer");
    ASSERT_EQ(outer->members.size(), 2u);
    EXPECT_EQ(outer->members[0].name, "slot_");
    EXPECT_EQ(outer->members[1].name, "y_");

    const ClassDecl *inner = index.findClass("Outer::Inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->qualified, "Outer::Inner");
    ASSERT_EQ(inner->members.size(), 1u);
    EXPECT_EQ(inner->members[0].name, "x_");
}

TEST(DeclIndex, BindsOutOfLineMethodBodiesAcrossFiles)
{
    // The .cpp is indexed *before* the header on purpose: binding
    // happens in a second sub-pass.
    const auto index = indexOf(
        {{"src/core/counter.cpp",
          "#include \"core/counter.hpp\"\n"
          "namespace asd {\n"
          "void Counter::tick() { ticks_ += step_; }\n"
          "int Outer::Inner::get() { return x_; }\n"
          "} // namespace asd\n"},
         {"src/core/counter.hpp",
          "namespace asd {\n"
          "class Counter {\n"
          "  public:\n"
          "    void tick();\n"
          "  private:\n"
          "    unsigned long ticks_ = 0;\n"
          "    unsigned long step_ = 1;\n"
          "};\n"
          "struct Outer {\n"
          "    struct Inner {\n"
          "        int get();\n"
          "        int x_ = 0;\n"
          "    };\n"
          "};\n"
          "} // namespace asd\n"}});

    const ClassDecl *counter = index.findClass("Counter");
    ASSERT_NE(counter, nullptr);
    const MethodDecl *tick = counter->findMethod("tick");
    ASSERT_NE(tick, nullptr);
    EXPECT_TRUE(tick->has_body);
    EXPECT_EQ(tick->file, "src/core/counter.cpp");
    const auto idents = identifiersIn(tick->body);
    EXPECT_TRUE(idents.count("ticks_"));
    EXPECT_TRUE(idents.count("step_"));

    const ClassDecl *inner = index.findClass("Outer::Inner");
    ASSERT_NE(inner, nullptr);
    const MethodDecl *get = inner->findMethod("get");
    ASSERT_NE(get, nullptr);
    EXPECT_TRUE(get->has_body);
}

TEST(DeclIndex, SurvivesRawStringsAndMacros)
{
    const auto index = indexOf(
        {{"src/core/gnarly.hpp",
          "#define WIDGET_API(x) int x()\n"
          "const char *kTemplate = R\"({ \"a\": } ; class Fake {)\";\n"
          "class Gnarly {\n"
          "  public:\n"
          "    WIDGET_API(api);\n"
          "    const char *text() { return R\"(} } })\"; }\n"
          "  private:\n"
          "    int real_ = 0;\n"
          "};\n"
          "class After {\n"
          "    int seen_ = 0;\n"
          "};\n"}});

    // The raw strings' braces must not derail scope tracking: both
    // classes are found and Fake (inside a string) is not.
    EXPECT_EQ(index.findClass("Fake"), nullptr);
    const ClassDecl *gnarly = index.findClass("Gnarly");
    ASSERT_NE(gnarly, nullptr);
    ASSERT_EQ(gnarly->members.size(), 1u);
    EXPECT_EQ(gnarly->members[0].name, "real_");
    const ClassDecl *after = index.findClass("After");
    ASSERT_NE(after, nullptr);
    ASSERT_EQ(after->members.size(), 1u);
    EXPECT_EQ(after->members[0].name, "seen_");
}

TEST(DeclIndex, DerivedFromIsTransitiveAndTemplateAware)
{
    const auto index = indexOf(
        {{"src/core/hier.hpp",
          "class Snapshottable {};\n"
          "class Base : public Snapshottable {};\n"
          "class Mid : public Mixin<int>, public Base {};\n"
          "class Leaf final : private Mid {};\n"
          "class Unrelated {};\n"}});
    std::set<std::string> names;
    for (const ClassDecl *cls : index.derivedFrom("Snapshottable"))
        names.insert(cls->name);
    EXPECT_TRUE(names.count("Base"));
    EXPECT_TRUE(names.count("Mid"));
    EXPECT_TRUE(names.count("Leaf"));
    EXPECT_FALSE(names.count("Unrelated"));
    EXPECT_FALSE(names.count("Snapshottable"));
}

TEST(DeclIndex, ReferencedFromFollowsSameClassHelpers)
{
    const auto index = indexOf(
        {{"src/core/helper.hpp",
          "class Helped {\n"
          "  public:\n"
          "    void saveState(W &w) const { saveCore(w); }\n"
          "  private:\n"
          "    void saveCore(W &w) const { w.u64(deep_); }\n"
          "    unsigned long deep_ = 0;\n"
          "};\n"}});
    const ClassDecl *cls = index.findClass("Helped");
    ASSERT_NE(cls, nullptr);
    const auto refs = cls->referencedFrom("saveState");
    EXPECT_TRUE(refs.count("deep_"));
}

TEST(DeclIndex, FindFunctionsSeesOverloads)
{
    const auto index = indexOf(
        {{"src/sim/ser.hpp",
          "void writeJson(J &j, const RunOptions &o) { j.f(o.a); }\n"
          "void writeJson(J &j, const RunMetrics &m) { j.f(m.b); }\n"}});
    const auto fns = index.findFunctions("writeJson");
    ASSERT_EQ(fns.size(), 2u);
    EXPECT_TRUE(fns[0]->paramsMention("RunOptions"));
    EXPECT_TRUE(fns[1]->paramsMention("RunMetrics"));
    EXPECT_FALSE(fns[0]->paramsMention("RunMetrics"));
}

// --- declaration index: the tree indexes itself --------------------

TEST(DeclIndexSelf, FindsEveryKnownSnapshottable)
{
    const std::filesystem::path root(ASD_SOURCE_DIR);
    std::vector<IndexedFile> files;
    for (const std::string &fs_path :
         collectSources((root / "src").string())) {
        const std::string rel =
            std::filesystem::relative(fs_path, root).generic_string();
        files.push_back(indexed(rel, slurp(fs_path)));
    }
    ASSERT_GT(files.size(), 50u);
    const DeclIndex index = buildDeclIndex(std::move(files));

    std::set<std::string> found;
    for (const ClassDecl *cls : index.derivedFrom("Snapshottable"))
        found.insert(cls->name);

    // Hand-maintained list of direct Snapshottable subclasses in the
    // tree. If you add one and this test fails, extend the list — it
    // exists so pass 1 can never silently lose a whole class.
    for (const char *expected :
         {"TraceSource", "MshrFile", "CacheHierarchy", "SetAssocCache",
          "MemoryController", "Mmu", "FrameAllocator", "PageTable",
          "Tlb", "Dram", "TraceCpu", "PrefetchBuffer", "StreamFilter",
          "LikelihoodTable", "AdaptiveScheduler", "PhaseDetector"}) {
        EXPECT_TRUE(found.count(expected))
            << expected << " not discovered by the declaration index";
    }

    // Indirect subclasses arrive through the TraceSource base.
    EXPECT_TRUE(found.count("VectorTraceSource"));
    EXPECT_TRUE(found.count("FileTraceSource"));
}

// --- semantic rule: snapshot-field-coverage ------------------------

namespace
{

const char *kLeakySource =
    "class Leaky : public Snapshottable {\n"
    "  public:\n"
    "    void saveState(W &w) const override {\n"
    "        w.u64(hits_);\n"
    "        w.u64(stale_);\n"
    "    }\n"
    "    void loadState(R &r) override {\n"
    "        hits_ = r.u64();\n"
    "        misses_ = r.u64();\n"
    "    }\n"
    "  private:\n"
    "    unsigned long hits_ = 0;\n"
    "    unsigned long misses_ = 0;\n"
    "    unsigned long stale_ = 0;\n"
    "    unsigned long window_ = 0;\n"
    "};\n";

} // namespace

TEST(SnapshotCoverage, FlagsEveryAsymmetry)
{
    const auto diags = runAll({{"src/core/leaky.hpp", kLeakySource}});
    EXPECT_EQ(countRule(diags, "snapshot-field-coverage"), 3u);
    const Diagnostic *first =
        firstOf(diags, "snapshot-field-coverage");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->symbol, "Leaky::misses_");
    EXPECT_NE(first->message.find("never saved"), std::string::npos);
}

TEST(SnapshotCoverage, CreditsTransitiveHelpersAndExemptions)
{
    const auto diags = runAll(
        {{"src/core/good.hpp",
          "class Good : public Snapshottable {\n"
          "  public:\n"
          "    void saveState(W &w) const override { saveCore(w); }\n"
          "    void loadState(R &r) override { core_ = r.u64(); }\n"
          "  private:\n"
          "    void saveCore(W &w) const { w.u64(core_); }\n"
          "    unsigned long core_ = 0;\n"
          "    static int live_;\n"
          "    const int cap_ = 2;\n"
          "    Sink *sink_ = nullptr;\n"
          "    Sink &owner_;\n"
          "    GoodConfig config_;\n"
          "    std::function<void()> hook_;\n"
          "};\n"}});
    EXPECT_EQ(countRule(diags, "snapshot-field-coverage"), 0u);
}

TEST(SnapshotCoverage, EmptyBodyPairIsAnOptOut)
{
    const auto diags = runAll(
        {{"src/core/tap.hpp",
          "class Tap : public Snapshottable {\n"
          "  public:\n"
          "    void saveState(W &) const override {}\n"
          "    void loadState(R &) override {}\n"
          "  private:\n"
          "    unsigned long reads_ = 0;\n"
          "};\n"}});
    EXPECT_EQ(countRule(diags, "snapshot-field-coverage"), 0u);
}

TEST(SnapshotCoverage, SeesOutOfLineDefinitionsCrossFile)
{
    // Declaration in the header, bodies in the .cpp: the cross-TU
    // index must still credit covered members and flag the leak.
    const auto diags = runAll(
        {{"src/core/split.hpp",
          "class Split : public Snapshottable {\n"
          "  public:\n"
          "    void saveState(W &w) const override;\n"
          "    void loadState(R &r) override;\n"
          "  private:\n"
          "    unsigned long kept_ = 0;\n"
          "    unsigned long lost_ = 0;\n"
          "};\n"},
         {"src/core/split.cpp",
          "#include \"core/split.hpp\"\n"
          "void Split::saveState(W &w) const { w.u64(kept_); }\n"
          "void Split::loadState(R &r) { kept_ = r.u64(); }\n"}});
    EXPECT_EQ(countRule(diags, "snapshot-field-coverage"), 1u);
    const Diagnostic *d = firstOf(diags, "snapshot-field-coverage");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->symbol, "Split::lost_");
}

TEST(SnapshotCoverage, SeededBugInFixtureIsCaught)
{
    // The ISSUE's acceptance probe: add an unserialized member to the
    // clean fixture and the rule must fire on exactly that member.
    const std::filesystem::path fixture =
        std::filesystem::path(ASD_SOURCE_DIR) /
        "tests/lint_fixtures/src/core/snapshot_good.hpp";
    std::string source = slurp(fixture);
    ASSERT_FALSE(source.empty());
    const std::string anchor = "unsigned long ticks_ = 0;";
    const auto at = source.find(anchor);
    ASSERT_NE(at, std::string::npos);
    source.insert(at, "unsigned long leaked_ = 0;\n    ");

    const auto clean =
        runAll({{"src/core/snapshot_good.hpp", slurp(fixture)}});
    EXPECT_EQ(countRule(clean, "snapshot-field-coverage"), 0u);

    const auto diags = runAll({{"src/core/snapshot_good.hpp", source}});
    ASSERT_EQ(countRule(diags, "snapshot-field-coverage"), 1u);
    EXPECT_EQ(firstOf(diags, "snapshot-field-coverage")->symbol,
              "CoveredCounter::leaked_");
}

// --- semantic rule: serialize-coverage and jobid-plumbing ----------

namespace
{

const char *kOptionsSource =
    "struct RunOptions {\n"
    "    unsigned long accesses = 0;\n"
    "    unsigned int threads = 1;\n"
    "    bool debug_dump = false;\n"
    "};\n"
    "void writeJson(J &j, const RunOptions &o) {\n"
    "    j.f(\"accesses\", o.accesses);\n"
    "    j.f(\"threads\", o.threads);\n"
    "}\n"
    "unsigned long makeJobId(const RunOptions &o) {\n"
    "    return mix(o.accesses);\n"
    "}\n";

} // namespace

TEST(SerializeCoverage, FlagsUnserializedFieldAndJobIdGap)
{
    const auto diags = runAll({{"src/sim/opt.hpp", kOptionsSource}});
    ASSERT_EQ(countRule(diags, "serialize-coverage"), 1u);
    EXPECT_EQ(firstOf(diags, "serialize-coverage")->symbol,
              "RunOptions::debug_dump");
    ASSERT_EQ(countRule(diags, "jobid-plumbing"), 1u);
    EXPECT_EQ(firstOf(diags, "jobid-plumbing")->symbol,
              "RunOptions::threads");
}

TEST(SerializeCoverage, CleanWhenEveryFieldRoundTrips)
{
    const auto diags = runAll(
        {{"src/sim/opt.hpp",
          "struct RunMetrics {\n"
          "    unsigned long cycles = 0;\n"
          "};\n"
          "void writeJson(J &j, const RunMetrics &m) {\n"
          "    j.f(\"cycles\", m.cycles);\n"
          "}\n"
          "RunMetrics metricsFromJson(const V &v) {\n"
          "    RunMetrics m;\n"
          "    m.cycles = v.u64(\"cycles\");\n"
          "    return m;\n"
          "}\n"}});
    EXPECT_EQ(countRule(diags, "serialize-coverage"), 0u);
}

TEST(SerializeCoverage, StaleBindingWhenSerializerVanishes)
{
    // RunOptions exists but no writeJson anywhere: the binding table
    // itself has rotted, which is a finding, not a silent skip.
    const auto diags = runAll(
        {{"src/sim/opt.hpp",
          "struct RunOptions { unsigned long accesses = 0; };\n"}});
    EXPECT_GE(countRule(diags, "serialize-coverage"), 1u);
}

// --- semantic rule: wall-clock-and-env -----------------------------

TEST(WallClockAndEnv, FiresOnlyInDeterministicLayers)
{
    const char *source = "long f() { return time(nullptr); }\n"
                         "const char *g() { return getenv(\"X\"); }\n";
    EXPECT_EQ(countRule(runAll({{"src/core/clsocked.cpp", source}}),
                        "wall-clock-and-env"),
              2u);
    EXPECT_EQ(countRule(runAll({{"src/telemetry/stamp.cpp", source}}),
                        "wall-clock-and-env"),
              0u);
    EXPECT_EQ(countRule(runAll({{"tools/bench.cpp", source}}),
                        "wall-clock-and-env"),
              0u);
}

TEST(WallClockAndEnv, MemberNamedTimeIsNotACall)
{
    const auto diags = runAll(
        {{"src/core/ok.cpp",
          "long f(const Stamp &s) { return s.time(); }\n"}});
    EXPECT_EQ(countRule(diags, "wall-clock-and-env"), 0u);
}

// --- semantic rule: flow-aware unordered-iteration -----------------

TEST(UnorderedIteration, FollowsCallsToEmittingFunctions)
{
    const char *source =
        "void printRow(const Row &r) { std::cout << r.name; }\n"
        "void dump(const std::unordered_map<int, Row> &rows) {\n"
        "    for (const auto &kv : rows)\n"
        "        printRow(kv.second);\n"
        "}\n"
        "int sum(const std::unordered_map<int, Row> &rows) {\n"
        "    int t = 0;\n"
        "    for (const auto &kv : rows)\n"
        "        t += kv.second.weight;\n"
        "    return t;\n"
        "}\n";
    const auto diags = runAll({{"src/telemetry/rep.cpp", source}});
    ASSERT_EQ(countRule(diags, "unordered-iteration"), 1u);
    const Diagnostic *d = firstOf(diags, "unordered-iteration");
    EXPECT_EQ(d->symbol, "dump");
    EXPECT_EQ(d->line, 3u);
}

TEST(UnorderedIteration, SeesClassMemberContainersInMethods)
{
    const char *source =
        "class Reporter {\n"
        "  public:\n"
        "    void dump() {\n"
        "        for (const auto &kv : counts_)\n"
        "            std::cout << kv.first;\n"
        "    }\n"
        "  private:\n"
        "    std::unordered_map<int, int> counts_;\n"
        "};\n";
    const auto diags = runAll({{"src/telemetry/rep.hpp", source}});
    ASSERT_EQ(countRule(diags, "unordered-iteration"), 1u);
    EXPECT_EQ(firstOf(diags, "unordered-iteration")->symbol,
              "Reporter::dump");
}

// --- reasoned suppressions -----------------------------------------

TEST(AllowReason, SemanticAllowNeedsAReason)
{
    const std::string with_reason =
        std::string(kLeakySource).replace(
            std::string(kLeakySource).find(
                "    unsigned long misses_"),
            0,
            "    // asdlint:allow(snapshot-field-coverage): restored "
            "from the epoch header\n");
    const auto silenced =
        runAll({{"src/core/leaky.hpp", with_reason}});
    EXPECT_EQ(countRule(silenced, "snapshot-field-coverage"), 2u);
    EXPECT_EQ(countRule(silenced, "allow-missing-reason"), 0u);

    const std::string no_reason =
        std::string(kLeakySource).replace(
            std::string(kLeakySource).find(
                "    unsigned long misses_"),
            0, "    // asdlint:allow(snapshot-field-coverage)\n");
    const auto inert = runAll({{"src/core/leaky.hpp", no_reason}});
    EXPECT_EQ(countRule(inert, "snapshot-field-coverage"), 3u);
    EXPECT_EQ(countRule(inert, "allow-missing-reason"), 1u);
}

TEST(AllowReason, TokenRulesStillAllowBareSuppressions)
{
    const auto diags = runAll(
        {{"src/workloads/gen.cpp",
          "int x = rand(); // asdlint:allow(raw-random)\n"}});
    EXPECT_EQ(countRule(diags, "raw-random"), 0u);
}

// --- registry ------------------------------------------------------

TEST(SemanticRegistry, NamesAreUniqueAndResolvable)
{
    const auto &rules = semanticRuleRegistry();
    EXPECT_GE(rules.size(), 6u);
    for (const SemanticRule &rule : rules) {
        EXPECT_TRUE(isSemanticRule(rule.name));
        const SemanticRule *found = findSemanticRule(rule.name);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->name, rule.name);
        EXPECT_FALSE(found->summary.empty());
    }
    EXPECT_FALSE(isSemanticRule("raw-random"));
    EXPECT_EQ(findSemanticRule("no-such-rule"), nullptr);
}

// --- baseline ordering, diff, and expect gates ---------------------

TEST(BaselineGates, FormatIsSortedByPathThenRule)
{
    BaselineCounts counts;
    counts[{"src/b.cpp", "raw-random"}] = 1;
    counts[{"src/a.cpp", "unordered-iteration"}] = 2;
    counts[{"src/a.cpp", "raw-random"}] = 3;
    const std::string text = formatBaseline(counts);
    const auto a_raw = text.find("src/a.cpp\traw-random");
    const auto a_unord = text.find("src/a.cpp\tunordered-iteration");
    const auto b_raw = text.find("src/b.cpp\traw-random");
    ASSERT_NE(a_raw, std::string::npos);
    ASSERT_NE(a_unord, std::string::npos);
    ASSERT_NE(b_raw, std::string::npos);
    EXPECT_LT(a_raw, a_unord);
    EXPECT_LT(a_unord, b_raw);
}

TEST(BaselineGates, DiffReportsOnlyIncreases)
{
    BaselineCounts old_counts, fresh;
    old_counts[{"src/a.cpp", "raw-random"}] = 2;
    old_counts[{"src/gone.cpp", "raw-random"}] = 5;
    fresh[{"src/a.cpp", "raw-random"}] = 3;
    fresh[{"src/new.cpp", "narrowing-cast"}] = 1;
    const std::string diff = formatBaselineDiff(old_counts, fresh);
    EXPECT_NE(diff.find("src/a.cpp\traw-random\t+1"),
              std::string::npos);
    EXPECT_NE(diff.find("src/new.cpp\tnarrowing-cast\t+1"),
              std::string::npos);
    EXPECT_EQ(diff.find("gone.cpp"), std::string::npos);

    EXPECT_TRUE(formatBaselineDiff(fresh, fresh).empty());
}

TEST(BaselineGates, ExpectMismatchIsBidirectional)
{
    BaselineCounts expected, actual;
    expected[{"src/a.cpp", "raw-random"}] = 2;
    actual[{"src/a.cpp", "raw-random"}] = 1;
    actual[{"src/b.cpp", "raw-random"}] = 1;
    const std::string report =
        formatExpectMismatch(expected, actual);
    EXPECT_NE(report.find("src/a.cpp"), std::string::npos);
    EXPECT_NE(report.find("src/b.cpp"), std::string::npos);
    EXPECT_TRUE(formatExpectMismatch(actual, actual).empty());
}

// --- v2 report -----------------------------------------------------

TEST(ReportV2, CarriesSymbolAnchors)
{
    const auto diags = runAll({{"src/core/leaky.hpp", kLeakySource}});
    ASSERT_FALSE(diags.empty());
    const std::string json = reportJson(diags, 1);
    EXPECT_NE(json.find("\"schema\":\"asdlint/v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"symbol\":\"Leaky::misses_\""),
              std::string::npos);
}

// --- incremental cache ---------------------------------------------

TEST(LintCache, ReusesAndInvalidatesByContentHash)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "asdlint_cache_test";
    fs::create_directories(dir);
    const fs::path src = dir / "gen.cpp";
    const fs::path cache = dir / "cache.txt";
    {
        std::ofstream out(src);
        out << "int x = rand();\n";
    }

    LintOptions options;
    options.cache_path = cache.string();
    const std::vector<std::pair<std::string, std::string>> files = {
        {"src/workloads/gen.cpp", src.string()}};

    const auto first = lintFiles(files, options);
    EXPECT_EQ(countRule(first, "raw-random"), 1u);
    ASSERT_TRUE(fs::exists(cache));

    // Second run: served from the cache, identical findings.
    const auto second = lintFiles(files, options);
    ASSERT_EQ(second.size(), first.size());
    EXPECT_EQ(second[0].rule, first[0].rule);
    EXPECT_EQ(second[0].line, first[0].line);

    // Edit the file: the stale entry must not mask the new finding.
    {
        std::ofstream out(src);
        out << "int x = rand();\nint y = rand();\n";
    }
    const auto third = lintFiles(files, options);
    EXPECT_EQ(countRule(third, "raw-random"), 2u);

    fs::remove_all(dir);
}
