/**
 * @file
 * Tests for the trace-driven CPU model: compute burn, MLP limiting,
 * dependent-load serialization, store RFOs, memory-controller
 * rejection retries, and completion plumbing — against a scriptable
 * fake memory port.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/trace_cpu.hpp"
#include "prefetch/ps_prefetcher.hpp"

namespace asd
{
namespace
{

/** Records demand reads; completion is driven manually by tests. */
class FakePort : public MemPort
{
  public:
    bool
    demandRead(LineAddr line, std::uint32_t, bool is_rfo) override
    {
        if (reject_all)
            return false;
        requests.push_back({line, is_rfo});
        return true;
    }

    void
    psPrefetch(LineAddr line, std::uint32_t, bool to_l1) override
    {
        ps_requests.push_back({line, to_l1});
    }

    struct Request
    {
        LineAddr line;
        bool is_rfo;
    };
    std::vector<Request> requests;
    std::vector<std::pair<LineAddr, bool>> ps_requests;
    bool reject_all = false;
};

HierarchyConfig
smallHierarchy()
{
    HierarchyConfig config;
    config.l1 = {4 * 128, 2, 128};
    config.l2 = {16 * 128, 2, 128};
    config.l3 = {32 * 128, 2, 128};
    return config;
}

MemAccess
read(Addr addr, std::uint32_t gap = 0, bool dependent = false)
{
    MemAccess access;
    access.addr = addr;
    access.gap = gap;
    access.dependent = dependent;
    return access;
}

MemAccess
write(Addr addr, std::uint32_t gap = 0)
{
    MemAccess access;
    access.addr = addr;
    access.gap = gap;
    access.op = MemOp::Write;
    return access;
}

struct Fixture
{
    explicit Fixture(std::vector<MemAccess> accesses,
                     CpuConfig config = CpuConfig{})
        : trace(std::move(accesses)),
          hierarchy(smallHierarchy()),
          cpu(config, trace, hierarchy, nullptr, port, 0)
    {}

    Cycle
    runUntilFinished(Cycle limit = 100000)
    {
        Cycle now = 0;
        while (!cpu.finished() && now < limit) {
            cpu.tick(now);
            ++now;
        }
        return now;
    }

    VectorTraceSource trace;
    FakePort port;
    CacheHierarchy hierarchy;
    TraceCpu cpu;
};

TEST(Cpu, MissGoesToPortAndCompletes)
{
    Fixture f({read(0)});
    f.cpu.tick(0);
    ASSERT_EQ(f.port.requests.size(), 1u);
    EXPECT_EQ(f.port.requests[0].line, 0u);
    EXPECT_FALSE(f.port.requests[0].is_rfo);
    EXPECT_FALSE(f.cpu.finished());
    f.cpu.loadDone(0, 10);
    f.cpu.tick(11);
    EXPECT_TRUE(f.cpu.finished());
    EXPECT_TRUE(f.hierarchy.probe(HitLevel::L1, 0)); // fill happened
}

TEST(Cpu, GapInstructionsBurnAtIpc)
{
    // One access with a 40-instruction gap at IPC 2 costs ~20 cycles
    // of compute around the (L1-resident) access.
    std::vector<MemAccess> accesses = {read(0, 40)};
    CpuConfig config;
    config.ipc = 2;
    Fixture f(accesses, config);
    f.hierarchy.fill(0, false);
    const Cycle cycles = f.runUntilFinished();
    EXPECT_GE(cycles, 20u);
    EXPECT_LE(cycles, 30u);
}

TEST(Cpu, MlpLimitsOutstandingLoads)
{
    CpuConfig config;
    config.mlp = 2;
    std::vector<MemAccess> accesses;
    for (Addr line = 0; line < 4; ++line)
        accesses.push_back(read(line * 128));
    Fixture f(accesses, config);
    for (Cycle now = 0; now < 20; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 2u); // capped at MLP
    f.cpu.loadDone(0, 20);
    for (Cycle now = 20; now < 40; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 3u);
}

TEST(Cpu, MergesDuplicateLineMisses)
{
    std::vector<MemAccess> accesses = {read(0), read(64)}; // same line
    Fixture f(accesses);
    for (Cycle now = 0; now < 10; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 1u);
    f.cpu.loadDone(0, 10);
    f.cpu.tick(11);
    EXPECT_TRUE(f.cpu.finished());
}

TEST(Cpu, DependentLoadWaitsForOutstanding)
{
    std::vector<MemAccess> accesses = {read(0),
                                       read(1000 * 128, 0, true)};
    Fixture f(accesses);
    for (Cycle now = 0; now < 50; ++now)
        f.cpu.tick(now);
    // The dependent load must not issue while the first is in flight.
    EXPECT_EQ(f.port.requests.size(), 1u);
    f.cpu.loadDone(0, 50);
    for (Cycle now = 50; now < 60; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 2u);
}

TEST(Cpu, StoreMissRaisesRfo)
{
    Fixture f({write(0)});
    f.cpu.tick(0);
    ASSERT_EQ(f.port.requests.size(), 1u);
    EXPECT_TRUE(f.port.requests[0].is_rfo);
    // The store retires into the store buffer; trace is done but the
    // RFO is still outstanding.
    f.cpu.tick(1);
    EXPECT_FALSE(f.cpu.finished());
    f.cpu.storeDone(0, 5);
    f.cpu.tick(6);
    EXPECT_TRUE(f.cpu.finished());
    // RFO fill installs the line dirty: evicting it writes back.
    EXPECT_TRUE(f.hierarchy.probe(HitLevel::L2, 0));
}

TEST(Cpu, StoreBufferCapacityStalls)
{
    CpuConfig config;
    config.store_buffer = 2;
    std::vector<MemAccess> accesses;
    for (Addr line = 0; line < 4; ++line)
        accesses.push_back(write(line * 128));
    Fixture f(accesses, config);
    for (Cycle now = 0; now < 20; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 2u);
    f.cpu.storeDone(0, 20);
    for (Cycle now = 20; now < 40; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 3u);
}

TEST(Cpu, RejectedReadsRetryWithoutBlockingProgress)
{
    std::vector<MemAccess> accesses = {read(0), read(10 * 128)};
    Fixture f(accesses);
    f.port.reject_all = true;
    f.cpu.tick(0); // first miss rejected -> parked in retry queue
    f.cpu.tick(1); // second access can still issue (also rejected)
    f.cpu.tick(2);
    EXPECT_TRUE(f.port.requests.empty());
    f.port.reject_all = false;
    for (Cycle now = 3; now < 10; ++now)
        f.cpu.tick(now);
    EXPECT_EQ(f.port.requests.size(), 2u);
}

TEST(Cpu, CacheHitsDoNotTouchThePort)
{
    std::vector<MemAccess> accesses = {read(0), read(0), read(0)};
    Fixture f(accesses);
    f.hierarchy.fill(0, false);
    f.runUntilFinished();
    EXPECT_TRUE(f.port.requests.empty());
}

TEST(Cpu, FinishedOnlyWhenAllDrained)
{
    Fixture f({read(0)});
    EXPECT_FALSE(f.cpu.finished()); // trace not yet consumed
    f.cpu.tick(0);
    EXPECT_FALSE(f.cpu.finished()); // miss outstanding
    f.cpu.loadDone(0, 1);
    f.cpu.tick(2);
    EXPECT_TRUE(f.cpu.finished());
}

TEST(Cpu, NextEventHintsAreSane)
{
    std::vector<MemAccess> accesses = {read(0, 100)};
    Fixture f(accesses);
    f.cpu.tick(0); // starts burning the gap
    const Cycles hint = f.cpu.nextEventIn(0);
    EXPECT_GT(hint, 1u);
    EXPECT_LE(hint, 50u); // 100 instructions at IPC 2
}

TEST(Cpu, ElapsedTimeBurnsProportionally)
{
    std::vector<MemAccess> accesses = {read(0, 1000)};
    Fixture f(accesses);
    f.hierarchy.fill(0, false);
    f.cpu.tick(0);
    // Simulate a fast-forward of 500 cycles: the whole 1000-instr gap
    // (IPC 2) is burned and the access issues on this tick.
    f.cpu.tick(501);
    f.cpu.tick(502);
    f.cpu.tick(503);
    EXPECT_TRUE(f.cpu.finished());
}

TEST(Cpu, PsObservationHappensAfterDemandIssue)
{
    // With a PS prefetcher attached, the prefetch request for a
    // missed line must reach the port after the demand read itself.
    PsPrefetcher ps({});
    VectorTraceSource trace({read(0), read(128)});
    CacheHierarchy hierarchy(smallHierarchy());
    FakePort port;
    TraceCpu cpu(CpuConfig{}, trace, hierarchy, &ps, port, 0);
    for (Cycle now = 0; now < 10; ++now)
        cpu.tick(now);
    // Two consecutive misses confirm a stream; the PS request for
    // line 2 must appear only after both demand reads.
    ASSERT_EQ(port.requests.size(), 2u);
    ASSERT_EQ(port.ps_requests.size(), 1u);
    EXPECT_EQ(port.ps_requests[0].first, 2u);
}

} // namespace
} // namespace asd
