/**
 * @file
 * Behavioral tests of the assembled ASD prefetcher: cold start, the
 * paper's length-2 example (prefetch the 2nd line, never the 3rd),
 * direction handling, overflow accounting, epoch protocol, the
 * prefetch buffer hooks, adaptive policy movement, multi-line
 * prefetching (inequality (6)), the long-stream saturation option,
 * and per-thread isolation.
 */

#include <gtest/gtest.h>

#include "core/asd_prefetcher.hpp"

namespace asd
{
namespace
{

AsdConfig
testConfig(std::uint32_t epoch_reads = 40)
{
    AsdConfig config;
    config.epoch_reads = epoch_reads;
    config.filter_slots = 8;
    config.lht_entries = 16;
    config.lifetime_init = 500; // expires between training streams
    config.lifetime_extend = 0;
    return config;
}

/**
 * Feed @p count streams of @p len lines (upward), far apart. Streams
 * are spaced 1000 cycles apart with a tick in between so each expires
 * from the 8-slot filter before the next begins.
 */
void
trainStreams(AsdPrefetcher &pf, std::uint32_t count, std::uint32_t len,
             LineAddr base = 1'000'000)
{
    for (std::uint32_t s = 0; s < count; ++s) {
        const Cycle now = s * 1000;
        pf.tick(now);
        for (std::uint32_t i = 0; i < len; ++i)
            pf.observeRead(base + s * 10'000 + i, 0, now);
    }
}

TEST(Asd, ColdStartNeverPrefetches)
{
    AsdPrefetcher pf(testConfig());
    // First epoch: LHTcurr is empty, so no decisions fire.
    for (LineAddr line = 0; line < 30; ++line)
        EXPECT_TRUE(pf.observeRead(line * 1000, 0, 0).empty());
}

TEST(Asd, Length2WorkloadPrefetchesSecondLineOnly)
{
    AsdPrefetcher pf(testConfig());
    trainStreams(pf, 20, 2); // exactly one epoch of length-2 streams
    ASSERT_EQ(pf.epochsCompleted(), 1u);

    // New stream: the first element predicts a second line...
    const auto first = pf.observeRead(500, 0, 0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0], 501u);
    // ...but the second element must NOT prefetch a third (the
    // paper's section 1 example: 50% of next-line prefetches would
    // be useless here, ASD's are not).
    EXPECT_TRUE(pf.observeRead(501, 0, 0).empty());
}

TEST(Asd, Length3WorkloadPrefetchesTwoElements)
{
    AsdPrefetcher pf(testConfig(60));
    trainStreams(pf, 20, 3);
    ASSERT_EQ(pf.epochsCompleted(), 1u);
    EXPECT_EQ(pf.observeRead(500, 0, 0).size(), 1u);   // k=1
    EXPECT_EQ(pf.observeRead(501, 0, 0).size(), 1u);   // k=2
    EXPECT_TRUE(pf.observeRead(502, 0, 0).empty());    // k=3: stop
}

TEST(Asd, NegativeStreamsPrefetchDownward)
{
    AsdPrefetcher pf(testConfig(60));
    // Train 20 negative streams of length 3.
    for (std::uint32_t s = 0; s < 20; ++s) {
        const LineAddr base = 1'000'000 + s * 10'000;
        const Cycle now = s * 1000;
        pf.tick(now);
        pf.observeRead(base, 0, now);
        pf.observeRead(base - 1, 0, now);
        pf.observeRead(base - 2, 0, now);
    }
    ASSERT_EQ(pf.epochsCompleted(), 1u);
    pf.observeRead(700, 0, 0);
    const auto at_flip = pf.observeRead(699, 0, 0); // k=2, negative
    ASSERT_EQ(at_flip.size(), 1u);
    EXPECT_EQ(at_flip[0], 698u);
}

TEST(Asd, DirectionTablesAreIndependent)
{
    AsdPrefetcher pf(testConfig(60));
    trainStreams(pf, 20, 3); // positive-only training
    ASSERT_EQ(pf.epochsCompleted(), 1u);
    // A negative stream consults the (empty) negative table.
    pf.observeRead(700, 0, 0);
    EXPECT_TRUE(pf.observeRead(699, 0, 0).empty());
}

TEST(Asd, OverflowCountsLengthOneStream)
{
    AsdConfig config = testConfig();
    config.filter_slots = 2;
    AsdPrefetcher pf(config);
    pf.observeRead(1'000'000, 0, 0);
    pf.observeRead(2'000'000, 0, 0);
    EXPECT_EQ(pf.streamLengthHist().total(), 0u);
    pf.observeRead(3'000'000, 0, 0); // overflow
    EXPECT_EQ(pf.streamLengthHist().count(1), 1u);
}

TEST(Asd, EpochFlushRecordsLiveStreams)
{
    AsdPrefetcher pf(testConfig(4));
    pf.observeRead(100, 0, 0);
    pf.observeRead(101, 0, 0);
    pf.observeRead(102, 0, 0);
    EXPECT_EQ(pf.epochsCompleted(), 0u);
    pf.observeRead(103, 0, 0); // 4th read ends the epoch
    EXPECT_EQ(pf.epochsCompleted(), 1u);
    EXPECT_EQ(pf.streamLengthHist().count(4), 1u);
    EXPECT_EQ(pf.lhtCurr(0, StreamDir::Positive).at(4), 1u);
}

TEST(Asd, LifetimeExpiryViaTick)
{
    AsdConfig config = testConfig();
    config.lifetime_init = 100;
    AsdPrefetcher pf(config);
    pf.observeRead(42, 0, 0);
    pf.tick(50);
    EXPECT_EQ(pf.streamLengthHist().total(), 0u);
    pf.tick(100);
    EXPECT_EQ(pf.streamLengthHist().count(1), 1u);
}

TEST(Asd, BufferHooks)
{
    AsdPrefetcher pf(testConfig());
    EXPECT_FALSE(pf.bufferContains(9));
    pf.fillBuffer(9, 0);
    EXPECT_TRUE(pf.bufferContains(9));
    EXPECT_TRUE(pf.lookupBuffer(9));
    EXPECT_FALSE(pf.bufferContains(9)); // consumed
    pf.fillBuffer(11, 0);
    pf.observeWrite(11, 0);
    EXPECT_FALSE(pf.bufferContains(11)); // write invalidation
}

TEST(Asd, PolicyClimbsWithoutConflicts)
{
    AsdPrefetcher pf(testConfig(4));
    EXPECT_EQ(pf.schedulingPolicy(), 3);
    trainStreams(pf, 2, 4); // two quiet epochs
    EXPECT_EQ(pf.schedulingPolicy(), 5);
}

TEST(Asd, PolicyDropsUnderConflicts)
{
    AsdConfig config = testConfig(4);
    config.sched.high_watermark = 2;
    config.sched.low_watermark = 1;
    AsdPrefetcher pf(config);
    for (int i = 0; i < 5; ++i)
        pf.notifyPrefetchConflict(0);
    trainStreams(pf, 1, 4); // one epoch boundary
    EXPECT_EQ(pf.schedulingPolicy(), 2);
}

TEST(Asd, MultiDegreeFollowsInequalitySix)
{
    AsdConfig config = testConfig(80);
    config.max_degree = 4;
    AsdPrefetcher pf(config);
    trainStreams(pf, 20, 4);
    ASSERT_EQ(pf.epochsCompleted(), 1u);
    // k=1 of a fresh stream: lht(1)=lht(2)=lht(3)=lht(4), lht(5)=0,
    // so degrees 1..3 pass and degree 4 fails.
    const auto candidates = pf.observeRead(500, 0, 0);
    ASSERT_EQ(candidates.size(), 3u);
    EXPECT_EQ(candidates[0], 501u);
    EXPECT_EQ(candidates[1], 502u);
    EXPECT_EQ(candidates[2], 503u);
}

TEST(Asd, SaturationKeepsLongStreamsRunning)
{
    AsdConfig config = testConfig(200);
    config.lht_entries = 4;
    config.saturate_long_streams = true;
    AsdPrefetcher pf(config);
    trainStreams(pf, 25, 8);
    ASSERT_GE(pf.epochsCompleted(), 1u);
    // Walk one stream past the table end; prefetching continues.
    const LineAddr base = 500;
    std::size_t suggestions_past_lm = 0;
    for (LineAddr i = 0; i < 7; ++i) {
        const auto out = pf.observeRead(base + i, 0, 0);
        if (i >= 3) // k >= Lm from here on
            suggestions_past_lm += out.size();
    }
    EXPECT_GT(suggestions_past_lm, 0u);
}

TEST(Asd, NoSaturationStopsAtTableEnd)
{
    AsdConfig config = testConfig(200);
    config.lht_entries = 4;
    AsdPrefetcher pf(config);
    trainStreams(pf, 25, 8);
    ASSERT_GE(pf.epochsCompleted(), 1u);
    const LineAddr base = 500;
    for (LineAddr i = 0; i < 7; ++i) {
        const auto out = pf.observeRead(base + i, 0, 0);
        if (i >= 3) {
            EXPECT_TRUE(out.empty()) << "element " << i + 1;
        }
    }
}

TEST(Asd, ThreadsAreIsolated)
{
    AsdConfig config = testConfig(40);
    config.threads = 2;
    AsdPrefetcher pf(config);
    trainStreams(pf, 20, 2); // all on thread 0
    ASSERT_EQ(pf.epochsCompleted(), 1u);
    // Thread 0 predicts; thread 1 has no history.
    EXPECT_EQ(pf.observeRead(500, 0, 0).size(), 1u);
    EXPECT_TRUE(pf.observeRead(600, 1, 0).empty());
}

TEST(Asd, SlhHistoryRecordsEpochs)
{
    AsdPrefetcher pf(testConfig(4));
    pf.enableSlhHistory(8);
    trainStreams(pf, 3, 4);
    ASSERT_EQ(pf.slhHistory().size(), 3u);
    EXPECT_EQ(pf.slhHistory()[0].epoch, 1u);
    EXPECT_EQ(pf.slhHistory()[0].positive[3], 1u); // one len-4 stream
}

TEST(Asd, SameLineReadMakesNoDecision)
{
    AsdPrefetcher pf(testConfig());
    trainStreams(pf, 20, 2);
    pf.observeRead(500, 0, 0);
    EXPECT_TRUE(pf.observeRead(500, 0, 0).empty()); // repeat
}

TEST(Asd, RejectsBadConfig)
{
    AsdConfig config = testConfig();
    config.threads = 0;
    EXPECT_EXIT(AsdPrefetcher{config}, testing::ExitedWithCode(1),
                "thread");
}

} // namespace
} // namespace asd
