/**
 * @file
 * Tests for the memory controller: queue capacities, read completion,
 * writes, the two prefetch-buffer checks, demand/prefetch merging,
 * LPQ policy gating (the five policies of section 3.5), conflict
 * feedback, and the three reorder-queue schedulers.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "dram/dram.hpp"
#include "mc/memory_controller.hpp"
#include "mc/prefetcher_iface.hpp"
#include "mc/scheduler.hpp"

namespace asd
{
namespace
{

/** Scriptable fake prefetcher for driving the controller. */
class FakePrefetcher : public MemSidePrefetcher
{
  public:
    std::vector<LineAddr>
    observeRead(LineAddr line, std::uint32_t, Cycle) override
    {
        reads.push_back(line);
        auto out = next_candidates;
        next_candidates.clear();
        return out;
    }

    void observeWrite(LineAddr line, Cycle) override
    {
        writes.push_back(line);
    }

    bool
    lookupBuffer(LineAddr line) override
    {
        const auto it = buffer.find(line);
        if (it == buffer.end())
            return false;
        buffer.erase(it);
        ++consumed;
        return true;
    }

    bool bufferContains(LineAddr line) const override
    {
        return buffer.count(line) > 0;
    }

    void fillBuffer(LineAddr line, Cycle) override
    {
        buffer[line] = true;
        ++filled;
    }

    int schedulingPolicy() const override { return policy; }

    void notifyPrefetchConflict(Cycle) override { ++conflicts; }

    void tick(Cycle) override { ++ticks; }

    // Test double; never checkpointed.
    void saveState(SnapshotWriter &) const override {}
    void loadState(SnapshotReader &) override {}

    std::vector<LineAddr> next_candidates;
    std::vector<LineAddr> reads;
    std::vector<LineAddr> writes;
    std::map<LineAddr, bool> buffer;
    int policy = 5;
    int conflicts = 0;
    int consumed = 0;
    int filled = 0;
    std::uint64_t ticks = 0;
};

struct Harness
{
    explicit Harness(McConfig config = McConfig{})
        : dram_config(makeDramConfig()),
          dram(dram_config),
          mc(config, dram,
             [this](std::uint64_t id, Cycle done) {
                 completions.emplace_back(id, done);
             })
    {}

    static DramConfig
    makeDramConfig()
    {
        DramConfig config;
        config.refresh_enabled = false;
        return config;
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc.tick(now);
    }

    DramConfig dram_config;
    Dram dram;
    MemoryController mc;
    std::vector<std::pair<std::uint64_t, Cycle>> completions;
    Cycle now = 0;
};

TEST(Mc, ReadCompletesWithCallback)
{
    Harness h;
    ASSERT_TRUE(h.mc.enqueueRead(5, 77, 0, 0));
    h.runTo(2000);
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].first, 77u);
    EXPECT_GT(h.completions[0].second, 0u);
    EXPECT_TRUE(h.mc.idle());
}

TEST(Mc, ReadLatencyIncludesOverheads)
{
    Harness h;
    h.mc.enqueueRead(5, 1, 0, 0);
    h.runTo(2000);
    const McConfig config;
    const Cycles floor = config.command_overhead +
                         config.return_overhead +
                         8 * (4 + 4 + 2); // tRCD+CL+burst
    EXPECT_GE(h.completions[0].second, floor);
}

TEST(Mc, ReadQueueCapacityEnforced)
{
    Harness h;
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(h.mc.enqueueRead(i * 64, i, 0, 0));
    EXPECT_FALSE(h.mc.canAcceptRead());
    EXPECT_FALSE(h.mc.enqueueRead(999, 99, 0, 0));
    h.runTo(5000);
    EXPECT_EQ(h.completions.size(), 8u);
}

TEST(Mc, WriteQueueCapacityEnforced)
{
    Harness h;
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(h.mc.enqueueWrite(i * 64, 0));
    EXPECT_FALSE(h.mc.canAcceptWrite());
    EXPECT_FALSE(h.mc.enqueueWrite(999, 0));
    h.runTo(5000);
    EXPECT_TRUE(h.mc.idle());
    EXPECT_EQ(h.dram.writes(), 8u);
    EXPECT_EQ(h.completions.size(), 0u); // writes are silent
}

TEST(Mc, BufferHitSquashesDramAccess)
{
    Harness h;
    FakePrefetcher pf;
    pf.buffer[42] = true;
    h.mc.attachPrefetcher(&pf);
    ASSERT_TRUE(h.mc.enqueueRead(42, 7, 0, 0));
    h.runTo(200);
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].second, McConfig{}.buffer_hit_latency);
    EXPECT_EQ(h.dram.reads(), 0u);
    EXPECT_EQ(pf.consumed, 1);
    EXPECT_EQ(h.mc.bufferHits(), 1u);
}

TEST(Mc, StreamFilterObservesBufferHitsToo)
{
    Harness h;
    FakePrefetcher pf;
    pf.buffer[42] = true;
    h.mc.attachPrefetcher(&pf);
    h.mc.enqueueRead(42, 1, 0, 0);
    h.mc.enqueueRead(43, 2, 0, 0);
    ASSERT_EQ(pf.reads.size(), 2u); // both reads observed (Fig. 4)
}

TEST(Mc, PrefetchFillsBufferViaLpq)
{
    Harness h;
    FakePrefetcher pf;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {100};
    h.mc.enqueueRead(99, 1, 0, 0);
    h.runTo(3000);
    EXPECT_EQ(h.mc.prefetchesIssued(), 1u);
    EXPECT_EQ(pf.filled, 1);
    EXPECT_TRUE(pf.bufferContains(100));
}

TEST(Mc, DemandMergesOntoInFlightPrefetch)
{
    // Merging is a what-if ablation, off by default (DESIGN.md 6).
    McConfig config;
    config.merge_inflight_prefetch = true;
    Harness h(config);
    FakePrefetcher pf;
    h.mc.attachPrefetcher(&pf);
    // Prefetch targets a different bank so it issues immediately.
    pf.next_candidates = {200};
    h.mc.enqueueRead(99, 1, 0, 0);
    // Let the prefetch reach DRAM, then demand the same line while
    // the prefetch is still in flight.
    h.runTo(50);
    ASSERT_EQ(h.mc.prefetchesIssued(), 1u);
    ASSERT_TRUE(h.mc.enqueueRead(200, 2, 0, h.now));
    h.runTo(3000);
    EXPECT_EQ(h.mc.mergedWithPrefetch(), 1u);
    EXPECT_EQ(h.mc.prefetchesMergedUseful(), 1u);
    // The merged read completed; the prefetch never filled the buffer
    // (data forwarded).
    bool saw_id2 = false;
    for (const auto &[id, done] : h.completions)
        saw_id2 = saw_id2 || id == 2;
    EXPECT_TRUE(saw_id2);
    EXPECT_FALSE(pf.bufferContains(200));
    EXPECT_EQ(h.dram.reads(), 2u); // line 99 demand + line 200 prefetch
}

TEST(Mc, DemandCancelsQueuedLpqEntry)
{
    Harness h; // cancel_lpq_on_demand defaults on

    FakePrefetcher pf;
    pf.policy = 1; // most conservative: LPQ blocked while MC busy
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {100};
    h.mc.enqueueRead(99, 1, 0, 0);
    // Do not tick: prefetch still waits in the LPQ.
    ASSERT_EQ(h.mc.lpqOccupancy(), 1u);
    h.mc.enqueueRead(100, 2, 0, 0);
    EXPECT_EQ(h.mc.lpqOccupancy(), 0u); // promoted to the demand read
    h.runTo(3000);
    EXPECT_EQ(h.completions.size(), 2u);
}

TEST(Mc, LpqDropsWhenFull)
{
    Harness h;
    FakePrefetcher pf;
    pf.policy = 1;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {100, 200, 300, 400, 500};
    h.mc.enqueueRead(99, 1, 0, 0);
    EXPECT_EQ(h.mc.lpqOccupancy(), 3u); // LPQ depth is 3
    EXPECT_EQ(h.mc.lpqDrops(), 2u);
}

TEST(Mc, DuplicatePrefetchCandidatesSkipped)
{
    Harness h;
    FakePrefetcher pf;
    pf.policy = 1;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {100, 100};
    h.mc.enqueueRead(99, 1, 0, 0);
    EXPECT_EQ(h.mc.lpqOccupancy(), 1u);
    EXPECT_EQ(h.mc.lpqDrops(), 0u);
}

TEST(Mc, NoMergingByDefaultDuplicatesTheRead)
{
    Harness h;
    FakePrefetcher pf;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {200};
    h.mc.enqueueRead(99, 1, 0, 0);
    h.runTo(50);
    ASSERT_EQ(h.mc.prefetchesIssued(), 1u);
    // Demand for the in-flight prefetched line re-fetches it (the
    // paper's controller has no MSHR merge), and the late prefetch
    // fills the buffer where it sits unused.
    ASSERT_TRUE(h.mc.enqueueRead(200, 2, 0, h.now));
    h.runTo(3000);
    EXPECT_EQ(h.mc.mergedWithPrefetch(), 0u);
    EXPECT_EQ(h.dram.reads(), 3u);
    EXPECT_TRUE(pf.bufferContains(200));
}

/** Policy 1: LPQ may only issue when the queues are empty. */
TEST(McPolicy, Policy1RequiresEmptyController)
{
    Harness h;
    FakePrefetcher pf;
    pf.policy = 1;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {1000};
    for (std::uint64_t i = 0; i < 8; ++i)
        h.mc.enqueueRead(i * 64, i, 0, 0);
    // The reorder queues and CAQ stay occupied for the first cycles
    // (one move per cycle); the prefetch must hold back.
    h.runTo(4);
    EXPECT_EQ(h.mc.prefetchesIssued(), 0u);
    h.runTo(5000);
    EXPECT_EQ(h.mc.prefetchesIssued(), 1u); // issues once empty
    EXPECT_EQ(h.completions.size(), 8u);
}

/** Policy 5: LPQ issues by timestamp order against the CAQ head. */
TEST(McPolicy, Policy5IssuesByTimestamp)
{
    Harness h;
    FakePrefetcher pf;
    pf.policy = 5;
    h.mc.attachPrefetcher(&pf);
    pf.next_candidates = {1000};
    h.mc.enqueueRead(0, 1, 0, 0);
    // The prefetch (same timestamp era) issues promptly even though
    // regular work is present.
    h.runTo(300);
    EXPECT_EQ(h.mc.prefetchesIssued(), 1u);
}

TEST(McPolicy, ConflictFeedbackFires)
{
    Harness h;
    FakePrefetcher pf;
    pf.policy = 5;
    h.mc.attachPrefetcher(&pf);
    // Prefetch to line 1000; then a demand read to the same bank and
    // row (line 1001) that must wait for the prefetch-busy bank.
    pf.next_candidates = {1000};
    h.mc.enqueueRead(999, 1, 0, 0);
    h.mc.tick(h.now++); // move demand to CAQ
    h.mc.tick(h.now++); // issue prefetch or demand
    h.runTo(20);
    h.mc.enqueueRead(1001, 2, 0, h.now);
    h.runTo(4000);
    EXPECT_GE(static_cast<std::uint64_t>(pf.conflicts) +
                  h.mc.regularsDelayed(),
              0u);
    EXPECT_EQ(h.completions.size(), 2u);
}

TEST(McPolicy, PrefetcherTickedEveryCycle)
{
    Harness h;
    FakePrefetcher pf;
    h.mc.attachPrefetcher(&pf);
    h.runTo(50);
    EXPECT_EQ(pf.ticks, 50u);
}

// ---- reorder-queue schedulers ----

std::deque<McCommand>
makeQueue(std::initializer_list<std::pair<LineAddr, Cycle>> items,
          bool is_write = false)
{
    std::deque<McCommand> queue;
    for (const auto &[line, at] : items) {
        McCommand cmd;
        cmd.line = line;
        cmd.enqueued_at = at;
        cmd.is_write = is_write;
        queue.push_back(cmd);
    }
    return queue;
}

TEST(Scheduler, InOrderPicksOldestAcrossQueues)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    InOrderScheduler sched;
    const auto reads = makeQueue({{0, 10}, {64, 11}});
    const auto writes = makeQueue({{128, 5}}, true);
    const auto pick = sched.pick(reads, writes, dram, 20, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(pick->from_write_queue);
    EXPECT_EQ(pick->index, 0u);
}

TEST(Scheduler, InOrderEmptyReturnsNothing)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    InOrderScheduler sched;
    EXPECT_FALSE(sched.pick({}, {}, dram, 0, false).has_value());
}

TEST(Scheduler, MemorylessPrefersIssuableRead)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    // Make bank of line 0 busy.
    dram.issue(0, false, false, 0);
    MemorylessScheduler sched;
    const auto reads = makeQueue({{1, 1}, {64, 2}});
    const auto pick = sched.pick(reads, {}, dram, 1, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(pick->from_write_queue);
    EXPECT_EQ(pick->index, 1u); // line 64: different, free bank
    EXPECT_TRUE(pick->ready);
}

TEST(Scheduler, MemorylessFallsBackToOldestTaggedNotReady)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    dram.issue(0, false, false, 0);
    MemorylessScheduler sched;
    const auto reads = makeQueue({{1, 7}}); // only a busy-bank read
    const auto pick = sched.pick(reads, {}, dram, 1, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->index, 0u);
    // Nothing issuable: the fallback is a preference only, and moving
    // it into the FIFO CAQ would head-of-line block ready commands.
    EXPECT_FALSE(pick->ready);
}

TEST(Mc, MemorylessHoldsBusyBankReadInReorderQueue)
{
    McConfig config;
    config.scheduler = SchedulerKind::Memoryless;
    Harness h(config);
    ASSERT_TRUE(h.mc.enqueueRead(0, 1, 0, 0));
    h.runTo(2); // the read is now occupying its bank
    h.mc.resetQueueHighWater();
    // Same bank as the in-flight read: not issuable right now.
    ASSERT_TRUE(h.mc.enqueueRead(1, 2, 0, h.now));
    h.runTo(h.now + 10);
    // The not-ready fallback must stay in the read reorder queue
    // (schedulable) instead of being parked in the FIFO CAQ.
    EXPECT_EQ(h.mc.readQOccupancy(), 1u);
    EXPECT_EQ(h.mc.caqHighWater(), 0u);
    h.runTo(4000);
    EXPECT_EQ(h.completions.size(), 2u);
    EXPECT_TRUE(h.mc.idle());
}

TEST(Scheduler, AhbAvoidsRecentlyUsedBank)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    AhbScheduler sched;
    McCommand issued;
    issued.line = 0;
    sched.notifyIssued(issued, dram);
    // Candidate on bank of line 0 vs a fresh bank; both idle.
    const auto reads = makeQueue({{1, 1}, {64, 2}});
    const auto pick = sched.pick(reads, {}, dram, 100, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->index, 1u);
}

TEST(Scheduler, AhbTieBreakPicksOlderRegardlessOfQueueOrder)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    AhbScheduler sched;
    // Two reads on distinct idle banks, no issue history: exactly
    // equal cost. With integer fixed-point cost the tie is exact and
    // the older command must win in either iteration order.
    const auto old_first = makeQueue({{64, 5}, {128, 9}});
    const auto young_first = makeQueue({{128, 9}, {64, 5}});

    auto pick = sched.pick(old_first, {}, dram, 100, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(old_first[pick->index].enqueued_at, 5u);

    pick = sched.pick(young_first, {}, dram, 100, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(young_first[pick->index].enqueued_at, 5u);
}

TEST(Scheduler, AhbTieBreakIsExactAcrossQueues)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    AhbScheduler sched;
    // While draining, a write carries no penalty; with no history the
    // costs tie exactly, so the older write beats the younger read.
    const auto reads = makeQueue({{64, 9}});
    const auto writes = makeQueue({{128, 5}}, true);
    const auto pick = sched.pick(reads, writes, dram, 100, true);
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(pick->from_write_queue);
}

TEST(Scheduler, AhbPrefersReadsUnderLowWritePressure)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    AhbScheduler sched;
    const auto reads = makeQueue({{64, 10}});
    const auto writes = makeQueue({{128, 1}}, true);
    const auto pick = sched.pick(reads, writes, dram, 20, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(pick->from_write_queue);
}

TEST(Scheduler, FrFcfsPrefersReadyRowHit)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    // Open row 0 of bank 0, then let the bank become ready again.
    const Cycle done = dram.issue(0, false, false, 0);
    FrFcfsScheduler sched;
    // Candidates: line 1 (row hit in bank 0), line 64 (closed bank).
    const auto reads = makeQueue({{64, 1}, {1, 9}});
    const auto pick = sched.pick(reads, {}, dram, done + 100, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->index, 1u); // the younger row hit wins
}

TEST(Scheduler, FrFcfsFallsBackToOldestReady)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    FrFcfsScheduler sched;
    // No open rows anywhere: oldest ready command wins.
    const auto reads = makeQueue({{64, 5}, {128, 2}});
    const auto pick = sched.pick(reads, {}, dram, 10, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->index, 1u); // enqueued_at 2 < 5
}

TEST(Scheduler, FrFcfsPicksOldestWhenNothingReady)
{
    DramConfig config;
    config.refresh_enabled = false;
    Dram dram(config);
    dram.issue(0, false, false, 0);
    dram.issue(64, false, false, 0);
    FrFcfsScheduler sched;
    const auto reads = makeQueue({{1, 8}, {65, 3}});
    const auto pick = sched.pick(reads, {}, dram, 1, false);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->index, 1u);
}

TEST(Scheduler, FactoryProducesAllKinds)
{
    EXPECT_NE(makeScheduler(SchedulerKind::InOrder), nullptr);
    EXPECT_NE(makeScheduler(SchedulerKind::Memoryless), nullptr);
    EXPECT_NE(makeScheduler(SchedulerKind::Ahb), nullptr);
    EXPECT_NE(makeScheduler(SchedulerKind::FrFcfs), nullptr);
}

} // namespace
} // namespace asd
