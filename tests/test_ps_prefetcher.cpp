/**
 * @file
 * Tests for the processor-side (Power5-style) prefetcher and the two
 * MC-resident Fig. 11 baselines (next-line, P5-style).
 */

#include <gtest/gtest.h>

#include "prefetch/mc_baselines.hpp"
#include "prefetch/ps_prefetcher.hpp"

namespace asd
{
namespace
{

TEST(Ps, NoPrefetchOnFirstMiss)
{
    PsPrefetcher ps({});
    EXPECT_TRUE(ps.observe(100, true).empty());
}

TEST(Ps, ConfirmsOnTwoConsecutiveMisses)
{
    PsPrefetcher ps({});
    ps.observe(100, true);
    const auto reqs = ps.observe(101, true);
    // Fresh confirmation ramps with depth 1.
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].line, 102u);
    EXPECT_TRUE(reqs[0].to_l1);
    EXPECT_EQ(ps.activeStreams(), 1u);
}

TEST(Ps, SteadyStateKeepsL1AndL2Ahead)
{
    PsPrefetcher ps({});
    ps.observe(100, true);
    ps.observe(101, true);
    const auto reqs = ps.observe(102, false); // hit on prefetched line
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].line, 103u);
    EXPECT_TRUE(reqs[0].to_l1);
    EXPECT_EQ(reqs[1].line, 104u);
    EXPECT_FALSE(reqs[1].to_l1);
}

TEST(Ps, NeverRepeatsARequest)
{
    PsPrefetcher ps({});
    ps.observe(100, true);
    ps.observe(101, true);
    ps.observe(102, false);
    const auto reqs = ps.observe(103, false);
    // 104 was already requested; only 105 is new.
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].line, 105u);
}

TEST(Ps, HitsDoNotConfirmNewStreams)
{
    PsPrefetcher ps({});
    ps.observe(100, true);
    EXPECT_TRUE(ps.observe(101, false).empty()); // hit: no confirm
    EXPECT_EQ(ps.activeStreams(), 0u);
}

TEST(Ps, HitsDoNotAllocate)
{
    PsPrefetcher ps({});
    ps.observe(100, false);
    ps.observe(101, true);
    // 101's miss allocated; 100 never did; so 102 confirms 101's.
    const auto reqs = ps.observe(102, true);
    EXPECT_EQ(reqs.size(), 1u);
}

TEST(Ps, NegativeStreams)
{
    PsPrefetcher ps({});
    ps.observe(100, true);
    const auto reqs = ps.observe(99, true);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].line, 98u);
}

TEST(Ps, ActiveStreamCap)
{
    PsConfig config;
    config.max_active_streams = 2;
    PsPrefetcher ps(config);
    for (LineAddr base = 0; base < 3; ++base) {
        ps.observe(base * 1000, true);
        ps.observe(base * 1000 + 1, true);
    }
    EXPECT_EQ(ps.activeStreams(), 2u);
}

TEST(Ps, DetectionTableLruReplacement)
{
    PsConfig config;
    config.detect_entries = 2;
    PsPrefetcher ps(config);
    ps.observe(1000, true);
    ps.observe(2000, true);
    ps.observe(3000, true); // evicts the 1000 entry (LRU)
    // The 2000 entry survived and still confirms...
    EXPECT_EQ(ps.observe(2001, true).size(), 1u);
    // ...but the evicted 1000 entry no longer does.
    EXPECT_TRUE(ps.observe(1001, true).empty());
}

TEST(Ps, InterleavedStreamsTrackedIndependently)
{
    PsPrefetcher ps({});
    ps.observe(1000, true);
    ps.observe(5000, true);
    EXPECT_EQ(ps.observe(1001, true).size(), 1u);
    EXPECT_EQ(ps.observe(5001, true).size(), 1u);
    EXPECT_EQ(ps.activeStreams(), 2u);
}

// ---- MC-resident baselines ----

AsdConfig
baselineConfig()
{
    AsdConfig config;
    config.epoch_reads = 100;
    return config;
}

TEST(NextLineMc, AlwaysSuggestsNextLine)
{
    NextLineMcPrefetcher pf(baselineConfig());
    const auto out = pf.observeRead(70, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 71u);
}

TEST(NextLineMc, BufferPlumbingWorks)
{
    NextLineMcPrefetcher pf(baselineConfig());
    pf.fillBuffer(5, 0);
    EXPECT_TRUE(pf.bufferContains(5));
    EXPECT_TRUE(pf.lookupBuffer(5));
    EXPECT_FALSE(pf.bufferContains(5));
    pf.fillBuffer(6, 0);
    pf.observeWrite(6, 0);
    EXPECT_FALSE(pf.bufferContains(6));
}

TEST(NextLineMc, AdaptivePolicyMovesAcrossEpochs)
{
    AsdConfig config = baselineConfig();
    config.epoch_reads = 10;
    NextLineMcPrefetcher pf(config);
    EXPECT_EQ(pf.schedulingPolicy(), 3);
    for (int i = 0; i < 25; ++i)
        pf.observeRead(static_cast<LineAddr>(i) * 100, 0, 0);
    EXPECT_EQ(pf.schedulingPolicy(), 5); // two quiet epochs passed
}

TEST(P5StyleMc, PrefetchesOnlyConfirmedStreams)
{
    P5StyleMcPrefetcher pf(baselineConfig());
    EXPECT_TRUE(pf.observeRead(100, 0, 0).empty());
    const auto out = pf.observeRead(101, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 102u);
    // Keeps going until the stream dies (paper: until a useless
    // prefetch) — exactly what ASD avoids on short streams.
    EXPECT_EQ(pf.observeRead(102, 0, 0).size(), 1u);
}

TEST(P5StyleMc, UnrelatedReadsNoPrefetch)
{
    P5StyleMcPrefetcher pf(baselineConfig());
    pf.observeRead(100, 0, 0);
    EXPECT_TRUE(pf.observeRead(500, 0, 0).empty());
    EXPECT_TRUE(pf.observeRead(900, 0, 0).empty());
}

} // namespace
} // namespace asd
