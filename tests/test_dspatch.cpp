/**
 * @file
 * Tests for the DSPatch-style dual-bit-pattern spatial prefetcher:
 * pattern learning (CovP ORs, AccP ANDs), trigger-anchored rotation,
 * policy-driven pattern selection, buffer-hit observation, and
 * snapshot round-trips.
 */

#include <gtest/gtest.h>

#include <bit>

#include "core/asd_config.hpp"
#include "prefetch/dspatch_prefetcher.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{
namespace
{

AsdConfig
shared()
{
    AsdConfig config;
    config.epoch_reads = 1000;
    return config;
}

/** Small geometry: 16-line regions, one tracked region, so the next
 *  region trigger retires (trains) the previous region. */
DspatchConfig
tiny()
{
    DspatchConfig config;
    config.region_lines = 16;
    config.page_buffer_entries = 1;
    config.degree = 8;
    return config;
}

/** Touch offsets of one region (tag picks the region base). */
void
touchRegion(DspatchMcPrefetcher &pf, std::uint64_t tag,
            std::initializer_list<std::uint32_t> offsets)
{
    for (const std::uint32_t off : offsets)
        pf.observeRead(tag * 16 + off, 0, 0);
}

TEST(Dspatch, LearnsAnchoredPatternOnRetirement)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    // Region tag 1, trigger offset 4, then offsets 5 and 6.
    touchRegion(pf, 1, {4, 5, 6});
    EXPECT_EQ(pf.covPattern(4), 0u); // not yet retired
    // A new region trigger evicts (trains) the old region.
    touchRegion(pf, 2, {0});
    // Anchored at the trigger: bits 0 (trigger), 1, 2.
    EXPECT_EQ(pf.covPattern(4), 0b111u);
    EXPECT_EQ(pf.accPattern(4), 0b111u);
}

TEST(Dspatch, CovOrsAndAccAndsAcrossGenerations)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    touchRegion(pf, 1, {4, 5, 6});
    touchRegion(pf, 2, {0});     // retire generation 1
    touchRegion(pf, 3, {4, 7});  // same trigger offset, offsets {0,3}
    touchRegion(pf, 2, {1});     // retire generation 2
    // CovP accumulates every offset ever observed; AccP keeps only
    // the always-observed trigger bit.
    EXPECT_EQ(pf.covPattern(4), 0b1111u);
    EXPECT_EQ(pf.accPattern(4), 0b0001u);
}

TEST(Dspatch, TrainedSignaturePrefetchesNextRegion)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    touchRegion(pf, 1, {4, 5, 6});
    touchRegion(pf, 2, {0}); // retire; signature[4] = {0,1,2}
    // Default scheduler policy (3) exceeds accp_policy_max (2), so
    // the coverage pattern drives prediction.
    const auto out = pf.observeRead(5 * 16 + 4, 0, 0);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 5u * 16 + 5); // nearest first, positive side
    EXPECT_EQ(out[1], 5u * 16 + 6);
}

TEST(Dspatch, AccpPolicySelectsAccuracyPattern)
{
    DspatchConfig config = tiny();
    config.accp_policy_max = 5; // any policy selects AccP
    DspatchMcPrefetcher pf(shared(), config);
    touchRegion(pf, 1, {4, 5, 6});
    touchRegion(pf, 2, {0});
    touchRegion(pf, 3, {4, 5});
    touchRegion(pf, 2, {1});
    // AccP = {0,1} anchored: only offset 5 beyond the trigger.
    const auto out = pf.observeRead(5 * 16 + 4, 0, 0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 5u * 16 + 5);
}

TEST(Dspatch, PatternRotationWrapsAroundRegion)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    // Trigger at offset 14, then 15 and 0? No: offset 2 of the SAME
    // region — absolute offsets {14, 15, 2} anchored at 14 are
    // distances {0, 1, 4 (mod 16)}.
    touchRegion(pf, 1, {14, 15, 2});
    touchRegion(pf, 2, {0});
    EXPECT_EQ(pf.covPattern(14), 0b10011u);
}

TEST(Dspatch, BufferHitsCountAsObservations)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    pf.observeRead(1 * 16 + 4, 0, 0); // open region, trigger 4
    // A prefetched line consumed from the buffer never reaches
    // observeRead; lookupBuffer must record it in the region.
    pf.fillBuffer(1 * 16 + 6, 0);
    EXPECT_TRUE(pf.lookupBuffer(1 * 16 + 6));
    touchRegion(pf, 2, {0}); // retire
    EXPECT_EQ(pf.covPattern(4), 0b101u);
}

TEST(Dspatch, CovQualityWindowResetsNoisyPattern)
{
    DspatchConfig config = tiny();
    config.quality_window = 1; // reset check every ~16 predictions
    config.degree = 16;
    DspatchMcPrefetcher pf(shared(), config);
    // Train a broad pattern from one dense generation.
    touchRegion(pf, 1,
                {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2,
                 3});
    touchRegion(pf, 2, {0});
    EXPECT_EQ(pf.covPattern(4), 0xFFFFu);
    // Regions triggered at offset 4 now prefetch 15 lines each but
    // only the trigger is ever demanded: accuracy ~0 over the
    // window, so CovP resets and rebuilds from the next observation.
    for (std::uint64_t tag = 10; tag < 14; ++tag)
        touchRegion(pf, tag, {4});
    EXPECT_LT(std::popcount(pf.covPattern(4)), 16);
}

TEST(Dspatch, SnapshotRoundTripPreservesBehaviour)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    touchRegion(pf, 1, {4, 5, 6});
    touchRegion(pf, 2, {0, 1, 2});

    SnapshotWriter w;
    w.beginSection("dspatch");
    pf.saveState(w);
    w.endSection();
    SnapshotReader r(w.finish(0));
    r.openSection("dspatch");
    DspatchMcPrefetcher restored(shared(), tiny());
    restored.loadState(r);
    r.endSection();

    EXPECT_EQ(restored.covPattern(4), pf.covPattern(4));
    EXPECT_EQ(restored.accPattern(4), pf.accPattern(4));
    EXPECT_EQ(restored.liveRegions(), pf.liveRegions());
    // Both machines must emit identical prefetches from here on.
    EXPECT_EQ(restored.observeRead(7 * 16 + 4, 0, 0),
              pf.observeRead(7 * 16 + 4, 0, 0));
}

TEST(Dspatch, SnapshotRejectsOutOfRangeTrigger)
{
    DspatchMcPrefetcher pf(shared(), tiny());
    touchRegion(pf, 1, {4});

    SnapshotWriter w;
    w.beginSection("dspatch");
    pf.saveState(w);
    w.endSection();
    SnapshotReader r(w.finish(0));
    r.openSection("dspatch");
    // A machine with smaller regions cannot hold trigger offset 4...
    DspatchConfig narrow = tiny();
    narrow.region_lines = 4;
    DspatchMcPrefetcher mismatched(shared(), narrow);
    // ...but the signature-count check fires first; either way the
    // load must throw, never silently misconfigure.
    EXPECT_THROW(mismatched.loadState(r), SnapshotError);
}

} // namespace
} // namespace asd
