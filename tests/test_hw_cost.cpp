/**
 * @file
 * Tests for the section 5.1 hardware-cost model: the storage bill of
 * the paper's configuration and its scaling behavior.
 */

#include <gtest/gtest.h>

#include "core/hw_cost.hpp"

namespace asd
{
namespace
{

TEST(HwCost, PaperConfigurationIsSmall)
{
    const HwCost cost = computeHwCost(AsdConfig{});
    // The whole prefetcher (dominated by the 2 KB buffer) stays well
    // under 4 KiB of storage.
    EXPECT_LT(cost.totalKiB(), 4.0);
    // Per-thread control state is under 1 KiB (the paper's core
    // argument against 64 KB spatial-locality tables).
    EXPECT_LT(cost.perThreadBits(), 8u * 1024);
}

TEST(HwCost, BufferDominatesStorage)
{
    const HwCost cost = computeHwCost(AsdConfig{});
    EXPECT_GT(cost.prefetch_buffer_bits,
              cost.stream_filter_bits + cost.lht_bits + cost.lpq_bits);
    // 16 lines x (1024 data bits + tag) > 16 Kib.
    EXPECT_GT(cost.prefetch_buffer_bits, 16u * 1024);
}

TEST(HwCost, PerThreadStateScalesLinearly)
{
    AsdConfig one;
    AsdConfig four;
    four.threads = 4;
    const HwCost c1 = computeHwCost(one);
    const HwCost c4 = computeHwCost(four);
    // Shared structures unchanged; per-thread state x4.
    EXPECT_EQ(c4.prefetch_buffer_bits, c1.prefetch_buffer_bits);
    EXPECT_EQ(c4.totalBits() - c4.prefetch_buffer_bits - c4.lpq_bits,
              4 * (c1.totalBits() - c1.prefetch_buffer_bits -
                   c1.lpq_bits));
}

TEST(HwCost, LhtCounterWidthFollowsEpoch)
{
    AsdConfig small;
    small.epoch_reads = 256; // 8-bit counters
    AsdConfig large;
    large.epoch_reads = 65536; // 16-bit counters
    EXPECT_EQ(computeHwCost(large).lht_bits,
              2 * computeHwCost(small).lht_bits);
}

TEST(HwCost, ComparatorsPerDirection)
{
    const HwCost cost = computeHwCost(AsdConfig{});
    // One comparator per adjacent pair, both directions: 2*(16-1).
    EXPECT_EQ(cost.comparator_count, 30u);
}

TEST(HwCost, FilterBitsGrowWithSlots)
{
    AsdConfig wide;
    wide.filter_slots = 16;
    EXPECT_EQ(computeHwCost(wide).stream_filter_bits,
              2 * computeHwCost(AsdConfig{}).stream_filter_bits);
}

} // namespace
} // namespace asd
