/**
 * @file
 * Domain example: the paper's headline scenario — commercial server
 * workloads with low spatial locality. Sweeps the five commercial
 * analogs (OLTP, web brokerage, CPW, SAP, Lotus Notes), shows how
 * short their streams are, and quantifies what ASD memory-side
 * prefetching still extracts from them (paper section 5.2: 15.1%
 * over NP, 8.4% over PS).
 */

#include <iostream>

#include "common/table.hpp"
#include "core/asd_prefetcher.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

int
main()
{
    using namespace asd;

    std::cout
        << "Commercial server study: prefetching with low spatial "
           "locality\n"
        << "===========================================================\n\n";

    Table table({"workload", "short_streams_pct", "PMS_vs_NP",
                 "PMS_vs_PS", "coverage%", "useful%"});
    for (const Benchmark &bench :
         suiteBenchmarks(Suite::Commercial)) {
        RunOptions options;
        options.mode = PrefetchMode::NP;
        const RunMetrics np = runBenchmark(bench, options);
        options.mode = PrefetchMode::PS;
        const RunMetrics ps = runBenchmark(bench, options);

        // PMS run with access to the live prefetcher for stream stats.
        options.mode = PrefetchMode::PMS;
        SyntheticConfig trace_config = bench.trace;
        trace_config.total_accesses = scaledAccesses(bench, options);
        SyntheticTraceGenerator trace(trace_config);
        System system(makeSystemConfig(options), {&trace});
        const RunMetrics pms = system.run();

        const Histogram &hist = system.asd()->streamLengthHist();
        double short_pct = 0.0;
        for (std::uint64_t len = 1; len <= 5; ++len)
            short_pct += hist.fraction(len) * 100.0;

        table.addRow({bench.name, Table::num(short_pct),
                      Table::num(perfGainPct(np.cycles, pms.cycles)),
                      Table::num(perfGainPct(ps.cycles, pms.cycles)),
                      Table::num(pms.coverage_pct),
                      Table::num(pms.useful_prefetch_pct)});
    }
    table.print(std::cout);

    std::cout
        << "\nEven with 78-96% of streams at length <= 5, the Stream "
           "Length\nHistogram lets ASD prefetch exactly the short "
           "runs that exist\ninstead of chasing streams that are "
           "not there.\n";
    return 0;
}
