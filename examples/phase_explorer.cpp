/**
 * @file
 * Interactive-style example: visualize how the Stream Length
 * Histogram of a phased workload (the GemsFDTD analog by default)
 * evolves epoch by epoch, as ASCII bar charts, together with the
 * Adaptive Scheduling policy in force. This is the mechanism behind
 * the paper's Fig. 3: ASD re-learns the SLH every epoch and adapts.
 *
 * Usage: phase_explorer [benchmark] [epochs-to-show]
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/asd_prefetcher.hpp"
#include "core/slh_math.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

namespace
{

void
printEpoch(const asd::SlhSnapshot &snap)
{
    std::vector<std::uint64_t> lht(snap.positive.size());
    for (std::size_t i = 0; i < lht.size(); ++i)
        lht[i] = snap.positive[i] + snap.negative[i];
    const auto bars = asd::readWeightedSlh(lht);

    std::cout << "epoch " << snap.epoch << "\n";
    for (std::size_t i = 0; i < bars.size(); ++i) {
        const int width = static_cast<int>(bars[i] * 60.0);
        std::cout << "  len " << (i + 1 < 10 ? " " : "") << i + 1
                  << " |" << std::string(static_cast<std::size_t>(width), '#')
                  << " " << asd::Table::num(bars[i] * 100.0) << "%\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asd;

    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const std::size_t show =
        argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 6;

    const Benchmark &bench = findBenchmark(name);
    RunOptions options;
    options.mode = PrefetchMode::PMS;

    SyntheticConfig trace_config = bench.trace;
    trace_config.total_accesses = scaledAccesses(bench, options);
    SyntheticTraceGenerator trace(trace_config);
    System system(makeSystemConfig(options), {&trace});
    system.asd()->enableSlhHistory(512);
    system.run();

    const auto &history = system.asd()->slhHistory();
    std::cout << "Stream Length Histogram evolution for " << name
              << " (" << history.size() << " epochs of "
              << system.asd()->config().epoch_reads << " reads)\n\n";

    if (history.empty()) {
        std::cout << "no epochs completed; trace too short\n";
        return 1;
    }
    // Sample epochs evenly across the run.
    const std::size_t step =
        std::max<std::size_t>(1, history.size() / show);
    for (std::size_t e = 0; e < history.size() && e / step < show;
         e += step) {
        printEpoch(history[e]);
    }

    std::cout << "Adaptive Scheduling ended at policy "
              << system.asd()->schedulingPolicy()
              << " (1 = most conservative, 5 = most aggressive)\n";
    return 0;
}
