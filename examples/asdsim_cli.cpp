/**
 * @file
 * Command-line driver for the simulator: run any benchmark in any
 * configuration with every knob exposed, printing a report or a CSV
 * row. The scriptable front door for parameter studies beyond the
 * bundled figure benches.
 *
 * Examples:
 *   asdsim_cli --list
 *   asdsim_cli --bench lbm --mode PMS
 *   asdsim_cli --bench tpcc --mode MS --mc-prefetcher nextline --csv
 *   asdsim_cli --bench GemsFDTD --mode PMS --ps asd --smt
 *   asdsim_cli --bench milc --scheduler frfcfs --policy 3 --buffer 32
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arena/registry.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/serialize.hpp"
#include "sim/snapshot_io.hpp"
#include "sim/system.hpp"
#include "telemetry/sinks.hpp"
#include "trace/synthetic.hpp"
#include "tuner/tuned_run.hpp"

namespace
{

using namespace asd;

struct CliArgs
{
    std::string bench = "GemsFDTD";
    RunOptions options;
    bool csv = false;
    bool smt = false;
    bool list = false;
    bool list_prefetchers = false;
    std::string json_path; //!< RunMetrics JSON path (empty = off)
    std::string telemetry_csv;   //!< per-epoch CSV path (empty = off)
    std::string telemetry_json;  //!< JSON time-series path
    std::string telemetry_trace; //!< Chrome trace-event path
    std::string save_path;       //!< --save-snapshot target (empty = off)
    Cycle save_cycle = 0;        //!< cycle at which to save
    std::string load_path;       //!< --load-snapshot source (empty = off)
    std::string tuner_csv;       //!< per-decision CSV path (empty = off)
    std::string tuner_json;      //!< per-decision JSON path
};

[[noreturn]] void
usage()
{
    std::cout <<
        "usage: asdsim_cli [options]\n"
        "  --list                 list benchmarks and exit\n"
        "  --list-prefetchers     list the prefetcher registry and "
        "exit\n"
        "  --bench NAME           benchmark to run (default GemsFDTD)\n"
        "  --mode NP|PS|MS|PMS    prefetch configuration (default PMS)\n"
        "  --ps power5|asd        processor-side prefetcher kind\n"
        "  --mc-prefetcher asd|nextline|p5|ghb|stride|dspatch|"
        "perceptron\n"
        "                         memory-side prefetcher kind\n"
        "  --scheduler ahb|memoryless|inorder|frfcfs\n"
        "  --policy N             pin the LPQ policy (1..5)\n"
        "  --buffer N             prefetch buffer lines (default 16)\n"
        "  --slots N              stream filter slots (default 8)\n"
        "  --degree N             max prefetch degree (default 1)\n"
        "  --saturate             keep prefetching streams beyond Lm\n"
        "  --ps-oracle            idealized (instant, free) PS fills\n"
        "  --vm-policy identity|seq|random|huge\n"
        "                         enable virtual memory with this\n"
        "                         frame-allocation policy\n"
        "  --vm-page-bytes N      base page size (default 4096)\n"
        "  --vm-phys-mb N         physical memory size (default 4096)\n"
        "  --vm-tlb-entries N     TLB entries (default 64)\n"
        "  --vm-tlb-ways N        TLB associativity (default 4)\n"
        "  --vm-walk-cycles N     page-walk stall (default 60)\n"
        "  --vm-seed N            frame-shuffle seed\n"
        "  --os                   enable the OS memory model (demand\n"
        "                         paging over a finite frame pool with\n"
        "                         CLOCK reclaim; excludes --vm-policy)\n"
        "  --os-frames N          physical frames in the pool\n"
        "                         (default 16384)\n"
        "  --os-minor-cycles N    minor page-fault stall (default 800)\n"
        "  --os-major-cycles N    major page-fault stall\n"
        "                         (default 20000)\n"
        "  --os-major-frac F      fraction of faults that are major\n"
        "                         (default 0.02)\n"
        "  --os-reclaim-cycles N  CLOCK reclaim stall (default 300)\n"
        "  --os-writeback-cycles N\n"
        "                         dirty-victim writeback stall\n"
        "                         (default 2000)\n"
        "  --os-walker radix|hashed\n"
        "                         page-table walker style (default\n"
        "                         radix)\n"
        "  --os-probe-cycles N    hashed-walker per-probe stall\n"
        "                         (default 20)\n"
        "  --os-seed N            fault/frame-shuffle seed\n"
        "  --tenants N            interleave N tenants of the chosen\n"
        "                         benchmark (multi-tenant scenario\n"
        "                         engine; incompatible with --smt)\n"
        "  --tenants-zipf F       Zipf exponent of the per-tenant\n"
        "                         intensity skew (default 1.0)\n"
        "  --tenants-lifetime N   mean tenant lifetime in accesses\n"
        "                         before departure (0 = immortal;\n"
        "                         default 50000)\n"
        "  --tenants-seed N       slot/lifetime draw seed\n"
        "  --accesses N           trace length override\n"
        "  --smt                  co-run two copies (SMT pair)\n"
        "  --csv                  emit one CSV row instead of a table\n"
        "  --json PATH            also write RunMetrics JSON to PATH\n"
        "  --telemetry            record per-epoch telemetry without\n"
        "                         an output sink (for --save-snapshot)\n"
        "  --telemetry-csv PATH   write per-epoch telemetry CSV\n"
        "  --telemetry-json PATH  write per-epoch telemetry JSON\n"
        "  --telemetry-trace PATH write chrome://tracing JSON\n"
        "  --telemetry-max-epochs N\n"
        "                         cap the recorded epochs (0 = all)\n"
        "  --telemetry-no-slh     omit per-thread SLH snapshots\n"
        "  --warmup N             run N cycles before arming the\n"
        "                         memory-side prefetcher\n"
        "  --tune                 enable the phase-adaptive tuner\n"
        "                         (requires MS/PMS with --mc-prefetcher\n"
        "                         asd; incompatible with --smt)\n"
        "  --tune-horizon N       shadow simulation length in cycles\n"
        "                         (default 60000)\n"
        "  --tune-min-epochs N    epochs between decisions (default 2)\n"
        "  --tune-max-decisions N cap decisions per run (0 = all)\n"
        "  --tune-threads N       shadow worker threads (default 1;\n"
        "                         0 = hardware default)\n"
        "  --tune-window N        phase detector window, epochs\n"
        "                         (default 3)\n"
        "  --tune-threshold N     phase change threshold, milli-pct\n"
        "                         (default 40000)\n"
        "  --tune-degrees LIST    comma-separated degree axis\n"
        "  --tune-slots LIST      comma-separated filter-slot axis\n"
        "  --tune-buffers LIST    comma-separated buffer-line axis\n"
        "  --tune-epochs LIST     comma-separated epoch-length axis\n"
        "  --tune-policies LIST   comma-separated policy axis\n"
        "                         (0 = adaptive walk, 1..5 = pinned)\n"
        "  --tuner-csv PATH       write the per-decision CSV log\n"
        "  --tuner-json PATH      write the per-decision JSON log\n"
        "  --save-snapshot PATH@CYCLE\n"
        "                         run to CYCLE, write a checkpoint to\n"
        "                         PATH, and exit (no report)\n"
        "  --load-snapshot PATH   restore a checkpoint and run it to\n"
        "                         completion; the machine config comes\n"
        "                         from the snapshot, only output flags\n"
        "                         (--csv/--json/--telemetry-*) apply\n";
    std::exit(0);
}

PrefetchMode
parseMode(const std::string &text)
{
    if (text == "NP")
        return PrefetchMode::NP;
    if (text == "PS")
        return PrefetchMode::PS;
    if (text == "MS")
        return PrefetchMode::MS;
    if (text == "PMS")
        return PrefetchMode::PMS;
    fatal("unknown mode: " + text);
}

SchedulerKind
parseScheduler(const std::string &text)
{
    if (text == "ahb")
        return SchedulerKind::Ahb;
    if (text == "memoryless")
        return SchedulerKind::Memoryless;
    if (text == "inorder")
        return SchedulerKind::InOrder;
    if (text == "frfcfs")
        return SchedulerKind::FrFcfs;
    fatal("unknown scheduler: " + text);
}

/** Parse "1,2,4" into {1,2,4}; fatal on anything non-numeric. */
std::vector<std::uint32_t>
parseU32List(const std::string &flag, const std::string &text)
{
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        if (item.empty() ||
            item.find_first_not_of("0123456789") != std::string::npos)
            fatal(flag + " expects a comma-separated integer list, "
                  "got: " + text);
        out.push_back(static_cast<std::uint32_t>(
            std::atoll(item.c_str())));
        pos = comma + 1;
    }
    if (out.empty())
        fatal(flag + " expects at least one value");
    return out;
}

CliArgs
parseArgs(int argc, char **argv)
{
    CliArgs args;
    std::vector<std::string> tokens(argv + 1, argv + argc);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        auto next = [&]() -> std::string {
            if (++i >= tokens.size())
                fatal("missing value after " + tok);
            return tokens[i];
        };
        if (tok == "--help" || tok == "-h") {
            usage();
        } else if (tok == "--list") {
            args.list = true;
        } else if (tok == "--list-prefetchers") {
            args.list_prefetchers = true;
        } else if (tok == "--bench") {
            args.bench = next();
        } else if (tok == "--mode") {
            args.options.mode = parseMode(next());
        } else if (tok == "--ps") {
            const std::string v = next();
            if (v == "asd")
                args.options.ps_kind = PsKind::Asd;
            else if (v != "power5")
                fatal("unknown --ps kind: " + v);
        } else if (tok == "--mc-prefetcher") {
            const std::string v = next();
            const auto kind = parseMcPrefetcherKind(v);
            if (!kind)
                fatal("unknown --mc-prefetcher kind: " + v);
            args.options.mc_prefetcher = *kind;
        } else if (tok == "--scheduler") {
            args.options.scheduler = parseScheduler(next());
        } else if (tok == "--policy") {
            args.options.fixed_policy = std::atoi(next().c_str());
        } else if (tok == "--buffer") {
            args.options.buffer_lines =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--slots") {
            args.options.filter_slots =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--degree") {
            args.options.max_degree =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--saturate") {
            args.options.saturate_long_streams = true;
        } else if (tok == "--ps-oracle") {
            args.options.ps_oracle = true;
        } else if (tok == "--vm-policy") {
            const std::string v = next();
            const auto policy = parseFrameAllocPolicy(v);
            if (!policy)
                fatal("unknown --vm-policy (use "
                      "identity|seq|random|huge): " + v);
            args.options.vm.enabled = true;
            args.options.vm.policy = *policy;
        } else if (tok == "--vm-page-bytes") {
            args.options.vm.page_bytes = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--vm-phys-mb") {
            args.options.vm.phys_bytes =
                static_cast<std::uint64_t>(
                    std::atoll(next().c_str())) << 20;
        } else if (tok == "--vm-tlb-entries") {
            args.options.vm.tlb.entries =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--vm-tlb-ways") {
            args.options.vm.tlb.ways =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--vm-walk-cycles") {
            args.options.vm.tlb.walk_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--vm-seed") {
            args.options.vm.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--os") {
            args.options.os.enabled = true;
        } else if (tok == "--os-frames") {
            args.options.os.frames = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--os-minor-cycles") {
            args.options.os.minor_fault_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--os-major-cycles") {
            args.options.os.major_fault_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--os-major-frac") {
            args.options.os.major_fault_frac =
                std::atof(next().c_str());
        } else if (tok == "--os-reclaim-cycles") {
            args.options.os.reclaim_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--os-writeback-cycles") {
            args.options.os.writeback_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--os-walker") {
            const std::string v = next();
            const auto walker = parsePageWalkerKind(v);
            if (!walker)
                fatal("unknown --os-walker (use radix|hashed): " + v);
            args.options.vm.walker = *walker;
        } else if (tok == "--os-probe-cycles") {
            args.options.os.hashed_probe_cycles =
                static_cast<Cycles>(std::atoll(next().c_str()));
        } else if (tok == "--os-seed") {
            args.options.os.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--tenants") {
            args.options.tenants.enabled = true;
            args.options.tenants.slots =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
            if (args.options.tenants.slots == 0)
                fatal("--tenants expects at least one slot");
        } else if (tok == "--tenants-zipf") {
            args.options.tenants.zipf_s = std::atof(next().c_str());
        } else if (tok == "--tenants-lifetime") {
            args.options.tenants.mean_lifetime =
                static_cast<std::uint64_t>(std::atoll(next().c_str()));
        } else if (tok == "--tenants-seed") {
            args.options.tenants.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--accesses") {
            args.options.accesses = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (tok == "--smt") {
            args.smt = true;
        } else if (tok == "--csv") {
            args.csv = true;
        } else if (tok == "--json") {
            args.json_path = next();
        } else if (tok == "--telemetry-csv") {
            args.telemetry_csv = next();
            args.options.telemetry.enabled = true;
        } else if (tok == "--telemetry-json") {
            args.telemetry_json = next();
            args.options.telemetry.enabled = true;
        } else if (tok == "--telemetry-trace") {
            args.telemetry_trace = next();
            args.options.telemetry.enabled = true;
        } else if (tok == "--telemetry") {
            // Enable recording with no output sink — useful with
            // --save-snapshot so the checkpoint carries the recorder
            // state and a later --load-snapshot can emit the full
            // time series.
            args.options.telemetry.enabled = true;
        } else if (tok == "--telemetry-max-epochs") {
            args.options.telemetry.max_epochs =
                static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (tok == "--telemetry-no-slh") {
            args.options.telemetry.capture_slh = false;
        } else if (tok == "--tune") {
            args.options.tuner.enabled = true;
        } else if (tok == "--tune-horizon") {
            args.options.tuner.shadow_horizon =
                static_cast<Cycle>(std::atoll(next().c_str()));
        } else if (tok == "--tune-min-epochs") {
            args.options.tuner.min_epochs_between =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--tune-max-decisions") {
            args.options.tuner.max_decisions =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--tune-threads") {
            args.options.tuner.shadow_threads =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--tune-window") {
            args.options.tuner.phase_window =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--tune-threshold") {
            args.options.tuner.phase_threshold_milli_pct =
                static_cast<std::uint32_t>(std::atoi(next().c_str()));
        } else if (tok == "--tune-degrees") {
            args.options.tuner.space.degrees =
                parseU32List(tok, next());
        } else if (tok == "--tune-slots") {
            args.options.tuner.space.filter_slots =
                parseU32List(tok, next());
        } else if (tok == "--tune-buffers") {
            args.options.tuner.space.buffer_lines =
                parseU32List(tok, next());
        } else if (tok == "--tune-epochs") {
            args.options.tuner.space.epoch_reads =
                parseU32List(tok, next());
        } else if (tok == "--tune-policies") {
            args.options.tuner.space.policies =
                parseU32List(tok, next());
        } else if (tok == "--tuner-csv") {
            args.tuner_csv = next();
        } else if (tok == "--tuner-json") {
            args.tuner_json = next();
        } else if (tok == "--warmup") {
            args.options.warmup_cycles =
                static_cast<Cycle>(std::atoll(next().c_str()));
        } else if (tok == "--save-snapshot") {
            const std::string v = next();
            const std::size_t at = v.rfind('@');
            if (at == std::string::npos || at == 0 ||
                at + 1 >= v.size()) {
                fatal("--save-snapshot expects PATH@CYCLE, got: " + v);
            }
            args.save_path = v.substr(0, at);
            args.save_cycle = static_cast<Cycle>(
                std::atoll(v.c_str() + at + 1));
        } else if (tok == "--load-snapshot") {
            args.load_path = next();
        } else {
            fatal("unknown argument: " + tok + " (try --help)");
        }
    }
    return args;
}

/**
 * Wire the mix's arrival/departure counters into the telemetry
 * recorder. Every path that builds a tenant System must do this
 * before running (or restoring), or its epoch records would disagree
 * with an uninterrupted run's.
 */
void
installTenantProbe(System &system, const TenantMixSource &mix)
{
    system.setTenantProbe([&mix]() {
        TenantTelemetrySample sample;
        sample.arrivals = mix.arrivals();
        sample.departures = mix.departures();
        return sample;
    });
}

void
listBenchmarks()
{
    for (const Suite suite :
         {Suite::Spec2006fp, Suite::Nas, Suite::Commercial}) {
        std::cout << suiteName(suite) << ":";
        for (const Benchmark &bench : suiteBenchmarks(suite))
            std::cout << " " << bench.name;
        std::cout << "\n";
    }
}

/**
 * --save-snapshot: run to the requested cycle, write the checkpoint
 * (a "cli" metadata section followed by the machine sections), and
 * exit without printing a report. Informational output goes to
 * stderr so a later --load-snapshot run's stdout byte-compares
 * against an uninterrupted run's.
 */
int
saveSnapshotRun(const CliArgs &args)
{
    const Benchmark &bench = findBenchmark(args.bench);
    const std::uint64_t accesses =
        scaledAccesses(bench, args.options);

    SnapshotWriter writer;
    writer.beginSection("cli");
    writer.str(bench.name);
    writer.u64(accesses);
    saveRunOptions(writer, args.options);
    writer.endSection();

    Cycle saved_at = 0;
    if (args.options.tuner.enabled) {
        // Tuned runs checkpoint through TunedRun so the controller
        // state ("tun" section) rides along with the machine's.
        TunedRun run(bench, args.options, accesses);
        run.runUntil(args.save_cycle);
        run.saveSnapshot(writer);
        saved_at = run.system().nowCycle();
    } else if (args.options.tenants.enabled) {
        SyntheticConfig trace_config = bench.trace;
        trace_config.total_accesses = accesses;
        TenantMixSource mix(args.options.tenants, trace_config,
                            accesses);
        System system(makeSystemConfig(args.options), {&mix});
        installTenantProbe(system, mix);
        system.runUntil(args.save_cycle);
        system.saveSnapshot(writer);
        saved_at = system.nowCycle();
    } else {
        SyntheticConfig trace_config = bench.trace;
        trace_config.total_accesses = accesses;
        SyntheticTraceGenerator trace(trace_config);
        System system(makeSystemConfig(args.options), {&trace});
        system.runUntil(args.save_cycle);
        system.saveSnapshot(writer);
        saved_at = system.nowCycle();
    }
    try {
        writeSnapshotFile(args.save_path,
                          writer.finish(runConfigHash(
                              bench.name, accesses, args.options)));
    } catch (const SnapshotError &e) {
        fatal(std::string("snapshot save failed: ") + e.what());
    }
    std::cerr << "asdsim_cli: saved " << bench.name << " at cycle "
              << saved_at << " to " << args.save_path << "\n";
    return 0;
}

/**
 * --load-snapshot: rebuild the machine from the snapshot's own
 * metadata (the command line only chooses the outputs), restore, and
 * run to completion.
 */
RunMetrics
loadSnapshotRun(const CliArgs &args, std::string &bench_name,
                std::vector<EpochRecord> &epochs, bool &telemetry_on,
                std::vector<TunerDecision> &decisions,
                bool &tuner_on)
{
    try {
        SnapshotReader reader(readSnapshotFile(args.load_path));
        reader.openSection("cli");
        bench_name = reader.str();
        const std::uint64_t accesses = reader.u64();
        const RunOptions options = loadRunOptions(reader);
        reader.endSection();
        reader.requireConfigHash(
            runConfigHash(bench_name, accesses, options));
        if (args.options.telemetry.enabled &&
            !options.telemetry.enabled) {
            fatal("telemetry output requested but the snapshot was "
                  "taken without telemetry");
        }
        telemetry_on = options.telemetry.enabled;
        tuner_on = options.tuner.enabled;

        const Benchmark &bench = findBenchmark(bench_name);
        if (options.tuner.enabled) {
            TunedRun run(bench, options, accesses);
            run.loadSnapshot(reader);
            std::cerr << "asdsim_cli: restored " << bench_name
                      << " at cycle " << run.system().nowCycle()
                      << " from " << args.load_path << "\n";
            run.runUntil(kNoCycle);
            const TunedRunResult res = run.result();
            if (telemetry_on)
                epochs = res.epochs;
            decisions = res.decisions;
            return res.metrics;
        }

        SyntheticConfig trace_config = bench.trace;
        trace_config.total_accesses = accesses;
        if (options.tenants.enabled) {
            TenantMixSource mix(options.tenants, trace_config,
                                accesses);
            System system(makeSystemConfig(options), {&mix});
            installTenantProbe(system, mix);
            system.loadSnapshot(reader);
            std::cerr << "asdsim_cli: restored " << bench_name
                      << " at cycle " << system.nowCycle() << " from "
                      << args.load_path << "\n";
            system.runUntil(kNoCycle);
            if (system.telemetry())
                epochs = system.telemetry()->records();
            RunMetrics m = system.collectMetrics();
            m.tenants_enabled = true;
            m.tenant_arrivals = mix.arrivals();
            m.tenant_departures = mix.departures();
            m.tenant_active = mix.activeTenants();
            return m;
        }
        SyntheticTraceGenerator trace(trace_config);
        System system(makeSystemConfig(options), {&trace});
        system.loadSnapshot(reader);
        std::cerr << "asdsim_cli: restored " << bench_name
                  << " at cycle " << system.nowCycle() << " from "
                  << args.load_path << "\n";
        system.runUntil(kNoCycle);
        if (system.telemetry())
            epochs = system.telemetry()->records();
        return system.collectMetrics();
    } catch (const SnapshotError &e) {
        fatal(std::string("snapshot load failed: ") + e.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args = parseArgs(argc, argv);
    if (args.list) {
        listBenchmarks();
        return 0;
    }
    if (args.list_prefetchers) {
        // The registry is the single source of truth for what can be
        // fielded; anything listed here works as --mc-prefetcher
        // (mem-side) or --ps (cpu-side, without the "ps-" prefix).
        for (const PrefetcherInfo &info :
             PrefetcherRegistry::instance().all()) {
            std::printf("%-12s %-9s %s\n", info.name.c_str(),
                        toString(info.side).c_str(),
                        info.description.c_str());
        }
        return 0;
    }

    if ((!args.save_path.empty() || !args.load_path.empty()) &&
        args.smt) {
        fatal("--smt cannot be combined with snapshot save/load");
    }
    if (args.options.tuner.enabled && args.smt)
        fatal("--tune cannot be combined with --smt");
    if (args.options.tenants.enabled && args.smt)
        fatal("--tenants cannot be combined with --smt (the mix is "
              "one interleaved trace)");
    if (args.options.os.enabled && args.options.vm.enabled)
        fatal("--os and --vm-policy are mutually exclusive (the OS "
              "model replaces the VM layer's infinite allocators)");
    if (!args.save_path.empty() && !args.load_path.empty())
        fatal("--save-snapshot and --load-snapshot are mutually "
              "exclusive");
    if (!args.save_path.empty())
        return saveSnapshotRun(args);

    std::string bench_name = args.bench;
    std::vector<EpochRecord> epochs;
    std::vector<TunerDecision> decisions;
    bool telemetry_on = args.options.telemetry.enabled;
    bool tuner_on = args.options.tuner.enabled;
    RunMetrics m;
    if (!args.load_path.empty()) {
        m = loadSnapshotRun(args, bench_name, epochs, telemetry_on,
                            decisions, tuner_on);
    } else if (args.options.tuner.enabled) {
        const Benchmark &bench = findBenchmark(args.bench);
        TunedRun run(bench, args.options);
        const TunedRunResult res = run.run();
        m = res.metrics;
        if (telemetry_on)
            epochs = res.epochs;
        decisions = res.decisions;
    } else {
        const Benchmark &bench = findBenchmark(args.bench);
        m = args.smt
                ? runSmtPair(bench, bench, args.options, &epochs)
                : runBenchmark(bench, args.options, &epochs);
    }

    if (tuner_on) {
        if (!args.tuner_csv.empty())
            saveTunerCsv(decisions, args.tuner_csv);
        if (!args.tuner_json.empty())
            saveTunerJson(decisions, args.tuner_json);
    } else if (!args.tuner_csv.empty() || !args.tuner_json.empty()) {
        fatal("--tuner-csv/--tuner-json need --tune (or a snapshot "
              "taken with it)");
    }

    if (telemetry_on) {
        if (epochs.empty())
            warn("telemetry enabled but no epochs were recorded");
        if (!args.telemetry_csv.empty())
            saveTelemetryCsv(epochs, args.telemetry_csv);
        if (!args.telemetry_json.empty())
            saveTelemetryJson(epochs, args.telemetry_json);
        if (!args.telemetry_trace.empty())
            saveTelemetryChromeTrace(epochs, args.telemetry_trace);
    }

    if (!args.json_path.empty()) {
        std::ofstream out(args.json_path, std::ios::binary);
        if (!out)
            fatal("cannot write " + args.json_path);
        out << toJson(m) << "\n";
    }

    if (args.csv) {
        std::cout << bench_name << "," << m.cycles << ","
                  << m.accesses << "," << Table::num(m.dram_watts, 3)
                  << "," << Table::num(m.dram_energy_mj, 3) << ","
                  << Table::num(m.coverage_pct, 2) << ","
                  << Table::num(m.useful_prefetch_pct, 2) << ","
                  << Table::num(m.delayed_regular_pct, 2) << ","
                  << m.ms_prefetches_issued << "," << m.mc_reads << ","
                  << m.mc_writes;
        if (m.vm_enabled) {
            std::cout << "," << m.tlb_hits << "," << m.tlb_misses
                      << "," << m.page_walk_cycles << ","
                      << m.pages_mapped;
        }
        if (m.os_enabled) {
            std::cout << "," << m.tlb_hits << "," << m.tlb_misses
                      << "," << m.os_minor_faults << ","
                      << m.os_major_faults << "," << m.os_reclaims
                      << "," << m.os_writebacks << ","
                      << m.os_shootdowns << "," << m.os_stall_cycles
                      << "," << m.os_resident_pages;
        }
        if (m.tenants_enabled) {
            std::cout << "," << m.tenant_active << ","
                      << m.tenant_arrivals << ","
                      << m.tenant_departures;
        }
        std::cout << "\n";
        return 0;
    }

    Table table({"metric", "value"});
    table.addRow({"benchmark", bench_name});
    table.addRow({"cycles", std::to_string(m.cycles)});
    table.addRow({"accesses", std::to_string(m.accesses)});
    table.addRow({"dram_watts", Table::num(m.dram_watts, 3)});
    table.addRow({"dram_energy_mj", Table::num(m.dram_energy_mj, 3)});
    table.addRow({"coverage_pct", Table::num(m.coverage_pct, 2)});
    table.addRow(
        {"useful_prefetch_pct", Table::num(m.useful_prefetch_pct, 2)});
    table.addRow({"delayed_regular_pct",
                  Table::num(m.delayed_regular_pct, 2)});
    table.addRow({"ms_prefetches_issued",
                  std::to_string(m.ms_prefetches_issued)});
    table.addRow({"mc_reads", std::to_string(m.mc_reads)});
    table.addRow({"mc_writes", std::to_string(m.mc_writes)});
    if (m.vm_enabled) {
        table.addRow({"tlb_hits", std::to_string(m.tlb_hits)});
        table.addRow({"tlb_misses", std::to_string(m.tlb_misses)});
        table.addRow({"page_walk_cycles",
                      std::to_string(m.page_walk_cycles)});
        table.addRow({"pages_mapped", std::to_string(m.pages_mapped)});
    }
    if (m.os_enabled) {
        table.addRow({"tlb_hits", std::to_string(m.tlb_hits)});
        table.addRow({"tlb_misses", std::to_string(m.tlb_misses)});
        table.addRow(
            {"os_minor_faults", std::to_string(m.os_minor_faults)});
        table.addRow(
            {"os_major_faults", std::to_string(m.os_major_faults)});
        table.addRow({"os_reclaims", std::to_string(m.os_reclaims)});
        table.addRow(
            {"os_writebacks", std::to_string(m.os_writebacks)});
        table.addRow(
            {"os_shootdowns", std::to_string(m.os_shootdowns)});
        table.addRow(
            {"os_stall_cycles", std::to_string(m.os_stall_cycles)});
        table.addRow({"os_resident_pages",
                      std::to_string(m.os_resident_pages)});
    }
    if (m.tenants_enabled) {
        table.addRow(
            {"tenant_active", std::to_string(m.tenant_active)});
        table.addRow(
            {"tenant_arrivals", std::to_string(m.tenant_arrivals)});
        table.addRow({"tenant_departures",
                      std::to_string(m.tenant_departures)});
    }
    table.print(std::cout);
    return 0;
}
