/**
 * @file
 * Diagnostic example: run one benchmark in one configuration and dump
 * every registered counter, the run metrics, and the final stream-
 * length histogram — as one valid JSON document on stdout, so the
 * output can feed scripts directly. Useful when adapting the
 * simulator to new workloads.
 *
 * Usage: stats_dump [benchmark] [NP|PS|MS|PMS] [asd|nextline|p5]
 */

#include <iostream>
#include <string>

#include "common/json.hpp"
#include "common/log.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

int
main(int argc, char **argv)
{
    using namespace asd;

    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const std::string mode_text = argc > 2 ? argv[2] : "PMS";
    const auto mode = parsePrefetchMode(mode_text);
    if (!mode)
        fatal("unknown mode (use NP|PS|MS|PMS): " + mode_text);
    const std::string kind_text = argc > 3 ? argv[3] : "asd";
    const auto kind = parseMcPrefetcherKind(kind_text);
    if (!kind)
        fatal("unknown prefetcher kind: " + kind_text);

    const Benchmark &bench = findBenchmark(name);
    RunOptions options;
    options.mode = *mode;
    options.mc_prefetcher = *kind;

    SyntheticConfig trace_config = bench.trace;
    trace_config.total_accesses = scaledAccesses(bench, options);
    SyntheticTraceGenerator trace(trace_config);

    System system(makeSystemConfig(options), {&trace});
    const RunMetrics metrics = system.run();

    JsonWriter writer;
    writer.beginObject();
    writer.key("schema").value("asdsim/stats-dump/v1");
    writer.key("benchmark").value(name);
    writer.key("options");
    writeJson(writer, options);
    writer.key("metrics");
    writeJson(writer, metrics);

    writer.key("counters").beginObject();
    for (const auto &[stat_name, value] : system.stats().dump())
        writer.key(stat_name).value(value);
    writer.endObject();

    writer.key("stream_length_hist");
    if (const AsdPrefetcher *asd_pf = system.asd()) {
        // Fraction of streams per length bucket (index 0 = length 1).
        writer.beginArray();
        const Histogram &hist = asd_pf->streamLengthHist();
        for (std::uint64_t len = 1; len <= hist.buckets(); ++len)
            writer.value(hist.fraction(len));
        writer.endArray();
    } else {
        writer.null();
    }
    writer.endObject();

    std::cout << writer.str() << "\n";
    return 0;
}
