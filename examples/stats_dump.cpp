/**
 * @file
 * Diagnostic example: run one benchmark in one configuration and dump
 * every registered counter, the run metrics, and the final stream-
 * length histogram. Useful when adapting the simulator to new
 * workloads.
 *
 * Usage: stats_dump [benchmark] [NP|PS|MS|PMS] [asd|nextline|p5]
 */

#include <iostream>
#include <string>

#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"

namespace
{

asd::PrefetchMode
parseMode(const std::string &text)
{
    if (text == "NP")
        return asd::PrefetchMode::NP;
    if (text == "PS")
        return asd::PrefetchMode::PS;
    if (text == "MS")
        return asd::PrefetchMode::MS;
    if (text == "PMS")
        return asd::PrefetchMode::PMS;
    asd::fatal("unknown mode (use NP|PS|MS|PMS): " + text);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asd;

    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const std::string mode_text = argc > 2 ? argv[2] : "PMS";
    const PrefetchMode mode = parseMode(mode_text);
    const std::string kind_text = argc > 3 ? argv[3] : "asd";

    const Benchmark &bench = findBenchmark(name);
    RunOptions options;
    options.mode = mode;
    if (kind_text == "nextline")
        options.mc_prefetcher = McPrefetcherKind::NextLine;
    else if (kind_text == "p5")
        options.mc_prefetcher = McPrefetcherKind::P5Style;
    else if (kind_text != "asd")
        fatal("unknown prefetcher kind: " + kind_text);

    SyntheticConfig trace_config = bench.trace;
    trace_config.total_accesses = scaledAccesses(bench, options);
    SyntheticTraceGenerator trace(trace_config);

    System system(makeSystemConfig(options), {&trace});
    const RunMetrics metrics = system.run();

    std::cout << "benchmark " << name << ", mode " << mode_text
              << "\n";
    std::cout << "cycles " << metrics.cycles << "  accesses "
              << metrics.accesses << "\n";
    std::cout << "dram " << Table::num(metrics.dram_watts, 3) << " W, "
              << Table::num(metrics.dram_energy_mj, 3) << " mJ\n";
    std::cout << "coverage " << Table::num(metrics.coverage_pct)
              << "%  useful " << Table::num(metrics.useful_prefetch_pct)
              << "%  delayed "
              << Table::num(metrics.delayed_regular_pct) << "%\n\n";

    for (const auto &[stat_name, value] : system.stats().dump())
        std::cout << stat_name << " = " << value << "\n";

    if (const AsdPrefetcher *asd_pf = system.asd()) {
        std::cout << "\nstream length histogram (streams):\n";
        const Histogram &hist = asd_pf->streamLengthHist();
        for (std::uint64_t len = 1; len <= hist.buckets(); ++len) {
            std::cout << "  len " << len << ": "
                      << Table::num(hist.fraction(len) * 100.0)
                      << "%\n";
        }
    }
    return 0;
}
