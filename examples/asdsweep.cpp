/**
 * @file
 * Parallel configuration-grid sweep driver. Expands suite/benchmark
 * selections times a grid of prefetcher knobs into JobSpecs, fans
 * them out over the sweep runner's thread pool, and writes one JSON
 * record per job plus a manifest (and optionally a flat CSV) under
 * --out. Exit status is non-zero if any job failed.
 *
 * Usage:
 *   asdsweep [--suite spec|nas|commercial|detailed|all]...
 *            [--bench NAME]...
 *            [--modes NP,PS,MS,PMS] [--prefetchers asd,nextline,...]
 *            [--buffer-lines 8,16,32] [--filter-slots 4,8,16]
 *            [--degrees 1,2] [--accesses N] [--seed N]
 *            [--threads N] [--timeout-ms N]
 *            [--warm-start CYCLES] [--snapshot-dir DIR] [--resume]
 *            [--out DIR] [--csv] [--quiet]
 *
 * Thread count defaults to the ASD_SWEEP_THREADS environment
 * variable, then to the hardware concurrency.
 */

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "runner/result_sink.hpp"
#include "runner/sweep_runner.hpp"
#include "runner/thread_pool.hpp"
#include "sim/serialize.hpp"
#include "telemetry/sinks.hpp"
#include "tuner/tuned_run.hpp"

namespace
{

using namespace asd;

struct CliConfig
{
    std::vector<std::string> suites;
    std::vector<std::string> bench_names;
    std::vector<PrefetchMode> modes;
    std::vector<McPrefetcherKind> prefetchers;
    std::vector<std::uint32_t> buffer_lines;
    std::vector<std::uint32_t> filter_slots;
    std::vector<std::uint32_t> degrees;

    /** VM axis: nullopt = VM off for that grid point. */
    std::vector<std::optional<FrameAllocPolicy>> vm_policies;
    std::vector<std::uint64_t> vm_page_bytes;

    /** OS axis: nullopt = OS model off, value = frame-pool size. */
    std::vector<std::optional<std::uint64_t>> os_frames;

    /** Walker axis; only expanded for OS-enabled grid points. */
    std::vector<PageWalkerKind> os_walkers;

    /** Tenant axis: nullopt = single tenant, value = mix slots. */
    std::vector<std::optional<std::uint32_t>> tenant_slots;
    std::optional<std::uint64_t> accesses;
    std::optional<std::uint64_t> seed;
    unsigned threads = 0;
    double timeout_ms = 0.0;

    /** Warm-up cycles per job; > 0 enables warm-start sharing. */
    std::uint64_t warm_start_cycles = 0;

    /** On-disk warm-up snapshot cache; empty = in-memory only. */
    std::string snapshot_dir;

    /** Skip jobs whose result record already exists and is ok. */
    bool resume = false;

    std::string out_dir = "results/sweep";
    bool csv = false;
    bool quiet = false;
    bool telemetry = false;

    /** Tuner axis: also field a phase-adaptive variant of every
        eligible (ASD, MS/PMS) grid point. */
    bool tune = false;
};

void
usage()
{
    std::cout
        << "usage: asdsweep [options]\n"
           "  --suite NAME        spec|nas|commercial|detailed|all "
           "(repeatable; default detailed)\n"
           "  --bench NAME        single benchmark (repeatable)\n"
           "  --modes LIST        comma list of NP,PS,MS,PMS "
           "(default all four)\n"
           "  --prefetchers LIST  asd,nextline,p5,ghb,stride "
           "(default asd)\n"
           "  --buffer-lines LIST Prefetch Buffer sizes "
           "(default 16)\n"
           "  --filter-slots LIST Stream Filter sizes (default 8)\n"
           "  --degrees LIST      max prefetch degrees (default 1)\n"
           "  --vm-policies LIST  off,identity,seq,random,huge "
           "(default off)\n"
           "  --vm-page-bytes LIST\n"
           "                      base page sizes (default 4096; "
           "ignored for off/huge)\n"
           "  --os-frames LIST    off or frame-pool sizes; a size "
           "enables the OS\n"
           "                      memory model for that grid point "
           "(default off)\n"
           "  --os-walkers LIST   radix,hashed page-table walkers "
           "(default radix;\n"
           "                      expanded only for OS-enabled "
           "points)\n"
           "  --tenants LIST      off or tenant-mix slot counts "
           "(default off)\n"
           "  --accesses N        per-benchmark trace-length "
           "override\n"
           "  --seed N            trace-seed override for every job\n"
           "  --threads N         worker threads (default "
           "$ASD_SWEEP_THREADS or hardware)\n"
           "  --timeout-ms N      soft per-job wall-clock limit\n"
           "  --warm-start CYCLES warm every job up for CYCLES with "
           "the memory\n"
           "                      side disarmed; jobs sharing a "
           "warm-up simulate\n"
           "                      it once and fork the snapshot "
           "(results stay\n"
           "                      byte-identical to cold starts)\n"
           "  --snapshot-dir DIR  persist warm-up snapshots to DIR "
           "and reuse\n"
           "                      them across sweeps (default: "
           "in-memory only)\n"
           "  --resume            skip jobs whose <out> record "
           "already exists,\n"
           "                      parses, and reports status ok\n"
           "  --out DIR           result directory "
           "(default results/sweep)\n"
           "  --csv               also write <out>/sweep.csv\n"
           "  --telemetry         per-epoch telemetry per job under\n"
           "                      <out>/telemetry/ (ASD jobs only)\n"
           "  --tune              also run a phase-adaptive tuner "
           "variant of\n"
           "                      every ASD MS/PMS grid point "
           "(job id +.tune)\n"
           "  --quiet             no progress line\n";
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            parts.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

std::uint64_t
parseU64(const std::string &text, const std::string &flag)
{
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        fatal("invalid value for " + flag + ": " + text);
    }
}

std::vector<std::uint32_t>
parseU32List(const std::string &text, const std::string &flag)
{
    std::vector<std::uint32_t> values;
    for (const std::string &part : splitCommas(text)) {
        const std::uint64_t v = parseU64(part, flag);
        if (v == 0 || v > 1u << 20)
            fatal("out-of-range value for " + flag + ": " + part);
        values.push_back(static_cast<std::uint32_t>(v));
    }
    if (values.empty())
        fatal("empty list for " + flag);
    return values;
}

CliConfig
parseArgs(int argc, char **argv)
{
    CliConfig cli;
    const auto next = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc)
            fatal("missing value for " + flag);
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (arg == "--suite") {
            cli.suites.push_back(next(i, arg));
        } else if (arg == "--bench") {
            cli.bench_names.push_back(next(i, arg));
        } else if (arg == "--modes") {
            for (const std::string &m : splitCommas(next(i, arg))) {
                const auto mode = parsePrefetchMode(m);
                if (!mode)
                    fatal("unknown mode (use NP|PS|MS|PMS): " + m);
                cli.modes.push_back(*mode);
            }
        } else if (arg == "--prefetchers") {
            for (const std::string &p : splitCommas(next(i, arg))) {
                const auto kind = parseMcPrefetcherKind(p);
                if (!kind)
                    fatal("unknown prefetcher kind: " + p);
                cli.prefetchers.push_back(*kind);
            }
        } else if (arg == "--buffer-lines") {
            cli.buffer_lines = parseU32List(next(i, arg), arg);
        } else if (arg == "--filter-slots") {
            cli.filter_slots = parseU32List(next(i, arg), arg);
        } else if (arg == "--degrees") {
            cli.degrees = parseU32List(next(i, arg), arg);
        } else if (arg == "--vm-policies") {
            for (const std::string &p : splitCommas(next(i, arg))) {
                if (p == "off") {
                    cli.vm_policies.push_back(std::nullopt);
                    continue;
                }
                const auto policy = parseFrameAllocPolicy(p);
                if (!policy)
                    fatal("unknown VM policy (use "
                          "off|identity|seq|random|huge): " + p);
                cli.vm_policies.push_back(*policy);
            }
        } else if (arg == "--vm-page-bytes") {
            for (const std::string &p :
                 splitCommas(next(i, arg))) {
                const std::uint64_t v = parseU64(p, arg);
                if (v < 128 || v > (1ULL << 30))
                    fatal("out-of-range value for " + arg + ": " + p);
                cli.vm_page_bytes.push_back(v);
            }
            if (cli.vm_page_bytes.empty())
                fatal("empty list for " + arg);
        } else if (arg == "--os-frames") {
            for (const std::string &p : splitCommas(next(i, arg))) {
                if (p == "off") {
                    cli.os_frames.push_back(std::nullopt);
                    continue;
                }
                const std::uint64_t v = parseU64(p, arg);
                if (v == 0 || v > (1ULL << 32))
                    fatal("out-of-range value for " + arg + ": " + p);
                cli.os_frames.push_back(v);
            }
            if (cli.os_frames.empty())
                fatal("empty list for " + arg);
        } else if (arg == "--os-walkers") {
            for (const std::string &p : splitCommas(next(i, arg))) {
                const auto walker = parsePageWalkerKind(p);
                if (!walker)
                    fatal("unknown walker (use radix|hashed): " + p);
                cli.os_walkers.push_back(*walker);
            }
            if (cli.os_walkers.empty())
                fatal("empty list for " + arg);
        } else if (arg == "--tenants") {
            for (const std::string &p : splitCommas(next(i, arg))) {
                if (p == "off") {
                    cli.tenant_slots.push_back(std::nullopt);
                    continue;
                }
                const std::uint64_t v = parseU64(p, arg);
                if (v == 0 || v > 1024)
                    fatal("out-of-range value for " + arg + ": " + p);
                cli.tenant_slots.push_back(
                    static_cast<std::uint32_t>(v));
            }
            if (cli.tenant_slots.empty())
                fatal("empty list for " + arg);
        } else if (arg == "--accesses") {
            cli.accesses = parseU64(next(i, arg), arg);
        } else if (arg == "--seed") {
            cli.seed = parseU64(next(i, arg), arg);
        } else if (arg == "--threads") {
            cli.threads =
                static_cast<unsigned>(parseU64(next(i, arg), arg));
        } else if (arg == "--timeout-ms") {
            cli.timeout_ms =
                static_cast<double>(parseU64(next(i, arg), arg));
        } else if (arg == "--warm-start") {
            cli.warm_start_cycles = parseU64(next(i, arg), arg);
            if (cli.warm_start_cycles == 0)
                fatal("--warm-start needs a positive cycle count");
        } else if (arg == "--snapshot-dir") {
            cli.snapshot_dir = next(i, arg);
        } else if (arg == "--resume") {
            cli.resume = true;
        } else if (arg == "--out") {
            cli.out_dir = next(i, arg);
        } else if (arg == "--csv") {
            cli.csv = true;
        } else if (arg == "--telemetry") {
            cli.telemetry = true;
        } else if (arg == "--tune") {
            cli.tune = true;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (cli.modes.empty())
        cli.modes = {PrefetchMode::NP, PrefetchMode::PS,
                     PrefetchMode::MS, PrefetchMode::PMS};
    if (cli.prefetchers.empty())
        cli.prefetchers = {McPrefetcherKind::Asd};
    if (cli.buffer_lines.empty())
        cli.buffer_lines = {16};
    if (cli.filter_slots.empty())
        cli.filter_slots = {8};
    if (cli.degrees.empty())
        cli.degrees = {1};
    if (cli.vm_policies.empty())
        cli.vm_policies = {std::nullopt};
    if (cli.vm_page_bytes.empty())
        cli.vm_page_bytes = {4096};
    if (cli.os_frames.empty())
        cli.os_frames = {std::nullopt};
    if (cli.os_walkers.empty())
        cli.os_walkers = {PageWalkerKind::Radix};
    if (cli.tenant_slots.empty())
        cli.tenant_slots = {std::nullopt};
    if (cli.suites.empty() && cli.bench_names.empty())
        cli.suites = {"detailed"};
    return cli;
}

std::vector<Benchmark>
selectBenchmarks(const CliConfig &cli)
{
    std::vector<Benchmark> benches;
    const auto addSuite = [&](Suite suite) {
        for (const Benchmark &b : suiteBenchmarks(suite))
            benches.push_back(b);
    };
    for (const std::string &name : cli.suites) {
        if (name == "spec") {
            addSuite(Suite::Spec2006fp);
        } else if (name == "nas") {
            addSuite(Suite::Nas);
        } else if (name == "commercial") {
            addSuite(Suite::Commercial);
        } else if (name == "detailed") {
            for (const Benchmark &b : detailedStudyBenchmarks())
                benches.push_back(b);
        } else if (name == "all") {
            addSuite(Suite::Spec2006fp);
            addSuite(Suite::Nas);
            addSuite(Suite::Commercial);
        } else {
            fatal("unknown suite (use "
                  "spec|nas|commercial|detailed|all): " +
                  name);
        }
    }
    for (const std::string &name : cli.bench_names)
        benches.push_back(findBenchmark(name));
    return benches;
}

/**
 * Give @p job a custom body that mirrors the default one (seed
 * override + runBenchmark) but also captures the per-epoch telemetry
 * and writes it as <out>/telemetry/<id>.csv and <id>.trace.json.
 */
void
attachTelemetryBody(JobSpec &job, const std::string &out_dir)
{
    const std::string stem = out_dir + "/telemetry/" + job.id;
    job.body = [stem](const JobSpec &spec) {
        Benchmark bench = spec.bench;
        if (spec.seed)
            bench.trace.seed = *spec.seed;
        std::vector<EpochRecord> epochs;
        const RunMetrics metrics =
            runBenchmark(bench, spec.options, &epochs);
        saveTelemetryCsv(epochs, stem + ".csv");
        saveTelemetryChromeTrace(epochs, stem + ".trace.json");
        return metrics;
    };
}

/**
 * Give @p job a body that routes through TunedRun (runBenchmark
 * ignores options.tuner) and, when telemetry was also requested,
 * writes the tuned run's epochs the same way attachTelemetryBody
 * does for fixed-config jobs.
 */
void
attachTunerBody(JobSpec &job, const std::string &out_dir)
{
    const bool telemetry = job.options.telemetry.enabled;
    const std::string stem = out_dir + "/telemetry/" + job.id;
    job.body = [stem, telemetry](const JobSpec &spec) {
        Benchmark bench = spec.bench;
        if (spec.seed)
            bench.trace.seed = *spec.seed;
        TunedRun run(bench, spec.options);
        const TunedRunResult result = run.run();
        if (telemetry) {
            saveTelemetryCsv(result.epochs, stem + ".csv");
            saveTelemetryChromeTrace(result.epochs,
                                     stem + ".trace.json");
        }
        return result.metrics;
    };
}

std::vector<JobSpec>
buildJobs(const CliConfig &cli)
{
    std::vector<JobSpec> jobs;
    for (const Benchmark &bench : selectBenchmarks(cli)) {
        for (const PrefetchMode mode : cli.modes) {
            for (const McPrefetcherKind kind : cli.prefetchers) {
                for (const std::uint32_t pb : cli.buffer_lines) {
                    for (const std::uint32_t sf : cli.filter_slots) {
                        for (const std::uint32_t d : cli.degrees) {
                            for (const auto &vm : cli.vm_policies) {
                                // Page size only matters for enabled
                                // base-page policies; collapse the
                                // axis otherwise to avoid duplicate
                                // jobs.
                                const bool vary_pages =
                                    vm && *vm !=
                                              FrameAllocPolicy::
                                                  HugePage;
                                const std::size_t n_pages =
                                    vary_pages
                                        ? cli.vm_page_bytes.size()
                                        : 1;
                                for (std::size_t pi = 0;
                                     pi < n_pages; ++pi) {
                                  for (const auto &os :
                                       cli.os_frames) {
                                    // The OS model replaces the VM
                                    // layer's allocators; skip the
                                    // contradictory grid points.
                                    if (os && vm)
                                        continue;
                                    // Walkers only differentiate
                                    // OS-enabled machines; collapse
                                    // the axis otherwise.
                                    const std::size_t n_walkers =
                                        os ? cli.os_walkers.size()
                                           : 1;
                                    for (std::size_t wi = 0;
                                         wi < n_walkers; ++wi) {
                                     for (const auto &tenants :
                                          cli.tenant_slots) {
                                    RunOptions options;
                                    options.mode = mode;
                                    options.mc_prefetcher = kind;
                                    options.buffer_lines = pb;
                                    options.filter_slots = sf;
                                    options.max_degree = d;
                                    options.accesses = cli.accesses;
                                    options.warmup_cycles =
                                        cli.warm_start_cycles;
                                    if (vm) {
                                        options.vm.enabled = true;
                                        options.vm.policy = *vm;
                                        if (vary_pages)
                                            options.vm.page_bytes =
                                                cli.vm_page_bytes[pi];
                                    }
                                    if (os) {
                                        options.os.enabled = true;
                                        options.os.frames = *os;
                                        options.vm.walker =
                                            cli.os_walkers[wi];
                                    }
                                    if (tenants) {
                                        options.tenants.enabled =
                                            true;
                                        options.tenants.slots =
                                            *tenants;
                                    }
                                    if (cli.telemetry &&
                                        kind ==
                                            McPrefetcherKind::Asd) {
                                        options.telemetry.enabled =
                                            true;
                                    }
                                    JobSpec job = makeJob(
                                        bench, options, cli.seed);
                                    if (job.options.telemetry.enabled)
                                        attachTelemetryBody(
                                            job, cli.out_dir);
                                    jobs.push_back(std::move(job));
                                    // Tuner axis: a second, tuned
                                    // job per eligible grid point
                                    // (the tuner requires ASD on the
                                    // memory side).
                                    if (cli.tune &&
                                        kind ==
                                            McPrefetcherKind::Asd &&
                                        (mode == PrefetchMode::MS ||
                                         mode ==
                                             PrefetchMode::PMS)) {
                                        RunOptions tuned = options;
                                        tuned.tuner.enabled = true;
                                        JobSpec tuned_job = makeJob(
                                            bench, tuned, cli.seed);
                                        attachTunerBody(tuned_job,
                                                        cli.out_dir);
                                        jobs.push_back(
                                            std::move(tuned_job));
                                    }
                                     }
                                    }
                                  }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

void
printProgress(const SweepProgress &p)
{
    std::fprintf(stderr,
                 "\r[%zu/%zu] %5.1f%%  eta %6.1fs  last %s (%.0f ms)"
                 "\033[K",
                 p.done, p.total,
                 100.0 * static_cast<double>(p.done) /
                     static_cast<double>(p.total),
                 p.eta_ms / 1000.0, p.last_id.c_str(),
                 p.last_wall_ms);
    if (p.done == p.total)
        std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliConfig cli = parseArgs(argc, argv);
    std::vector<JobSpec> jobs = buildJobs(cli);
    if (jobs.empty())
        fatal("benchmark selection produced no jobs");

    JsonDirSink json_sink(cli.out_dir);
    if (cli.resume) {
        // Adopted records stay in the manifest; only the remainder
        // runs. (The optional CSV is rebuilt from scratch and covers
        // only the jobs that actually ran this time.)
        std::vector<JobSpec> pending;
        pending.reserve(jobs.size());
        for (JobSpec &job : jobs) {
            if (!json_sink.adoptExisting(job))
                pending.push_back(std::move(job));
        }
        jobs = std::move(pending);
        if (!cli.quiet && json_sink.skipped() > 0) {
            std::fprintf(stderr,
                         "resume: skipping %zu already-finished "
                         "job(s), %zu left to run\n",
                         json_sink.skipped(), jobs.size());
        }
    }

    std::vector<ResultSink *> sinks = {&json_sink};
    std::optional<CsvSink> csv_sink;
    if (cli.csv) {
        csv_sink.emplace(cli.out_dir + "/sweep.csv");
        sinks.push_back(&*csv_sink);
    }
    TeeSink tee(sinks);

    SweepOptions sweep;
    sweep.threads = cli.threads;
    sweep.default_timeout_ms = cli.timeout_ms;
    sweep.warm_start = cli.warm_start_cycles > 0;
    sweep.snapshot_dir = cli.snapshot_dir;
    sweep.sink = &tee;
    if (!cli.quiet && !jobs.empty())
        sweep.on_progress = printProgress;

    SweepRunner runner(sweep);
    const std::vector<JobResult> results = runner.run(jobs);
    const SweepSummary &summary = runner.lastSummary();

    if (!cli.quiet) {
        std::cout << summary.jobs << " jobs: " << summary.ok
                  << " ok, " << summary.failed << " failed, "
                  << summary.timed_out << " timed out";
        if (summary.warm_started > 0)
            std::cout << ", " << summary.warm_started
                      << " warm-started";
        if (json_sink.skipped() > 0)
            std::cout << " (+" << json_sink.skipped()
                      << " skipped on resume)";
        std::cout << " in " << summary.wall_ms / 1000.0 << " s on "
                  << summary.threads << " threads -> " << cli.out_dir
                  << "\n";
    }
    for (const JobResult &result : results) {
        if (result.status == JobStatus::Failed)
            warn("job " + result.spec.id + " failed: " +
                 result.error);
    }
    return summary.failed == 0 ? 0 : 1;
}
