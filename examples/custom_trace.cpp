/**
 * @file
 * End-to-end example of the trace-file workflow: synthesize a small
 * pointer-chasing-plus-streaming trace, write it to the binary trace
 * format, load it back through FileTraceSource, and simulate it in
 * the NP and PMS configurations. Use the same format to drive the
 * simulator with traces captured from real applications.
 *
 * Usage: custom_trace [path]   (default: /tmp/asd_custom_trace.bin)
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/table.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "trace/trace_file.hpp"

namespace
{

/**
 * Hand-rolled trace: four interleaved array sweeps (8 lines, 4
 * touches per line — the shape a blocked kernel produces) with
 * periodic pointer chases and store bursts.
 */
std::vector<asd::MemAccess>
buildTrace()
{
    using namespace asd;
    struct Sweep
    {
        Addr base = 0;
        Addr line = 0;
        int touches = 0;
    };

    std::vector<MemAccess> trace;
    Rng rng(2026);
    const Addr heap = 512ULL << 20;
    std::vector<Sweep> sweeps(4);
    for (auto &sweep : sweeps)
        sweep.base = rng.nextBelow(1ULL << 22) * 128;

    for (int round = 0; round < 2000; ++round) {
        for (auto &sweep : sweeps) {
            MemAccess access;
            access.addr = sweep.base + sweep.line * 128 +
                          rng.nextBelow(128);
            access.gap =
                static_cast<std::uint32_t>(rng.nextBelow(12));
            trace.push_back(access);
            if (++sweep.touches == 4) {
                sweep.touches = 0;
                if (++sweep.line == 8) {
                    sweep.line = 0;
                    sweep.base = rng.nextBelow(1ULL << 22) * 128;
                }
            }
        }
        if (round % 40 == 0) {
            // A short pointer chase through the "heap".
            for (int hop = 0; hop < 6; ++hop) {
                MemAccess access;
                access.addr = heap + rng.nextBelow(64ULL << 20);
                access.gap = 8;
                access.dependent = true;
                trace.push_back(access);
            }
            // A store burst over one sweep's block.
            for (int s = 0; s < 4; ++s) {
                MemAccess access;
                access.addr =
                    sweeps[0].base + rng.nextBelow(8 * 128);
                access.op = MemOp::Write;
                trace.push_back(access);
            }
        }
    }
    return trace;
}

asd::RunMetrics
simulate(const std::string &path, asd::PrefetchMode mode)
{
    asd::FileTraceSource source(path);
    asd::SystemConfig config;
    config.mode = mode;
    asd::System system(config, {&source});
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asd;

    const std::string path =
        argc > 1 ? argv[1] : "/tmp/asd_custom_trace.bin";

    const std::vector<MemAccess> trace = buildTrace();
    writeTraceFile(path, trace);
    std::cout << "wrote " << trace.size() << " accesses to " << path
              << "\n\n";

    const RunMetrics np = simulate(path, PrefetchMode::NP);
    const RunMetrics pms = simulate(path, PrefetchMode::PMS);

    Table table({"config", "cycles", "DRAM_W", "coverage%"});
    table.addRow({"NP", std::to_string(np.cycles),
                  Table::num(np.dram_watts, 2), Table::num(0.0)});
    table.addRow({"PMS", std::to_string(pms.cycles),
                  Table::num(pms.dram_watts, 2),
                  Table::num(pms.coverage_pct)});
    table.print(std::cout);
    std::cout << "\nspeedup of PMS over NP: "
              << Table::num(perfGainPct(np.cycles, pms.cycles))
              << "%\n";
    return 0;
}
