/**
 * @file
 * Quickstart: simulate one benchmark in the four configurations the
 * paper compares (NP, PS, MS, PMS) and print execution time, speedup,
 * and DRAM power/energy.
 *
 * Usage: quickstart [benchmark-name]   (default: GemsFDTD)
 */

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const asd::Benchmark &bench = asd::findBenchmark(name);

    std::cout << "Adaptive Stream Detection quickstart: " << name
              << "\n\n";

    asd::RunOptions options;
    options.mode = asd::PrefetchMode::NP;
    const asd::RunMetrics np = asd::runBenchmark(bench, options);

    asd::Table table({"config", "cycles", "speedup_vs_NP", "DRAM_W",
                      "DRAM_mJ", "coverage%", "useful%"});
    auto row = [&](const char *label, const asd::RunMetrics &m) {
        table.addRow({label, std::to_string(m.cycles),
                      asd::Table::num(asd::perfGainPct(np.cycles,
                                                       m.cycles)),
                      asd::Table::num(m.dram_watts, 2),
                      asd::Table::num(m.dram_energy_mj, 2),
                      asd::Table::num(m.coverage_pct),
                      asd::Table::num(m.useful_prefetch_pct)});
    };
    row("NP", np);
    options.mode = asd::PrefetchMode::PS;
    row("PS", asd::runBenchmark(bench, options));
    options.mode = asd::PrefetchMode::MS;
    row("MS", asd::runBenchmark(bench, options));
    options.mode = asd::PrefetchMode::PMS;
    row("PMS", asd::runBenchmark(bench, options));

    table.print(std::cout);
    std::cout << "\nPMS = processor-side + ASD memory-side "
                 "prefetching (paper's best configuration).\n";
    return 0;
}
