/**
 * @file
 * Prefetcher bake-off driver: run every selected contender from the
 * prefetcher registry across workload suites under identical machine
 * conditions and emit a ranked report. Writes <out>/bakeoff.json
 * (schema "asdbakeoff/v1") and <out>/leaderboard.md, prints the
 * leaderboard, and exits non-zero if any job failed. The two report
 * files are byte-identical across runs and thread counts.
 *
 * Usage:
 *   asdbakeoff [--suites spec,nas,commercial] [--bench NAME]...
 *              [--prefetchers asd,dspatch,...] [--vm] [--os]
 *              [--accesses N] [--warm-start CYCLES] [--threads N]
 *              [--out DIR] [--resume] [--list] [--quiet]
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arena/bakeoff.hpp"
#include "arena/report.hpp"
#include "common/log.hpp"

namespace
{

using namespace asd;

struct CliConfig
{
    BakeoffOptions bakeoff;
    std::string out_dir = "results/bakeoff";
    bool list = false;
    bool quiet = false;
};

void
usage()
{
    std::cout
        << "usage: asdbakeoff [options]\n"
           "  --suites LIST       comma list of spec,nas,commercial "
           "(default all three)\n"
           "  --bench NAME        extra benchmark by name "
           "(repeatable; with --suites none,\n"
           "                      these are the whole grid)\n"
           "  --prefetchers LIST  contender registry names "
           "(default: every registered one;\n"
           "                      see --list)\n"
           "  --vm                also run every workload with 4 KiB "
           "random-placement VM\n"
           "  --os                also run every workload under the "
           "OS memory model\n"
           "                      (demand paging, finite frames, "
           "CLOCK reclaim)\n"
           "  --accesses N        per-benchmark trace-length "
           "override\n"
           "  --warm-start CYCLES warm-up cycles shared across "
           "contenders per workload\n"
           "                      (default 20000; 0 disables "
           "snapshot sharing)\n"
           "  --threads N         worker threads (default hardware)\n"
           "  --out DIR           report + per-job records + warm-up "
           "snapshots\n"
           "                      (default results/bakeoff)\n"
           "  --resume            adopt ok per-job records already "
           "under --out\n"
           "  --list              print the prefetcher registry and "
           "exit\n"
           "  --quiet             no progress line\n";
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            parts.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

std::uint64_t
parseU64(const std::string &text, const std::string &flag)
{
    try {
        std::size_t pos = 0;
        const unsigned long long v = std::stoull(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
        return v;
    } catch (const std::exception &) {
        fatal("invalid value for " + flag + ": " + text);
    }
}

std::vector<Suite>
parseSuites(const std::string &text)
{
    std::vector<Suite> suites;
    for (const std::string &name : splitCommas(text)) {
        if (name == "spec")
            suites.push_back(Suite::Spec2006fp);
        else if (name == "nas")
            suites.push_back(Suite::Nas);
        else if (name == "commercial")
            suites.push_back(Suite::Commercial);
        else if (name == "none")
            ; // suites cleared; grid comes from --bench
        else
            fatal("unknown suite (use spec|nas|commercial|none): " +
                  name);
    }
    return suites;
}

CliConfig
parseArgs(int argc, char **argv)
{
    CliConfig cli;
    const auto next = [&](int &i, const std::string &flag) {
        if (i + 1 >= argc)
            fatal("missing value for " + flag);
        return std::string(argv[++i]);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (arg == "--suites") {
            cli.bakeoff.suites = parseSuites(next(i, arg));
        } else if (arg == "--bench") {
            cli.bakeoff.benchmarks.push_back(next(i, arg));
        } else if (arg == "--prefetchers") {
            cli.bakeoff.prefetchers = splitCommas(next(i, arg));
        } else if (arg == "--vm") {
            cli.bakeoff.vm_axis = true;
        } else if (arg == "--os") {
            cli.bakeoff.os_axis = true;
        } else if (arg == "--accesses") {
            cli.bakeoff.accesses = parseU64(next(i, arg), arg);
        } else if (arg == "--warm-start") {
            cli.bakeoff.warmup_cycles = parseU64(next(i, arg), arg);
        } else if (arg == "--threads") {
            cli.bakeoff.threads = static_cast<unsigned>(
                parseU64(next(i, arg), arg));
        } else if (arg == "--out") {
            cli.out_dir = next(i, arg);
        } else if (arg == "--resume") {
            cli.bakeoff.resume = true;
        } else if (arg == "--list") {
            cli.list = true;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    return cli;
}

void
printRegistry()
{
    for (const PrefetcherInfo &info :
         PrefetcherRegistry::instance().all()) {
        std::printf("%-12s %-9s %s\n", info.name.c_str(),
                    toString(info.side).c_str(),
                    info.description.c_str());
    }
}

void
printProgress(const SweepProgress &p)
{
    std::fprintf(stderr,
                 "\r[%zu/%zu] %5.1f%%  eta %6.1fs  last %s (%.0f ms)"
                 "\033[K",
                 p.done, p.total,
                 100.0 * static_cast<double>(p.done) /
                     static_cast<double>(p.total),
                 p.eta_ms / 1000.0, p.last_id.c_str(),
                 p.last_wall_ms);
    if (p.done == p.total)
        std::fprintf(stderr, "\n");
}

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path.string());
    out << text;
}

} // namespace

int
main(int argc, char **argv)
{
    CliConfig cli = parseArgs(argc, argv);
    if (cli.list) {
        printRegistry();
        return 0;
    }
    cli.bakeoff.out_dir = cli.out_dir;
    if (!cli.quiet)
        cli.bakeoff.on_progress = printProgress;

    BakeoffRunner runner(std::move(cli.bakeoff));
    const BakeoffResult result = runner.run();

    const std::filesystem::path out(cli.out_dir);
    std::filesystem::create_directories(out);
    writeFile(out / "bakeoff.json", bakeoffJson(result) + "\n");
    const std::string markdown = bakeoffMarkdown(result);
    writeFile(out / "leaderboard.md", markdown);

    if (!cli.quiet) {
        std::cout << markdown;
        std::cout << "\n"
                  << result.summary.ok << " ok, "
                  << result.summary.failed << " failed";
        if (result.summary.warm_started > 0)
            std::cout << ", " << result.summary.warm_started
                      << " warm-started";
        if (result.adopted > 0)
            std::cout << " (+" << result.adopted
                      << " adopted on resume)";
        std::cout << " -> " << cli.out_dir << "\n";
    }

    std::size_t failed_cells = 0;
    for (const BakeoffCell &cell : result.cells)
        failed_cells += cell.status == JobStatus::Ok ? 0 : 1;
    return result.summary.failed == 0 && failed_cells == 0 ? 0 : 1;
}
