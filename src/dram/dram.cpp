#include "dram/dram.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace asd
{

Dram::Dram(const DramConfig &config)
    : config_(config),
      banks_(static_cast<std::size_t>(config.totalBanks()) *
             config.channels),
      next_refresh_(static_cast<std::size_t>(config.ranks) *
                        config.channels,
                    config.t_refi * config.cpu_per_dram_clk),
      rank_blocked_to_(static_cast<std::size_t>(config.ranks) *
                           config.channels,
                       0),
      bus_free_at_(config.channels, 0)
{
    panicIfNot(config_.ranks > 0 && config_.banks_per_rank > 0,
               "Dram: need at least one rank and bank");
    panicIfNot(config_.channels > 0, "Dram: need at least one channel");
    panicIfNot(config_.row_bytes % config_.line_bytes == 0,
               "Dram: row size must be a multiple of the line size");
}

Cycles
Dram::inCpu(std::uint32_t dram_clocks) const
{
    return static_cast<Cycles>(dram_clocks) * config_.cpu_per_dram_clk;
}

DramCoord
Dram::decode(LineAddr line) const
{
    const std::uint32_t lines_per_row = config_.linesPerRow();
    const std::uint32_t total_banks =
        config_.totalBanks() * config_.channels;
    DramCoord coord;

    // Bank indices stripe channel-major so consecutive bank units hit
    // alternate channels (and with them, independent data buses).
    const auto split = [&](std::uint32_t bank_global) {
        coord.bank = bank_global;
        coord.channel = bank_global % config_.channels;
        const std::uint32_t in_channel =
            bank_global / config_.channels;
        coord.rank = in_channel / config_.banks_per_rank;
    };

    switch (config_.addr_map) {
      case AddrMap::LineInterleaved: {
        // Consecutive lines stripe across all banks and channels.
        split(narrow<std::uint32_t>(line % total_banks));
        const std::uint64_t unit = line / total_banks;
        coord.col = narrow<std::uint32_t>(unit % lines_per_row);
        coord.row = unit / lines_per_row;
        return coord;
      }
      case AddrMap::PageInterleaved:
      case AddrMap::XorPage: {
        // A full row of lines per bank, then the next bank — the
        // open-page mapping the Power5+ controller uses.
        coord.col = narrow<std::uint32_t>(line % lines_per_row);
        const std::uint64_t row_unit = line / lines_per_row;
        std::uint32_t bank_global =
            narrow<std::uint32_t>(row_unit % total_banks);
        coord.row = row_unit / total_banks;
        if (config_.addr_map == AddrMap::XorPage) {
            // Permutation-based interleaving: fold low row bits into
            // the bank index.
            bank_global = narrow<std::uint32_t>(
                (bank_global ^ coord.row) % total_banks);
        }
        split(bank_global);
        return coord;
      }
    }
    panic("unknown address map");
}

bool
Dram::canIssue(LineAddr line, Cycle now) const
{
    const DramCoord coord = decode(line);
    const std::size_t refresh_unit =
        coord.channel * config_.ranks + coord.rank;
    if (config_.refresh_enabled && rank_blocked_to_[refresh_unit] > now)
        return false;
    return banks_[coord.bank].ready_at <= now;
}

bool
Dram::bankConflict(LineAddr a, LineAddr b) const
{
    const DramCoord ca = decode(a);
    const DramCoord cb = decode(b);
    return ca.bank == cb.bank && ca.row != cb.row;
}

BankOccupant
Dram::occupant(LineAddr line, Cycle now) const
{
    const DramCoord coord = decode(line);
    const Bank &bank = banks_[coord.bank];
    if (bank.ready_at <= now)
        return BankOccupant::None;
    return bank.occupant;
}

Cycle
Dram::bankReadyAt(LineAddr line) const
{
    return banks_[decode(line).bank].ready_at;
}

bool
Dram::rowOpen(LineAddr line) const
{
    const DramCoord coord = decode(line);
    const Bank &bank = banks_[coord.bank];
    return bank.open && bank.open_row == coord.row;
}

Cycle
Dram::applyRefresh(std::uint32_t refresh_unit, Cycle start)
{
    if (!config_.refresh_enabled)
        return start;
    // Lazy refresh: when a command finds the rank past its refresh
    // deadline, charge the refresh first and push the command behind
    // the tRFC window.
    while (start >= next_refresh_[refresh_unit]) {
        const Cycle refresh_start =
            std::max(next_refresh_[refresh_unit],
                     rank_blocked_to_[refresh_unit]);
        rank_blocked_to_[refresh_unit] =
            refresh_start + inCpu(config_.t_rfc);
        next_refresh_[refresh_unit] += inCpu(config_.t_refi);
        refreshes_.inc();
    }
    return std::max(start, rank_blocked_to_[refresh_unit]);
}

Cycle
Dram::issue(LineAddr line, bool is_write, bool is_prefetch, Cycle now)
{
    const DramCoord coord = decode(line);
    Bank &bank = banks_[coord.bank];

    Cycle start = std::max(now, bank.ready_at);
    start = applyRefresh(coord.channel * config_.ranks + coord.rank,
                         start);

    Cycle col_start;
    if (!bank.open) {
        // ACT then column command.
        bank.activated_at = start;
        bank.open = true;
        bank.open_row = coord.row;
        col_start = start + inCpu(config_.t_rcd);
        activates_.inc();
        row_misses_.inc();
    } else if (bank.open_row == coord.row) {
        col_start = start;
        row_hits_.inc();
    } else {
        // Precharge (respecting tRAS), then ACT, then column command.
        const Cycle pre_start =
            std::max(start, bank.activated_at + inCpu(config_.t_ras));
        const Cycle act_start = pre_start + inCpu(config_.t_rp);
        bank.activated_at = act_start;
        bank.open_row = coord.row;
        col_start = act_start + inCpu(config_.t_rcd);
        activates_.inc();
        row_misses_.inc();
    }

    const Cycles access = inCpu(is_write ? config_.t_cwl : config_.t_cl);
    Cycle &bus_free = bus_free_at_[coord.channel];
    Cycle data_start = std::max(col_start + access, bus_free);
    const Cycle done = data_start + inCpu(config_.t_burst);
    bus_free = done;

    // Column commands to the same open row pipeline at the CAS-to-CAS
    // gap (one burst), not at the full data-return latency; the data
    // bus model above provides the global serialization. Writes add
    // the write-recovery window before the bank may precharge or read.
    const Cycle cas_issued = data_start - access;
    bank.ready_at = cas_issued + inCpu(config_.t_burst);
    if (is_write)
        bank.ready_at = std::max(bank.ready_at,
                                 done + inCpu(config_.t_wr));

    if (config_.page_policy == PagePolicy::Closed) {
        // Auto-precharge: the row closes after the access; the bank
        // accepts a fresh ACT once tRAS and tRP are honored.
        bank.open = false;
        bank.ready_at = std::max(
            bank.ready_at,
            bank.activated_at + inCpu(config_.t_ras) +
                inCpu(config_.t_rp));
    }
    bank.occupant = is_prefetch ? BankOccupant::Prefetch
                                : BankOccupant::Regular;

    if (is_write)
        writes_.inc();
    else
        reads_.inc();
    return done;
}

void
Dram::saveState(SnapshotWriter &w) const
{
    w.u64(banks_.size());
    for (const Bank &bank : banks_) {
        w.b(bank.open);
        w.u64(bank.open_row);
        w.u64(bank.ready_at);
        w.u64(bank.activated_at);
        w.u8(static_cast<std::uint8_t>(bank.occupant));
    }
    w.vecU64(next_refresh_);
    w.vecU64(rank_blocked_to_);
    w.vecU64(bus_free_at_);
    w.u64(activates_.value());
    w.u64(reads_.value());
    w.u64(writes_.value());
    w.u64(refreshes_.value());
    w.u64(row_hits_.value());
    w.u64(row_misses_.value());
}

void
Dram::loadState(SnapshotReader &r)
{
    SnapshotReader::check(r.u64() == banks_.size(),
                          "dram bank geometry mismatch");
    for (Bank &bank : banks_) {
        bank.open = r.b();
        bank.open_row = r.u64();
        bank.ready_at = r.u64();
        bank.activated_at = r.u64();
        const std::uint8_t occ = r.u8();
        SnapshotReader::check(
            occ <= static_cast<std::uint8_t>(BankOccupant::Prefetch),
            "dram bank occupant out of range");
        bank.occupant = static_cast<BankOccupant>(occ);
    }
    const auto load_vec = [&r](std::vector<Cycle> &vec,
                               const char *what) {
        const std::vector<std::uint64_t> values = r.vecU64();
        SnapshotReader::check(values.size() == vec.size(), what);
        vec.assign(values.begin(), values.end());
    };
    load_vec(next_refresh_, "dram refresh-unit count mismatch");
    load_vec(rank_blocked_to_, "dram rank count mismatch");
    load_vec(bus_free_at_, "dram channel count mismatch");
    activates_.restore(r.u64());
    reads_.restore(r.u64());
    writes_.restore(r.u64());
    refreshes_.restore(r.u64());
    row_hits_.restore(r.u64());
    row_misses_.restore(r.u64());
}

void
Dram::registerStats(StatRegistry &registry) const
{
    registry.add("dram.activates", activates_);
    registry.add("dram.reads", reads_);
    registry.add("dram.writes", writes_);
    registry.add("dram.refreshes", refreshes_);
    registry.add("dram.row_hits", row_hits_);
    registry.add("dram.row_misses", row_misses_);
}

} // namespace asd
