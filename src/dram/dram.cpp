#include "dram/dram.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace asd
{

Dram::Dram(const DramConfig &config)
    : config_(config),
      banks_(static_cast<std::size_t>(config.totalBanks()) *
             config.channels),
      next_refresh_(static_cast<std::size_t>(config.ranks) *
                        config.channels,
                    config.t_refi * config.cpu_per_dram_clk),
      rank_blocked_to_(static_cast<std::size_t>(config.ranks) *
                           config.channels,
                       0),
      bus_free_at_(config.channels, 0)
{
    panicIfNot(config_.ranks > 0 && config_.banks_per_rank > 0,
               "Dram: need at least one rank and bank");
    panicIfNot(config_.channels > 0, "Dram: need at least one channel");
    panicIfNot(config_.row_bytes % config_.line_bytes == 0,
               "Dram: row size must be a multiple of the line size");
}

Cycles
Dram::inCpu(std::uint32_t dram_clocks) const
{
    return static_cast<Cycles>(dram_clocks) * config_.cpu_per_dram_clk;
}

DramCoord
Dram::decode(LineAddr line) const
{
    const std::uint32_t lines_per_row = config_.linesPerRow();
    const std::uint32_t total_banks =
        config_.totalBanks() * config_.channels;
    DramCoord coord;

    // Bank indices stripe channel-major so consecutive bank units hit
    // alternate channels (and with them, independent data buses).
    const auto split = [&](std::uint32_t bank_global) {
        coord.bank = bank_global;
        coord.channel = bank_global % config_.channels;
        const std::uint32_t in_channel =
            bank_global / config_.channels;
        coord.rank = in_channel / config_.banks_per_rank;
    };

    switch (config_.addr_map) {
      case AddrMap::LineInterleaved: {
        // Consecutive lines stripe across all banks and channels.
        split(narrow<std::uint32_t>(line % total_banks));
        const std::uint64_t unit = line / total_banks;
        coord.col = narrow<std::uint32_t>(unit % lines_per_row);
        coord.row = unit / lines_per_row;
        return coord;
      }
      case AddrMap::PageInterleaved:
      case AddrMap::XorPage: {
        // A full row of lines per bank, then the next bank — the
        // open-page mapping the Power5+ controller uses.
        coord.col = narrow<std::uint32_t>(line % lines_per_row);
        const std::uint64_t row_unit = line / lines_per_row;
        std::uint32_t bank_global =
            narrow<std::uint32_t>(row_unit % total_banks);
        coord.row = row_unit / total_banks;
        if (config_.addr_map == AddrMap::XorPage) {
            // Permutation-based interleaving: fold low row bits into
            // the bank index.
            bank_global = narrow<std::uint32_t>(
                (bank_global ^ coord.row) % total_banks);
        }
        split(bank_global);
        return coord;
      }
    }
    panic("unknown address map");
}

bool
Dram::canIssue(LineAddr line, Cycle now) const
{
    const DramCoord coord = decode(line);
    const std::size_t refresh_unit =
        coord.channel * config_.ranks + coord.rank;
    if (config_.refresh_enabled && rank_blocked_to_[refresh_unit] > now)
        return false;
    return banks_[coord.bank].ready_at <= now;
}

bool
Dram::bankConflict(LineAddr a, LineAddr b) const
{
    const DramCoord ca = decode(a);
    const DramCoord cb = decode(b);
    return ca.bank == cb.bank && ca.row != cb.row;
}

BankOccupant
Dram::occupant(LineAddr line, Cycle now) const
{
    const DramCoord coord = decode(line);
    const Bank &bank = banks_[coord.bank];
    if (bank.ready_at <= now)
        return BankOccupant::None;
    return bank.occupant;
}

Cycle
Dram::bankReadyAt(LineAddr line) const
{
    return banks_[decode(line).bank].ready_at;
}

bool
Dram::rowOpen(LineAddr line) const
{
    const DramCoord coord = decode(line);
    const Bank &bank = banks_[coord.bank];
    return bank.open && bank.open_row == coord.row;
}

Cycle
Dram::applyRefresh(std::uint32_t refresh_unit, Cycle start)
{
    if (!config_.refresh_enabled)
        return start;
    // Lazy refresh: when a command finds the rank past its refresh
    // deadline, charge the refresh first and push the command behind
    // the tRFC window.
    while (start >= next_refresh_[refresh_unit]) {
        const Cycle refresh_start =
            std::max(next_refresh_[refresh_unit],
                     rank_blocked_to_[refresh_unit]);
        rank_blocked_to_[refresh_unit] =
            refresh_start + inCpu(config_.t_rfc);
        next_refresh_[refresh_unit] += inCpu(config_.t_refi);
        refreshes_.inc();
    }
    return std::max(start, rank_blocked_to_[refresh_unit]);
}

Cycle
Dram::issue(LineAddr line, bool is_write, bool is_prefetch, Cycle now)
{
    const DramCoord coord = decode(line);
    Bank &bank = banks_[coord.bank];

    Cycle start = std::max(now, bank.ready_at);
    start = applyRefresh(coord.channel * config_.ranks + coord.rank,
                         start);

    Cycle col_start;
    if (!bank.open) {
        // ACT then column command.
        bank.activated_at = start;
        bank.open = true;
        bank.open_row = coord.row;
        col_start = start + inCpu(config_.t_rcd);
        activates_.inc();
        row_misses_.inc();
    } else if (bank.open_row == coord.row) {
        col_start = start;
        row_hits_.inc();
    } else {
        // Precharge (respecting tRAS), then ACT, then column command.
        const Cycle pre_start =
            std::max(start, bank.activated_at + inCpu(config_.t_ras));
        const Cycle act_start = pre_start + inCpu(config_.t_rp);
        bank.activated_at = act_start;
        bank.open_row = coord.row;
        col_start = act_start + inCpu(config_.t_rcd);
        activates_.inc();
        row_misses_.inc();
    }

    const Cycles access = inCpu(is_write ? config_.t_cwl : config_.t_cl);
    Cycle &bus_free = bus_free_at_[coord.channel];
    Cycle data_start = std::max(col_start + access, bus_free);
    const Cycle done = data_start + inCpu(config_.t_burst);
    bus_free = done;

    // Column commands to the same open row pipeline at the CAS-to-CAS
    // gap (one burst), not at the full data-return latency; the data
    // bus model above provides the global serialization. Writes add
    // the write-recovery window before the bank may precharge or read.
    const Cycle cas_issued = data_start - access;
    bank.ready_at = cas_issued + inCpu(config_.t_burst);
    if (is_write)
        bank.ready_at = std::max(bank.ready_at,
                                 done + inCpu(config_.t_wr));

    if (config_.page_policy == PagePolicy::Closed) {
        // Auto-precharge: the row closes after the access; the bank
        // accepts a fresh ACT once tRAS and tRP are honored.
        bank.open = false;
        bank.ready_at = std::max(
            bank.ready_at,
            bank.activated_at + inCpu(config_.t_ras) +
                inCpu(config_.t_rp));
    }
    bank.occupant = is_prefetch ? BankOccupant::Prefetch
                                : BankOccupant::Regular;

    if (is_write)
        writes_.inc();
    else
        reads_.inc();
    return done;
}

void
Dram::registerStats(StatRegistry &registry) const
{
    registry.add("dram.activates", activates_);
    registry.add("dram.reads", reads_);
    registry.add("dram.writes", writes_);
    registry.add("dram.refreshes", refreshes_);
    registry.add("dram.row_hits", row_hits_);
    registry.add("dram.row_misses", row_misses_);
}

} // namespace asd
