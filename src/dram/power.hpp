#ifndef ASD_DRAM_POWER_HPP
#define ASD_DRAM_POWER_HPP

/**
 * @file
 * Micron-style DRAM power/energy accounting (the Memsim stand-in for
 * the paper's Figs. 8-10). Energy = background power x wall time +
 * per-event energies taken from the Dram command counters.
 */

#include "common/types.hpp"
#include "dram/dram.hpp"

namespace asd
{

/** Energy/power breakdown for one simulation. */
struct PowerReport
{
    PicoJoule background_pj = 0.0;
    PicoJoule activate_pj = 0.0;
    PicoJoule read_pj = 0.0;
    PicoJoule write_pj = 0.0;
    PicoJoule refresh_pj = 0.0;

    /** Total energy in picojoules. */
    PicoJoule
    totalPj() const
    {
        return background_pj + activate_pj + read_pj + write_pj +
               refresh_pj;
    }

    /** Average power in watts given the CPU frequency. */
    double
    averageWatts(Cycle elapsed_cycles, double cpu_hz) const
    {
        if (elapsed_cycles == 0)
            return 0.0;
        const double seconds =
            static_cast<double>(elapsed_cycles) / cpu_hz;
        return totalPj() * 1e-12 / seconds;
    }

    /** Exact comparison (determinism checks in the sweep runner). */
    bool operator==(const PowerReport &) const = default;
};

/** Computes a PowerReport from the DRAM's event counters. */
class PowerModel
{
  public:
    explicit PowerModel(const DramConfig &config) : config_(config) {}

    /**
     * Account a finished run.
     * @param dram the channel whose counters to read.
     * @param elapsed_cycles simulated CPU cycles.
     */
    PowerReport report(const Dram &dram, Cycle elapsed_cycles) const;

  private:
    DramConfig config_;
};

} // namespace asd

#endif // ASD_DRAM_POWER_HPP
