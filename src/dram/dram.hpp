#ifndef ASD_DRAM_DRAM_HPP
#define ASD_DRAM_DRAM_HPP

/**
 * @file
 * Command-level DDR2 model: per-bank open-row state machines, a shared
 * data bus, periodic refresh, and event counters feeding the power
 * model. This is the Memsim stand-in described in DESIGN.md.
 */

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/dram_config.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** Who last occupied a bank; used for prefetch-conflict feedback. */
enum class BankOccupant : std::uint8_t { None, Regular, Prefetch };

/** Decoded DRAM coordinates of a line address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;   //!< rank within the channel
    std::uint32_t bank = 0;   //!< global bank index (channel+rank folded)
    std::uint64_t row = 0;
    std::uint32_t col = 0;    //!< line-within-row

    bool
    operator==(const DramCoord &other) const = default;
};

/**
 * The DDR2 channel. The memory controller calls issue() when the FIFO
 * head of the CAQ (or an LPQ prefetch) is sent to memory; the model
 * returns the cycle at which the data transfer completes.
 */
class Dram : public Snapshottable
{
  public:
    explicit Dram(const DramConfig &config);

    /** Map a line address onto (rank, bank, row, col). */
    DramCoord decode(LineAddr line) const;

    /**
     * True when the command's bank can accept a new command at @p now
     * (no wait beyond bus arbitration). This is the "issuable"
     * predicate used by the reorder-queue schedulers.
     */
    bool canIssue(LineAddr line, Cycle now) const;

    /** True when the two lines target the same bank but another row. */
    bool bankConflict(LineAddr a, LineAddr b) const;

    /**
     * Occupant of the line's bank at @p now; BankOccupant::None when
     * the bank is idle.
     */
    BankOccupant occupant(LineAddr line, Cycle now) const;

    /**
     * Issue a read or write burst for @p line.
     * @param is_write write burst when true.
     * @param is_prefetch marks the bank occupant for conflict feedback.
     * @param now issue cycle (CPU cycles).
     * @return cycle at which the last data beat transfers.
     */
    Cycle issue(LineAddr line, bool is_write, bool is_prefetch, Cycle now);

    /** Earliest cycle the line's bank becomes ready. */
    Cycle bankReadyAt(LineAddr line) const;

    /** True when the line's row is open in its bank (a row hit). */
    bool rowOpen(LineAddr line) const;

    /** Register counters under "dram." in @p registry. */
    void registerStats(StatRegistry &registry) const;

    // Event counters for the power model and tests.
    std::uint64_t activates() const { return activates_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }
    std::uint64_t rowHits() const { return row_hits_.value(); }
    std::uint64_t rowMisses() const { return row_misses_.value(); }

    const DramConfig &config() const { return config_; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct Bank
    {
        bool open = false;
        std::uint64_t open_row = 0;
        Cycle ready_at = 0;     //!< earliest next command start
        Cycle activated_at = 0; //!< for tRAS accounting
        BankOccupant occupant = BankOccupant::None;
    };

    /** Advance the refresh machinery for one rank of one channel. */
    Cycle applyRefresh(std::uint32_t refresh_unit, Cycle start);

    Cycles inCpu(std::uint32_t dram_clocks) const;

    DramConfig config_;
    std::vector<Bank> banks_;
    std::vector<Cycle> next_refresh_;     //!< per (channel, rank)
    std::vector<Cycle> rank_blocked_to_;  //!< per (channel, rank)
    std::vector<Cycle> bus_free_at_;      //!< per channel

    Counter activates_;
    Counter reads_;
    Counter writes_;
    Counter refreshes_;
    Counter row_hits_;
    Counter row_misses_;
};

} // namespace asd

#endif // ASD_DRAM_DRAM_HPP
