#ifndef ASD_DRAM_DRAM_CONFIG_HPP
#define ASD_DRAM_DRAM_CONFIG_HPP

/**
 * @file
 * Configuration for the DDR2-533 main-memory model behind the
 * Power5+-like memory controller. All timing fields are expressed in
 * DRAM clocks and converted to CPU cycles internally (the paper's
 * system runs the CPU at 2.132 GHz with DDR2-533, i.e. 8 CPU cycles
 * per 266 MHz DRAM clock).
 */

#include <cstdint>

namespace asd
{

/** How line addresses map onto (rank, bank, row, column). */
enum class AddrMap : std::uint8_t
{
    /**
     * Page-interleaved (default): a full row of lines per bank, then
     * the next bank — streams enjoy row hits while spreading across
     * banks at page granularity (the open-page mapping of the
     * Power5+ controller).
     */
    PageInterleaved,

    /**
     * Line-interleaved: consecutive lines hit consecutive banks —
     * maximum bank parallelism for streams, but every access opens
     * its own row.
     */
    LineInterleaved,

    /**
     * Page-interleaved with the bank index XOR-folded with low row
     * bits (permutation-based interleaving) to break pathological
     * bank conflicts between same-stride streams.
     */
    XorPage,
};

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    /** Keep rows open until a conflicting access (default). */
    Open,

    /**
     * Auto-precharge after every column access: every access pays
     * activation, none pays a precharge-on-conflict. Better for
     * low-locality access streams.
     */
    Closed,
};

/** DDR2 geometry, timing and energy parameters. */
struct DramConfig
{
    AddrMap addr_map = AddrMap::PageInterleaved;
    PagePolicy page_policy = PagePolicy::Open;

    /**
     * Independent memory channels; lines interleave across channels
     * at page granularity. Each channel has its own data bus and
     * banks (the Power5+ SMI interface aggregates two).
     */
    std::uint32_t channels = 1;

    /** CPU cycles per DRAM clock (2.132 GHz / 266 MHz = 8). */
    std::uint32_t cpu_per_dram_clk = 8;

    /** Independent ranks on the channel. */
    std::uint32_t ranks = 2;

    /** Banks per rank. */
    std::uint32_t banks_per_rank = 8;

    /** Row (page) size in bytes. */
    std::uint32_t row_bytes = 8192;

    /** Cache line size transferred per burst. */
    std::uint32_t line_bytes = 128;

    // --- timing, in DRAM clocks (DDR2-533 4-4-4-12) ---
    std::uint32_t t_rcd = 4;   //!< ACT to column command
    std::uint32_t t_cl = 4;    //!< read column to first data
    std::uint32_t t_cwl = 3;   //!< write column to first data
    std::uint32_t t_rp = 4;    //!< precharge
    std::uint32_t t_ras = 12;  //!< ACT to precharge minimum
    std::uint32_t t_wr = 4;    //!< write recovery
    /**
     * Data-bus occupancy of one 128 B line. The Power5+ reads from
     * two 8 B DDR2-533 channels in parallel (~8.5 GB/s), so a line
     * occupies the effective 16 B-wide data path for 8 beats =
     * 4 DRAM clocks.
     */
    std::uint32_t t_burst = 4;
    std::uint32_t t_rfc = 26;  //!< refresh cycle time
    std::uint32_t t_refi = 2080; //!< average refresh interval (7.8 us)

    /** Enable the periodic refresh model. */
    bool refresh_enabled = true;

    // --- energy model, picojoules per event / per CPU cycle ---
    double e_activate_pj = 6000.0; //!< ACT+PRE pair, whole rank
    double e_read_pj = 4200.0;     //!< read burst incl. I/O
    double e_write_pj = 4600.0;    //!< write burst incl. I/O
    double e_refresh_pj = 14000.0; //!< one all-bank refresh
    /**
     * Standby/PLL power of all ranks: ~1.2 W at 2.132 GHz, i.e.
     * ~560 pJ per CPU cycle (DDR2 registered DIMM ballpark).
     */
    double p_background_pj_per_cpu_cycle = 560.0;

    /** Total lines addressable (derived helpers below). */
    std::uint32_t
    linesPerRow() const
    {
        return row_bytes / line_bytes;
    }

    std::uint32_t
    totalBanks() const
    {
        return ranks * banks_per_rank;
    }
};

} // namespace asd

#endif // ASD_DRAM_DRAM_CONFIG_HPP
