#include "dram/power.hpp"

namespace asd
{

PowerReport
PowerModel::report(const Dram &dram, Cycle elapsed_cycles) const
{
    PowerReport out;
    out.background_pj = config_.p_background_pj_per_cpu_cycle *
                        static_cast<double>(elapsed_cycles);
    out.activate_pj =
        config_.e_activate_pj * static_cast<double>(dram.activates());
    out.read_pj = config_.e_read_pj * static_cast<double>(dram.reads());
    out.write_pj =
        config_.e_write_pj * static_cast<double>(dram.writes());
    out.refresh_pj =
        config_.e_refresh_pj * static_cast<double>(dram.refreshes());
    return out;
}

} // namespace asd
