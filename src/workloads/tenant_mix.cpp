#include "workloads/tenant_mix.hpp"

#include <array>
#include <cmath>

#include "common/log.hpp"

namespace asd
{

namespace
{

/** splitmix64 finalizer; decorrelates per-tenant seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

TenantMixSource::TenantMixSource(const TenantMixConfig &config,
                                 const SyntheticConfig &base,
                                 std::uint64_t total)
    : config_(config), base_(base), total_(total), rng_(config.seed)
{
    if (config_.slots == 0)
        fatal("tenants: at least one slot required");
    if (config_.zipf_s < 0.0)
        fatal("tenants: zipf_s must be non-negative");
    std::vector<double> weights(config_.slots);
    for (std::uint32_t i = 0; i < config_.slots; ++i)
        weights[i] =
            1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_s);
    slot_sampler_ = std::make_unique<DiscreteSampler>(weights);
    reset();
}

SyntheticConfig
TenantMixSource::tenantConfig(std::uint32_t asid) const
{
    SyntheticConfig config = base_;
    config.seed = mix64(base_.seed ^
                        (static_cast<std::uint64_t>(asid) << 32 |
                         asid));
    // Per-tenant phase churn: each tenant starts its phase schedule
    // at a different point, so phase boundaries never line up across
    // the mix.
    if (config.phases.size() > 1) {
        const std::size_t shift = asid % config.phases.size();
        std::vector<PhaseProfile> rotated;
        rotated.reserve(config.phases.size());
        for (std::size_t i = 0; i < config.phases.size(); ++i)
            rotated.push_back(
                config.phases[(i + shift) % config.phases.size()]);
        config.phases = std::move(rotated);
    }
    // A tenant only ever emits a share of the mix; make its own
    // generator inexhaustible over the mix's length.
    config.total_accesses = total_;
    return config;
}

std::uint64_t
TenantMixSource::drawLifetime()
{
    if (config_.mean_lifetime == 0)
        return 0;
    // Uniform on [mean/2, 3*mean/2] keeps the requested mean with a
    // spread that staggers departures across slots.
    const std::uint64_t lo = config_.mean_lifetime / 2 + 1;
    const std::uint64_t hi =
        config_.mean_lifetime + config_.mean_lifetime / 2;
    return rng_.nextInRange(lo, hi < lo ? lo : hi);
}

void
TenantMixSource::admit(Slot &slot)
{
    slot.asid = next_asid_++;
    slot.lifetime_left = drawLifetime();
    slot.generator = std::make_unique<SyntheticTraceGenerator>(
        tenantConfig(slot.asid));
    ++arrivals_;
}

void
TenantMixSource::reset()
{
    rng_ = Rng(config_.seed);
    emitted_ = 0;
    next_asid_ = 0;
    arrivals_ = 0;
    departures_ = 0;
    slots_.clear();
    slots_.resize(config_.slots);
    for (Slot &slot : slots_)
        admit(slot);
}

bool
TenantMixSource::next(MemAccess &out)
{
    if (emitted_ >= total_)
        return false;
    ++emitted_;
    Slot &slot = slots_[slot_sampler_->sample(rng_)];
    if (config_.mean_lifetime > 0 && slot.lifetime_left == 0) {
        ++departures_;
        admit(slot);
    }
    panicIfNot(slot.generator->next(out),
               "tenants: per-tenant generator exhausted early");
    out.space = slot.asid;
    if (config_.mean_lifetime > 0)
        --slot.lifetime_left;
    return true;
}

void
TenantMixSource::saveState(SnapshotWriter &w) const
{
    for (const std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(emitted_);
    w.u32(next_asid_);
    w.u64(arrivals_);
    w.u64(departures_);
    w.u32(static_cast<std::uint32_t>(slots_.size()));
    for (const Slot &slot : slots_) {
        w.u32(slot.asid);
        w.u64(slot.lifetime_left);
        slot.generator->saveState(w);
    }
}

void
TenantMixSource::loadState(SnapshotReader &r)
{
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t &word : state)
        word = r.u64();
    rng_.setState(state);
    emitted_ = r.u64();
    next_asid_ = r.u32();
    arrivals_ = r.u64();
    departures_ = r.u64();
    SnapshotReader::check(r.u32() == slots_.size(),
                          "tenants: slot count mismatch");
    for (Slot &slot : slots_) {
        const std::uint32_t asid = r.u32();
        SnapshotReader::check(asid < next_asid_,
                              "tenants: slot asid out of range");
        if (slot.asid != asid || slot.generator == nullptr) {
            // Rebuild the departed-and-replaced tenant's generator
            // from its deterministically derived config, then restore
            // its cursor.
            slot.asid = asid;
            slot.generator =
                std::make_unique<SyntheticTraceGenerator>(
                    tenantConfig(asid));
        }
        slot.lifetime_left = r.u64();
        slot.generator->loadState(r);
    }
}

} // namespace asd
