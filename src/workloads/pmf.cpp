#include "workloads/pmf.hpp"

#include <cmath>
#include <cstdlib>

#include "common/log.hpp"

namespace asd
{

std::vector<double>
geometricPmf(double ratio, std::size_t n)
{
    panicIfNot(n > 0, "geometricPmf: empty support");
    panicIfNot(ratio > 0.0, "geometricPmf: ratio must be positive");
    std::vector<double> weights(n);
    double w = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        weights[i] = w;
        w *= ratio;
    }
    return weights;
}

std::vector<double>
peakedPmf(std::size_t peak, std::size_t width, std::size_t n)
{
    panicIfNot(n > 0 && peak >= 1 && peak <= n,
               "peakedPmf: peak outside support");
    std::vector<double> weights(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto len = static_cast<double>(i + 1);
        const double dist = std::fabs(len - static_cast<double>(peak));
        const double w =
            1.0 - dist / (static_cast<double>(width) + 1.0);
        weights[i] = w > 0.0 ? w : 0.0;
    }
    return weights;
}

std::vector<double>
readWeightedToStreamCounts(const std::vector<double> &bars)
{
    std::vector<double> weights(bars.size());
    for (std::size_t i = 0; i < bars.size(); ++i)
        weights[i] = bars[i] / static_cast<double>(i + 1);
    return weights;
}

std::vector<double>
blendPmf(const std::vector<double> &x, const std::vector<double> &y,
         double a)
{
    panicIfNot(x.size() == y.size(), "blendPmf: size mismatch");
    std::vector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = a * x[i] + (1.0 - a) * y[i];
    return out;
}

} // namespace asd
