#include "workloads/profiles.hpp"

#include "common/log.hpp"
#include "workloads/pmf.hpp"

namespace asd
{

namespace
{

constexpr std::size_t kPmfLen = 32;
constexpr std::uint64_t kMiB = 1ULL << 20;

/** Base record for one benchmark; phases default to a single PMF. */
Benchmark
make(const std::string &name, std::uint64_t seed, double mean_gap,
     double touches, std::uint64_t accesses, std::uint64_t ws_mib,
     double reuse, double write_frac, double dep_frac,
     std::uint32_t streams, std::vector<PhaseProfile> phases)
{
    Benchmark bench;
    bench.name = name;
    bench.trace.seed = seed;
    bench.trace.total_accesses = accesses;
    bench.trace.working_set_bytes = ws_mib * kMiB;
    bench.trace.mean_gap = mean_gap;
    bench.trace.mean_touches_per_line = touches;
    bench.trace.reuse_frac = reuse;
    bench.trace.write_frac = write_frac;
    bench.trace.dependent_frac = dep_frac;
    bench.trace.negative_dir_frac = 0.1;
    bench.trace.concurrent_streams = streams;
    bench.trace.phases = std::move(phases);
    return bench;
}

std::vector<PhaseProfile>
onePhase(std::vector<double> weights)
{
    return {PhaseProfile{std::move(weights), 0}};
}

/**
 * GemsFDTD's Fig. 2 epoch, specified in read-weighted bars. The
 * leading bars are the paper's reported 21.8% / 43.7%; the tail is
 * constructed so the resulting SLH makes exactly the prefetch
 * decisions the paper narrates in section 3.1: prefetch after stream
 * elements 1, 3 and 7..15, but not after 2, 4, 5 or 6 (verified by
 * Workloads.GemsPhaseAMatchesPaperDecisions).
 */
std::vector<double>
gemsPhaseA()
{
    std::vector<double> bars = {21.8, 43.7, 11.13, 10.12, 5.75, 3.14,
                                0.70, 0.62, 0.54,  0.46,  0.39, 0.32,
                                0.27, 0.22, 0.18,  0.66};
    bars.resize(kPmfLen, 0.02);
    return readWeightedToStreamCounts(bars);
}

const std::vector<Benchmark> &
specSuite()
{
    static const std::vector<Benchmark> suite = [] {
        std::vector<Benchmark> s;
        // Streaming, memory-bound FP codes: long-ish streams, large
        // working sets, several touches per 128 B line, low compute
        // per access.
        s.push_back(make("bwaves", 101, 4.0, 14, 500000, 512, 0.20,
                         0.18, 0.18, 6,
                         onePhase(blendPmf(geometricPmf(0.55, kPmfLen),
                                           peakedPmf(10, 6, kPmfLen),
                                           0.55))));
        s.push_back(make("gamess", 102, 50.0, 10, 120000, 3, 0.70,
                         0.25, 0.0, 2,
                         onePhase(geometricPmf(0.5, kPmfLen))));
        s.push_back(make("milc", 103, 4.0, 12, 500000, 512, 0.25, 0.20,
                         0.18, 6,
                         onePhase(geometricPmf(0.6, kPmfLen))));
        s.push_back(make("zeusmp", 104, 5.0, 14, 450000, 384, 0.28,
                         0.22, 0.15, 6,
                         onePhase(peakedPmf(6, 5, kPmfLen))));
        s.push_back(make("gromacs", 105, 8.0, 8, 250000, 32, 0.50,
                         0.25, 0.08, 4,
                         onePhase(blendPmf(geometricPmf(0.5, kPmfLen),
                                           peakedPmf(6, 4, kPmfLen),
                                           0.5))));
        s.push_back(make("cactusADM", 106, 5.0, 14, 450000, 384, 0.28,
                         0.20, 0.15, 6,
                         onePhase(peakedPmf(8, 6, kPmfLen))));
        s.push_back(make("leslie3d", 107, 4.0, 14, 500000, 512, 0.22,
                         0.20, 0.18, 6,
                         onePhase(blendPmf(geometricPmf(0.5, kPmfLen),
                                           peakedPmf(12, 8, kPmfLen),
                                           0.5))));
        s.push_back(make("namd", 108, 45.0, 10, 120000, 6, 0.70, 0.22,
                         0.05, 2,
                         onePhase(geometricPmf(0.45, kPmfLen))));
        s.push_back(make("dealII", 109, 5.0, 8, 300000, 96, 0.40,
                         0.22, 0.15, 5,
                         onePhase(blendPmf(geometricPmf(0.4, kPmfLen),
                                           peakedPmf(6, 4, kPmfLen),
                                           0.5))));
        s.push_back(make("soplex", 110, 4.0, 8, 450000, 256, 0.30,
                         0.18, 0.20, 6,
                         onePhase(blendPmf(geometricPmf(0.4, kPmfLen),
                                           peakedPmf(8, 5, kPmfLen),
                                           0.45))));
        s.push_back(make("povray", 111, 60.0, 10, 120000, 2, 0.75,
                         0.20, 0.05, 2,
                         onePhase(geometricPmf(0.4, kPmfLen))));
        s.push_back(make("calculix", 112, 40.0, 10, 120000, 8, 0.65,
                         0.25, 0.05, 2,
                         onePhase(geometricPmf(0.5, kPmfLen))));
        // GemsFDTD cycles through three phases so its epoch SLHs vary
        // widely over time (Fig. 3).
        s.push_back(make(
            "GemsFDTD", 113, 4.0, 12, 500000, 512, 0.25, 0.20, 0.15, 6,
            {PhaseProfile{gemsPhaseA(), 30000},
             PhaseProfile{peakedPmf(10, 5, kPmfLen), 30000},
             PhaseProfile{blendPmf(geometricPmf(0.45, kPmfLen),
                                   peakedPmf(4, 3, kPmfLen), 0.4),
                          30000}}));
        s.push_back(make("tonto", 114, 8.0, 8, 300000, 64, 0.45, 0.22,
                         0.10, 4,
                         onePhase(blendPmf(geometricPmf(0.38, kPmfLen),
                                           peakedPmf(5, 3, kPmfLen),
                                           0.5))));
        s.push_back(make("lbm", 115, 3.5, 14, 500000, 512, 0.18, 0.25,
                         0.15, 6,
                         onePhase(blendPmf(geometricPmf(0.5, kPmfLen),
                                           peakedPmf(16, 10, kPmfLen),
                                           0.45))));
        s.push_back(make("wrf", 116, 5.0, 12, 450000, 320, 0.30, 0.22,
                         0.12, 6,
                         onePhase(peakedPmf(5, 4, kPmfLen))));
        s.push_back(make("sphinx3", 117, 5.0, 10, 400000, 128, 0.35,
                         0.15, 0.15, 6,
                         onePhase(blendPmf(geometricPmf(0.45, kPmfLen),
                                           peakedPmf(7, 4, kPmfLen),
                                           0.5))));
        return s;
    }();
    return suite;
}

const std::vector<Benchmark> &
nasSuite()
{
    static const std::vector<Benchmark> suite = [] {
        std::vector<Benchmark> s;
        s.push_back(make("bt", 201, 5.0, 12, 400000, 256, 0.35, 0.25,
                         0.08, 6, onePhase(peakedPmf(4, 3, kPmfLen))));
        s.push_back(make("cg", 202, 5.0, 6, 400000, 384, 0.30, 0.12,
                         0.25, 7,
                         onePhase(blendPmf(geometricPmf(0.45, kPmfLen),
                                           peakedPmf(4, 2, kPmfLen),
                                           0.55))));
        s.push_back(make("ep", 203, 70.0, 10, 120000, 2, 0.75, 0.20,
                         0.0, 2, onePhase(geometricPmf(0.4, kPmfLen))));
        s.push_back(make("ft", 204, 4.0, 14, 450000, 384, 0.25, 0.25,
                         0.10, 6, onePhase(peakedPmf(12, 8, kPmfLen))));
        s.push_back(make("is", 205, 5.0, 4, 400000, 256, 0.30, 0.30,
                         0.10, 7,
                         onePhase(blendPmf(geometricPmf(0.3, kPmfLen),
                                           peakedPmf(4, 2, kPmfLen),
                                           0.7))));
        s.push_back(make("lu", 206, 5.0, 12, 400000, 256, 0.35, 0.22,
                         0.05, 6, onePhase(peakedPmf(4, 3, kPmfLen))));
        s.push_back(make("mg", 207, 4.0, 14, 450000, 384, 0.28, 0.22,
                         0.10, 6, onePhase(peakedPmf(10, 7, kPmfLen))));
        s.push_back(make("sp", 208, 5.0, 12, 400000, 256, 0.33, 0.24,
                         0.08, 6, onePhase(peakedPmf(5, 4, kPmfLen))));
        return s;
    }();
    return suite;
}

const std::vector<Benchmark> &
commercialSuite()
{
    static const std::vector<Benchmark> suite = [] {
        // Low spatial locality: stream-length weights chosen so
        // lengths 1-5 cover 78-96% of streams (Fig. 12), with large
        // working sets, pointer chasing and many interleaved contexts.
        auto pmf = [](std::initializer_list<double> head) {
            std::vector<double> weights(head);
            weights.resize(kPmfLen, 0.004);
            return weights;
        };
        std::vector<Benchmark> s;
        s.push_back(make("tpcc", 301, 8.0, 3, 300000, 1536, 0.35,
                         0.28, 0.25, 8,
                         onePhase(pmf({0.55, 0.20, 0.10, 0.05, 0.04,
                                       0.02, 0.01, 0.01}))));
        s.push_back(make("trade2", 302, 9.0, 3, 300000, 1024, 0.38,
                         0.25, 0.20, 8,
                         onePhase(pmf({0.42, 0.25, 0.12, 0.07, 0.05,
                                       0.03, 0.02, 0.01}))));
        s.push_back(make("cpw2", 303, 8.0, 3, 300000, 1280, 0.36,
                         0.27, 0.22, 8,
                         onePhase(pmf({0.50, 0.22, 0.11, 0.06, 0.04,
                                       0.02, 0.01, 0.01}))));
        s.push_back(make("sap", 304, 9.0, 3, 300000, 1024, 0.40,
                         0.26, 0.18, 8,
                         onePhase(pmf({0.52, 0.18, 0.10, 0.07, 0.05,
                                       0.03, 0.02, 0.01}))));
        s.push_back(make("notesbench", 305, 8.0, 3, 300000, 768,
                         0.36, 0.24, 0.15, 8,
                         onePhase(pmf({0.33, 0.30, 0.15, 0.10, 0.07,
                                       0.02, 0.01, 0.01}))));
        return s;
    }();
    return suite;
}

} // namespace

const std::vector<Benchmark> &
suiteBenchmarks(Suite suite)
{
    switch (suite) {
      case Suite::Spec2006fp:
        return specSuite();
      case Suite::Nas:
        return nasSuite();
      case Suite::Commercial:
        return commercialSuite();
    }
    panic("unknown suite");
}

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Spec2006fp:
        return "SPEC2006fp";
      case Suite::Nas:
        return "NAS";
      case Suite::Commercial:
        return "Commercial";
    }
    panic("unknown suite");
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const Suite suite : {Suite::Spec2006fp, Suite::Nas,
                              Suite::Commercial}) {
        for (const Benchmark &bench : suiteBenchmarks(suite))
            if (bench.name == name)
                return bench;
    }
    fatal("unknown benchmark: " + name);
}

std::vector<Benchmark>
detailedStudyBenchmarks()
{
    return {findBenchmark("bwaves"), findBenchmark("milc"),
            findBenchmark("GemsFDTD"), findBenchmark("tonto"),
            findBenchmark("tpcc"),   findBenchmark("trade2"),
            findBenchmark("sap"),    findBenchmark("notesbench")};
}

} // namespace asd
