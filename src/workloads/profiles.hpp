#ifndef ASD_WORKLOADS_PROFILES_HPP
#define ASD_WORKLOADS_PROFILES_HPP

/**
 * @file
 * Synthetic analogs of the paper's three benchmark suites. Each
 * profile fixes the knobs the memory-side prefetcher reacts to —
 * memory intensity, stream-length distribution, working-set size,
 * dependence, interleaving — at values chosen to land each benchmark
 * in the qualitative regime the paper describes (e.g. GemsFDTD's
 * Fig. 2 epoch SLH, the commercial suite's 78-96% short streams).
 * These are trace generators, not the SPEC/NAS/IBM binaries; see
 * DESIGN.md section 2 for the substitution argument.
 */

#include <string>
#include <vector>

#include "trace/synthetic.hpp"

namespace asd
{

/** One named synthetic benchmark. */
struct Benchmark
{
    std::string name;
    SyntheticConfig trace;
};

/** The paper's three suites. */
enum class Suite { Spec2006fp, Nas, Commercial };

/** All benchmarks of @p suite, in the paper's figure order. */
const std::vector<Benchmark> &suiteBenchmarks(Suite suite);

/** Human-readable suite name. */
std::string suiteName(Suite suite);

/** Find a benchmark by name across all suites; fatal() if unknown. */
const Benchmark &findBenchmark(const std::string &name);

/**
 * The eight benchmarks used by the paper's detailed studies
 * (Figs. 11-16): bwaves, milc, GemsFDTD, tonto, tpcc, trade2, sap,
 * notesbench.
 */
std::vector<Benchmark> detailedStudyBenchmarks();

} // namespace asd

#endif // ASD_WORKLOADS_PROFILES_HPP
