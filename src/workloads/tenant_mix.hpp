#ifndef ASD_WORKLOADS_TENANT_MIX_HPP
#define ASD_WORKLOADS_TENANT_MIX_HPP

/**
 * @file
 * Multi-tenant scenario engine. Interleaves N tenant instances of a
 * base synthetic benchmark into one trace: each access is drawn from
 * a Zipfian-skewed slot distribution (slot i carries weight
 * 1/(i+1)^s, so a few hot tenants dominate), every tenant runs its
 * own deterministically derived variant of the base workload (own
 * seed, rotated phase schedule — per-tenant phase churn), and
 * tenants depart after a bounded lifetime to be replaced by a fresh
 * arrival with a brand-new address-space id. Records are stamped
 * with the owning tenant's space id so the OS model keeps the
 * tenants' page tables apart — and their fault pressure evicts each
 * other's frames.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/synthetic.hpp"

namespace asd
{

/** Shape of a multi-tenant mix. */
struct TenantMixConfig
{
    /** Off by default: single-tenant traces, space id always 0. */
    bool enabled = false;

    /** Concurrently active tenants (>= 1). */
    std::uint32_t slots = 4;

    /** Zipf exponent of the per-slot intensity skew (0 = uniform). */
    double zipf_s = 1.0;

    /**
     * Mean tenant lifetime in mix accesses before departure; a
     * departed slot is immediately refilled by a fresh arrival.
     * 0 = tenants never depart.
     */
    std::uint64_t mean_lifetime = 50000;

    /** Seed for slot draws and lifetime draws. */
    std::uint64_t seed = 0x7e1ULL;
};

/**
 * TraceSource interleaving per-tenant SyntheticTraceGenerators.
 * Fully deterministic for a given (config, base, total) triple; the
 * snapshot captures every cursor, so a restored run resumes
 * mid-mix bit-identically.
 */
class TenantMixSource : public TraceSource
{
  public:
    /**
     * @param base  the benchmark every tenant runs a variant of.
     * @param total accesses the mix emits before exhausting.
     */
    TenantMixSource(const TenantMixConfig &config,
                    const SyntheticConfig &base, std::uint64_t total);

    bool next(MemAccess &out) override;
    void reset() override;

    /** Tenants that ever started (including the initial slots). */
    std::uint64_t arrivals() const { return arrivals_; }

    /** Tenants that departed. */
    std::uint64_t departures() const { return departures_; }

    /** Concurrently active tenants (fixed at config.slots). */
    std::uint32_t activeTenants() const { return config_.slots; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct Slot
    {
        std::uint32_t asid = 0;
        std::uint64_t lifetime_left = 0;
        std::unique_ptr<SyntheticTraceGenerator> generator;
    };

    /** The base workload as tenant @p asid runs it. */
    SyntheticConfig tenantConfig(std::uint32_t asid) const;
    std::uint64_t drawLifetime();
    void admit(Slot &slot);

    // asdlint:allow(snapshot-field-coverage): configuration fixed at construction
    TenantMixConfig config_;
    // asdlint:allow(snapshot-field-coverage): see config_
    SyntheticConfig base_;
    // asdlint:allow(snapshot-field-coverage): see config_
    std::uint64_t total_;
    // asdlint:allow(snapshot-field-coverage): Zipf slot weights derived from config_ in the constructor
    std::unique_ptr<DiscreteSampler> slot_sampler_;
    Rng rng_;
    std::vector<Slot> slots_;
    std::uint64_t emitted_ = 0;
    std::uint32_t next_asid_ = 0;
    std::uint64_t arrivals_ = 0;
    std::uint64_t departures_ = 0;
};

} // namespace asd

#endif // ASD_WORKLOADS_TENANT_MIX_HPP
