#ifndef ASD_WORKLOADS_PMF_HPP
#define ASD_WORKLOADS_PMF_HPP

/**
 * @file
 * Helpers for building stream-length PMFs (unnormalized weights over
 * lengths 1..n) used by the benchmark profiles.
 */

#include <cstddef>
#include <vector>

namespace asd
{

/**
 * Geometric stream-length weights: weight(len) = ratio^(len-1).
 * Small ratios model poor spatial locality (mostly length-1/2
 * streams); ratios near 1 model streaming workloads.
 */
std::vector<double> geometricPmf(double ratio, std::size_t n);

/**
 * Weights peaked around @p peak with triangular falloff of the given
 * half-@p width; models workloads dominated by a natural tile size.
 */
std::vector<double> peakedPmf(std::size_t peak, std::size_t width,
                              std::size_t n);

/**
 * Convert read-weighted SLH bars (the paper's figures) into
 * stream-count weights: weight(len) = bar(len) / len. Lets profiles
 * be specified in the same units as Fig. 2.
 */
std::vector<double> readWeightedToStreamCounts(
    const std::vector<double> &bars);

/** Pointwise blend a*x + (1-a)*y of two equal-length weight vectors. */
std::vector<double> blendPmf(const std::vector<double> &x,
                             const std::vector<double> &y, double a);

} // namespace asd

#endif // ASD_WORKLOADS_PMF_HPP
