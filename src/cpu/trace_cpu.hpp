#ifndef ASD_CPU_TRACE_CPU_HPP
#define ASD_CPU_TRACE_CPU_HPP

/**
 * @file
 * Trace-driven CPU model. Replays a MemAccess stream against the
 * cache hierarchy with a bounded number of outstanding loads (memory-
 * level parallelism), a store buffer for write misses (RFOs), and
 * serialization on dependent (pointer-chasing) loads. Non-memory
 * instructions burn at a fixed IPC.
 *
 * This is the stand-in for the paper's proprietary Power5+ core
 * model: it produces a realistic L2/L3-miss read stream and couples
 * execution time to memory latency, which is all the memory-side
 * prefetcher study needs (DESIGN.md section 2).
 */

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/mshr.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "prefetch/cpu_prefetcher.hpp"
#include "trace/trace_source.hpp"
#include "vm/translator.hpp"

namespace asd
{

/** How the CPU reaches memory; implemented by sim::System. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /**
     * Issue a demand read (or store RFO) for @p line.
     * @retval false when the controller cannot accept (retry later).
     */
    virtual bool demandRead(LineAddr line, std::uint32_t thread,
                            bool is_rfo) = 0;

    /**
     * Issue a processor-side prefetch read. Dropped (returns true) or
     * rejected silently; the CPU never retries these.
     */
    virtual void psPrefetch(LineAddr line, std::uint32_t thread,
                            bool to_l1) = 0;
};

/** CPU model parameters. */
struct CpuConfig
{
    /** Non-memory instructions retired per cycle. */
    std::uint32_t ipc = 2;

    /** Maximum outstanding loads (hit or miss). */
    std::uint32_t mlp = 4;

    /** Store buffer entries (outstanding store RFOs). */
    std::uint32_t store_buffer = 8;

    /** Cache line size. */
    std::uint32_t line_bytes = 128;
};

/** One hardware thread replaying a trace. */
class TraceCpu : public Snapshottable
{
  public:
    /**
     * @param ps optional processor-side prefetcher (PS/PMS configs).
     * @param thread this CPU's hardware thread id.
     * @param mmu optional address translator (the VM layer's Mmu or
     *        the OS model's OsMmu); when present every trace address
     *        is translated before it touches the hierarchy, and TLB
     *        misses stall issue by the walk/fault latency. Null =
     *        addresses pass through untranslated.
     */
    TraceCpu(const CpuConfig &config, TraceSource &trace,
             CacheHierarchy &hierarchy, CpuPrefetcher *ps,
             MemPort &port, std::uint32_t thread,
             AddressTranslator *mmu = nullptr);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Trace exhausted and no loads/stores outstanding. */
    bool finished() const;

    /**
     * Cycles until this CPU next needs a tick (fast-forward hint);
     * kNoCycle when blocked on a memory completion callback.
     */
    Cycles nextEventIn(Cycle now) const;

    /** A demand load's memory data arrived. */
    void loadDone(LineAddr line, Cycle now);

    /** A store RFO's data arrived. */
    void storeDone(LineAddr line, Cycle now);

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    std::uint64_t retiredAccesses() const { return retired_.value(); }

    /**
     * Checkpoint the core and its trace cursor. The attached PS
     * prefetcher and MMU are snapshotted by the System in their own
     * sections (their presence depends on the machine configuration).
     */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    /** The access currently being issued, with cached lookup state. */
    struct Pending
    {
        MemAccess access;
        LineAddr line = 0;
        bool valid = false;
        bool looked_up = false;  //!< hierarchy already consulted
        bool needs_memory = false;
        bool ps_observe = false; //!< notify the PS unit after issue
        bool ps_was_miss = false;
        Cycles hit_latency = 0;  //!< valid when !needs_memory
    };

    void completeTimedLoads(Cycle now);
    bool tryIssue(Cycle now);
    void observePs(LineAddr line, bool was_l1_miss);

    CpuConfig config_;
    TraceSource &trace_;
    CacheHierarchy &hierarchy_;
    CpuPrefetcher *ps_;
    MemPort &port_;
    // asdlint:allow(snapshot-field-coverage): thread id is wiring configuration fixed at construction, never dynamic state
    std::uint32_t thread_;
    AddressTranslator *mmu_;

    bool trace_done_ = false;
    std::uint64_t compute_left_ = 0; //!< gap instructions remaining
    Cycle last_tick_ = kNoCycle;     //!< for elapsed-time compute burn
    Pending pending_;

    /** Earliest cycle the pending access may issue (walk/fault stall). */
    Cycle issue_ready_at_ = 0;

    std::vector<Cycle> timed_loads_;  //!< cache-hit completions
    MshrFile mem_loads_;              //!< loads waiting on memory
    MshrFile store_rfos_;             //!< stores waiting on memory

    /**
     * Misses whose MSHR is allocated but whose memory-controller
     * enqueue was rejected (queue full). They retry every tick while
     * the core keeps executing — the MSHR, not the core, waits.
     */
    struct RetryEntry
    {
        LineAddr line;
        bool is_rfo;
    };
    std::vector<RetryEntry> retry_q_;

    Counter retired_;
    Counter load_stall_cycles_;
    Counter store_stall_cycles_;
    Counter dep_stall_cycles_;
    Counter mc_reject_cycles_;
    Counter walk_stall_cycles_;
};

} // namespace asd

#endif // ASD_CPU_TRACE_CPU_HPP
