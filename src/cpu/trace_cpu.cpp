#include "cpu/trace_cpu.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace asd
{

TraceCpu::TraceCpu(const CpuConfig &config, TraceSource &trace,
                   CacheHierarchy &hierarchy, CpuPrefetcher *ps,
                   MemPort &port, std::uint32_t thread,
                   AddressTranslator *mmu)
    : config_(config),
      trace_(trace),
      hierarchy_(hierarchy),
      ps_(ps),
      port_(port),
      thread_(thread),
      mmu_(mmu),
      mem_loads_(config.mlp),
      store_rfos_(config.store_buffer)
{
    panicIfNot(config_.ipc > 0, "TraceCpu: ipc must be positive");
    panicIfNot(config_.mlp > 0, "TraceCpu: mlp must be positive");
}

void
TraceCpu::completeTimedLoads(Cycle now)
{
    timed_loads_.erase(
        std::remove_if(timed_loads_.begin(), timed_loads_.end(),
                       [now](Cycle done) { return done <= now; }),
        timed_loads_.end());
}

void
TraceCpu::observePs(LineAddr line, bool was_l1_miss)
{
    if (!ps_)
        return;
    for (const PsPrefetchReq &req : ps_->observe(line, was_l1_miss))
        port_.psPrefetch(req.line, thread_, req.to_l1);
}

bool
TraceCpu::tryIssue(Cycle now)
{
    Pending &p = pending_;

    if (p.access.dependent &&
        (mem_loads_.inUse() > 0 || !timed_loads_.empty())) {
        dep_stall_cycles_.inc();
        return false;
    }

    const bool is_store = p.access.op == MemOp::Write;

    if (!p.looked_up) {
        // Consult the hierarchy exactly once per access; retries only
        // re-attempt the slot allocation / memory-port call.
        const AccessResult result = hierarchy_.access(p.line, is_store);
        p.looked_up = true;
        p.needs_memory = result.needs_memory;
        p.hit_latency = result.latency;
        // PS observation is deferred until the demand read itself has
        // been issued: prefetch reads must reach the memory
        // controller AFTER the demand miss that triggered them, or
        // the controller-side stream filter sees lines out of order.
        p.ps_observe = !is_store;
        p.ps_was_miss = result.level != HitLevel::L1;
        if (is_store && !result.needs_memory) {
            // Store absorbed by L2/L3; the store buffer hides it.
            retired_.inc();
            p.valid = false;
            return true;
        }
    }

    if (!is_store && !p.needs_memory) {
        // Cache-hit load: occupies an outstanding-load slot until its
        // data returns from L1/L2/L3.
        if (timed_loads_.size() + mem_loads_.inUse() >= config_.mlp) {
            load_stall_cycles_.inc();
            return false;
        }
        timed_loads_.push_back(now + p.hit_latency);
        retired_.inc();
        p.valid = false;
        if (p.ps_observe)
            observePs(p.line, p.ps_was_miss);
        return true;
    }

    if (is_store) {
        if (store_rfos_.full()) {
            store_stall_cycles_.inc();
            return false;
        }
        if (!store_rfos_.allocate(p.line)) {
            // New RFO: send it, or park it for retry if the memory
            // controller is full (the MSHR waits, not the core).
            if (!port_.demandRead(p.line, thread_, true)) {
                mc_reject_cycles_.inc();
                retry_q_.push_back({p.line, true});
            }
        }
        retired_.inc();
        p.valid = false;
        return true;
    }

    // Load that needs memory.
    if (timed_loads_.size() + mem_loads_.inUse() >= config_.mlp) {
        load_stall_cycles_.inc();
        return false;
    }
    if (!mem_loads_.allocate(p.line)) {
        if (!port_.demandRead(p.line, thread_, false)) {
            mc_reject_cycles_.inc();
            retry_q_.push_back({p.line, false});
        }
    }
    retired_.inc();
    p.valid = false;
    if (p.ps_observe)
        observePs(p.line, p.ps_was_miss);
    return true;
}

void
TraceCpu::tick(Cycle now)
{
    completeTimedLoads(now);

    // Re-attempt parked misses before doing anything else; at most
    // one enqueue per cycle (one cache port to the controller).
    if (!retry_q_.empty()) {
        const RetryEntry entry = retry_q_.front();
        if (port_.demandRead(entry.line, thread_, entry.is_rfo))
            retry_q_.erase(retry_q_.begin());
        else
            mc_reject_cycles_.inc();
    }

    // The System may fast-forward between ticks; burn gap
    // instructions for the whole elapsed window, not one cycle.
    const Cycles elapsed =
        last_tick_ == kNoCycle || now <= last_tick_ ? 1
                                                    : now - last_tick_;
    last_tick_ = now;

    if (pending_.valid) {
        if (now < issue_ready_at_)
            return; // page walk in flight
        tryIssue(now);
        return;
    }

    if (compute_left_ > 0) {
        compute_left_ -= std::min<std::uint64_t>(
            compute_left_, elapsed * config_.ipc);
        if (compute_left_ > 0)
            return;
    }

    if (trace_done_)
        return;

    MemAccess access;
    if (!trace_.next(access)) {
        trace_done_ = true;
        return;
    }
    pending_.access = access;
    // Translate before anything downstream sees the address: caches,
    // controller, and the memory-side prefetcher all operate on
    // physical lines. A TLB miss holds the access at issue for the
    // page-walk (or, under the OS model, fault-service) latency.
    Addr paddr = access.addr;
    issue_ready_at_ = now;
    if (mmu_) {
        Cycles walk = 0;
        paddr = mmu_->translate(access, walk);
        if (walk > 0) {
            issue_ready_at_ = now + walk;
            walk_stall_cycles_.inc(walk);
        }
    }
    pending_.line = paddr / config_.line_bytes;
    pending_.valid = true;
    pending_.looked_up = false;
    pending_.needs_memory = false;
    compute_left_ = access.gap;
    if (now >= issue_ready_at_)
        tryIssue(now);
}

bool
TraceCpu::finished() const
{
    return trace_done_ && !pending_.valid && timed_loads_.empty() &&
           mem_loads_.inUse() == 0 && store_rfos_.inUse() == 0 &&
           retry_q_.empty();
}

Cycles
TraceCpu::nextEventIn(Cycle now) const
{
    if (finished())
        return kNoCycle;
    if (!retry_q_.empty())
        return 1;
    if (pending_.valid) {
        if (now < issue_ready_at_)
            return issue_ready_at_ - now; // page walk finishes then
        // Waiting on a memory callback (dependence or MC rejection)?
        if (mem_loads_.inUse() > 0 || store_rfos_.inUse() > 0) {
            if (timed_loads_.empty())
                return kNoCycle; // only a callback can unblock us
        }
        Cycle soonest = kNoCycle;
        for (const Cycle done : timed_loads_)
            soonest = std::min(soonest, done);
        if (soonest == kNoCycle)
            return 1;
        return soonest > now ? soonest - now : 1;
    }
    if (compute_left_ > 0)
        return (compute_left_ + config_.ipc - 1) / config_.ipc;
    if (trace_done_) {
        Cycle soonest = kNoCycle;
        for (const Cycle done : timed_loads_)
            soonest = std::min(soonest, done);
        if (soonest == kNoCycle)
            return kNoCycle;
        return soonest > now ? soonest - now : 1;
    }
    return 1;
}

void
TraceCpu::loadDone(LineAddr line, Cycle now)
{
    (void)now;
    if (mem_loads_.release(line) > 0)
        hierarchy_.fill(line, false);
}

void
TraceCpu::storeDone(LineAddr line, Cycle now)
{
    (void)now;
    if (store_rfos_.release(line) > 0)
        hierarchy_.fill(line, true);
}

void
TraceCpu::saveState(SnapshotWriter &w) const
{
    trace_.saveState(w);
    w.b(trace_done_);
    w.u64(compute_left_);
    w.u64(last_tick_);
    w.b(pending_.valid);
    w.u64(pending_.access.addr);
    w.u32(pending_.access.gap);
    w.u8(static_cast<std::uint8_t>(pending_.access.op));
    w.b(pending_.access.dependent);
    w.u32(pending_.access.space);
    w.u64(pending_.line);
    w.b(pending_.looked_up);
    w.b(pending_.needs_memory);
    w.b(pending_.ps_observe);
    w.b(pending_.ps_was_miss);
    w.u64(pending_.hit_latency);
    w.u64(issue_ready_at_);
    w.vecU64(timed_loads_);
    mem_loads_.saveState(w);
    store_rfos_.saveState(w);
    w.u64(retry_q_.size());
    for (const RetryEntry &entry : retry_q_) {
        w.u64(entry.line);
        w.b(entry.is_rfo);
    }
    w.u64(retired_.value());
    w.u64(load_stall_cycles_.value());
    w.u64(store_stall_cycles_.value());
    w.u64(dep_stall_cycles_.value());
    w.u64(mc_reject_cycles_.value());
    w.u64(walk_stall_cycles_.value());
}

void
TraceCpu::loadState(SnapshotReader &r)
{
    trace_.loadState(r);
    trace_done_ = r.b();
    compute_left_ = r.u64();
    last_tick_ = r.u64();
    pending_.valid = r.b();
    pending_.access.addr = r.u64();
    pending_.access.gap = r.u32();
    const std::uint8_t op = r.u8();
    SnapshotReader::check(
        op <= static_cast<std::uint8_t>(MemOp::Write),
        "memory op out of range");
    pending_.access.op = static_cast<MemOp>(op);
    pending_.access.dependent = r.b();
    pending_.access.space = r.u32();
    pending_.line = r.u64();
    pending_.looked_up = r.b();
    pending_.needs_memory = r.b();
    pending_.ps_observe = r.b();
    pending_.ps_was_miss = r.b();
    pending_.hit_latency = r.u64();
    issue_ready_at_ = r.u64();
    timed_loads_ = r.vecU64();
    mem_loads_.loadState(r);
    store_rfos_.loadState(r);
    const std::uint64_t retries = r.u64();
    retry_q_.clear();
    for (std::uint64_t i = 0; i < retries; ++i) {
        RetryEntry entry;
        entry.line = r.u64();
        entry.is_rfo = r.b();
        retry_q_.push_back(entry);
    }
    retired_.restore(r.u64());
    load_stall_cycles_.restore(r.u64());
    store_stall_cycles_.restore(r.u64());
    dep_stall_cycles_.restore(r.u64());
    mc_reject_cycles_.restore(r.u64());
    walk_stall_cycles_.restore(r.u64());
}

void
TraceCpu::registerStats(StatRegistry &registry,
                        const std::string &prefix) const
{
    registry.add(prefix + ".retired", retired_);
    registry.add(prefix + ".load_stall_cycles", load_stall_cycles_);
    registry.add(prefix + ".store_stall_cycles", store_stall_cycles_);
    registry.add(prefix + ".dep_stall_cycles", dep_stall_cycles_);
    registry.add(prefix + ".mc_reject_cycles", mc_reject_cycles_);
    if (mmu_)
        registry.add(prefix + ".walk_stall_cycles",
                     walk_stall_cycles_);
}

} // namespace asd
