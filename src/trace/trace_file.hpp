#ifndef ASD_TRACE_TRACE_FILE_HPP
#define ASD_TRACE_TRACE_FILE_HPP

/**
 * @file
 * A compact binary on-disk trace format so users can drive the
 * simulator with their own access traces (see examples/custom_trace).
 *
 * Layout: 16-byte header ("ASDT", u32 version, u64 record count)
 * followed by packed records of {u64 addr, u32 gap, u8 flags}.
 * Flags: bit 0 = write, bit 1 = dependent.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"

namespace asd
{

/** Current trace file format version. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/** Write @p accesses to @p path; fatal() on I/O failure. */
void writeTraceFile(const std::string &path,
                    const std::vector<MemAccess> &accesses);

/** Read a whole trace file; fatal() on I/O or format errors. */
std::vector<MemAccess> readTraceFile(const std::string &path);

/** TraceSource streaming from a trace file loaded into memory. */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);

    bool next(MemAccess &out) override;
    void reset() override { pos_ = 0; }

    std::size_t size() const { return accesses_.size(); }

  private:
    std::vector<MemAccess> accesses_;
    std::size_t pos_ = 0;
};

} // namespace asd

#endif // ASD_TRACE_TRACE_FILE_HPP
