#ifndef ASD_TRACE_TRACE_FILE_HPP
#define ASD_TRACE_TRACE_FILE_HPP

/**
 * @file
 * A compact binary on-disk trace format so users can drive the
 * simulator with their own access traces (see examples/custom_trace).
 *
 * Layout: 16-byte header ("ASDT", u32 version, u64 record count)
 * followed by packed records of {u64 addr, u32 gap, u8 flags}.
 * Flags: bit 0 = write, bit 1 = dependent.
 *
 * The header's record count is validated against the actual file
 * size on open, so truncated or corrupt traces fail with a clear
 * message instead of feeding garbage into a simulation.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"

namespace asd
{

/** Current trace file format version. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/** Write @p accesses to @p path; fatal() on I/O failure. */
void writeTraceFile(const std::string &path,
                    const std::vector<MemAccess> &accesses);

/** Read a whole trace file; fatal() on I/O or format errors. */
std::vector<MemAccess> readTraceFile(const std::string &path);

/** How FileTraceSource holds the trace. */
enum class TraceReadMode : std::uint8_t
{
    /** Load the whole file into memory up front (default). */
    Eager,

    /**
     * Keep the file open and decode records through a fixed-size
     * buffer, so multi-GB traces never have to be materialized.
     * Produces exactly the access sequence of the eager mode
     * (tested).
     */
    Streamed,
};

/** TraceSource over a binary trace file. */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path,
                             TraceReadMode mode = TraceReadMode::Eager);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(MemAccess &out) override;
    void reset() override;

    /**
     * Checkpointing: the state is the logical cursor (records already
     * produced). loadState() rewinds and re-skips, which works in
     * both read modes without storing buffered data.
     */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    /** Total records in the trace (both modes). */
    std::size_t size() const { return total_; }

  private:
    void refill();

    TraceReadMode mode_;
    // asdlint:allow(snapshot-field-coverage): ctor configuration; loadState only re-reads the trace the path points at
    std::string path_;
    std::size_t total_ = 0;

    // Eager state: the whole trace.
    // Streamed state: the current buffered chunk.
    std::vector<MemAccess> accesses_;
    std::size_t pos_ = 0; //!< index into accesses_

    // Streamed-only state.
    std::FILE *file_ = nullptr;
    std::size_t consumed_ = 0; //!< records decoded from the file
};

} // namespace asd

#endif // ASD_TRACE_TRACE_FILE_HPP
