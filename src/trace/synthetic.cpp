#include "trace/synthetic.hpp"

#include <array>
#include <cmath>

#include "common/log.hpp"

namespace asd
{

namespace
{

/** Lines kept in the reuse pool for generating cache hits. */
constexpr std::size_t kReusePoolSize = 512;

} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticConfig config)
    : config_(std::move(config)),
      rng_(config_.seed)
{
    if (config_.phases.empty())
        fatal("SyntheticTraceGenerator: at least one phase required");
    if (config_.concurrent_streams == 0)
        fatal("SyntheticTraceGenerator: concurrent_streams must be >= 1");
    if (config_.line_bytes == 0 ||
        (config_.line_bytes & (config_.line_bytes - 1)) != 0) {
        fatal("SyntheticTraceGenerator: line_bytes must be a power of two");
    }
    ws_lines_ = config_.working_set_bytes / config_.line_bytes;
    if (ws_lines_ == 0)
        fatal("SyntheticTraceGenerator: working set smaller than a line");

    phase_samplers_.reserve(config_.phases.size());
    for (const auto &phase : config_.phases)
        phase_samplers_.emplace_back(phase.stream_len_weights);
    stride_sampler_ =
        std::make_unique<DiscreteSampler>(config_.stride_weights);

    reset();
}

void
SyntheticTraceGenerator::reset()
{
    rng_ = Rng(config_.seed);
    emitted_ = 0;
    phase_idx_ = 0;
    phase_left_ = config_.phases[0].accesses;
    recent_lines_.clear();
    recent_pos_ = 0;
    streams_.assign(config_.concurrent_streams, LiveStream{});
    for (auto &stream : streams_)
        refill(stream);
}

LineAddr
SyntheticTraceGenerator::randomLine()
{
    return rng_.nextBelow(ws_lines_);
}

std::uint32_t
SyntheticTraceGenerator::drawTouches()
{
    const double mean = config_.mean_touches_per_line;
    if (mean <= 1.0)
        return 1;
    // Uniform on [1, 2*mean - 1] keeps the requested mean with small
    // integer support.
    const auto hi = static_cast<std::uint64_t>(2.0 * mean) - 1;
    return static_cast<std::uint32_t>(rng_.nextInRange(1, hi));
}

void
SyntheticTraceGenerator::refill(LiveStream &stream)
{
    const auto len = static_cast<std::uint32_t>(
        phase_samplers_[phase_idx_].sample(rng_) + 1);
    stream.lines_left = len - 1;
    stream.touches_left = drawTouches();
    // Unit-stride-only configs skip the draw so their traces are
    // bit-identical to pre-stride versions of the generator.
    stream.stride =
        stride_sampler_->size() == 1
            ? 1
            : static_cast<std::uint32_t>(
                  stride_sampler_->sample(rng_) + 1);
    stream.dir = rng_.chance(config_.negative_dir_frac)
                     ? StreamDir::Negative
                     : StreamDir::Positive;
    // Choose the start so the whole stream stays inside the working
    // set regardless of direction.
    const LineAddr span =
        static_cast<LineAddr>(len) * stream.stride + 1;
    LineAddr start = randomLine();
    if (stream.dir == StreamDir::Positive) {
        if (start + span >= ws_lines_)
            start = ws_lines_ > span ? ws_lines_ - span - 1 : 0;
    } else {
        if (start < span)
            start = span;
    }
    stream.line = start;
}

std::uint32_t
SyntheticTraceGenerator::drawGap()
{
    if (config_.mean_gap <= 0.0)
        return 0;
    // Geometric with the configured mean, sampled via inversion.
    const double u = rng_.nextDouble();
    const double p = 1.0 / (1.0 + config_.mean_gap);
    const double g = std::floor(std::log1p(-u) / std::log1p(-p));
    return static_cast<std::uint32_t>(g < 0.0 ? 0.0 : g);
}

void
SyntheticTraceGenerator::advancePhase()
{
    if (phase_left_ == 0)
        return; // phase lasts the rest of the trace
    if (--phase_left_ > 0)
        return;
    phase_idx_ = (phase_idx_ + 1) % config_.phases.size();
    phase_left_ = config_.phases[phase_idx_].accesses;
    // New phase, new streams: flush live streams so the new PMF takes
    // effect immediately rather than after the old streams drain.
    for (auto &stream : streams_)
        refill(stream);
}

void
SyntheticTraceGenerator::saveState(SnapshotWriter &w) const
{
    const std::array<std::uint64_t, 4> rng_state = rng_.state();
    for (const std::uint64_t word : rng_state)
        w.u64(word);
    w.u64(emitted_);
    w.u64(phase_idx_);
    w.u64(phase_left_);
    w.vecU64(recent_lines_);
    w.u64(recent_pos_);
    w.u32(static_cast<std::uint32_t>(streams_.size()));
    for (const LiveStream &stream : streams_) {
        w.u64(stream.line);
        w.u32(stream.lines_left);
        w.u32(stream.touches_left);
        w.u32(stream.stride);
        w.u8(static_cast<std::uint8_t>(stream.dir));
    }
}

void
SyntheticTraceGenerator::loadState(SnapshotReader &r)
{
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t &word : rng_state)
        word = r.u64();
    rng_.setState(rng_state);
    emitted_ = r.u64();
    const std::uint64_t phase_idx = r.u64();
    SnapshotReader::check(phase_idx < config_.phases.size(),
                          "synthetic trace phase index out of range");
    phase_idx_ = static_cast<std::size_t>(phase_idx);
    phase_left_ = r.u64();
    recent_lines_ = r.vecU64();
    SnapshotReader::check(recent_lines_.size() <= kReusePoolSize,
                          "synthetic trace reuse pool too large");
    const std::uint64_t recent_pos = r.u64();
    SnapshotReader::check(recent_pos < kReusePoolSize,
                          "synthetic trace reuse cursor out of range");
    recent_pos_ = static_cast<std::size_t>(recent_pos);
    const std::uint32_t stream_count = r.u32();
    SnapshotReader::check(stream_count == streams_.size(),
                          "synthetic trace stream count mismatch "
                          "(different concurrent_streams config?)");
    for (LiveStream &stream : streams_) {
        stream.line = r.u64();
        stream.lines_left = r.u32();
        stream.touches_left = r.u32();
        stream.stride = r.u32();
        stream.dir = static_cast<StreamDir>(r.u8());
    }
}

bool
SyntheticTraceGenerator::next(MemAccess &out)
{
    if (emitted_ >= config_.total_accesses)
        return false;
    ++emitted_;
    advancePhase();

    out.gap = drawGap();
    out.op = rng_.chance(config_.write_frac) ? MemOp::Write : MemOp::Read;
    out.dependent = out.op == MemOp::Read &&
                    rng_.chance(config_.dependent_frac);

    LineAddr line;
    if (!recent_lines_.empty() && rng_.chance(config_.reuse_frac)) {
        line = recent_lines_[rng_.nextBelow(recent_lines_.size())];
    } else {
        auto &stream = streams_[rng_.nextBelow(streams_.size())];
        line = stream.line;
        if (--stream.touches_left == 0) {
            if (stream.lines_left == 0) {
                refill(stream);
            } else {
                --stream.lines_left;
                stream.line = static_cast<LineAddr>(
                    static_cast<std::int64_t>(stream.line) +
                    dirStep(stream.dir) *
                        static_cast<std::int64_t>(stream.stride));
                stream.touches_left = drawTouches();
            }
        }
        if (recent_lines_.size() < kReusePoolSize) {
            recent_lines_.push_back(line);
        } else {
            recent_lines_[recent_pos_] = line;
            recent_pos_ = (recent_pos_ + 1) % kReusePoolSize;
        }
    }
    out.addr = line * config_.line_bytes +
               rng_.nextBelow(config_.line_bytes);
    return true;
}

} // namespace asd
