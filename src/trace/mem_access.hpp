#ifndef ASD_TRACE_MEM_ACCESS_HPP
#define ASD_TRACE_MEM_ACCESS_HPP

/**
 * @file
 * The unit of work consumed by the trace-driven CPU model: one memory
 * operation plus the number of non-memory instructions preceding it.
 */

#include <cstdint>

#include "common/types.hpp"

namespace asd
{

/** Kind of memory operation in a trace. */
enum class MemOp : std::uint8_t { Read, Write };

/**
 * One trace record. Addresses are byte addresses; the CPU model and
 * caches operate on 128 B lines derived from them.
 */
struct MemAccess
{
    /** Byte address touched. */
    Addr addr = 0;

    /** Non-memory instructions executed before this access. */
    std::uint32_t gap = 0;

    /** Read or write. */
    MemOp op = MemOp::Read;

    /**
     * True when the access depends on the previous load's value
     * (pointer chasing); the CPU serializes behind outstanding loads.
     */
    bool dependent = false;

    /**
     * Address-space (tenant) id. 0 for single-tenant traces; the
     * multi-tenant scenario engine stamps each record with the id of
     * the tenant that issued it so the OS model can keep the tenants'
     * page tables and TLB entries apart.
     */
    std::uint32_t space = 0;
};

} // namespace asd

#endif // ASD_TRACE_MEM_ACCESS_HPP
