#ifndef ASD_TRACE_MEM_ACCESS_HPP
#define ASD_TRACE_MEM_ACCESS_HPP

/**
 * @file
 * The unit of work consumed by the trace-driven CPU model: one memory
 * operation plus the number of non-memory instructions preceding it.
 */

#include <cstdint>

#include "common/types.hpp"

namespace asd
{

/** Kind of memory operation in a trace. */
enum class MemOp : std::uint8_t { Read, Write };

/**
 * One trace record. Addresses are byte addresses; the CPU model and
 * caches operate on 128 B lines derived from them.
 */
struct MemAccess
{
    /** Byte address touched. */
    Addr addr = 0;

    /** Non-memory instructions executed before this access. */
    std::uint32_t gap = 0;

    /** Read or write. */
    MemOp op = MemOp::Read;

    /**
     * True when the access depends on the previous load's value
     * (pointer chasing); the CPU serializes behind outstanding loads.
     */
    bool dependent = false;
};

} // namespace asd

#endif // ASD_TRACE_MEM_ACCESS_HPP
