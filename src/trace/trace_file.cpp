#include "trace/trace_file.hpp"

#include <array>
#include <cstring>

#include "common/log.hpp"

namespace asd
{

namespace
{

constexpr std::array<char, 4> kMagic = {'A', 'S', 'D', 'T'};

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: short write");
}

void
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: short write");
}

std::uint32_t
getU32(std::FILE *f)
{
    unsigned char buf[4];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(std::FILE *f)
{
    unsigned char buf[8];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

} // namespace

void
writeTraceFile(const std::string &path,
               const std::vector<MemAccess> &accesses)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: " + path);
    if (std::fwrite(kMagic.data(), 1, kMagic.size(), f.get()) !=
        kMagic.size()) {
        fatal("trace file: short write");
    }
    putU32(f.get(), kTraceFormatVersion);
    putU64(f.get(), accesses.size());
    for (const auto &acc : accesses) {
        putU64(f.get(), acc.addr);
        putU32(f.get(), acc.gap);
        const unsigned char flags = static_cast<unsigned char>(
            (acc.op == MemOp::Write ? 1u : 0u) |
            (acc.dependent ? 2u : 0u));
        if (std::fwrite(&flags, 1, 1, f.get()) != 1)
            fatal("trace file: short write");
    }
}

std::vector<MemAccess>
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file: " + path);
    std::array<char, 4> magic{};
    if (std::fread(magic.data(), 1, magic.size(), f.get()) != magic.size())
        fatal("trace file: truncated header: " + path);
    if (magic != kMagic)
        fatal("trace file: bad magic: " + path);
    const std::uint32_t version = getU32(f.get());
    if (version != kTraceFormatVersion)
        fatal("trace file: unsupported version: " + path);
    const std::uint64_t count = getU64(f.get());

    std::vector<MemAccess> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MemAccess acc;
        acc.addr = getU64(f.get());
        acc.gap = getU32(f.get());
        unsigned char flags = 0;
        if (std::fread(&flags, 1, 1, f.get()) != 1)
            fatal("trace file: truncated record");
        acc.op = (flags & 1u) ? MemOp::Write : MemOp::Read;
        acc.dependent = (flags & 2u) != 0;
        out.push_back(acc);
    }
    return out;
}

FileTraceSource::FileTraceSource(const std::string &path)
    : accesses_(readTraceFile(path))
{
}

bool
FileTraceSource::next(MemAccess &out)
{
    if (pos_ >= accesses_.size())
        return false;
    out = accesses_[pos_++];
    return true;
}

} // namespace asd
