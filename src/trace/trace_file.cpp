#include "trace/trace_file.hpp"

#include <array>
#include <cstring>

#include "common/log.hpp"

namespace asd
{

namespace
{

constexpr std::array<char, 4> kMagic = {'A', 'S', 'D', 'T'};

/** Bytes per packed record: u64 addr + u32 gap + u8 flags. */
constexpr std::size_t kRecordBytes = 8 + 4 + 1;

/** Bytes before the first record: magic + u32 version + u64 count. */
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

/** Records decoded per fread in streamed mode. */
constexpr std::size_t kStreamChunk = 4096;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(std::FILE *f, std::uint32_t v)
{
    unsigned char buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: short write");
}

void
putU64(std::FILE *f, std::uint64_t v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    if (std::fwrite(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: short write");
}

std::uint32_t
getU32(std::FILE *f)
{
    unsigned char buf[4];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(std::FILE *f)
{
    unsigned char buf[8];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        fatal("trace file: truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

/** Decode one packed record from @p buf (kRecordBytes long). */
MemAccess
decodeRecord(const unsigned char *buf)
{
    MemAccess acc;
    acc.addr = 0;
    for (int i = 0; i < 8; ++i)
        acc.addr |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    acc.gap = 0;
    for (int i = 0; i < 4; ++i)
        acc.gap |= static_cast<std::uint32_t>(buf[8 + i]) << (8 * i);
    const unsigned char flags = buf[12];
    acc.op = (flags & 1u) ? MemOp::Write : MemOp::Read;
    acc.dependent = (flags & 2u) != 0;
    return acc;
}

/**
 * Validate magic, version, and the header's record count against the
 * actual file size; leaves @p f positioned at the first record.
 * @return the record count.
 */
std::uint64_t
readHeader(std::FILE *f, const std::string &path)
{
    std::array<char, 4> magic{};
    if (std::fread(magic.data(), 1, magic.size(), f) != magic.size())
        fatal("trace file: truncated header: " + path);
    if (magic != kMagic)
        fatal("trace file: bad magic: " + path);
    const std::uint32_t version = getU32(f);
    if (version != kTraceFormatVersion)
        fatal("trace file: unsupported version: " + path);
    const std::uint64_t count = getU64(f);

    if (std::fseek(f, 0, SEEK_END) != 0)
        fatal("trace file: cannot seek: " + path);
    const long actual = std::ftell(f);
    if (actual < 0)
        fatal("trace file: cannot determine size: " + path);
    const std::uint64_t expected =
        kHeaderBytes + count * kRecordBytes;
    if (static_cast<std::uint64_t>(actual) != expected) {
        fatal("trace file: header claims " + std::to_string(count) +
              " records (" + std::to_string(expected) +
              " bytes) but file is " + std::to_string(actual) +
              " bytes — truncated or corrupt: " + path);
    }
    if (std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) != 0)
        fatal("trace file: cannot seek: " + path);
    return count;
}

} // namespace

void
writeTraceFile(const std::string &path,
               const std::vector<MemAccess> &accesses)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: " + path);
    if (std::fwrite(kMagic.data(), 1, kMagic.size(), f.get()) !=
        kMagic.size()) {
        fatal("trace file: short write");
    }
    putU32(f.get(), kTraceFormatVersion);
    putU64(f.get(), accesses.size());
    for (const auto &acc : accesses) {
        putU64(f.get(), acc.addr);
        putU32(f.get(), acc.gap);
        const unsigned char flags = static_cast<unsigned char>(
            (acc.op == MemOp::Write ? 1u : 0u) |
            (acc.dependent ? 2u : 0u));
        if (std::fwrite(&flags, 1, 1, f.get()) != 1)
            fatal("trace file: short write");
    }
}

std::vector<MemAccess>
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file: " + path);
    const std::uint64_t count = readHeader(f.get(), path);

    std::vector<MemAccess> out;
    out.reserve(count);
    unsigned char buf[kRecordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(buf, 1, sizeof(buf), f.get()) != sizeof(buf))
            fatal("trace file: truncated record: " + path);
        out.push_back(decodeRecord(buf));
    }
    return out;
}

FileTraceSource::FileTraceSource(const std::string &path,
                                 TraceReadMode mode)
    : mode_(mode), path_(path)
{
    if (mode_ == TraceReadMode::Eager) {
        accesses_ = readTraceFile(path);
        total_ = accesses_.size();
        return;
    }
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file: " + path);
    total_ = readHeader(file_, path);
    accesses_.reserve(kStreamChunk);
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

void
FileTraceSource::refill()
{
    const std::size_t want =
        std::min(kStreamChunk, total_ - consumed_);
    std::vector<unsigned char> raw(want * kRecordBytes);
    if (std::fread(raw.data(), 1, raw.size(), file_) != raw.size())
        fatal("trace file: truncated record: " + path_);
    accesses_.clear();
    for (std::size_t i = 0; i < want; ++i)
        accesses_.push_back(decodeRecord(&raw[i * kRecordBytes]));
    consumed_ += want;
    pos_ = 0;
}

bool
FileTraceSource::next(MemAccess &out)
{
    if (pos_ >= accesses_.size()) {
        if (mode_ == TraceReadMode::Eager || consumed_ >= total_)
            return false;
        refill();
        if (accesses_.empty())
            return false;
    }
    out = accesses_[pos_++];
    return true;
}

void
FileTraceSource::saveState(SnapshotWriter &w) const
{
    const std::size_t produced =
        mode_ == TraceReadMode::Eager
            ? pos_
            : consumed_ - (accesses_.size() - pos_);
    w.u64(produced);
}

void
FileTraceSource::loadState(SnapshotReader &r)
{
    const std::uint64_t produced = r.u64();
    SnapshotReader::check(produced <= total_,
                          "trace file cursor out of range");
    reset();
    MemAccess skipped;
    for (std::uint64_t i = 0; i < produced; ++i) {
        if (!next(skipped))
            SnapshotReader::check(false,
                                  "trace file ended while restoring "
                                  "the cursor");
    }
}

void
FileTraceSource::reset()
{
    pos_ = 0;
    if (mode_ == TraceReadMode::Streamed) {
        accesses_.clear();
        consumed_ = 0;
        if (std::fseek(file_, static_cast<long>(kHeaderBytes),
                       SEEK_SET) != 0)
            fatal("trace file: cannot seek: " + path_);
    }
}

} // namespace asd
