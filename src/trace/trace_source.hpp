#ifndef ASD_TRACE_TRACE_SOURCE_HPP
#define ASD_TRACE_TRACE_SOURCE_HPP

/**
 * @file
 * Abstract producer of MemAccess records. Implemented by the synthetic
 * workload generator, the trace-file reader, and an in-memory vector
 * source used heavily by tests.
 */

#include <utility>
#include <vector>

#include "snapshot/snapshot.hpp"
#include "trace/mem_access.hpp"

namespace asd
{

/**
 * Pull-based trace producer. Every source is Snapshottable: the
 * checkpoint subsystem must capture the exact trace cursor so a
 * restored run resumes mid-trace instead of replaying it.
 */
class TraceSource : public Snapshottable
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @param out filled on success.
     * @retval false when the trace is exhausted.
     */
    virtual bool next(MemAccess &out) = 0;

    /** Restart the trace from the beginning. */
    virtual void reset() = 0;
};

/** TraceSource over a caller-provided vector; used by tests. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<MemAccess> accesses)
        : accesses_(std::move(accesses))
    {}

    bool
    next(MemAccess &out) override
    {
        if (pos_ >= accesses_.size())
            return false;
        out = accesses_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    void
    saveState(SnapshotWriter &w) const override
    {
        w.u64(pos_);
    }

    void
    loadState(SnapshotReader &r) override
    {
        const std::uint64_t pos = r.u64();
        SnapshotReader::check(pos <= accesses_.size(),
                              "VectorTraceSource cursor out of range");
        pos_ = static_cast<std::size_t>(pos);
    }

  private:
    // asdlint:allow(snapshot-field-coverage): trace content is input configuration; only the cursor pos_ is dynamic state
    std::vector<MemAccess> accesses_;
    std::size_t pos_ = 0;
};

} // namespace asd

#endif // ASD_TRACE_TRACE_SOURCE_HPP
