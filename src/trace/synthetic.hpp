#ifndef ASD_TRACE_SYNTHETIC_HPP
#define ASD_TRACE_SYNTHETIC_HPP

/**
 * @file
 * Synthetic workload generator. Stands in for the paper's SPEC2006fp /
 * NAS / IBM-commercial traces (see DESIGN.md section 2): it emits a
 * memory-reference stream drawn from a configurable mixture of
 * sequential streams, controlled by the knobs ASD actually reacts to —
 * stream-length distribution, direction mix, memory intensity, working
 * set size, interleaving, dependence, and phase changes.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "trace/trace_source.hpp"

namespace asd
{

/**
 * One program phase: a stream-length PMF plus how many accesses the
 * phase lasts. Phases cycle for the lifetime of the trace.
 */
struct PhaseProfile
{
    /**
     * Unnormalized stream-length weights; index i is the weight of
     * streams of length i+1 lines.
     */
    std::vector<double> stream_len_weights;

    /** Accesses before moving to the next phase (0 = rest of trace). */
    std::uint64_t accesses = 0;
};

/** Full description of a synthetic benchmark. */
struct SyntheticConfig
{
    /** PRNG seed; two configs with equal fields generate equal traces. */
    std::uint64_t seed = 1;

    /** Total accesses to emit. */
    std::uint64_t total_accesses = 200000;

    /** Bytes of distinct data touched; controls L2/L3 hit rates. */
    std::uint64_t working_set_bytes = 256ULL << 20;

    /** Cache line size used to lay out streams. */
    std::uint32_t line_bytes = 128;

    /** Mean non-memory instructions between accesses (geometric). */
    double mean_gap = 4.0;

    /** Fraction of accesses that are writes. */
    double write_frac = 0.2;

    /** Fraction of reads that are serialized pointer chases. */
    double dependent_frac = 0.0;

    /**
     * Fraction of accesses that re-touch a recently used line instead
     * of advancing a stream; creates cache hits that never reach the
     * memory controller.
     */
    double reuse_frac = 0.3;

    /** Fraction of streams walking toward lower addresses. */
    double negative_dir_frac = 0.1;

    /**
     * Mean accesses to each line of a stream before advancing (a
     * 128 B line holds 16 doubles; array sweeps touch each line
     * several times). Touches beyond the first hit in L1, spacing the
     * line-miss stream the memory controller sees.
     */
    double mean_touches_per_line = 1.0;

    /**
     * Unnormalized weights over per-stream line strides: index i is
     * the weight of stride i+1 lines. Default: all streams unit
     * stride (the only kind ASD can follow). Non-unit strides model
     * column walks / large-struct sweeps.
     */
    std::vector<double> stride_weights = {1.0};

    /** Concurrently interleaved streams (>= 1). */
    std::uint32_t concurrent_streams = 4;

    /** Program phases; must not be empty. */
    std::vector<PhaseProfile> phases;
};

/**
 * Generates a reproducible access trace from a SyntheticConfig.
 *
 * The generator keeps @c concurrent_streams live streams; each access
 * picks one at random and emits its next line, replacing a stream with
 * a freshly drawn one when it is exhausted. Stream lengths come from
 * the active phase's PMF, so the memory-controller-visible Stream
 * Length Histogram of the trace converges to that PMF.
 */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    explicit SyntheticTraceGenerator(SyntheticConfig config);

    bool next(MemAccess &out) override;
    void reset() override;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    const SyntheticConfig &config() const { return config_; }

  private:
    struct LiveStream
    {
        LineAddr line = 0;           //!< line currently being touched
        std::uint32_t lines_left = 0; //!< lines after this one
        std::uint32_t touches_left = 0;
        std::uint32_t stride = 1;     //!< lines per advance
        StreamDir dir = StreamDir::Positive;
    };

    void refill(LiveStream &stream);
    std::uint32_t drawTouches();
    std::uint32_t drawGap();
    LineAddr randomLine();
    void advancePhase();

    SyntheticConfig config_;
    Rng rng_;
    std::vector<LiveStream> streams_;
    // asdlint:allow(snapshot-field-coverage): samplers are stateless weight tables derived from config_ in the constructor
    std::vector<DiscreteSampler> phase_samplers_;
    // asdlint:allow(snapshot-field-coverage): see phase_samplers_
    std::unique_ptr<DiscreteSampler> stride_sampler_;
    std::vector<LineAddr> recent_lines_; //!< reuse pool (ring buffer)
    std::size_t recent_pos_ = 0;
    std::size_t phase_idx_ = 0;
    std::uint64_t phase_left_ = 0;
    std::uint64_t emitted_ = 0;
    // asdlint:allow(snapshot-field-coverage): derived from config_ (working-set bytes / line bytes) in the constructor
    std::uint64_t ws_lines_ = 0;
};

} // namespace asd

#endif // ASD_TRACE_SYNTHETIC_HPP
