#ifndef ASD_LINT_TOKEN_UTIL_HPP
#define ASD_LINT_TOKEN_UTIL_HPP

/**
 * @file
 * Small token-stream helpers shared by the per-file rule pack
 * (rules.cpp), the declaration indexer (decl_index.cpp), and the
 * semantic rules (semantic_rules.cpp).
 */

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace asd::lint
{

inline bool
isIdent(const Token &tok, std::string_view text)
{
    return tok.kind == TokenKind::Identifier && tok.text == text;
}

inline bool
isPunct(const Token &tok, std::string_view text)
{
    return tok.kind == TokenKind::Punct && tok.text == text;
}

/**
 * Advance past a balanced token group. @p open_index points at the
 * opening token; returns the index one past the matching closer, or
 * tokens.size() when unbalanced.
 */
std::size_t skipBalanced(const std::vector<Token> &tokens,
                         std::size_t open_index, std::string_view open,
                         std::string_view close);

/**
 * @return the quoted path of an `#include "..."` directive, or an
 * empty string for system includes and non-include directives.
 */
std::string quotedInclude(const Token &tok);

/** @return the angle-bracket or quoted path of any include. */
std::string anyInclude(const Token &tok);

/**
 * Module layering rank of @p module (first path component after an
 * optional "src/"), lowest layer first; -1 for unknown modules.
 */
int layerRank(std::string_view module);

/** @return the first path component after an optional "src/". */
std::string moduleOf(std::string_view path);

} // namespace asd::lint

#endif // ASD_LINT_TOKEN_UTIL_HPP
