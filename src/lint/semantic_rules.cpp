#include "lint/semantic_rules.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>

#include "lint/token_util.hpp"

namespace asd::lint
{

namespace
{

// --- snapshot-field-coverage ---------------------------------------

/**
 * Members the snapshot contract exempts by design: configuration is
 * re-derived when a System is rebuilt (never saved), so const,
 * reference, raw-pointer, *Config-typed, and callback members stay
 * out of saveState/loadState.
 */
bool
isSnapshotExempt(const MemberDecl &member)
{
    return member.is_static || member.is_const ||
           member.is_reference || member.is_pointer ||
           member.typeMentions("Config") ||
           member.typeMentions("function");
}

void
checkSnapshotFieldCoverage(const DeclIndex &index,
                           std::vector<Diagnostic> &out)
{
    for (const ClassDecl *cls : index.derivedFrom("Snapshottable")) {
        const MethodDecl *save = cls->findMethod("saveState");
        const MethodDecl *load = cls->findMethod("loadState");
        if (!save || !load || !save->has_body || !load->has_body)
            continue; // inherits both, or bodies were not found
        if (save->body.empty() && load->body.empty())
            continue; // explicit opt-out: a deliberately empty
                      // saveState/loadState pair (bench taps, test
                      // doubles) declares "never checkpointed"
        const std::set<std::string> saved =
            cls->referencedFrom("saveState");
        const std::set<std::string> loaded =
            cls->referencedFrom("loadState");
        for (const MemberDecl &member : cls->members) {
            if (isSnapshotExempt(member))
                continue;
            const bool in_save = saved.count(member.name) != 0;
            const bool in_load = loaded.count(member.name) != 0;
            if (in_save && in_load)
                continue;
            std::string what;
            if (!in_save && !in_load)
                what = "is neither saved by saveState nor restored "
                       "by loadState";
            else if (in_save)
                what = "is saved by saveState but never restored by "
                       "loadState";
            else
                what = "is restored by loadState but never saved by "
                       "saveState";
            out.push_back(
                {cls->file, member.line, "snapshot-field-coverage",
                 Severity::Error,
                 "data member '" + member.name +
                     "' of snapshottable '" + cls->name + "' " + what +
                     "; snapshot it symmetrically or mark it "
                     "asdlint:allow(snapshot-field-coverage) with a "
                     "reason",
                 cls->name + "::" + member.name});
        }
    }
}

// --- serialize-coverage --------------------------------------------

/**
 * Which record type must be covered by which serializer. The
 * param_hint picks the right overload (writeJson exists for both
 * RunOptions and RunMetrics); empty means any overload counts.
 */
struct SerializeBinding
{
    std::string_view record;
    std::string_view function;
    std::string_view param_hint;
};

constexpr SerializeBinding kSerializeBindings[] = {
    {"RunOptions", "writeJson", "RunOptions"},
    {"VmConfig", "writeJson", "RunOptions"},
    {"TlbConfig", "writeJson", "RunOptions"},
    {"OsConfig", "writeJson", "RunOptions"},
    {"TenantMixConfig", "writeJson", "RunOptions"},
    {"TunerConfig", "writeJson", "RunOptions"},
    {"TuneSpace", "writeJson", "RunOptions"},
    {"RunMetrics", "writeJson", "RunMetrics"},
    {"PowerReport", "writeJson", "RunMetrics"},
    {"RunMetrics", "metricsFromJson", ""},
    {"PowerReport", "metricsFromJson", ""},
};

bool
isSerializeExempt(const MemberDecl &member)
{
    return member.is_static || member.is_const ||
           member.typeMentions("function");
}

void
checkSerializeCoverage(const DeclIndex &index,
                       std::vector<Diagnostic> &out)
{
    for (const SerializeBinding &binding : kSerializeBindings) {
        const ClassDecl *cls = index.findClass(binding.record);
        if (!cls)
            continue; // record not in this tree (fixture corpora)
        std::vector<const FunctionDecl *> fns;
        for (const FunctionDecl *fn :
             index.findFunctions(binding.function)) {
            if (binding.param_hint.empty() ||
                fn->paramsMention(binding.param_hint))
                fns.push_back(fn);
        }
        if (fns.empty()) {
            out.push_back(
                {cls->file, cls->line, "serialize-coverage",
                 Severity::Error,
                 "record '" + cls->name + "' has no '" +
                     std::string(binding.function) +
                     "' counterpart (stale binding or missing "
                     "serializer); update the serializer or the "
                     "binding table in lint/semantic_rules.cpp",
                 cls->name});
            continue;
        }
        std::set<std::string> referenced;
        for (const FunctionDecl *fn : fns)
            for (const std::string &id : identifiersIn(fn->body))
                referenced.insert(id);
        for (const MemberDecl &member : cls->members) {
            if (isSerializeExempt(member))
                continue;
            if (referenced.count(member.name))
                continue;
            out.push_back(
                {cls->file, member.line, "serialize-coverage",
                 Severity::Error,
                 "field '" + member.name + "' of '" + cls->name +
                     "' never appears in '" +
                     std::string(binding.function) +
                     "'; serialize it or mark it "
                     "asdlint:allow(serialize-coverage) with a "
                     "reason",
                 cls->name + "::" + member.name});
        }
    }
}

// --- jobid-plumbing ------------------------------------------------

void
checkJobidPlumbing(const DeclIndex &index,
                   std::vector<Diagnostic> &out)
{
    const ClassDecl *cls = index.findClass("RunOptions");
    if (!cls)
        return;
    std::set<std::string> serialized;
    for (const FunctionDecl *fn : index.findFunctions("writeJson"))
        if (fn->paramsMention("RunOptions"))
            for (const std::string &id : identifiersIn(fn->body))
                serialized.insert(id);
    std::set<std::string> in_job_id;
    bool have_job_id = false;
    for (const FunctionDecl *fn : index.findFunctions("makeJobId")) {
        have_job_id = true;
        for (const std::string &id : identifiersIn(fn->body))
            in_job_id.insert(id);
    }
    if (!have_job_id || serialized.empty())
        return; // no job store in this tree
    for (const MemberDecl &member : cls->members) {
        if (member.is_static || member.is_const)
            continue;
        if (!serialized.count(member.name))
            continue; // not a serialized knob (flagged elsewhere)
        if (in_job_id.count(member.name))
            continue;
        out.push_back(
            {cls->file, member.line, "jobid-plumbing",
             Severity::Error,
             "RunOptions knob '" + member.name +
                 "' is serialized by writeJson but missing from "
                 "makeJobId; two sweeps differing only in this knob "
                 "would collide in the job store",
             "RunOptions::" + member.name});
    }
}

// --- wall-clock-and-env --------------------------------------------

/** Layers whose results must be a pure function of config + seed. */
constexpr std::string_view kDeterministicLayers[] = {
    "sim", "core", "prefetch", "tuner", "arena",
};

constexpr std::string_view kForbiddenIdents[] = {
    "steady_clock",  "system_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
    "getenv",        "secure_getenv", "putenv",
    "setenv",        "localtime",     "gmtime",
    "strftime",      "mktime",
};

/** `time(` / `clock(` in call position, not a member call. */
bool
isClockCall(const std::vector<Token> &toks, std::size_t i)
{
    if (!isIdent(toks[i], "time") && !isIdent(toks[i], "clock"))
        return false;
    if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
        return false;
    return i == 0 ||
           (!isPunct(toks[i - 1], ".") && !isPunct(toks[i - 1], "->"));
}

void
checkWallClockAndEnv(const DeclIndex &index,
                     std::vector<Diagnostic> &out)
{
    for (const IndexedFile &file : index.files) {
        if (file.path.rfind("src/", 0) != 0)
            continue;
        const std::string module = moduleOf(file.path);
        const bool deterministic =
            std::find(std::begin(kDeterministicLayers),
                      std::end(kDeterministicLayers),
                      module) != std::end(kDeterministicLayers);
        if (!deterministic)
            continue;
        const std::vector<Token> &toks = file.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].kind != TokenKind::Identifier)
                continue;
            const bool forbidden =
                std::find(std::begin(kForbiddenIdents),
                          std::end(kForbiddenIdents),
                          toks[i].text) !=
                    std::end(kForbiddenIdents) ||
                isClockCall(toks, i);
            if (!forbidden)
                continue;
            out.push_back(
                {file.path, toks[i].line, "wall-clock-and-env",
                 Severity::Error,
                 "'" + toks[i].text +
                     "' reads the wall clock or environment inside "
                     "the deterministic '" + module +
                     "' layer; results must be a pure function of "
                     "configuration and seed",
                 toks[i].text});
        }
    }
}

// --- unordered-iteration (flow-aware) ------------------------------

constexpr std::string_view kUnorderedTypes[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

constexpr std::string_view kEmittingIdents[] = {
    "cout",     "cerr",       "printf", "fprintf",
    "ofstream", "JsonWriter", "Table",  "ostream",
};

/** One body-carrying function or method of a translation unit. */
struct TuFunction
{
    std::string name;
    const std::vector<Token> *body = nullptr;
    const ClassDecl *cls = nullptr; // methods only
};

bool
emitsDirectly(const std::vector<Token> &body)
{
    for (const Token &tok : body) {
        if (tok.kind != TokenKind::Identifier)
            continue;
        for (const std::string_view e : kEmittingIdents)
            if (tok.text == e)
                return true;
    }
    return false;
}

/** Names declared in @p toks with an unordered container type. */
void
collectContainerNames(const std::vector<Token> &toks,
                      std::set<std::string> &containers)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool is_unordered = std::any_of(
            std::begin(kUnorderedTypes), std::end(kUnorderedTypes),
            [&](std::string_view t) { return isIdent(toks[i], t); });
        if (!is_unordered || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "<"))
            continue;
        std::size_t after = i + 1;
        int depth = 0;
        for (; after < toks.size(); ++after) {
            if (isPunct(toks[after], "<"))
                ++depth;
            else if (isPunct(toks[after], ">") && --depth == 0) {
                ++after;
                break;
            } else if (isPunct(toks[after], ">>")) {
                depth -= 2;
                if (depth <= 0) {
                    ++after;
                    break;
                }
            }
        }
        while (after < toks.size() &&
               (isPunct(toks[after], "&") ||
                isPunct(toks[after], "*")))
            ++after;
        if (after < toks.size() &&
            toks[after].kind == TokenKind::Identifier)
            containers.insert(toks[after].text);
    }
}

/** Report iterations over @p containers inside @p body. */
void
diagnoseIterations(const std::vector<Token> &toks,
                   const std::set<std::string> &containers,
                   const std::string &path,
                   const std::string &function,
                   std::vector<Diagnostic> &out)
{
    auto isContainer = [&](const Token &tok) {
        return tok.kind == TokenKind::Identifier &&
               containers.count(tok.text) != 0;
    };
    auto diagnose = [&](std::uint32_t line, const std::string &name) {
        out.push_back(
            {path, line, "unordered-iteration", Severity::Error,
             "iterating unordered container '" + name + "' in '" +
                 function +
                 "', which reaches an output-emitting sink; hash "
                 "order is not deterministic — copy to a sorted "
                 "container first",
             function});
    };

    // Range-for whose range expression names a container.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
        // Find the range-for ':' at depth 1 (a ';' first means the
        // classic three-clause form; a '?' first starts a ternary).
        int depth = 0;
        int pending_ternary = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < end && colon == 0; ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")"))
                --depth;
            else if (depth == 1 && isPunct(toks[j], ";"))
                break;
            else if (depth == 1 && isPunct(toks[j], "?"))
                ++pending_ternary;
            else if (depth == 1 && isPunct(toks[j], ":")) {
                if (pending_ternary > 0)
                    --pending_ternary;
                else
                    colon = j;
            }
        }
        if (colon == 0)
            continue;
        for (std::size_t j = colon + 1; j + 1 < end; ++j) {
            if (isContainer(toks[j])) {
                diagnose(toks[i].line, toks[j].text);
                break;
            }
        }
    }

    // Explicit iterator walks (name.begin() and friends).
    constexpr std::string_view kBeginNames[] = {"begin", "cbegin",
                                                "rbegin", "crbegin"};
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isContainer(toks[i]) && isPunct(toks[i + 1], ".") &&
            std::any_of(std::begin(kBeginNames),
                        std::end(kBeginNames),
                        [&](std::string_view b) {
                            return isIdent(toks[i + 2], b);
                        }))
            diagnose(toks[i].line, toks[i].text);
    }
}

void
checkUnorderedIteration(const DeclIndex &index,
                        std::vector<Diagnostic> &out)
{
    for (const IndexedFile &file : index.files) {
        // Bodies defined in this TU, by (unqualified) name.
        std::vector<TuFunction> funcs;
        for (const FunctionDecl &fn : index.functions)
            if (fn.file == file.path)
                funcs.push_back({fn.name, &fn.body, nullptr});
        for (const ClassDecl &cls : index.classes)
            for (const MethodDecl &m : cls.methods)
                if (m.has_body && m.file == file.path)
                    funcs.push_back({m.name, &m.body, &cls});
        if (funcs.empty())
            continue;

        // Emitters: direct sinks, their (transitive) callers, and
        // everything those call — iteration anywhere along such a
        // chain feeds ordering-sensitive output.
        std::set<std::string> connected;
        for (const TuFunction &f : funcs) {
            const bool param_sink =
                !f.cls &&
                [&] {
                    for (const FunctionDecl &fn : index.functions)
                        if (&fn.body == f.body)
                            return fn.paramsMention("ostream") ||
                                   fn.paramsMention("JsonWriter") ||
                                   fn.paramsMention("Table");
                    return false;
                }();
            if (emitsDirectly(*f.body) || param_sink)
                connected.insert(f.name);
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (const TuFunction &f : funcs) {
                if (connected.count(f.name))
                    continue;
                for (const std::string &callee :
                     calledNames(*f.body)) {
                    if (connected.count(callee)) {
                        connected.insert(f.name);
                        changed = true;
                        break;
                    }
                }
            }
            for (const TuFunction &f : funcs) {
                if (!connected.count(f.name))
                    continue;
                for (const std::string &callee :
                     calledNames(*f.body)) {
                    bool local = false;
                    for (const TuFunction &g : funcs)
                        if (g.name == callee)
                            local = true;
                    if (local && !connected.count(callee)) {
                        connected.insert(callee);
                        changed = true;
                    }
                }
            }
        }
        if (connected.empty())
            continue;

        std::set<std::string> file_containers;
        collectContainerNames(file.tokens, file_containers);
        for (const TuFunction &f : funcs) {
            if (!connected.count(f.name))
                continue;
            std::set<std::string> containers = file_containers;
            if (f.cls)
                for (const MemberDecl &m : f.cls->members)
                    if (m.typeMentions("unordered_"))
                        containers.insert(m.name);
            if (containers.empty())
                continue;
            const std::string label =
                f.cls ? f.cls->name + "::" + f.name : f.name;
            diagnoseIterations(*f.body, containers, file.path, label,
                               out);
        }
    }
}

// --- allow-missing-reason ------------------------------------------

void
checkAllowMissingReason(const DeclIndex &index,
                        std::vector<Diagnostic> &out)
{
    for (const IndexedFile &file : index.files) {
        for (const Suppression &sup : file.suppressions) {
            if (!sup.reason.empty())
                continue;
            for (const std::string &rule : sup.rules) {
                if (!isSemanticRule(rule))
                    continue;
                out.push_back(
                    {file.path, sup.line, "allow-missing-reason",
                     Severity::Error,
                     "asdlint:allow(" + rule +
                         ") needs a justification — add ': why' "
                         "after the closing parenthesis; without one "
                         "the suppression is inert",
                     rule});
                break;
            }
        }
    }
}

} // namespace

const std::vector<SemanticRule> &
semanticRuleRegistry()
{
    static const std::vector<SemanticRule> rules = {
        {"allow-missing-reason", Severity::Error,
         "semantic-rule suppressions must carry a justification",
         checkAllowMissingReason},
        {"jobid-plumbing", Severity::Error,
         "every serialized RunOptions knob must reach makeJobId",
         checkJobidPlumbing},
        {"serialize-coverage", Severity::Error,
         "record fields must appear in their JSON (de)serializers",
         checkSerializeCoverage},
        {"snapshot-field-coverage", Severity::Error,
         "Snapshottable members must be saved and restored "
         "symmetrically",
         checkSnapshotFieldCoverage},
        {"unordered-iteration", Severity::Error,
         "no unordered-container iteration reaching emitting sinks",
         checkUnorderedIteration},
        {"wall-clock-and-env", Severity::Error,
         "no wall-clock or environment reads in deterministic "
         "layers",
         checkWallClockAndEnv},
    };
    return rules;
}

const SemanticRule *
findSemanticRule(const std::string &name)
{
    for (const SemanticRule &rule : semanticRuleRegistry())
        if (rule.name == name)
            return &rule;
    return nullptr;
}

bool
isSemanticRule(const std::string &name)
{
    return findSemanticRule(name) != nullptr;
}

} // namespace asd::lint
