#include "lint/lexer.hpp"

#include <cctype>

namespace asd::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first for maximal munch. */
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=", "|=", "^=",
};

class Lexer
{
  public:
    explicit Lexer(std::string_view source) : src_(source) {}

    LexResult
    run()
    {
        while (!eof())
            step();
        return std::move(result_);
    }

  private:
    bool
    eof() const
    {
        return pos_ >= src_.size();
    }

    char
    peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        const char c = src_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }

    void
    emit(TokenKind kind, std::string text, std::uint32_t line)
    {
        result_.tokens.push_back({kind, std::move(text), line});
    }

    /** True when a backslash-newline splice sits at the cursor. */
    bool
    atSplice() const
    {
        if (peek() != '\\')
            return false;
        std::size_t i = pos_ + 1;
        while (i < src_.size() &&
               (src_[i] == ' ' || src_[i] == '\t' || src_[i] == '\r'))
            ++i;
        return i < src_.size() && src_[i] == '\n';
    }

    void
    skipSplice()
    {
        advance(); // backslash
        while (!eof() && peek() != '\n')
            advance();
        if (!eof())
            advance(); // newline
    }

    /** Scan a comment body and record any asdlint:allow markers. */
    void
    scanSuppressions(std::string_view body, std::uint32_t line)
    {
        constexpr std::string_view kMarker = "asdlint:allow(";
        std::size_t at = body.find(kMarker);
        while (at != std::string_view::npos) {
            const std::size_t open = at + kMarker.size();
            const std::size_t close = body.find(')', open);
            if (close == std::string_view::npos)
                break;
            Suppression sup;
            sup.line = line;
            std::string name;
            for (const char c : body.substr(open, close - open)) {
                if (c == ',') {
                    if (!name.empty())
                        sup.rules.push_back(name);
                    name.clear();
                } else if (!std::isspace(static_cast<unsigned char>(c))) {
                    name += c;
                }
            }
            if (!name.empty())
                sup.rules.push_back(name);
            // The justification runs from the ')' to the next marker
            // (or the end of the comment): an optional ':' separator,
            // then prose, trimmed of whitespace.
            const std::size_t next = body.find(kMarker, close);
            std::string_view reason = body.substr(
                close + 1,
                (next == std::string_view::npos ? body.size() : next) -
                    close - 1);
            while (!reason.empty() &&
                   (std::isspace(static_cast<unsigned char>(
                        reason.front())) ||
                    reason.front() == ':'))
                reason.remove_prefix(1);
            while (!reason.empty() &&
                   (std::isspace(static_cast<unsigned char>(
                        reason.back())) ||
                    reason.back() == '/' || reason.back() == '*'))
                reason.remove_suffix(1);
            sup.reason = std::string(reason);
            if (!sup.rules.empty())
                result_.suppressions.push_back(std::move(sup));
            at = next;
        }
    }

    void
    lineComment()
    {
        const std::uint32_t line = line_;
        const std::size_t start = pos_;
        while (!eof() && peek() != '\n')
            advance();
        scanSuppressions(src_.substr(start, pos_ - start), line);
    }

    void
    blockComment()
    {
        const std::uint32_t line = line_;
        const std::size_t start = pos_;
        while (!eof()) {
            if (peek() == '*' && peek(1) == '/') {
                scanSuppressions(src_.substr(start, pos_ - start), line);
                advance();
                advance();
                return;
            }
            advance();
        }
        scanSuppressions(src_.substr(start, pos_ - start), line);
    }

    /**
     * Quoted literal with the cursor on the opening quote; the text
     * is collected without the quotes. Backslash-newline splices are
     * deleted (phase-2 splicing happens before tokenization), so a
     * continued string stays one token.
     */
    void
    quoted(char quote, TokenKind kind)
    {
        const std::uint32_t line = line_;
        advance(); // opening quote
        std::string text;
        while (!eof() && peek() != quote && peek() != '\n') {
            if (atSplice()) {
                skipSplice();
            } else if (peek() == '\\' && pos_ + 1 < src_.size()) {
                text += advance();
                text += advance();
            } else {
                text += advance();
            }
        }
        if (!eof() && peek() == quote)
            advance();
        emit(kind, std::move(text), line);
    }

    /**
     * R"delim( ... )delim" with the cursor on the '"' (any encoding
     * prefix already consumed). Splices are NOT deleted here: the
     * standard reverts line splicing inside raw string literals.
     */
    void
    rawString()
    {
        const std::uint32_t line = line_;
        advance(); // "
        std::string delim;
        while (!eof() && peek() != '(' && peek() != '\n')
            delim += advance();
        if (!eof() && peek() == '(')
            advance(); // (
        const std::string closer = ")" + delim + "\"";
        std::string text;
        while (!eof() && src_.compare(pos_, closer.size(), closer) != 0)
            text += advance();
        for (std::size_t i = 0; i < closer.size() && !eof(); ++i)
            advance();
        emit(TokenKind::String, std::move(text), line);
    }

    /**
     * One preprocessor directive with the introducer ('#' or the
     * '%:' digraph) already consumed; @p text is seeded with the
     * canonical '#'.
     */
    void
    directive(std::string text)
    {
        const std::uint32_t line = line_;
        while (!eof() && peek() != '\n') {
            if (atSplice()) {
                skipSplice();
                text += ' ';
                continue;
            }
            if (peek() == '/' && peek(1) == '/') {
                advance();
                advance();
                lineComment();
                break;
            }
            if (peek() == '/' && peek(1) == '*') {
                advance();
                advance();
                blockComment();
                text += ' ';
                continue;
            }
            text += advance();
        }
        emit(TokenKind::Directive, std::move(text), line);
    }

    void
    number()
    {
        const std::uint32_t line = line_;
        std::string text;
        text += advance();
        while (!eof()) {
            if (atSplice()) {
                skipSplice();
                continue;
            }
            const char c = peek();
            if (isIdentChar(c) || c == '.' || c == '\'') {
                text += advance();
            } else if ((c == '+' || c == '-') && !text.empty() &&
                       (text.back() == 'e' || text.back() == 'E' ||
                        text.back() == 'p' || text.back() == 'P')) {
                text += advance();
            } else {
                break;
            }
        }
        emit(TokenKind::Number, std::move(text), line);
    }

    /** Encoding prefixes that may precede a string literal. */
    static bool
    isStringPrefix(std::string_view text)
    {
        return text == "u8" || text == "u" || text == "U" ||
               text == "L";
    }

    /**
     * Identifier, or a string/char literal carrying an encoding
     * prefix (u8"...", LR"(...)", u'x', ...). Splices inside the
     * identifier are deleted so `sa\<newline>ve` scans as `save`.
     */
    void
    identifierOrPrefixedLiteral()
    {
        const std::uint32_t line = line_;
        std::string text;
        while (!eof()) {
            if (atSplice()) {
                skipSplice();
                continue;
            }
            if (!isIdentChar(peek()))
                break;
            text += advance();
        }
        if (!eof() && peek() == '"') {
            const bool raw = !text.empty() && text.back() == 'R';
            const std::string_view prefix =
                raw ? std::string_view(text).substr(0, text.size() - 1)
                    : std::string_view(text);
            if (prefix.empty() || isStringPrefix(prefix)) {
                if (raw)
                    rawString();
                else
                    quoted('"', TokenKind::String);
                return;
            }
        }
        if (!eof() && peek() == '\'' && isStringPrefix(text)) {
            quoted('\'', TokenKind::CharLit);
            return;
        }
        emit(TokenKind::Identifier, std::move(text), line);
    }

    void
    step()
    {
        const char c = peek();
        if (c == '\\' && atSplice()) {
            skipSplice();
            return;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            return;
        }
        if (c == '/' && peek(1) == '/') {
            advance();
            advance();
            lineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            blockComment();
            return;
        }
        if (c == '#') {
            advance();
            directive("#");
            return;
        }
        if (c == '%' && peek(1) == ':') {
            // %: digraph — a directive introducer ('#' everywhere it
            // can legally appear outside a macro body).
            advance();
            advance();
            directive("#");
            return;
        }
        if (c == '"') {
            quoted('"', TokenKind::String);
            return;
        }
        if (c == '\'') {
            quoted('\'', TokenKind::CharLit);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            number();
            return;
        }
        if (isIdentStart(c)) {
            identifierOrPrefixedLiteral();
            return;
        }
        // Digraphs map to their primary punctuators so the rules see
        // one spelling. `<:` keeps the standard's `<::` carve-out:
        // `vector<::x>` must scan as `<` `::`, not `[:`.
        if (c == '<' && peek(1) == '%') {
            emitDigraph("{", 2);
            return;
        }
        if (c == '%' && peek(1) == '>') {
            emitDigraph("}", 2);
            return;
        }
        if (c == '<' && peek(1) == ':' &&
            !(peek(2) == ':' && peek(3) != ':' && peek(3) != '>')) {
            emitDigraph("[", 2);
            return;
        }
        if (c == ':' && peek(1) == '>') {
            emitDigraph("]", 2);
            return;
        }
        for (const std::string_view punct : kPuncts) {
            if (src_.compare(pos_, punct.size(), punct) == 0) {
                const std::uint32_t line = line_;
                for (std::size_t i = 0; i < punct.size(); ++i)
                    advance();
                emit(TokenKind::Punct, std::string(punct), line);
                return;
            }
        }
        const std::uint32_t line = line_;
        emit(TokenKind::Punct, std::string(1, advance()), line);
    }

    void
    emitDigraph(std::string text, std::size_t width)
    {
        const std::uint32_t line = line_;
        for (std::size_t i = 0; i < width; ++i)
            advance();
        emit(TokenKind::Punct, std::move(text), line);
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    std::uint32_t line_ = 1;
    LexResult result_;
};

} // namespace

LexResult
lex(std::string_view source)
{
    return Lexer(source).run();
}

} // namespace asd::lint
