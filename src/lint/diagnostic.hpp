#ifndef ASD_LINT_DIAGNOSTIC_HPP
#define ASD_LINT_DIAGNOSTIC_HPP

/**
 * @file
 * The lint diagnostic record shared by the rules, the linter driver,
 * and the asdlint CLI.
 */

#include <cstdint>
#include <string>

namespace asd::lint
{

/** How bad a finding is; both fail the lint gate unless baselined. */
enum class Severity : std::uint8_t
{
    Warning,
    Error,
};

/** @return "warning" or "error". */
inline const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

/** One finding at a file:line, attributed to a named rule. */
struct Diagnostic
{
    std::string file; //!< repo-relative path, forward slashes
    std::uint32_t line = 0;
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;

    /**
     * Semantic anchor, e.g. "PhaseDetector::window_" for a member
     * finding or "writeJson" for a function finding. Empty for plain
     * token-rule diagnostics; surfaced in the asdlint/v2 report.
     */
    std::string symbol;
};

} // namespace asd::lint

#endif // ASD_LINT_DIAGNOSTIC_HPP
