#include "lint/token_util.hpp"

#include <cctype>

namespace asd::lint
{

std::size_t
skipBalanced(const std::vector<Token> &tokens, std::size_t open_index,
             std::string_view open, std::string_view close)
{
    int depth = 0;
    for (std::size_t i = open_index; i < tokens.size(); ++i) {
        if (isPunct(tokens[i], open))
            ++depth;
        else if (isPunct(tokens[i], close) && --depth == 0)
            return i + 1;
    }
    return tokens.size();
}

std::string
quotedInclude(const Token &tok)
{
    if (tok.kind != TokenKind::Directive)
        return {};
    std::size_t i = 0;
    const std::string &text = tok.text;
    auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };
    if (i < text.size() && text[i] == '#')
        ++i;
    skipWs();
    if (text.compare(i, 7, "include") != 0)
        return {};
    i += 7;
    skipWs();
    if (i >= text.size() || text[i] != '"')
        return {};
    const std::size_t close = text.find('"', i + 1);
    if (close == std::string::npos)
        return {};
    return text.substr(i + 1, close - i - 1);
}

std::string
anyInclude(const Token &tok)
{
    const std::string quoted = quotedInclude(tok);
    if (!quoted.empty())
        return quoted;
    if (tok.kind != TokenKind::Directive)
        return {};
    const std::size_t open = tok.text.find('<');
    const std::size_t close = tok.text.find('>', open);
    if (tok.text.find("include") == std::string::npos ||
        open == std::string::npos || close == std::string::npos)
        return {};
    return tok.text.substr(open + 1, close - open - 1);
}

/**
 * Module layering, lowest first — the add_subdirectory order in
 * src/CMakeLists.txt. A file may include its own layer or lower.
 */
namespace
{
constexpr std::string_view kLayerOrder[] = {
    "common", "lint",  "snapshot", "trace",    "vm",
    "os",     "dram",  "cache",    "mc",       "core",
    "prefetch", "telemetry", "cpu", "workloads", "sim",
    "runner", "tuner", "arena",
};
} // namespace

int
layerRank(std::string_view module)
{
    for (std::size_t i = 0; i < std::size(kLayerOrder); ++i)
        if (kLayerOrder[i] == module)
            return static_cast<int>(i);
    return -1;
}

std::string
moduleOf(std::string_view path)
{
    if (path.rfind("src/", 0) == 0)
        path.remove_prefix(4);
    const std::size_t slash = path.find('/');
    return std::string(
        slash == std::string_view::npos ? path
                                        : path.substr(0, slash));
}

} // namespace asd::lint
