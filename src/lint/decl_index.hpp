#ifndef ASD_LINT_DECL_INDEX_HPP
#define ASD_LINT_DECL_INDEX_HPP

/**
 * @file
 * Pass 1 of asdlint v2: a cross-translation-unit declaration index
 * built on the lexer. It is deliberately not a full C++ parser — a
 * recursive token-stream walk recovers exactly what the semantic
 * rules need:
 *
 *   - per-class non-static data-member inventories (name, line,
 *     type tokens, const/static/reference/pointer flags),
 *   - per-method token bodies, both in-class definitions and
 *     out-of-line `Class::method(...) { ... }` definitions bound
 *     back to their class across files,
 *   - free functions with bodies (writeJson, makeJobId, ...),
 *   - base-class lists (so `Snapshottable` subclasses are found
 *     transitively),
 *   - the quoted-include graph.
 *
 * Unrecognized constructs are skipped, never fatal: the index
 * degrades to "less coverage", not "crash on weird code".
 */

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace asd::lint
{

/** One non-static data member of an indexed class. */
struct MemberDecl
{
    std::string name;
    std::uint32_t line = 0;

    /** Declaration tokens before the declarator name. */
    std::vector<std::string> type_tokens;

    bool is_static = false;    //!< static / constexpr
    bool is_const = false;     //!< const-qualified
    bool is_reference = false; //!< declared with &
    bool is_pointer = false;   //!< declared with * (raw pointer)

    /** True when any type token mentions @p text. */
    bool typeMentions(std::string_view text) const;
};

/** One method; the body may live in another file than the class. */
struct MethodDecl
{
    std::string name;
    std::string file; //!< file holding the definition (or decl)
    std::uint32_t line = 0;
    bool has_body = false;
    std::vector<Token> body; //!< tokens between the body braces
};

/** One class or struct, possibly nested. */
struct ClassDecl
{
    std::string name;      //!< unqualified
    std::string qualified; //!< Outer::Inner (namespaces omitted)
    std::string file;
    std::uint32_t line = 0;
    bool is_struct = false;

    /** Last pre-template identifier of each base specifier. */
    std::vector<std::string> bases;

    std::vector<MemberDecl> members;
    std::vector<MethodDecl> methods;

    const MethodDecl *findMethod(std::string_view name) const;

    /**
     * Every identifier referenced from @p method's body, including —
     * transitively — the bodies of same-class methods it calls. The
     * coverage rules use this so `saveState` may delegate to private
     * helpers without losing credit for the members they touch.
     */
    std::set<std::string> referencedFrom(std::string_view method) const;
};

/** One namespace-scope function with a body. */
struct FunctionDecl
{
    std::string name; //!< unqualified
    std::string file;
    std::uint32_t line = 0;

    /** Token texts of the parameter list (parens excluded). */
    std::vector<std::string> param_tokens;

    std::vector<Token> body;

    /** True when any parameter token mentions @p text. */
    bool paramsMention(std::string_view text) const;
};

/** One lexed file as fed to the indexer. */
struct IndexedFile
{
    std::string path; //!< repo-relative, forward slashes
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
    std::vector<std::string> includes; //!< quoted includes (filled in)
};

/** The cross-TU declaration index (pass 1 output). */
class DeclIndex
{
  public:
    std::vector<IndexedFile> files;
    std::vector<ClassDecl> classes;
    std::vector<FunctionDecl> functions;

    /**
     * Look up a class by unqualified or Outer::Inner-qualified name;
     * nullptr when absent. Unqualified lookups prefer an exact
     * unqualified match, then a qualified-suffix match.
     */
    const ClassDecl *findClass(std::string_view name) const;

    /** Classes deriving from @p base, directly or transitively. */
    std::vector<const ClassDecl *>
    derivedFrom(std::string_view base) const;

    /** Every body-carrying function named @p name. */
    std::vector<const FunctionDecl *>
    findFunctions(std::string_view name) const;

    const IndexedFile *findFile(std::string_view path) const;
};

/**
 * Build the index over @p files (ownership taken). Two sub-passes:
 * declarations first, then out-of-line method bodies are bound to
 * their classes — so a .cpp may be indexed before its header.
 */
DeclIndex buildDeclIndex(std::vector<IndexedFile> files);

/** Identifier texts appearing in @p tokens. */
std::set<std::string> identifiersIn(const std::vector<Token> &tokens);

/**
 * Names that appear in call position (identifier directly followed
 * by '(') inside @p tokens.
 */
std::set<std::string> calledNames(const std::vector<Token> &tokens);

} // namespace asd::lint

#endif // ASD_LINT_DECL_INDEX_HPP
