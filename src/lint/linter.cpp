#include "lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"
#include "lint/decl_index.hpp"
#include "lint/lexer.hpp"
#include "lint/semantic_rules.hpp"

namespace asd::lint
{

namespace
{

/**
 * A suppression applies on its own line or the next one. Semantic
 * rules additionally demand a justification: an allow without a
 * reason is inert (and flagged by allow-missing-reason).
 */
bool
suppresses(const Suppression &sup, const Diagnostic &diag)
{
    if (diag.line != sup.line && diag.line != sup.line + 1)
        return false;
    if (sup.reason.empty() && isSemanticRule(diag.rule))
        return false;
    for (const std::string &rule : sup.rules)
        if (rule == "*" || rule == diag.rule)
            return true;
    return false;
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

bool
ruleSelected(const LintOptions &options, const std::string &name)
{
    return options.only_rules.empty() ||
           std::find(options.only_rules.begin(),
                     options.only_rules.end(),
                     name) != options.only_rules.end();
}

/** One lexed source ready for both passes. */
struct LexedSource
{
    std::string path;
    LexResult lexed;
};

/**
 * Run the token rules on one lexed file; suppressions applied.
 */
std::vector<Diagnostic>
tokenPass(const LexedSource &src, const LintOptions &options)
{
    SourceFile file{src.path, src.lexed.tokens};
    std::vector<Diagnostic> raw;
    for (const Rule &rule : ruleRegistry()) {
        if (!ruleSelected(options, rule.name))
            continue;
        rule.check(file, raw);
    }
    std::vector<Diagnostic> kept;
    kept.reserve(raw.size());
    for (Diagnostic &diag : raw) {
        const bool allowed = std::any_of(
            src.lexed.suppressions.begin(),
            src.lexed.suppressions.end(),
            [&](const Suppression &sup) {
                return suppresses(sup, diag);
            });
        if (!allowed)
            kept.push_back(std::move(diag));
    }
    return kept;
}

/**
 * Run the semantic rules over the whole tree; suppressions applied
 * per finding against the file the finding lands in.
 */
std::vector<Diagnostic>
semanticPass(const std::vector<LexedSource> &sources,
             const LintOptions &options)
{
    std::vector<IndexedFile> files;
    files.reserve(sources.size());
    for (const LexedSource &src : sources) {
        IndexedFile f;
        f.path = src.path;
        f.tokens = src.lexed.tokens;
        f.suppressions = src.lexed.suppressions;
        files.push_back(std::move(f));
    }
    const DeclIndex index = buildDeclIndex(std::move(files));

    std::vector<Diagnostic> raw;
    for (const SemanticRule &rule : semanticRuleRegistry()) {
        if (!ruleSelected(options, rule.name))
            continue;
        rule.check(index, raw);
    }
    std::vector<Diagnostic> kept;
    kept.reserve(raw.size());
    for (Diagnostic &diag : raw) {
        const IndexedFile *file = index.findFile(diag.file);
        const bool allowed =
            file && std::any_of(file->suppressions.begin(),
                                file->suppressions.end(),
                                [&](const Suppression &sup) {
                                    return suppresses(sup, diag);
                                });
        if (!allowed)
            kept.push_back(std::move(diag));
    }
    return kept;
}

// --- incremental cache ---------------------------------------------

std::uint64_t
fnv1a(std::string_view text, std::uint64_t seed = 1469598103934665603ull)
{
    std::uint64_t hash = seed;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
toHex(std::uint64_t value)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

std::string
rulesetSignature(const LintOptions &options)
{
    if (options.only_rules.empty())
        return "all";
    std::vector<std::string> sorted = options.only_rules;
    std::sort(sorted.begin(), sorted.end());
    std::string sig;
    for (const std::string &rule : sorted)
        sig += (sig.empty() ? "" : ",") + rule;
    return sig;
}

/** Parsed --cache file: per-file token findings + tree findings. */
struct LintCache
{
    std::string signature;
    std::string tree_hash;
    std::map<std::string, std::string> file_hashes;
    std::map<std::string, std::vector<Diagnostic>> token_diags;
    std::vector<Diagnostic> semantic_diags;
    bool has_semantic = false;
};

Severity
severityFromName(const std::string &name)
{
    return name == "warning" ? Severity::Warning : Severity::Error;
}

/** Split @p line on tabs. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

LintCache
loadCache(const std::string &path)
{
    LintCache cache;
    std::ifstream in(path);
    if (!in)
        return cache; // first run: empty cache
    std::string line;
    std::string current_file;
    bool in_semantic = false;
    while (std::getline(in, line)) {
        if (line.rfind("# asdlint-cache/v2 ", 0) == 0) {
            cache.signature = line.substr(19);
        } else if (line.rfind("tree ", 0) == 0) {
            cache.tree_hash = line.substr(5);
        } else if (line.rfind("file ", 0) == 0) {
            const std::size_t space = line.find(' ', 5);
            if (space == std::string::npos)
                return LintCache{}; // malformed: start over
            current_file = line.substr(space + 1);
            cache.file_hashes[current_file] =
                line.substr(5, space - 5);
            cache.token_diags[current_file];
            in_semantic = false;
        } else if (line == "semantic") {
            in_semantic = true;
            cache.has_semantic = true;
        } else if (line.rfind("d\t", 0) == 0) {
            const std::vector<std::string> parts =
                splitTabs(line.substr(2));
            Diagnostic diag;
            std::size_t at = 0;
            if (in_semantic) {
                if (parts.size() != 6)
                    return LintCache{};
                diag.file = parts[at++];
            } else {
                if (parts.size() != 5 || current_file.empty())
                    return LintCache{};
                diag.file = current_file;
            }
            diag.line = static_cast<std::uint32_t>(
                std::stoul(parts[at]));
            diag.rule = parts[at + 1];
            diag.severity = severityFromName(parts[at + 2]);
            diag.symbol = parts[at + 3] == "-" ? "" : parts[at + 3];
            diag.message = parts[at + 4];
            if (in_semantic)
                cache.semantic_diags.push_back(std::move(diag));
            else
                cache.token_diags[current_file].push_back(
                    std::move(diag));
        }
    }
    return cache;
}

void
appendDiagLine(std::string &out, const Diagnostic &diag,
               bool with_file)
{
    out += "d\t";
    if (with_file)
        out += diag.file + "\t";
    out += std::to_string(diag.line) + "\t" + diag.rule + "\t" +
           severityName(diag.severity) + "\t" +
           (diag.symbol.empty() ? "-" : diag.symbol) + "\t" +
           diag.message + "\n";
}

void
saveCache(const std::string &path, const std::string &signature,
          const std::string &tree_hash,
          const std::vector<std::pair<std::string, std::string>>
              &file_hashes,
          const std::map<std::string, std::vector<Diagnostic>>
              &token_diags,
          const std::vector<Diagnostic> &semantic_diags)
{
    std::string out = "# asdlint-cache/v2 " + signature + "\n";
    out += "tree " + tree_hash + "\n";
    for (const auto &[file, hash] : file_hashes) {
        out += "file " + hash + " " + file + "\n";
        const auto found = token_diags.find(file);
        if (found != token_diags.end())
            for (const Diagnostic &diag : found->second)
                appendDiagLine(out, diag, false);
    }
    out += "semantic\n";
    for (const Diagnostic &diag : semantic_diags)
        appendDiagLine(out, diag, true);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (file)
        file << out; // cache write failures are not fatal
}

} // namespace

std::vector<Diagnostic>
lintSources(const std::vector<SourceInput> &sources,
            const LintOptions &options)
{
    std::vector<LexedSource> lexed;
    lexed.reserve(sources.size());
    for (const SourceInput &src : sources)
        lexed.push_back({src.path, lex(src.content)});

    std::vector<Diagnostic> all;
    for (const LexedSource &src : lexed)
        for (Diagnostic &diag : tokenPass(src, options))
            all.push_back(std::move(diag));
    for (Diagnostic &diag : semanticPass(lexed, options))
        all.push_back(std::move(diag));
    sortDiagnostics(all);
    return all;
}

std::vector<Diagnostic>
lintSource(const std::string &path, std::string_view content,
           const LintOptions &options)
{
    return lintSources({{path, std::string(content)}}, options);
}

std::vector<Diagnostic>
lintFiles(
    const std::vector<std::pair<std::string, std::string>> &files,
    const LintOptions &options)
{
    std::vector<SourceInput> sources;
    sources.reserve(files.size());
    for (const auto &[display_path, fs_path] : files) {
        std::ifstream in(fs_path, std::ios::binary);
        if (!in)
            fatal("asdlint: cannot read " + fs_path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        sources.push_back({display_path, buffer.str()});
    }
    if (options.cache_path.empty())
        return lintSources(sources, options);

    // Incremental mode: per-file content hashes gate the token-rule
    // findings; the whole-tree hash gates the semantic findings (a
    // one-file edit can move cross-TU findings in another file).
    const std::string signature = rulesetSignature(options);
    std::vector<std::pair<std::string, std::string>> hashes;
    std::uint64_t tree_seed = 1469598103934665603ull;
    for (const SourceInput &src : sources) {
        hashes.emplace_back(src.path, toHex(fnv1a(src.content)));
        tree_seed = fnv1a(src.path, tree_seed);
        tree_seed = fnv1a(hashes.back().second, tree_seed);
    }
    const std::string tree_hash = toHex(tree_seed);

    LintCache cache = loadCache(options.cache_path);
    const bool cache_valid = cache.signature == signature;

    if (cache_valid && cache.has_semantic &&
        cache.tree_hash == tree_hash) {
        std::vector<Diagnostic> all;
        for (const auto &[file, hash] : hashes) {
            (void)hash;
            const auto found = cache.token_diags.find(file);
            if (found != cache.token_diags.end())
                for (const Diagnostic &diag : found->second)
                    all.push_back(diag);
        }
        for (const Diagnostic &diag : cache.semantic_diags)
            all.push_back(diag);
        sortDiagnostics(all);
        return all;
    }

    std::vector<LexedSource> lexed;
    lexed.reserve(sources.size());
    for (const SourceInput &src : sources)
        lexed.push_back({src.path, lex(src.content)});

    std::map<std::string, std::vector<Diagnostic>> token_diags;
    for (std::size_t i = 0; i < lexed.size(); ++i) {
        const std::string &file_hash = hashes[i].second;
        const auto cached_hash =
            cache.file_hashes.find(lexed[i].path);
        if (cache_valid && cached_hash != cache.file_hashes.end() &&
            cached_hash->second == file_hash) {
            token_diags[lexed[i].path] =
                cache.token_diags[lexed[i].path];
        } else {
            token_diags[lexed[i].path] =
                tokenPass(lexed[i], options);
        }
    }
    std::vector<Diagnostic> semantic = semanticPass(lexed, options);

    saveCache(options.cache_path, signature, tree_hash, hashes,
              token_diags, semantic);

    std::vector<Diagnostic> all;
    for (auto &[file, diags] : token_diags) {
        (void)file;
        for (Diagnostic &diag : diags)
            all.push_back(std::move(diag));
    }
    for (Diagnostic &diag : semantic)
        all.push_back(std::move(diag));
    sortDiagnostics(all);
    return all;
}

std::vector<Diagnostic>
lintFile(const std::string &display_path, const std::string &fs_path,
         const LintOptions &options)
{
    return lintFiles({{display_path, fs_path}}, options);
}

std::vector<std::string>
collectSources(const std::string &path)
{
    namespace fs = std::filesystem;
    const auto lintable = [](const fs::path &p) {
        const std::string ext = p.extension().string();
        return ext == ".hpp" || ext == ".h" || ext == ".cpp" ||
               ext == ".cc";
    };
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (fs::recursive_directory_iterator it(path, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (it->is_directory(ec) &&
                it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file(ec) && lintable(it->path()))
                out.push_back(it->path().generic_string());
        }
    } else if (fs::is_regular_file(path, ec)) {
        out.push_back(fs::path(path).generic_string());
    } else {
        fatal("asdlint: no such file or directory: " + path);
    }
    std::sort(out.begin(), out.end());
    return out;
}

BaselineCounts
countByFileRule(const std::vector<Diagnostic> &diagnostics)
{
    BaselineCounts counts;
    for (const Diagnostic &diag : diagnostics)
        ++counts[{diag.file, diag.rule}];
    return counts;
}

BaselineCounts
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("asdlint: cannot read baseline " + path);
    BaselineCounts counts;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t tab1 = line.find('\t');
        const std::size_t tab2 =
            tab1 == std::string::npos ? std::string::npos
                                      : line.find('\t', tab1 + 1);
        if (tab2 == std::string::npos)
            fatal("asdlint: malformed baseline line " +
                  std::to_string(lineno) + " in " + path);
        const std::string file = line.substr(0, tab1);
        const std::string rule =
            line.substr(tab1 + 1, tab2 - tab1 - 1);
        const std::size_t count = static_cast<std::size_t>(
            std::stoull(line.substr(tab2 + 1)));
        counts[{file, rule}] += count;
    }
    return counts;
}

std::string
formatBaseline(const BaselineCounts &counts)
{
    std::string out =
        "# asdlint baseline: file<TAB>rule<TAB>count, regenerate "
        "with\n"
        "#   asdlint --write-baseline tools/asdlint_baseline.txt "
        "src bench examples tests\n";
    for (const auto &[key, count] : counts)
        out += key.first + "\t" + key.second + "\t" +
               std::to_string(count) + "\n";
    return out;
}

std::vector<Diagnostic>
aboveBaseline(const std::vector<Diagnostic> &diagnostics,
              const BaselineCounts &baseline)
{
    // diagnostics are sorted per file; skip the first baseline[key]
    // findings of each (file, rule) so longstanding counts pass while
    // anything new fails.
    BaselineCounts seen;
    std::vector<Diagnostic> fresh;
    for (const Diagnostic &diag : diagnostics) {
        const auto key = std::make_pair(diag.file, diag.rule);
        const auto allowed = baseline.find(key);
        const std::size_t budget =
            allowed == baseline.end() ? 0 : allowed->second;
        if (seen[key]++ >= budget)
            fresh.push_back(diag);
    }
    return fresh;
}

std::string
formatBaselineDiff(const BaselineCounts &old,
                   const BaselineCounts &fresh)
{
    std::string out;
    for (const auto &[key, count] : fresh) {
        const auto was = old.find(key);
        const std::size_t before =
            was == old.end() ? 0 : was->second;
        if (count > before)
            out += key.first + "\t" + key.second + "\t+" +
                   std::to_string(count - before) + "\n";
    }
    return out;
}

std::string
formatExpectMismatch(const BaselineCounts &expected,
                     const BaselineCounts &actual)
{
    std::string out;
    for (const auto &[key, count] : expected) {
        const auto got = actual.find(key);
        const std::size_t have =
            got == actual.end() ? 0 : got->second;
        if (have != count)
            out += key.first + "\t" + key.second + "\texpected " +
                   std::to_string(count) + ", got " +
                   std::to_string(have) + "\n";
    }
    for (const auto &[key, count] : actual) {
        if (expected.find(key) == expected.end())
            out += key.first + "\t" + key.second + "\texpected 0" +
                   ", got " + std::to_string(count) + "\n";
    }
    return out;
}

std::string
reportJson(const std::vector<Diagnostic> &diagnostics,
           std::size_t files_scanned)
{
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const Diagnostic &diag : diagnostics)
        (diag.severity == Severity::Error ? errors : warnings) += 1;

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("asdlint/v2");
    w.key("files_scanned")
        .value(static_cast<std::uint64_t>(files_scanned));
    w.key("errors").value(static_cast<std::uint64_t>(errors));
    w.key("warnings").value(static_cast<std::uint64_t>(warnings));
    w.key("diagnostics").beginArray();
    for (const Diagnostic &diag : diagnostics) {
        w.beginObject();
        w.key("file").value(diag.file);
        w.key("line").value(static_cast<std::uint64_t>(diag.line));
        w.key("rule").value(diag.rule);
        w.key("severity").value(severityName(diag.severity));
        w.key("symbol").value(diag.symbol);
        w.key("message").value(diag.message);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace asd::lint
