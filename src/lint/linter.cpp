#include "lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"
#include "lint/lexer.hpp"

namespace asd::lint
{

namespace
{

bool
suppresses(const Suppression &sup, const Diagnostic &diag)
{
    if (diag.line != sup.line && diag.line != sup.line + 1)
        return false;
    for (const std::string &rule : sup.rules)
        if (rule == "*" || rule == diag.rule)
            return true;
    return false;
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace

std::vector<Diagnostic>
lintSource(const std::string &path, std::string_view content,
           const LintOptions &options)
{
    LexResult lexed = lex(content);
    SourceFile file{path, std::move(lexed.tokens)};

    std::vector<Diagnostic> raw;
    for (const Rule &rule : ruleRegistry()) {
        if (!options.only_rules.empty() &&
            std::find(options.only_rules.begin(),
                      options.only_rules.end(),
                      rule.name) == options.only_rules.end())
            continue;
        rule.check(file, raw);
    }

    std::vector<Diagnostic> kept;
    kept.reserve(raw.size());
    for (Diagnostic &diag : raw) {
        const bool allowed = std::any_of(
            lexed.suppressions.begin(), lexed.suppressions.end(),
            [&](const Suppression &sup) {
                return suppresses(sup, diag);
            });
        if (!allowed)
            kept.push_back(std::move(diag));
    }
    sortDiagnostics(kept);
    return kept;
}

std::vector<Diagnostic>
lintFile(const std::string &display_path, const std::string &fs_path,
         const LintOptions &options)
{
    std::ifstream in(fs_path, std::ios::binary);
    if (!in)
        fatal("asdlint: cannot read " + fs_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintSource(display_path, buffer.str(), options);
}

std::vector<std::string>
collectSources(const std::string &path)
{
    namespace fs = std::filesystem;
    const auto lintable = [](const fs::path &p) {
        const std::string ext = p.extension().string();
        return ext == ".hpp" || ext == ".h" || ext == ".cpp" ||
               ext == ".cc";
    };
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (fs::recursive_directory_iterator it(path, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (it->is_regular_file(ec) && lintable(it->path()))
                out.push_back(it->path().generic_string());
        }
    } else if (fs::is_regular_file(path, ec)) {
        out.push_back(fs::path(path).generic_string());
    } else {
        fatal("asdlint: no such file or directory: " + path);
    }
    std::sort(out.begin(), out.end());
    return out;
}

BaselineCounts
countByFileRule(const std::vector<Diagnostic> &diagnostics)
{
    BaselineCounts counts;
    for (const Diagnostic &diag : diagnostics)
        ++counts[{diag.file, diag.rule}];
    return counts;
}

BaselineCounts
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("asdlint: cannot read baseline " + path);
    BaselineCounts counts;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t tab1 = line.find('\t');
        const std::size_t tab2 =
            tab1 == std::string::npos ? std::string::npos
                                      : line.find('\t', tab1 + 1);
        if (tab2 == std::string::npos)
            fatal("asdlint: malformed baseline line " +
                  std::to_string(lineno) + " in " + path);
        const std::string file = line.substr(0, tab1);
        const std::string rule =
            line.substr(tab1 + 1, tab2 - tab1 - 1);
        const std::size_t count = static_cast<std::size_t>(
            std::stoull(line.substr(tab2 + 1)));
        counts[{file, rule}] += count;
    }
    return counts;
}

std::string
formatBaseline(const BaselineCounts &counts)
{
    std::string out =
        "# asdlint baseline: file<TAB>rule<TAB>count, regenerate "
        "with\n"
        "#   asdlint --write-baseline tools/asdlint_baseline.txt "
        "src bench examples tests\n";
    for (const auto &[key, count] : counts)
        out += key.first + "\t" + key.second + "\t" +
               std::to_string(count) + "\n";
    return out;
}

std::vector<Diagnostic>
aboveBaseline(const std::vector<Diagnostic> &diagnostics,
              const BaselineCounts &baseline)
{
    // diagnostics are sorted per file; skip the first baseline[key]
    // findings of each (file, rule) so longstanding counts pass while
    // anything new fails.
    BaselineCounts seen;
    std::vector<Diagnostic> fresh;
    for (const Diagnostic &diag : diagnostics) {
        const auto key = std::make_pair(diag.file, diag.rule);
        const auto allowed = baseline.find(key);
        const std::size_t budget =
            allowed == baseline.end() ? 0 : allowed->second;
        if (seen[key]++ >= budget)
            fresh.push_back(diag);
    }
    return fresh;
}

std::string
reportJson(const std::vector<Diagnostic> &diagnostics,
           std::size_t files_scanned)
{
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const Diagnostic &diag : diagnostics)
        (diag.severity == Severity::Error ? errors : warnings) += 1;

    JsonWriter w;
    w.beginObject();
    w.key("schema").value("asdlint/v1");
    w.key("files_scanned")
        .value(static_cast<std::uint64_t>(files_scanned));
    w.key("errors").value(static_cast<std::uint64_t>(errors));
    w.key("warnings").value(static_cast<std::uint64_t>(warnings));
    w.key("diagnostics").beginArray();
    for (const Diagnostic &diag : diagnostics) {
        w.beginObject();
        w.key("file").value(diag.file);
        w.key("line").value(static_cast<std::uint64_t>(diag.line));
        w.key("rule").value(diag.rule);
        w.key("severity").value(severityName(diag.severity));
        w.key("message").value(diag.message);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace asd::lint
