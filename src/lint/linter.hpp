#ifndef ASD_LINT_LINTER_HPP
#define ASD_LINT_LINTER_HPP

/**
 * @file
 * The asdlint driver: lex a source, run the rule pack, honor
 * `// asdlint:allow(rule)` suppressions, compare against a committed
 * baseline, and render reports (text is the CLI's job; JSON comes
 * from here via common/json).
 */

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"

namespace asd::lint
{

/** Linter configuration. */
struct LintOptions
{
    /** Run only these rules; empty means the whole registry. */
    std::vector<std::string> only_rules;
};

/**
 * Lint one in-memory source. @p path is the repo-relative path used
 * for path-scoped rules and diagnostics; it need not exist on disk
 * (the unit tests feed fixture strings).
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   std::string_view content,
                                   const LintOptions &options = {});

/**
 * Lint a file on disk. @p display_path is used in diagnostics;
 * @p fs_path is read. Fatal on unreadable files.
 */
std::vector<Diagnostic> lintFile(const std::string &display_path,
                                 const std::string &fs_path,
                                 const LintOptions &options = {});

/**
 * Recursively collect lintable sources (.hpp/.h/.cpp/.cc) under
 * @p path (file or directory), sorted for deterministic output.
 * Returned paths are filesystem paths.
 */
std::vector<std::string> collectSources(const std::string &path);

/**
 * Violation counts keyed by (file, rule) — the baseline currency.
 * Only counts survive edits to unrelated lines, so a committed
 * baseline does not rot every time line numbers shift.
 */
using BaselineCounts =
    std::map<std::pair<std::string, std::string>, std::size_t>;

/** Aggregate @p diagnostics into per-(file, rule) counts. */
BaselineCounts countByFileRule(
    const std::vector<Diagnostic> &diagnostics);

/**
 * Parse a baseline file: `file<TAB>rule<TAB>count` lines, '#'
 * comments and blank lines ignored. Fatal on malformed lines.
 */
BaselineCounts loadBaseline(const std::string &path);

/** Serialize @p counts in the loadBaseline() format. */
std::string formatBaseline(const BaselineCounts &counts);

/**
 * Diagnostics in excess of the baseline: for each (file, rule), the
 * first `count - baseline[file, rule]` findings (by line) are new.
 */
std::vector<Diagnostic> aboveBaseline(
    const std::vector<Diagnostic> &diagnostics,
    const BaselineCounts &baseline);

/** JSON report (schema asdlint/v1) for @p diagnostics. */
std::string reportJson(const std::vector<Diagnostic> &diagnostics,
                       std::size_t files_scanned);

} // namespace asd::lint

#endif // ASD_LINT_LINTER_HPP
