#ifndef ASD_LINT_LINTER_HPP
#define ASD_LINT_LINTER_HPP

/**
 * @file
 * The asdlint driver: lex the sources, run the per-file token rules
 * and the cross-TU semantic rules, honor `// asdlint:allow(rule)`
 * suppressions (semantic rules require a justification), compare
 * against a committed baseline, and render reports (text is the
 * CLI's job; JSON comes from here via common/json).
 */

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"

namespace asd::lint
{

/** Linter configuration. */
struct LintOptions
{
    /** Run only these rules; empty means the whole registry. */
    std::vector<std::string> only_rules;

    /**
     * Incremental-cache path; empty disables caching. Files whose
     * content hash is unchanged reuse their token-rule findings;
     * the semantic findings are reused only when the whole tree is
     * unchanged (a one-file edit can move cross-TU findings).
     */
    std::string cache_path;
};

/** One in-memory source fed to the linter. */
struct SourceInput
{
    std::string path; //!< repo-relative, forward slashes
    std::string content;
};

/**
 * Lint a set of in-memory sources together: token rules per file,
 * then the semantic rules over the cross-TU declaration index. The
 * paths need not exist on disk (the unit tests feed fixture
 * strings). LintOptions::cache_path is ignored here.
 */
std::vector<Diagnostic> lintSources(
    const std::vector<SourceInput> &sources,
    const LintOptions &options = {});

/**
 * Lint one in-memory source (a one-element lintSources(); semantic
 * rules see a single-file tree).
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   std::string_view content,
                                   const LintOptions &options = {});

/**
 * Lint files on disk as one tree. Each entry is (display path used
 * in diagnostics, filesystem path read). Fatal on unreadable files.
 * Honors LintOptions::cache_path.
 */
std::vector<Diagnostic> lintFiles(
    const std::vector<std::pair<std::string, std::string>> &files,
    const LintOptions &options = {});

/**
 * Lint a single file on disk (one-element lintFiles()).
 */
std::vector<Diagnostic> lintFile(const std::string &display_path,
                                 const std::string &fs_path,
                                 const LintOptions &options = {});

/**
 * Recursively collect lintable sources (.hpp/.h/.cpp/.cc) under
 * @p path (file or directory), sorted for deterministic output.
 * Returned paths are filesystem paths. Directories named
 * "lint_fixtures" are pruned during recursion: the lint fixture
 * corpus contains deliberate violations and is only linted when
 * named explicitly.
 */
std::vector<std::string> collectSources(const std::string &path);

/**
 * Violation counts keyed by (file, rule) — the baseline currency.
 * Only counts survive edits to unrelated lines, so a committed
 * baseline does not rot every time line numbers shift.
 */
using BaselineCounts =
    std::map<std::pair<std::string, std::string>, std::size_t>;

/** Aggregate @p diagnostics into per-(file, rule) counts. */
BaselineCounts countByFileRule(
    const std::vector<Diagnostic> &diagnostics);

/**
 * Parse a baseline file: `file<TAB>rule<TAB>count` lines, '#'
 * comments and blank lines ignored. Fatal on malformed lines.
 */
BaselineCounts loadBaseline(const std::string &path);

/** Serialize @p counts in the loadBaseline() format. */
std::string formatBaseline(const BaselineCounts &counts);

/**
 * Diagnostics in excess of the baseline: for each (file, rule), the
 * first `count - baseline[file, rule]` findings (by line) are new.
 */
std::vector<Diagnostic> aboveBaseline(
    const std::vector<Diagnostic> &diagnostics,
    const BaselineCounts &baseline);

/**
 * New findings in @p fresh relative to @p old, as
 * `file<TAB>rule<TAB>+delta` lines sorted by path then rule. Empty
 * when nothing new was introduced (reduced or vanished counts are
 * not reported — they are improvements, not regressions).
 */
std::string formatBaselineDiff(const BaselineCounts &old,
                               const BaselineCounts &fresh);

/**
 * Mismatches between @p expected and @p actual counts, in both
 * directions, as human-readable lines sorted by path then rule.
 * Empty when the two agree exactly — the fixture-corpus gate.
 */
std::string formatExpectMismatch(const BaselineCounts &expected,
                                 const BaselineCounts &actual);

/** JSON report (schema asdlint/v2) for @p diagnostics. */
std::string reportJson(const std::vector<Diagnostic> &diagnostics,
                       std::size_t files_scanned);

} // namespace asd::lint

#endif // ASD_LINT_LINTER_HPP
