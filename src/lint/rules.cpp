#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

#include "lint/token_util.hpp"

namespace asd::lint
{

namespace
{

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

bool
containsNoCase(std::string_view haystack, std::string_view needle)
{
    return toLower(haystack).find(toLower(needle)) != std::string::npos;
}

// --- float-in-cost-path --------------------------------------------

/**
 * Files where floating-point arithmetic broke determinism before (the
 * AHB tie-break bug) or would: scheduler cost functions and DRAM bank
 * timing. The energy model (dram/power, dram_config energy fields)
 * and the paper's SLH probability math stay on double by design.
 */
constexpr std::string_view kCostPathFiles[] = {
    "src/mc/scheduler.hpp",
    "src/mc/scheduler.cpp",
    "src/core/adaptive_scheduler.hpp",
    "src/core/adaptive_scheduler.cpp",
    "src/dram/dram.hpp",
    "src/dram/dram.cpp",
};

void
checkFloatInCostPath(const SourceFile &file,
                     std::vector<Diagnostic> &out)
{
    const bool covered =
        std::find(std::begin(kCostPathFiles), std::end(kCostPathFiles),
                  file.path) != std::end(kCostPathFiles);
    if (!covered)
        return;
    for (const Token &tok : file.tokens) {
        if (isIdent(tok, "float") || isIdent(tok, "double")) {
            out.push_back(
                {file.path, tok.line, "float-in-cost-path",
                 Severity::Error,
                 "'" + tok.text +
                     "' in a scheduler/DRAM-timing cost path; use "
                     "integer fixed-point (1/8-cycle units) so ties "
                     "compare exactly",
                 {}});
        }
    }
}

// --- raw-random ----------------------------------------------------

constexpr std::string_view kRawRandomNames[] = {
    "rand",          "srand",      "rand_r",
    "drand48",       "lrand48",    "random_device",
    "mt19937",       "mt19937_64", "minstd_rand",
    "minstd_rand0",  "knuth_b",    "default_random_engine",
};

void
checkRawRandom(const SourceFile &file, std::vector<Diagnostic> &out)
{
    if (file.path.rfind("src/common/random", 0) == 0)
        return;
    for (const Token &tok : file.tokens) {
        if (tok.kind != TokenKind::Identifier)
            continue;
        for (const std::string_view name : kRawRandomNames) {
            if (tok.text == name) {
                out.push_back(
                    {file.path, tok.line, "raw-random",
                     Severity::Error,
                     "'" + tok.text +
                         "' is not reproducible across platforms; "
                         "use asd::Rng from common/random",
                 {}});
                break;
            }
        }
    }
}

// --- narrowing-cast ------------------------------------------------

constexpr std::string_view kNarrowTargets[] = {
    "int8_t",  "int16_t",  "int32_t", "uint8_t",
    "uint16_t", "uint32_t", "short",
};

constexpr std::string_view kWideValueHints[] = {
    "addr", "line", "cycle", "page", "frame", "row",
};

bool
isNarrowTargetType(const std::vector<Token> &toks, std::size_t begin,
                   std::size_t end)
{
    bool narrow = false;
    for (std::size_t i = begin; i < end; ++i) {
        const Token &tok = toks[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        if (tok.text == "double" || tok.text == "float" ||
            tok.text.find("64") != std::string::npos ||
            tok.text == "size_t" || tok.text == "long")
            return false;
        if (std::find(std::begin(kNarrowTargets),
                      std::end(kNarrowTargets),
                      tok.text) != std::end(kNarrowTargets) ||
            tok.text == "int" || tok.text == "unsigned")
            narrow = true;
    }
    return narrow;
}

void
checkNarrowingCast(const SourceFile &file,
                   std::vector<Diagnostic> &out)
{
    const std::vector<Token> &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "static_cast") ||
            !isPunct(toks[i + 1], "<"))
            continue;
        const std::size_t type_end = skipBalanced(toks, i + 1, "<", ">");
        if (type_end >= toks.size() ||
            !isPunct(toks[type_end], "("))
            continue;
        const std::size_t args_end =
            skipBalanced(toks, type_end, "(", ")");
        if (!isNarrowTargetType(toks, i + 2, type_end - 1))
            continue;
        for (std::size_t j = type_end + 1; j + 1 < args_end; ++j) {
            if (toks[j].kind != TokenKind::Identifier)
                continue;
            const bool wide_hint = std::any_of(
                std::begin(kWideValueHints), std::end(kWideValueHints),
                [&](std::string_view h) {
                    return containsNoCase(toks[j].text, h);
                });
            if (wide_hint) {
                out.push_back(
                    {file.path, toks[i].line, "narrowing-cast",
                     Severity::Warning,
                     "static_cast narrows '" + toks[j].text +
                         "' to a sub-64-bit integer; use "
                         "asd::narrow<T>() so truncation panics "
                         "instead of wrapping",
                 {}});
                break;
            }
        }
    }
}

// --- layer-include -------------------------------------------------

void
checkLayerInclude(const SourceFile &file,
                  std::vector<Diagnostic> &out)
{
    if (file.path.rfind("src/", 0) != 0)
        return; // benches/tests/examples may include anything
    const int own_rank = layerRank(moduleOf(file.path));
    if (own_rank < 0)
        return;
    for (const Token &tok : file.tokens) {
        const std::string inc = quotedInclude(tok);
        if (inc.empty())
            continue;
        const int inc_rank = layerRank(moduleOf(inc));
        if (inc_rank > own_rank) {
            out.push_back(
                {file.path, tok.line, "layer-include", Severity::Error,
                 "include of \"" + inc + "\" points up the layering (" +
                     moduleOf(file.path) + " -> " + moduleOf(inc) +
                     "); invert the dependency or move the shared "
                     "piece down",
                 {}});
        }
    }
}

// --- check-side-effect ---------------------------------------------

constexpr std::string_view kCheckCallNames[] = {
    "checkThat",
    "panicIfNot",
    "ASD_CHECK",
    "assert",
};

constexpr std::string_view kMutatingOps[] = {
    "++", "--", "=",  "+=", "-=",  "*=",  "/=",
    "%=", "&=", "|=", "^=", "<<=", ">>=",
};

void
checkCheckSideEffect(const SourceFile &file,
                     std::vector<Diagnostic> &out)
{
    const std::vector<Token> &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const bool is_check = std::any_of(
            std::begin(kCheckCallNames), std::end(kCheckCallNames),
            [&](std::string_view n) { return isIdent(toks[i], n); });
        if (!is_check || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
        for (std::size_t j = i + 2; j + 1 < end; ++j) {
            const bool mutating =
                toks[j].kind == TokenKind::Punct &&
                std::find(std::begin(kMutatingOps),
                          std::end(kMutatingOps),
                          toks[j].text) != std::end(kMutatingOps);
            if (mutating) {
                out.push_back(
                    {file.path, toks[j].line, "check-side-effect",
                     Severity::Error,
                     "'" + toks[j].text + "' inside " + toks[i].text +
                         "(...) mutates state; invariant checks must "
                         "be side-effect free (they vanish when "
                         "checks are off)",
                 {}});
                break;
            }
        }
        i = end > i ? end - 1 : i;
    }
}

} // namespace

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> rules = {
        {"check-side-effect", Severity::Error,
         "no mutation inside checkThat/panicIfNot/assert arguments",
         checkCheckSideEffect},
        {"float-in-cost-path", Severity::Error,
         "no float/double in scheduler or DRAM-timing cost paths",
         checkFloatInCostPath},
        {"layer-include", Severity::Error,
         "includes must not point up the src/ module layering",
         checkLayerInclude},
        {"narrowing-cast", Severity::Warning,
         "cycle/address values need asd::narrow<T>(), not static_cast",
         checkNarrowingCast},
        {"raw-random", Severity::Error,
         "randomness outside common/random is not reproducible",
         checkRawRandom},
    };
    return rules;
}

const Rule *
findRule(const std::string &name)
{
    for (const Rule &rule : ruleRegistry())
        if (rule.name == name)
            return &rule;
    return nullptr;
}

} // namespace asd::lint
