#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace asd::lint
{

namespace
{

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

bool
containsNoCase(std::string_view haystack, std::string_view needle)
{
    return toLower(haystack).find(toLower(needle)) != std::string::npos;
}

bool
isIdent(const Token &tok, std::string_view text)
{
    return tok.kind == TokenKind::Identifier && tok.text == text;
}

bool
isPunct(const Token &tok, std::string_view text)
{
    return tok.kind == TokenKind::Punct && tok.text == text;
}

/**
 * @return the quoted path of an `#include "..."` directive, or an
 * empty string for system includes and non-include directives.
 */
std::string
quotedInclude(const Token &tok)
{
    if (tok.kind != TokenKind::Directive)
        return {};
    std::size_t i = 0;
    const std::string &text = tok.text;
    auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };
    if (i < text.size() && text[i] == '#')
        ++i;
    skipWs();
    if (text.compare(i, 7, "include") != 0)
        return {};
    i += 7;
    skipWs();
    if (i >= text.size() || text[i] != '"')
        return {};
    const std::size_t close = text.find('"', i + 1);
    if (close == std::string::npos)
        return {};
    return text.substr(i + 1, close - i - 1);
}

/** @return the angle-bracket or quoted path of any include. */
std::string
anyInclude(const Token &tok)
{
    const std::string quoted = quotedInclude(tok);
    if (!quoted.empty())
        return quoted;
    if (tok.kind != TokenKind::Directive)
        return {};
    const std::size_t open = tok.text.find('<');
    const std::size_t close = tok.text.find('>', open);
    if (tok.text.find("include") == std::string::npos ||
        open == std::string::npos || close == std::string::npos)
        return {};
    return tok.text.substr(open + 1, close - open - 1);
}

/**
 * Advance past a balanced token group. @p open_index points at the
 * opening token; returns the index one past the matching closer, or
 * tokens.size() when unbalanced.
 */
std::size_t
skipBalanced(const std::vector<Token> &tokens, std::size_t open_index,
             std::string_view open, std::string_view close)
{
    int depth = 0;
    for (std::size_t i = open_index; i < tokens.size(); ++i) {
        if (isPunct(tokens[i], open))
            ++depth;
        else if (isPunct(tokens[i], close) && --depth == 0)
            return i + 1;
    }
    return tokens.size();
}

// --- float-in-cost-path --------------------------------------------

/**
 * Files where floating-point arithmetic broke determinism before (the
 * AHB tie-break bug) or would: scheduler cost functions and DRAM bank
 * timing. The energy model (dram/power, dram_config energy fields)
 * and the paper's SLH probability math stay on double by design.
 */
constexpr std::string_view kCostPathFiles[] = {
    "src/mc/scheduler.hpp",
    "src/mc/scheduler.cpp",
    "src/core/adaptive_scheduler.hpp",
    "src/core/adaptive_scheduler.cpp",
    "src/dram/dram.hpp",
    "src/dram/dram.cpp",
};

void
checkFloatInCostPath(const SourceFile &file,
                     std::vector<Diagnostic> &out)
{
    const bool covered =
        std::find(std::begin(kCostPathFiles), std::end(kCostPathFiles),
                  file.path) != std::end(kCostPathFiles);
    if (!covered)
        return;
    for (const Token &tok : file.tokens) {
        if (isIdent(tok, "float") || isIdent(tok, "double")) {
            out.push_back(
                {file.path, tok.line, "float-in-cost-path",
                 Severity::Error,
                 "'" + tok.text +
                     "' in a scheduler/DRAM-timing cost path; use "
                     "integer fixed-point (1/8-cycle units) so ties "
                     "compare exactly"});
        }
    }
}

// --- unordered-iteration -------------------------------------------

constexpr std::string_view kUnorderedTypes[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

constexpr std::string_view kEmittingIncludes[] = {
    "iostream", "ostream",          "fstream",
    "cstdio",   "stdio.h",          "common/json.hpp",
    "common/table.hpp",             "common/stats.hpp",
    "telemetry/sinks.hpp",
};

constexpr std::string_view kEmittingIdents[] = {
    "cout",    "cerr",   "printf", "fprintf",
    "ofstream", "JsonWriter", "Table",
};

bool
isEmittingTu(const SourceFile &file)
{
    for (const Token &tok : file.tokens) {
        const std::string inc = anyInclude(tok);
        if (!inc.empty()) {
            for (const std::string_view e : kEmittingIncludes)
                if (inc == e)
                    return true;
        }
        if (tok.kind == TokenKind::Identifier) {
            for (const std::string_view e : kEmittingIdents)
                if (tok.text == e)
                    return true;
        }
    }
    return false;
}

void
checkUnorderedIteration(const SourceFile &file,
                        std::vector<Diagnostic> &out)
{
    if (!isEmittingTu(file))
        return;
    const std::vector<Token> &toks = file.tokens;

    // Pass 1: names declared with an unordered container type.
    std::vector<std::string> containers;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool is_unordered = std::any_of(
            std::begin(kUnorderedTypes), std::end(kUnorderedTypes),
            [&](std::string_view t) { return isIdent(toks[i], t); });
        if (!is_unordered || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "<"))
            continue;
        std::size_t after = i + 1;
        int depth = 0;
        for (; after < toks.size(); ++after) {
            if (isPunct(toks[after], "<"))
                ++depth;
            else if (isPunct(toks[after], ">") && --depth == 0) {
                ++after;
                break;
            }
        }
        while (after < toks.size() &&
               (isPunct(toks[after], "&") || isPunct(toks[after], "*")))
            ++after;
        if (after < toks.size() &&
            toks[after].kind == TokenKind::Identifier)
            containers.push_back(toks[after].text);
    }
    if (containers.empty())
        return;
    auto isContainer = [&](const Token &tok) {
        return tok.kind == TokenKind::Identifier &&
               std::find(containers.begin(), containers.end(),
                         tok.text) != containers.end();
    };
    auto diagnose = [&](std::uint32_t line, const std::string &name) {
        out.push_back(
            {file.path, line, "unordered-iteration", Severity::Error,
             "iterating unordered container '" + name +
                 "' in an output-emitting translation unit; hash "
                 "order is not deterministic — copy to a sorted "
                 "container first"});
    };

    // Pass 2a: range-for whose range expression names a container.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
        // Find the range-for ':' at depth 1 (a ';' first means the
        // classic three-clause form; a '?' first starts a ternary).
        int depth = 0;
        int pending_ternary = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < end && colon == 0; ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")"))
                --depth;
            else if (depth == 1 && isPunct(toks[j], ";"))
                break;
            else if (depth == 1 && isPunct(toks[j], "?"))
                ++pending_ternary;
            else if (depth == 1 && isPunct(toks[j], ":")) {
                if (pending_ternary > 0)
                    --pending_ternary;
                else
                    colon = j;
            }
        }
        if (colon == 0)
            continue;
        for (std::size_t j = colon + 1; j + 1 < end; ++j) {
            if (isContainer(toks[j])) {
                diagnose(toks[i].line, toks[j].text);
                break;
            }
        }
    }

    // Pass 2b: explicit iterator walks (name.begin() and friends).
    constexpr std::string_view kBeginNames[] = {"begin", "cbegin",
                                                "rbegin", "crbegin"};
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isContainer(toks[i]) && isPunct(toks[i + 1], ".") &&
            std::any_of(std::begin(kBeginNames),
                        std::end(kBeginNames),
                        [&](std::string_view b) {
                            return isIdent(toks[i + 2], b);
                        }))
            diagnose(toks[i].line, toks[i].text);
    }
}

// --- raw-random ----------------------------------------------------

constexpr std::string_view kRawRandomNames[] = {
    "rand",          "srand",      "rand_r",
    "drand48",       "lrand48",    "random_device",
    "mt19937",       "mt19937_64", "minstd_rand",
    "minstd_rand0",  "knuth_b",    "default_random_engine",
};

void
checkRawRandom(const SourceFile &file, std::vector<Diagnostic> &out)
{
    if (file.path.rfind("src/common/random", 0) == 0)
        return;
    for (const Token &tok : file.tokens) {
        if (tok.kind != TokenKind::Identifier)
            continue;
        for (const std::string_view name : kRawRandomNames) {
            if (tok.text == name) {
                out.push_back(
                    {file.path, tok.line, "raw-random",
                     Severity::Error,
                     "'" + tok.text +
                         "' is not reproducible across platforms; "
                         "use asd::Rng from common/random"});
                break;
            }
        }
    }
}

// --- narrowing-cast ------------------------------------------------

constexpr std::string_view kNarrowTargets[] = {
    "int8_t",  "int16_t",  "int32_t", "uint8_t",
    "uint16_t", "uint32_t", "short",
};

constexpr std::string_view kWideValueHints[] = {
    "addr", "line", "cycle", "page", "frame", "row",
};

bool
isNarrowTargetType(const std::vector<Token> &toks, std::size_t begin,
                   std::size_t end)
{
    bool narrow = false;
    for (std::size_t i = begin; i < end; ++i) {
        const Token &tok = toks[i];
        if (tok.kind != TokenKind::Identifier)
            continue;
        if (tok.text == "double" || tok.text == "float" ||
            tok.text.find("64") != std::string::npos ||
            tok.text == "size_t" || tok.text == "long")
            return false;
        if (std::find(std::begin(kNarrowTargets),
                      std::end(kNarrowTargets),
                      tok.text) != std::end(kNarrowTargets) ||
            tok.text == "int" || tok.text == "unsigned")
            narrow = true;
    }
    return narrow;
}

void
checkNarrowingCast(const SourceFile &file,
                   std::vector<Diagnostic> &out)
{
    const std::vector<Token> &toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isIdent(toks[i], "static_cast") ||
            !isPunct(toks[i + 1], "<"))
            continue;
        const std::size_t type_end = skipBalanced(toks, i + 1, "<", ">");
        if (type_end >= toks.size() ||
            !isPunct(toks[type_end], "("))
            continue;
        const std::size_t args_end =
            skipBalanced(toks, type_end, "(", ")");
        if (!isNarrowTargetType(toks, i + 2, type_end - 1))
            continue;
        for (std::size_t j = type_end + 1; j + 1 < args_end; ++j) {
            if (toks[j].kind != TokenKind::Identifier)
                continue;
            const bool wide_hint = std::any_of(
                std::begin(kWideValueHints), std::end(kWideValueHints),
                [&](std::string_view h) {
                    return containsNoCase(toks[j].text, h);
                });
            if (wide_hint) {
                out.push_back(
                    {file.path, toks[i].line, "narrowing-cast",
                     Severity::Warning,
                     "static_cast narrows '" + toks[j].text +
                         "' to a sub-64-bit integer; use "
                         "asd::narrow<T>() so truncation panics "
                         "instead of wrapping"});
                break;
            }
        }
    }
}

// --- layer-include -------------------------------------------------

/**
 * Module layering, lowest first — the add_subdirectory order in
 * src/CMakeLists.txt. A file may include its own layer or lower.
 */
constexpr std::string_view kLayerOrder[] = {
    "common", "lint",  "snapshot", "trace",    "vm",
    "dram",   "cache", "mc",       "core",     "prefetch",
    "telemetry", "cpu", "workloads", "sim",    "runner",
    "tuner",  "arena",
};

int
layerRank(std::string_view module)
{
    for (std::size_t i = 0; i < std::size(kLayerOrder); ++i)
        if (kLayerOrder[i] == module)
            return static_cast<int>(i);
    return -1;
}

/** @return the first path component after an optional "src/". */
std::string
moduleOf(std::string_view path)
{
    if (path.rfind("src/", 0) == 0)
        path.remove_prefix(4);
    const std::size_t slash = path.find('/');
    return std::string(
        slash == std::string_view::npos ? path
                                        : path.substr(0, slash));
}

void
checkLayerInclude(const SourceFile &file,
                  std::vector<Diagnostic> &out)
{
    if (file.path.rfind("src/", 0) != 0)
        return; // benches/tests/examples may include anything
    const int own_rank = layerRank(moduleOf(file.path));
    if (own_rank < 0)
        return;
    for (const Token &tok : file.tokens) {
        const std::string inc = quotedInclude(tok);
        if (inc.empty())
            continue;
        const int inc_rank = layerRank(moduleOf(inc));
        if (inc_rank > own_rank) {
            out.push_back(
                {file.path, tok.line, "layer-include", Severity::Error,
                 "include of \"" + inc + "\" points up the layering (" +
                     moduleOf(file.path) + " -> " + moduleOf(inc) +
                     "); invert the dependency or move the shared "
                     "piece down"});
        }
    }
}

// --- check-side-effect ---------------------------------------------

constexpr std::string_view kCheckCallNames[] = {
    "checkThat",
    "panicIfNot",
    "ASD_CHECK",
    "assert",
};

constexpr std::string_view kMutatingOps[] = {
    "++", "--", "=",  "+=", "-=",  "*=",  "/=",
    "%=", "&=", "|=", "^=", "<<=", ">>=",
};

void
checkCheckSideEffect(const SourceFile &file,
                     std::vector<Diagnostic> &out)
{
    const std::vector<Token> &toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const bool is_check = std::any_of(
            std::begin(kCheckCallNames), std::end(kCheckCallNames),
            [&](std::string_view n) { return isIdent(toks[i], n); });
        if (!is_check || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t end = skipBalanced(toks, i + 1, "(", ")");
        for (std::size_t j = i + 2; j + 1 < end; ++j) {
            const bool mutating =
                toks[j].kind == TokenKind::Punct &&
                std::find(std::begin(kMutatingOps),
                          std::end(kMutatingOps),
                          toks[j].text) != std::end(kMutatingOps);
            if (mutating) {
                out.push_back(
                    {file.path, toks[j].line, "check-side-effect",
                     Severity::Error,
                     "'" + toks[j].text + "' inside " + toks[i].text +
                         "(...) mutates state; invariant checks must "
                         "be side-effect free (they vanish when "
                         "checks are off)"});
                break;
            }
        }
        i = end > i ? end - 1 : i;
    }
}

} // namespace

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> rules = {
        {"check-side-effect", Severity::Error,
         "no mutation inside checkThat/panicIfNot/assert arguments",
         checkCheckSideEffect},
        {"float-in-cost-path", Severity::Error,
         "no float/double in scheduler or DRAM-timing cost paths",
         checkFloatInCostPath},
        {"layer-include", Severity::Error,
         "includes must not point up the src/ module layering",
         checkLayerInclude},
        {"narrowing-cast", Severity::Warning,
         "cycle/address values need asd::narrow<T>(), not static_cast",
         checkNarrowingCast},
        {"raw-random", Severity::Error,
         "randomness outside common/random is not reproducible",
         checkRawRandom},
        {"unordered-iteration", Severity::Error,
         "no unordered-container iteration in emitting TUs",
         checkUnorderedIteration},
    };
    return rules;
}

const Rule *
findRule(const std::string &name)
{
    for (const Rule &rule : ruleRegistry())
        if (rule.name == name)
            return &rule;
    return nullptr;
}

} // namespace asd::lint
