#include "lint/decl_index.hpp"

#include <algorithm>
#include <utility>

#include "lint/token_util.hpp"

namespace asd::lint
{

namespace
{

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/**
 * Skip a template-argument list. @p open_index points at '<';
 * returns the index one past the matching '>' (a '>>' token closes
 * two levels), or @p open_index when the construct does not look
 * like a template (so the caller treats '<' as an operator).
 */
std::size_t
skipAngles(const std::vector<Token> &t, std::size_t open_index)
{
    int depth = 0;
    for (std::size_t i = open_index; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.kind != TokenKind::Punct)
            continue;
        if (tok.text == "<") {
            ++depth;
        } else if (tok.text == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (tok.text == ">>") {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (tok.text == ";" || tok.text == "{" ||
                   tok.text == "}" || tok.text == "<<") {
            return open_index; // not a template-argument list
        }
    }
    return open_index;
}

/**
 * Advance to just past the ';' that ends the statement starting at
 * @p pos, balancing parens/brackets/braces. A top-level brace group
 * (e.g. an in-class friend definition) also ends the statement; a
 * trailing ';' after it is consumed.
 */
std::size_t
skipStatement(const std::vector<Token> &t, std::size_t pos,
              std::size_t end)
{
    for (std::size_t i = pos; i < end; ++i) {
        if (isPunct(t[i], ";"))
            return i + 1;
        if (isPunct(t[i], "(")) {
            i = skipBalanced(t, i, "(", ")") - 1;
        } else if (isPunct(t[i], "[")) {
            i = skipBalanced(t, i, "[", "]") - 1;
        } else if (isPunct(t[i], "{")) {
            const std::size_t after = skipBalanced(t, i, "{", "}");
            return after < end && isPunct(t[after], ";") ? after + 1
                                                         : after;
        } else if (isPunct(t[i], "}")) {
            return i; // ran into the enclosing scope's closer
        }
    }
    return end;
}

/** One scanned declaration-ish chunk at class or namespace scope. */
struct Chunk
{
    std::size_t end = 0;        //!< one past the chunk
    bool is_function = false;   //!< saw `ident (` in declarator spot
    std::size_t name_index = kNpos; //!< the ident before the '('
    std::size_t params_begin = kNpos, params_end = kNpos;
    bool has_body = false;
    std::size_t body_begin = kNpos, body_end = kNpos;
    std::size_t decl_end = kNpos;   //!< first of '=', '{', ';'
    std::size_t pointer_paren = kNpos; //!< `( *` declarator group
};

/** Skip an initializer: everything up to the ';' at depth 0. */
std::size_t
skipInitializer(const std::vector<Token> &t, std::size_t pos,
                std::size_t end)
{
    for (std::size_t i = pos; i < end; ++i) {
        if (isPunct(t[i], ";"))
            return i;
        if (isPunct(t[i], "("))
            i = skipBalanced(t, i, "(", ")") - 1;
        else if (isPunct(t[i], "["))
            i = skipBalanced(t, i, "[", "]") - 1;
        else if (isPunct(t[i], "{"))
            i = skipBalanced(t, i, "{", "}") - 1;
        else if (isPunct(t[i], "}"))
            return i;
    }
    return end;
}

/**
 * Scan one declaration chunk starting at @p pos. Understands enough
 * declarator shape to answer: is this a function (and where are its
 * name, parameters, and body), or a member/variable declaration
 * (and where does the declarator list end)?
 */
Chunk
scanChunk(const std::vector<Token> &t, std::size_t pos,
          std::size_t end)
{
    Chunk c;
    std::size_t i = pos;
    while (i < end) {
        const Token &tok = t[i];
        if (isPunct(tok, ";")) {
            if (c.decl_end == kNpos)
                c.decl_end = i;
            c.end = i + 1;
            return c;
        }
        if (isPunct(tok, "}")) {
            // Enclosing scope closer: malformed chunk, stop here.
            if (c.decl_end == kNpos)
                c.decl_end = i;
            c.end = i;
            return c;
        }
        if (isPunct(tok, "=") && !c.is_function) {
            if (c.decl_end == kNpos)
                c.decl_end = i;
            i = skipInitializer(t, i + 1, end);
            continue;
        }
        if (isPunct(tok, "=") && c.is_function) {
            // = 0 / = default / = delete
            i = skipInitializer(t, i + 1, end);
            continue;
        }
        if (isPunct(tok, "{")) {
            if (c.is_function) {
                const std::size_t after =
                    skipBalanced(t, i, "{", "}");
                c.has_body = true;
                c.body_begin = i + 1;
                c.body_end = after > i ? after - 1 : i + 1;
                c.end = after;
                return c;
            }
            if (c.decl_end == kNpos)
                c.decl_end = i;
            i = skipBalanced(t, i, "{", "}");
            continue;
        }
        if (isPunct(tok, "(")) {
            if (!c.is_function && c.decl_end == kNpos) {
                if (i + 1 < end && (isPunct(t[i + 1], "*") ||
                                    isPunct(t[i + 1], "&"))) {
                    c.pointer_paren = i;
                    i = skipBalanced(t, i, "(", ")");
                    continue;
                }
                if (i > pos &&
                    t[i - 1].kind == TokenKind::Identifier) {
                    c.is_function = true;
                    c.name_index = i - 1;
                    c.params_begin = i + 1;
                    const std::size_t after =
                        skipBalanced(t, i, "(", ")");
                    c.params_end = after > i ? after - 1 : i + 1;
                    i = after;
                    continue;
                }
            }
            i = skipBalanced(t, i, "(", ")");
            continue;
        }
        if (isPunct(tok, "[")) {
            i = skipBalanced(t, i, "[", "]");
            continue;
        }
        if (isPunct(tok, "<") && i > pos &&
            t[i - 1].kind == TokenKind::Identifier) {
            const std::size_t after = skipAngles(t, i);
            i = after > i ? after : i + 1;
            continue;
        }
        ++i;
    }
    if (c.decl_end == kNpos)
        c.decl_end = end;
    c.end = end;
    return c;
}

/**
 * Split the declarator list [pos, decl_end) of a member statement
 * into declarators and append MemberDecls. The first segment carries
 * the type; later comma-separated segments share it.
 */
void
parseMemberDeclarators(const std::vector<Token> &t, std::size_t pos,
                       std::size_t decl_end, const Chunk &chunk,
                       ClassDecl &cls)
{
    if (chunk.pointer_paren != kNpos) {
        // `void (*hook_)(int);` — the name hides inside the parens.
        for (std::size_t i = chunk.pointer_paren + 1; i < decl_end;
             ++i) {
            if (t[i].kind == TokenKind::Identifier) {
                MemberDecl m;
                m.name = t[i].text;
                m.line = t[i].line;
                m.is_pointer = true;
                for (std::size_t k = pos; k < chunk.pointer_paren;
                     ++k)
                    m.type_tokens.push_back(t[k].text);
                cls.members.push_back(std::move(m));
                return;
            }
            if (isPunct(t[i], ")"))
                return;
        }
        return;
    }

    // Split on top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    std::size_t seg_start = pos;
    for (std::size_t i = pos; i < decl_end; ++i) {
        if (isPunct(t[i], "(")) {
            i = skipBalanced(t, i, "(", ")") - 1;
        } else if (isPunct(t[i], "[")) {
            i = skipBalanced(t, i, "[", "]") - 1;
        } else if (isPunct(t[i], "{")) {
            i = skipBalanced(t, i, "{", "}") - 1;
        } else if (isPunct(t[i], "<") && i > pos &&
                   t[i - 1].kind == TokenKind::Identifier) {
            const std::size_t after = skipAngles(t, i);
            if (after > i)
                i = after - 1;
        } else if (isPunct(t[i], ",")) {
            segments.emplace_back(seg_start, i);
            seg_start = i + 1;
        }
    }
    segments.emplace_back(seg_start, decl_end);

    // Name = last identifier of a segment, skipping array suffixes
    // and an optional bitfield width.
    const auto nameIndexOf =
        [&](std::size_t begin, std::size_t seg_end) -> std::size_t {
        std::size_t k = seg_end;
        while (k > begin) {
            --k;
            if (isPunct(t[k], "]")) {
                int depth = 0;
                while (k > begin) {
                    if (isPunct(t[k], "]"))
                        ++depth;
                    else if (isPunct(t[k], "[") && --depth == 0)
                        break;
                    --k;
                }
                continue;
            }
            if (t[k].kind == TokenKind::Identifier)
                return k;
        }
        return kNpos;
    };

    // Bitfield: `int flag : 3;` — the width is not the name.
    std::size_t first_end = segments[0].second;
    for (std::size_t i = segments[0].first; i < first_end; ++i) {
        if (isPunct(t[i], ":") &&
            !(i > segments[0].first && isPunct(t[i - 1], ":"))) {
            first_end = i;
            break;
        }
    }

    const std::size_t first_name =
        nameIndexOf(segments[0].first, first_end);
    if (first_name == kNpos)
        return;

    std::vector<std::string> type_tokens;
    for (std::size_t k = segments[0].first; k < first_name; ++k)
        type_tokens.push_back(t[k].text);
    if (type_tokens.empty())
        return; // a lone identifier is not a member declaration

    const auto flagsFrom = [](const std::vector<std::string> &texts,
                              MemberDecl &m) {
        for (const std::string &text : texts) {
            if (text == "static" || text == "constexpr")
                m.is_static = true;
            else if (text == "const")
                m.is_const = true;
            else if (text == "&" || text == "&&")
                m.is_reference = true;
            else if (text == "*")
                m.is_pointer = true;
        }
    };

    for (std::size_t s = 0; s < segments.size(); ++s) {
        const std::size_t name_idx =
            s == 0 ? first_name
                   : nameIndexOf(segments[s].first,
                                 segments[s].second);
        if (name_idx == kNpos)
            continue;
        MemberDecl m;
        m.name = t[name_idx].text;
        m.line = t[name_idx].line;
        m.type_tokens = type_tokens;
        flagsFrom(type_tokens, m);
        if (s > 0) {
            // declarator-local * / & override the shared type's
            std::vector<std::string> local;
            for (std::size_t k = segments[s].first; k < name_idx; ++k)
                local.push_back(t[k].text);
            flagsFrom(local, m);
        }
        cls.members.push_back(std::move(m));
    }
}

/** An out-of-line `A::B::method(...) { ... }` awaiting binding. */
struct PendingBody
{
    std::vector<std::string> class_path;
    std::string method;
    std::string file;
    std::uint32_t line = 0;
    std::vector<Token> body;
};

class Builder
{
  public:
    explicit Builder(DeclIndex &index) : index_(index) {}

    void
    file(IndexedFile &f)
    {
        path_ = f.path;
        const std::vector<Token> &t = f.tokens;
        for (const Token &tok : t) {
            const std::string inc = quotedInclude(tok);
            if (!inc.empty())
                f.includes.push_back(inc);
        }
        parseScope(t, 0, t.size(), "");
    }

    void
    bindPending()
    {
        for (PendingBody &p : pending_) {
            ClassDecl *cls = resolveClass(p.class_path);
            if (!cls)
                continue;
            MethodDecl *slot = nullptr;
            for (MethodDecl &m : cls->methods)
                if (m.name == p.method && !m.has_body) {
                    slot = &m;
                    break;
                }
            if (!slot) {
                cls->methods.push_back({});
                slot = &cls->methods.back();
                slot->name = p.method;
            }
            slot->file = p.file;
            slot->line = p.line;
            slot->has_body = true;
            slot->body = std::move(p.body);
        }
        pending_.clear();
    }

  private:
    /** Innermost-first match of a qualifier path against classes. */
    ClassDecl *
    resolveClass(const std::vector<std::string> &class_path)
    {
        std::string joined;
        for (const std::string &part : class_path)
            joined += (joined.empty() ? "" : "::") + part;
        for (ClassDecl &cls : index_.classes)
            if (cls.qualified == joined)
                return &cls;
        const std::string suffix = "::" + joined;
        for (ClassDecl &cls : index_.classes) {
            if (cls.qualified.size() > suffix.size() &&
                cls.qualified.compare(cls.qualified.size() -
                                          suffix.size(),
                                      suffix.size(), suffix) == 0)
                return &cls;
        }
        for (ClassDecl &cls : index_.classes)
            if (cls.name == class_path.back())
                return &cls;
        return nullptr;
    }

    /** Namespace / global scope. @p outer is the class-name prefix. */
    void
    parseScope(const std::vector<Token> &t, std::size_t pos,
               std::size_t end, const std::string &outer)
    {
        std::size_t i = pos;
        while (i < end) {
            const Token &tok = t[i];
            if (tok.kind == TokenKind::Directive) {
                ++i;
                continue;
            }
            if (isIdent(tok, "namespace")) {
                std::size_t j = i + 1;
                while (j < end &&
                       (t[j].kind == TokenKind::Identifier ||
                        isPunct(t[j], "::")))
                    ++j;
                if (j < end && isPunct(t[j], "{")) {
                    const std::size_t after =
                        skipBalanced(t, j, "{", "}");
                    parseScope(t, j + 1,
                               after > j ? after - 1 : j + 1, outer);
                    i = after;
                } else {
                    i = skipStatement(t, i, end); // alias / odd form
                }
                continue;
            }
            if (isIdent(tok, "template")) {
                if (i + 1 < end && isPunct(t[i + 1], "<")) {
                    const std::size_t after = skipAngles(t, i + 1);
                    i = after > i + 1 ? after : i + 2;
                } else {
                    ++i;
                }
                continue;
            }
            if (isIdent(tok, "using") || isIdent(tok, "typedef") ||
                isIdent(tok, "static_assert") ||
                isIdent(tok, "friend")) {
                i = skipStatement(t, i, end);
                continue;
            }
            if (isIdent(tok, "enum") || isIdent(tok, "union")) {
                i = skipEnumOrUnion(t, i, end);
                continue;
            }
            if ((isIdent(tok, "class") || isIdent(tok, "struct")) &&
                looksLikeClassDefinition(t, i, end)) {
                i = parseClass(t, i, end, outer);
                i = skipStatement(t, i, end); // optional declarator
                continue;
            }
            if (isIdent(tok, "extern") && i + 1 < end &&
                t[i + 1].kind == TokenKind::String) {
                i += 2;
                if (i < end && isPunct(t[i], "{")) {
                    const std::size_t after =
                        skipBalanced(t, i, "{", "}");
                    parseScope(t, i + 1,
                               after > i ? after - 1 : i + 1, outer);
                    i = after;
                }
                continue;
            }
            if (isPunct(tok, "{") || isPunct(tok, "}") ||
                isPunct(tok, ";")) {
                i = isPunct(tok, "{")
                        ? skipBalanced(t, i, "{", "}")
                        : i + 1;
                continue;
            }

            const Chunk c = scanChunk(t, i, end);
            if (c.is_function && c.has_body &&
                c.name_index != kNpos)
                recordFunction(t, c, outer);
            i = c.end > i ? c.end : i + 1;
        }
    }

    /** True when `class`/`struct` at @p i introduces a definition. */
    bool
    looksLikeClassDefinition(const std::vector<Token> &t,
                             std::size_t i, std::size_t end) const
    {
        std::size_t j = i + 1;
        while (j < end && isPunct(t[j], "["))
            j = skipBalanced(t, j, "[", "]");
        if (j < end && isIdent(t[j], "alignas") && j + 1 < end &&
            isPunct(t[j + 1], "("))
            j = skipBalanced(t, j + 1, "(", ")");
        if (j >= end || t[j].kind != TokenKind::Identifier)
            return j < end && isPunct(t[j], "{"); // anonymous
        ++j;
        if (j < end && isIdent(t[j], "final"))
            ++j;
        return j < end &&
               (isPunct(t[j], "{") || isPunct(t[j], ":"));
    }

    std::size_t
    skipEnumOrUnion(const std::vector<Token> &t, std::size_t i,
                    std::size_t end) const
    {
        std::size_t j = i + 1;
        while (j < end && !isPunct(t[j], "{") &&
               !isPunct(t[j], ";") && !isPunct(t[j], "}"))
            ++j;
        if (j < end && isPunct(t[j], "{"))
            j = skipBalanced(t, j, "{", "}");
        return skipStatement(t, j, end);
    }

    /**
     * Parse a class definition at @p i (keyword position); returns
     * the index one past the body's '}' (the caller consumes any
     * trailing declarator and ';').
     */
    std::size_t
    parseClass(const std::vector<Token> &t, std::size_t i,
               std::size_t end, const std::string &outer)
    {
        const bool is_struct = isIdent(t[i], "struct");
        std::size_t j = i + 1;
        while (j < end && isPunct(t[j], "["))
            j = skipBalanced(t, j, "[", "]");
        if (j < end && isIdent(t[j], "alignas") && j + 1 < end &&
            isPunct(t[j + 1], "("))
            j = skipBalanced(t, j + 1, "(", ")");
        std::string name;
        std::uint32_t line = t[i].line;
        if (j < end && t[j].kind == TokenKind::Identifier) {
            name = t[j].text;
            line = t[j].line;
            ++j;
        }
        if (j < end && isIdent(t[j], "final"))
            ++j;

        std::vector<std::string> bases;
        if (j < end && isPunct(t[j], ":")) {
            ++j;
            std::string last_ident;
            bool in_template = false;
            while (j < end && !isPunct(t[j], "{")) {
                if (isPunct(t[j], "<")) {
                    const std::size_t after = skipAngles(t, j);
                    in_template = true;
                    j = after > j ? after : j + 1;
                    continue;
                }
                if (isPunct(t[j], ",")) {
                    if (!last_ident.empty())
                        bases.push_back(last_ident);
                    last_ident.clear();
                    in_template = false;
                    ++j;
                    continue;
                }
                if (t[j].kind == TokenKind::Identifier &&
                    !in_template && !isIdent(t[j], "public") &&
                    !isIdent(t[j], "private") &&
                    !isIdent(t[j], "protected") &&
                    !isIdent(t[j], "virtual"))
                    last_ident = t[j].text;
                ++j;
            }
            if (!last_ident.empty())
                bases.push_back(last_ident);
        }

        if (j >= end || !isPunct(t[j], "{"))
            return j; // not actually a definition; bail gracefully

        const std::size_t after = skipBalanced(t, j, "{", "}");
        if (!name.empty()) {
            ClassDecl cls;
            cls.name = name;
            cls.qualified =
                outer.empty() ? name : outer + "::" + name;
            cls.file = path_;
            cls.line = line;
            cls.is_struct = is_struct;
            cls.bases = std::move(bases);
            const std::size_t body_end = after > j ? after - 1 : j + 1;
            parseClassBody(t, j + 1, body_end, cls);
            index_.classes.push_back(std::move(cls));
        }
        return after;
    }

    void
    parseClassBody(const std::vector<Token> &t, std::size_t pos,
                   std::size_t end, ClassDecl &cls)
    {
        std::size_t i = pos;
        while (i < end) {
            const Token &tok = t[i];
            if (tok.kind == TokenKind::Directive ||
                isPunct(tok, ";")) {
                ++i;
                continue;
            }
            if ((isIdent(tok, "public") || isIdent(tok, "private") ||
                 isIdent(tok, "protected")) &&
                i + 1 < end && isPunct(t[i + 1], ":")) {
                i += 2;
                continue;
            }
            if (isIdent(tok, "using") || isIdent(tok, "typedef") ||
                isIdent(tok, "friend") ||
                isIdent(tok, "static_assert")) {
                i = skipStatement(t, i, end);
                continue;
            }
            if (isIdent(tok, "template")) {
                if (i + 1 < end && isPunct(t[i + 1], "<")) {
                    const std::size_t after = skipAngles(t, i + 1);
                    i = after > i + 1 ? after : i + 2;
                } else {
                    ++i;
                }
                continue;
            }
            if (isIdent(tok, "enum") || isIdent(tok, "union")) {
                i = skipEnumOrUnion(t, i, end);
                continue;
            }
            if ((isIdent(tok, "class") || isIdent(tok, "struct")) &&
                looksLikeClassDefinition(t, i, end)) {
                i = parseClass(t, i, end, cls.qualified);
                // `struct Inner { ... } member_;`
                if (i < end &&
                    t[i].kind == TokenKind::Identifier) {
                    MemberDecl m;
                    m.name = t[i].text;
                    m.line = t[i].line;
                    m.type_tokens.push_back("struct");
                    cls.members.push_back(std::move(m));
                }
                i = skipStatement(t, i, end);
                continue;
            }

            const Chunk c = scanChunk(t, i, end);
            if (c.is_function && c.name_index != kNpos) {
                MethodDecl m;
                m.name = t[c.name_index].text;
                if (c.name_index > i &&
                    isPunct(t[c.name_index - 1], "~"))
                    m.name = "~" + m.name;
                m.file = path_;
                m.line = t[c.name_index].line;
                if (c.has_body) {
                    m.has_body = true;
                    m.body.assign(t.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          c.body_begin),
                                  t.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          c.body_end));
                }
                cls.methods.push_back(std::move(m));
            } else if (!c.is_function) {
                parseMemberDeclarators(t, i, c.decl_end, c, cls);
            }
            i = c.end > i ? c.end : i + 1;
        }
    }

    void
    recordFunction(const std::vector<Token> &t, const Chunk &c,
                   const std::string &outer)
    {
        // Walk the `A::B::name` qualifier chain backwards.
        std::vector<std::string> chain;
        std::size_t k = c.name_index;
        std::string name = t[k].text;
        if (k > 0 && isPunct(t[k - 1], "~")) {
            name = "~" + name;
            --k;
        }
        chain.push_back(name);
        while (k >= 2 && isPunct(t[k - 1], "::") &&
               t[k - 2].kind == TokenKind::Identifier) {
            chain.insert(chain.begin(), t[k - 2].text);
            k -= 2;
        }

        std::vector<Token> body(
            t.begin() + static_cast<std::ptrdiff_t>(c.body_begin),
            t.begin() + static_cast<std::ptrdiff_t>(c.body_end));

        if (chain.size() == 1 && outer.empty()) {
            FunctionDecl fn;
            fn.name = chain[0];
            fn.file = path_;
            fn.line = t[c.name_index].line;
            for (std::size_t p = c.params_begin;
                 p < c.params_end && p < t.size(); ++p)
                fn.param_tokens.push_back(t[p].text);
            fn.body = std::move(body);
            index_.functions.push_back(std::move(fn));
            return;
        }
        PendingBody p;
        if (chain.size() == 1) {
            // In-scope definition while outer is a class? Cannot
            // happen (class bodies are parsed separately); treat the
            // whole chain as a free function.
            FunctionDecl fn;
            fn.name = chain[0];
            fn.file = path_;
            fn.line = t[c.name_index].line;
            for (std::size_t q = c.params_begin;
                 q < c.params_end && q < t.size(); ++q)
                fn.param_tokens.push_back(t[q].text);
            fn.body = std::move(body);
            index_.functions.push_back(std::move(fn));
            return;
        }
        p.method = chain.back();
        chain.pop_back();
        p.class_path = std::move(chain);
        p.file = path_;
        p.line = t[c.name_index].line;
        p.body = std::move(body);
        pending_.push_back(std::move(p));
    }

    DeclIndex &index_;
    std::string path_;
    std::vector<PendingBody> pending_;
};

} // namespace

bool
MemberDecl::typeMentions(std::string_view text) const
{
    for (const std::string &tok : type_tokens)
        if (tok.find(text) != std::string::npos)
            return true;
    return false;
}

bool
FunctionDecl::paramsMention(std::string_view text) const
{
    for (const std::string &tok : param_tokens)
        if (tok == text)
            return true;
    return false;
}

const MethodDecl *
ClassDecl::findMethod(std::string_view method_name) const
{
    // Prefer a body-carrying entry (a declaration may coexist with
    // an out-of-line definition that failed to merge).
    const MethodDecl *found = nullptr;
    for (const MethodDecl &m : methods) {
        if (m.name != method_name)
            continue;
        if (m.has_body)
            return &m;
        if (!found)
            found = &m;
    }
    return found;
}

std::set<std::string>
ClassDecl::referencedFrom(std::string_view method) const
{
    std::set<std::string> out;
    std::vector<std::string> queue{std::string(method)};
    std::set<std::string> visited{std::string(method)};
    while (!queue.empty()) {
        const std::string current = queue.back();
        queue.pop_back();
        const MethodDecl *m = findMethod(current);
        if (!m || !m->has_body)
            continue;
        for (const std::string &id : identifiersIn(m->body))
            out.insert(id);
        for (const std::string &callee : calledNames(m->body)) {
            if (visited.count(callee))
                continue;
            if (findMethod(callee)) {
                visited.insert(callee);
                queue.push_back(callee);
            }
        }
    }
    return out;
}

const ClassDecl *
DeclIndex::findClass(std::string_view name) const
{
    for (const ClassDecl &cls : classes)
        if (cls.qualified == name)
            return &cls;
    for (const ClassDecl &cls : classes)
        if (cls.name == name)
            return &cls;
    const std::string suffix = "::" + std::string(name);
    for (const ClassDecl &cls : classes) {
        if (cls.qualified.size() > suffix.size() &&
            cls.qualified.compare(cls.qualified.size() -
                                      suffix.size(),
                                  suffix.size(), suffix) == 0)
            return &cls;
    }
    return nullptr;
}

std::vector<const ClassDecl *>
DeclIndex::derivedFrom(std::string_view base) const
{
    std::set<std::string> in_family{std::string(base)};
    bool changed = true;
    while (changed) {
        changed = false;
        for (const ClassDecl &cls : classes) {
            if (in_family.count(cls.name) ||
                in_family.count(cls.qualified))
                continue;
            for (const std::string &b : cls.bases) {
                if (in_family.count(b)) {
                    in_family.insert(cls.name);
                    in_family.insert(cls.qualified);
                    changed = true;
                    break;
                }
            }
        }
    }
    std::vector<const ClassDecl *> out;
    for (const ClassDecl &cls : classes)
        if (cls.name != base && in_family.count(cls.name))
            out.push_back(&cls);
    return out;
}

std::vector<const FunctionDecl *>
DeclIndex::findFunctions(std::string_view name) const
{
    std::vector<const FunctionDecl *> out;
    for (const FunctionDecl &fn : functions)
        if (fn.name == name)
            out.push_back(&fn);
    return out;
}

const IndexedFile *
DeclIndex::findFile(std::string_view path) const
{
    for (const IndexedFile &f : files)
        if (f.path == path)
            return &f;
    return nullptr;
}

DeclIndex
buildDeclIndex(std::vector<IndexedFile> files)
{
    DeclIndex index;
    index.files = std::move(files);
    Builder builder(index);
    for (IndexedFile &f : index.files)
        builder.file(f);
    builder.bindPending();
    return index;
}

std::set<std::string>
identifiersIn(const std::vector<Token> &tokens)
{
    std::set<std::string> out;
    for (const Token &tok : tokens)
        if (tok.kind == TokenKind::Identifier)
            out.insert(tok.text);
    return out;
}

std::set<std::string>
calledNames(const std::vector<Token> &tokens)
{
    std::set<std::string> out;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i)
        if (tokens[i].kind == TokenKind::Identifier &&
            isPunct(tokens[i + 1], "("))
            out.insert(tokens[i].text);
    return out;
}

} // namespace asd::lint
