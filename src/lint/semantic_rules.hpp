#ifndef ASD_LINT_SEMANTIC_RULES_HPP
#define ASD_LINT_SEMANTIC_RULES_HPP

/**
 * @file
 * Pass 2 of asdlint v2: cross-translation-unit semantic rules over
 * the declaration index (lint/decl_index.hpp). Unlike the per-file
 * token rules (lint/rules.hpp), these see every class, member, and
 * function body in the tree at once.
 *
 * Rule catalog (see docs/architecture.md for the full rationale):
 *   snapshot-field-coverage  every data member of a Snapshottable
 *                            subclass must be referenced by both
 *                            saveState and loadState (or be exempt:
 *                            const/reference/raw-pointer/config/
 *                            callback members are re-derived, never
 *                            snapshotted)
 *   serialize-coverage       fields of RunOptions/RunMetrics/config
 *                            records must appear in their writeJson /
 *                            metricsFromJson counterparts
 *   jobid-plumbing           every RunOptions knob that writeJson
 *                            serializes must reach makeJobId, or two
 *                            configurations collide in the job store
 *   wall-clock-and-env       no wall-clock reads or getenv in the
 *                            deterministic layers (sim, core,
 *                            prefetch, tuner, arena)
 *   unordered-iteration      flow-aware: iterating an unordered
 *                            container in a function connected (as
 *                            caller or callee, within the TU) to an
 *                            output-emitting sink
 *   allow-missing-reason     an asdlint:allow naming a semantic rule
 *                            must carry a justification; without one
 *                            the suppression is inert
 */

#include <string>
#include <vector>

#include "lint/decl_index.hpp"
#include "lint/diagnostic.hpp"

namespace asd::lint
{

/** A named, documented semantic (cross-TU) rule. */
struct SemanticRule
{
    std::string name;
    Severity severity;
    std::string summary;
    void (*check)(const DeclIndex &, std::vector<Diagnostic> &);
};

/** Every semantic rule, in stable (alphabetical) order. */
const std::vector<SemanticRule> &semanticRuleRegistry();

/** @return the registry entry for @p name, or nullptr. */
const SemanticRule *findSemanticRule(const std::string &name);

/** True when @p name names a semantic rule. */
bool isSemanticRule(const std::string &name);

} // namespace asd::lint

#endif // ASD_LINT_SEMANTIC_RULES_HPP
