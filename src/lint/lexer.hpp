#ifndef ASD_LINT_LEXER_HPP
#define ASD_LINT_LEXER_HPP

/**
 * @file
 * A small C++ tokenizer for asdlint. It is deliberately AST-free: the
 * lint rules only need identifiers, punctuation, literals, and
 * preprocessor directives with accurate line numbers. Comments are
 * not emitted as tokens, but `// asdlint:allow(rule,...)` suppression
 * markers found inside them are collected so the linter can honor
 * them.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asd::lint
{

/** Lexical class of a token. */
enum class TokenKind : std::uint8_t
{
    Identifier, //!< identifiers and keywords (no distinction needed)
    Number,     //!< pp-number: integers, floats, user suffixes
    String,     //!< string literal incl. raw strings, text w/o quotes
    CharLit,    //!< character literal, text without quotes
    Punct,      //!< operator/punctuator, maximal munch
    Directive,  //!< one whole preprocessor directive, spliced
};

/** One token with its 1-based source line. */
struct Token
{
    TokenKind kind;
    std::string text;
    std::uint32_t line;
};

/**
 * A suppression comment: `// asdlint:allow(rule-a,rule-b)` or
 * `asdlint:allow(*)` anywhere inside a comment. It silences matching
 * diagnostics on its own line and on the following line (so a marker
 * may sit on the line above the code it excuses). Text after the
 * closing parenthesis (an optional `:` separator, then prose) is the
 * justification; semantic rules refuse to honor an allow without one.
 */
struct Suppression
{
    std::uint32_t line;
    std::vector<std::string> rules; //!< "*" means every rule
    std::string reason;             //!< prose after the marker
};

/** Token stream plus the suppression markers found along the way. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
};

/**
 * Tokenize @p source. Never fails: unterminated constructs are closed
 * at end of input so the linter degrades gracefully on malformed
 * files.
 */
LexResult lex(std::string_view source);

} // namespace asd::lint

#endif // ASD_LINT_LEXER_HPP
