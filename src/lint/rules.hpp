#ifndef ASD_LINT_RULES_HPP
#define ASD_LINT_RULES_HPP

/**
 * @file
 * The asdlint rule pack. Each rule is a pure function over one lexed
 * source file; the registry gives the CLI and the tests a uniform way
 * to enumerate, select, and document rules.
 *
 * Rule catalog (see docs/architecture.md for the full rationale):
 *   float-in-cost-path   float/double arithmetic in scheduler and
 *                        DRAM-timing sources (must use fixed-point)
 *   raw-random           rand()/std::random_device/mt19937 outside
 *                        common/random (determinism hazard)
 *   narrowing-cast       static_cast of a cycle/address-like value to
 *                        a sub-64-bit integer (use asd::narrow<T>)
 *   layer-include        #include that points up the module layering
 *                        (e.g. src/core including src/sim)
 *   check-side-effect    ++/--/assignment inside checkThat/assert
 *                        arguments (checks must be side-effect free)
 *
 * The cross-TU semantic rules (unordered-iteration and the coverage
 * rules) live in lint/semantic_rules.hpp — they need the declaration
 * index, not just one file's tokens.
 */

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/lexer.hpp"

namespace asd::lint
{

/** A lexed file as seen by the rules. */
struct SourceFile
{
    std::string path; //!< repo-relative, forward slashes
    std::vector<Token> tokens;
};

/** A named, documented lint rule. */
struct Rule
{
    std::string name;
    Severity severity;
    std::string summary;
    void (*check)(const SourceFile &, std::vector<Diagnostic> &);
};

/** Every rule in the pack, in stable (alphabetical) order. */
const std::vector<Rule> &ruleRegistry();

/** @return the registry entry for @p name, or nullptr. */
const Rule *findRule(const std::string &name);

} // namespace asd::lint

#endif // ASD_LINT_RULES_HPP
