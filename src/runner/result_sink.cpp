#include "runner/result_sink.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"
#include "sim/serialize.hpp"

namespace asd
{

std::string
sanitizeFileStem(const std::string &id)
{
    std::string stem = id;
    for (char &c : stem) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return stem.empty() ? std::string("job") : stem;
}

// --- JsonDirSink ---------------------------------------------------

JsonDirSink::JsonDirSink(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create result directory " + dir_ + ": " +
              ec.message());
}

std::string
JsonDirSink::recordJson(const JobResult &result)
{
    JsonWriter writer;
    writer.beginObject();
    writer.key("schema").value("asdsweep/result/v1");
    writer.key("id").value(result.spec.id);
    writer.key("benchmark").value(result.spec.bench.name);
    writer.key("status").value(toString(result.status));
    writer.key("error");
    if (result.error.empty())
        writer.null();
    else
        writer.value(result.error);
    writer.key("wall_ms").value(result.wall_ms);
    writer.key("worker")
        .value(static_cast<std::uint64_t>(result.worker));
    writer.key("seed").value(result.spec.seed
                                 ? *result.spec.seed
                                 : result.spec.bench.trace.seed);
    writer.key("options");
    writeJson(writer, result.spec.options);
    writer.key("metrics");
    if (result.status == JobStatus::Failed)
        writer.null();
    else
        writeJson(writer, result.metrics);
    writer.endObject();
    return writer.str();
}

void
JsonDirSink::write(const JobResult &result)
{
    Entry entry;
    entry.id = result.spec.id;
    entry.file = sanitizeFileStem(result.spec.id) + ".json";
    entry.benchmark = result.spec.bench.name;
    entry.status = toString(result.status);
    entry.wall_ms = result.wall_ms;

    const std::filesystem::path path =
        std::filesystem::path(dir_) / entry.file;
    std::ofstream out(path);
    if (!out)
        fatal("cannot write result record " + path.string());
    out << recordJson(result) << "\n";
    entries_.push_back(std::move(entry));
}

bool
JsonDirSink::adoptExisting(const JobSpec &spec)
{
    const std::string file = sanitizeFileStem(spec.id) + ".json";
    const std::filesystem::path path =
        std::filesystem::path(dir_) / file;
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    if (!jsonParseCheck(text))
        return false;
    // The record must be for this very job (a sanitized stem can
    // collide across ids) and must have finished cleanly; failed or
    // timed-out records are rerun.
    if (text.find("\"schema\":\"asdsweep/result/v1\"") ==
        std::string::npos)
        return false;
    if (text.find("\"id\":\"" + jsonEscape(spec.id) + "\"") ==
        std::string::npos)
        return false;
    if (text.find("\"status\":\"ok\"") == std::string::npos)
        return false;

    Entry entry;
    entry.id = spec.id;
    entry.file = file;
    entry.benchmark = spec.bench.name;
    entry.status = "ok";
    // Carry the original wall time into the new manifest. The key is
    // emitted by recordJson, so it is present in any record that
    // passed the checks above.
    const std::string key = "\"wall_ms\":";
    const std::size_t pos = text.find(key);
    if (pos != std::string::npos)
        entry.wall_ms = std::strtod(text.c_str() + pos + key.size(),
                                    nullptr);
    entries_.push_back(std::move(entry));
    ++skipped_;
    return true;
}

void
JsonDirSink::finish(const SweepSummary &summary)
{
    // Completion order is scheduling-dependent; sort so the manifest
    // is stable across runs.
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry &a, const Entry &b) { return a.id < b.id; });

    JsonWriter writer;
    writer.beginObject();
    writer.key("schema").value("asdsweep/manifest/v1");
    writer.key("jobs").value(
        static_cast<std::uint64_t>(summary.jobs));
    writer.key("ok").value(static_cast<std::uint64_t>(summary.ok));
    writer.key("failed").value(
        static_cast<std::uint64_t>(summary.failed));
    writer.key("timed_out").value(
        static_cast<std::uint64_t>(summary.timed_out));
    writer.key("warm_started").value(
        static_cast<std::uint64_t>(summary.warm_started));
    writer.key("skipped").value(
        static_cast<std::uint64_t>(skipped_));
    writer.key("threads").value(
        static_cast<std::uint64_t>(summary.threads));
    writer.key("wall_ms").value(summary.wall_ms);
    writer.key("records").beginArray();
    for (const Entry &entry : entries_) {
        writer.beginObject();
        writer.key("id").value(entry.id);
        writer.key("file").value(entry.file);
        writer.key("benchmark").value(entry.benchmark);
        writer.key("status").value(entry.status);
        writer.key("wall_ms").value(entry.wall_ms);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();

    const std::filesystem::path path =
        std::filesystem::path(dir_) / "manifest.json";
    std::ofstream out(path);
    if (!out)
        fatal("cannot write manifest " + path.string());
    out << writer.str() << "\n";
}

// --- CsvSink -------------------------------------------------------

std::string
CsvSink::header()
{
    return "id,benchmark,status,wall_ms,mode,mc_prefetcher,"
           "buffer_lines,filter_slots,max_degree,seed,cycles,accesses,"
           "dram_watts,dram_energy_mj,coverage_pct,"
           "useful_prefetch_pct,delayed_regular_pct,mc_reads,"
           "mc_writes,ms_prefetches_issued,buffer_hits,lpq_drops";
}

CsvSink::CsvSink(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    out_.open(path);
    if (!out_)
        fatal("cannot write CSV " + path);
    out_ << header() << "\n";
}

void
CsvSink::write(const JobResult &result)
{
    const RunOptions &o = result.spec.options;
    const RunMetrics &m = result.metrics;
    std::ostringstream row;
    row << result.spec.id << ',' << result.spec.bench.name << ','
        << toString(result.status) << ',' << result.wall_ms << ','
        << toString(o.mode) << ',' << toString(o.mc_prefetcher) << ','
        << o.buffer_lines << ',' << o.filter_slots << ','
        << o.max_degree << ','
        << (result.spec.seed ? *result.spec.seed
                             : result.spec.bench.trace.seed);
    if (result.status == JobStatus::Failed) {
        // No metrics; keep the column count stable.
        for (int i = 0; i < 12; ++i)
            row << ',';
    } else {
        row << ',' << m.cycles << ',' << m.accesses << ','
            << m.dram_watts << ',' << m.dram_energy_mj << ','
            << m.coverage_pct << ',' << m.useful_prefetch_pct << ','
            << m.delayed_regular_pct << ',' << m.mc_reads << ','
            << m.mc_writes << ',' << m.ms_prefetches_issued << ','
            << m.buffer_hits << ',' << m.lpq_drops;
    }
    out_ << row.str() << "\n";
}

void
CsvSink::finish(const SweepSummary &)
{
    out_.flush();
}

} // namespace asd
