#include "runner/job.hpp"

#include <chrono>
#include <exception>

#include "common/log.hpp"
#include "sim/serialize.hpp"

namespace asd
{

std::string
toString(JobStatus status)
{
    switch (status) {
    case JobStatus::Ok:
        return "ok";
    case JobStatus::Failed:
        return "failed";
    case JobStatus::TimedOut:
        return "timed_out";
    }
    panic("unhandled JobStatus");
}

std::string
makeJobId(const Benchmark &bench, const RunOptions &options,
          std::optional<std::uint64_t> seed)
{
    std::string id = bench.name;
    id += '.';
    id += toString(options.mode);
    id += '.';
    id += toString(options.mc_prefetcher);
    id += ".pb" + std::to_string(options.buffer_lines);
    id += "_sf" + std::to_string(options.filter_slots);
    id += "_d" + std::to_string(options.max_degree);
    if (options.scheduler != SchedulerKind::Ahb)
        id += '.' + toString(options.scheduler);
    if (options.ps_kind != PsKind::Power5)
        id += ".ps_" + toString(options.ps_kind);
    if (options.fixed_policy)
        id += ".pol" + std::to_string(*options.fixed_policy);
    if (options.saturate_long_streams)
        id += ".sat";
    if (options.vm.enabled) {
        id += ".vm_" + toString(options.vm.policy);
        if (options.vm.policy != FrameAllocPolicy::HugePage)
            id += "_p" + std::to_string(options.vm.page_bytes);
    }
    if (options.os.enabled) {
        id += ".os_f" + std::to_string(options.os.frames);
        if (options.vm.walker != PageWalkerKind::Radix)
            id += "_" + toString(options.vm.walker);
    }
    if (options.tenants.enabled) {
        // Zipf exponent in milli-units keeps the id free of '.'s.
        id += ".ten" + std::to_string(options.tenants.slots) + "_z" +
              std::to_string(static_cast<long long>(
                  options.tenants.zipf_s * 1000.0 + 0.5)) +
              "_l" + std::to_string(options.tenants.mean_lifetime);
    }
    if (options.ps_oracle)
        id += ".oracle";
    if (options.ghb_delta_correlate)
        id += ".dc";
    if (options.tuner.enabled)
        id += ".tune";
    if (options.accesses)
        id += ".acc" + std::to_string(*options.accesses);
    if (options.warmup_cycles > 0)
        id += ".wu" + std::to_string(options.warmup_cycles);
    if (seed)
        id += ".seed" + std::to_string(*seed);
    return id;
}

JobSpec
makeJob(const Benchmark &bench, const RunOptions &options,
        std::optional<std::uint64_t> seed)
{
    JobSpec job;
    job.id = makeJobId(bench, options, seed);
    job.bench = bench;
    job.options = options;
    job.seed = seed;
    return job;
}

JobResult
runJob(const JobSpec &job)
{
    JobResult result;
    result.spec = job;

    const auto start = std::chrono::steady_clock::now();
    try {
        if (job.body) {
            result.metrics = job.body(job);
        } else {
            Benchmark bench = job.bench;
            if (job.seed)
                bench.trace.seed = *job.seed;
            result.metrics = runBenchmark(bench, job.options);
        }
        result.status = JobStatus::Ok;
    } catch (const std::exception &e) {
        result.status = JobStatus::Failed;
        result.error = e.what();
    } catch (...) {
        result.status = JobStatus::Failed;
        result.error = "unknown exception";
    }
    const auto end = std::chrono::steady_clock::now();
    result.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();

    if (result.status == JobStatus::Ok && job.timeout_ms > 0.0 &&
        result.wall_ms > job.timeout_ms) {
        result.status = JobStatus::TimedOut;
        result.error = "exceeded timeout of " +
                       std::to_string(job.timeout_ms) + " ms";
    }
    return result;
}

} // namespace asd
