#ifndef ASD_RUNNER_THREAD_POOL_HPP
#define ASD_RUNNER_THREAD_POOL_HPP

/**
 * @file
 * Fixed-size worker pool over a shared task queue. Tasks are opaque
 * callables taking the worker index (for telemetry); they must not
 * throw — the sweep runner wraps all simulation work in runJob(),
 * which converts exceptions into structured failure records.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asd
{

/**
 * Worker-thread count for sweeps: the ASD_SWEEP_THREADS environment
 * variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultThreadCount();

/** A fixed set of workers draining one FIFO task queue. */
class ThreadPool
{
  public:
    using Task = std::function<void(unsigned worker)>;

    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Joins after draining the queue. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; runs on some worker in FIFO order. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop(unsigned index);

    std::mutex mutex_;
    std::condition_variable work_cv_; //!< workers: queue or stop
    std::condition_variable idle_cv_; //!< wait(): all drained
    std::deque<Task> queue_;
    std::vector<std::thread> workers_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

} // namespace asd

#endif // ASD_RUNNER_THREAD_POOL_HPP
