#ifndef ASD_RUNNER_RESULT_SINK_HPP
#define ASD_RUNNER_RESULT_SINK_HPP

/**
 * @file
 * Structured persistence for sweep results. A ResultSink receives
 * each finished JobResult (serialized by the runner — implementations
 * need no locking) and a final summary. JsonDirSink writes one JSON
 * record per job plus a manifest; CsvSink writes one flat CSV row per
 * job for spreadsheet-style analysis.
 */

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "runner/job.hpp"

namespace asd
{

/** Whole-sweep statistics handed to ResultSink::finish(). */
struct SweepSummary
{
    std::size_t jobs = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;

    /** Jobs wrapped to run from a shared warm-up snapshot. */
    std::size_t warm_started = 0;

    /** Wall-clock duration of the whole sweep. */
    double wall_ms = 0.0;

    /** Worker threads the sweep ran on. */
    unsigned threads = 0;
};

/** Consumer of finished jobs. Calls arrive serialized, in completion
 *  order (which is nondeterministic under parallelism). */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** One job finished (any status). */
    virtual void write(const JobResult &result) = 0;

    /** The sweep is over; flush. */
    virtual void
    finish(const SweepSummary &summary)
    {
        (void)summary;
    }
};

/** @return @p id reduced to [A-Za-z0-9._-] for use as a file stem. */
std::string sanitizeFileStem(const std::string &id);

/**
 * Writes <dir>/<id>.json per job (schema "asdsweep/result/v1": id,
 * benchmark, status, error, wall_ms, seed, options, metrics) and a
 * <dir>/manifest.json index (schema "asdsweep/manifest/v1") listing
 * every record with its status and wall time, sorted by id. Creates
 * @p dir (and parents) on construction.
 */
class JsonDirSink : public ResultSink
{
  public:
    explicit JsonDirSink(std::string dir);

    void write(const JobResult &result) override;
    void finish(const SweepSummary &summary) override;

    const std::string &
    dir() const
    {
        return dir_;
    }

    /**
     * Try to adopt an existing record for @p spec (sweep resume): if
     * <dir>/<stem>.json exists, is valid JSON, and reports status
     * "ok" for this very job id, keep it in the manifest without
     * re-running the job and return true. Anything else — missing
     * file, unparseable JSON, failed/timed-out status, a different
     * job's record under the same stem — returns false, and the
     * caller should run the job normally (overwriting the stale
     * record). Adopted records count toward the manifest's "skipped"
     * total.
     */
    bool adoptExisting(const JobSpec &spec);

    /** Records adopted by adoptExisting() so far. */
    std::size_t
    skipped() const
    {
        return skipped_;
    }

    /** Serialize one result to its record JSON (document string). */
    static std::string recordJson(const JobResult &result);

  private:
    struct Entry
    {
        std::string id;
        std::string file;
        std::string benchmark;
        std::string status;
        double wall_ms = 0.0;
    };

    std::string dir_;
    std::vector<Entry> entries_;
    std::size_t skipped_ = 0;
};

/** Appends one CSV row per job to a single file (header included). */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(const std::string &path);

    void write(const JobResult &result) override;
    void finish(const SweepSummary &summary) override;

    /** The CSV header row this sink emits. */
    static std::string header();

  private:
    std::ofstream out_;
};

/** Fan one result stream out to several sinks. */
class TeeSink : public ResultSink
{
  public:
    explicit TeeSink(std::vector<ResultSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void
    write(const JobResult &result) override
    {
        for (ResultSink *sink : sinks_)
            sink->write(result);
    }

    void
    finish(const SweepSummary &summary) override
    {
        for (ResultSink *sink : sinks_)
            sink->finish(summary);
    }

  private:
    std::vector<ResultSink *> sinks_;
};

} // namespace asd

#endif // ASD_RUNNER_RESULT_SINK_HPP
