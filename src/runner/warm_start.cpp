#include "runner/warm_start.hpp"

#include <filesystem>
#include <sstream>

#include "common/log.hpp"
#include "sim/serialize.hpp"
#include "sim/snapshot_io.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/synthetic.hpp"

namespace asd
{

namespace
{

/** The benchmark with any per-job seed override applied. */
Benchmark
effectiveBench(const JobSpec &job)
{
    Benchmark bench = job.bench;
    if (job.seed)
        bench.trace.seed = *job.seed;
    return bench;
}

/**
 * The configuration the warm-up runs under: the job's options with
 * the memory side stripped (PMS -> PS, MS -> NP) and telemetry off.
 * The resulting machine's evolution is identical to the job's own
 * disarmed machine, but the snapshot carries no "ms"/"tel" sections,
 * so it restores into ANY memory-side configuration that shares the
 * warm-up key.
 */
RunOptions
warmupOptions(const JobSpec &job)
{
    RunOptions options = job.options;
    options.mode = options.mode == PrefetchMode::PMS ||
                           options.mode == PrefetchMode::PS
                       ? PrefetchMode::PS
                       : PrefetchMode::NP;
    options.telemetry.enabled = false;
    return options;
}

} // namespace

std::string
warmupKey(const JobSpec &job)
{
    const Benchmark bench = effectiveBench(job);
    const RunOptions &o = job.options;
    const bool has_ps = o.mode == PrefetchMode::PS ||
                        o.mode == PrefetchMode::PMS;
    std::ostringstream key;
    key << "asdwarm/v1;bench=" << bench.name
        << ";seed=" << bench.trace.seed
        << ";acc=" << scaledAccesses(bench, o)
        << ";wu=" << o.warmup_cycles
        << ";ps=" << (has_ps ? 1 : 0)
        << ";ps_kind=" << toString(o.ps_kind)
        << ";oracle=" << (o.ps_oracle ? 1 : 0)
        << ";sched=" << toString(o.scheduler)
        << ";vm=" << (o.vm.enabled ? 1 : 0);
    if (o.vm.enabled) {
        key << ',' << toString(o.vm.policy) << ',' << o.vm.page_bytes
            << ',' << o.vm.huge_bytes << ',' << o.vm.phys_bytes << ','
            << o.vm.seed << ',' << o.vm.tlb.entries << ','
            << o.vm.tlb.ways << ',' << o.vm.tlb.walk_cycles;
    }
    // The OS model shapes the warm-up machine (fault stalls, frame
    // reclaim, the snapshot's "os" section), so every OS knob joins
    // the key; two jobs share a warm-up only when their disarmed
    // machines are identical.
    key << ";os=" << (o.os.enabled ? 1 : 0);
    if (o.os.enabled) {
        key << ',' << o.os.frames << ',' << o.os.minor_fault_cycles
            << ',' << o.os.major_fault_cycles << ','
            << o.os.major_fault_frac << ',' << o.os.reclaim_cycles
            << ',' << o.os.writeback_cycles << ','
            << o.os.hashed_probe_cycles << ',' << o.os.seed << ','
            << toString(o.vm.walker) << ',' << o.vm.page_bytes << ','
            << o.vm.tlb.entries << ',' << o.vm.tlb.ways << ','
            << o.vm.tlb.walk_cycles;
    }
    return key.str();
}

bool
warmStartEligible(const JobSpec &job)
{
    // Tenant mixes run through a TenantMixSource; the warm-up
    // fork path below rebuilds a plain SyntheticTraceGenerator, so
    // those jobs always cold-start.
    return !job.body && job.options.warmup_cycles > 0 &&
           !job.options.tenants.enabled;
}

SnapshotBytes
simulateWarmup(const JobSpec &job)
{
    const Benchmark bench = effectiveBench(job);
    SyntheticConfig trace_config = bench.trace;
    trace_config.total_accesses = scaledAccesses(bench, job.options);
    SyntheticTraceGenerator trace(trace_config);

    System system(makeSystemConfig(warmupOptions(job)), {&trace});
    system.runUntil(job.options.warmup_cycles);

    SnapshotWriter writer;
    system.saveSnapshot(writer);
    return writer.finish(fnv1a64(warmupKey(job)));
}

RunMetrics
runFromSnapshot(const JobSpec &job, const SnapshotBytes &bytes)
{
    const Benchmark bench = effectiveBench(job);
    SyntheticConfig trace_config = bench.trace;
    trace_config.total_accesses = scaledAccesses(bench, job.options);
    SyntheticTraceGenerator trace(trace_config);

    SnapshotReader reader(bytes);
    reader.requireConfigHash(fnv1a64(warmupKey(job)));

    System system(makeSystemConfig(job.options), {&trace});
    system.loadSnapshot(reader);
    system.runUntil(kNoCycle);
    return system.collectMetrics();
}

// --- WarmupCache ---------------------------------------------------

WarmupCache::WarmupCache(std::string dir) : dir_(std::move(dir)) {}

std::string
WarmupCache::diskPath(const std::string &key) const
{
    std::ostringstream name;
    name << std::hex << fnv1a64(key);
    return (std::filesystem::path(dir_) / (name.str() + ".asdsnap"))
        .string();
}

std::shared_ptr<const SnapshotBytes>
WarmupCache::tryDisk(const std::string &key) const
{
    if (dir_.empty())
        return nullptr;
    const std::string path = diskPath(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec)
        return nullptr;
    try {
        auto bytes = std::make_shared<const SnapshotBytes>(
            readSnapshotFile(path));
        // Validate framing and binding before handing it out; a
        // stale or foreign file must cause a fresh warm-up, not a
        // mismatched restore.
        SnapshotReader reader(*bytes);
        reader.requireConfigHash(fnv1a64(key));
        return bytes;
    } catch (const SnapshotError &e) {
        warn("ignoring unusable warm-up cache file " + path + " (" +
             e.what() + ")");
        return nullptr;
    }
}

void
WarmupCache::putDisk(const std::string &key,
                     const SnapshotBytes &bytes) const
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("cannot create warm-up cache directory " + dir_ + ": " +
             ec.message());
        return;
    }
    try {
        writeSnapshotFile(diskPath(key), bytes);
    } catch (const SnapshotError &e) {
        warn(std::string("cannot persist warm-up snapshot: ") +
             e.what());
    }
}

std::shared_ptr<const SnapshotBytes>
WarmupCache::obtain(const std::string &key,
                    const std::function<SnapshotBytes()> &make)
{
    std::promise<std::shared_ptr<const SnapshotBytes>> promise;
    std::shared_future<std::shared_ptr<const SnapshotBytes>> future;
    bool creator = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            future = it->second;
        } else {
            creator = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        }
    }
    if (creator) {
        try {
            std::shared_ptr<const SnapshotBytes> bytes = tryDisk(key);
            if (!bytes) {
                bytes =
                    std::make_shared<const SnapshotBytes>(make());
                putDisk(key, *bytes);
            }
            promise.set_value(std::move(bytes));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::size_t
applyWarmStart(std::vector<JobSpec> &jobs,
               std::shared_ptr<WarmupCache> cache)
{
    std::size_t wrapped = 0;
    for (JobSpec &job : jobs) {
        if (!warmStartEligible(job))
            continue;
        ++wrapped;
        job.body = [cache](const JobSpec &j) -> RunMetrics {
            try {
                const auto bytes = cache->obtain(
                    warmupKey(j), [&j] { return simulateWarmup(j); });
                return runFromSnapshot(j, *bytes);
            } catch (const SnapshotError &e) {
                warn("warm start failed for " + j.id + " (" +
                     e.what() + "); falling back to a cold start");
                return runBenchmark(effectiveBench(j), j.options);
            }
        };
    }
    return wrapped;
}

} // namespace asd
