#ifndef ASD_RUNNER_WARM_START_HPP
#define ASD_RUNNER_WARM_START_HPP

/**
 * @file
 * Warm-start reuse for sweeps. Sweeps in this repo vary memory-side
 * prefetcher parameters (buffer lines, filter slots, degree, policy)
 * across a shared benchmark set; with warmup_cycles > 0 the machine
 * runs *disarmed* to the warm-up boundary, and a disarmed controller
 * behaves exactly as if no memory-side prefetcher were attached — so
 * every job that agrees on the warm-up-relevant knobs evolves through
 * an identical pre-boundary machine. This module simulates each
 * distinct warm-up once, snapshots it, and forks the snapshot across
 * the sharing jobs, with per-job results byte-identical to cold
 * starts (pinned by test_runner).
 *
 * warmupKey() is the sharing contract: it must include every knob
 * that shapes the disarmed machine's evolution (benchmark, trace
 * seed, resolved trace length, processor-side prefetching, scheduler,
 * VM layer, the boundary itself) and must exclude everything the
 * disarmed machine cannot see (memory-side prefetcher kind and
 * parameters, LPQ policy pinning, telemetry). The snapshot's header
 * hash is the FNV-1a of the key, so a stale or foreign cache file is
 * rejected and the job falls back to a cold start instead of
 * restoring a mismatched machine.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/job.hpp"

namespace asd
{

/** A serialized warm-up checkpoint. */
using SnapshotBytes = std::vector<std::uint8_t>;

/**
 * Canonical description of the warm-up @p job would need. Jobs with
 * equal keys can share one warm-up snapshot.
 */
std::string warmupKey(const JobSpec &job);

/** Default-bodied job with a warm-up phase to share? */
bool warmStartEligible(const JobSpec &job);

/**
 * Run @p job's warm-up (memory side stripped, telemetry off) to the
 * warm-up boundary and serialize the machine. Header hash =
 * fnv1a64(warmupKey(job)).
 */
SnapshotBytes simulateWarmup(const JobSpec &job);

/**
 * Build @p job's full machine, restore the warm-up snapshot into it,
 * arm at the boundary, and run to completion. Throws SnapshotError
 * when @p bytes does not match the job's warm-up key or shape.
 */
RunMetrics runFromSnapshot(const JobSpec &job,
                           const SnapshotBytes &bytes);

/**
 * Once-per-key snapshot store shared by the jobs of one sweep.
 * Thread-safe: the first caller of obtain() for a key computes (or
 * reads from the disk cache) while later callers block on the shared
 * future, so each distinct warm-up is simulated exactly once per
 * process no matter how many workers race on it.
 */
class WarmupCache
{
  public:
    /**
     * @param dir optional on-disk cache directory (created on first
     *        write); snapshots persist across sweeps there and are
     *        validated against the key hash before reuse. Empty =
     *        in-memory only.
     */
    explicit WarmupCache(std::string dir = "");

    /**
     * The snapshot for @p key, from memory, disk, or @p make (in that
     * order). Rethrows make()'s exception to every sharer.
     */
    std::shared_ptr<const SnapshotBytes>
    obtain(const std::string &key,
           const std::function<SnapshotBytes()> &make);

  private:
    std::string diskPath(const std::string &key) const;
    std::shared_ptr<const SnapshotBytes>
    tryDisk(const std::string &key) const;
    void putDisk(const std::string &key,
                 const SnapshotBytes &bytes) const;

    std::string dir_;
    std::mutex mutex_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const SnapshotBytes>>>
        entries_;
};

/**
 * Give every eligible job a body that warm-starts through @p cache
 * (ineligible jobs — custom bodies, no warm-up phase — are left
 * untouched). @return the number of jobs wrapped.
 */
std::size_t applyWarmStart(std::vector<JobSpec> &jobs,
                           std::shared_ptr<WarmupCache> cache);

} // namespace asd

#endif // ASD_RUNNER_WARM_START_HPP
