#ifndef ASD_RUNNER_SWEEP_RUNNER_HPP
#define ASD_RUNNER_SWEEP_RUNNER_HPP

/**
 * @file
 * Parallel execution of a vector of JobSpecs over a ThreadPool.
 * Every job is an independent simulation (no shared mutable state in
 * the simulator), so results are bit-identical to a serial loop
 * regardless of thread count — enforced by test_runner. Progress and
 * result-sink callbacks are serialized under one mutex.
 */

#include <functional>
#include <string>
#include <vector>

#include "runner/job.hpp"
#include "runner/result_sink.hpp"

namespace asd
{

/** Snapshot handed to the progress hook after every finished job. */
struct SweepProgress
{
    std::size_t total = 0;
    std::size_t done = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;

    /** Job that just finished. */
    std::string last_id;
    double last_wall_ms = 0.0;

    /** Time since run() started. */
    double elapsed_ms = 0.0;

    /** Naive remaining-time estimate: elapsed/done * (total-done). */
    double eta_ms = 0.0;
};

/** Knobs for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultThreadCount(). */
    unsigned threads = 0;

    /** Applied to jobs whose own timeout_ms is 0 (0 = none). */
    double default_timeout_ms = 0.0;

    /**
     * Share warm-up snapshots across jobs (see runner/warm_start.hpp):
     * each distinct warm-up among eligible jobs (default body,
     * warmup_cycles > 0) is simulated once and forked. Per-job
     * results stay byte-identical to cold starts.
     */
    bool warm_start = false;

    /**
     * On-disk warm-up snapshot cache (used only with warm_start);
     * empty = in-memory only. Snapshots persist across sweeps and
     * are validated before reuse — a mismatch falls back to a fresh
     * warm-up.
     */
    std::string snapshot_dir;

    /** Invoked after each job, serialized. */
    std::function<void(const SweepProgress &)> on_progress;

    /** Receives each result + the final summary, serialized. */
    ResultSink *sink = nullptr;
};

/** Runs job vectors; stateless between run() calls. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Execute @p jobs and return their results *in job order* (not
     * completion order). Failures are captured per job; run() itself
     * never throws on simulation errors.
     */
    std::vector<JobResult> run(const std::vector<JobSpec> &jobs);

    /** Summary of the most recent run(). */
    const SweepSummary &
    lastSummary() const
    {
        return summary_;
    }

  private:
    SweepOptions options_;
    SweepSummary summary_;
};

} // namespace asd

#endif // ASD_RUNNER_SWEEP_RUNNER_HPP
