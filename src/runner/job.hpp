#ifndef ASD_RUNNER_JOB_HPP
#define ASD_RUNNER_JOB_HPP

/**
 * @file
 * The sweep runner's unit of work: one benchmark in one configuration
 * with a stable id and an explicit seed, plus the structured record a
 * finished (or failed) job leaves behind. Jobs are pure values — the
 * runner can execute them on any thread in any order and still
 * produce results identical to a serial loop.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "workloads/profiles.hpp"

namespace asd
{

/** One simulation to run. */
struct JobSpec
{
    /**
     * Stable identifier, unique within a sweep; doubles as the result
     * file stem. makeJob() derives one from the varied fields.
     */
    std::string id;

    Benchmark bench;
    RunOptions options;

    /** Overrides the benchmark's trace seed when set. */
    std::optional<std::uint64_t> seed;

    /**
     * Soft wall-clock limit in milliseconds (0 = none). Simulations
     * are hard-bounded by SystemConfig::max_cycles, so the runner
     * checks the limit when the job finishes and downgrades the
     * result to TimedOut rather than killing the thread.
     */
    double timeout_ms = 0.0;

    /**
     * Custom work body; when empty the job runs
     * runBenchmark(bench-with-seed, options). Lets harnesses reuse
     * the pool for SMT pairs or fault-injection tests.
     */
    std::function<RunMetrics(const JobSpec &)> body;
};

/** How a job ended. */
enum class JobStatus : std::uint8_t
{
    Ok,       //!< ran to completion
    Failed,   //!< threw; error holds the message
    TimedOut, //!< completed but exceeded timeout_ms
};

std::string toString(JobStatus status);

/** Structured outcome of one job. */
struct JobResult
{
    JobSpec spec;
    JobStatus status = JobStatus::Ok;

    /** Valid unless status == Failed. */
    RunMetrics metrics;

    /** Exception message when status == Failed. */
    std::string error;

    /** Wall-clock duration of the job body. */
    double wall_ms = 0.0;

    /** Pool worker that ran the job (telemetry only). */
    unsigned worker = 0;
};

/**
 * Derive a stable job id from the fields experiments vary:
 * "<bench>.<mode>.<mc_prefetcher>.pb16_sf8_d1" plus suffixes for
 * non-default knobs (fixed policy, saturation, oracle, access
 * override, seed override).
 */
std::string makeJobId(const Benchmark &bench, const RunOptions &options,
                      std::optional<std::uint64_t> seed = std::nullopt);

/** Build a JobSpec with makeJobId() as its id. */
JobSpec makeJob(const Benchmark &bench, const RunOptions &options,
                std::optional<std::uint64_t> seed = std::nullopt);

/**
 * Execute @p job on the calling thread: apply the seed override, run
 * the body (default: runBenchmark), capture exceptions as Failed
 * records and enforce the soft timeout. Never throws.
 */
JobResult runJob(const JobSpec &job);

} // namespace asd

#endif // ASD_RUNNER_JOB_HPP
