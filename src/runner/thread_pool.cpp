#include "runner/thread_pool.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace asd
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("ASD_SWEEP_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring invalid ASD_SWEEP_THREADS \"" +
             std::string(env) + "\"");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIfNot(!stop_, "submit() on a stopped ThreadPool");
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop(unsigned index)
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task(index);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace asd
