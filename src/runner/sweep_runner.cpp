#include "runner/sweep_runner.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

#include "runner/thread_pool.hpp"
#include "runner/warm_start.hpp"

namespace asd
{

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options))
{
}

std::vector<JobResult>
SweepRunner::run(const std::vector<JobSpec> &jobs_in)
{
    std::vector<JobSpec> jobs = jobs_in;
    std::size_t warm_started = 0;
    if (options_.warm_start) {
        auto cache =
            std::make_shared<WarmupCache>(options_.snapshot_dir);
        warm_started = applyWarmStart(jobs, std::move(cache));
    }

    const auto start = std::chrono::steady_clock::now();
    const auto elapsedMs = [start] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    unsigned threads =
        options_.threads == 0 ? defaultThreadCount() : options_.threads;
    if (threads > jobs.size())
        threads = static_cast<unsigned>(jobs.size());
    if (threads == 0)
        threads = 1;

    summary_ = SweepSummary{};
    summary_.jobs = jobs.size();
    summary_.threads = threads;
    summary_.warm_started = warm_started;

    std::vector<JobResult> results(jobs.size());
    if (!jobs.empty()) {
        std::mutex report_mutex;
        SweepProgress progress;
        progress.total = jobs.size();

        ThreadPool pool(threads);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&, i](unsigned worker) {
                JobSpec job = jobs[i];
                if (job.timeout_ms <= 0.0)
                    job.timeout_ms = options_.default_timeout_ms;
                JobResult result = runJob(job);
                result.worker = worker;

                std::lock_guard<std::mutex> lock(report_mutex);
                ++progress.done;
                switch (result.status) {
                case JobStatus::Ok:
                    ++progress.ok;
                    break;
                case JobStatus::Failed:
                    ++progress.failed;
                    break;
                case JobStatus::TimedOut:
                    ++progress.timed_out;
                    break;
                }
                progress.last_id = result.spec.id;
                progress.last_wall_ms = result.wall_ms;
                progress.elapsed_ms = elapsedMs();
                const auto left = progress.total - progress.done;
                progress.eta_ms =
                    progress.done == 0
                        ? 0.0
                        : progress.elapsed_ms /
                              static_cast<double>(progress.done) *
                              static_cast<double>(left);
                if (options_.sink)
                    options_.sink->write(result);
                results[i] = std::move(result);
                if (options_.on_progress)
                    options_.on_progress(progress);
            });
        }
        pool.wait();

        summary_.ok = progress.ok;
        summary_.failed = progress.failed;
        summary_.timed_out = progress.timed_out;
    }

    summary_.wall_ms = elapsedMs();
    if (options_.sink)
        options_.sink->finish(summary_);
    return results;
}

} // namespace asd
