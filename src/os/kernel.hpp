#ifndef ASD_OS_KERNEL_HPP
#define ASD_OS_KERNEL_HPP

/**
 * @file
 * The OS kernel model: demand paging over a finite frame pool. On a
 * TLB miss the per-thread OsMmu calls touch(), which walks the page
 * table, takes a minor or major fault on an absent page, reclaims a
 * CLOCK victim when the pool is full (unmapping it and shooting its
 * translation out of every TLB, with a writeback charge when dirty),
 * and returns the total stall to charge the issuing thread. All state
 * is shared across threads and tenants — one tenant's fault pressure
 * evicts another tenant's frames, exactly the cross-tenant
 * interference the multi-tenant scenarios study.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "os/frame_pool.hpp"
#include "os/os_config.hpp"
#include "os/page_walker.hpp"
#include "vm/tlb.hpp"

namespace asd
{

/** What one fault-path invocation did and cost. */
struct OsTouchResult
{
    std::uint64_t pfn = 0;
    Cycles stall_cycles = 0;
    bool minor_fault = false;
    bool major_fault = false;
    bool reclaimed = false;
    bool wrote_back = false;
};

/** Shared demand-paging kernel; one instance per simulated machine. */
class OsKernel : public Snapshottable
{
  public:
    /** @param vm supplies granule, TLB geometry, walker selection. */
    OsKernel(const OsConfig &config, const VmConfig &vm);

    /**
     * Register a TLB for shootdowns; every per-thread OsMmu TLB must
     * be registered so reclaim can invalidate stale translations.
     */
    void registerTlb(Tlb *tlb) { tlbs_.push_back(tlb); }

    /**
     * Full translation path for a TLB miss on (@p space, @p vpn):
     * walk, fault if absent, reclaim if the pool is full.
     */
    OsTouchResult touch(std::uint32_t space, std::uint64_t vpn,
                        bool is_write);

    /** Record a TLB-hit access so CLOCK sees R (and D) bits. */
    void markAccess(std::uint64_t pfn, bool is_write);

    const FramePool &pool() const { return pool_; }
    const PageWalker &walker() const { return *walker_; }

    std::uint64_t minorFaults() const { return minor_faults_.value(); }
    std::uint64_t majorFaults() const { return major_faults_.value(); }
    std::uint64_t reclaims() const { return reclaims_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::uint64_t shootdowns() const { return shootdowns_.value(); }
    std::uint64_t stallCycles() const { return stall_cycles_.value(); }
    std::uint64_t pagesMapped() const
    {
        return walker_->pagesMapped();
    }

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    // asdlint:allow(snapshot-field-coverage): configuration fixed at construction
    OsConfig config_;
    FramePool pool_;
    std::unique_ptr<PageWalker> walker_;
    Rng rng_; //!< major-vs-minor fault draws
    // asdlint:allow(snapshot-field-coverage): wiring to the per-thread TLBs, rebuilt at construction
    std::vector<Tlb *> tlbs_;

    Counter minor_faults_;
    Counter major_faults_;
    Counter reclaims_;
    Counter writebacks_;
    Counter shootdowns_;
    Counter stall_cycles_;
};

} // namespace asd

#endif // ASD_OS_KERNEL_HPP
