#include "os/os_mmu.hpp"

#include "common/log.hpp"

namespace asd
{

OsMmu::OsMmu(const VmConfig &vm, OsKernel &kernel,
             std::uint32_t thread)
    : kernel_(kernel),
      page_bytes_(vm.pageBytes()),
      thread_(thread),
      tlb_(vm.tlb)
{
    panicIfNot(page_bytes_ > 0, "os: zero translation granule");
    kernel_.registerTlb(&tlb_);
}

Addr
OsMmu::translate(const MemAccess &access, Cycles &stall_cycles)
{
    const std::uint64_t vpn = access.addr / page_bytes_;
    const Addr offset = access.addr % page_bytes_;
    const bool is_write = access.op == MemOp::Write;
    const std::uint64_t key = osPageKey(access.space, vpn);
    if (const auto pfn = tlb_.lookup(key)) {
        // The hardware set R/D bits on the TLB hit; CLOCK must see
        // them or it would reclaim hot pages.
        kernel_.markAccess(*pfn, is_write);
        stall_cycles = 0;
        return *pfn * page_bytes_ + offset;
    }
    const OsTouchResult result =
        kernel_.touch(access.space, vpn, is_write);
    tlb_.insert(key, result.pfn);
    stall_cycles = result.stall_cycles;
    stall_cycles_.inc(stall_cycles);
    return result.pfn * page_bytes_ + offset;
}

void
OsMmu::registerStats(StatRegistry &registry,
                     const std::string &prefix) const
{
    tlb_.registerStats(registry, prefix + ".tlb");
    registry.add(prefix + ".stall_cycles", stall_cycles_);
}

void
OsMmu::saveState(SnapshotWriter &w) const
{
    tlb_.saveState(w);
    w.u64(stall_cycles_.value());
}

void
OsMmu::loadState(SnapshotReader &r)
{
    tlb_.loadState(r);
    stall_cycles_.restore(r.u64());
}

} // namespace asd
