#ifndef ASD_OS_OS_MMU_HPP
#define ASD_OS_OS_MMU_HPP

/**
 * @file
 * Per-hardware-thread MMU for the OS model. Mirrors vm::Mmu's shape
 * (private TLB over shared translation state) but keys the TLB on
 * (address space, vpn) so tenants never alias, and routes misses
 * through the shared OsKernel's fault path instead of an infinite
 * allocator.
 */

#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "os/kernel.hpp"
#include "vm/tlb.hpp"
#include "vm/translator.hpp"

namespace asd
{

/** OS-model memory-management unit for one hardware thread. */
class OsMmu : public AddressTranslator, public Snapshottable
{
  public:
    /** @param kernel shared kernel; must outlive the OsMmu. */
    OsMmu(const VmConfig &vm, OsKernel &kernel, std::uint32_t thread);

    Addr translate(const MemAccess &access,
                   Cycles &stall_cycles) override;

    const Tlb &tlb() const { return tlb_; }

    /** Total translation stall charged by this thread so far. */
    std::uint64_t stallCycles() const { return stall_cycles_.value(); }

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    // asdlint:allow(snapshot-field-coverage): wiring to the shared kernel, fixed at construction
    OsKernel &kernel_;
    // asdlint:allow(snapshot-field-coverage): translation granule derived from config at construction
    std::uint64_t page_bytes_;
    // asdlint:allow(snapshot-field-coverage): thread id is wiring configuration fixed at construction
    std::uint32_t thread_;
    Tlb tlb_;
    Counter stall_cycles_;
};

} // namespace asd

#endif // ASD_OS_OS_MMU_HPP
