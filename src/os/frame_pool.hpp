#ifndef ASD_OS_FRAME_POOL_HPP
#define ASD_OS_FRAME_POOL_HPP

/**
 * @file
 * Finite physical-frame pool with CLOCK (second-chance) reclaim.
 * Replaces the VM layer's infinite allocators when the OS model is
 * enabled: frames are handed out in a deterministic shuffled order
 * until the pool is full, after which every new page steals a victim
 * chosen by sweeping a clock hand past referenced frames. The pool
 * only tracks frame metadata; fault/reclaim latencies are charged by
 * the OsKernel.
 */

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** The page evicted by a reclaim, as the kernel needs to undo it. */
struct OsVictim
{
    std::uint32_t space = 0;
    std::uint64_t vpn = 0;
    bool dirty = false;
};

/** Fixed-size frame pool with second-chance eviction. */
class FramePool : public Snapshottable
{
  public:
    /**
     * @param frames pool size; must be positive.
     * @param seed   deterministic shuffle of the hand-out order, so
     *               physical placement fragments virtual streams the
     *               way a long-running OS's free list would.
     */
    FramePool(std::uint64_t frames, std::uint64_t seed);

    /**
     * Claim a frame for (@p space, @p vpn), reclaiming the CLOCK
     * victim when no free frame remains. The claimed frame starts
     * referenced, with its dirty bit set iff @p is_write.
     * @param evicted set when a resident page was reclaimed.
     * @param victim  filled with the evicted page when @p evicted.
     * @return the claimed physical frame number.
     */
    std::uint64_t acquire(std::uint32_t space, std::uint64_t vpn,
                          bool is_write, bool &evicted,
                          OsVictim &victim);

    /** Record a touch of resident frame @p pfn (sets R, and D on writes). */
    void markAccess(std::uint64_t pfn, bool is_write);

    /** Pool size in frames. */
    std::uint64_t size() const { return frames_.size(); }

    /** Frames currently backing a page. */
    std::uint64_t resident() const { return resident_; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct Frame
    {
        std::uint32_t space = 0;
        std::uint64_t vpn = 0;
        bool valid = false;
        bool referenced = false;
        bool dirty = false;
    };

    std::vector<Frame> frames_;
    // asdlint:allow(snapshot-field-coverage): hand-out permutation derived from the seed in the constructor
    std::vector<std::uint64_t> free_order_;
    std::uint64_t free_pos_ = 0; //!< next unconsumed free_order_ slot
    std::uint64_t hand_ = 0;     //!< CLOCK hand
    std::uint64_t resident_ = 0;
};

} // namespace asd

#endif // ASD_OS_FRAME_POOL_HPP
