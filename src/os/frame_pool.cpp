#include "os/frame_pool.hpp"

#include <numeric>

#include "common/log.hpp"

namespace asd
{

FramePool::FramePool(std::uint64_t frames, std::uint64_t seed)
{
    if (frames == 0)
        fatal("os: frame pool must hold at least one frame");
    frames_.resize(frames);
    free_order_.resize(frames);
    std::iota(free_order_.begin(), free_order_.end(), 0ULL);
    // Deterministic Fisher-Yates over the hand-out order: first
    // touches land on scattered frames, like a fragmented free list.
    Rng rng(seed);
    for (std::uint64_t i = frames - 1; i > 0; --i) {
        const std::uint64_t j = rng.nextBelow(i + 1);
        std::swap(free_order_[i], free_order_[j]);
    }
}

std::uint64_t
FramePool::acquire(std::uint32_t space, std::uint64_t vpn,
                   bool is_write, bool &evicted, OsVictim &victim)
{
    std::uint64_t pfn;
    if (free_pos_ < free_order_.size()) {
        pfn = free_order_[free_pos_++];
        evicted = false;
    } else {
        // CLOCK: sweep past referenced frames (clearing R as the
        // second chance) until an unreferenced victim is found. With
        // every frame referenced this degenerates to FIFO after one
        // full sweep, so it always terminates.
        while (frames_[hand_].referenced) {
            frames_[hand_].referenced = false;
            hand_ = (hand_ + 1) % frames_.size();
        }
        pfn = hand_;
        hand_ = (hand_ + 1) % frames_.size();
        const Frame &old = frames_[pfn];
        victim.space = old.space;
        victim.vpn = old.vpn;
        victim.dirty = old.dirty;
        evicted = true;
        --resident_;
    }
    Frame &frame = frames_[pfn];
    frame.space = space;
    frame.vpn = vpn;
    frame.valid = true;
    frame.referenced = true;
    frame.dirty = is_write;
    ++resident_;
    return pfn;
}

void
FramePool::markAccess(std::uint64_t pfn, bool is_write)
{
    panicIfNot(pfn < frames_.size() && frames_[pfn].valid,
               "os: access to an unmapped frame");
    frames_[pfn].referenced = true;
    if (is_write)
        frames_[pfn].dirty = true;
}

void
FramePool::saveState(SnapshotWriter &w) const
{
    w.u64(frames_.size());
    for (const Frame &frame : frames_) {
        w.u32(frame.space);
        w.u64(frame.vpn);
        w.b(frame.valid);
        w.b(frame.referenced);
        w.b(frame.dirty);
    }
    w.u64(free_pos_);
    w.u64(hand_);
    w.u64(resident_);
}

void
FramePool::loadState(SnapshotReader &r)
{
    SnapshotReader::check(r.u64() == frames_.size(),
                          "os: frame pool size mismatch");
    for (Frame &frame : frames_) {
        frame.space = r.u32();
        frame.vpn = r.u64();
        frame.valid = r.b();
        frame.referenced = r.b();
        frame.dirty = r.b();
    }
    free_pos_ = r.u64();
    SnapshotReader::check(free_pos_ <= frames_.size(),
                          "os: frame pool cursor out of range");
    hand_ = r.u64();
    SnapshotReader::check(hand_ < frames_.size(),
                          "os: CLOCK hand out of range");
    resident_ = r.u64();
    SnapshotReader::check(resident_ <= frames_.size(),
                          "os: resident count out of range");
}

} // namespace asd
