#include "os/kernel.hpp"

#include <array>

#include "common/log.hpp"

namespace asd
{

OsKernel::OsKernel(const OsConfig &config, const VmConfig &vm)
    : config_(config),
      pool_(config.frames, config.seed),
      walker_(makePageWalker(vm, config.hashed_probe_cycles,
                             config.frames)),
      rng_(config.seed ^ 0x05c0ffeeULL)
{
    if (config_.major_fault_frac < 0.0 ||
        config_.major_fault_frac > 1.0)
        fatal("os: major_fault_frac must be in [0, 1]");
}

OsTouchResult
OsKernel::touch(std::uint32_t space, std::uint64_t vpn, bool is_write)
{
    OsTouchResult result;
    const std::uint64_t key = osPageKey(space, vpn);
    Cycles walk = 0;
    if (walker_->lookup(key, result.pfn, walk)) {
        result.stall_cycles = walk;
        pool_.markAccess(result.pfn, is_write);
        stall_cycles_.inc(result.stall_cycles);
        return result;
    }

    // Page fault: the failed walk is already paid, then the fault
    // service time, then reclaim if the pool is full.
    result.stall_cycles = walk;
    result.major_fault = rng_.chance(config_.major_fault_frac);
    result.minor_fault = !result.major_fault;
    if (result.major_fault) {
        major_faults_.inc();
        result.stall_cycles += config_.major_fault_cycles;
    } else {
        minor_faults_.inc();
        result.stall_cycles += config_.minor_fault_cycles;
    }

    bool evicted = false;
    OsVictim victim;
    result.pfn = pool_.acquire(space, vpn, is_write, evicted, victim);
    if (evicted) {
        result.reclaimed = true;
        reclaims_.inc();
        result.stall_cycles += config_.reclaim_cycles;
        if (victim.dirty) {
            result.wrote_back = true;
            writebacks_.inc();
            result.stall_cycles += config_.writeback_cycles;
        }
        const std::uint64_t victim_key =
            osPageKey(victim.space, victim.vpn);
        walker_->unmap(victim_key);
        for (Tlb *tlb : tlbs_) {
            if (tlb->invalidate(victim_key))
                shootdowns_.inc();
        }
    }
    walker_->map(key, result.pfn);
    stall_cycles_.inc(result.stall_cycles);
    return result;
}

void
OsKernel::markAccess(std::uint64_t pfn, bool is_write)
{
    pool_.markAccess(pfn, is_write);
}

void
OsKernel::registerStats(StatRegistry &registry,
                        const std::string &prefix) const
{
    registry.add(prefix + ".minor_faults", minor_faults_);
    registry.add(prefix + ".major_faults", major_faults_);
    registry.add(prefix + ".reclaims", reclaims_);
    registry.add(prefix + ".writebacks", writebacks_);
    registry.add(prefix + ".shootdowns", shootdowns_);
    registry.add(prefix + ".stall_cycles", stall_cycles_);
    walker_->registerStats(registry, prefix);
}

void
OsKernel::saveState(SnapshotWriter &w) const
{
    pool_.saveState(w);
    walker_->saveState(w);
    for (const std::uint64_t word : rng_.state())
        w.u64(word);
    w.u64(minor_faults_.value());
    w.u64(major_faults_.value());
    w.u64(reclaims_.value());
    w.u64(writebacks_.value());
    w.u64(shootdowns_.value());
    w.u64(stall_cycles_.value());
}

void
OsKernel::loadState(SnapshotReader &r)
{
    pool_.loadState(r);
    walker_->loadState(r);
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t &word : state)
        word = r.u64();
    rng_.setState(state);
    minor_faults_.restore(r.u64());
    major_faults_.restore(r.u64());
    reclaims_.restore(r.u64());
    writebacks_.restore(r.u64());
    shootdowns_.restore(r.u64());
    stall_cycles_.restore(r.u64());
}

} // namespace asd
