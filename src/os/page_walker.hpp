#ifndef ASD_OS_PAGE_WALKER_HPP
#define ASD_OS_PAGE_WALKER_HPP

/**
 * @file
 * Page-table organizations for the OS model. Unlike the VM layer's
 * PageTable (whose walk cost is a fixed TLB-miss charge), the walker
 * here models the *structure* of the table: a radix-style map with a
 * fixed walk latency, or a hashed/inverted table whose lookup cost
 * grows with the probe chain — so collisions under memory pressure
 * cost real cycles. Selected via VmConfig::walker.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"
#include "vm/vm_config.hpp"

namespace asd
{

/** Bits of a page key reserved for the virtual page number. */
inline constexpr std::uint32_t kOsVpnBits = 40;

/**
 * Compose an address-space id and a virtual page number into the
 * single key the walkers and TLBs operate on. Keeping tenants apart
 * in the key space means one tenant's translations can never alias
 * another's.
 */
inline std::uint64_t
osPageKey(std::uint32_t space, std::uint64_t vpn)
{
    return (static_cast<std::uint64_t>(space) << kOsVpnBits) | vpn;
}

/** Abstract page-table organization. */
class PageWalker : public Snapshottable
{
  public:
    virtual ~PageWalker() = default;

    /**
     * Walk the table for @p key.
     * @param pfn filled with the frame on a hit.
     * @param walk_cycles set to the walk cost (charged on hit *and*
     *        miss — a fault first discovers the page is absent).
     * @retval false when no mapping exists (page fault).
     */
    virtual bool lookup(std::uint64_t key, std::uint64_t &pfn,
                        Cycles &walk_cycles) = 0;

    /** Install @p key -> @p pfn; the key must not be mapped. */
    virtual void map(std::uint64_t key, std::uint64_t pfn) = 0;

    /** Remove @p key (reclaim); the key must be mapped. */
    virtual void unmap(std::uint64_t key) = 0;

    /** Live mappings. */
    virtual std::uint64_t mapped() const = 0;

    /** Distinct pages ever mapped. */
    std::uint64_t pagesMapped() const { return pages_mapped_.value(); }

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

  protected:
    Counter pages_mapped_;
};

/**
 * Radix-style organization: an ordered map standing in for the
 * multi-level tree, every walk costing the same @p walk_cycles.
 */
class RadixWalker : public PageWalker
{
  public:
    explicit RadixWalker(Cycles walk_cycles);

    bool lookup(std::uint64_t key, std::uint64_t &pfn,
                Cycles &walk_cycles) override;
    void map(std::uint64_t key, std::uint64_t pfn) override;
    void unmap(std::uint64_t key) override;
    std::uint64_t mapped() const override { return map_.size(); }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    // asdlint:allow(snapshot-field-coverage): fixed walk latency from config, set at construction
    Cycles walk_cycles_;
    std::map<std::uint64_t, std::uint64_t> map_;
};

/**
 * Hashed/inverted organization: buckets of collision chains, walk
 * cost proportional to the probes performed. A miss walks the whole
 * chain before faulting.
 */
class HashedWalker : public PageWalker
{
  public:
    /**
     * @param buckets chain-anchor count, rounded up to a power of
     *        two; sized from the frame pool (an inverted table has
     *        one entry per frame).
     * @param probe_cycles cost per chain entry probed.
     */
    HashedWalker(std::uint64_t buckets, Cycles probe_cycles);

    bool lookup(std::uint64_t key, std::uint64_t &pfn,
                Cycles &walk_cycles) override;
    void map(std::uint64_t key, std::uint64_t pfn) override;
    void unmap(std::uint64_t key) override;
    std::uint64_t mapped() const override { return mapped_; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::uint64_t pfn = 0;
    };

    std::size_t bucketOf(std::uint64_t key) const;

    // asdlint:allow(snapshot-field-coverage): per-probe latency from config, set at construction
    Cycles probe_cycles_;
    std::vector<std::vector<Entry>> buckets_;
    std::uint64_t mapped_ = 0;
};

/** Build the walker VmConfig::walker selects. */
std::unique_ptr<PageWalker> makePageWalker(const VmConfig &vm,
                                           Cycles hashed_probe_cycles,
                                           std::uint64_t frames);

} // namespace asd

#endif // ASD_OS_PAGE_WALKER_HPP
