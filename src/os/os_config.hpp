#ifndef ASD_OS_OS_CONFIG_HPP
#define ASD_OS_OS_CONFIG_HPP

/**
 * @file
 * Configuration of the OS memory model: a finite physical-frame pool
 * with demand paging and memory-pressure reclaim, layered on the VM
 * config's translation granule, TLB geometry, and walker selection.
 * Where the plain VM layer charges a fixed walk cost against an
 * infinite frame supply, the OS model charges minor/major fault
 * latencies, CLOCK reclaim, and dirty writebacks — the machinery
 * that actually shreds physical streams on a loaded server. Disabled
 * by default: runs are bit-identical to the pre-OS simulator.
 */

#include <cstdint>

#include "common/types.hpp"

namespace asd
{

/** Everything needed to build the OS kernel model. */
struct OsConfig
{
    /** Off by default: bit-identical to the pre-OS simulator. */
    bool enabled = false;

    /**
     * Physical frames in the pool. At the default 4 KB granule,
     * 16384 frames back a 64 MB resident set — small enough that the
     * paper-scale working sets generate steady reclaim pressure.
     */
    std::uint64_t frames = 16384;

    /** Stall for a minor fault (mapping established, page resident). */
    Cycles minor_fault_cycles = 800;

    /** Stall for a major fault (page read from backing store). */
    Cycles major_fault_cycles = 20000;

    /** Fraction of faults that miss in the page cache (major). */
    double major_fault_frac = 0.02;

    /** Extra stall when a fault must reclaim a victim frame. */
    Cycles reclaim_cycles = 300;

    /** Extra stall when the reclaimed victim was dirty. */
    Cycles writeback_cycles = 2000;

    /**
     * Per-probe cost of the hashed/inverted walker's chain walk
     * (PageWalkerKind::Hashed); the radix walker charges the TLB
     * config's fixed walk_cycles instead.
     */
    Cycles hashed_probe_cycles = 20;

    /** Seed for frame-placement shuffling and major-fault draws. */
    std::uint64_t seed = 0x05edULL;
};

} // namespace asd

#endif // ASD_OS_OS_CONFIG_HPP
