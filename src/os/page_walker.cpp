#include "os/page_walker.hpp"

#include "common/log.hpp"

namespace asd
{

namespace
{

/** splitmix64 finalizer: deterministic, well-mixed bucket hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

void
PageWalker::registerStats(StatRegistry &registry,
                          const std::string &prefix) const
{
    registry.add(prefix + ".pages_mapped", pages_mapped_);
}

RadixWalker::RadixWalker(Cycles walk_cycles)
    : walk_cycles_(walk_cycles)
{}

bool
RadixWalker::lookup(std::uint64_t key, std::uint64_t &pfn,
                    Cycles &walk_cycles)
{
    walk_cycles = walk_cycles_;
    const auto it = map_.find(key);
    if (it == map_.end())
        return false;
    pfn = it->second;
    return true;
}

void
RadixWalker::map(std::uint64_t key, std::uint64_t pfn)
{
    panicIfNot(map_.emplace(key, pfn).second,
               "os: radix walker double map");
    pages_mapped_.inc();
}

void
RadixWalker::unmap(std::uint64_t key)
{
    panicIfNot(map_.erase(key) == 1, "os: radix walker unmap miss");
}

void
RadixWalker::saveState(SnapshotWriter &w) const
{
    w.u64(map_.size());
    for (const auto &[key, pfn] : map_) {
        w.u64(key);
        w.u64(pfn);
    }
    w.u64(pages_mapped_.value());
}

void
RadixWalker::loadState(SnapshotReader &r)
{
    const std::uint64_t count = r.u64();
    map_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t key = r.u64();
        const std::uint64_t pfn = r.u64();
        SnapshotReader::check(map_.emplace(key, pfn).second,
                              "os: duplicate radix mapping");
    }
    pages_mapped_.restore(r.u64());
}

HashedWalker::HashedWalker(std::uint64_t buckets, Cycles probe_cycles)
    : probe_cycles_(probe_cycles)
{
    if (buckets == 0)
        fatal("os: hashed walker needs at least one bucket");
    buckets_.resize(nextPowerOfTwo(buckets));
}

std::size_t
HashedWalker::bucketOf(std::uint64_t key) const
{
    return static_cast<std::size_t>(mix64(key) &
                                    (buckets_.size() - 1));
}

bool
HashedWalker::lookup(std::uint64_t key, std::uint64_t &pfn,
                     Cycles &walk_cycles)
{
    const std::vector<Entry> &chain = buckets_[bucketOf(key)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].key == key) {
            walk_cycles = probe_cycles_ *
                          static_cast<Cycles>(i + 1);
            pfn = chain[i].pfn;
            return true;
        }
    }
    // A miss probes the whole chain (plus the anchor) before the
    // fault is known.
    walk_cycles = probe_cycles_ *
                  static_cast<Cycles>(chain.size() + 1);
    return false;
}

void
HashedWalker::map(std::uint64_t key, std::uint64_t pfn)
{
    std::vector<Entry> &chain = buckets_[bucketOf(key)];
    for (const Entry &entry : chain)
        panicIfNot(entry.key != key, "os: hashed walker double map");
    chain.push_back(Entry{key, pfn});
    ++mapped_;
    pages_mapped_.inc();
}

void
HashedWalker::unmap(std::uint64_t key)
{
    std::vector<Entry> &chain = buckets_[bucketOf(key)];
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].key == key) {
            chain.erase(chain.begin() +
                        static_cast<std::ptrdiff_t>(i));
            --mapped_;
            return;
        }
    }
    panic("os: hashed walker unmap miss");
}

void
HashedWalker::saveState(SnapshotWriter &w) const
{
    w.u64(buckets_.size());
    for (const std::vector<Entry> &chain : buckets_) {
        w.u64(chain.size());
        for (const Entry &entry : chain) {
            w.u64(entry.key);
            w.u64(entry.pfn);
        }
    }
    w.u64(mapped_);
    w.u64(pages_mapped_.value());
}

void
HashedWalker::loadState(SnapshotReader &r)
{
    SnapshotReader::check(r.u64() == buckets_.size(),
                          "os: hashed walker bucket count mismatch");
    for (std::vector<Entry> &chain : buckets_) {
        chain.clear();
        const std::uint64_t len = r.u64();
        chain.reserve(len);
        for (std::uint64_t i = 0; i < len; ++i) {
            Entry entry;
            entry.key = r.u64();
            entry.pfn = r.u64();
            chain.push_back(entry);
        }
    }
    mapped_ = r.u64();
    pages_mapped_.restore(r.u64());
}

std::unique_ptr<PageWalker>
makePageWalker(const VmConfig &vm, Cycles hashed_probe_cycles,
               std::uint64_t frames)
{
    switch (vm.walker) {
    case PageWalkerKind::Radix:
        return std::make_unique<RadixWalker>(vm.tlb.walk_cycles);
    case PageWalkerKind::Hashed:
        // Inverted-table sizing: one chain anchor per frame.
        return std::make_unique<HashedWalker>(frames,
                                              hashed_probe_cycles);
    }
    panic("unhandled PageWalkerKind");
}

} // namespace asd
