#ifndef ASD_CACHE_MSHR_HPP
#define ASD_CACHE_MSHR_HPP

/**
 * @file
 * Miss Status Holding Registers: merge concurrent demand misses to the
 * same line so only one memory request is outstanding per line.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/**
 * Fixed-capacity MSHR file. Entries are identified by line address;
 * each holds a waiter count so merged misses can all be released by
 * one fill.
 */
class MshrFile : public Snapshottable
{
  public:
    explicit MshrFile(std::size_t capacity) : capacity_(capacity) {}

    /** True when no new entry can be allocated. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True when @p line already has an outstanding miss. */
    bool
    has(LineAddr line) const
    {
        return findIndex(line) != entries_.size();
    }

    /**
     * Record a miss on @p line. Merges into an existing entry when one
     * exists; otherwise allocates (caller must check full() first).
     * @retval true when this was a merge (no new memory request
     *         should be sent).
     */
    bool
    allocate(LineAddr line)
    {
        const std::size_t idx = findIndex(line);
        if (idx != entries_.size()) {
            ++entries_[idx].waiters;
            return true;
        }
        entries_.push_back({line, 1});
        return false;
    }

    /**
     * Complete the miss on @p line.
     * @return number of waiters released (0 if no such entry).
     */
    std::uint32_t
    release(LineAddr line)
    {
        const std::size_t idx = findIndex(line);
        if (idx == entries_.size())
            return 0;
        const std::uint32_t waiters = entries_[idx].waiters;
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        return waiters;
    }

    std::size_t inUse() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    void
    saveState(SnapshotWriter &w) const override
    {
        w.u32(static_cast<std::uint32_t>(entries_.size()));
        for (const Entry &entry : entries_) {
            w.u64(entry.line);
            w.u32(entry.waiters);
        }
    }

    void
    loadState(SnapshotReader &r) override
    {
        const std::uint32_t count = r.u32();
        SnapshotReader::check(count <= capacity_,
                              "MSHR entry count exceeds capacity");
        entries_.clear();
        for (std::uint32_t i = 0; i < count; ++i) {
            Entry entry;
            entry.line = r.u64();
            entry.waiters = r.u32();
            entries_.push_back(entry);
        }
    }

  private:
    struct Entry
    {
        LineAddr line;
        std::uint32_t waiters;
    };

    std::size_t
    findIndex(LineAddr line) const
    {
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (entries_[i].line == line)
                return i;
        return entries_.size();
    }

    // asdlint:allow(snapshot-field-coverage): ctor configuration; loadState only bounds-checks against it
    std::size_t capacity_;
    std::vector<Entry> entries_;
};

} // namespace asd

#endif // ASD_CACHE_MSHR_HPP
