#include "cache/hierarchy.hpp"

namespace asd
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config),
      l1_(config.l1),
      l2_(config.l2),
      l3_(config.l3)
{
}

void
CacheHierarchy::insertL3(LineAddr line, bool dirty, bool prefetch)
{
    // Victim L3 (Power5-style): holds lines cast out of L2; evicting
    // an L3 line never back-invalidates the upper levels, it just
    // writes dirty data to memory.
    if (const auto victim = l3_.insert(line, dirty, prefetch)) {
        if (victim->dirty) {
            writebacks_.push_back(victim->line);
            writebacks_generated_.inc();
        }
    }
}

void
CacheHierarchy::insertL2(LineAddr line, bool dirty, bool prefetch)
{
    if (const auto victim = l2_.insert(line, dirty, prefetch)) {
        // L1 stays a subset of L2 (write-through, clean lines only).
        l1_.invalidate(victim->line);
        insertL3(victim->line, victim->dirty, victim->was_prefetch);
    }
}

void
CacheHierarchy::insertL1(LineAddr line, bool prefetch)
{
    l1_.insert(line, false, prefetch);
}

/**
 * Move a line that hit in the victim L3 back up into L2, removing the
 * L3 copy (exclusive promotion) and carrying its dirty bit.
 */
AccessResult
CacheHierarchy::access(LineAddr line, bool is_store)
{
    AccessResult result;
    if (is_store) {
        // Write-through L1: the store updates L1 if present and always
        // writes into L2. An L2 + L3 miss raises an RFO memory read.
        l1_.access(line, false);
        if (l2_.access(line, true)) {
            result.level = HitLevel::L2;
            result.latency = config_.lat_l2;
            return result;
        }
        if (l3_.access(line, false)) {
            const auto promoted = l3_.invalidate(line);
            insertL2(line, true, false);
            (void)promoted;
            result.level = HitLevel::L3;
            result.latency = config_.lat_l3;
            return result;
        }
        result.level = HitLevel::Memory;
        result.needs_memory = true;
        return result;
    }

    if (l1_.access(line, false)) {
        result.level = HitLevel::L1;
        result.latency = config_.lat_l1;
        return result;
    }
    if (l2_.access(line, false)) {
        insertL1(line, false);
        result.level = HitLevel::L2;
        result.latency = config_.lat_l2;
        return result;
    }
    if (l3_.access(line, false)) {
        const auto promoted = l3_.invalidate(line);
        insertL2(line, promoted && promoted->dirty, false);
        insertL1(line, false);
        result.level = HitLevel::L3;
        result.latency = config_.lat_l3;
        return result;
    }
    result.level = HitLevel::Memory;
    result.needs_memory = true;
    return result;
}

void
CacheHierarchy::fill(LineAddr line, bool dirty)
{
    insertL2(line, dirty, false);
    insertL1(line, false);
}

void
CacheHierarchy::fillPrefetchL1(LineAddr line)
{
    insertL2(line, false, true);
    insertL1(line, true);
}

void
CacheHierarchy::fillPrefetchL2(LineAddr line)
{
    insertL2(line, false, true);
}

std::vector<LineAddr>
CacheHierarchy::drainWritebacks()
{
    std::vector<LineAddr> out;
    out.swap(writebacks_);
    return out;
}

bool
CacheHierarchy::probe(HitLevel level, LineAddr line) const
{
    switch (level) {
      case HitLevel::L1:
        return l1_.probe(line);
      case HitLevel::L2:
        return l2_.probe(line);
      case HitLevel::L3:
        return l3_.probe(line);
      case HitLevel::Memory:
        return false;
    }
    return false;
}

void
CacheHierarchy::registerStats(StatRegistry &registry,
                              const std::string &prefix) const
{
    l1_.registerStats(registry, prefix + ".l1");
    l2_.registerStats(registry, prefix + ".l2");
    l3_.registerStats(registry, prefix + ".l3");
    registry.add(prefix + ".writebacks", writebacks_generated_);
}

void
CacheHierarchy::saveState(SnapshotWriter &w) const
{
    l1_.saveState(w);
    l2_.saveState(w);
    l3_.saveState(w);
    w.vecU64(writebacks_);
    w.u64(writebacks_generated_.value());
}

void
CacheHierarchy::loadState(SnapshotReader &r)
{
    l1_.loadState(r);
    l2_.loadState(r);
    l3_.loadState(r);
    writebacks_ = r.vecU64();
    writebacks_generated_.restore(r.u64());
}

} // namespace asd
