#include "cache/cache.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace asd
{

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config)
{
    panicIfNot(config_.ways > 0, "cache needs at least one way");
    panicIfNot(config_.sets() > 0, "cache smaller than one set");
    ways_.resize(config_.sets() * config_.ways);
}

std::size_t
SetAssocCache::setIndex(LineAddr line) const
{
    // Modulo indexing: the Power5+'s L2 (1536 sets) and L3 (24576
    // sets) are not power-of-two geometries.
    return static_cast<std::size_t>(line % config_.sets());
}

SetAssocCache::Way *
SetAssocCache::find(LineAddr line)
{
    const std::size_t base = setIndex(line) * config_.ways;
    for (std::size_t w = 0; w < config_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.line == line)
            return &way;
    }
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::find(LineAddr line) const
{
    return const_cast<SetAssocCache *>(this)->find(line);
}

bool
SetAssocCache::access(LineAddr line, bool mark_dirty)
{
    ++clock_;
    Way *way = find(line);
    if (!way) {
        misses_.inc();
        return false;
    }
    hits_.inc();
    if (way->prefetched) {
        prefetch_hits_.inc();
        way->prefetched = false;
    }
    way->lru = clock_;
    if (mark_dirty)
        way->dirty = true;
    return true;
}

bool
SetAssocCache::probe(LineAddr line) const
{
    return find(line) != nullptr;
}

std::optional<Eviction>
SetAssocCache::insert(LineAddr line, bool dirty, bool prefetch)
{
    ++clock_;
    if (Way *way = find(line)) {
        // Re-insertion of a resident line refreshes it.
        way->lru = clock_;
        way->dirty = way->dirty || dirty;
        return std::nullopt;
    }
    const std::size_t base = setIndex(line) * config_.ways;
    Way *victim = &ways_[base];
    for (std::size_t w = 0; w < config_.ways; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    std::optional<Eviction> evicted;
    if (victim->valid) {
        evicted = Eviction{victim->line, victim->dirty,
                           victim->prefetched};
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = dirty;
    victim->prefetched = prefetch;
    victim->lru = clock_;
    return evicted;
}

void
SetAssocCache::markDirty(LineAddr line)
{
    if (Way *way = find(line))
        way->dirty = true;
}

std::optional<Eviction>
SetAssocCache::invalidate(LineAddr line)
{
    Way *way = find(line);
    if (!way)
        return std::nullopt;
    way->valid = false;
    return Eviction{way->line, way->dirty, way->prefetched};
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t count = 0;
    for (const Way &way : ways_)
        if (way.valid)
            ++count;
    return count;
}

std::vector<SetAssocCache::ResidentLine>
SetAssocCache::linesByRecency() const
{
    std::vector<std::pair<std::uint64_t, ResidentLine>> stamped;
    for (const Way &way : ways_) {
        if (way.valid) {
            stamped.push_back(
                {way.lru,
                 ResidentLine{way.line, way.dirty, way.prefetched}});
        }
    }
    std::sort(stamped.begin(), stamped.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<ResidentLine> lines;
    lines.reserve(stamped.size());
    for (const auto &entry : stamped)
        lines.push_back(entry.second);
    return lines;
}

void
SetAssocCache::registerStats(StatRegistry &registry,
                             const std::string &prefix) const
{
    registry.add(prefix + ".hits", hits_);
    registry.add(prefix + ".misses", misses_);
    registry.add(prefix + ".prefetch_hits", prefetch_hits_);
}

void
SetAssocCache::saveState(SnapshotWriter &w) const
{
    w.u64(clock_);
    w.u64(ways_.size());
    for (const Way &way : ways_) {
        w.u64(way.line);
        w.u64(way.lru);
        w.b(way.valid);
        w.b(way.dirty);
        w.b(way.prefetched);
    }
    w.u64(hits_.value());
    w.u64(misses_.value());
    w.u64(prefetch_hits_.value());
}

void
SetAssocCache::loadState(SnapshotReader &r)
{
    clock_ = r.u64();
    SnapshotReader::check(r.u64() == ways_.size(),
                          "cache geometry mismatch");
    for (Way &way : ways_) {
        way.line = r.u64();
        way.lru = r.u64();
        way.valid = r.b();
        way.dirty = r.b();
        way.prefetched = r.b();
    }
    hits_.restore(r.u64());
    misses_.restore(r.u64());
    prefetch_hits_.restore(r.u64());
}

} // namespace asd
