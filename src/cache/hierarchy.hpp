#ifndef ASD_CACHE_HIERARCHY_HPP
#define ASD_CACHE_HIERARCHY_HPP

/**
 * @file
 * The Power5+-like three-level cache hierarchy: write-through L1D,
 * shared write-back L2, and a large off-chip L3. Inclusive: an L3
 * eviction back-invalidates L2/L1; L2 victims merge their dirty bits
 * into L3; dirty L3 victims become memory-controller writes.
 */

#include <vector>

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace asd
{

/**
 * Sizes/latencies for the three levels. L1/L2 are the paper's section
 * 4.2 values. The L3 is a victim cache of the L2, like the real
 * Power5 L3; the paper's 36 MB is scaled to 4 MB to match the
 * synthetic traces, which are orders of magnitude shorter than the
 * paper's sampled executions (standard cache-scaling practice for
 * sampled simulation; an unscaled L3 would never be exercised and
 * would suppress all writeback traffic).
 */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 4, 128};
    CacheConfig l2{1920 * 1024, 10, 128};
    CacheConfig l3{4 * 1024 * 1024, 12, 128};
    Cycles lat_l1 = 2;
    Cycles lat_l2 = 13;
    Cycles lat_l3 = 87;
};

/** Where a demand access was satisfied. */
enum class HitLevel : std::uint8_t { L1, L2, L3, Memory };

/** Outcome of a demand access. */
struct AccessResult
{
    HitLevel level = HitLevel::L1;
    Cycles latency = 0;      //!< meaningful unless level == Memory
    bool needs_memory = false;
};

/**
 * Tag-level model of the cache stack. L1 is kept a subset of L2; the
 * L3 is an exclusive victim cache (hits promote back into L2, and L3
 * evictions never back-invalidate). The owner drains generated
 * writebacks into the memory controller every cycle.
 */
class CacheHierarchy : public Snapshottable
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /**
     * Demand load/store lookup. Hits pull the line into upper levels
     * (an L3 hit promotes the victim copy back into L2). Misses to
     * memory do NOT allocate; call fill() when data returns.
     */
    AccessResult access(LineAddr line, bool is_store);

    /**
     * Install @p line on a returning memory read (demand or RFO).
     * @param dirty line returns for a store (RFO).
     */
    void fill(LineAddr line, bool dirty);

    /** Install a processor-side prefetch into L1 (and below). */
    void fillPrefetchL1(LineAddr line);

    /** Install a processor-side prefetch into L2 (and L3). */
    void fillPrefetchL2(LineAddr line);

    /** Lines written back to memory since the last drain. */
    std::vector<LineAddr> drainWritebacks();

    /** Tag probe at one level (tests/prefetchers). */
    bool probe(HitLevel level, LineAddr line) const;

    /** Register all per-level counters. */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &l2() const { return l2_; }
    const SetAssocCache &l3() const { return l3_; }
    const HierarchyConfig &config() const { return config_; }

  private:
    /** Install an L2 victim in L3; dirty L3 victims become writes. */
    void insertL3(LineAddr line, bool dirty, bool prefetch);

    /** Insert into L2; the displaced victim falls into the L3. */
    void insertL2(LineAddr line, bool dirty, bool prefetch);

    /** Insert into L1 (write-through: L1 lines are never dirty). */
    void insertL1(LineAddr line, bool prefetch);

    HierarchyConfig config_;
    SetAssocCache l1_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    std::vector<LineAddr> writebacks_;
    Counter writebacks_generated_;
};

} // namespace asd

#endif // ASD_CACHE_HIERARCHY_HPP
