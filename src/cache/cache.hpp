#ifndef ASD_CACHE_CACHE_HPP
#define ASD_CACHE_CACHE_HPP

/**
 * @file
 * Generic set-associative tag store with true-LRU replacement. Only
 * tags and per-line flags are modeled; the simulator never carries
 * data payloads.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t line_bytes = 128;

    std::uint64_t
    sets() const
    {
        return size_bytes / (static_cast<std::uint64_t>(ways) *
                             line_bytes);
    }
};

/** A line evicted by an insertion. */
struct Eviction
{
    LineAddr line = 0;
    bool dirty = false;
    bool was_prefetch = false; //!< line was prefetched, never used
};

/**
 * Tag store for one cache level. Lines are identified by their global
 * line address (byte address >> log2(line size)); set index and tag
 * derive from it.
 */
class SetAssocCache : public Snapshottable
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Demand lookup. On a hit the line moves to MRU; a hit on a
     * prefetched line clears the prefetch flag and counts it useful.
     * @param mark_dirty also set the dirty bit (stores).
     * @retval true on hit.
     */
    bool access(LineAddr line, bool mark_dirty);

    /** Tag-only probe with no LRU/flag side effects. */
    bool probe(LineAddr line) const;

    /**
     * Insert @p line at MRU.
     * @param dirty initial dirty state.
     * @param prefetch line arrives from a prefetcher (not yet used).
     * @return the victim, if a valid line was displaced.
     */
    std::optional<Eviction> insert(LineAddr line, bool dirty,
                                   bool prefetch = false);

    /** Set the dirty bit of a resident line; misses are ignored. */
    void markDirty(LineAddr line);

    /**
     * Remove @p line if resident.
     * @return the line's eviction record when it was resident.
     */
    std::optional<Eviction> invalidate(LineAddr line);

    /** Register hit/miss counters under @p prefix in @p registry. */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t prefetchHits() const { return prefetch_hits_.value(); }

    /** Valid lines right now (O(capacity) scan; checks/telemetry). */
    std::uint64_t validLines() const;

    /** One resident line, as reported by linesByRecency(). */
    struct ResidentLine
    {
        LineAddr line = 0;
        bool dirty = false;
        bool prefetched = false;
    };

    /**
     * Every resident line, oldest first by global LRU stamp (stamps
     * are unique, so the order is total). Reconfiguration rebuilds a
     * resized store by re-inserting these in order, which preserves
     * the recency ranking across the resize.
     */
    std::vector<ResidentLine> linesByRecency() const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    const CacheConfig &config() const { return config_; }

  private:
    struct Way
    {
        LineAddr line = 0;
        std::uint64_t lru = 0; //!< larger = more recent
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    std::size_t setIndex(LineAddr line) const;
    Way *find(LineAddr line);
    const Way *find(LineAddr line) const;

    CacheConfig config_;
    std::vector<Way> ways_; //!< sets x ways, row-major
    std::uint64_t clock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter prefetch_hits_; //!< demand hits on prefetched lines
};

} // namespace asd

#endif // ASD_CACHE_CACHE_HPP
