#include "core/slh_math.hpp"

#include "common/log.hpp"

namespace asd
{

std::uint64_t
lhtAt(const std::vector<std::uint64_t> &lht, std::size_t i)
{
    panicIfNot(i >= 1, "lht() is 1-based");
    return i <= lht.size() ? lht[i - 1] : 0;
}

double
slhProbability(const std::vector<std::uint64_t> &lht, std::size_t i,
               std::size_t j)
{
    panicIfNot(i >= 1 && i <= j, "slhProbability requires 1 <= i <= j");
    const std::uint64_t base = lhtAt(lht, 1);
    if (base == 0)
        return 0.0;
    const std::uint64_t in_range = lhtAt(lht, i) - lhtAt(lht, j + 1);
    return static_cast<double>(in_range) / static_cast<double>(base);
}

bool
shouldPrefetchNext(const std::vector<std::uint64_t> &lht, std::size_t k)
{
    return shouldPrefetchDegree(lht, k, 1);
}

bool
shouldPrefetchDegree(const std::vector<std::uint64_t> &lht,
                     std::size_t k, std::size_t d)
{
    panicIfNot(k >= 1 && d >= 1, "prefetch decision needs k,d >= 1");
    return lhtAt(lht, k) < 2 * lhtAt(lht, k + d);
}

std::vector<double>
readWeightedSlh(const std::vector<std::uint64_t> &lht)
{
    std::vector<double> bars(lht.size(), 0.0);
    double total = 0.0;
    for (std::size_t i = 1; i <= lht.size(); ++i) {
        const std::uint64_t exact = lhtAt(lht, i) - lhtAt(lht, i + 1);
        const double reads =
            static_cast<double>(exact) * static_cast<double>(i);
        bars[i - 1] = reads;
        total += reads;
    }
    if (total > 0.0)
        for (auto &bar : bars)
            bar /= total;
    return bars;
}

} // namespace asd
