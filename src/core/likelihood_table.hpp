#ifndef ASD_CORE_LIKELIHOOD_TABLE_HPP
#define ASD_CORE_LIKELIHOOD_TABLE_HPP

/**
 * @file
 * The LHTcurr/LHTnext pair of section 3.4. Each direction of each
 * hardware thread owns one LikelihoodTablePair; entries are saturating
 * counters sized for the epoch length (ceil(log2(epoch)) bits in
 * hardware; 64-bit here with explicit clamping at zero).
 */

#include <cstdint>
#include <vector>

#include "core/slh_math.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/**
 * One likelihood table: entry i-1 approximates the number of streams
 * of length >= i observed in an epoch.
 */
class LikelihoodTable : public Snapshottable
{
  public:
    explicit LikelihoodTable(std::size_t entries);

    /** A stream of length @p len completed: ++entries 1..min(len,Lm). */
    void recordStream(std::uint64_t len);

    /**
     * Deplete entries 1..min(len,Lm). Removing more streams than were
     * recorded is an add/remove mismatch that silently skews
     * inequality (6); under checksEnabled() it panics, otherwise the
     * affected entries saturate at zero and the clamp is counted
     * (underflowClamps()).
     */
    void removeStream(std::uint64_t len);

    /**
     * Deplete entries 1..min(len,Lm), clamping at zero and counting
     * clamps even under checksEnabled(). This is the correct form for
     * the paper's epoch protocol: LHTcurr starts an epoch as a copy of
     * the *previous* epoch's stream population, so a busier epoch
     * legitimately removes more streams than the copy recorded
     * (expected from epoch 1, whose LHTcurr is all zeroes).
     */
    void removeStreamSaturating(std::uint64_t len);

    /** Times an entry was depleted past zero and clamped. */
    std::uint64_t underflowClamps() const { return underflow_clamps_; }

    /** lht(i), 1-based; 0 beyond the table. */
    std::uint64_t at(std::size_t i) const;

    /** Copy counts from @p other (epoch swap: curr <- next). */
    void loadFrom(const LikelihoodTable &other);

    /** Zero all entries. */
    void clear();

    std::size_t entries() const { return counts_.size(); }

    /** Raw counts for the slh_math helpers and the figure benches. */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /**
     * Hardware decision (section 3.4): prefetch @p d lines ahead of
     * the @p k -th stream element iff lht(k) < (lht(k+d) << 1). The
     * comparator feeds the left-shifted next entry exactly as the
     * paper describes.
     */
    bool
    shouldPrefetch(std::size_t k, std::size_t d = 1) const
    {
        return shouldPrefetchDegree(counts_, k, d);
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_clamps_ = 0;
};

/** The (current, next) pair with the paper's epoch-boundary protocol. */
class LikelihoodTablePair : public Snapshottable
{
  public:
    explicit LikelihoodTablePair(std::size_t entries)
        : curr_(entries), next_(entries)
    {}

    /**
     * A stream died mid-epoch: accumulate into next, deplete curr
     * (section 3.4's dual update).
     */
    void
    streamDied(std::uint64_t len)
    {
        next_.recordStream(len);
        curr_.removeStreamSaturating(len);
    }

    /**
     * Epoch boundary: @p leftover_lengths are streams still alive in
     * the Stream Filter; they fold into next before the swap.
     */
    template <typename Container>
    void
    epochEnd(const Container &leftover_lengths)
    {
        for (const auto len : leftover_lengths)
            next_.recordStream(len);
        curr_.loadFrom(next_);
        next_.clear();
    }

    const LikelihoodTable &curr() const { return curr_; }
    const LikelihoodTable &next() const { return next_; }

    /** Depletion clamps across both tables (telemetry stat). */
    std::uint64_t
    underflowClamps() const
    {
        return curr_.underflowClamps() + next_.underflowClamps();
    }

    void
    saveState(SnapshotWriter &w) const override
    {
        curr_.saveState(w);
        next_.saveState(w);
    }

    void
    loadState(SnapshotReader &r) override
    {
        curr_.loadState(r);
        next_.loadState(r);
    }

  private:
    LikelihoodTable curr_;
    LikelihoodTable next_;
};

} // namespace asd

#endif // ASD_CORE_LIKELIHOOD_TABLE_HPP
