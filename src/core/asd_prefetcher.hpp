#ifndef ASD_CORE_ASD_PREFETCHER_HPP
#define ASD_CORE_ASD_PREFETCHER_HPP

/**
 * @file
 * The Adaptive Stream Detection memory-side prefetcher (the paper's
 * primary contribution, sections 3.1-3.5) packaged behind the memory
 * controller's MemSidePrefetcher interface.
 *
 * Per hardware thread: one Stream Filter and one LHTcurr/LHTnext pair
 * per stream direction. Shared across threads: the Prefetch Buffer
 * and the Adaptive Scheduling policy selector. Epochs are counted in
 * Read commands observed by the controller.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "core/adaptive_scheduler.hpp"
#include "core/asd_config.hpp"
#include "core/likelihood_table.hpp"
#include "core/prefetch_buffer.hpp"
#include "core/stream_filter.hpp"
#include "mc/prefetcher_iface.hpp"

namespace asd
{

/** Snapshot of one epoch's Stream Length Histogram (both directions). */
struct SlhSnapshot
{
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> positive; //!< stream-count lht()
    std::vector<std::uint64_t> negative;
};

/** The ASD prefetcher. */
class AsdPrefetcher : public MemSidePrefetcher
{
  public:
    explicit AsdPrefetcher(const AsdConfig &config);

    // MemSidePrefetcher interface ------------------------------------
    std::vector<LineAddr> observeRead(LineAddr line,
                                      std::uint32_t thread,
                                      Cycle now) override;
    void observeWrite(LineAddr line, Cycle now) override;
    bool lookupBuffer(LineAddr line) override;
    bool bufferContains(LineAddr line) const override;
    void fillBuffer(LineAddr line, Cycle now) override;
    int schedulingPolicy() const override;
    void notifyPrefetchConflict(Cycle now) override;
    void tick(Cycle now) override;
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    // Introspection for figures, benches and tests -------------------

    /**
     * Called once per epoch boundary, after the SLH swap and the
     * Adaptive Scheduling policy step, with the boundary cycle. The
     * telemetry recorder hangs off this; at most one hook.
     */
    void
    setEpochEndHook(std::function<void(Cycle)> hook)
    {
        epoch_end_hook_ = std::move(hook);
    }

    /** Keep per-epoch SLH snapshots (costs memory; off by default). */
    void enableSlhHistory(std::size_t max_epochs);

    /** Recorded epoch SLHs (oldest first). */
    const std::vector<SlhSnapshot> &slhHistory() const
    {
        return slh_history_;
    }

    /** Stream-length histogram over every completed stream. */
    const Histogram &streamLengthHist() const { return stream_hist_; }

    /** Live LHTcurr of @p thread in direction @p dir. */
    const LikelihoodTable &lhtCurr(std::uint32_t thread,
                                   StreamDir dir) const;

    const PrefetchBuffer &buffer() const { return buffer_; }
    const AdaptiveScheduler &scheduler() const { return sched_; }
    std::uint64_t epochsCompleted() const { return epochs_done_; }
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }

    // Raw counter values (telemetry recorder takes per-epoch deltas).
    std::uint64_t suggested() const
    {
        return prefetches_suggested_.value();
    }
    std::uint64_t suppressed() const
    {
        return decisions_negative_.value();
    }
    std::uint64_t overflowReads() const
    {
        return overflow_reads_.value();
    }
    std::uint64_t streamMerges() const
    {
        return stream_merges_.value();
    }

    /** LHT depletion clamps summed over threads and directions. */
    std::uint64_t lhtUnderflowClamps() const;

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    const AsdConfig &config() const { return config_; }

    // Online reconfiguration -----------------------------------------

    /**
     * Apply a new tuning to the live prefetcher, preserving trained
     * state wherever the shape allows:
     *  - max_degree / epoch_reads change in place (an epoch already
     *    longer than the new length ends on the next read);
     *  - the Stream Filter resizes per thread, folding any streams a
     *    shrink drops into the SLH as dead streams;
     *  - the Prefetch Buffer rebuilds at the new capacity keeping
     *    resident lines by recency (a shrink evicts the oldest);
     *  - the scheduler swaps policy configuration, keeping the
     *    current policy as the walk position unless newly pinned.
     * LHT depth, lifetimes, ways and thread count are NOT tunable —
     * the likelihood tables and stream histogram are keyed on them.
     */
    void applyTuning(const AsdTuning &tuning);

    /** The tuning currently in force. */
    AsdTuning currentTuning() const { return tuningOf(config_); }

  private:
    struct ThreadState
    {
        ThreadState(const AsdConfig &config);

        StreamFilter filter;
        LikelihoodTablePair positive;
        LikelihoodTablePair negative;
    };

    LikelihoodTablePair &tables(ThreadState &state, StreamDir dir);

    /** Fold a dead stream into histograms and LHTs. */
    void streamDied(ThreadState &state, const DeadStream &dead);

    /** Run the prefetch decision for the k-th element of a stream. */
    void decide(ThreadState &state, const StreamObservation &obs,
                LineAddr line, std::vector<LineAddr> &out);

    void endEpoch(Cycle now);

    AsdConfig config_;
    std::vector<std::unique_ptr<ThreadState>> threads_;
    PrefetchBuffer buffer_;
    AdaptiveScheduler sched_;

    std::uint32_t reads_this_epoch_ = 0;
    std::uint64_t epochs_done_ = 0;

    Histogram stream_hist_;
    std::vector<SlhSnapshot> slh_history_;
    std::size_t slh_history_cap_ = 0;

    Counter prefetches_suggested_;
    Counter decisions_negative_;
    Counter overflow_reads_;
    Counter stream_merges_;  //!< filter slots retired by convergence
    Counter lht_underflow_;  //!< mirror of lhtUnderflowClamps()

    std::function<void(Cycle)> epoch_end_hook_;
};

} // namespace asd

#endif // ASD_CORE_ASD_PREFETCHER_HPP
