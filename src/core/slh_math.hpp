#ifndef ASD_CORE_SLH_MATH_HPP
#define ASD_CORE_SLH_MATH_HPP

/**
 * @file
 * The probabilistic machinery of section 3.2 as pure functions over an
 * lht() vector, where lht[i-1] counts streams of length i or longer
 * (1-based in the paper, 0-based here). Keeping these free functions
 * makes the hardware-shaped LikelihoodTable directly checkable against
 * the paper's inequalities in tests.
 *
 * Note on weighting: the paper defines lht() over "Reads that are part
 * of streams of length >= i" but its hardware section updates each
 * table entry by one per completed stream, i.e. it counts streams.
 * Both weightings yield the same decision rule (5); we implement the
 * hardware (stream-count) form and derive read-weighted SLH bars for
 * the figures, matching Figs. 2/3/16 which plot per-Read frequencies.
 */

#include <cstdint>
#include <vector>

namespace asd
{

/** lht(i): count for 1-based index i; 0 beyond the table (eq. text). */
std::uint64_t lhtAt(const std::vector<std::uint64_t> &lht,
                    std::size_t i);

/**
 * P(i, j) of equation (1): probability that a Read is part of a
 * stream with length in [i, j], given lht. Returns 0 for an empty
 * table.
 */
double slhProbability(const std::vector<std::uint64_t> &lht,
                      std::size_t i, std::size_t j);

/**
 * Inequality (5): should the k-th element of a stream trigger a
 * next-line prefetch? True iff lht(k) < 2 * lht(k+1).
 */
bool shouldPrefetchNext(const std::vector<std::uint64_t> &lht,
                        std::size_t k);

/**
 * Inequality (6), the multi-line generalization: true iff
 * lht(k) < 2 * lht(k+d), i.e. prefetching d lines ahead of the k-th
 * element is more likely useful than not.
 */
bool shouldPrefetchDegree(const std::vector<std::uint64_t> &lht,
                          std::size_t k, std::size_t d);

/**
 * Read-weighted SLH bars (the paper's figures): bar i is the fraction
 * of Reads belonging to streams of length exactly i, with the last
 * bucket read-weighted by its own length. @p lht is the stream-count
 * form; entry i of the result = i * (lht(i) - lht(i+1)) / total reads.
 */
std::vector<double> readWeightedSlh(
    const std::vector<std::uint64_t> &lht);

} // namespace asd

#endif // ASD_CORE_SLH_MATH_HPP
