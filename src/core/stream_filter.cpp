#include "core/stream_filter.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asd
{

namespace
{

/**
 * Extend a slot's lifetime: the hardware lifetime counter is
 * incremented by the extension value but saturates at its width
 * (init + extend), so a long stream cannot bank unbounded lifetime
 * and zombify its slot after the stream really ends.
 */
Cycle
extendLifetime(Cycle expires_at, Cycle now, Cycles init, Cycles extend)
{
    return std::min(expires_at + extend, now + init + extend);
}

} // namespace

StreamFilter::StreamFilter(std::uint32_t slots, Cycles lifetime_init,
                           Cycles lifetime_extend)
    : slots_(slots),
      lifetime_init_(lifetime_init),
      lifetime_extend_(lifetime_extend)
{
    if (slots_ > 0)
        table_.resize(slots_);
}

void
StreamFilter::mergeConverged(const Slot &winner,
                             StreamObservation &result)
{
    for (auto &slot : table_) {
        if (!slot.valid || &slot == &winner ||
            slot.last != winner.last) {
            continue;
        }
        // Two live streams now point at the same line; the one that
        // did not produce this observation is stale — retire it as a
        // dead stream rather than letting two slots shadow each other.
        result.converged = true;
        result.converged_stream = {slot.length, slot.dir};
        slot.valid = false;
    }
    if (checksEnabled()) {
        for (std::size_t a = 0; a < table_.size(); ++a)
            for (std::size_t b = a + 1; b < table_.size(); ++b)
                checkThat(!table_[a].valid || !table_[b].valid ||
                              table_[a].last != table_[b].last,
                          "Stream Filter slot uniqueness violated");
    }
}

StreamObservation
StreamFilter::observe(LineAddr line, Cycle now)
{
    StreamObservation result;

    // Match priority across *all* slots, most informative rule first
    // (extension > direction-flip > same-line), so table order cannot
    // decide between slots matching different rules.

    // Rule 1: extension of an existing stream.
    for (auto &slot : table_) {
        if (!slot.valid)
            continue;
        const auto next = static_cast<LineAddr>(
            static_cast<std::int64_t>(slot.last) + dirStep(slot.dir));
        if (line == next) {
            slot.last = line;
            ++slot.length;
            slot.expires_at = extendLifetime(
                slot.expires_at, now, lifetime_init_, lifetime_extend_);
            result.kind = StreamObservation::Kind::Extended;
            result.length = slot.length;
            result.dir = slot.dir;
            mergeConverged(slot, result);
            return result;
        }
    }

    // Rule 2: a length-1 stream has no committed direction yet; a
    // read one line below flips it negative (paper section 3.3).
    for (auto &slot : table_) {
        if (!slot.valid || slot.length != 1)
            continue;
        if (slot.last > 0 && line == slot.last - 1) {
            slot.dir = StreamDir::Negative;
            slot.last = line;
            slot.length = 2;
            slot.expires_at = extendLifetime(
                slot.expires_at, now, lifetime_init_, lifetime_extend_);
            result.kind = StreamObservation::Kind::Extended;
            result.length = slot.length;
            result.dir = slot.dir;
            mergeConverged(slot, result);
            return result;
        }
    }

    // Rule 3: repeat of a stream's last line (lifetime refresh only).
    for (auto &slot : table_) {
        if (!slot.valid)
            continue;
        if (line == slot.last) {
            slot.expires_at = now + lifetime_init_;
            result.kind = StreamObservation::Kind::SameLine;
            result.length = slot.length;
            result.dir = slot.dir;
            return result;
        }
    }

    // Pass 2: allocate a vacant slot.
    for (auto &slot : table_) {
        if (slot.valid)
            continue;
        slot.valid = true;
        slot.last = line;
        slot.length = 1;
        slot.dir = StreamDir::Positive;
        slot.expires_at = now + lifetime_init_;
        result.kind = StreamObservation::Kind::Allocated;
        return result;
    }

    if (slots_ == 0) {
        // Unbounded oracle mode: grow.
        Slot slot;
        slot.valid = true;
        slot.last = line;
        slot.length = 1;
        slot.expires_at = now + lifetime_init_;
        table_.push_back(slot);
        result.kind = StreamObservation::Kind::Allocated;
        return result;
    }

    result.kind = StreamObservation::Kind::Overflow;
    return result;
}

std::vector<DeadStream>
StreamFilter::expireLifetimes(Cycle now)
{
    std::vector<DeadStream> dead;
    for (auto &slot : table_) {
        if (slot.valid && slot.expires_at <= now) {
            dead.push_back({slot.length, slot.dir});
            slot.valid = false;
        }
    }
    return dead;
}

std::vector<DeadStream>
StreamFilter::flushAll()
{
    std::vector<DeadStream> dead;
    for (auto &slot : table_) {
        if (slot.valid) {
            dead.push_back({slot.length, slot.dir});
            slot.valid = false;
        }
    }
    if (slots_ == 0)
        table_.clear();
    return dead;
}

std::vector<DeadStream>
StreamFilter::resize(std::uint32_t slots)
{
    std::vector<DeadStream> dropped;
    std::vector<Slot> live;
    for (const Slot &slot : table_)
        if (slot.valid)
            live.push_back(slot);
    // Most remaining lifetime first; stable so equal lifetimes keep
    // their table order.
    std::stable_sort(live.begin(), live.end(),
                     [](const Slot &a, const Slot &b) {
                         return a.expires_at > b.expires_at;
                     });
    if (slots > 0 && live.size() > slots) {
        for (std::size_t i = slots; i < live.size(); ++i)
            dropped.push_back({live[i].length, live[i].dir});
        live.resize(slots);
    }
    slots_ = slots;
    table_ = std::move(live);
    if (slots_ > 0)
        table_.resize(slots_);
    return dropped;
}

std::size_t
StreamFilter::liveStreams() const
{
    std::size_t count = 0;
    for (const auto &slot : table_)
        if (slot.valid)
            ++count;
    return count;
}

void
StreamFilter::saveState(SnapshotWriter &w) const
{
    w.u64(table_.size());
    for (const Slot &slot : table_) {
        w.u64(slot.last);
        w.u64(slot.length);
        w.u64(slot.expires_at);
        w.u8(static_cast<std::uint8_t>(slot.dir));
        w.b(slot.valid);
    }
}

void
StreamFilter::loadState(SnapshotReader &r)
{
    const std::uint64_t count = r.u64();
    SnapshotReader::check(slots_ == 0 || count == slots_,
                          "stream filter slot count mismatch");
    table_.assign(count, Slot{});
    for (Slot &slot : table_) {
        slot.last = r.u64();
        slot.length = r.u64();
        slot.expires_at = r.u64();
        const std::uint8_t dir = r.u8();
        SnapshotReader::check(
            dir <= static_cast<std::uint8_t>(StreamDir::Negative),
            "stream direction out of range");
        slot.dir = static_cast<StreamDir>(dir);
        slot.valid = r.b();
    }
}

} // namespace asd
