#include "core/likelihood_table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace asd
{

LikelihoodTable::LikelihoodTable(std::size_t entries)
    : counts_(entries, 0)
{
    panicIfNot(entries > 0, "LikelihoodTable needs at least one entry");
}

void
LikelihoodTable::recordStream(std::uint64_t len)
{
    panicIfNot(len >= 1, "stream length must be >= 1");
    const std::size_t limit =
        std::min<std::size_t>(static_cast<std::size_t>(len),
                              counts_.size());
    for (std::size_t i = 0; i < limit; ++i)
        ++counts_[i];
    if (checksEnabled()) {
        // A record-only table (LHTnext) stays monotone by
        // construction: lht(k) >= lht(k+1).
        for (std::size_t i = 1; i < counts_.size(); ++i)
            checkThat(counts_[i - 1] >= counts_[i],
                      "LHT monotonicity violated after recordStream");
    }
}

void
LikelihoodTable::removeStream(std::uint64_t len)
{
    panicIfNot(len >= 1, "stream length must be >= 1");
    if (checksEnabled()) {
        const std::size_t limit =
            std::min<std::size_t>(static_cast<std::size_t>(len),
                                  counts_.size());
        for (std::size_t i = 0; i < limit; ++i)
            checkThat(counts_[i] > 0,
                      "LHT underflow: removeStream beyond recorded "
                      "streams (add/remove mismatch)");
    }
    removeStreamSaturating(len);
}

void
LikelihoodTable::removeStreamSaturating(std::uint64_t len)
{
    panicIfNot(len >= 1, "stream length must be >= 1");
    const std::size_t limit =
        std::min<std::size_t>(static_cast<std::size_t>(len),
                              counts_.size());
    for (std::size_t i = 0; i < limit; ++i) {
        if (counts_[i] > 0)
            --counts_[i];
        else
            ++underflow_clamps_;
    }
}

std::uint64_t
LikelihoodTable::at(std::size_t i) const
{
    return lhtAt(counts_, i);
}

void
LikelihoodTable::loadFrom(const LikelihoodTable &other)
{
    panicIfNot(other.counts_.size() == counts_.size(),
               "LikelihoodTable size mismatch");
    counts_ = other.counts_;
}

void
LikelihoodTable::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
LikelihoodTable::saveState(SnapshotWriter &w) const
{
    w.vecU64(counts_);
    w.u64(underflow_clamps_);
}

void
LikelihoodTable::loadState(SnapshotReader &r)
{
    const std::vector<std::uint64_t> counts = r.vecU64();
    SnapshotReader::check(counts.size() == counts_.size(),
                          "likelihood table size mismatch");
    counts_ = counts;
    underflow_clamps_ = r.u64();
}

} // namespace asd
