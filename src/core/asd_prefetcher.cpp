#include "core/asd_prefetcher.hpp"

#include "common/log.hpp"

namespace asd
{

AsdPrefetcher::ThreadState::ThreadState(const AsdConfig &config)
    : filter(config.filter_slots, config.lifetime_init,
             config.lifetime_extend),
      positive(config.lht_entries),
      negative(config.lht_entries)
{
}

AsdPrefetcher::AsdPrefetcher(const AsdConfig &config)
    : config_(config),
      buffer_(config.buffer_lines, config.buffer_ways),
      sched_(config.sched),
      stream_hist_(config.lht_entries)
{
    if (config_.threads == 0)
        fatal("AsdPrefetcher: at least one thread required");
    if (config_.epoch_reads == 0)
        fatal("AsdPrefetcher: epoch length must be positive");
    if (config_.max_degree == 0)
        fatal("AsdPrefetcher: max_degree must be >= 1");
    threads_.reserve(config_.threads);
    for (std::uint32_t t = 0; t < config_.threads; ++t)
        threads_.push_back(std::make_unique<ThreadState>(config_));
}

LikelihoodTablePair &
AsdPrefetcher::tables(ThreadState &state, StreamDir dir)
{
    return dir == StreamDir::Positive ? state.positive : state.negative;
}

void
AsdPrefetcher::streamDied(ThreadState &state, const DeadStream &dead)
{
    stream_hist_.add(dead.length);
    tables(state, dead.dir).streamDied(dead.length);
}

void
AsdPrefetcher::decide(ThreadState &state, const StreamObservation &obs,
                      LineAddr line, std::vector<LineAddr> &out)
{
    const auto k = static_cast<std::size_t>(obs.length);
    const LikelihoodTable &lht = tables(state, obs.dir).curr();

    if (k >= config_.lht_entries) {
        // Beyond the table the paper's math always answers "stop"
        // (lht(i > Lm) = 0); the saturate option keeps following a
        // confirmed long stream instead.
        if (config_.saturate_long_streams) {
            const std::int64_t step = dirStep(obs.dir);
            if (obs.dir == StreamDir::Positive || line >= 1) {
                out.push_back(static_cast<LineAddr>(
                    static_cast<std::int64_t>(line) + step));
                prefetches_suggested_.inc();
                return;
            }
        }
        decisions_negative_.inc();
        return;
    }

    // Degree-d prefetching via inequality (6); consecutive prefix of
    // lines after the current one (section 3.1's multi-line rule).
    bool any = false;
    for (std::size_t d = 1; d <= config_.max_degree; ++d) {
        if (!lht.shouldPrefetch(k, d))
            break;
        const std::int64_t step =
            dirStep(obs.dir) * static_cast<std::int64_t>(d);
        if (obs.dir == StreamDir::Negative &&
            line < static_cast<LineAddr>(d)) {
            break; // would underflow the address space
        }
        out.push_back(static_cast<LineAddr>(
            static_cast<std::int64_t>(line) + step));
        prefetches_suggested_.inc();
        any = true;
    }
    if (!any)
        decisions_negative_.inc();
}

std::vector<LineAddr>
AsdPrefetcher::observeRead(LineAddr line, std::uint32_t thread,
                           Cycle now)
{
    panicIfNot(thread < threads_.size(),
               "AsdPrefetcher: thread index out of range");
    ThreadState &state = *threads_[thread];
    std::vector<LineAddr> out;

    const StreamObservation obs = state.filter.observe(line, now);
    switch (obs.kind) {
      case StreamObservation::Kind::Overflow:
        // No slot: the SLH is updated as if a length-1 stream had
        // been detected, and no prefetch is generated (section 3.3).
        overflow_reads_.inc();
        streamDied(state, {1, StreamDir::Positive});
        break;
      case StreamObservation::Kind::SameLine:
        break; // lifetime refreshed; no new information
      case StreamObservation::Kind::Allocated:
      case StreamObservation::Kind::Extended:
        // Convergence: the read extended one stream onto another live
        // slot's last line; the retired slot's stream is dead.
        if (obs.converged) {
            stream_merges_.inc();
            streamDied(state, obs.converged_stream);
        }
        decide(state, obs, line, out);
        break;
    }

    if (++reads_this_epoch_ >= config_.epoch_reads)
        endEpoch(now);
    return out;
}

void
AsdPrefetcher::endEpoch(Cycle now)
{
    for (auto &thread : threads_) {
        // Remaining live streams fold into LHTnext before the swap.
        std::vector<std::uint64_t> leftover_pos;
        std::vector<std::uint64_t> leftover_neg;
        for (const DeadStream &dead : thread->filter.flushAll()) {
            stream_hist_.add(dead.length);
            (dead.dir == StreamDir::Positive ? leftover_pos
                                             : leftover_neg)
                .push_back(dead.length);
        }
        thread->positive.epochEnd(leftover_pos);
        thread->negative.epochEnd(leftover_neg);
    }
    sched_.epochEnd();
    ++epochs_done_;
    reads_this_epoch_ = 0;

    if (slh_history_cap_ > 0 && slh_history_.size() < slh_history_cap_) {
        SlhSnapshot snap;
        snap.epoch = epochs_done_;
        snap.positive = threads_[0]->positive.curr().counts();
        snap.negative = threads_[0]->negative.curr().counts();
        slh_history_.push_back(std::move(snap));
    }

    // Keep the registered underflow counter in sync with the tables
    // (clamps accumulate inside LikelihoodTable, not in a Counter).
    const std::uint64_t clamps = lhtUnderflowClamps();
    if (clamps > lht_underflow_.value())
        lht_underflow_.inc(clamps - lht_underflow_.value());

    if (epoch_end_hook_)
        epoch_end_hook_(now);
}

std::uint64_t
AsdPrefetcher::lhtUnderflowClamps() const
{
    std::uint64_t clamps = 0;
    for (const auto &thread : threads_) {
        clamps += thread->positive.underflowClamps();
        clamps += thread->negative.underflowClamps();
    }
    return clamps;
}

void
AsdPrefetcher::observeWrite(LineAddr line, Cycle now)
{
    (void)now;
    buffer_.invalidateOnWrite(line);
}

bool
AsdPrefetcher::lookupBuffer(LineAddr line)
{
    return buffer_.consume(line);
}

bool
AsdPrefetcher::bufferContains(LineAddr line) const
{
    return buffer_.contains(line);
}

void
AsdPrefetcher::fillBuffer(LineAddr line, Cycle now)
{
    (void)now;
    buffer_.insert(line);
}

int
AsdPrefetcher::schedulingPolicy() const
{
    return sched_.policy();
}

void
AsdPrefetcher::notifyPrefetchConflict(Cycle now)
{
    (void)now;
    sched_.notifyConflict();
}

void
AsdPrefetcher::tick(Cycle now)
{
    for (auto &thread : threads_)
        for (const DeadStream &dead : thread->filter.expireLifetimes(now))
            streamDied(*thread, dead);
}

void
AsdPrefetcher::applyTuning(const AsdTuning &tuning)
{
    config_.max_degree = tuning.max_degree;
    config_.epoch_reads = tuning.epoch_reads;
    if (tuning.filter_slots != config_.filter_slots) {
        for (auto &thread : threads_) {
            for (const DeadStream &dead :
                 thread->filter.resize(tuning.filter_slots)) {
                streamDied(*thread, dead);
            }
        }
        config_.filter_slots = tuning.filter_slots;
    }
    if (tuning.buffer_lines != config_.buffer_lines) {
        buffer_.resize(tuning.buffer_lines, config_.buffer_ways);
        config_.buffer_lines = tuning.buffer_lines;
    }
    sched_.applyPolicyConfig(tuning.sched);
    config_.sched = tuning.sched;
}

void
AsdPrefetcher::enableSlhHistory(std::size_t max_epochs)
{
    slh_history_cap_ = max_epochs;
    slh_history_.reserve(max_epochs);
}

const LikelihoodTable &
AsdPrefetcher::lhtCurr(std::uint32_t thread, StreamDir dir) const
{
    panicIfNot(thread < threads_.size(),
               "AsdPrefetcher: thread index out of range");
    const ThreadState &state = *threads_[thread];
    return (dir == StreamDir::Positive ? state.positive : state.negative)
        .curr();
}

void
AsdPrefetcher::saveState(SnapshotWriter &w) const
{
    w.u64(threads_.size());
    for (const auto &thread : threads_) {
        thread->filter.saveState(w);
        thread->positive.saveState(w);
        thread->negative.saveState(w);
    }
    buffer_.saveState(w);
    sched_.saveState(w);
    w.u32(reads_this_epoch_);
    w.u64(epochs_done_);
    w.vecU64(stream_hist_.counts());
    w.u64(slh_history_cap_);
    w.u64(slh_history_.size());
    for (const SlhSnapshot &snap : slh_history_) {
        w.u64(snap.epoch);
        w.vecU64(snap.positive);
        w.vecU64(snap.negative);
    }
    w.u64(prefetches_suggested_.value());
    w.u64(decisions_negative_.value());
    w.u64(overflow_reads_.value());
    w.u64(stream_merges_.value());
    w.u64(lht_underflow_.value());
}

void
AsdPrefetcher::loadState(SnapshotReader &r)
{
    SnapshotReader::check(r.u64() == threads_.size(),
                          "ASD thread count mismatch");
    for (auto &thread : threads_) {
        thread->filter.loadState(r);
        thread->positive.loadState(r);
        thread->negative.loadState(r);
    }
    buffer_.loadState(r);
    sched_.loadState(r);
    reads_this_epoch_ = r.u32();
    epochs_done_ = r.u64();
    const std::vector<std::uint64_t> hist = r.vecU64();
    SnapshotReader::check(hist.size() == stream_hist_.buckets(),
                          "stream histogram size mismatch");
    stream_hist_.restore(hist);
    slh_history_cap_ = static_cast<std::size_t>(r.u64());
    const std::uint64_t snaps = r.u64();
    SnapshotReader::check(snaps <= slh_history_cap_,
                          "SLH history longer than its cap");
    slh_history_.clear();
    slh_history_.reserve(slh_history_cap_);
    for (std::uint64_t i = 0; i < snaps; ++i) {
        SlhSnapshot snap;
        snap.epoch = r.u64();
        snap.positive = r.vecU64();
        snap.negative = r.vecU64();
        slh_history_.push_back(std::move(snap));
    }
    prefetches_suggested_.restore(r.u64());
    decisions_negative_.restore(r.u64());
    overflow_reads_.restore(r.u64());
    stream_merges_.restore(r.u64());
    lht_underflow_.restore(r.u64());
}

void
AsdPrefetcher::registerStats(StatRegistry &registry,
                             const std::string &prefix) const
{
    registry.add(prefix + ".suggested", prefetches_suggested_);
    registry.add(prefix + ".suppressed", decisions_negative_);
    registry.add(prefix + ".overflow_reads", overflow_reads_);
    registry.add(prefix + ".stream_merges", stream_merges_);
    registry.add(prefix + ".lht_underflow", lht_underflow_);
    buffer_.registerStats(registry, prefix + ".buffer");
    sched_.registerStats(registry, prefix + ".sched");
}

} // namespace asd
