#ifndef ASD_CORE_STREAM_FILTER_HPP
#define ASD_CORE_STREAM_FILTER_HPP

/**
 * @file
 * The Stream Filter of section 3.3: a small table of in-flight read
 * streams. Each slot holds the last line accessed, the length so far,
 * the direction, and a lifetime; expired or epoch-flushed slots report
 * their lengths so the Likelihood Tables can be updated.
 *
 * A slot count of zero selects an unbounded "oracle" filter with no
 * capacity misses, used to measure SLH approximation accuracy
 * (Fig. 16).
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** A stream evicted from the filter (lifetime expiry or flush). */
struct DeadStream
{
    std::uint64_t length = 1;
    StreamDir dir = StreamDir::Positive;
};

/** What happened when the filter observed one read. */
struct StreamObservation
{
    enum class Kind : std::uint8_t
    {
        Allocated, //!< new stream in a vacant slot (length 1)
        Extended,  //!< read continued an existing stream
        Overflow,  //!< no vacant slot; treat as a length-1 stream
        SameLine,  //!< repeat of a stream's last line (refresh only)
    };

    Kind kind = Kind::Allocated;

    /** Stream length after this read (1 for Allocated/Overflow). */
    std::uint64_t length = 1;

    /** Direction of the matched/allocated stream. */
    StreamDir dir = StreamDir::Positive;

    /**
     * An extension (or flip) landed on another live slot's last line:
     * the two streams converged, the stale slot was invalidated, and
     * its stream is reported here so the caller can fold it into the
     * SLH like any other dead stream. Keeps "no two valid slots share
     * a last line" a true invariant.
     */
    bool converged = false;
    DeadStream converged_stream;
};

/** The Stream Filter. */
class StreamFilter : public Snapshottable
{
  public:
    /**
     * @param slots capacity; 0 = unbounded oracle mode.
     * @param lifetime_init initial lifetime in cycles.
     * @param lifetime_extend lifetime added per extension.
     */
    StreamFilter(std::uint32_t slots, Cycles lifetime_init,
                 Cycles lifetime_extend);

    /**
     * Track one read. Matching rules (paper section 3.3):
     *  - a read equal to a stream's last line + step extends it;
     *  - a read equal to last - 1 of a length-1 stream flips that
     *    stream negative and extends it;
     *  - a repeat of a stream's last line refreshes its lifetime;
     *  - otherwise a vacant slot is allocated, or Overflow reported.
     *
     * A line can satisfy several rules on *different* slots at once
     * (extend slot A and repeat slot B's last line). Match priority is
     * explicit and slot-order independent: extension beats
     * direction-flip beats same-line, each rule scanned across all
     * slots before the next is tried. When an extension or flip lands
     * on another slot's last line the loser slot is retired and
     * reported via StreamObservation::converged.
     */
    StreamObservation observe(LineAddr line, Cycle now);

    /** Evict every stream whose lifetime expired by @p now. */
    std::vector<DeadStream> expireLifetimes(Cycle now);

    /** Evict all streams (end of epoch). */
    std::vector<DeadStream> flushAll();

    /** Valid slots right now. */
    std::size_t liveStreams() const;

    /**
     * Online reconfiguration: change the slot capacity in place.
     * Growing keeps every live stream and adds vacant slots.
     * Shrinking keeps the @p slots streams with the most remaining
     * lifetime (the ones extended most recently; ties broken by slot
     * index) and retires the rest, returning them so the caller can
     * fold them into the SLH like any other dead stream. @p slots = 0
     * switches to unbounded oracle mode (keeps everything).
     */
    std::vector<DeadStream> resize(std::uint32_t slots);

    std::uint32_t slots() const { return slots_; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct Slot
    {
        LineAddr last = 0;
        std::uint64_t length = 0;
        Cycle expires_at = 0;
        StreamDir dir = StreamDir::Positive;
        bool valid = false;
    };

    /**
     * Retire every *other* live slot whose last line equals
     * @p winner's new last line (stream convergence) and report it in
     * @p result; then assert slot-last uniqueness under checks.
     */
    void mergeConverged(const Slot &winner, StreamObservation &result);

    // asdlint:allow(snapshot-field-coverage): geometry knob from the ctor; loadState only validates the slot count against it
    std::uint32_t slots_; //!< 0 = unbounded
    // asdlint:allow(snapshot-field-coverage): lifetime knobs are ctor configuration, re-derived when the filter is rebuilt
    Cycles lifetime_init_;
    // asdlint:allow(snapshot-field-coverage): see lifetime_init_
    Cycles lifetime_extend_;
    std::vector<Slot> table_;
};

} // namespace asd

#endif // ASD_CORE_STREAM_FILTER_HPP
