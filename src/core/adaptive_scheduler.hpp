#ifndef ASD_CORE_ADAPTIVE_SCHEDULER_HPP
#define ASD_CORE_ADAPTIVE_SCHEDULER_HPP

/**
 * @file
 * Adaptive Scheduling (section 3.5): choose among the five LPQ
 * prioritization policies from feedback about how often regular
 * commands are delayed by in-flight prefetches. Policy 1 is the most
 * conservative (LPQ issues only when the controller is empty), policy
 * 5 the least (timestamp order against the CAQ head). The policy
 * steps by one each epoch according to hysteresis thresholds on the
 * conflict count.
 */

#include <cstdint>

#include "common/stats.hpp"
#include "core/asd_config.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** The adaptive (or pinned) LPQ policy selector. */
class AdaptiveScheduler : public Snapshottable
{
  public:
    explicit AdaptiveScheduler(const AdaptiveSchedConfig &config);

    /** Policy in force right now (1..5). */
    int policy() const { return policy_; }

    /** A regular command was delayed by a prefetch this epoch. */
    void notifyConflict();

    /** Epoch boundary: re-evaluate the policy from the feedback. */
    void epochEnd();

    /** Conflicts recorded in the current (unfinished) epoch. */
    std::uint32_t epochConflicts() const { return epoch_conflicts_; }

    /**
     * Online reconfiguration: swap in a new policy configuration.
     * Pinning (adaptive = false) takes effect immediately — the
     * current policy jumps to fixed_policy. Un-pinning keeps the
     * current policy as the adaptive walk's starting point
     * (start_policy is a construction-time notion only). Conflict
     * feedback for the in-progress epoch is preserved either way.
     */
    void applyPolicyConfig(const AdaptiveSchedConfig &config);

    /**
     * Lifetime conflict count. epochEnd() zeroes epochConflicts(), so
     * per-epoch consumers sampling *after* the boundary (the telemetry
     * recorder) take deltas of this instead.
     */
    std::uint64_t totalConflicts() const
    {
        return total_conflicts_.value();
    }

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    AdaptiveSchedConfig config_;
    int policy_;
    std::uint32_t epoch_conflicts_ = 0;

    Counter total_conflicts_;
    Counter policy_up_;   //!< steps toward aggressive
    Counter policy_down_; //!< steps toward conservative
};

} // namespace asd

#endif // ASD_CORE_ADAPTIVE_SCHEDULER_HPP
