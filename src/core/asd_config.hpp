#ifndef ASD_CORE_ASD_CONFIG_HPP
#define ASD_CORE_ASD_CONFIG_HPP

/**
 * @file
 * Configuration of the Adaptive Stream Detection prefetcher. Defaults
 * are the paper's evaluated design point (section 5.1): 8 stream
 * filter slots and 16-entry LHTs per thread, a shared 16-line (2 KB)
 * prefetch buffer, 2000-read epochs.
 */

#include <cstdint>

#include "common/types.hpp"

namespace asd
{

/** Adaptive Scheduling (section 3.5) parameters. */
struct AdaptiveSchedConfig
{
    /** False pins @c fixed_policy for the Fig. 11 ablation. */
    bool adaptive = true;

    /** Policy used when @c adaptive is false (1..5). */
    int fixed_policy = 1;

    /** Policy the adaptive mode starts from. */
    int start_policy = 3;

    /**
     * Hysteresis thresholds on prefetch-induced conflicts per epoch:
     * above @c high_watermark the policy steps toward conservative
     * (1); below @c low_watermark it steps toward aggressive (5).
     */
    std::uint32_t high_watermark = 24;
    std::uint32_t low_watermark = 8;
};

/** Full ASD prefetcher configuration. */
struct AsdConfig
{
    /** Stream Filter slots per hardware thread. */
    std::uint32_t filter_slots = 8;

    /** LHT entries = longest tracked stream length (Lm). */
    std::uint32_t lht_entries = 16;

    /** Epoch length in Read commands. */
    std::uint32_t epoch_reads = 2000;

    /** Initial stream lifetime in CPU cycles. */
    Cycles lifetime_init = 1200;

    /** Lifetime added on each stream extension. */
    Cycles lifetime_extend = 1800;

    /** Prefetch Buffer capacity in cache lines. */
    std::uint32_t buffer_lines = 16;

    /** Prefetch Buffer associativity. */
    std::uint32_t buffer_ways = 4;

    /**
     * Maximum prefetch degree. 1 reproduces the paper; larger values
     * enable the multi-line extension via inequality (6).
     */
    std::uint32_t max_degree = 1;

    /**
     * Keep prefetching for streams longer than Lm. The paper's math
     * (lht(i > Lm) = 0) stops at the Lm-th element; this flag is the
     * obvious engineering fix, off by default for paper fidelity.
     */
    bool saturate_long_streams = false;

    /** Hardware threads (each gets its own filter + LHTs). */
    std::uint32_t threads = 1;

    AdaptiveSchedConfig sched;
};

/**
 * The online-tunable subset of AsdConfig — what the phase-adaptive
 * tuner may change on a live prefetcher via
 * AsdPrefetcher::applyTuning(). Everything else (LHT depth, lifetime
 * constants, thread count) is a table *shape* the trained state is
 * keyed on and stays fixed for the life of the machine.
 */
struct AsdTuning
{
    std::uint32_t max_degree = 1;
    std::uint32_t epoch_reads = 2000;
    std::uint32_t filter_slots = 8;
    std::uint32_t buffer_lines = 16;
    AdaptiveSchedConfig sched;

    bool
    operator==(const AsdTuning &other) const
    {
        return max_degree == other.max_degree &&
               epoch_reads == other.epoch_reads &&
               filter_slots == other.filter_slots &&
               buffer_lines == other.buffer_lines &&
               sched.adaptive == other.sched.adaptive &&
               sched.fixed_policy == other.sched.fixed_policy &&
               sched.start_policy == other.sched.start_policy &&
               sched.high_watermark == other.sched.high_watermark &&
               sched.low_watermark == other.sched.low_watermark;
    }
    bool
    operator!=(const AsdTuning &other) const
    {
        return !(*this == other);
    }
};

/** The tuning currently encoded in a full AsdConfig. */
inline AsdTuning
tuningOf(const AsdConfig &config)
{
    AsdTuning t;
    t.max_degree = config.max_degree;
    t.epoch_reads = config.epoch_reads;
    t.filter_slots = config.filter_slots;
    t.buffer_lines = config.buffer_lines;
    t.sched = config.sched;
    return t;
}

/** @p base with tuning @p t folded in (shadow-fork construction). */
inline AsdConfig
withTuning(const AsdConfig &base, const AsdTuning &t)
{
    AsdConfig config = base;
    config.max_degree = t.max_degree;
    config.epoch_reads = t.epoch_reads;
    config.filter_slots = t.filter_slots;
    config.buffer_lines = t.buffer_lines;
    config.sched = t.sched;
    return config;
}

} // namespace asd

#endif // ASD_CORE_ASD_CONFIG_HPP
