#include "core/adaptive_scheduler.hpp"

#include "common/log.hpp"

namespace asd
{

AdaptiveScheduler::AdaptiveScheduler(const AdaptiveSchedConfig &config)
    : config_(config),
      policy_(config.adaptive ? config.start_policy
                              : config.fixed_policy)
{
    if (policy_ < 1 || policy_ > 5)
        fatal("AdaptiveScheduler: policy must be in 1..5");
    if (config_.low_watermark > config_.high_watermark)
        fatal("AdaptiveScheduler: low watermark above high watermark");
}

void
AdaptiveScheduler::notifyConflict()
{
    ++epoch_conflicts_;
    total_conflicts_.inc();
}

void
AdaptiveScheduler::epochEnd()
{
    if (config_.adaptive) {
        if (epoch_conflicts_ > config_.high_watermark && policy_ > 1) {
            --policy_;
            policy_down_.inc();
        } else if (epoch_conflicts_ < config_.low_watermark &&
                   policy_ < 5) {
            ++policy_;
            policy_up_.inc();
        }
    }
    epoch_conflicts_ = 0;
}

void
AdaptiveScheduler::registerStats(StatRegistry &registry,
                                 const std::string &prefix) const
{
    registry.add(prefix + ".conflicts", total_conflicts_);
    registry.add(prefix + ".policy_up", policy_up_);
    registry.add(prefix + ".policy_down", policy_down_);
}

} // namespace asd
