#include "core/adaptive_scheduler.hpp"

#include "common/log.hpp"

namespace asd
{

AdaptiveScheduler::AdaptiveScheduler(const AdaptiveSchedConfig &config)
    : config_(config),
      policy_(config.adaptive ? config.start_policy
                              : config.fixed_policy)
{
    if (policy_ < 1 || policy_ > 5)
        fatal("AdaptiveScheduler: policy must be in 1..5");
    if (config_.low_watermark > config_.high_watermark)
        fatal("AdaptiveScheduler: low watermark above high watermark");
}

void
AdaptiveScheduler::applyPolicyConfig(const AdaptiveSchedConfig &config)
{
    if (config.fixed_policy < 1 || config.fixed_policy > 5)
        fatal("AdaptiveScheduler: policy must be in 1..5");
    if (config.low_watermark > config.high_watermark)
        fatal("AdaptiveScheduler: low watermark above high watermark");
    config_ = config;
    if (!config_.adaptive)
        policy_ = config_.fixed_policy;
}

void
AdaptiveScheduler::notifyConflict()
{
    ++epoch_conflicts_;
    total_conflicts_.inc();
}

void
AdaptiveScheduler::epochEnd()
{
    if (config_.adaptive) {
        if (epoch_conflicts_ > config_.high_watermark && policy_ > 1) {
            --policy_;
            policy_down_.inc();
        } else if (epoch_conflicts_ < config_.low_watermark &&
                   policy_ < 5) {
            ++policy_;
            policy_up_.inc();
        }
    }
    epoch_conflicts_ = 0;
}

void
AdaptiveScheduler::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(policy_));
    w.u32(epoch_conflicts_);
    w.u64(total_conflicts_.value());
    w.u64(policy_up_.value());
    w.u64(policy_down_.value());
}

void
AdaptiveScheduler::loadState(SnapshotReader &r)
{
    const std::uint32_t policy = r.u32();
    SnapshotReader::check(policy >= 1 && policy <= 5,
                          "LPQ policy out of range");
    policy_ = static_cast<int>(policy);
    epoch_conflicts_ = r.u32();
    total_conflicts_.restore(r.u64());
    policy_up_.restore(r.u64());
    policy_down_.restore(r.u64());
}

void
AdaptiveScheduler::registerStats(StatRegistry &registry,
                                 const std::string &prefix) const
{
    registry.add(prefix + ".conflicts", total_conflicts_);
    registry.add(prefix + ".policy_up", policy_up_);
    registry.add(prefix + ".policy_down", policy_down_);
}

} // namespace asd
