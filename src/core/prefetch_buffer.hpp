#ifndef ASD_CORE_PREFETCH_BUFFER_HPP
#define ASD_CORE_PREFETCH_BUFFER_HPP

/**
 * @file
 * The Prefetch Buffer of section 3.3: a small set-associative, LRU
 * buffer on the memory controller holding memory-side prefetched
 * lines. Entries are invalidated when a write hits them and when a
 * demand read consumes them (the data moves into L1/L2 and is unlikely
 * to be useful here again).
 */

#include <string>

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace asd
{

/** The memory-side prefetch buffer. */
class PrefetchBuffer : public Snapshottable
{
  public:
    /**
     * @param lines capacity in cache lines (2 KB = 16 x 128 B in the
     *              paper's configuration).
     * @param ways associativity (capped at @p lines).
     */
    PrefetchBuffer(std::uint32_t lines, std::uint32_t ways);

    /** Non-destructive presence check. */
    bool contains(LineAddr line) const;

    /**
     * Demand-read probe: on a hit the entry is consumed (invalidated)
     * and counted useful.
     * @retval true on hit.
     */
    bool consume(LineAddr line);

    /** Install a prefetched line; unused victims count as useless. */
    void insert(LineAddr line);

    /** A write to @p line invalidates any buffered copy. */
    void invalidateOnWrite(LineAddr line);

    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    std::uint64_t inserted() const { return inserted_.value(); }
    std::uint64_t consumed() const { return consumed_.value(); }
    std::uint64_t evictedUnused() const
    {
        return evicted_unused_.value();
    }
    std::uint64_t writeInvalidations() const
    {
        return write_invalidations_.value();
    }

    std::uint32_t capacityLines() const;

    /**
     * Online reconfiguration: rebuild the tag store with a new
     * geometry, re-installing the resident lines oldest-first so
     * their recency ranking survives. Growing preserves every line;
     * shrinking drops the least recent ones, counted as unused
     * evictions (they were prefetched and never consumed). The
     * inserted/consumed counters are untouched — only genuinely new
     * prefetches count as insertions.
     */
    void resize(std::uint32_t lines, std::uint32_t ways);

    /** Lines currently buffered (telemetry/invariants). */
    std::uint64_t occupancy() const;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    SetAssocCache cache_;
    Counter inserted_;
    Counter consumed_;
    Counter evicted_unused_;
    Counter write_invalidations_;
};

} // namespace asd

#endif // ASD_CORE_PREFETCH_BUFFER_HPP
