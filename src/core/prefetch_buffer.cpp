#include "core/prefetch_buffer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace asd
{

namespace
{

CacheConfig
bufferGeometry(std::uint32_t lines, std::uint32_t ways)
{
    CacheConfig config;
    config.line_bytes = 128;
    config.ways = std::min(ways, lines);
    config.size_bytes =
        static_cast<std::uint64_t>(lines) * config.line_bytes;
    return config;
}

} // namespace

PrefetchBuffer::PrefetchBuffer(std::uint32_t lines, std::uint32_t ways)
    : cache_(bufferGeometry(lines, ways))
{
}

bool
PrefetchBuffer::contains(LineAddr line) const
{
    return cache_.probe(line);
}

bool
PrefetchBuffer::consume(LineAddr line)
{
    if (!cache_.invalidate(line))
        return false;
    consumed_.inc();
    return true;
}

void
PrefetchBuffer::insert(LineAddr line)
{
    const auto victim = cache_.insert(line, false, true);
    inserted_.inc();
    if (victim && victim->was_prefetch)
        evicted_unused_.inc();
    if (checksEnabled()) {
        checkThat(occupancy() <= capacityLines(),
                  "Prefetch Buffer occupancy above capacity");
    }
}

std::uint64_t
PrefetchBuffer::occupancy() const
{
    return cache_.validLines();
}

void
PrefetchBuffer::invalidateOnWrite(LineAddr line)
{
    if (cache_.invalidate(line))
        write_invalidations_.inc();
}

void
PrefetchBuffer::registerStats(StatRegistry &registry,
                              const std::string &prefix) const
{
    registry.add(prefix + ".inserted", inserted_);
    registry.add(prefix + ".consumed", consumed_);
    registry.add(prefix + ".evicted_unused", evicted_unused_);
    registry.add(prefix + ".write_invalidations", write_invalidations_);
}

void
PrefetchBuffer::resize(std::uint32_t lines, std::uint32_t ways)
{
    const std::vector<SetAssocCache::ResidentLine> resident =
        cache_.linesByRecency();
    SetAssocCache rebuilt(bufferGeometry(lines, ways));
    for (const SetAssocCache::ResidentLine &entry : resident) {
        const auto victim =
            rebuilt.insert(entry.line, entry.dirty, entry.prefetched);
        if (victim && victim->was_prefetch)
            evicted_unused_.inc();
    }
    cache_ = std::move(rebuilt);
    if (checksEnabled()) {
        checkThat(occupancy() <= capacityLines(),
                  "Prefetch Buffer occupancy above capacity");
    }
}

std::uint32_t
PrefetchBuffer::capacityLines() const
{
    return narrow<std::uint32_t>(cache_.config().size_bytes /
                                 cache_.config().line_bytes);
}

void
PrefetchBuffer::saveState(SnapshotWriter &w) const
{
    cache_.saveState(w);
    w.u64(inserted_.value());
    w.u64(consumed_.value());
    w.u64(evicted_unused_.value());
    w.u64(write_invalidations_.value());
}

void
PrefetchBuffer::loadState(SnapshotReader &r)
{
    cache_.loadState(r);
    inserted_.restore(r.u64());
    consumed_.restore(r.u64());
    evicted_unused_.restore(r.u64());
    write_invalidations_.restore(r.u64());
}

} // namespace asd
