#include "core/hw_cost.hpp"

#include <bit>

namespace asd
{

namespace
{

std::uint32_t
ceilLog2(std::uint64_t v)
{
    if (v <= 1)
        return 1;
    return static_cast<std::uint32_t>(
        std::bit_width(v - 1));
}

} // namespace

HwCost
computeHwCost(const AsdConfig &config, std::uint32_t phys_addr_bits,
              std::uint32_t line_bytes, std::uint32_t lpq_entries)
{
    HwCost cost;
    cost.threads = config.threads;

    const std::uint32_t line_addr_bits =
        phys_addr_bits - ceilLog2(line_bytes);

    // Stream Filter slot: last line address, length (up to Lm with a
    // saturating top), direction, lifetime down-counter.
    const std::uint32_t length_bits = ceilLog2(config.lht_entries) + 1;
    const std::uint32_t lifetime_bits = ceilLog2(
        config.lifetime_init + config.lifetime_extend);
    const std::uint64_t slot_bits =
        line_addr_bits + length_bits + 1 + lifetime_bits;
    cost.stream_filter_bits = slot_bits * config.filter_slots;

    // LHTs: {curr,next} x {pos,neg} x Lm entries of log2(epoch)-bit
    // saturating counters (section 3.4).
    const std::uint32_t counter_bits = ceilLog2(config.epoch_reads);
    cost.lht_bits = 4ULL * config.lht_entries * counter_bits;

    // One comparator per adjacent LHTcurr pair, per direction.
    cost.comparator_count = 2ULL * (config.lht_entries - 1);

    // Prefetch Buffer: data + tag + valid per line (shared).
    const std::uint64_t pb_line_bits =
        8ULL * line_bytes + line_addr_bits + 1;
    cost.prefetch_buffer_bits = pb_line_bits * config.buffer_lines;

    // LPQ entries: line address + timestamp.
    cost.lpq_bits = static_cast<std::uint64_t>(lpq_entries) *
                    (line_addr_bits + 32);
    return cost;
}

} // namespace asd
