#ifndef ASD_CORE_HW_COST_HPP
#define ASD_CORE_HW_COST_HPP

/**
 * @file
 * Analytic hardware-cost model backing the paper's section 5.1 claims:
 * ASD needs only small per-thread tables (filter slots + two 16-entry
 * LHTs per direction) plus a shared 2 KB prefetch buffer, versus the
 * 64 KB-per-thread spatial-locality tables of competing designs.
 */

#include <cstdint>

#include "core/asd_config.hpp"

namespace asd
{

/** Storage bill for one ASD configuration. */
struct HwCost
{
    std::uint64_t stream_filter_bits = 0;  //!< per thread
    std::uint64_t lht_bits = 0;            //!< per thread, both dirs
    std::uint64_t comparator_count = 0;    //!< per thread
    std::uint64_t prefetch_buffer_bits = 0; //!< shared (tags + data)
    std::uint64_t lpq_bits = 0;            //!< shared
    std::uint32_t threads = 1;

    /** Total per-thread state in bits. */
    std::uint64_t
    perThreadBits() const
    {
        return stream_filter_bits + lht_bits;
    }

    /** Whole-prefetcher storage in bits. */
    std::uint64_t
    totalBits() const
    {
        return perThreadBits() * threads + prefetch_buffer_bits +
               lpq_bits;
    }

    double
    totalKiB() const
    {
        return static_cast<double>(totalBits()) / 8.0 / 1024.0;
    }
};

/**
 * Compute the storage bill of @p config.
 * @param phys_addr_bits physical address width (Power5+: 48 bits).
 * @param line_bytes cache line size.
 * @param lpq_entries LPQ depth (3 in the evaluated design).
 */
HwCost computeHwCost(const AsdConfig &config,
                     std::uint32_t phys_addr_bits = 48,
                     std::uint32_t line_bytes = 128,
                     std::uint32_t lpq_entries = 3);

} // namespace asd

#endif // ASD_CORE_HW_COST_HPP
