#include "arena/registry.hpp"

#include "common/log.hpp"
#include "sim/serialize.hpp"

namespace asd
{

std::string
toString(PrefetcherSide side)
{
    switch (side) {
    case PrefetcherSide::MemSide:
        return "mem-side";
    case PrefetcherSide::CpuSide:
        return "cpu-side";
    }
    panic("unhandled PrefetcherSide");
}

namespace
{

PrefetcherInfo
memSide(McPrefetcherKind kind, const std::string &description)
{
    PrefetcherInfo info;
    info.name = toString(kind);
    info.side = PrefetcherSide::MemSide;
    info.description = description;
    info.defaults.mode = PrefetchMode::MS;
    info.defaults.mc_prefetcher = kind;
    return info;
}

PrefetcherInfo
cpuSide(PsKind kind, const std::string &description)
{
    PrefetcherInfo info;
    info.name = "ps-" + toString(kind);
    info.side = PrefetcherSide::CpuSide;
    info.description = description;
    info.defaults.mode = PrefetchMode::PS;
    info.defaults.ps_kind = kind;
    return info;
}

} // namespace

PrefetcherRegistry::PrefetcherRegistry()
{
    // Memory-side contenders: every McPrefetcherKind the System can
    // construct. test_arena pins this completeness, so extending the
    // enum without registering the newcomer fails the suite.
    entries_.push_back(memSide(
        McPrefetcherKind::Asd,
        "Adaptive Stream Detection (the paper's design)"));
    entries_.push_back(memSide(
        McPrefetcherKind::NextLine,
        "next-line on every read + adaptive scheduling"));
    entries_.push_back(memSide(
        McPrefetcherKind::P5Style,
        "Power5-style sequential streams in the controller"));
    entries_.push_back(memSide(
        McPrefetcherKind::Ghb,
        "Global History Buffer, address-correlating (G/AC)"));
    entries_.push_back(memSide(
        McPrefetcherKind::Stride,
        "Baer-Chen-style stride detection by delta matching"));
    entries_.push_back(memSide(
        McPrefetcherKind::Dspatch,
        "DSPatch-style dual spatial bit-patterns (CovP/AccP)"));
    entries_.push_back(memSide(
        McPrefetcherKind::Perceptron,
        "perceptron-filtered stream prefetching"));

    // Variant contenders: alternate configurations of the kinds
    // above, fielded under their own registry names.
    {
        PrefetcherInfo ghb_dc = memSide(
            McPrefetcherKind::Ghb,
            "Global History Buffer, delta-correlating (G/DC)");
        ghb_dc.name = "ghb-dc";
        ghb_dc.defaults.ghb_delta_correlate = true;
        entries_.push_back(std::move(ghb_dc));
    }
    {
        PrefetcherInfo tuned = memSide(
            McPrefetcherKind::Asd,
            "ASD under the phase-adaptive shadow tuner");
        tuned.name = "asd+tuner";
        tuned.defaults.tuner.enabled = true;
        entries_.push_back(std::move(tuned));
    }

    // CPU-side contenders.
    entries_.push_back(cpuSide(
        PsKind::Power5,
        "Power5-style processor-side stream prefetcher"));
    entries_.push_back(cpuSide(
        PsKind::Asd,
        "ASD transplanted to the processor side (section 6)"));
}

const PrefetcherRegistry &
PrefetcherRegistry::instance()
{
    static const PrefetcherRegistry registry;
    return registry;
}

const std::vector<PrefetcherInfo> &
PrefetcherRegistry::all() const
{
    return entries_;
}

const PrefetcherInfo *
PrefetcherRegistry::find(const std::string &name) const
{
    for (const PrefetcherInfo &info : entries_) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

std::vector<std::string>
PrefetcherRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const PrefetcherInfo &info : entries_)
        out.push_back(info.name);
    return out;
}

std::vector<std::string>
PrefetcherRegistry::names(PrefetcherSide side) const
{
    std::vector<std::string> out;
    for (const PrefetcherInfo &info : entries_) {
        if (info.side == side)
            out.push_back(info.name);
    }
    return out;
}

} // namespace asd
