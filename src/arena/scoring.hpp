#ifndef ASD_ARENA_SCORING_HPP
#define ASD_ARENA_SCORING_HPP

/**
 * @file
 * Scoring and ranking for prefetcher bake-offs. One BakeoffCell per
 * (prefetcher, workload) pair carries the run's metrics plus the
 * workload's no-prefetching baseline cycles; scoreBakeoff()
 * aggregates the cells into one row per prefetcher and ranks the
 * rows. Every ranking key is integer milli-percent derived from
 * deterministic simulation output, so equal machines produce equal
 * scores and ties break by name — the leaderboard is byte-stable
 * across runs and thread counts.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "runner/job.hpp"

namespace asd
{

/** One (prefetcher, workload) result in a bake-off. */
struct BakeoffCell
{
    /** Registry name of the contender. */
    std::string prefetcher;

    /** Workload label, e.g. "spec/bwaves" or "spec/bwaves+vm". */
    std::string workload;

    JobStatus status = JobStatus::Ok;
    RunMetrics metrics;

    /** Cycles of the same workload under PrefetchMode::NP. */
    Cycle baseline_cycles = 0;
};

/** Aggregated leaderboard row for one prefetcher. */
struct PrefetcherScore
{
    std::string name;

    /** 1-based leaderboard position. */
    std::uint32_t rank = 0;

    std::uint32_t jobs_ok = 0;
    std::uint32_t jobs_failed = 0;

    /**
     * Mean performance gain over the NP baseline across workloads
     * (the IPC proxy: fewer cycles on the same trace), in
     * milli-percent. This is the primary ranking key.
     */
    std::int64_t speedup_milli_pct = 0;

    /** Mean useful-prefetch (accuracy) percentage, milli-percent. */
    std::int64_t accuracy_milli_pct = 0;

    /** Mean prefetch-buffer coverage, milli-percent. */
    std::int64_t coverage_milli_pct = 0;

    /**
     * Timeliness: 100% minus the mean share of regular commands
     * delayed by prefetch traffic, milli-percent.
     */
    std::int64_t timeliness_milli_pct = 0;

    /**
     * DRAM traffic overhead: memory-side prefetches issued per
     * demand read, summed over all workloads, milli-percent.
     */
    std::int64_t traffic_overhead_milli_pct = 0;

    /** Total simulated cycles across ok workloads. */
    std::uint64_t cycles_total = 0;
};

/**
 * Mean perfGain of @p cycles over @p baseline in milli-percent
 * ((baseline/cycles - 1) * 100000, integer floor). 0 when either
 * input is 0.
 */
std::int64_t speedupMilliPct(Cycle baseline, Cycle cycles);

/**
 * Aggregate @p cells into one scored row per prefetcher, ranked.
 * Order: speedup desc, accuracy desc, traffic overhead asc, name
 * asc; rank is 1-based in that order. Failed cells count in
 * jobs_failed and are excluded from every mean.
 */
std::vector<PrefetcherScore>
scoreBakeoff(const std::vector<BakeoffCell> &cells);

} // namespace asd

#endif // ASD_ARENA_SCORING_HPP
