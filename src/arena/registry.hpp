#ifndef ASD_ARENA_REGISTRY_HPP
#define ASD_ARENA_REGISTRY_HPP

/**
 * @file
 * The prefetcher zoo: one table enumerating every prefetcher the
 * simulator can field, memory-side and CPU-side, each with a stable
 * registry name, a one-line description, and the RunOptions that
 * instantiate it in its default configuration. The bake-off arena,
 * asdsim_cli's --list-prefetchers, and any future competition tooling
 * all read this table, so a prefetcher added here is automatically a
 * contender everywhere.
 */

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace asd
{

/** Which side of the memory system a contender occupies. */
enum class PrefetcherSide : std::uint8_t
{
    MemSide, //!< lives in the memory controller (MS mode)
    CpuSide, //!< lives at the cores (PS mode)
};

std::string toString(PrefetcherSide side);

/** One registered prefetcher. */
struct PrefetcherInfo
{
    /** Stable registry name ("asd", "dspatch", "ps-power5", ...). */
    std::string name;

    PrefetcherSide side;

    /** One-line description for listings and reports. */
    std::string description;

    /**
     * Options that field this prefetcher alone (mode MS for
     * memory-side entries, PS for CPU-side) with its default
     * parameters. Bake-off grids start from these and overlay only
     * workload-shaping knobs (accesses, warmup, VM), so every
     * contender runs the machine it was registered with.
     */
    RunOptions defaults;
};

/** The process-wide prefetcher table. */
class PrefetcherRegistry
{
  public:
    /** The registry (immutable, built on first use). */
    static const PrefetcherRegistry &instance();

    /** Every entry, memory-side first, in registration order. */
    const std::vector<PrefetcherInfo> &all() const;

    /** Entry by registry name; nullptr when unknown. */
    const PrefetcherInfo *find(const std::string &name) const;

    /** All registry names, in registration order. */
    std::vector<std::string> names() const;

    /** Names of one side only, in registration order. */
    std::vector<std::string> names(PrefetcherSide side) const;

  private:
    PrefetcherRegistry();

    std::vector<PrefetcherInfo> entries_;
};

} // namespace asd

#endif // ASD_ARENA_REGISTRY_HPP
