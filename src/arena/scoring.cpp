#include "arena/scoring.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace asd
{

namespace
{

/** Accumulator for one prefetcher's cells. */
struct Tally
{
    std::string name;
    std::uint32_t ok = 0;
    std::uint32_t failed = 0;
    std::int64_t speedup_milli_sum = 0;
    std::int64_t accuracy_milli_sum = 0;
    std::int64_t coverage_milli_sum = 0;
    std::int64_t delayed_milli_sum = 0;
    std::uint64_t prefetches_issued = 0;
    std::uint64_t demand_reads = 0;
    std::uint64_t cycles_total = 0;
};

/**
 * A percentage from RunMetrics (deterministic but double) fixed to
 * milli-percent for exact accumulation and comparison.
 */
std::int64_t
milliPct(double pct)
{
    return std::llround(pct * 1000.0);
}

} // namespace

std::int64_t
speedupMilliPct(Cycle baseline, Cycle cycles)
{
    if (baseline == 0 || cycles == 0)
        return 0;
    const auto b = static_cast<std::int64_t>(baseline);
    const auto c = static_cast<std::int64_t>(cycles);
    return b * 100000 / c - 100000;
}

std::vector<PrefetcherScore>
scoreBakeoff(const std::vector<BakeoffCell> &cells)
{
    // Tally in first-appearance order so the pre-sort order (and
    // with it, stable-sort behaviour) is input-determined.
    std::vector<Tally> tallies;
    for (const BakeoffCell &cell : cells) {
        Tally *tally = nullptr;
        for (Tally &t : tallies) {
            if (t.name == cell.prefetcher) {
                tally = &t;
                break;
            }
        }
        if (!tally) {
            tallies.emplace_back();
            tallies.back().name = cell.prefetcher;
            tally = &tallies.back();
        }
        if (cell.status != JobStatus::Ok) {
            ++tally->failed;
            continue;
        }
        ++tally->ok;
        tally->speedup_milli_sum +=
            speedupMilliPct(cell.baseline_cycles, cell.metrics.cycles);
        tally->accuracy_milli_sum +=
            milliPct(cell.metrics.useful_prefetch_pct);
        tally->coverage_milli_sum +=
            milliPct(cell.metrics.coverage_pct);
        tally->delayed_milli_sum +=
            milliPct(cell.metrics.delayed_regular_pct);
        tally->prefetches_issued += cell.metrics.ms_prefetches_issued;
        tally->demand_reads += cell.metrics.mc_reads;
        tally->cycles_total += cell.metrics.cycles;
    }

    std::vector<PrefetcherScore> scores;
    scores.reserve(tallies.size());
    for (const Tally &t : tallies) {
        PrefetcherScore s;
        s.name = t.name;
        s.jobs_ok = t.ok;
        s.jobs_failed = t.failed;
        if (t.ok > 0) {
            const auto n = static_cast<std::int64_t>(t.ok);
            s.speedup_milli_pct = t.speedup_milli_sum / n;
            s.accuracy_milli_pct = t.accuracy_milli_sum / n;
            s.coverage_milli_pct = t.coverage_milli_sum / n;
            s.timeliness_milli_pct =
                100000 - t.delayed_milli_sum / n;
            if (t.demand_reads > 0) {
                s.traffic_overhead_milli_pct =
                    static_cast<std::int64_t>(t.prefetches_issued) *
                    100000 /
                    static_cast<std::int64_t>(t.demand_reads);
            }
        }
        s.cycles_total = t.cycles_total;
        scores.push_back(s);
    }

    std::sort(scores.begin(), scores.end(),
              [](const PrefetcherScore &a, const PrefetcherScore &b) {
                  if (a.speedup_milli_pct != b.speedup_milli_pct)
                      return a.speedup_milli_pct > b.speedup_milli_pct;
                  if (a.accuracy_milli_pct != b.accuracy_milli_pct)
                      return a.accuracy_milli_pct >
                             b.accuracy_milli_pct;
                  if (a.traffic_overhead_milli_pct !=
                      b.traffic_overhead_milli_pct)
                      return a.traffic_overhead_milli_pct <
                             b.traffic_overhead_milli_pct;
                  return a.name < b.name;
              });
    for (std::size_t i = 0; i < scores.size(); ++i)
        scores[i].rank = static_cast<std::uint32_t>(i + 1);
    return scores;
}

} // namespace asd
