#ifndef ASD_ARENA_BAKEOFF_HPP
#define ASD_ARENA_BAKEOFF_HPP

/**
 * @file
 * The bake-off arena: run every selected contender from the
 * PrefetcherRegistry across workload suites under identical machine
 * conditions and rank them. Layered on SweepRunner, so contender runs
 * execute in parallel, share warm-up snapshots (an NP baseline and
 * every memory-side contender of the same workload fork one snapshot
 * — disarmed machines evolve identically), and can resume from a
 * previous run's result directory. The ranked output is byte-stable
 * across runs and thread counts.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "arena/registry.hpp"
#include "arena/scoring.hpp"
#include "runner/sweep_runner.hpp"
#include "workloads/profiles.hpp"

namespace asd
{

/** One competition setting: a benchmark, optionally under VM/OS. */
struct BakeoffWorkload
{
    /** Report label, "<suite>/<bench>" plus "+vm"/"+os" suffixes. */
    std::string label;

    Benchmark bench;

    /** Run with the 4 KiB random-placement VM layer enabled. */
    bool vm = false;

    /** Run with the OS memory model enabled (canonical config). */
    bool os = false;
};

/** Knobs for one bake-off. */
struct BakeoffOptions
{
    /** Workload suites to sweep (in order). */
    std::vector<Suite> suites = {Suite::Spec2006fp, Suite::Nas,
                                 Suite::Commercial};

    /**
     * Extra benchmarks by name (resolved via findBenchmark), added
     * after the suites under the "extra/" label prefix. When suites
     * is empty these are the whole grid.
     */
    std::vector<std::string> benchmarks;

    /** Contender registry names; empty = every registered one. */
    std::vector<std::string> prefetchers;

    /** Also run every workload with the VM layer on ("+vm"). */
    bool vm_axis = false;

    /**
     * Also run every workload under the OS memory model ("+os"):
     * demand paging over the default finite frame pool with CLOCK
     * reclaim, so contenders are ranked under fault/reclaim stalls
     * and TLB shootdowns too.
     */
    bool os_axis = false;

    /** Trace-length override applied to every job. */
    std::optional<std::uint64_t> accesses;

    /**
     * Warm-up cycles before memory-side contenders arm. Nonzero
     * makes warm-start snapshot sharing effective: one warm-up per
     * workload serves the NP baseline and all MS contenders.
     */
    Cycle warmup_cycles = 20000;

    /** Worker threads; 0 = defaultThreadCount(). */
    unsigned threads = 0;

    /**
     * Result directory. When set, per-job records and warm-up
     * snapshots persist there (enables resume); empty = in-memory.
     */
    std::string out_dir;

    /** Adopt ok records already present in out_dir (needs out_dir). */
    bool resume = false;

    /** Share warm-up snapshots across jobs (see SweepOptions). */
    bool warm_start = true;

    /** Forwarded to SweepOptions::on_progress. */
    std::function<void(const SweepProgress &)> on_progress;
};

/** Everything a bake-off produces. */
struct BakeoffResult
{
    /** The competition grid, in run order. */
    std::vector<BakeoffWorkload> workloads;

    /** Contender registry names, in ranked-report tally order. */
    std::vector<std::string> prefetchers;

    /**
     * One cell per (workload, contender), workload-major in grid
     * order. NP baseline runs are folded into each cell's
     * baseline_cycles, not listed as cells.
     */
    std::vector<BakeoffCell> cells;

    /** Ranked leaderboard rows. */
    std::vector<PrefetcherScore> scores;

    /** Sweep statistics of the jobs that actually ran. */
    SweepSummary summary;

    /** Records adopted from out_dir instead of re-run (resume). */
    std::size_t adopted = 0;

    /** Total jobs in the grid, including baselines. */
    std::size_t total_jobs = 0;
};

/** Runs one bake-off; stateless between run() calls. */
class BakeoffRunner
{
  public:
    /**
     * Validates @p options eagerly: unknown prefetcher or benchmark
     * names and an empty grid fatal() here, not mid-sweep.
     */
    explicit BakeoffRunner(BakeoffOptions options);

    /** Execute the whole grid and score it. */
    BakeoffResult run();

    /** The resolved competition grid (visible before run()). */
    const std::vector<BakeoffWorkload> &
    workloads() const
    {
        return workloads_;
    }

    /** The resolved contender list (visible before run()). */
    const std::vector<const PrefetcherInfo *> &
    contenders() const
    {
        return contenders_;
    }

  private:
    RunOptions workloadOptions(const BakeoffWorkload &workload,
                               const RunOptions &base) const;

    BakeoffOptions options_;
    std::vector<BakeoffWorkload> workloads_;
    std::vector<const PrefetcherInfo *> contenders_;
};

} // namespace asd

#endif // ASD_ARENA_BAKEOFF_HPP
