#ifndef ASD_ARENA_REPORT_HPP
#define ASD_ARENA_REPORT_HPP

/**
 * @file
 * Rendering of a finished bake-off: a machine-readable JSON document
 * (schema "asdbakeoff/v1") and a human-readable Markdown leaderboard.
 * Both are pure functions of the BakeoffResult's deterministic fields
 * — no wall-clock times, thread counts, or worker ids — so the same
 * grid produces byte-identical reports at any parallelism.
 */

#include <string>

#include "arena/bakeoff.hpp"

namespace asd
{

/**
 * @return the full bake-off report as one JSON document (schema
 * "asdbakeoff/v1"): grid, ranked leaderboard, and per-cell metrics.
 */
std::string bakeoffJson(const BakeoffResult &result);

/**
 * @return the ranked leaderboard as a Markdown table, with one
 * per-workload detail section per prefetcher. Milli-percent values
 * render with three decimals.
 */
std::string bakeoffMarkdown(const BakeoffResult &result);

/** Format integer milli-percent as a decimal string ("12.345"). */
std::string formatMilliPct(std::int64_t milli_pct);

} // namespace asd

#endif // ASD_ARENA_REPORT_HPP
