#include "arena/report.hpp"

#include "common/json.hpp"
#include "common/log.hpp"
#include "sim/serialize.hpp"

namespace asd
{

std::string
formatMilliPct(std::int64_t milli_pct)
{
    const bool negative = milli_pct < 0;
    const std::uint64_t magnitude = static_cast<std::uint64_t>(
        negative ? -milli_pct : milli_pct);
    std::string out = negative ? "-" : "";
    out += std::to_string(magnitude / 1000);
    const std::uint64_t frac = magnitude % 1000;
    out += '.';
    if (frac < 100)
        out += '0';
    if (frac < 10)
        out += '0';
    out += std::to_string(frac);
    return out;
}

namespace
{

const PrefetcherInfo &
infoFor(const std::string &name)
{
    const PrefetcherInfo *info =
        PrefetcherRegistry::instance().find(name);
    panicIfNot(info != nullptr,
               "bake-off report: unregistered prefetcher name");
    return *info;
}

void
writeScore(JsonWriter &w, const PrefetcherScore &score)
{
    w.beginObject();
    w.key("rank").value(score.rank);
    w.key("name").value(score.name);
    w.key("side").value(toString(infoFor(score.name).side));
    w.key("jobs_ok").value(score.jobs_ok);
    w.key("jobs_failed").value(score.jobs_failed);
    w.key("speedup_milli_pct").value(score.speedup_milli_pct);
    w.key("accuracy_milli_pct").value(score.accuracy_milli_pct);
    w.key("coverage_milli_pct").value(score.coverage_milli_pct);
    w.key("timeliness_milli_pct").value(score.timeliness_milli_pct);
    w.key("traffic_overhead_milli_pct")
        .value(score.traffic_overhead_milli_pct);
    w.key("cycles_total").value(score.cycles_total);
    w.endObject();
}

void
writeCell(JsonWriter &w, const BakeoffCell &cell)
{
    w.beginObject();
    w.key("prefetcher").value(cell.prefetcher);
    w.key("workload").value(cell.workload);
    w.key("status").value(toString(cell.status));
    w.key("cycles").value(cell.metrics.cycles);
    w.key("baseline_cycles").value(cell.baseline_cycles);
    w.key("speedup_milli_pct")
        .value(speedupMilliPct(cell.baseline_cycles,
                               cell.metrics.cycles));
    w.key("useful_prefetch_pct")
        .value(cell.metrics.useful_prefetch_pct);
    w.key("coverage_pct").value(cell.metrics.coverage_pct);
    w.key("delayed_regular_pct")
        .value(cell.metrics.delayed_regular_pct);
    w.key("ms_prefetches_issued")
        .value(cell.metrics.ms_prefetches_issued);
    w.key("mc_reads").value(cell.metrics.mc_reads);
    w.endObject();
}

} // namespace

std::string
bakeoffJson(const BakeoffResult &result)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("asdbakeoff/v1");
    w.key("workloads").beginArray();
    for (const BakeoffWorkload &workload : result.workloads) {
        w.beginObject();
        w.key("label").value(workload.label);
        w.key("benchmark").value(workload.bench.name);
        w.key("vm").value(workload.vm);
        w.endObject();
    }
    w.endArray();
    w.key("prefetchers").beginArray();
    for (const std::string &name : result.prefetchers)
        w.value(name);
    w.endArray();
    w.key("jobs").beginObject();
    w.key("total").value(
        static_cast<std::uint64_t>(result.total_jobs));
    w.key("adopted").value(
        static_cast<std::uint64_t>(result.adopted));
    w.endObject();
    w.key("leaderboard").beginArray();
    for (const PrefetcherScore &score : result.scores)
        writeScore(w, score);
    w.endArray();
    w.key("cells").beginArray();
    for (const BakeoffCell &cell : result.cells)
        writeCell(w, cell);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
bakeoffMarkdown(const BakeoffResult &result)
{
    std::string out = "# Prefetcher bake-off\n\n";
    out += std::to_string(result.prefetchers.size());
    out += " contenders x ";
    out += std::to_string(result.workloads.size());
    out += " workloads\n\n";
    out += "| rank | prefetcher | side | speedup % | accuracy % | "
           "coverage % | timeliness % | traffic % | jobs |\n";
    out += "|---:|:---|:---|---:|---:|---:|---:|---:|---:|\n";
    for (const PrefetcherScore &score : result.scores) {
        out += "| " + std::to_string(score.rank);
        out += " | " + score.name;
        out += " | " + toString(infoFor(score.name).side);
        out += " | " + formatMilliPct(score.speedup_milli_pct);
        out += " | " + formatMilliPct(score.accuracy_milli_pct);
        out += " | " + formatMilliPct(score.coverage_milli_pct);
        out += " | " + formatMilliPct(score.timeliness_milli_pct);
        out +=
            " | " + formatMilliPct(score.traffic_overhead_milli_pct);
        out += " | " + std::to_string(score.jobs_ok);
        if (score.jobs_failed > 0)
            out += " (+" + std::to_string(score.jobs_failed) +
                   " failed)";
        out += " |\n";
    }
    out += "\nSpeedup is the mean cycle gain over the no-prefetch "
           "baseline; traffic is memory-side prefetches per 100 "
           "demand reads.\n";

    out += "\n## Per-workload speedup\n\n";
    out += "| workload |";
    for (const PrefetcherScore &score : result.scores) {
        out += ' ';
        out += score.name;
        out += " |";
    }
    out += "\n|:---|";
    for (std::size_t i = 0; i < result.scores.size(); ++i)
        out += "---:|";
    out += "\n";
    for (const BakeoffWorkload &workload : result.workloads) {
        out += "| ";
        out += workload.label;
        out += " |";
        for (const PrefetcherScore &score : result.scores) {
            // Cells are workload-major but few; linear scan keeps
            // this a pure function of the result.
            bool found = false;
            for (const BakeoffCell &cell : result.cells) {
                if (cell.workload != workload.label ||
                    cell.prefetcher != score.name)
                    continue;
                out += ' ';
                if (cell.status == JobStatus::Ok) {
                    out += formatMilliPct(speedupMilliPct(
                        cell.baseline_cycles, cell.metrics.cycles));
                } else {
                    out += toString(cell.status);
                }
                out += " |";
                found = true;
                break;
            }
            if (!found)
                out += " - |";
        }
        out += "\n";
    }
    return out;
}

} // namespace asd
