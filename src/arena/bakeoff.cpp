#include "arena/bakeoff.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"
#include "sim/serialize.hpp"
#include "tuner/tuned_run.hpp"

namespace asd
{

namespace
{

/**
 * Route tuner-enabled specs through TunedRun (runBenchmark never
 * consults options.tuner). The body also opts the job out of
 * warm-start sharing, which is correct: a tuned run's telemetry
 * baseline must see its own warm-up boundary.
 */
JobSpec
withTunerBody(JobSpec spec)
{
    if (!spec.options.tuner.enabled)
        return spec;
    spec.body = [](const JobSpec &job) {
        Benchmark bench = job.bench;
        if (job.seed)
            bench.trace.seed = *job.seed;
        return TunedRun(bench, job.options).run().metrics;
    };
    return spec;
}

/**
 * Recover the metrics of an adopted result record: parse the record
 * JSON and rebuild RunMetrics from its "metrics" member. nullopt on
 * any shape mismatch — the caller then re-runs the job instead of
 * scoring garbage.
 */
std::optional<RunMetrics>
metricsFromRecordFile(const std::string &dir, const std::string &id)
{
    const std::filesystem::path path =
        std::filesystem::path(dir) / (sanitizeFileStem(id) + ".json");
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = jsonParse(buffer.str());
    if (!doc)
        return std::nullopt;
    const JsonValue *metrics = doc->find("metrics");
    if (!metrics)
        return std::nullopt;
    return metricsFromJson(*metrics);
}

} // namespace

BakeoffRunner::BakeoffRunner(BakeoffOptions options)
    : options_(std::move(options))
{
    for (const Suite suite : options_.suites) {
        for (const Benchmark &bench : suiteBenchmarks(suite)) {
            BakeoffWorkload workload;
            workload.label = suiteName(suite) + "/" + bench.name;
            workload.bench = bench;
            workloads_.push_back(std::move(workload));
        }
    }
    for (const std::string &name : options_.benchmarks) {
        BakeoffWorkload workload;
        workload.label = "extra/" + name;
        workload.bench = findBenchmark(name); // fatal() when unknown
        workloads_.push_back(std::move(workload));
    }
    if (options_.vm_axis) {
        const std::size_t base = workloads_.size();
        workloads_.reserve(base * 2);
        for (std::size_t i = 0; i < base; ++i) {
            BakeoffWorkload vm_workload = workloads_[i];
            vm_workload.label += "+vm";
            vm_workload.vm = true;
            workloads_.push_back(std::move(vm_workload));
        }
    }
    if (options_.os_axis) {
        // Duplicate only the plain workloads: VM and OS are mutually
        // exclusive machine configurations.
        const std::size_t base = workloads_.size();
        for (std::size_t i = 0; i < base; ++i) {
            if (workloads_[i].vm)
                continue;
            BakeoffWorkload os_workload = workloads_[i];
            os_workload.label += "+os";
            os_workload.os = true;
            workloads_.push_back(std::move(os_workload));
        }
    }
    panicIfNot(!workloads_.empty(),
               "BakeoffRunner: empty workload grid (no suites and no "
               "benchmarks)");

    const PrefetcherRegistry &registry = PrefetcherRegistry::instance();
    if (options_.prefetchers.empty()) {
        for (const PrefetcherInfo &info : registry.all())
            contenders_.push_back(&info);
    } else {
        for (const std::string &name : options_.prefetchers) {
            const PrefetcherInfo *info = registry.find(name);
            if (!info)
                fatal("unknown prefetcher '" + name +
                      "' (see --list-prefetchers)");
            contenders_.push_back(info);
        }
    }
    panicIfNot(!contenders_.empty(),
               "BakeoffRunner: empty contender list");
}

RunOptions
BakeoffRunner::workloadOptions(const BakeoffWorkload &workload,
                               const RunOptions &base) const
{
    RunOptions out = base;
    if (options_.accesses)
        out.accesses = options_.accesses;
    out.warmup_cycles = options_.warmup_cycles;
    if (workload.vm) {
        // The bake-off's VM setting: 4 KiB pages placed uniformly at
        // random — the fragmented long-running-OS case where spatial
        // prefetchers lose cross-page streams.
        out.vm.enabled = true;
        out.vm.policy = FrameAllocPolicy::RandomShuffle;
    }
    if (workload.os) {
        // The bake-off's OS setting is the OsConfig default: demand
        // paging over a finite frame pool with CLOCK reclaim. Every
        // contender faces the same fault/reclaim stall pattern.
        out.os.enabled = true;
    }
    return out;
}

BakeoffResult
BakeoffRunner::run()
{
    BakeoffResult result;
    result.workloads = workloads_;
    for (const PrefetcherInfo *info : contenders_)
        result.prefetchers.push_back(info->name);

    // The full grid, workload-major: the NP baseline first, then one
    // job per contender. specs[i] corresponds 1:1 to outcomes[i].
    std::vector<JobSpec> specs;
    specs.reserve(workloads_.size() * (contenders_.size() + 1));
    for (const BakeoffWorkload &workload : workloads_) {
        RunOptions np;
        np.mode = PrefetchMode::NP;
        specs.push_back(makeJob(workload.bench,
                                workloadOptions(workload, np)));
        for (const PrefetcherInfo *info : contenders_) {
            specs.push_back(withTunerBody(makeJob(
                workload.bench,
                workloadOptions(workload, info->defaults))));
        }
    }
    result.total_jobs = specs.size();

    std::optional<JsonDirSink> sink;
    std::string snapshot_dir;
    if (!options_.out_dir.empty()) {
        const std::filesystem::path out(options_.out_dir);
        sink.emplace((out / "results").string());
        snapshot_dir = (out / "snapshots").string();
    }

    // Resume: adopt clean records, re-running anything whose metrics
    // cannot be recovered exactly.
    std::vector<std::optional<JobResult>> outcomes(specs.size());
    std::vector<JobSpec> to_run;
    std::vector<std::size_t> to_run_index;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (options_.resume && sink) {
            auto metrics = metricsFromRecordFile(sink->dir(),
                                                 specs[i].id);
            if (metrics && sink->adoptExisting(specs[i])) {
                JobResult adopted;
                adopted.spec = specs[i];
                adopted.status = JobStatus::Ok;
                adopted.metrics = *metrics;
                outcomes[i] = std::move(adopted);
                ++result.adopted;
                continue;
            }
        }
        to_run.push_back(specs[i]);
        to_run_index.push_back(i);
    }

    SweepOptions sweep;
    sweep.threads = options_.threads;
    sweep.warm_start = options_.warm_start;
    sweep.snapshot_dir = snapshot_dir;
    sweep.on_progress = options_.on_progress;
    sweep.sink = sink ? &*sink : nullptr;
    SweepRunner runner(sweep);
    const std::vector<JobResult> ran = runner.run(to_run);
    result.summary = runner.lastSummary();
    for (std::size_t i = 0; i < ran.size(); ++i)
        outcomes[to_run_index[i]] = ran[i];

    // Fold into cells: baseline cycles come from each workload's NP
    // job (0 when that job failed, which disables the speedup term
    // rather than poisoning it).
    const std::size_t stride = contenders_.size() + 1;
    for (std::size_t w = 0; w < workloads_.size(); ++w) {
        const JobResult &baseline = *outcomes[w * stride];
        const Cycle baseline_cycles =
            baseline.status == JobStatus::Ok ? baseline.metrics.cycles
                                             : 0;
        for (std::size_t c = 0; c < contenders_.size(); ++c) {
            const JobResult &outcome = *outcomes[w * stride + 1 + c];
            BakeoffCell cell;
            cell.prefetcher = contenders_[c]->name;
            cell.workload = workloads_[w].label;
            cell.status = outcome.status;
            cell.metrics = outcome.metrics;
            cell.baseline_cycles = baseline_cycles;
            result.cells.push_back(std::move(cell));
        }
    }
    result.scores = scoreBakeoff(result.cells);
    return result;
}

} // namespace asd
