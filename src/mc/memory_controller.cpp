#include "mc/memory_controller.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace asd
{

MemoryController::MemoryController(const McConfig &config, Dram &dram,
                                   ReadCallback on_read_done)
    : config_(config),
      dram_(dram),
      on_read_done_(std::move(on_read_done)),
      scheduler_(makeScheduler(config.scheduler))
{
    panicIfNot(config_.caq > 0, "MemoryController: CAQ must be nonempty");
    panicIfNot(static_cast<bool>(on_read_done_),
               "MemoryController: read callback required");
}

void
MemoryController::attachPrefetcher(MemSidePrefetcher *prefetcher)
{
    prefetcher_ = prefetcher;
}

bool
MemoryController::canAcceptRead() const
{
    return read_q_.size() < config_.read_queue;
}

bool
MemoryController::canAcceptWrite() const
{
    return write_q_.size() < config_.write_queue;
}

bool
MemoryController::prefetchInFlight(LineAddr line) const
{
    for (const auto &flight : in_flight_)
        if (flight.cmd.is_prefetch && flight.cmd.line == line)
            return true;
    return false;
}

bool
MemoryController::inLpq(LineAddr line) const
{
    for (const auto &cmd : lpq_)
        if (cmd.line == line)
            return true;
    return false;
}

void
MemoryController::cancelLpqEntry(LineAddr line)
{
    for (auto it = lpq_.begin(); it != lpq_.end(); ++it) {
        if (it->line == line) {
            lpq_.erase(it);
            lpq_promoted_.inc();
            return;
        }
    }
}

bool
MemoryController::mergeWithPrefetch(const McCommand &cmd)
{
    for (auto &flight : in_flight_) {
        if (flight.cmd.is_prefetch && flight.cmd.line == cmd.line) {
            flight.waiters.push_back(cmd);
            merged_with_prefetch_.inc();
            return true;
        }
    }
    return false;
}

void
MemoryController::pushPrefetches(const std::vector<LineAddr> &lines,
                                 Cycle now)
{
    MemSidePrefetcher *const prefetcher = activePrefetcher();
    for (const LineAddr line : lines) {
        if (lpq_.size() >= config_.lpq) {
            lpq_dropped_.inc();
            continue;
        }
        // Skip prefetches whose data is already buffered or being
        // fetched; they would only waste DRAM bandwidth.
        if (inLpq(line) || prefetchInFlight(line) ||
            (prefetcher && prefetcher->bufferContains(line))) {
            continue;
        }
        McCommand cmd;
        cmd.line = line;
        cmd.id = next_prefetch_id_++;
        cmd.enqueued_at = now;
        cmd.is_prefetch = true;
        lpq_.push_back(cmd);
        lpq_hwm_ = std::max(lpq_hwm_, lpq_.size());
    }
}

bool
MemoryController::enqueueRead(LineAddr line, std::uint64_t id,
                              std::uint32_t thread, Cycle now)
{
    // Probe the Prefetch Buffer before anything else: a hit squashes
    // the DRAM access and needs no queue slot. The probe consumes the
    // entry only on a hit, so a rejected (queue-full) read has no
    // side effects and can be retried.
    MemSidePrefetcher *const prefetcher = activePrefetcher();
    const bool buffer_hit = prefetcher && prefetcher->lookupBuffer(line);

    // A demand read matching an in-flight prefetch rides that
    // prefetch's completion instead of re-fetching the line (MSHR-
    // style merge); it needs no reorder-queue slot either.
    McCommand merged_cmd;
    merged_cmd.line = line;
    merged_cmd.id = id;
    merged_cmd.thread = thread;
    merged_cmd.enqueued_at = now;
    const bool merged = !buffer_hit && prefetcher &&
                        config_.merge_inflight_prefetch &&
                        mergeWithPrefetch(merged_cmd);

    if (!buffer_hit && !merged && !canAcceptRead())
        return false;

    // The Stream Filter observes every read accepted into the
    // controller, whether or not the Prefetch Buffer satisfied it
    // (Fig. 4: reads fan out to both paths).
    reads_observed_.inc();
    std::vector<LineAddr> candidates;
    if (prefetcher)
        candidates = prefetcher->observeRead(line, thread, now);

    if (buffer_hit) {
        buffer_hits_entry_.inc();
        InFlight flight;
        flight.done = now + config_.buffer_hit_latency;
        flight.cmd = merged_cmd;
        flight.touches_dram = false;
        in_flight_.push_back(flight);
        pushPrefetches(candidates, now);
        ++demand_accepted_;
        return true;
    }
    if (merged) {
        pushPrefetches(candidates, now);
        ++demand_accepted_;
        return true;
    }

    // A prefetch still waiting in the LPQ is superseded by the read
    // itself (demand or processor-side prefetch).
    if (prefetcher && config_.cancel_lpq_on_demand)
        cancelLpqEntry(line);

    McCommand cmd;
    cmd.line = line;
    cmd.id = id;
    cmd.thread = thread;
    cmd.enqueued_at = now;
    read_q_.push_back(cmd);
    read_q_hwm_ = std::max(read_q_hwm_, read_q_.size());
    pushPrefetches(candidates, now);
    ++demand_accepted_;
    return true;
}

bool
MemoryController::enqueueWrite(LineAddr line, Cycle now)
{
    if (!canAcceptWrite())
        return false;
    writes_observed_.inc();
    if (MemSidePrefetcher *const prefetcher = activePrefetcher())
        prefetcher->observeWrite(line, now);
    McCommand cmd;
    cmd.line = line;
    cmd.is_write = true;
    cmd.enqueued_at = now;
    write_q_.push_back(cmd);
    write_q_hwm_ = std::max(write_q_hwm_, write_q_.size());
    return true;
}

bool
MemoryController::policyAllowsLpq(int policy, Cycle now) const
{
    if (lpq_.empty())
        return false;
    switch (policy) {
      case 1:
        return caq_.empty() && read_q_.empty() && write_q_.empty();
      case 2: {
        if (!caq_.empty())
            return false;
        for (const auto &cmd : read_q_)
            if (dram_.canIssue(cmd.line, now))
                return false;
        for (const auto &cmd : write_q_)
            if (dram_.canIssue(cmd.line, now))
                return false;
        return true;
      }
      case 3:
        return caq_.empty();
      case 4:
        return caq_.size() <= 1 && lpq_.size() >= config_.lpq;
      case 5:
        return caq_.empty() ||
               lpq_.front().enqueued_at < caq_.front().enqueued_at;
      default:
        return false;
    }
}

void
MemoryController::moveToCaq(Cycle now)
{
    if (caq_.size() >= config_.caq)
        return;
    // Write-drain hysteresis.
    if (write_q_.size() >= config_.write_drain_high)
        draining_writes_ = true;
    else if (write_q_.size() <= config_.write_drain_low)
        draining_writes_ = false;
    const auto pick = scheduler_->pick(read_q_, write_q_, dram_, now,
                                       draining_writes_);
    // A not-ready pick is only the scheduler's preference (its bank
    // cannot accept a command). The FIFO CAQ issues strictly in
    // order, so parking it there would block younger ready commands;
    // leave it in the reorder queue where it stays schedulable.
    if (!pick || !pick->ready)
        return;
    auto &queue = pick->from_write_queue ? write_q_ : read_q_;
    panicIfNot(pick->index < queue.size(),
               "scheduler picked an out-of-range command");
    caq_.push_back(queue[pick->index]);
    caq_hwm_ = std::max(caq_hwm_, caq_.size());
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick->index));
}

void
MemoryController::issueToDram(Cycle now)
{
    MemSidePrefetcher *const prefetcher = activePrefetcher();
    const int policy = prefetcher ? prefetcher->schedulingPolicy() : 0;
    if (prefetcher && policyAllowsLpq(policy, now) &&
        dram_.canIssue(lpq_.front().line, now)) {
        McCommand cmd = lpq_.front();
        lpq_.pop_front();
        const Cycle done = dram_.issue(
            cmd.line, false, true, now + config_.command_overhead);
        prefetches_issued_.inc();
        InFlight flight;
        flight.done = done;
        flight.cmd = cmd;
        in_flight_.push_back(flight);
        return;
    }

    if (caq_.empty())
        return;
    McCommand &head = caq_.front();

    // Second Prefetch Buffer check: the data may have arrived while
    // the read sat in the CAQ.
    if (!head.is_write && prefetcher &&
        prefetcher->lookupBuffer(head.line)) {
        buffer_hits_caq_.inc();
        InFlight flight;
        flight.done = now + config_.return_overhead;
        flight.cmd = head;
        flight.touches_dram = false;
        in_flight_.push_back(flight);
        caq_.pop_front();
        return;
    }

    if (!dram_.canIssue(head.line, now)) {
        // Adaptive Scheduling feedback: regular command blocked by a
        // bank still busy with a previously issued prefetch.
        if (dram_.occupant(head.line, now) == BankOccupant::Prefetch) {
            prefetch_conflict_events_.inc();
            if (!head.delayed_by_prefetch) {
                head.delayed_by_prefetch = true;
                regulars_delayed_.inc();
                if (prefetcher)
                    prefetcher->notifyPrefetchConflict(now);
            }
        }
        return;
    }

    McCommand cmd = head;
    caq_.pop_front();
    const Cycle done = dram_.issue(cmd.line, cmd.is_write, false,
                                   now + config_.command_overhead);
    scheduler_->notifyIssued(cmd, dram_);
    if (cmd.is_write)
        ++writes_issued_;
    if (!cmd.is_write) {
        InFlight flight;
        flight.done = done + config_.return_overhead;
        flight.cmd = cmd;
        in_flight_.push_back(flight);
    }
}

void
MemoryController::completeFinished(Cycle now)
{
    for (std::size_t i = 0; i < in_flight_.size();) {
        if (in_flight_[i].done > now) {
            ++i;
            continue;
        }
        const InFlight flight = in_flight_[i];
        in_flight_.erase(in_flight_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        if (flight.cmd.is_prefetch) {
            if (flight.waiters.empty()) {
                if (MemSidePrefetcher *const prefetcher =
                        activePrefetcher())
                    prefetcher->fillBuffer(flight.cmd.line, now);
            } else {
                // Data forwarded straight to the merged demand
                // read(s); it moves into L1/L2 so the buffer copy
                // would be dead weight (same rule as a buffer hit).
                prefetches_merged_useful_.inc();
                for (const McCommand &waiter : flight.waiters) {
                    ++demand_completed_;
                    on_read_done_(waiter.id,
                                  flight.done +
                                      config_.return_overhead);
                }
            }
        } else {
            ++demand_completed_;
            on_read_done_(flight.cmd.id, flight.done);
        }
    }
}

void
MemoryController::tick(Cycle now)
{
    if (MemSidePrefetcher *const prefetcher = activePrefetcher())
        prefetcher->tick(now);
    completeFinished(now);
    moveToCaq(now);
    issueToDram(now);
    if (checksEnabled())
        checkInvariants();
}

void
MemoryController::resetQueueHighWater()
{
    read_q_hwm_ = read_q_.size();
    write_q_hwm_ = write_q_.size();
    caq_hwm_ = caq_.size();
    lpq_hwm_ = lpq_.size();
}

void
MemoryController::checkInvariants() const
{
    checkThat(read_q_.size() <= config_.read_queue,
              "read reorder queue above capacity");
    checkThat(write_q_.size() <= config_.write_queue,
              "write reorder queue above capacity");
    checkThat(caq_.size() <= config_.caq, "CAQ above capacity");
    checkThat(lpq_.size() <= config_.lpq, "LPQ above capacity");

    std::size_t caq_reads = 0;
    std::size_t caq_writes = 0;
    for (const auto &cmd : caq_)
        (cmd.is_write ? caq_writes : caq_reads) += 1;
    for (const auto &cmd : lpq_)
        checkThat(cmd.is_prefetch && !cmd.is_write,
                  "non-prefetch command in the LPQ");

    // Every accepted demand read is exactly one of: completed, in the
    // read reorder queue, a read in the CAQ, a non-prefetch flight,
    // or a waiter riding an in-flight prefetch.
    std::uint64_t live = read_q_.size() + caq_reads;
    for (const auto &flight : in_flight_) {
        if (flight.cmd.is_prefetch) {
            live += flight.waiters.size();
        } else {
            checkThat(flight.waiters.empty(),
                      "waiters on a non-prefetch flight");
            live += 1;
        }
    }
    checkThat(demand_accepted_ == demand_completed_ + live,
              "demand-read conservation violated across MC queues");

    // Writes: observed = issued to DRAM + still queued + in the CAQ.
    checkThat(writes_observed_.value() ==
                  writes_issued_ + write_q_.size() + caq_writes,
              "write conservation violated across MC queues");
}

bool
MemoryController::idle() const
{
    return read_q_.empty() && write_q_.empty() && caq_.empty() &&
           in_flight_.empty();
}

namespace
{

void
saveCommand(SnapshotWriter &w, const McCommand &cmd)
{
    w.u64(cmd.line);
    w.u64(cmd.id);
    w.u32(cmd.thread);
    w.u64(cmd.enqueued_at);
    w.b(cmd.is_write);
    w.b(cmd.is_prefetch);
    w.b(cmd.delayed_by_prefetch);
}

McCommand
loadCommand(SnapshotReader &r)
{
    McCommand cmd;
    cmd.line = r.u64();
    cmd.id = r.u64();
    cmd.thread = r.u32();
    cmd.enqueued_at = r.u64();
    cmd.is_write = r.b();
    cmd.is_prefetch = r.b();
    cmd.delayed_by_prefetch = r.b();
    return cmd;
}

void
saveQueue(SnapshotWriter &w, const std::deque<McCommand> &queue)
{
    w.u64(queue.size());
    for (const McCommand &cmd : queue)
        saveCommand(w, cmd);
}

void
loadQueue(SnapshotReader &r, std::deque<McCommand> &queue,
          std::size_t capacity, const char *what)
{
    const std::uint64_t count = r.u64();
    SnapshotReader::check(count <= capacity, what);
    queue.clear();
    for (std::uint64_t i = 0; i < count; ++i)
        queue.push_back(loadCommand(r));
}

} // namespace

void
MemoryController::saveState(SnapshotWriter &w) const
{
    saveQueue(w, read_q_);
    saveQueue(w, write_q_);
    saveQueue(w, caq_);
    saveQueue(w, lpq_);
    w.b(draining_writes_);
    w.u64(in_flight_.size());
    for (const InFlight &flight : in_flight_) {
        w.u64(flight.done);
        saveCommand(w, flight.cmd);
        w.b(flight.touches_dram);
        w.u64(flight.waiters.size());
        for (const McCommand &waiter : flight.waiters)
            saveCommand(w, waiter);
    }
    w.u64(next_prefetch_id_);
    w.u64(read_q_hwm_);
    w.u64(write_q_hwm_);
    w.u64(caq_hwm_);
    w.u64(lpq_hwm_);
    w.u64(demand_accepted_);
    w.u64(demand_completed_);
    w.u64(writes_issued_);
    w.u64(reads_observed_.value());
    w.u64(writes_observed_.value());
    w.u64(buffer_hits_entry_.value());
    w.u64(buffer_hits_caq_.value());
    w.u64(prefetches_issued_.value());
    w.u64(lpq_dropped_.value());
    w.u64(regulars_delayed_.value());
    w.u64(prefetch_conflict_events_.value());
    w.u64(merged_with_prefetch_.value());
    w.u64(prefetches_merged_useful_.value());
    w.u64(lpq_promoted_.value());
    scheduler_->saveState(w);
}

void
MemoryController::loadState(SnapshotReader &r)
{
    loadQueue(r, read_q_, config_.read_queue,
              "read reorder queue above capacity in snapshot");
    loadQueue(r, write_q_, config_.write_queue,
              "write reorder queue above capacity in snapshot");
    loadQueue(r, caq_, config_.caq, "CAQ above capacity in snapshot");
    loadQueue(r, lpq_, config_.lpq, "LPQ above capacity in snapshot");
    draining_writes_ = r.b();
    const std::uint64_t flights = r.u64();
    in_flight_.clear();
    for (std::uint64_t i = 0; i < flights; ++i) {
        InFlight flight;
        flight.done = r.u64();
        flight.cmd = loadCommand(r);
        flight.touches_dram = r.b();
        const std::uint64_t waiters = r.u64();
        for (std::uint64_t j = 0; j < waiters; ++j)
            flight.waiters.push_back(loadCommand(r));
        in_flight_.push_back(std::move(flight));
    }
    next_prefetch_id_ = r.u64();
    read_q_hwm_ = static_cast<std::size_t>(r.u64());
    write_q_hwm_ = static_cast<std::size_t>(r.u64());
    caq_hwm_ = static_cast<std::size_t>(r.u64());
    lpq_hwm_ = static_cast<std::size_t>(r.u64());
    demand_accepted_ = r.u64();
    demand_completed_ = r.u64();
    writes_issued_ = r.u64();
    reads_observed_.restore(r.u64());
    writes_observed_.restore(r.u64());
    buffer_hits_entry_.restore(r.u64());
    buffer_hits_caq_.restore(r.u64());
    prefetches_issued_.restore(r.u64());
    lpq_dropped_.restore(r.u64());
    regulars_delayed_.restore(r.u64());
    prefetch_conflict_events_.restore(r.u64());
    merged_with_prefetch_.restore(r.u64());
    prefetches_merged_useful_.restore(r.u64());
    lpq_promoted_.restore(r.u64());
    scheduler_->loadState(r);
}

void
MemoryController::registerStats(StatRegistry &registry,
                                const std::string &prefix) const
{
    registry.add(prefix + ".reads", reads_observed_);
    registry.add(prefix + ".writes", writes_observed_);
    registry.add(prefix + ".buffer_hits_entry", buffer_hits_entry_);
    registry.add(prefix + ".buffer_hits_caq", buffer_hits_caq_);
    registry.add(prefix + ".prefetches_issued", prefetches_issued_);
    registry.add(prefix + ".lpq_dropped", lpq_dropped_);
    registry.add(prefix + ".regulars_delayed", regulars_delayed_);
    registry.add(prefix + ".prefetch_conflict_events",
                 prefetch_conflict_events_);
    registry.add(prefix + ".merged_with_prefetch",
                 merged_with_prefetch_);
    registry.add(prefix + ".lpq_promoted", lpq_promoted_);
}

} // namespace asd
