#ifndef ASD_MC_SCHEDULER_HPP
#define ASD_MC_SCHEDULER_HPP

/**
 * @file
 * Reorder-queue schedulers: the stage that picks which command moves
 * from the read/write reorder queues into the Centralized Arbiter
 * Queue each cycle. Three variants from the paper's section 5.3:
 * in-order, memoryless, and an approximation of the Adaptive
 * History-Based (AHB) scheduler of Hur & Lin [9, 10].
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "dram/dram.hpp"
#include "mc/command.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** Which reorder-queue scheduler the memory controller uses. */
enum class SchedulerKind : std::uint8_t
{
    InOrder,
    Memoryless,
    Ahb,
    FrFcfs, //!< first-ready, first-come-first-served (row hits first)
};

/** A scheduler's choice: queue (read/write) and index within it. */
struct SchedulerPick
{
    bool from_write_queue = false;
    std::size_t index = 0;

    /**
     * False when the scheduler found nothing issuable and is only
     * reporting its preference (Memoryless with every bank busy). The
     * controller leaves a not-ready pick in its reorder queue instead
     * of moving it into the FIFO CAQ, where it would block younger
     * ready commands behind a busy bank.
     */
    bool ready = true;
};

/**
 * Strategy interface for reorder-queue arbitration. Implementations
 * are stateless or keep only their own history; the memory controller
 * owns the queues.
 */
class ReorderScheduler
{
  public:
    virtual ~ReorderScheduler() = default;

    /**
     * Choose the next command to forward to the CAQ.
     * @param drain_writes the controller's write-drain watermark
     *        machinery wants the write queue emptied; schedulers
     *        should prioritize writes while it is set.
     * @return std::nullopt when both queues are empty.
     */
    virtual std::optional<SchedulerPick>
    pick(const std::deque<McCommand> &reads,
         const std::deque<McCommand> &writes, const Dram &dram,
         Cycle now, bool drain_writes) = 0;

    /** Inform the scheduler that its last pick was forwarded. */
    virtual void
    notifyIssued(const McCommand &cmd, const Dram &dram)
    {
        (void)cmd;
        (void)dram;
    }

    /**
     * Checkpoint hooks. Most schedulers are stateless, so the default
     * writes and reads nothing; AHB overrides to carry its issue
     * history across a save/restore.
     */
    virtual void
    saveState(SnapshotWriter &w) const
    {
        (void)w;
    }

    virtual void
    loadState(SnapshotReader &r)
    {
        (void)r;
    }
};

/** Strict arrival order across both queues. */
class InOrderScheduler : public ReorderScheduler
{
  public:
    std::optional<SchedulerPick>
    pick(const std::deque<McCommand> &reads,
         const std::deque<McCommand> &writes, const Dram &dram,
         Cycle now, bool drain_writes) override;
};

/**
 * Bank-aware but history-free: prefers the oldest command whose bank
 * can accept a command now, reads before writes. When nothing is
 * issuable the oldest command overall is returned tagged not-ready so
 * the controller keeps it schedulable instead of parking it in the
 * CAQ against a busy bank.
 */
class MemorylessScheduler : public ReorderScheduler
{
  public:
    std::optional<SchedulerPick>
    pick(const std::deque<McCommand> &reads,
         const std::deque<McCommand> &writes, const Dram &dram,
         Cycle now, bool drain_writes) override;
};

/**
 * Approximation of the Adaptive History-Based scheduler: scores each
 * candidate by expected bank-conflict cost against recently issued
 * commands, read/write switch cost, and queue-pressure balance, then
 * picks the cheapest (oldest on ties). Costs are integer fixed-point
 * in 1/8-cycle units so equal-cost ties compare exactly — the
 * floating-point form relied on `double == double`, which is fragile
 * the moment a cost term stops being a multiple of 1/8.
 */
class AhbScheduler : public ReorderScheduler
{
  public:
    std::optional<SchedulerPick>
    pick(const std::deque<McCommand> &reads,
         const std::deque<McCommand> &writes, const Dram &dram,
         Cycle now, bool drain_writes) override;

    void notifyIssued(const McCommand &cmd, const Dram &dram) override;

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct HistoryEntry
    {
        std::uint32_t bank = 0;
        bool is_write = false;
    };

    std::int64_t cost(const McCommand &cmd, const Dram &dram,
                      Cycle now, bool drain_writes) const;

    static constexpr std::size_t kHistoryDepth = 4;
    std::deque<HistoryEntry> history_;
};

/**
 * First-ready FCFS (Rixner et al.): among commands whose bank can
 * accept a column command to the currently open row (row hits), pick
 * the oldest; otherwise the oldest ready command; otherwise the
 * oldest overall. The classic throughput-oriented baseline between
 * in-order and history-based scheduling.
 */
class FrFcfsScheduler : public ReorderScheduler
{
  public:
    std::optional<SchedulerPick>
    pick(const std::deque<McCommand> &reads,
         const std::deque<McCommand> &writes, const Dram &dram,
         Cycle now, bool drain_writes) override;
};

/** Factory for the configured scheduler kind. */
std::unique_ptr<ReorderScheduler> makeScheduler(SchedulerKind kind);

} // namespace asd

#endif // ASD_MC_SCHEDULER_HPP
