#ifndef ASD_MC_COMMAND_HPP
#define ASD_MC_COMMAND_HPP

/**
 * @file
 * Memory-controller command records shared by the reorder queues, the
 * CAQ, the LPQ and the schedulers.
 */

#include <cstdint>

#include "common/types.hpp"

namespace asd
{

/** One command travelling through the memory controller. */
struct McCommand
{
    LineAddr line = 0;

    /** Identifier the owner uses to match read completions. */
    std::uint64_t id = 0;

    /** Hardware thread that produced the command. */
    std::uint32_t thread = 0;

    /** Cycle the command entered the memory controller. */
    Cycle enqueued_at = 0;

    bool is_write = false;

    /** Memory-side prefetch (LPQ path). */
    bool is_prefetch = false;

    /** Set once the command was delayed by an in-flight prefetch. */
    bool delayed_by_prefetch = false;
};

} // namespace asd

#endif // ASD_MC_COMMAND_HPP
