#include "mc/scheduler.hpp"

#include "common/log.hpp"

namespace asd
{

namespace
{

/** Oldest command across both queues (fronts are the oldest). */
std::optional<SchedulerPick>
oldestOverall(const std::deque<McCommand> &reads,
              const std::deque<McCommand> &writes)
{
    if (reads.empty() && writes.empty())
        return std::nullopt;
    if (writes.empty())
        return SchedulerPick{false, 0};
    if (reads.empty())
        return SchedulerPick{true, 0};
    return reads.front().enqueued_at <= writes.front().enqueued_at
               ? SchedulerPick{false, 0}
               : SchedulerPick{true, 0};
}

} // namespace

std::optional<SchedulerPick>
InOrderScheduler::pick(const std::deque<McCommand> &reads,
                       const std::deque<McCommand> &writes,
                       const Dram &dram, Cycle now, bool drain_writes)
{
    (void)dram;
    (void)now;
    (void)drain_writes; // strict age order regardless of pressure
    return oldestOverall(reads, writes);
}

std::optional<SchedulerPick>
MemorylessScheduler::pick(const std::deque<McCommand> &reads,
                          const std::deque<McCommand> &writes,
                          const Dram &dram, Cycle now,
                          bool drain_writes)
{
    // Reads first normally; writes first while draining.
    if (drain_writes) {
        for (std::size_t i = 0; i < writes.size(); ++i)
            if (dram.canIssue(writes[i].line, now))
                return SchedulerPick{true, i};
    }
    for (std::size_t i = 0; i < reads.size(); ++i)
        if (dram.canIssue(reads[i].line, now))
            return SchedulerPick{false, i};
    for (std::size_t i = 0; i < writes.size(); ++i)
        if (dram.canIssue(writes[i].line, now))
            return SchedulerPick{true, i};

    // Nothing issuable: report the oldest command as a preference but
    // tag it not-ready; the controller must not move it to the CAQ.
    auto fallback = oldestOverall(reads, writes);
    if (fallback)
        fallback->ready = false;
    return fallback;
}

std::int64_t
AhbScheduler::cost(const McCommand &cmd, const Dram &dram, Cycle now,
                   bool drain_writes) const
{
    // Fixed-point: 1 unit = 1/8 cycle. Same ordering as the previous
    // floating-point form (whose terms were all multiples of 1/8),
    // with ties exact by construction.
    std::int64_t cost = 0;

    // Expected wait until the command's bank is free.
    const Cycle ready = dram.bankReadyAt(cmd.line);
    if (ready > now)
        cost += static_cast<std::int64_t>(ready - now);

    // Bank reuse against recent history causes row cycling; penalize.
    const DramCoord coord = dram.decode(cmd.line);
    for (const auto &hist : history_)
        if (hist.bank == coord.bank)
            cost += 4 * 8;

    // Read/write bus turnaround.
    if (!history_.empty() && history_.back().is_write != cmd.is_write)
        cost += 1 * 8;

    // Reads carry latency; deprioritize writes unless the
    // controller's watermark machinery wants the write queue drained.
    if (cmd.is_write && !drain_writes)
        cost += 2 * 8;

    return cost;
}

std::optional<SchedulerPick>
AhbScheduler::pick(const std::deque<McCommand> &reads,
                   const std::deque<McCommand> &writes, const Dram &dram,
                   Cycle now, bool drain_writes)
{
    if (reads.empty() && writes.empty())
        return std::nullopt;

    std::optional<SchedulerPick> best;
    std::int64_t best_cost = 0;
    Cycle best_age = 0;

    auto consider = [&](const McCommand &cmd, bool from_write,
                        std::size_t index) {
        const std::int64_t c = cost(cmd, dram, now, drain_writes);
        if (!best || c < best_cost ||
            (c == best_cost && cmd.enqueued_at < best_age)) {
            best = SchedulerPick{from_write, index};
            best_cost = c;
            best_age = cmd.enqueued_at;
        }
    };

    for (std::size_t i = 0; i < reads.size(); ++i)
        consider(reads[i], false, i);
    for (std::size_t i = 0; i < writes.size(); ++i)
        consider(writes[i], true, i);
    return best;
}

void
AhbScheduler::notifyIssued(const McCommand &cmd, const Dram &dram)
{
    history_.push_back({dram.decode(cmd.line).bank, cmd.is_write});
    if (history_.size() > kHistoryDepth)
        history_.pop_front();
}

void
AhbScheduler::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(history_.size()));
    for (const HistoryEntry &entry : history_) {
        w.u32(entry.bank);
        w.b(entry.is_write);
    }
}

void
AhbScheduler::loadState(SnapshotReader &r)
{
    const std::uint32_t count = r.u32();
    SnapshotReader::check(count <= kHistoryDepth,
                          "AHB history longer than its depth");
    history_.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
        HistoryEntry entry;
        entry.bank = r.u32();
        entry.is_write = r.b();
        history_.push_back(entry);
    }
}

std::optional<SchedulerPick>
FrFcfsScheduler::pick(const std::deque<McCommand> &reads,
                      const std::deque<McCommand> &writes,
                      const Dram &dram, Cycle now, bool drain_writes)
{
    std::optional<SchedulerPick> best;
    int best_class = -1; // ready row hit > ready > queued (+drain)
    Cycle best_age = 0;

    auto consider = [&](const McCommand &cmd, bool from_write,
                        std::size_t index) {
        const bool ready = dram.canIssue(cmd.line, now);
        int cls = ready ? (dram.rowOpen(cmd.line) ? 4 : 2) : 0;
        if (drain_writes && from_write)
            cls += 1;
        if (cls > best_class ||
            (cls == best_class && cmd.enqueued_at < best_age)) {
            best = SchedulerPick{from_write, index};
            best_class = cls;
            best_age = cmd.enqueued_at;
        }
    };
    for (std::size_t i = 0; i < reads.size(); ++i)
        consider(reads[i], false, i);
    for (std::size_t i = 0; i < writes.size(); ++i)
        consider(writes[i], true, i);
    return best;
}

std::unique_ptr<ReorderScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::InOrder:
        return std::make_unique<InOrderScheduler>();
      case SchedulerKind::Memoryless:
        return std::make_unique<MemorylessScheduler>();
      case SchedulerKind::Ahb:
        return std::make_unique<AhbScheduler>();
      case SchedulerKind::FrFcfs:
        return std::make_unique<FrFcfsScheduler>();
    }
    panic("unknown scheduler kind");
}

} // namespace asd
