#ifndef ASD_MC_PREFETCHER_IFACE_HPP
#define ASD_MC_PREFETCHER_IFACE_HPP

/**
 * @file
 * Interface between the memory controller and a memory-side
 * prefetcher. The ASD prefetcher (src/core) and the baseline MC-
 * resident prefetchers (next-line, P5-style; src/prefetch) implement
 * this, so Fig. 11's head-to-head comparison swaps implementations
 * without touching the controller.
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/**
 * Observer + policy provider for memory-side prefetching. All hooks
 * are called by the MemoryController; implementations must not call
 * back into it. Every implementation is checkpointable: a prefetcher
 * restored from a snapshot must continue bit-identically.
 */
class MemSidePrefetcher : public Snapshottable
{
  public:
    virtual ~MemSidePrefetcher() = default;

    /**
     * A demand read entered the controller (after the prefetch-buffer
     * entry check missed).
     * @return line addresses to prefetch, in issue order.
     */
    virtual std::vector<LineAddr> observeRead(LineAddr line,
                                              std::uint32_t thread,
                                              Cycle now) = 0;

    /** A write entered the controller (invalidate buffered copies). */
    virtual void observeWrite(LineAddr line, Cycle now) = 0;

    /**
     * Probe the prefetch buffer for a demand read; a hit consumes
     * (invalidates) the entry per the paper's buffer policy.
     * @retval true on hit: the controller squashes the DRAM access.
     */
    virtual bool lookupBuffer(LineAddr line) = 0;

    /** True when @p line is already buffered (no consume). */
    virtual bool bufferContains(LineAddr line) const = 0;

    /** Prefetched data returned from DRAM; install into the buffer. */
    virtual void fillBuffer(LineAddr line, Cycle now) = 0;

    /**
     * Current LPQ arbitration policy, 1 (most conservative) to 5
     * (least conservative); see the paper's section 3.5.
     */
    virtual int schedulingPolicy() const = 0;

    /**
     * A regular command was blocked this cycle by a bank busy with a
     * previously issued prefetch (Adaptive Scheduling feedback).
     */
    virtual void notifyPrefetchConflict(Cycle now) = 0;

    /** Per-CPU-cycle housekeeping (stream lifetimes, epochs). */
    virtual void tick(Cycle now) = 0;
};

} // namespace asd

#endif // ASD_MC_PREFETCHER_IFACE_HPP
