#ifndef ASD_MC_MEMORY_CONTROLLER_HPP
#define ASD_MC_MEMORY_CONTROLLER_HPP

/**
 * @file
 * The Power5+-like memory controller (paper Figs. 1 and 4): read and
 * write reorder queues, a scheduler that moves one command per cycle
 * into the FIFO Centralized Arbiter Queue (CAQ), and a Final Scheduler
 * that arbitrates between the CAQ and the prefetcher's Low Priority
 * Queue (LPQ) before DRAM.
 */

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/dram.hpp"
#include "mc/command.hpp"
#include "mc/prefetcher_iface.hpp"
#include "mc/scheduler.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** Queue depths and fixed latencies of the controller. */
struct McConfig
{
    std::size_t read_queue = 8;
    std::size_t write_queue = 8;
    std::size_t caq = 3;
    std::size_t lpq = 3;
    SchedulerKind scheduler = SchedulerKind::Ahb;

    /**
     * Command decode/forward overhead before DRAM (fabric crossing,
     * address translation, SMI). With DRAM timing this lands the
     * load-to-use memory latency near the Power5+'s ~200 CPU cycles.
     */
    Cycles command_overhead = 40;

    /** Data return path from DRAM to the requester (ECC, fill). */
    Cycles return_overhead = 40;

    /** Latency of a read satisfied from the Prefetch Buffer. */
    Cycles buffer_hit_latency = 40;

    /**
     * Write-drain watermarks: when the write reorder queue reaches
     * the high watermark the controller asks the scheduler to
     * prioritize writes until it falls to the low watermark
     * (hysteresis keeps the data bus from thrashing between read and
     * write bursts).
     */
    std::size_t write_drain_high = 6;
    std::size_t write_drain_low = 2;

    /**
     * Merge demand reads onto in-flight prefetches of the same line
     * (MSHR-style). The paper's controller does not do this — a late
     * prefetch is simply a useless DRAM read — so it defaults off;
     * it exists for the what-if ablation.
     */
    bool merge_inflight_prefetch = false;

    /**
     * Cancel a prefetch still waiting in the LPQ when the same line
     * arrives as a read (a 3-entry CAM check). Unlike the in-flight
     * merge this saves the wasted DRAM access before it happens;
     * enabled by default.
     */
    bool cancel_lpq_on_demand = true;
};

/**
 * The memory controller. Owners push reads/writes; read completions
 * are delivered through a callback with the id passed at enqueue.
 */
class MemoryController : public Snapshottable
{
  public:
    /** Called when a read's data is available: (id, completion cycle). */
    using ReadCallback =
        std::function<void(std::uint64_t id, Cycle done)>;

    MemoryController(const McConfig &config, Dram &dram,
                     ReadCallback on_read_done);

    /** Attach the memory-side prefetcher (may be null for NP/PS). */
    void attachPrefetcher(MemSidePrefetcher *prefetcher);

    /**
     * Arm or disarm the attached prefetcher. While disarmed the
     * controller behaves exactly as if no prefetcher were attached:
     * reads are not observed, the buffer is never probed, and the LPQ
     * stays empty. Warm-up phases run disarmed so the pre-boundary
     * machine state is independent of every prefetcher knob, which is
     * what makes warm-start snapshot reuse across ASD configurations
     * sound.
     */
    void setPrefetcherArmed(bool armed) { prefetcher_armed_ = armed; }
    bool prefetcherArmed() const { return prefetcher_armed_; }

    /** True when the read reorder queue can accept a command. */
    bool canAcceptRead() const;

    /** True when the write reorder queue can accept a command. */
    bool canAcceptWrite() const;

    /**
     * Submit a demand (or processor-side prefetch) read.
     * The Prefetch Buffer is probed first; on a hit the read is
     * squashed and completes after buffer_hit_latency.
     * @retval false when the read queue is full (caller must retry).
     */
    bool enqueueRead(LineAddr line, std::uint64_t id,
                     std::uint32_t thread, Cycle now);

    /**
     * Submit a write (L3 castout). Fire-and-forget.
     * @retval false when the write queue is full.
     */
    bool enqueueWrite(LineAddr line, Cycle now);

    /** Advance one CPU cycle. */
    void tick(Cycle now);

    /** True when no command is queued or in flight. */
    bool idle() const;

    /**
     * True when any tick could still make progress (includes pending
     * LPQ prefetches); gates the System's fast-forward optimization.
     */
    bool
    hasWork() const
    {
        return !idle() || !lpq_.empty();
    }

    /** Register counters under @p prefix. */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    // Accessors used by tests and the efficiency benches.
    std::uint64_t readsObserved() const { return reads_observed_.value(); }
    std::uint64_t writesObserved() const
    {
        return writes_observed_.value();
    }
    std::uint64_t bufferHits() const
    {
        return buffer_hits_entry_.value() + buffer_hits_caq_.value() +
               merged_with_prefetch_.value();
    }
    std::uint64_t mergedWithPrefetch() const
    {
        return merged_with_prefetch_.value();
    }
    std::uint64_t prefetchesMergedUseful() const
    {
        return prefetches_merged_useful_.value();
    }
    std::uint64_t prefetchesIssued() const
    {
        return prefetches_issued_.value();
    }
    std::uint64_t lpqDrops() const { return lpq_dropped_.value(); }
    std::uint64_t regularsDelayed() const
    {
        return regulars_delayed_.value();
    }
    std::size_t lpqOccupancy() const { return lpq_.size(); }
    std::size_t caqOccupancy() const { return caq_.size(); }
    std::size_t readQOccupancy() const { return read_q_.size(); }
    std::size_t writeQOccupancy() const { return write_q_.size(); }
    bool drainingWrites() const { return draining_writes_; }

    // Queue-occupancy high-water marks since the last reset, updated
    // on every enqueue (telemetry samples and resets them per epoch).
    std::size_t readQHighWater() const { return read_q_hwm_; }
    std::size_t writeQHighWater() const { return write_q_hwm_; }
    std::size_t caqHighWater() const { return caq_hwm_; }
    std::size_t lpqHighWater() const { return lpq_hwm_; }
    void resetQueueHighWater();

    /**
     * Checkpoint the queues, in-flight commands, scheduler history and
     * counters. The attached prefetcher snapshots itself separately
     * (it is owned by the System, not the controller).
     */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    struct InFlight
    {
        Cycle done = 0;
        McCommand cmd;
        bool touches_dram = true;

        /**
         * Demand reads merged onto this in-flight prefetch: their
         * completions fire when the prefetched data arrives (the
         * hardware equivalent of an MSHR hit on the prefetch
         * machine).
         */
        std::vector<McCommand> waiters;
    };

    /** Evaluate the paper's LPQ policy @p policy at @p now. */
    bool policyAllowsLpq(int policy, Cycle now) const;

    /** Push prefetch candidates produced by the prefetcher. */
    void pushPrefetches(const std::vector<LineAddr> &lines, Cycle now);

    bool prefetchInFlight(LineAddr line) const;
    bool inLpq(LineAddr line) const;

    /** Drop a pending LPQ prefetch for @p line, if any. */
    void cancelLpqEntry(LineAddr line);

    /**
     * Try to merge a demand read onto an in-flight prefetch of the
     * same line. @retval true when merged (completion will fire when
     * the prefetch data returns).
     */
    bool mergeWithPrefetch(const McCommand &cmd);

    void moveToCaq(Cycle now);
    void issueToDram(Cycle now);
    void completeFinished(Cycle now);

    /**
     * ASD_CHECK: capacity bounds, LPQ purity, and command
     * conservation — every accepted demand read is exactly one of
     * completed / queued / in the CAQ / in flight / riding a prefetch,
     * and every write is queued, in the CAQ, or issued.
     */
    void checkInvariants() const;

    /** The attached prefetcher, or nullptr while disarmed. */
    MemSidePrefetcher *
    activePrefetcher() const
    {
        return prefetcher_armed_ ? prefetcher_ : nullptr;
    }

    McConfig config_;
    Dram &dram_;
    // asdlint:allow(snapshot-field-coverage): completion callback is wiring, re-attached by the owning System after construction
    ReadCallback on_read_done_;
    std::unique_ptr<ReorderScheduler> scheduler_;
    MemSidePrefetcher *prefetcher_ = nullptr;
    // asdlint:allow(snapshot-field-coverage): persisted by System::saveState/loadState, which owns the warm-up arming policy
    bool prefetcher_armed_ = true;

    std::deque<McCommand> read_q_;
    std::deque<McCommand> write_q_;
    bool draining_writes_ = false;
    std::deque<McCommand> caq_;
    std::deque<McCommand> lpq_;
    std::vector<InFlight> in_flight_;
    std::uint64_t next_prefetch_id_ = 1ULL << 62;

    std::size_t read_q_hwm_ = 0;
    std::size_t write_q_hwm_ = 0;
    std::size_t caq_hwm_ = 0;
    std::size_t lpq_hwm_ = 0;

    // Conservation bookkeeping for checkInvariants(); maintained
    // unconditionally (three increments) so checks can be enabled
    // mid-run.
    std::uint64_t demand_accepted_ = 0;
    std::uint64_t demand_completed_ = 0;
    std::uint64_t writes_issued_ = 0;

    Counter reads_observed_;
    Counter writes_observed_;
    Counter buffer_hits_entry_;
    Counter buffer_hits_caq_;
    Counter prefetches_issued_;
    Counter lpq_dropped_;
    Counter regulars_delayed_;
    Counter prefetch_conflict_events_;
    Counter merged_with_prefetch_;
    Counter prefetches_merged_useful_; //!< prefetches with >=1 waiter
    Counter lpq_promoted_;
};

} // namespace asd

#endif // ASD_MC_MEMORY_CONTROLLER_HPP
