#ifndef ASD_TUNER_SHADOW_TUNER_HPP
#define ASD_TUNER_SHADOW_TUNER_HPP

/**
 * @file
 * Snapshot-forked shadow evaluation: at a phase boundary the live
 * machine is serialized once, then forked across a coordinate
 * neighborhood of candidate tunings. Each fork restores the identical
 * machine state, applies its candidate, and runs a short bounded
 * shadow simulation; candidates are scored by retired accesses over
 * the horizon (integer, descending) with DRAM traffic as the
 * tie-break. This is the experiment no real hardware can run — N
 * copies of the *same* moment evolved under N different
 * configurations — and it is exact rather than modeled because the
 * snapshot layer restores byte-identical machines.
 *
 * Shadows execute on a private worker pool, but outcomes are
 * collected per candidate index and the winner is chosen after all
 * forks complete, so the adopted sequence never depends on the
 * thread count.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/asd_config.hpp"
#include "runner/thread_pool.hpp"
#include "sim/system_config.hpp"
#include "sim/tuner_config.hpp"
#include "trace/trace_source.hpp"

namespace asd
{

class System;

/** One shadow fork's score. */
struct ShadowOutcome
{
    std::uint32_t candidate = 0; //!< index into ShadowVerdict::tunings

    /** Retired accesses when the shadow's horizon expired. */
    std::uint64_t accesses = 0;

    /** DRAM commands issued (reads + writes) — the tie-break. */
    std::uint64_t traffic = 0;

    /** Simulated cycles this shadow actually advanced. */
    std::uint64_t shadow_cycles = 0;

    /** False when the fork failed (never wins against valid forks). */
    bool valid = false;
};

/** Everything one decision's shadow evaluation produced. */
struct ShadowVerdict
{
    /** Candidate tunings evaluated; index 0 is the incumbent. */
    std::vector<AsdTuning> tunings;

    std::vector<ShadowOutcome> outcomes; //!< parallel to tunings

    /** Winning index (0 = keep the incumbent). */
    std::uint32_t winner = 0;

    /** Total simulated shadow cycles spent on this decision. */
    std::uint64_t shadow_cycles = 0;
};

/** Forks a live System across candidate tunings and picks a winner. */
class ShadowTuner
{
  public:
    /**
     * Fresh trace sources positioned at the start of the workload;
     * the snapshot restore rewinds them to the live machine's exact
     * position. Must be callable from worker threads.
     */
    using TraceFactory =
        std::function<std::vector<std::unique_ptr<TraceSource>>()>;

    /**
     * @param base_config the live machine's SystemConfig (telemetry
     *        included, so fork shapes match the snapshot's sections).
     */
    ShadowTuner(const TunerConfig &config,
                const SystemConfig &base_config, TraceFactory traces);

    /**
     * The coordinate neighborhood of @p current over the configured
     * TuneSpace: @p current itself first, then every candidate that
     * changes exactly one axis, deduplicated in axis order.
     */
    std::vector<AsdTuning> candidates(const AsdTuning &current) const;

    /**
     * Snapshot @p live and race the candidate forks over
     * [now, now + shadow_horizon]. @p current must be the tuning the
     * live machine is running (fork shapes depend on it).
     */
    ShadowVerdict evaluate(const System &live,
                           const AsdTuning &current);

  private:
    TunerConfig config_;
    SystemConfig base_config_;
    TraceFactory traces_;
    ThreadPool pool_;
};

} // namespace asd

#endif // ASD_TUNER_SHADOW_TUNER_HPP
