#ifndef ASD_TUNER_PHASE_DETECTOR_HPP
#define ASD_TUNER_PHASE_DETECTOR_HPP

/**
 * @file
 * Deterministic integer change-point detection over epoch-boundary
 * telemetry. The detector keeps a sliding window of per-epoch feature
 * vectors (all integers, derived from the raw EpochRecord counters —
 * never its floating-point convenience fields) and declares a phase
 * change when the newest epoch's features deviate from the window
 * mean by more than a configured relative threshold. Identical
 * telemetry always yields the identical phase sequence, which is what
 * makes the tuner's decision log reproducible.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/tuner_config.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/recorder.hpp"

namespace asd
{

/** Sliding-window change-point detector over epoch telemetry. */
class PhaseDetector : public Snapshottable
{
  public:
    explicit PhaseDetector(const TunerConfig &config);

    /**
     * Feed the completed epoch @p rec; true when it starts a new
     * phase. The first phase_window epochs seed the reference window
     * and never fire; after a change the window restarts from the
     * new regime, so consecutive boundaries are at least
     * phase_window + 1 epochs apart.
     */
    bool observe(const EpochRecord &rec);

    /** 0-based id of the phase the last observed epoch belongs to. */
    std::uint64_t phase() const { return phase_; }

    /** Epochs observed so far (for tests). */
    std::uint64_t epochsObserved() const { return observed_; }

    /**
     * The feature vector compared across epochs, all integer
     * milli-scaled rates so thresholds are workload-size independent:
     * prefetch accuracy, buffer coverage, suggestion and suppression
     * rates, DRAM row-hit ratio, and aggregate queue pressure.
     */
    static std::vector<std::int64_t> features(const EpochRecord &rec);

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    TunerConfig config_;
    std::deque<std::vector<std::int64_t>> window_;
    std::uint64_t phase_ = 0;
    std::uint64_t observed_ = 0;
};

} // namespace asd

#endif // ASD_TUNER_PHASE_DETECTOR_HPP
