#include "tuner/phase_detector.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace asd
{

namespace
{

/** value * 100000 / max(denom, 1) — a milli-percent ratio. */
std::int64_t
milliPct(std::uint64_t value, std::uint64_t denom)
{
    if (denom == 0)
        denom = 1;
    return static_cast<std::int64_t>(value * 100000 / denom);
}

} // namespace

PhaseDetector::PhaseDetector(const TunerConfig &config)
    : config_(config)
{
    if (config_.phase_window == 0)
        fatal("PhaseDetector: phase_window must be >= 1");
}

std::vector<std::int64_t>
PhaseDetector::features(const EpochRecord &rec)
{
    // Raw counters only: the EpochRecord's accuracy_pct/coverage_pct
    // doubles stay out of the decision path (integer-only scoring).
    const std::uint64_t queue_hwm =
        static_cast<std::uint64_t>(rec.read_q_hwm) +
        static_cast<std::uint64_t>(rec.write_q_hwm) +
        static_cast<std::uint64_t>(rec.caq_hwm) +
        static_cast<std::uint64_t>(rec.lpq_hwm);
    return {
        milliPct(rec.buffer_consumed, rec.prefetches_issued),
        milliPct(rec.buffer_hits, rec.reads),
        milliPct(rec.suggested, rec.reads),
        milliPct(rec.suppressed, rec.reads),
        milliPct(rec.dram_row_hits,
                 rec.dram_row_hits + rec.dram_row_misses),
        static_cast<std::int64_t>(queue_hwm * 1000),
    };
}

bool
PhaseDetector::observe(const EpochRecord &rec)
{
    ++observed_;
    std::vector<std::int64_t> feats = features(rec);

    bool changed = false;
    if (window_.size() >= config_.phase_window) {
        for (std::size_t i = 0; i < feats.size() && !changed; ++i) {
            std::int64_t sum = 0;
            for (const auto &past : window_)
                sum += past[i];
            const std::int64_t mean =
                sum / static_cast<std::int64_t>(window_.size());
            // Relative deviation in milli-percent of the window mean,
            // floored at 1000 (1%) so near-zero features cannot fire
            // on noise-sized absolute wiggles.
            const std::int64_t base =
                std::abs(mean) > 1000 ? std::abs(mean) : 1000;
            const std::int64_t dev =
                std::abs(feats[i] - mean) * 100000 / base;
            if (dev >
                static_cast<std::int64_t>(
                    config_.phase_threshold_milli_pct))
                changed = true;
        }
    }

    if (changed) {
        ++phase_;
        // Restart the reference window from the new regime.
        window_.clear();
    }
    window_.push_back(std::move(feats));
    while (window_.size() > config_.phase_window)
        window_.pop_front();
    return changed;
}

void
PhaseDetector::saveState(SnapshotWriter &w) const
{
    w.u64(phase_);
    w.u64(observed_);
    w.u64(window_.size());
    for (const auto &feats : window_) {
        w.u64(feats.size());
        for (const std::int64_t f : feats)
            w.i64(f);
    }
}

void
PhaseDetector::loadState(SnapshotReader &r)
{
    phase_ = r.u64();
    observed_ = r.u64();
    const std::uint64_t rows = r.u64();
    SnapshotReader::check(rows <= config_.phase_window,
                          "phase window larger than configured");
    window_.clear();
    for (std::uint64_t i = 0; i < rows; ++i) {
        const std::uint64_t cols = r.u64();
        SnapshotReader::check(cols <= 64,
                              "phase feature vector implausibly long");
        std::vector<std::int64_t> feats(cols);
        for (std::int64_t &f : feats)
            f = r.i64();
        window_.push_back(std::move(feats));
    }
}

} // namespace asd
