#ifndef ASD_TUNER_TUNER_RECORDER_HPP
#define ASD_TUNER_TUNER_RECORDER_HPP

/**
 * @file
 * Per-decision tuner telemetry: one TunerDecision per reconfiguration
 * point, carrying what the phase detector saw, how much shadow budget
 * the decision spent, what was adopted, and — once the live run has
 * advanced one shadow horizon past the decision — the realized
 * progress to hold against the winner's prediction. Every field is an
 * integer derived from deterministic simulation state, so the CSV and
 * JSON exports are byte-stable across runs and thread counts (the
 * determinism_diff --tuner mode pins this).
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/asd_config.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** One reconfiguration decision. */
struct TunerDecision
{
    std::uint64_t decision = 0; //!< 0-based decision index
    Cycle cycle = 0;            //!< cycle the reconfiguration applied
    std::uint64_t epoch = 0;    //!< epoch whose boundary triggered it
    std::uint64_t phase = 0;    //!< phase id entered

    std::uint32_t candidates = 0; //!< shadow forks evaluated
    std::uint64_t shadow_cycles = 0; //!< simulated cycles spent

    bool adopted_change = false; //!< false = incumbent kept
    AsdTuning adopted;           //!< tuning in force after the decision

    /** Retired accesses of the incumbent's shadow at the horizon. */
    std::uint64_t incumbent_shadow_accesses = 0;

    /** Retired accesses of the winner's shadow at the horizon. */
    std::uint64_t winner_shadow_accesses = 0;

    /** Live retired accesses when the decision applied. */
    std::uint64_t accesses_at_decision = 0;

    /** Live retired accesses one horizon later (realized_valid). */
    std::uint64_t realized_accesses = 0;
    bool realized_valid = false;
};

/** Accumulates decisions and exports them. */
class TunerRecorder : public Snapshottable
{
  public:
    /** Append @p decision (realized fields typically still unset). */
    void append(const TunerDecision &decision);

    /** Fill decision @p index's realized measurement. */
    void realize(std::uint64_t index, std::uint64_t accesses);

    const std::vector<TunerDecision> &decisions() const
    {
        return decisions_;
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    std::vector<TunerDecision> decisions_;
};

/** One row per decision; stable header first. */
void writeTunerCsv(const std::vector<TunerDecision> &decisions,
                   std::ostream &out);

/** Complete asdsim/tuner/v1 JSON document. */
std::string tunerJson(const std::vector<TunerDecision> &decisions);

// File helpers: create parent directories, write, flush.
// @retval false on any I/O failure (after warn()).
bool saveTunerCsv(const std::vector<TunerDecision> &decisions,
                  const std::string &path);
bool saveTunerJson(const std::vector<TunerDecision> &decisions,
                   const std::string &path);

} // namespace asd

#endif // ASD_TUNER_TUNER_RECORDER_HPP
