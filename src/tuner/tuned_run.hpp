#ifndef ASD_TUNER_TUNED_RUN_HPP
#define ASD_TUNER_TUNED_RUN_HPP

/**
 * @file
 * The online phase-adaptive reconfiguration loop: one TunedRun wraps
 * one live System and closes the control loop
 *
 *     telemetry epoch -> PhaseDetector -> (phase change?)
 *         -> snapshot + ShadowTuner fork race -> adopt winner
 *         -> AsdPrefetcher::applyTuning on the live machine
 *
 * Decisions are *detected* at epoch boundaries (inside the machine's
 * tick) but *applied* at the top of the next runUntil iteration via
 * the System loop hook — a clean cycle boundary that a checkpointed
 * run resumes at exactly, so tuned runs checkpoint/restore
 * byte-identically. One shadow horizon after each decision the
 * realized live progress is recorded against the winner's prediction
 * (TunerDecision::realized_accesses).
 *
 * Requirements: the memory-side prefetcher must be ASD (epochs and
 * the apply-path are ASD notions) and the run is single-threaded
 * (no SMT). Telemetry is forced on internally — the recorder only
 * reads the machine, so results are unchanged — but the caller's
 * RunOptions are reported unmodified.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/synthetic.hpp"
#include "tuner/phase_detector.hpp"
#include "tuner/shadow_tuner.hpp"
#include "tuner/tuner_recorder.hpp"
#include "workloads/profiles.hpp"
#include "workloads/tenant_mix.hpp"

namespace asd
{

/** Everything a finished tuned run produced. */
struct TunedRunResult
{
    RunMetrics metrics;
    std::vector<EpochRecord> epochs;
    std::vector<TunerDecision> decisions;
};

/** One benchmark run under the phase-adaptive tuner. */
class TunedRun
{
  public:
    /**
     * @p options.tuner.enabled must be set; fatal() otherwise.
     * @p total_accesses pins the exact trace length (snapshot
     *    restore); 0 derives it from options/ASD_BENCH_SCALE.
     */
    TunedRun(const Benchmark &bench, const RunOptions &options,
             std::uint64_t total_accesses = 0);

    /** Run to completion and report. */
    TunedRunResult run();

    /** Advance to @p target (kNoCycle = completion); resumable. */
    void runUntil(Cycle target);

    TunedRunResult result() const;

    System &system() { return *system_; }
    const System &system() const { return *system_; }

    const TunerRecorder &recorder() const { return recorder_; }

    /**
     * Serialize controller state (a "tun" section: adopted tuning,
     * phase detector, decision log, pending work) followed by the
     * live machine's sections. finish()/config-hash handling belongs
     * to the caller, as with System::saveSnapshot.
     */
    void saveSnapshot(SnapshotWriter &w) const;

    /**
     * Restore a tuned checkpoint. Reads the "tun" section first to
     * learn the tuning adopted before the save, rebuilds the live
     * machine in that shape, then restores it — the same two-step
     * the shadow forks use. The TunedRun must have been constructed
     * from the identical benchmark and options.
     */
    void loadSnapshot(SnapshotReader &r);

  private:
    void buildSystem(const AsdTuning &tuning);
    void installHooks();
    void onEpochEnd(Cycle now);
    void onLoopTop(Cycle now);
    void decide(Cycle now);
    std::uint64_t liveAccesses() const;

    Benchmark bench_;
    RunOptions options_;
    SystemConfig sys_config_; //!< telemetry forced on
    SyntheticConfig trace_config_;

    /**
     * The live trace source: a plain SyntheticTraceGenerator, or a
     * TenantMixSource when options.tenants.enabled (the shadow forks
     * build matching sources and restore them from the live
     * snapshot, so tenant mixes tune like any other workload).
     */
    std::unique_ptr<TraceSource> trace_;
    std::unique_ptr<System> system_;
    std::unique_ptr<ShadowTuner> shadow_;
    PhaseDetector detector_;
    TunerRecorder recorder_;

    AsdTuning current_;

    // Controller state (snapshotted in the "tun" section).
    bool pending_decision_ = false;
    std::uint64_t pending_epoch_ = 0;
    std::uint64_t pending_phase_ = 0;
    std::uint64_t epochs_since_decision_ = 0;
    std::uint64_t decisions_made_ = 0;

    /** Decisions awaiting their realized measurement. */
    struct PendingRealize
    {
        std::uint64_t decision = 0;
        Cycle due = 0;
    };
    std::deque<PendingRealize> realize_queue_;
};

} // namespace asd

#endif // ASD_TUNER_TUNED_RUN_HPP
