#include "tuner/shadow_tuner.hpp"

#include <algorithm>
#include <exception>

#include "common/log.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

namespace
{

/** Apply the policy-axis encoding: 0 = adaptive walk, 1..5 = pin. */
AsdTuning
withPolicy(const AsdTuning &base, std::uint32_t policy)
{
    AsdTuning t = base;
    if (policy == 0) {
        t.sched.adaptive = true;
    } else {
        t.sched.adaptive = false;
        t.sched.fixed_policy = static_cast<int>(policy);
    }
    return t;
}

void
pushUnique(std::vector<AsdTuning> &out, const AsdTuning &t)
{
    if (std::find(out.begin(), out.end(), t) == out.end())
        out.push_back(t);
}

} // namespace

ShadowTuner::ShadowTuner(const TunerConfig &config,
                         const SystemConfig &base_config,
                         TraceFactory traces)
    : config_(config),
      base_config_(base_config),
      traces_(std::move(traces)),
      pool_(config.shadow_threads != 0 ? config.shadow_threads
                                       : defaultThreadCount())
{
    // Shadows must never recurse into their own tuner.
    base_config_.tuner.enabled = false;
    for (const std::uint32_t p : config_.space.policies)
        if (p > 5)
            fatal("ShadowTuner: policy axis value " +
                  std::to_string(p) + " out of range (0..5)");
}

std::vector<AsdTuning>
ShadowTuner::candidates(const AsdTuning &current) const
{
    std::vector<AsdTuning> out;
    out.push_back(current); // index 0: the incumbent
    for (const std::uint32_t v : config_.space.degrees) {
        AsdTuning t = current;
        t.max_degree = v;
        pushUnique(out, t);
    }
    for (const std::uint32_t v : config_.space.filter_slots) {
        AsdTuning t = current;
        t.filter_slots = v;
        pushUnique(out, t);
    }
    for (const std::uint32_t v : config_.space.buffer_lines) {
        AsdTuning t = current;
        t.buffer_lines = v;
        pushUnique(out, t);
    }
    for (const std::uint32_t v : config_.space.epoch_reads) {
        AsdTuning t = current;
        t.epoch_reads = v;
        pushUnique(out, t);
    }
    for (const std::uint32_t v : config_.space.policies)
        pushUnique(out, withPolicy(current, v));
    return out;
}

ShadowVerdict
ShadowTuner::evaluate(const System &live, const AsdTuning &current)
{
    ShadowVerdict verdict;
    verdict.tunings = candidates(current);
    const std::size_t n = verdict.tunings.size();
    verdict.outcomes.assign(n, ShadowOutcome{});

    const Cycle start = live.nowCycle();
    SnapshotWriter writer;
    live.saveSnapshot(writer);
    // Forks check shapes structurally; no config hash to bind.
    const std::vector<std::uint8_t> bytes = writer.finish(0);

    for (std::size_t i = 0; i < n; ++i) {
        pool_.submit([this, &verdict, &bytes, &current, start,
                      i](unsigned) {
            ShadowOutcome out;
            out.candidate = static_cast<std::uint32_t>(i);
            try {
                const auto traces = traces_();
                std::vector<TraceSource *> ptrs;
                ptrs.reserve(traces.size());
                for (const auto &t : traces)
                    ptrs.push_back(t.get());

                // The fork is built in the live machine's shape (the
                // *current* tuning), restored, then retuned — the
                // same apply-path the live machine would take.
                SystemConfig config = base_config_;
                config.asd = withTuning(config.asd, current);
                System shadow(config, ptrs);
                SnapshotReader reader(bytes);
                shadow.loadSnapshot(reader);
                if (!shadow.asd())
                    throw SnapshotError("shadow has no ASD prefetcher");
                shadow.asd()->applyTuning(verdict.tunings[i]);
                shadow.runUntil(start + config_.shadow_horizon);

                const RunMetrics metrics = shadow.collectMetrics();
                out.accesses = metrics.accesses;
                out.traffic = metrics.mc_reads + metrics.mc_writes;
                out.shadow_cycles = shadow.nowCycle() - start;
                out.valid = true;
            } catch (const std::exception &) {
                // A failed fork scores zero and cannot win.
                out.accesses = 0;
                out.traffic = 0;
                out.shadow_cycles = 0;
                out.valid = false;
            }
            verdict.outcomes[i] = out; // distinct slots; no race
        });
    }
    pool_.wait();

    bool have = false;
    for (std::size_t i = 0; i < n; ++i) {
        const ShadowOutcome &o = verdict.outcomes[i];
        if (!o.valid)
            continue;
        verdict.shadow_cycles += o.shadow_cycles;
        if (!have) {
            verdict.winner = static_cast<std::uint32_t>(i);
            have = true;
            continue;
        }
        const ShadowOutcome &b = verdict.outcomes[verdict.winner];
        if (o.accesses > b.accesses ||
            (o.accesses == b.accesses && o.traffic < b.traffic))
            verdict.winner = static_cast<std::uint32_t>(i);
    }
    return verdict;
}

} // namespace asd
