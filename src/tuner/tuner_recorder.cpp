#include "tuner/tuner_recorder.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"

namespace asd
{

namespace
{

/** CSV/JSON policy encoding, matching the TuneSpace policy axis. */
std::uint32_t
policyCode(const AsdTuning &t)
{
    return t.sched.adaptive
               ? 0
               : static_cast<std::uint32_t>(t.sched.fixed_policy);
}

bool
saveString(const std::string &text, const std::string &path,
           const char *what)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    std::ofstream out(path);
    if (!out) {
        warn("cannot open " + std::string(what) + " file: " + path);
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        warn("write failed for " + std::string(what) +
             " file: " + path);
        return false;
    }
    return true;
}

} // namespace

void
TunerRecorder::append(const TunerDecision &decision)
{
    decisions_.push_back(decision);
}

void
TunerRecorder::realize(std::uint64_t index, std::uint64_t accesses)
{
    if (index >= decisions_.size()) {
        warn("TunerRecorder: realize() for unknown decision " +
             std::to_string(index));
        return;
    }
    decisions_[index].realized_accesses = accesses;
    decisions_[index].realized_valid = true;
}

void
TunerRecorder::saveState(SnapshotWriter &w) const
{
    w.u64(decisions_.size());
    for (const TunerDecision &d : decisions_) {
        w.u64(d.decision);
        w.u64(d.cycle);
        w.u64(d.epoch);
        w.u64(d.phase);
        w.u32(d.candidates);
        w.u64(d.shadow_cycles);
        w.b(d.adopted_change);
        w.u32(d.adopted.max_degree);
        w.u32(d.adopted.epoch_reads);
        w.u32(d.adopted.filter_slots);
        w.u32(d.adopted.buffer_lines);
        w.b(d.adopted.sched.adaptive);
        w.i64(d.adopted.sched.fixed_policy);
        w.i64(d.adopted.sched.start_policy);
        w.u32(d.adopted.sched.high_watermark);
        w.u32(d.adopted.sched.low_watermark);
        w.u64(d.incumbent_shadow_accesses);
        w.u64(d.winner_shadow_accesses);
        w.u64(d.accesses_at_decision);
        w.u64(d.realized_accesses);
        w.b(d.realized_valid);
    }
}

void
TunerRecorder::loadState(SnapshotReader &r)
{
    const std::uint64_t count = r.u64();
    SnapshotReader::check(count <= (1u << 20),
                          "tuner decision log implausibly long");
    decisions_.clear();
    decisions_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TunerDecision d;
        d.decision = r.u64();
        d.cycle = r.u64();
        d.epoch = r.u64();
        d.phase = r.u64();
        d.candidates = r.u32();
        d.shadow_cycles = r.u64();
        d.adopted_change = r.b();
        d.adopted.max_degree = r.u32();
        d.adopted.epoch_reads = r.u32();
        d.adopted.filter_slots = r.u32();
        d.adopted.buffer_lines = r.u32();
        d.adopted.sched.adaptive = r.b();
        d.adopted.sched.fixed_policy = static_cast<int>(r.i64());
        d.adopted.sched.start_policy = static_cast<int>(r.i64());
        d.adopted.sched.high_watermark = r.u32();
        d.adopted.sched.low_watermark = r.u32();
        d.incumbent_shadow_accesses = r.u64();
        d.winner_shadow_accesses = r.u64();
        d.accesses_at_decision = r.u64();
        d.realized_accesses = r.u64();
        d.realized_valid = r.b();
        decisions_.push_back(d);
    }
}

void
writeTunerCsv(const std::vector<TunerDecision> &decisions,
              std::ostream &out)
{
    out << "decision,cycle,epoch,phase,candidates,shadow_cycles,"
           "adopted_change,degree,epoch_reads,filter_slots,"
           "buffer_lines,policy,incumbent_shadow_accesses,"
           "winner_shadow_accesses,accesses_at_decision,"
           "realized_accesses,realized_valid\n";
    for (const TunerDecision &d : decisions) {
        out << d.decision << ',' << d.cycle << ',' << d.epoch << ','
            << d.phase << ',' << d.candidates << ','
            << d.shadow_cycles << ',' << (d.adopted_change ? 1 : 0)
            << ',' << d.adopted.max_degree << ','
            << d.adopted.epoch_reads << ','
            << d.adopted.filter_slots << ','
            << d.adopted.buffer_lines << ','
            << policyCode(d.adopted) << ','
            << d.incumbent_shadow_accesses << ','
            << d.winner_shadow_accesses << ','
            << d.accesses_at_decision << ',' << d.realized_accesses
            << ',' << (d.realized_valid ? 1 : 0) << '\n';
    }
}

std::string
tunerJson(const std::vector<TunerDecision> &decisions)
{
    JsonWriter w;
    w.beginObject();
    w.key("format").value("asdsim/tuner/v1");
    w.key("decisions").beginArray();
    for (const TunerDecision &d : decisions) {
        w.beginObject();
        w.key("decision").value(d.decision);
        w.key("cycle").value(d.cycle);
        w.key("epoch").value(d.epoch);
        w.key("phase").value(d.phase);
        w.key("candidates").value(
            static_cast<std::uint64_t>(d.candidates));
        w.key("shadow_cycles").value(d.shadow_cycles);
        w.key("adopted_change").value(d.adopted_change);
        w.key("adopted").beginObject();
        w.key("degree").value(
            static_cast<std::uint64_t>(d.adopted.max_degree));
        w.key("epoch_reads").value(
            static_cast<std::uint64_t>(d.adopted.epoch_reads));
        w.key("filter_slots").value(
            static_cast<std::uint64_t>(d.adopted.filter_slots));
        w.key("buffer_lines").value(
            static_cast<std::uint64_t>(d.adopted.buffer_lines));
        w.key("policy").value(
            static_cast<std::uint64_t>(policyCode(d.adopted)));
        w.endObject();
        w.key("incumbent_shadow_accesses")
            .value(d.incumbent_shadow_accesses);
        w.key("winner_shadow_accesses")
            .value(d.winner_shadow_accesses);
        w.key("accesses_at_decision").value(d.accesses_at_decision);
        w.key("realized_accesses").value(d.realized_accesses);
        w.key("realized_valid").value(d.realized_valid);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
saveTunerCsv(const std::vector<TunerDecision> &decisions,
             const std::string &path)
{
    std::ostringstream out;
    writeTunerCsv(decisions, out);
    return saveString(out.str(), path, "tuner CSV");
}

bool
saveTunerJson(const std::vector<TunerDecision> &decisions,
              const std::string &path)
{
    return saveString(tunerJson(decisions), path, "tuner JSON");
}

} // namespace asd
