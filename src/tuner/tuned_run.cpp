#include "tuner/tuned_run.hpp"

#include <utility>

#include "common/log.hpp"

namespace asd
{

TunedRun::TunedRun(const Benchmark &bench, const RunOptions &options,
                   std::uint64_t total_accesses)
    : bench_(bench), options_(options), detector_(options.tuner)
{
    if (!options_.tuner.enabled)
        fatal("TunedRun: options.tuner.enabled must be set");
    if (options_.mode != PrefetchMode::MS &&
        options_.mode != PrefetchMode::PMS)
        fatal("TunedRun: tuning needs a memory-side prefetcher "
              "(mode MS or PMS)");
    if (options_.mc_prefetcher != McPrefetcherKind::Asd)
        fatal("TunedRun: the tuner reconfigures ASD; "
              "--mc-prefetcher must be asd");

    sys_config_ = makeSystemConfig(options_);
    // The controller reads phases off epoch telemetry, so force the
    // recorder on (it only observes — results are unchanged) and
    // uncapped; SLH capture would be dead weight unless asked for.
    if (!sys_config_.telemetry.enabled) {
        sys_config_.telemetry.enabled = true;
        sys_config_.telemetry.capture_slh = false;
    }
    sys_config_.telemetry.max_epochs = 0;

    trace_config_ = bench_.trace;
    trace_config_.total_accesses =
        total_accesses != 0 ? total_accesses
                            : scaledAccesses(bench_, options_);

    current_ = tuningOf(sys_config_.asd);
    buildSystem(current_);

    const SyntheticConfig trace_config = trace_config_;
    const TenantMixConfig tenants = options_.tenants;
    shadow_ = std::make_unique<ShadowTuner>(
        options_.tuner, sys_config_, [trace_config, tenants]() {
            std::vector<std::unique_ptr<TraceSource>> traces;
            if (tenants.enabled) {
                traces.push_back(std::make_unique<TenantMixSource>(
                    tenants, trace_config,
                    trace_config.total_accesses));
            } else {
                traces.push_back(
                    std::make_unique<SyntheticTraceGenerator>(
                        trace_config));
            }
            return traces;
        });
}

void
TunedRun::buildSystem(const AsdTuning &tuning)
{
    if (options_.tenants.enabled) {
        trace_ = std::make_unique<TenantMixSource>(
            options_.tenants, trace_config_,
            trace_config_.total_accesses);
    } else {
        trace_ =
            std::make_unique<SyntheticTraceGenerator>(trace_config_);
    }
    SystemConfig config = sys_config_;
    config.asd = withTuning(config.asd, tuning);
    system_ = std::make_unique<System>(
        config, std::vector<TraceSource *>{trace_.get()});
    if (!system_->asd())
        fatal("TunedRun: system has no ASD prefetcher to tune");
    if (options_.tenants.enabled) {
        const auto *mix =
            static_cast<const TenantMixSource *>(trace_.get());
        system_->setTenantProbe([mix]() {
            TenantTelemetrySample sample;
            sample.arrivals = mix->arrivals();
            sample.departures = mix->departures();
            return sample;
        });
    }
    installHooks();
}

void
TunedRun::installHooks()
{
    system_->setEpochEndHook(
        [this](Cycle now) { onEpochEnd(now); });
    system_->setLoopHook([this](Cycle now) { onLoopTop(now); });
}

void
TunedRun::onEpochEnd(Cycle now)
{
    (void)now;
    const TelemetryRecorder *telemetry = system_->telemetry();
    if (!telemetry || telemetry->records().empty())
        return;
    const EpochRecord &rec = telemetry->records().back();
    const bool changed = detector_.observe(rec);
    ++epochs_since_decision_;
    if (!changed || pending_decision_)
        return;
    if (epochs_since_decision_ < options_.tuner.min_epochs_between)
        return;
    if (options_.tuner.max_decisions != 0 &&
        decisions_made_ >= options_.tuner.max_decisions)
        return;
    // Detected mid-tick; applied at the next loop-top boundary.
    pending_decision_ = true;
    pending_epoch_ = rec.epoch;
    pending_phase_ = detector_.phase();
}

void
TunedRun::onLoopTop(Cycle now)
{
    while (!realize_queue_.empty() &&
           now >= realize_queue_.front().due) {
        recorder_.realize(realize_queue_.front().decision,
                          liveAccesses());
        realize_queue_.pop_front();
    }
    if (pending_decision_) {
        pending_decision_ = false;
        decide(now);
    }
}

void
TunedRun::decide(Cycle now)
{
    const ShadowVerdict verdict =
        shadow_->evaluate(*system_, current_);
    const AsdTuning &winner = verdict.tunings[verdict.winner];

    TunerDecision d;
    d.decision = decisions_made_;
    d.cycle = now;
    d.epoch = pending_epoch_;
    d.phase = pending_phase_;
    d.candidates =
        static_cast<std::uint32_t>(verdict.tunings.size());
    d.shadow_cycles = verdict.shadow_cycles;
    d.adopted_change = winner != current_;
    d.adopted = winner;
    if (verdict.outcomes[0].valid)
        d.incumbent_shadow_accesses = verdict.outcomes[0].accesses;
    if (verdict.outcomes[verdict.winner].valid)
        d.winner_shadow_accesses =
            verdict.outcomes[verdict.winner].accesses;
    d.accesses_at_decision = liveAccesses();

    if (d.adopted_change) {
        system_->asd()->applyTuning(winner);
        current_ = winner;
    }
    recorder_.append(d);
    realize_queue_.push_back(
        {d.decision, now + options_.tuner.shadow_horizon});
    ++decisions_made_;
    epochs_since_decision_ = 0;
}

std::uint64_t
TunedRun::liveAccesses() const
{
    return system_->collectMetrics().accesses;
}

void
TunedRun::runUntil(Cycle target)
{
    system_->runUntil(target);
}

TunedRunResult
TunedRun::run()
{
    runUntil(kNoCycle);
    return result();
}

TunedRunResult
TunedRun::result() const
{
    TunedRunResult res;
    res.metrics = system_->collectMetrics();
    if (options_.tenants.enabled) {
        const auto *mix =
            static_cast<const TenantMixSource *>(trace_.get());
        res.metrics.tenants_enabled = true;
        res.metrics.tenant_arrivals = mix->arrivals();
        res.metrics.tenant_departures = mix->departures();
        res.metrics.tenant_active = mix->activeTenants();
    }
    if (system_->telemetry())
        res.epochs = system_->telemetry()->records();
    res.decisions = recorder_.decisions();
    return res;
}

void
TunedRun::saveSnapshot(SnapshotWriter &w) const
{
    w.beginSection("tun");
    w.u32(current_.max_degree);
    w.u32(current_.epoch_reads);
    w.u32(current_.filter_slots);
    w.u32(current_.buffer_lines);
    w.b(current_.sched.adaptive);
    w.i64(current_.sched.fixed_policy);
    w.i64(current_.sched.start_policy);
    w.u32(current_.sched.high_watermark);
    w.u32(current_.sched.low_watermark);
    w.b(pending_decision_);
    w.u64(pending_epoch_);
    w.u64(pending_phase_);
    w.u64(epochs_since_decision_);
    w.u64(decisions_made_);
    w.u64(realize_queue_.size());
    for (const PendingRealize &p : realize_queue_) {
        w.u64(p.decision);
        w.u64(p.due);
    }
    detector_.saveState(w);
    recorder_.saveState(w);
    w.endSection();
    system_->saveSnapshot(w);
}

void
TunedRun::loadSnapshot(SnapshotReader &r)
{
    r.openSection("tun");
    AsdTuning t;
    t.max_degree = r.u32();
    t.epoch_reads = r.u32();
    t.filter_slots = r.u32();
    t.buffer_lines = r.u32();
    t.sched.adaptive = r.b();
    t.sched.fixed_policy = static_cast<int>(r.i64());
    t.sched.start_policy = static_cast<int>(r.i64());
    t.sched.high_watermark = r.u32();
    t.sched.low_watermark = r.u32();
    pending_decision_ = r.b();
    pending_epoch_ = r.u64();
    pending_phase_ = r.u64();
    epochs_since_decision_ = r.u64();
    decisions_made_ = r.u64();
    const std::uint64_t pending = r.u64();
    SnapshotReader::check(pending <= (1u << 20),
                          "realize queue implausibly long");
    realize_queue_.clear();
    for (std::uint64_t i = 0; i < pending; ++i) {
        PendingRealize p;
        p.decision = r.u64();
        p.due = r.u64();
        realize_queue_.push_back(p);
    }
    detector_.loadState(r);
    recorder_.loadState(r);
    r.endSection();

    // Rebuild the live machine in the adopted shape, then restore
    // into it — shapes now match the snapshot's sections.
    current_ = t;
    buildSystem(current_);
    system_->loadSnapshot(r);
}

} // namespace asd
