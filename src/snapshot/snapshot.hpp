#ifndef ASD_SNAPSHOT_SNAPSHOT_HPP
#define ASD_SNAPSHOT_SNAPSHOT_HPP

/**
 * @file
 * Versioned, deterministic binary checkpoint format ("asdsnap/v1")
 * plus the Snapshottable interface every stateful simulator component
 * implements. A snapshot file is:
 *
 *   magic "asdsnap\0" | u32 format version | u64 config hash |
 *   u32 section count | sections...
 *
 * and each section is:
 *
 *   u32 name length | name bytes | u64 payload length |
 *   u32 CRC32(payload) | payload bytes
 *
 * All integers are little-endian. Sections are written in a fixed
 * order by the producer, so saving, restoring, and saving again
 * yields byte-identical files — the round-trip identity the snapshot
 * tests pin. The config hash binds a snapshot to the machine
 * configuration that produced it; readers reject mismatches instead
 * of silently restoring into a differently-shaped machine.
 *
 * Format evolution policy: any change to the header, the section
 * framing, or any section's payload layout bumps
 * kSnapshotFormatVersion; readers accept exactly one version. There
 * is no cross-version migration — snapshots are cheap to regenerate.
 */

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace asd
{

/**
 * Current (and only accepted) snapshot format version.
 * v2: RunOptions metadata grew the GHB correlation mode and the
 * phase-adaptive tuner block; GHB state grew delta-correlation
 * fields; tuned runs add a "tun" section.
 * v3: OS memory model + multi-tenant engine. The CPU's pending
 * access grew the address-space id, RunOptions metadata grew the
 * VM walker kind plus the "os"/"tenants" blocks, telemetry epochs
 * grew OS/tenant columns, and OS-enabled machines add an "os"
 * section.
 */
inline constexpr std::uint32_t kSnapshotFormatVersion = 3;

/**
 * Any way a snapshot can be unusable: truncated or corrupt bytes,
 * wrong magic, unsupported format version, CRC mismatch, missing
 * section, or a config hash that does not match the restoring
 * machine. Thrown by SnapshotReader; callers either surface it
 * (asdsim_cli fatals) or fall back to a cold start (warm-start
 * sweeps).
 */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of @p size bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** FNV-1a 64-bit hash of @p text (used for config hashes). */
std::uint64_t fnv1a64(std::string_view text);

/**
 * Serializes primitive values into named sections and assembles the
 * final snapshot image. Usage: beginSection/primitives/endSection per
 * component, then finish(config_hash) exactly once.
 */
class SnapshotWriter
{
  public:
    /** Open a new section; panics on nesting or duplicate names. */
    void beginSection(std::string_view name);

    /** Close the currently open section. */
    void endSection();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void b(bool v);
    void str(std::string_view v);
    void vecU64(const std::vector<std::uint64_t> &v);

    /** Assemble the snapshot image. No further writes afterwards. */
    std::vector<std::uint8_t> finish(std::uint64_t config_hash);

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> sections_;
    bool open_ = false;
    bool finished_ = false;
};

/**
 * Parses and validates a snapshot image up front (magic, version,
 * framing, every section CRC), then serves bounds-checked primitive
 * reads from one open section at a time. Every malformed input throws
 * SnapshotError with a message naming what was wrong.
 */
class SnapshotReader
{
  public:
    /** Parse @p bytes; throws SnapshotError on any defect. */
    explicit SnapshotReader(std::vector<std::uint8_t> bytes);

    /** Config hash recorded in the header. */
    std::uint64_t configHash() const { return config_hash_; }

    /** Throw unless the header hash equals @p expected. */
    void requireConfigHash(std::uint64_t expected) const;

    bool hasSection(std::string_view name) const;

    /** Position the read cursor at the start of section @p name. */
    void openSection(std::string_view name);

    /** Close the section; throws if payload bytes remain unread. */
    void endSection();

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool b();
    std::string str();
    std::vector<std::uint64_t> vecU64();

    /** Throw SnapshotError(@p what) unless @p ok (shape checks). */
    static void check(bool ok, const std::string &what);

  private:
    struct Section
    {
        std::string name;
        std::size_t offset = 0; //!< payload start within bytes_
        std::size_t size = 0;
    };

    const Section *find(std::string_view name) const;
    void need(std::size_t n);

    std::vector<std::uint8_t> bytes_;
    std::vector<Section> sections_;
    std::uint64_t config_hash_ = 0;
    std::string open_name_;
    std::size_t cursor_ = 0;
    std::size_t end_ = 0;
    bool open_ = false;
};

/** Write @p bytes to @p path; throws SnapshotError on I/O failure. */
void writeSnapshotFile(const std::string &path,
                       const std::vector<std::uint8_t> &bytes);

/** Read @p path fully; throws SnapshotError on I/O failure. */
std::vector<std::uint8_t> readSnapshotFile(const std::string &path);

/**
 * Save/restore contract implemented by every stateful component.
 * saveState() writes the component's complete dynamic state (never
 * configuration — that is re-derived from the config the restoring
 * machine was built with) as a flat primitive stream; loadState()
 * reads back exactly the same stream into a freshly constructed
 * component of the same configuration. Unordered containers are
 * serialized in sorted key order so save -> load -> save is
 * byte-identical.
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    virtual void saveState(SnapshotWriter &w) const = 0;
    virtual void loadState(SnapshotReader &r) = 0;
};

} // namespace asd

#endif // ASD_SNAPSHOT_SNAPSHOT_HPP
