#include "snapshot/snapshot.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>

#include "common/log.hpp"

namespace asd
{

namespace
{

constexpr std::array<char, 8> kMagic = {'a', 's', 'd', 's',
                                        'n', 'a', 'p', '\0'};

std::array<std::uint32_t, 256>
buildCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table =
        buildCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

// --- SnapshotWriter ------------------------------------------------

void
SnapshotWriter::beginSection(std::string_view name)
{
    panicIfNot(!finished_, "SnapshotWriter: write after finish()");
    panicIfNot(!open_, "SnapshotWriter: nested beginSection");
    for (const Section &section : sections_)
        panicIfNot(section.name != name,
                   "SnapshotWriter: duplicate section name");
    sections_.push_back({std::string(name), {}});
    open_ = true;
}

void
SnapshotWriter::endSection()
{
    panicIfNot(open_, "SnapshotWriter: endSection without begin");
    open_ = false;
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    panicIfNot(open_, "SnapshotWriter: write outside a section");
    sections_.back().payload.push_back(v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    panicIfNot(open_, "SnapshotWriter: write outside a section");
    putU32(sections_.back().payload, v);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    panicIfNot(open_, "SnapshotWriter: write outside a section");
    putU64(sections_.back().payload, v);
}

void
SnapshotWriter::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
SnapshotWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
SnapshotWriter::b(bool v)
{
    u8(v ? 1 : 0);
}

void
SnapshotWriter::str(std::string_view v)
{
    u32(static_cast<std::uint32_t>(v.size()));
    panicIfNot(open_, "SnapshotWriter: write outside a section");
    std::vector<std::uint8_t> &payload = sections_.back().payload;
    for (const char c : v)
        payload.push_back(static_cast<std::uint8_t>(c));
}

void
SnapshotWriter::vecU64(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (const std::uint64_t value : v)
        u64(value);
}

std::vector<std::uint8_t>
SnapshotWriter::finish(std::uint64_t config_hash)
{
    panicIfNot(!open_, "SnapshotWriter: finish with open section");
    panicIfNot(!finished_, "SnapshotWriter: double finish");
    finished_ = true;

    std::vector<std::uint8_t> out;
    for (const char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    putU32(out, kSnapshotFormatVersion);
    putU64(out, config_hash);
    putU32(out, static_cast<std::uint32_t>(sections_.size()));
    for (const Section &section : sections_) {
        putU32(out, static_cast<std::uint32_t>(section.name.size()));
        for (const char c : section.name)
            out.push_back(static_cast<std::uint8_t>(c));
        putU64(out, section.payload.size());
        putU32(out, crc32(section.payload.data(),
                          section.payload.size()));
        out.insert(out.end(), section.payload.begin(),
                   section.payload.end());
    }
    return out;
}

// --- SnapshotReader ------------------------------------------------

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes))
{
    // Parse with a local cursor; primitive reads reuse the member
    // cursor only after openSection().
    std::size_t pos = 0;
    const auto take = [&](std::size_t n, const char *what) {
        if (pos + n > bytes_.size() || pos + n < pos)
            throw SnapshotError(std::string("snapshot truncated in ") +
                                what);
        pos += n;
        return pos - n;
    };
    const auto takeU32 = [&](const char *what) {
        const std::size_t at = take(4, what);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) |
                bytes_[at + static_cast<std::size_t>(i)];
        return v;
    };
    const auto takeU64 = [&](const char *what) {
        const std::size_t at = take(8, what);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) |
                bytes_[at + static_cast<std::size_t>(i)];
        return v;
    };

    const std::size_t magic_at = take(kMagic.size(), "magic");
    for (std::size_t i = 0; i < kMagic.size(); ++i) {
        if (bytes_[magic_at + i] !=
            static_cast<std::uint8_t>(kMagic[i]))
            throw SnapshotError(
                "not a snapshot: bad magic (expected asdsnap)");
    }
    const std::uint32_t version = takeU32("format version");
    if (version != kSnapshotFormatVersion)
        throw SnapshotError(
            "unsupported snapshot format version " +
            std::to_string(version) + " (this build reads v" +
            std::to_string(kSnapshotFormatVersion) + ")");
    config_hash_ = takeU64("config hash");
    const std::uint32_t count = takeU32("section count");

    for (std::uint32_t s = 0; s < count; ++s) {
        const std::uint32_t name_len = takeU32("section name length");
        const std::size_t name_at = take(name_len, "section name");
        Section section;
        section.name.assign(
            reinterpret_cast<const char *>(bytes_.data() + name_at),
            name_len);
        const std::uint64_t payload_len =
            takeU64("section payload length");
        const std::uint32_t stored_crc = takeU32("section CRC");
        section.size = static_cast<std::size_t>(payload_len);
        section.offset =
            take(section.size, section.name.empty()
                                   ? "section payload"
                                   : section.name.c_str());
        const std::uint32_t actual_crc =
            crc32(bytes_.data() + section.offset, section.size);
        if (actual_crc != stored_crc)
            throw SnapshotError("snapshot section \"" + section.name +
                                "\" is corrupt (CRC mismatch)");
        if (find(section.name) != nullptr)
            throw SnapshotError("snapshot has duplicate section \"" +
                                section.name + "\"");
        sections_.push_back(std::move(section));
    }
    if (pos != bytes_.size())
        throw SnapshotError("snapshot has trailing garbage after "
                            "the last section");
}

void
SnapshotReader::requireConfigHash(std::uint64_t expected) const
{
    if (config_hash_ != expected) {
        char text[64];
        std::snprintf(text, sizeof(text),
                      "%016llx, expected %016llx",
                      static_cast<unsigned long long>(config_hash_),
                      static_cast<unsigned long long>(expected));
        throw SnapshotError(
            std::string("snapshot config hash mismatch: snapshot "
                        "was taken under ") +
            text);
    }
}

const SnapshotReader::Section *
SnapshotReader::find(std::string_view name) const
{
    for (const Section &section : sections_) {
        if (section.name == name)
            return &section;
    }
    return nullptr;
}

bool
SnapshotReader::hasSection(std::string_view name) const
{
    return find(name) != nullptr;
}

void
SnapshotReader::openSection(std::string_view name)
{
    panicIfNot(!open_, "SnapshotReader: nested openSection");
    const Section *section = find(name);
    if (!section)
        throw SnapshotError("snapshot is missing section \"" +
                            std::string(name) + "\"");
    open_name_ = section->name;
    cursor_ = section->offset;
    end_ = section->offset + section->size;
    open_ = true;
}

void
SnapshotReader::endSection()
{
    panicIfNot(open_, "SnapshotReader: endSection without open");
    if (cursor_ != end_)
        throw SnapshotError(
            "snapshot section \"" + open_name_ + "\" has " +
            std::to_string(end_ - cursor_) +
            " unread trailing bytes (layout mismatch)");
    open_ = false;
}

void
SnapshotReader::need(std::size_t n)
{
    panicIfNot(open_, "SnapshotReader: read outside a section");
    if (cursor_ + n > end_)
        throw SnapshotError("snapshot section \"" + open_name_ +
                            "\" is too short (layout mismatch)");
}

std::uint8_t
SnapshotReader::u8()
{
    need(1);
    return bytes_[cursor_++];
}

std::uint32_t
SnapshotReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | bytes_[cursor_ + static_cast<std::size_t>(i)];
    cursor_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes_[cursor_ + static_cast<std::size_t>(i)];
    cursor_ += 8;
    return v;
}

std::int64_t
SnapshotReader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
SnapshotReader::f64()
{
    return std::bit_cast<double>(u64());
}

bool
SnapshotReader::b()
{
    const std::uint8_t v = u8();
    if (v > 1)
        throw SnapshotError("snapshot section \"" + open_name_ +
                            "\" has a malformed bool");
    return v != 0;
}

std::string
SnapshotReader::str()
{
    const std::uint32_t len = u32();
    need(len);
    std::string v(
        reinterpret_cast<const char *>(bytes_.data() + cursor_), len);
    cursor_ += len;
    return v;
}

std::vector<std::uint64_t>
SnapshotReader::vecU64()
{
    const std::uint64_t count = u64();
    // An 8-byte-per-element lower bound rejects absurd counts before
    // any allocation.
    if (count > (end_ - cursor_) / 8)
        throw SnapshotError("snapshot section \"" + open_name_ +
                            "\" has an oversized array");
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        v.push_back(u64());
    return v;
}

void
SnapshotReader::check(bool ok, const std::string &what)
{
    if (!ok)
        throw SnapshotError(what);
}

// --- Files ---------------------------------------------------------

void
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw SnapshotError("cannot open snapshot file for writing: " +
                            path);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        throw SnapshotError("short write to snapshot file: " + path);
}

std::vector<std::uint8_t>
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw SnapshotError("cannot open snapshot file: " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        throw SnapshotError("short read from snapshot file: " + path);
    return bytes;
}

} // namespace asd
