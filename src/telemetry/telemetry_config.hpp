#ifndef ASD_TELEMETRY_TELEMETRY_CONFIG_HPP
#define ASD_TELEMETRY_TELEMETRY_CONFIG_HPP

/**
 * @file
 * Configuration of the per-epoch telemetry recorder. Kept tiny and
 * header-only so SystemConfig/RunOptions can embed it without pulling
 * the recorder into every translation unit.
 */

#include <cstddef>

namespace asd
{

/** Knobs of the per-epoch time-series recorder (off by default). */
struct TelemetryConfig
{
    /**
     * Master switch. Off (the default) means the recorder is never
     * constructed and the simulation is byte-identical to a build
     * without the telemetry layer.
     */
    bool enabled = false;

    /**
     * Include per-thread LHTcurr snapshots (both directions) in each
     * epoch record — the general form of AsdPrefetcher's SLH history.
     * Costs 2 * threads * Lm words per epoch.
     */
    bool capture_slh = true;

    /**
     * Stop recording after this many epochs (memory safety valve for
     * very long runs); 0 = unlimited.
     */
    std::size_t max_epochs = 0;
};

} // namespace asd

#endif // ASD_TELEMETRY_TELEMETRY_CONFIG_HPP
