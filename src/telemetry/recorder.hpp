#ifndef ASD_TELEMETRY_RECORDER_HPP
#define ASD_TELEMETRY_RECORDER_HPP

/**
 * @file
 * Per-epoch telemetry: the paper's claims are all *per-epoch*
 * dynamics — the SLH adapting (Fig. 2), the Adaptive Scheduler
 * walking its five policies, accuracy/coverage trading off
 * (Figs. 10-11) — so the recorder samples every counter the epoch
 * machinery touches at each AsdPrefetcher epoch boundary and turns
 * them into one EpochRecord of deltas. sim::System installs it via
 * AsdPrefetcher::setEpochEndHook; it only reads (plus resetting the
 * controller's queue high-water marks), so an enabled recorder never
 * changes simulation results.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "core/asd_prefetcher.hpp"
#include "dram/dram.hpp"
#include "mc/memory_controller.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry_config.hpp"

namespace asd
{

/** One thread's LHTcurr snapshot inside an epoch record. */
struct EpochLht
{
    std::uint32_t thread = 0;
    std::vector<std::uint64_t> positive; //!< stream-count lht()
    std::vector<std::uint64_t> negative;
};

/** Everything one epoch did, as deltas over the epoch. */
struct EpochRecord
{
    std::uint64_t epoch = 0; //!< 1-based, == epochsCompleted()
    Cycle start_cycle = 0;   //!< previous boundary (0 for epoch 1)
    Cycle end_cycle = 0;     //!< cycle of this boundary

    // ASD decision path.
    std::uint64_t reads = 0;     //!< MC reads observed this epoch
    std::uint64_t suggested = 0; //!< prefetch candidates emitted
    std::uint64_t suppressed = 0;
    std::uint64_t overflow_reads = 0;
    std::uint64_t stream_merges = 0;
    std::uint64_t lht_underflow_clamps = 0;

    // Prefetch datapath.
    std::uint64_t prefetches_issued = 0;
    std::uint64_t buffer_hits = 0;
    std::uint64_t buffer_consumed = 0;
    std::uint64_t merged_useful = 0;
    std::uint64_t lpq_dropped = 0;

    // Adaptive Scheduling feedback.
    int policy = 0; //!< policy in force entering the *next* epoch
    std::uint64_t conflicts = 0; //!< prefetch-conflict notifications
    std::uint64_t regulars_delayed = 0;

    // Memory substrate.
    std::uint64_t dram_row_hits = 0;
    std::uint64_t dram_row_misses = 0; //!< bank conflicts (row cycles)

    // Queue-occupancy high-water marks over the epoch.
    std::size_t read_q_hwm = 0;
    std::size_t write_q_hwm = 0;
    std::size_t caq_hwm = 0;
    std::size_t lpq_hwm = 0;

    /**
     * Per-epoch accuracy/coverage, mirroring RunMetrics'
     * useful_prefetch_pct / coverage_pct definitions but over this
     * epoch's deltas (0 when the denominator is 0).
     */
    double accuracy_pct = 0.0;
    double coverage_pct = 0.0;

    // OS memory model (all zero when the OS model is off); lets the
    // phase detector see OS-induced phase changes.
    std::uint64_t os_minor_faults = 0;
    std::uint64_t os_major_faults = 0;
    std::uint64_t os_reclaims = 0;
    std::uint64_t os_writebacks = 0;
    std::uint64_t os_shootdowns = 0;

    // Multi-tenant scenario engine (zero when off).
    std::uint64_t tenant_arrivals = 0;
    std::uint64_t tenant_departures = 0;

    /** Per-thread LHTcurr snapshots (TelemetryConfig::capture_slh). */
    std::vector<EpochLht> slh;
};

/** Cumulative OS-model counters, as sampled by the OS probe. */
struct OsTelemetrySample
{
    std::uint64_t minor_faults = 0;
    std::uint64_t major_faults = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t shootdowns = 0;
};

/** Cumulative tenant counters, as sampled by the tenant probe. */
struct TenantTelemetrySample
{
    std::uint64_t arrivals = 0;
    std::uint64_t departures = 0;
};

/** The recorder; one per System, driven by the epoch-end hook. */
class TelemetryRecorder : public Snapshottable
{
  public:
    /**
     * All references must outlive the recorder. The controller is
     * mutable only to read-and-reset its queue high-water marks.
     */
    TelemetryRecorder(const TelemetryConfig &config,
                      const AsdPrefetcher &asd, MemoryController &mc,
                      const Dram &dram);

    /** Epoch boundary at @p now: append one EpochRecord. */
    void onEpochEnd(Cycle now);

    /**
     * Re-anchor the delta baseline at @p now. The System calls this
     * when the prefetcher is armed after a warm-up phase so epoch 1's
     * deltas exclude warm-up activity — with or without a snapshot in
     * between, both paths rebaseline at the same boundary cycle and
     * record identical epochs.
     */
    void rebaseline(Cycle now);

    /**
     * Install the OS-counter sampler (the telemetry layer sits below
     * the OS layer, so the System injects a closure instead of the
     * recorder reading the kernel directly). Install before the first
     * epoch completes; absent probe = all-zero columns.
     */
    void
    setOsProbe(std::function<OsTelemetrySample()> probe)
    {
        os_probe_ = std::move(probe);
    }

    /** Install the tenant-counter sampler; same contract as above. */
    void
    setTenantProbe(std::function<TenantTelemetrySample()> probe)
    {
        tenant_probe_ = std::move(probe);
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

    const std::vector<EpochRecord> &records() const
    {
        return records_;
    }

    const TelemetryConfig &config() const { return config_; }

  private:
    /** Counter values the next epoch's deltas are taken against. */
    struct Baseline
    {
        std::uint64_t reads = 0;
        std::uint64_t suggested = 0;
        std::uint64_t suppressed = 0;
        std::uint64_t overflow_reads = 0;
        std::uint64_t stream_merges = 0;
        std::uint64_t lht_underflow_clamps = 0;
        std::uint64_t prefetches_issued = 0;
        std::uint64_t buffer_hits = 0;
        std::uint64_t buffer_consumed = 0;
        std::uint64_t merged_useful = 0;
        std::uint64_t lpq_dropped = 0;
        std::uint64_t conflicts = 0;
        std::uint64_t regulars_delayed = 0;
        std::uint64_t dram_row_hits = 0;
        std::uint64_t dram_row_misses = 0;
        std::uint64_t os_minor_faults = 0;
        std::uint64_t os_major_faults = 0;
        std::uint64_t os_reclaims = 0;
        std::uint64_t os_writebacks = 0;
        std::uint64_t os_shootdowns = 0;
        std::uint64_t tenant_arrivals = 0;
        std::uint64_t tenant_departures = 0;
        Cycle cycle = 0;
    };

    Baseline sampleCounters() const;

    TelemetryConfig config_;
    const AsdPrefetcher &asd_;
    MemoryController &mc_;
    const Dram &dram_;
    // asdlint:allow(snapshot-field-coverage): wiring installed by the System; the sampled values live in baseline_
    std::function<OsTelemetrySample()> os_probe_;
    // asdlint:allow(snapshot-field-coverage): see os_probe_
    std::function<TenantTelemetrySample()> tenant_probe_;

    Baseline baseline_;
    std::vector<EpochRecord> records_;
    bool capped_ = false;
};

} // namespace asd

#endif // ASD_TELEMETRY_RECORDER_HPP
