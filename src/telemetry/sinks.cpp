#include "telemetry/sinks.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/json.hpp"
#include "common/log.hpp"

namespace asd
{

namespace
{

std::string
pct(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", value);
    return buf;
}

/** Emit the scalar fields shared by the JSON and trace exporters. */
void
writeScalarMembers(JsonWriter &w, const EpochRecord &rec)
{
    w.key("reads").value(rec.reads);
    w.key("suggested").value(rec.suggested);
    w.key("suppressed").value(rec.suppressed);
    w.key("overflow_reads").value(rec.overflow_reads);
    w.key("stream_merges").value(rec.stream_merges);
    w.key("lht_underflow_clamps").value(rec.lht_underflow_clamps);
    w.key("prefetches_issued").value(rec.prefetches_issued);
    w.key("buffer_hits").value(rec.buffer_hits);
    w.key("buffer_consumed").value(rec.buffer_consumed);
    w.key("merged_useful").value(rec.merged_useful);
    w.key("lpq_dropped").value(rec.lpq_dropped);
    w.key("accuracy_pct").value(rec.accuracy_pct);
    w.key("coverage_pct").value(rec.coverage_pct);
    w.key("policy").value(rec.policy);
    w.key("conflicts").value(rec.conflicts);
    w.key("regulars_delayed").value(rec.regulars_delayed);
    w.key("dram_row_hits").value(rec.dram_row_hits);
    w.key("dram_row_misses").value(rec.dram_row_misses);
    w.key("read_q_hwm").value(
        static_cast<std::uint64_t>(rec.read_q_hwm));
    w.key("write_q_hwm").value(
        static_cast<std::uint64_t>(rec.write_q_hwm));
    w.key("caq_hwm").value(static_cast<std::uint64_t>(rec.caq_hwm));
    w.key("lpq_hwm").value(static_cast<std::uint64_t>(rec.lpq_hwm));
    w.key("os_minor_faults").value(rec.os_minor_faults);
    w.key("os_major_faults").value(rec.os_major_faults);
    w.key("os_reclaims").value(rec.os_reclaims);
    w.key("os_writebacks").value(rec.os_writebacks);
    w.key("os_shootdowns").value(rec.os_shootdowns);
    w.key("tenant_arrivals").value(rec.tenant_arrivals);
    w.key("tenant_departures").value(rec.tenant_departures);
}

bool
saveString(const std::string &text, const std::string &path,
           const char *what)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    std::ofstream out(path);
    if (!out) {
        warn("cannot open " + std::string(what) + " file: " + path);
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        warn("write failed for " + std::string(what) + " file: " + path);
        return false;
    }
    return true;
}

} // namespace

void
writeTelemetryCsv(const std::vector<EpochRecord> &records,
                  std::ostream &out)
{
    out << "epoch,start_cycle,end_cycle,reads,suggested,suppressed,"
           "overflow_reads,stream_merges,lht_underflow_clamps,"
           "prefetches_issued,buffer_hits,buffer_consumed,"
           "merged_useful,lpq_dropped,accuracy_pct,coverage_pct,"
           "policy,conflicts,regulars_delayed,dram_row_hits,"
           "dram_row_misses,read_q_hwm,write_q_hwm,caq_hwm,lpq_hwm,"
           "os_minor_faults,os_major_faults,os_reclaims,"
           "os_writebacks,os_shootdowns,tenant_arrivals,"
           "tenant_departures\n";
    for (const auto &rec : records) {
        out << rec.epoch << ',' << rec.start_cycle << ','
            << rec.end_cycle << ',' << rec.reads << ','
            << rec.suggested << ',' << rec.suppressed << ','
            << rec.overflow_reads << ',' << rec.stream_merges << ','
            << rec.lht_underflow_clamps << ','
            << rec.prefetches_issued << ',' << rec.buffer_hits << ','
            << rec.buffer_consumed << ',' << rec.merged_useful << ','
            << rec.lpq_dropped << ',' << pct(rec.accuracy_pct) << ','
            << pct(rec.coverage_pct) << ',' << rec.policy << ','
            << rec.conflicts << ',' << rec.regulars_delayed << ','
            << rec.dram_row_hits << ',' << rec.dram_row_misses << ','
            << rec.read_q_hwm << ',' << rec.write_q_hwm << ','
            << rec.caq_hwm << ',' << rec.lpq_hwm << ','
            << rec.os_minor_faults << ',' << rec.os_major_faults
            << ',' << rec.os_reclaims << ',' << rec.os_writebacks
            << ',' << rec.os_shootdowns << ',' << rec.tenant_arrivals
            << ',' << rec.tenant_departures << '\n';
    }
}

std::string
telemetryJson(const std::vector<EpochRecord> &records)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("asdsim/telemetry/v1");
    w.key("epochs").beginArray();
    for (const auto &rec : records) {
        w.beginObject();
        w.key("epoch").value(rec.epoch);
        w.key("start_cycle").value(rec.start_cycle);
        w.key("end_cycle").value(rec.end_cycle);
        writeScalarMembers(w, rec);
        if (!rec.slh.empty()) {
            w.key("slh").beginArray();
            for (const auto &lht : rec.slh) {
                w.beginObject();
                w.key("thread").value(lht.thread);
                w.key("positive").beginArray();
                for (const auto count : lht.positive)
                    w.value(count);
                w.endArray();
                w.key("negative").beginArray();
                for (const auto count : lht.negative)
                    w.value(count);
                w.endArray();
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
telemetryChromeTrace(const std::vector<EpochRecord> &records)
{
    // Trace-event timestamps are microseconds; we map one simulated
    // cycle to one microsecond, which keeps the timeline proportional
    // and the numbers readable.
    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    for (const auto &rec : records) {
        const std::uint64_t ts = rec.start_cycle;
        const std::uint64_t dur =
            rec.end_cycle > rec.start_cycle
                ? rec.end_cycle - rec.start_cycle
                : 0;

        // One slice per epoch with the full record attached.
        w.beginObject();
        w.key("name").value("epoch " + std::to_string(rec.epoch));
        w.key("cat").value("epoch");
        w.key("ph").value("X");
        w.key("ts").value(ts);
        w.key("dur").value(dur);
        w.key("pid").value(1);
        w.key("tid").value(1);
        w.key("args").beginObject();
        writeScalarMembers(w, rec);
        w.endObject();
        w.endObject();

        // Counter tracks for the headline per-epoch series.
        const auto counter = [&w, ts](const char *name) -> JsonWriter & {
            w.beginObject();
            w.key("name").value(name);
            w.key("ph").value("C");
            w.key("ts").value(ts);
            w.key("pid").value(1);
            return w.key("args").beginObject();
        };
        counter("prefetch quality")
            .key("accuracy_pct")
            .value(rec.accuracy_pct)
            .key("coverage_pct")
            .value(rec.coverage_pct)
            .endObject()
            .endObject();
        counter("scheduler policy")
            .key("policy")
            .value(rec.policy)
            .endObject()
            .endObject();
        counter("queue high-water")
            .key("read_q")
            .value(static_cast<std::uint64_t>(rec.read_q_hwm))
            .key("write_q")
            .value(static_cast<std::uint64_t>(rec.write_q_hwm))
            .key("caq")
            .value(static_cast<std::uint64_t>(rec.caq_hwm))
            .key("lpq")
            .value(static_cast<std::uint64_t>(rec.lpq_hwm))
            .endObject()
            .endObject();
        counter("dram rows")
            .key("row_hits")
            .value(rec.dram_row_hits)
            .key("row_misses")
            .value(rec.dram_row_misses)
            .endObject()
            .endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
saveTelemetryCsv(const std::vector<EpochRecord> &records,
                 const std::string &path)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    std::ofstream out(path);
    if (!out) {
        warn("cannot open telemetry CSV file: " + path);
        return false;
    }
    writeTelemetryCsv(records, out);
    out.flush();
    if (!out) {
        warn("write failed for telemetry CSV file: " + path);
        return false;
    }
    return true;
}

bool
saveTelemetryJson(const std::vector<EpochRecord> &records,
                  const std::string &path)
{
    return saveString(telemetryJson(records), path, "telemetry JSON");
}

bool
saveTelemetryChromeTrace(const std::vector<EpochRecord> &records,
                         const std::string &path)
{
    return saveString(telemetryChromeTrace(records), path,
                      "telemetry trace");
}

} // namespace asd
