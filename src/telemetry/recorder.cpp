#include "telemetry/recorder.hpp"

namespace asd
{

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig &config,
                                     const AsdPrefetcher &asd,
                                     MemoryController &mc,
                                     const Dram &dram)
    : config_(config), asd_(asd), mc_(mc), dram_(dram)
{
    baseline_ = sampleCounters();
    // High-water marks accumulated before the first epoch belong to
    // epoch 1; leave them untouched.
}

TelemetryRecorder::Baseline
TelemetryRecorder::sampleCounters() const
{
    Baseline b;
    b.reads = mc_.readsObserved();
    b.suggested = asd_.suggested();
    b.suppressed = asd_.suppressed();
    b.overflow_reads = asd_.overflowReads();
    b.stream_merges = asd_.streamMerges();
    b.lht_underflow_clamps = asd_.lhtUnderflowClamps();
    b.prefetches_issued = mc_.prefetchesIssued();
    b.buffer_hits = mc_.bufferHits();
    b.buffer_consumed = asd_.buffer().consumed();
    b.merged_useful = mc_.prefetchesMergedUseful();
    b.lpq_dropped = mc_.lpqDrops();
    b.conflicts = asd_.scheduler().totalConflicts();
    b.regulars_delayed = mc_.regularsDelayed();
    b.dram_row_hits = dram_.rowHits();
    b.dram_row_misses = dram_.rowMisses();
    if (os_probe_) {
        const OsTelemetrySample os = os_probe_();
        b.os_minor_faults = os.minor_faults;
        b.os_major_faults = os.major_faults;
        b.os_reclaims = os.reclaims;
        b.os_writebacks = os.writebacks;
        b.os_shootdowns = os.shootdowns;
    }
    if (tenant_probe_) {
        const TenantTelemetrySample tenants = tenant_probe_();
        b.tenant_arrivals = tenants.arrivals;
        b.tenant_departures = tenants.departures;
    }
    return b;
}

void
TelemetryRecorder::onEpochEnd(Cycle now)
{
    if (!config_.enabled || capped_)
        return;
    if (config_.max_epochs > 0 &&
        records_.size() >= config_.max_epochs) {
        capped_ = true;
        return;
    }

    const Baseline sample = sampleCounters();
    EpochRecord rec;
    rec.epoch = asd_.epochsCompleted();
    rec.start_cycle = baseline_.cycle;
    rec.end_cycle = now;

    rec.reads = sample.reads - baseline_.reads;
    rec.suggested = sample.suggested - baseline_.suggested;
    rec.suppressed = sample.suppressed - baseline_.suppressed;
    rec.overflow_reads =
        sample.overflow_reads - baseline_.overflow_reads;
    rec.stream_merges = sample.stream_merges - baseline_.stream_merges;
    rec.lht_underflow_clamps =
        sample.lht_underflow_clamps - baseline_.lht_underflow_clamps;

    rec.prefetches_issued =
        sample.prefetches_issued - baseline_.prefetches_issued;
    rec.buffer_hits = sample.buffer_hits - baseline_.buffer_hits;
    rec.buffer_consumed =
        sample.buffer_consumed - baseline_.buffer_consumed;
    rec.merged_useful = sample.merged_useful - baseline_.merged_useful;
    rec.lpq_dropped = sample.lpq_dropped - baseline_.lpq_dropped;

    // The hook fires after AdaptiveScheduler::epochEnd(), so policy()
    // is the (possibly stepped) policy entering the next epoch — the
    // value the paper's Fig. 13-style timelines plot.
    rec.policy = asd_.scheduler().policy();
    rec.conflicts = sample.conflicts - baseline_.conflicts;
    rec.regulars_delayed =
        sample.regulars_delayed - baseline_.regulars_delayed;

    rec.dram_row_hits = sample.dram_row_hits - baseline_.dram_row_hits;
    rec.dram_row_misses =
        sample.dram_row_misses - baseline_.dram_row_misses;

    rec.os_minor_faults =
        sample.os_minor_faults - baseline_.os_minor_faults;
    rec.os_major_faults =
        sample.os_major_faults - baseline_.os_major_faults;
    rec.os_reclaims = sample.os_reclaims - baseline_.os_reclaims;
    rec.os_writebacks = sample.os_writebacks - baseline_.os_writebacks;
    rec.os_shootdowns = sample.os_shootdowns - baseline_.os_shootdowns;
    rec.tenant_arrivals =
        sample.tenant_arrivals - baseline_.tenant_arrivals;
    rec.tenant_departures =
        sample.tenant_departures - baseline_.tenant_departures;

    rec.read_q_hwm = mc_.readQHighWater();
    rec.write_q_hwm = mc_.writeQHighWater();
    rec.caq_hwm = mc_.caqHighWater();
    rec.lpq_hwm = mc_.lpqHighWater();
    mc_.resetQueueHighWater();

    const std::uint64_t useful =
        rec.buffer_consumed + rec.merged_useful;
    if (rec.prefetches_issued > 0) {
        rec.accuracy_pct = 100.0 * static_cast<double>(useful) /
                           static_cast<double>(rec.prefetches_issued);
    }
    if (rec.reads > 0) {
        rec.coverage_pct =
            100.0 * static_cast<double>(rec.buffer_hits) /
            static_cast<double>(rec.reads);
    }

    if (config_.capture_slh) {
        for (std::uint32_t t = 0; t < asd_.threadCount(); ++t) {
            EpochLht lht;
            lht.thread = t;
            lht.positive =
                asd_.lhtCurr(t, StreamDir::Positive).counts();
            lht.negative =
                asd_.lhtCurr(t, StreamDir::Negative).counts();
            rec.slh.push_back(std::move(lht));
        }
    }

    records_.push_back(std::move(rec));
    baseline_ = sample;
    baseline_.cycle = now;
}

void
TelemetryRecorder::rebaseline(Cycle now)
{
    baseline_ = sampleCounters();
    baseline_.cycle = now;
    mc_.resetQueueHighWater();
}

void
TelemetryRecorder::saveState(SnapshotWriter &w) const
{
    const std::uint64_t fields[23] = {
        baseline_.reads,
        baseline_.suggested,
        baseline_.suppressed,
        baseline_.overflow_reads,
        baseline_.stream_merges,
        baseline_.lht_underflow_clamps,
        baseline_.prefetches_issued,
        baseline_.buffer_hits,
        baseline_.buffer_consumed,
        baseline_.merged_useful,
        baseline_.lpq_dropped,
        baseline_.conflicts,
        baseline_.regulars_delayed,
        baseline_.dram_row_hits,
        baseline_.dram_row_misses,
        baseline_.os_minor_faults,
        baseline_.os_major_faults,
        baseline_.os_reclaims,
        baseline_.os_writebacks,
        baseline_.os_shootdowns,
        baseline_.tenant_arrivals,
        baseline_.tenant_departures,
        baseline_.cycle,
    };
    for (const std::uint64_t field : fields)
        w.u64(field);
    w.b(capped_);
    w.u64(records_.size());
    for (const EpochRecord &rec : records_) {
        w.u64(rec.epoch);
        w.u64(rec.start_cycle);
        w.u64(rec.end_cycle);
        w.u64(rec.reads);
        w.u64(rec.suggested);
        w.u64(rec.suppressed);
        w.u64(rec.overflow_reads);
        w.u64(rec.stream_merges);
        w.u64(rec.lht_underflow_clamps);
        w.u64(rec.prefetches_issued);
        w.u64(rec.buffer_hits);
        w.u64(rec.buffer_consumed);
        w.u64(rec.merged_useful);
        w.u64(rec.lpq_dropped);
        w.u32(static_cast<std::uint32_t>(rec.policy));
        w.u64(rec.conflicts);
        w.u64(rec.regulars_delayed);
        w.u64(rec.dram_row_hits);
        w.u64(rec.dram_row_misses);
        w.u64(rec.read_q_hwm);
        w.u64(rec.write_q_hwm);
        w.u64(rec.caq_hwm);
        w.u64(rec.lpq_hwm);
        w.f64(rec.accuracy_pct);
        w.f64(rec.coverage_pct);
        w.u64(rec.os_minor_faults);
        w.u64(rec.os_major_faults);
        w.u64(rec.os_reclaims);
        w.u64(rec.os_writebacks);
        w.u64(rec.os_shootdowns);
        w.u64(rec.tenant_arrivals);
        w.u64(rec.tenant_departures);
        w.u64(rec.slh.size());
        for (const EpochLht &lht : rec.slh) {
            w.u32(lht.thread);
            w.vecU64(lht.positive);
            w.vecU64(lht.negative);
        }
    }
}

void
TelemetryRecorder::loadState(SnapshotReader &r)
{
    baseline_.reads = r.u64();
    baseline_.suggested = r.u64();
    baseline_.suppressed = r.u64();
    baseline_.overflow_reads = r.u64();
    baseline_.stream_merges = r.u64();
    baseline_.lht_underflow_clamps = r.u64();
    baseline_.prefetches_issued = r.u64();
    baseline_.buffer_hits = r.u64();
    baseline_.buffer_consumed = r.u64();
    baseline_.merged_useful = r.u64();
    baseline_.lpq_dropped = r.u64();
    baseline_.conflicts = r.u64();
    baseline_.regulars_delayed = r.u64();
    baseline_.dram_row_hits = r.u64();
    baseline_.dram_row_misses = r.u64();
    baseline_.os_minor_faults = r.u64();
    baseline_.os_major_faults = r.u64();
    baseline_.os_reclaims = r.u64();
    baseline_.os_writebacks = r.u64();
    baseline_.os_shootdowns = r.u64();
    baseline_.tenant_arrivals = r.u64();
    baseline_.tenant_departures = r.u64();
    baseline_.cycle = r.u64();
    capped_ = r.b();
    const std::uint64_t count = r.u64();
    records_.clear();
    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        EpochRecord rec;
        rec.epoch = r.u64();
        rec.start_cycle = r.u64();
        rec.end_cycle = r.u64();
        rec.reads = r.u64();
        rec.suggested = r.u64();
        rec.suppressed = r.u64();
        rec.overflow_reads = r.u64();
        rec.stream_merges = r.u64();
        rec.lht_underflow_clamps = r.u64();
        rec.prefetches_issued = r.u64();
        rec.buffer_hits = r.u64();
        rec.buffer_consumed = r.u64();
        rec.merged_useful = r.u64();
        rec.lpq_dropped = r.u64();
        rec.policy = static_cast<int>(r.u32());
        rec.conflicts = r.u64();
        rec.regulars_delayed = r.u64();
        rec.dram_row_hits = r.u64();
        rec.dram_row_misses = r.u64();
        rec.read_q_hwm = static_cast<std::size_t>(r.u64());
        rec.write_q_hwm = static_cast<std::size_t>(r.u64());
        rec.caq_hwm = static_cast<std::size_t>(r.u64());
        rec.lpq_hwm = static_cast<std::size_t>(r.u64());
        rec.accuracy_pct = r.f64();
        rec.coverage_pct = r.f64();
        rec.os_minor_faults = r.u64();
        rec.os_major_faults = r.u64();
        rec.os_reclaims = r.u64();
        rec.os_writebacks = r.u64();
        rec.os_shootdowns = r.u64();
        rec.tenant_arrivals = r.u64();
        rec.tenant_departures = r.u64();
        const std::uint64_t lhts = r.u64();
        for (std::uint64_t j = 0; j < lhts; ++j) {
            EpochLht lht;
            lht.thread = r.u32();
            lht.positive = r.vecU64();
            lht.negative = r.vecU64();
            rec.slh.push_back(std::move(lht));
        }
        records_.push_back(std::move(rec));
    }
}

} // namespace asd
