#include "telemetry/recorder.hpp"

namespace asd
{

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig &config,
                                     const AsdPrefetcher &asd,
                                     MemoryController &mc,
                                     const Dram &dram)
    : config_(config), asd_(asd), mc_(mc), dram_(dram)
{
    baseline_ = sampleCounters();
    // High-water marks accumulated before the first epoch belong to
    // epoch 1; leave them untouched.
}

TelemetryRecorder::Baseline
TelemetryRecorder::sampleCounters() const
{
    Baseline b;
    b.reads = mc_.readsObserved();
    b.suggested = asd_.suggested();
    b.suppressed = asd_.suppressed();
    b.overflow_reads = asd_.overflowReads();
    b.stream_merges = asd_.streamMerges();
    b.lht_underflow_clamps = asd_.lhtUnderflowClamps();
    b.prefetches_issued = mc_.prefetchesIssued();
    b.buffer_hits = mc_.bufferHits();
    b.buffer_consumed = asd_.buffer().consumed();
    b.merged_useful = mc_.prefetchesMergedUseful();
    b.lpq_dropped = mc_.lpqDrops();
    b.conflicts = asd_.scheduler().totalConflicts();
    b.regulars_delayed = mc_.regularsDelayed();
    b.dram_row_hits = dram_.rowHits();
    b.dram_row_misses = dram_.rowMisses();
    return b;
}

void
TelemetryRecorder::onEpochEnd(Cycle now)
{
    if (!config_.enabled || capped_)
        return;
    if (config_.max_epochs > 0 &&
        records_.size() >= config_.max_epochs) {
        capped_ = true;
        return;
    }

    const Baseline sample = sampleCounters();
    EpochRecord rec;
    rec.epoch = asd_.epochsCompleted();
    rec.start_cycle = baseline_.cycle;
    rec.end_cycle = now;

    rec.reads = sample.reads - baseline_.reads;
    rec.suggested = sample.suggested - baseline_.suggested;
    rec.suppressed = sample.suppressed - baseline_.suppressed;
    rec.overflow_reads =
        sample.overflow_reads - baseline_.overflow_reads;
    rec.stream_merges = sample.stream_merges - baseline_.stream_merges;
    rec.lht_underflow_clamps =
        sample.lht_underflow_clamps - baseline_.lht_underflow_clamps;

    rec.prefetches_issued =
        sample.prefetches_issued - baseline_.prefetches_issued;
    rec.buffer_hits = sample.buffer_hits - baseline_.buffer_hits;
    rec.buffer_consumed =
        sample.buffer_consumed - baseline_.buffer_consumed;
    rec.merged_useful = sample.merged_useful - baseline_.merged_useful;
    rec.lpq_dropped = sample.lpq_dropped - baseline_.lpq_dropped;

    // The hook fires after AdaptiveScheduler::epochEnd(), so policy()
    // is the (possibly stepped) policy entering the next epoch — the
    // value the paper's Fig. 13-style timelines plot.
    rec.policy = asd_.scheduler().policy();
    rec.conflicts = sample.conflicts - baseline_.conflicts;
    rec.regulars_delayed =
        sample.regulars_delayed - baseline_.regulars_delayed;

    rec.dram_row_hits = sample.dram_row_hits - baseline_.dram_row_hits;
    rec.dram_row_misses =
        sample.dram_row_misses - baseline_.dram_row_misses;

    rec.read_q_hwm = mc_.readQHighWater();
    rec.write_q_hwm = mc_.writeQHighWater();
    rec.caq_hwm = mc_.caqHighWater();
    rec.lpq_hwm = mc_.lpqHighWater();
    mc_.resetQueueHighWater();

    const std::uint64_t useful =
        rec.buffer_consumed + rec.merged_useful;
    if (rec.prefetches_issued > 0) {
        rec.accuracy_pct = 100.0 * static_cast<double>(useful) /
                           static_cast<double>(rec.prefetches_issued);
    }
    if (rec.reads > 0) {
        rec.coverage_pct =
            100.0 * static_cast<double>(rec.buffer_hits) /
            static_cast<double>(rec.reads);
    }

    if (config_.capture_slh) {
        for (std::uint32_t t = 0; t < asd_.threadCount(); ++t) {
            EpochLht lht;
            lht.thread = t;
            lht.positive =
                asd_.lhtCurr(t, StreamDir::Positive).counts();
            lht.negative =
                asd_.lhtCurr(t, StreamDir::Negative).counts();
            rec.slh.push_back(std::move(lht));
        }
    }

    records_.push_back(std::move(rec));
    baseline_ = sample;
    baseline_.cycle = now;
}

} // namespace asd
