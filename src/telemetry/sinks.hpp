#ifndef ASD_TELEMETRY_SINKS_HPP
#define ASD_TELEMETRY_SINKS_HPP

/**
 * @file
 * Pluggable exporters for the per-epoch telemetry log:
 *  - a wide CSV (one row per epoch) for spreadsheets/pandas,
 *  - a JSON time-series (asdsim/telemetry/v1) on common/json,
 *  - a Chrome trace-event file loadable in chrome://tracing or Perfetto
 *    (one "X" slice per epoch on a virtual track plus counter tracks
 *    for accuracy/coverage/policy/queue occupancy; cycles are mapped
 *    to trace microseconds).
 * Writers take streams; the save* helpers wrap them with file
 * creation and report failure instead of throwing.
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/recorder.hpp"

namespace asd
{

/** One row per epoch; stable header first. */
void writeTelemetryCsv(const std::vector<EpochRecord> &records,
                       std::ostream &out);

/** Complete asdsim/telemetry/v1 JSON document (includes SLH). */
std::string telemetryJson(const std::vector<EpochRecord> &records);

/** Chrome trace-event JSON ({"traceEvents": [...]}). */
std::string telemetryChromeTrace(
    const std::vector<EpochRecord> &records);

// File helpers: create parent directories, write, flush.
// @retval false on any I/O failure (after warn()).
bool saveTelemetryCsv(const std::vector<EpochRecord> &records,
                      const std::string &path);
bool saveTelemetryJson(const std::vector<EpochRecord> &records,
                       const std::string &path);
bool saveTelemetryChromeTrace(const std::vector<EpochRecord> &records,
                              const std::string &path);

} // namespace asd

#endif // ASD_TELEMETRY_SINKS_HPP
