#ifndef ASD_SIM_TUNER_CONFIG_HPP
#define ASD_SIM_TUNER_CONFIG_HPP

/**
 * @file
 * Configuration of the phase-adaptive tuner (src/tuner/): the
 * candidate grid it may draw reconfigurations from, the phase
 * detector's change-point parameters, and the shadow-simulation
 * budget. Lives in the sim layer so SystemConfig/RunOptions can embed
 * it without depending on the tuner subsystem itself; the controller
 * that interprets it sits above (src/tuner/).
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/asd_config.hpp"

namespace asd
{

/**
 * The tunable-parameter grid. Candidates are drawn as a coordinate
 * neighborhood around the current tuning (vary one axis at a time),
 * not the full cross product, so one decision evaluates roughly
 * sum-of-axis-lengths shadows instead of their product.
 */
struct TuneSpace
{
    std::vector<std::uint32_t> degrees = {1, 2, 4};
    std::vector<std::uint32_t> filter_slots = {4, 8, 16};
    std::vector<std::uint32_t> buffer_lines = {16, 32};
    std::vector<std::uint32_t> epoch_reads = {1000, 2000, 4000};

    /** LPQ scheduling axis: 0 = adaptive walk, 1..5 = pinned. */
    std::vector<std::uint32_t> policies = {0, 1, 3, 5};
};

/** Phase-adaptive tuner knobs (off by default => byte-identical). */
struct TunerConfig
{
    bool enabled = false;

    /**
     * Cycles each shadow simulation runs past the decision point.
     * Also the distance at which the realized (live) delta is
     * measured against the winner's prediction.
     */
    Cycle shadow_horizon = 60000;

    /** Epochs that must complete between consecutive decisions. */
    std::uint32_t min_epochs_between = 2;

    /** Hard cap on decisions per run; 0 = unlimited. */
    std::uint32_t max_decisions = 0;

    /**
     * Worker threads for shadow evaluation; 0 = hardware default.
     * Scoring is collected per candidate index, so only wall-clock
     * time — never the adopted sequence — depends on this.
     */
    std::uint32_t shadow_threads = 1;

    /** Phase detector: epochs per comparison window. */
    std::uint32_t phase_window = 3;

    /**
     * Phase detector: a phase change fires when any feature's mean
     * over the last phase_window epochs shifts by more than this
     * relative amount, in milli-percent of the reference window
     * (40000 = a 40% shift).
     */
    std::uint32_t phase_threshold_milli_pct = 40000;

    TuneSpace space;
};

} // namespace asd

#endif // ASD_SIM_TUNER_CONFIG_HPP
