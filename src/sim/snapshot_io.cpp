#include "sim/snapshot_io.hpp"

#include "sim/serialize.hpp"

namespace asd
{

namespace
{

template <typename Enum>
Enum
readEnum(SnapshotReader &r, Enum max, const char *what)
{
    const std::uint8_t v = r.u8();
    SnapshotReader::check(v <= static_cast<std::uint8_t>(max), what);
    return static_cast<Enum>(v);
}

void
saveU32Vec(SnapshotWriter &w, const std::vector<std::uint32_t> &v)
{
    w.u64(v.size());
    for (const std::uint32_t x : v)
        w.u32(x);
}

std::vector<std::uint32_t>
loadU32Vec(SnapshotReader &r)
{
    const std::uint64_t count = r.u64();
    SnapshotReader::check(count <= 4096,
                          "tune-space axis implausibly long");
    std::vector<std::uint32_t> v(count);
    for (std::uint32_t &x : v)
        x = r.u32();
    return v;
}

} // namespace

void
saveRunOptions(SnapshotWriter &w, const RunOptions &options)
{
    w.u8(static_cast<std::uint8_t>(options.mode));
    w.u8(static_cast<std::uint8_t>(options.mc_prefetcher));
    w.u8(static_cast<std::uint8_t>(options.ps_kind));
    w.u8(static_cast<std::uint8_t>(options.scheduler));
    w.b(options.fixed_policy.has_value());
    w.i64(options.fixed_policy.value_or(0));
    w.u32(options.buffer_lines);
    w.u32(options.filter_slots);
    w.u32(options.max_degree);
    w.b(options.saturate_long_streams);
    w.b(options.ps_oracle);
    w.b(options.accesses.has_value());
    w.u64(options.accesses.value_or(0));
    w.u64(options.warmup_cycles);
    w.b(options.vm.enabled);
    w.u8(static_cast<std::uint8_t>(options.vm.policy));
    w.u64(options.vm.page_bytes);
    w.u64(options.vm.huge_bytes);
    w.u64(options.vm.phys_bytes);
    w.u64(options.vm.seed);
    w.u32(options.vm.tlb.entries);
    w.u32(options.vm.tlb.ways);
    w.u64(options.vm.tlb.walk_cycles);
    w.u8(static_cast<std::uint8_t>(options.vm.walker));
    w.b(options.os.enabled);
    w.u64(options.os.frames);
    w.u64(options.os.minor_fault_cycles);
    w.u64(options.os.major_fault_cycles);
    w.f64(options.os.major_fault_frac);
    w.u64(options.os.reclaim_cycles);
    w.u64(options.os.writeback_cycles);
    w.u64(options.os.hashed_probe_cycles);
    w.u64(options.os.seed);
    w.b(options.tenants.enabled);
    w.u32(options.tenants.slots);
    w.f64(options.tenants.zipf_s);
    w.u64(options.tenants.mean_lifetime);
    w.u64(options.tenants.seed);
    w.b(options.telemetry.enabled);
    w.b(options.telemetry.capture_slh);
    w.u64(options.telemetry.max_epochs);
    w.b(options.ghb_delta_correlate);
    w.b(options.tuner.enabled);
    w.u64(options.tuner.shadow_horizon);
    w.u32(options.tuner.min_epochs_between);
    w.u32(options.tuner.max_decisions);
    w.u32(options.tuner.shadow_threads);
    w.u32(options.tuner.phase_window);
    w.u32(options.tuner.phase_threshold_milli_pct);
    saveU32Vec(w, options.tuner.space.degrees);
    saveU32Vec(w, options.tuner.space.filter_slots);
    saveU32Vec(w, options.tuner.space.buffer_lines);
    saveU32Vec(w, options.tuner.space.epoch_reads);
    saveU32Vec(w, options.tuner.space.policies);
}

RunOptions
loadRunOptions(SnapshotReader &r)
{
    RunOptions options;
    options.mode =
        readEnum(r, PrefetchMode::PMS, "prefetch mode out of range");
    options.mc_prefetcher =
        readEnum(r, McPrefetcherKind::Perceptron,
                 "memory-side prefetcher kind out of range");
    options.ps_kind =
        readEnum(r, PsKind::Asd,
                 "processor-side prefetcher kind out of range");
    options.scheduler = readEnum(r, SchedulerKind::FrFcfs,
                                 "scheduler kind out of range");
    const bool has_policy = r.b();
    const std::int64_t policy = r.i64();
    if (has_policy)
        options.fixed_policy = static_cast<int>(policy);
    options.buffer_lines = r.u32();
    options.filter_slots = r.u32();
    options.max_degree = r.u32();
    options.saturate_long_streams = r.b();
    options.ps_oracle = r.b();
    const bool has_accesses = r.b();
    const std::uint64_t accesses = r.u64();
    if (has_accesses)
        options.accesses = accesses;
    options.warmup_cycles = r.u64();
    options.vm.enabled = r.b();
    options.vm.policy =
        readEnum(r, FrameAllocPolicy::HugePage,
                 "frame-allocation policy out of range");
    options.vm.page_bytes = r.u64();
    options.vm.huge_bytes = r.u64();
    options.vm.phys_bytes = r.u64();
    options.vm.seed = r.u64();
    options.vm.tlb.entries = r.u32();
    options.vm.tlb.ways = r.u32();
    options.vm.tlb.walk_cycles = r.u64();
    options.vm.walker = readEnum(r, PageWalkerKind::Hashed,
                                 "page-walker kind out of range");
    options.os.enabled = r.b();
    options.os.frames = r.u64();
    options.os.minor_fault_cycles = r.u64();
    options.os.major_fault_cycles = r.u64();
    options.os.major_fault_frac = r.f64();
    options.os.reclaim_cycles = r.u64();
    options.os.writeback_cycles = r.u64();
    options.os.hashed_probe_cycles = r.u64();
    options.os.seed = r.u64();
    options.tenants.enabled = r.b();
    options.tenants.slots = r.u32();
    options.tenants.zipf_s = r.f64();
    options.tenants.mean_lifetime = r.u64();
    options.tenants.seed = r.u64();
    options.telemetry.enabled = r.b();
    options.telemetry.capture_slh = r.b();
    options.telemetry.max_epochs =
        static_cast<std::size_t>(r.u64());
    options.ghb_delta_correlate = r.b();
    options.tuner.enabled = r.b();
    options.tuner.shadow_horizon = r.u64();
    options.tuner.min_epochs_between = r.u32();
    options.tuner.max_decisions = r.u32();
    options.tuner.shadow_threads = r.u32();
    options.tuner.phase_window = r.u32();
    options.tuner.phase_threshold_milli_pct = r.u32();
    options.tuner.space.degrees = loadU32Vec(r);
    options.tuner.space.filter_slots = loadU32Vec(r);
    options.tuner.space.buffer_lines = loadU32Vec(r);
    options.tuner.space.epoch_reads = loadU32Vec(r);
    options.tuner.space.policies = loadU32Vec(r);
    return options;
}

std::uint64_t
runConfigHash(const std::string &bench_name, std::uint64_t accesses,
              const RunOptions &options)
{
    return fnv1a64(bench_name + "\n" + std::to_string(accesses) +
                   "\n" + toJson(options));
}

} // namespace asd
