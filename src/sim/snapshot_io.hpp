#ifndef ASD_SIM_SNAPSHOT_IO_HPP
#define ASD_SIM_SNAPSHOT_IO_HPP

/**
 * @file
 * Glue between the snapshot format and the experiment layer: binary
 * (de)serialization of RunOptions for the "cli" metadata section, the
 * canonical config hash that binds a snapshot file to the run that
 * produced it, and whole-run save/load helpers used by asdsim_cli and
 * the snapshot tests.
 *
 * A run snapshot is a machine snapshot (System::saveSnapshot) plus
 * one leading "cli" section recording what was being run: benchmark
 * name, the resolved trace length (after ASD_BENCH_SCALE and any
 * --accesses override), and the full RunOptions. Loading rebuilds the
 * identical System from that metadata, so a snapshot file is
 * self-describing — no side-channel config file needed.
 */

#include <cstdint>
#include <string>

#include "sim/experiment.hpp"
#include "snapshot/snapshot.hpp"

namespace asd
{

/** Serialize @p options into the currently open section. */
void saveRunOptions(SnapshotWriter &w, const RunOptions &options);

/**
 * Read RunOptions back from the currently open section. Throws
 * SnapshotError on out-of-range enum values.
 */
RunOptions loadRunOptions(SnapshotReader &r);

/**
 * Canonical config hash for one single-threaded run: FNV-1a of the
 * benchmark name, the resolved trace length, and the RunOptions JSON
 * (which is a stable, canonical serialization). Used as the snapshot
 * header hash so a reader can reject a snapshot taken under a
 * different configuration before touching any machine state.
 */
std::uint64_t runConfigHash(const std::string &bench_name,
                            std::uint64_t accesses,
                            const RunOptions &options);

} // namespace asd

#endif // ASD_SIM_SNAPSHOT_IO_HPP
